// Command experiments regenerates the paper's tables and figures on
// the synthetic MCNC-20 suite:
//
//	experiments -table 1                 # Table I: baseline VPR data
//	experiments -table 2                 # Table II: LocalRep / RT-Embedding / Lex-3
//	experiments -table 3                 # Table III: all Lex variants (averages)
//	experiments -fig 14                  # Fig. 14: replication stats on ex1010
//	experiments -table 2 -circuits ex5p,pdc
//
// Common flags: -scale (circuit size multiplier), -effort (placer
// effort), -seed, -skip-routing (placement-level metrics only),
// -paper (print the paper's reference numbers next to measured ones).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/circuits"
	"repro/internal/flow"
)

func main() {
	var (
		table       = flag.Int("table", 0, "table to regenerate (1, 2, or 3)")
		fig         = flag.Int("fig", 0, "figure to regenerate (14)")
		scale       = flag.Float64("scale", 0.15, "circuit size multiplier (1.0 = published sizes)")
		effort      = flag.Float64("effort", 2, "placer effort (VPR uses 10)")
		seed        = flag.Int64("seed", 1, "random seed for placement and local replication")
		skipRouting = flag.Bool("skip-routing", false, "skip routing; report placement-level metrics")
		circuitsArg = flag.String("circuits", "", "comma-separated circuit subset (default: all 20)")
		paper       = flag.Bool("paper", false, "also print the paper's reference averages")
		parallel    = flag.Int("parallel", 0, "engine/STA worker count (0 = all CPUs, 1 = serial)")
	)
	flag.Parse()

	cfg := flow.Defaults()
	cfg.Scale = *scale
	cfg.PlaceEffort = *effort
	cfg.Seed = *seed
	cfg.SkipRouting = *skipRouting
	if *parallel > 0 {
		cfg.Engine.Parallelism = *parallel
	}

	suite := selectCircuits(*circuitsArg)
	if len(suite) == 0 {
		fatalf("no circuits selected")
	}

	switch {
	case *table == 1:
		runTable1(suite, cfg)
	case *table == 2:
		runTable2(suite, cfg, *paper)
	case *table == 3:
		runTable3(suite, cfg, *paper)
	case *fig == 14:
		runFig14(cfg)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}

func selectCircuits(arg string) []circuits.MCNCSpec {
	if arg == "" {
		return circuits.MCNC20
	}
	var out []circuits.MCNCSpec
	for _, name := range strings.Split(arg, ",") {
		spec, ok := circuits.ByName(strings.TrimSpace(name))
		if !ok {
			fatalf("unknown circuit %q", name)
		}
		out = append(out, spec)
	}
	return out
}

func baselines(suite []circuits.MCNCSpec, cfg flow.Config) []*flow.Baseline {
	var out []*flow.Baseline
	for _, spec := range suite {
		t0 := time.Now()
		b, err := flow.RunBaseline(spec, cfg)
		if err != nil {
			fatalf("%s baseline: %v", spec.Name, err)
		}
		fmt.Fprintf(os.Stderr, "baseline %-10s %6d cells  %6.1fs\n",
			spec.Name, b.Netlist.NumCells(), time.Since(t0).Seconds())
		out = append(out, b)
	}
	return out
}

func runTable1(suite []circuits.MCNCSpec, cfg flow.Config) {
	bs := baselines(suite, cfg)
	fmt.Printf("Table I — timing-driven VPR baseline (scale %.2f, synthetic stand-ins)\n\n", cfg.Scale)
	fmt.Print(flow.FormatTableI(bs))
}

func runAlgos(suite []circuits.MCNCSpec, cfg flow.Config, algos []flow.Algorithm) map[flow.Algorithm][]*flow.Result {
	bs := baselines(suite, cfg)
	byAlgo := map[flow.Algorithm][]*flow.Result{}
	for _, b := range bs {
		for _, a := range algos {
			t0 := time.Now()
			r, err := flow.RunAlgorithm(b, a, cfg)
			if err != nil {
				fatalf("%s/%s: %v", b.Spec.Name, a, err)
			}
			fmt.Fprintf(os.Stderr, "%-10s %-17s W-inf %.3f  %6.1fs\n",
				b.Spec.Name, a.String(), r.Norm[0], time.Since(t0).Seconds())
			byAlgo[a] = append(byAlgo[a], r)
		}
	}
	return byAlgo
}

func runTable2(suite []circuits.MCNCSpec, cfg flow.Config, paper bool) {
	algos := []flow.Algorithm{flow.LocalRep, flow.RTEmbed, flow.Lex3}
	byAlgo := runAlgos(suite, cfg, algos)
	fmt.Printf("Table II — normalized to VPR (scale %.2f)\n\n", cfg.Scale)
	fmt.Print(flow.FormatTableII(byAlgo, algos))
	if paper {
		printPaperTableII()
	}
}

func runTable3(suite []circuits.MCNCSpec, cfg flow.Config, paper bool) {
	byAlgo := runAlgos(suite, cfg, flow.EngineAlgorithms)
	fmt.Printf("Table III — average improvements (scale %.2f)\n\n", cfg.Scale)
	fmt.Print(flow.FormatTableIII(byAlgo, flow.EngineAlgorithms))
	if paper {
		fmt.Println("\nPaper reference (Table III):")
		for _, r := range circuits.PaperTableIII {
			fmt.Printf("%-14s all %v  small %v  large %v\n", r.Algorithm, r.All, r.Small, r.LargeAv)
		}
	}
}

func runFig14(cfg flow.Config) {
	spec, _ := circuits.ByName("ex1010")
	b, err := flow.RunBaseline(spec, cfg)
	if err != nil {
		fatalf("ex1010 baseline: %v", err)
	}
	r, err := flow.RunAlgorithm(b, flow.RTEmbed, cfg)
	if err != nil {
		fatalf("ex1010 RT-Embedding: %v", err)
	}
	fmt.Printf("Fig. 14 — replication statistics for ex1010 (scale %.2f)\n", cfg.Scale)
	fmt.Printf("(paper: 106 iterations, 38 replicated, 12 unified, 26 net)\n\n")
	fmt.Print(flow.FormatFig14(r.EngineStats))
}

func printPaperTableII() {
	fmt.Println("\nPaper reference averages (Table II bottom rows):")
	avg := func(pick func(circuits.PaperTableIIRow) [4]float64) [4]float64 {
		var s [4]float64
		for _, r := range circuits.PaperTableII {
			v := pick(r)
			for k := 0; k < 4; k++ {
				s[k] += v[k]
			}
		}
		for k := 0; k < 4; k++ {
			s[k] /= float64(len(circuits.PaperTableII))
		}
		return s
	}
	lr := avg(func(r circuits.PaperTableIIRow) [4]float64 { return r.LocalRep })
	rt := avg(func(r circuits.PaperTableIIRow) [4]float64 { return r.RTEmbed })
	l3 := avg(func(r circuits.PaperTableIIRow) [4]float64 { return r.Lex3 })
	fmt.Printf("Local replication: %.3f %.3f %.3f %.3f\n", lr[0], lr[1], lr[2], lr[3])
	fmt.Printf("RT-Embedding:      %.3f %.3f %.3f %.3f\n", rt[0], rt[1], rt[2], rt[3])
	fmt.Printf("Lex-3:             %.3f %.3f %.3f %.3f\n", l3[0], l3[1], l3[2], l3[3])
}
