// Command rtembed runs one circuit through the full
// place → replicate → route flow with a chosen algorithm:
//
//	rtembed -circuit ex5p -algo lex3 -scale 0.2
//	rtembed -netlist design.ckt -algo rt
//
// With -netlist it reads the package netlist text format instead of a
// synthetic suite circuit; -out writes the optimized netlist back.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/localrep"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/timing"
)

func main() {
	var (
		circuit     = flag.String("circuit", "", "suite circuit name (e.g. ex5p)")
		netlistPath = flag.String("netlist", "", "path to a netlist file (text format)")
		algo        = flag.String("algo", "rt", "algorithm: "+strings.Join(flow.AlgorithmNames(), " | "))
		scale       = flag.Float64("scale", 0.2, "suite circuit size multiplier")
		effort      = flag.Float64("effort", 2, "placer effort")
		seed        = flag.Int64("seed", 1, "random seed")
		skipRouting = flag.Bool("skip-routing", false, "skip routing")
		outPath     = flag.String("out", "", "write the optimized netlist here")
		report      = flag.Int("report", 0, "print the K worst timing paths after optimization")
		plot        = flag.Bool("plot", false, "print ASCII floorplans before and after")
		parallel    = flag.Int("parallel", 0, "engine/STA worker count (0 = all CPUs, 1 = serial)")
	)
	flag.Parse()

	// Reject an unknown algorithm before any placement work starts:
	// the name set is shared with repld via flow.ParseAlgorithm.
	algorithm, ok := flow.ParseAlgorithm(*algo)
	if !ok {
		fmt.Fprintf(os.Stderr, "rtembed: unknown algorithm %q (valid: %s)\n",
			*algo, strings.Join(flow.AlgorithmNames(), ", "))
		flag.Usage()
		os.Exit(2)
	}

	cfg := flow.Defaults()
	cfg.Scale = *scale
	cfg.PlaceEffort = *effort
	cfg.Seed = *seed
	cfg.SkipRouting = *skipRouting

	var nl *netlist.Netlist
	switch {
	case *netlistPath != "":
		f, err := os.Open(*netlistPath)
		if err != nil {
			fatalf("%v", err)
		}
		nl, err = netlist.Read(f)
		f.Close()
		if err != nil {
			fatalf("parse %s: %v", *netlistPath, err)
		}
	case *circuit != "":
		spec, ok := circuits.ByName(*circuit)
		if !ok {
			fatalf("unknown circuit %q (see cmd/mcncgen for the suite)", *circuit)
		}
		var err error
		nl, err = circuits.Generate(spec.Spec(cfg.Scale))
		if err != nil {
			fatalf("%v", err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	f := arch.MinSquare(nl.NumLUTs(), nl.NumIOs())
	fmt.Printf("circuit %s: %d LUTs, %d I/Os, FPGA %v (density %.3f)\n",
		nl.Name, nl.NumLUTs(), nl.NumIOs(), f, f.Density(nl.NumLUTs()))

	popt := place.Defaults()
	popt.Seed = cfg.Seed
	popt.Effort = cfg.PlaceEffort
	pl, err := place.Place(nl, f, popt)
	if err != nil {
		fatalf("place: %v", err)
	}
	a, err := timing.Analyze(nl, pl, cfg.Delay)
	if err != nil {
		fatalf("sta: %v", err)
	}
	fmt.Printf("placed: period %.2f\n", a.Period)
	if *plot {
		crit := map[netlist.CellID]bool{}
		for _, id := range a.CriticalPath(nl, pl, cfg.Delay) {
			crit[id] = true
		}
		fmt.Print(pl.Plot(nl, crit))
	}

	switch algorithm {
	case flow.VPRBaseline:
		// nothing
	case flow.LocalRep:
		opt := localrep.Defaults()
		opt.Seed = cfg.Seed
		var st *localrep.Stats
		nl, pl, st, err = localrep.BestOf(nl, pl, cfg.Delay, opt, 3)
		if err != nil {
			fatalf("local replication: %v", err)
		}
		fmt.Printf("local replication: %d iterations, %d replicated, %d relocated\n",
			st.Iterations, st.Replicated, st.Relocated)
	default:
		ecfg := core.Default()
		ecfg.Mode = algorithm.Mode()
		if *parallel > 0 {
			ecfg.Parallelism = *parallel
		}
		eng := core.New(nl, pl, cfg.Delay, ecfg)
		st, err := eng.Run()
		if err != nil {
			fatalf("engine: %v", err)
		}
		nl, pl = eng.Netlist, eng.Placement
		fmt.Printf("%s: %d iterations, %d replicated, %d unified, %d FF relocations\n",
			algorithm, st.Iterations, st.Replicated, st.Unified, st.FFRelocations)
	}

	a, err = timing.Analyze(nl, pl, cfg.Delay)
	if err != nil {
		fatalf("sta: %v", err)
	}
	fmt.Printf("optimized: period %.2f, blocks %d\n", a.Period, nl.NumLUTs()+nl.NumIOs())
	mono := timing.Monotonicity(nl, pl, cfg.Delay, a)
	fmt.Printf("monotone worst paths: %d/%d (critical path monotone: %v)\n",
		mono.Monotone, mono.Paths, mono.CriticalMonotone)
	if *plot {
		crit := map[netlist.CellID]bool{}
		for _, id := range a.CriticalPath(nl, pl, cfg.Delay) {
			crit[id] = true
		}
		fmt.Print(pl.Plot(nl, crit))
	}
	if *report > 0 {
		fmt.Print(timing.FormatReport(nl, pl, timing.TopPaths(nl, pl, cfg.Delay, a, *report)))
	}

	if !cfg.SkipRouting {
		inf, err := route.Infinite(nl, pl, f, cfg.Delay, route.Defaults())
		if err != nil {
			fatalf("route: %v", err)
		}
		ls, w, err := route.LowStress(nl, pl, f, cfg.Delay, route.Defaults())
		if err != nil {
			fatalf("route: %v", err)
		}
		fmt.Printf("routed: W-inf %.2f, W-ls %.2f (width %d), wire %d\n",
			inf.CritPath, ls.CritPath, w, ls.WireLength)
	}

	if *outPath != "" {
		out, err := os.Create(*outPath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := nl.Write(out); err != nil {
			fatalf("write: %v", err)
		}
		out.Close()
		fmt.Printf("wrote optimized netlist to %s\n", *outPath)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rtembed: "+format+"\n", args...)
	os.Exit(1)
}
