// Command repld serves placement-coupled logic replication as a
// service: an HTTP/JSON daemon running replication jobs (synthetic
// suite circuits or inline netlists) through place → replicate →
// (optional) route on a bounded worker pool.
//
//	repld -addr :8080 -workers 4 -queue 64
//
// With -node-id and -peers it becomes one member of a static cluster:
// job specs are content-hashed, routed to their consistent-hash-ring
// owner, deduplicated (in-flight coalescing + a replicated result
// cache), and completed results are quorum-replicated to N members —
// with -store-dir, durably, so a restarted node recovers its replica
// set from the append-only log.
//
//	repld -addr :8081 -node-id n1 -store-dir /var/lib/repld \
//	      -peers n1=http://10.0.0.1:8081,n2=http://10.0.0.2:8081,n3=http://10.0.0.3:8081
//
// Submit with curl (any member of a cluster accepts any job):
//
//	curl -s localhost:8080/v1/jobs -d '{"circuit":"ex5p","algo":"lex3"}'
//	curl -s localhost:8080/v1/jobs/j000001
//
// SIGTERM/SIGINT drains gracefully: submissions are rejected, in-flight
// jobs get -drain-timeout to finish, then their contexts are cancelled
// (the engine stops promptly) and the jobs are reported cancelled.
// Introspection: /debug/vars (counters, incl. the cluster section),
// /v1/cluster/info (membership), /debug/pprof/ (profiles).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 2, "concurrent job limit")
		queue        = flag.Int("queue", 64, "queued-job bound (full queue returns 429)")
		maxBypass    = flag.Int("max-bypass", 0, "max consecutive deadline-class pops past a waiting best-effort job (0 = default)")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "default per-job timeout")
		maxTimeout   = flag.Duration("max-timeout", 30*time.Minute, "cap on per-job requested timeouts")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")

		nodeID   = flag.String("node-id", "", "cluster member ID (empty = single-process mode)")
		peers    = flag.String("peers", "", "cluster membership as id=url,... (may include this node's own entry)")
		storeDir = flag.String("store-dir", "", "directory for the durable result store (empty = in-memory)")
		vnodes   = flag.Int("vnodes", 0, "virtual nodes per member on the hash ring (0 = default)")
		replicas = flag.Int("replicas", 0, "replication factor N (0 = min(3, cluster size))")
		readQ    = flag.Int("read-quorum", 0, "read quorum R (0 = derived so R+W = N+1)")
		writeQ   = flag.Int("write-quorum", 0, "write quorum W (0 = majority of N)")
	)
	flag.Parse()

	m := serve.NewManager(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxBypass:      *maxBypass,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxTimeout,
	})

	var (
		handler http.Handler
		node    *cluster.Node
	)
	if *nodeID != "" {
		n, err := buildNode(m, *nodeID, *peers, *storeDir, *vnodes, *replicas, *readQ, *writeQ)
		if err != nil {
			log.Fatalf("repld: %v", err)
		}
		node = n
		handler = n.Handler()
		snap := n.Snapshot()
		log.Printf("repld: cluster member %s of %v (N=%d R=%d W=%d, store %s)",
			*nodeID, snap.Members, snap.N, snap.R, snap.W, storeKind(*storeDir))
	} else {
		handler = serve.NewServer(m).Handler()
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("repld: listening on %s (workers %d, queue %d)", *addr, *workers, *queue)

	select {
	case err := <-errc:
		log.Fatalf("repld: %v", err)
	case <-ctx.Done():
	}

	log.Printf("repld: shutdown signal; draining (up to %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting HTTP first, then drain the job queue under the
	// same deadline; Shutdown returns only when every worker exited.
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("repld: http shutdown: %v", err)
	}
	m.Shutdown(drainCtx)
	if node != nil {
		// Give completed results a moment to finish replicating, then
		// stop background writes and close (and flush) the store.
		node.WaitSettled(2 * time.Second)
		if err := node.Close(); err != nil {
			log.Printf("repld: store close: %v", err)
		}
	}
	c := m.Counters()
	fmt.Printf("repld: drained — %d completed, %d failed, %d cancelled, %d rejected\n",
		c.JobsCompleted, c.JobsFailed, c.JobsCancelled, c.JobsRejectedFull+c.JobsRejectedDrain)
}

// buildNode assembles the cluster member from the flag set.
func buildNode(m *serve.Manager, nodeID, peerList, storeDir string, vnodes, n, r, w int) (*cluster.Node, error) {
	peerMap, err := parsePeers(peerList, nodeID)
	if err != nil {
		return nil, err
	}
	var store cluster.Store
	if storeDir != "" {
		if err := os.MkdirAll(storeDir, 0o755); err != nil {
			return nil, fmt.Errorf("store dir: %w", err)
		}
		path := filepath.Join(storeDir, nodeID+".results.log")
		ds, err := cluster.OpenDiskStore(path)
		if err != nil {
			return nil, err
		}
		log.Printf("repld: recovered %d result records from %s", ds.Len(), path)
		store = ds
	}
	return cluster.NewNode(m, cluster.Config{
		NodeID: nodeID,
		Peers:  peerMap,
		VNodes: vnodes,
		Quorum: cluster.QuorumConfig{N: n, R: r, W: w},
		Store:  store,
	})
}

// parsePeers parses "id=url,id=url", dropping this node's own entry so
// one shared -peers string serves the whole fleet.
func parsePeers(s, self string) (map[string]string, error) {
	out := make(map[string]string)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", part)
		}
		if id == self {
			continue
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("duplicate -peers entry %q", id)
		}
		out[id] = strings.TrimSuffix(url, "/")
	}
	return out, nil
}

func storeKind(dir string) string {
	if dir == "" {
		return "memory"
	}
	return "disk:" + dir
}
