// Command repld serves placement-coupled logic replication as a
// service: an HTTP/JSON daemon running replication jobs (synthetic
// suite circuits or inline netlists) through place → replicate →
// (optional) route on a bounded worker pool.
//
//	repld -addr :8080 -workers 4 -queue 64
//
// Submit with curl:
//
//	curl -s localhost:8080/v1/jobs -d '{"circuit":"ex5p","algo":"lex3"}'
//	curl -s localhost:8080/v1/jobs/j000001
//
// SIGTERM/SIGINT drains gracefully: submissions are rejected, in-flight
// jobs get -drain-timeout to finish, then their contexts are cancelled
// (the engine stops promptly) and the jobs are reported cancelled.
// Introspection: /debug/vars (counters), /debug/pprof/ (profiles).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 2, "concurrent job limit")
		queue        = flag.Int("queue", 64, "queued-job bound (full queue returns 429)")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "default per-job timeout")
		maxTimeout   = flag.Duration("max-timeout", 30*time.Minute, "cap on per-job requested timeouts")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
	)
	flag.Parse()

	m := serve.NewManager(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxTimeout,
	})
	srv := serve.NewServer(m)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("repld: listening on %s (workers %d, queue %d)", *addr, *workers, *queue)

	select {
	case err := <-errc:
		log.Fatalf("repld: %v", err)
	case <-ctx.Done():
	}

	log.Printf("repld: shutdown signal; draining (up to %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting HTTP first, then drain the job queue under the
	// same deadline; Shutdown returns only when every worker exited.
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("repld: http shutdown: %v", err)
	}
	m.Shutdown(drainCtx)
	c := m.Counters()
	fmt.Printf("repld: drained — %d completed, %d failed, %d cancelled, %d rejected\n",
		c.JobsCompleted, c.JobsFailed, c.JobsCancelled, c.JobsRejectedFull+c.JobsRejectedDrain)
}
