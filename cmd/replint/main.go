// Command replint runs the repository's determinism/correctness rule
// suite (internal/analysis) over module packages. It needs no network
// and no external tooling: packages are parsed and type-checked with
// the standard library alone.
//
// Usage:
//
//	replint [flags] [packages]
//
// Packages default to ./... relative to the module root, which is
// found by walking up from the working directory to go.mod. The whole
// module is always loaded and summarized (the interprocedural rules
// need module-wide facts); the package arguments select which
// packages' findings are reported.
//
// Findings print with paths relative to the module root regardless of
// -C or the working directory, so editor jump-to-line works from
// anywhere. With -json, findings are emitted as a JSON array of
// {file, line, col, rule, msg, suppressed, reason} objects —
// suppressed findings included and flagged. With -sarif, findings are
// emitted as a SARIF 2.1.0 log suitable for GitHub code scanning
// upload: unsuppressed findings are level=error, suppressed ones are
// level=note with an inSource suppression carrying the directive's
// justification.
//
// Exit status is 1 when any unsuppressed finding (or malformed replint
// directive) is reported, 2 on operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Rule       string `json:"rule"`
	Msg        string `json:"msg"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("replint", flag.ExitOnError)
	fs.SetOutput(stderr)
	rules := fs.Bool("rules", false, "print the rule catalog and exit")
	verbose := fs.Bool("v", false, "also show suppressed findings and type-check diagnostics")
	dir := fs.String("C", "", "change to this directory before resolving the module root")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array (suppressed findings included, flagged)")
	asSARIF := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log (suppressed findings included as suppressed notes)")
	fs.Parse(argv)

	if *rules {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%s\n\t%s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "\nsuppression:\n\t//replint:ignore rule[,rule...] -- reason\n"+
			"\t(trailing: suppresses its own line; standalone: the next line)\n"+
			"\t//replint:metadata -- reason\n"+
			"\t(on a struct field or type decl: field carries sanctioned\n"+
			"\tnondeterministic metadata; detflow absorbs stores into it)\n"+
			"\t//replint:guarded gen=<counter field>\n"+
			"\t(on a struct field: writes must be post-dominated by a bump\n"+
			"\tof the sibling counter before return; stalegen enforces it)\n")
		return 0
	}

	start := *dir
	if start == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "replint:", err)
			return 2
		}
		start = wd
	}
	moduleDir, err := findModuleRoot(start)
	if err != nil {
		fmt.Fprintln(stderr, "replint:", err)
		return 2
	}

	loader, err := analysis.NewLoader(moduleDir)
	if err != nil {
		fmt.Fprintln(stderr, "replint:", err)
		return 2
	}
	mod, err := analysis.BuildModule(loader)
	if err != nil {
		fmt.Fprintln(stderr, "replint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "replint:", err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "replint: no packages match", patterns)
		return 2
	}

	// relFile maps a finding's absolute filename to a module-relative,
	// forward-slash path so output is stable across -C and cwd.
	relFile := func(name string) string {
		if rel, err := filepath.Rel(moduleDir, name); err == nil {
			return filepath.ToSlash(rel)
		}
		return filepath.ToSlash(name)
	}

	machine := *asJSON || *asSARIF
	bad := 0
	var jsonOut []jsonFinding
	var allFindings []analysis.Finding
	for _, path := range paths {
		pkg := mod.Package(path)
		if pkg == nil {
			fmt.Fprintf(stderr, "replint: %s: not part of the module\n", path)
			return 2
		}
		if *verbose {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "replint: typecheck (best-effort): %v\n", terr)
			}
		}
		for _, f := range mod.RunPackage(pkg, analysis.All()) {
			f.Pos.Filename = relFile(f.Pos.Filename)
			if *asJSON {
				jsonOut = append(jsonOut, jsonFinding{
					File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
					Rule: f.Rule, Msg: f.Msg,
					Suppressed: f.Suppressed, Reason: f.Reason,
				})
			}
			if *asSARIF {
				allFindings = append(allFindings, f)
			}
			if f.Suppressed {
				if !machine && *verbose {
					fmt.Fprintf(stdout, "%s [suppressed: %s]\n", f, f.Reason)
				}
				continue
			}
			if !machine {
				fmt.Fprintln(stdout, f)
			}
			bad++
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if jsonOut == nil {
			jsonOut = []jsonFinding{}
		}
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintln(stderr, "replint:", err)
			return 2
		}
	}
	if *asSARIF {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sarifReport(analysis.All(), allFindings)); err != nil {
			fmt.Fprintln(stderr, "replint:", err)
			return 2
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "replint: %d finding(s)\n", bad)
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
