// Command replint runs the repository's determinism/correctness rule
// suite (internal/analysis) over module packages. It needs no network
// and no external tooling: packages are parsed and type-checked with
// the standard library alone.
//
// Usage:
//
//	replint [flags] [packages]
//
// Packages default to ./... relative to the module root, which is
// found by walking up from the working directory to go.mod. The whole
// module is always loaded and summarized (the interprocedural rules
// need module-wide facts); the package arguments select which
// packages' findings are reported.
//
// With -cache-dir, replint keeps a two-tier per-package fact cache.
// Closure-local rule findings are keyed by a content hash of the
// package's sources, its module-local import closure, the rule set,
// and the toolchain version; module-wide rule findings (interface
// dispatch, reverse call edges, global field facts, caller-bound
// points-to sets — anything an edit elsewhere in the module can
// change) are keyed by a whole-module content hash. A fully warm run
// skips loading and type-checking the module entirely and replays the
// stored findings byte-identically. Editing one file fully rebuilds
// only that package and its reverse dependencies; other packages
// replay their closure-local findings and re-run just the module-wide
// rules, so stale cross-package facts can never be replayed. -no-cache
// bypasses the cache without deleting it. On the all-hit fast path no
// type checking happens, so -v has no type-check diagnostics to show.
//
// Findings print with paths relative to the module root regardless of
// -C or the working directory, so editor jump-to-line works from
// anywhere, and are globally sorted by (file, line, col, rule) in
// every output mode. With -json, output is an object
// {"findings": [...], "cache": {...}} where findings carry
// {file, line, col, rule, msg, suppressed, reason} and cache reports
// {enabled, hits, misses, fact_builds, mod_refreshes} — suppressed
// findings included and flagged. With -sarif, findings are emitted as a SARIF 2.1.0 log
// suitable for GitHub code scanning upload: unsuppressed findings are
// level=error, suppressed ones are level=note with an inSource
// suppression carrying the directive's justification.
//
// Exit status is 1 when any unsuppressed finding (or malformed replint
// directive) is reported, 2 on operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Rule       string `json:"rule"`
	Msg        string `json:"msg"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// cacheStats is the -json wire form of the fact-cache counters.
type cacheStats struct {
	Enabled bool `json:"enabled"`
	// Hits counts packages whose closure-local findings replayed from
	// the cache (full and partial hits both: neither re-runs the local
	// rule tier).
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	// FactBuilds counts packages whose facts were recomputed in full
	// this run: zero on a fully warm cache, len(packages) with the
	// cache disabled.
	FactBuilds int `json:"fact_builds"`
	// ModRefreshes counts partial hits: packages whose module-wide
	// rules re-ran because some other module package changed, while
	// their closure-local findings replayed from the cache.
	ModRefreshes int `json:"mod_refreshes"`
}

// jsonOutput is the top-level -json envelope.
type jsonOutput struct {
	Findings []jsonFinding `json:"findings"`
	Cache    cacheStats    `json:"cache"`
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("replint", flag.ExitOnError)
	fs.SetOutput(stderr)
	rules := fs.Bool("rules", false, "print the rule catalog and exit")
	verbose := fs.Bool("v", false, "also show suppressed findings and type-check diagnostics")
	dir := fs.String("C", "", "change to this directory before resolving the module root")
	asJSON := fs.Bool("json", false, "emit a JSON object {findings, cache} (suppressed findings included, flagged)")
	asSARIF := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log (suppressed findings included as suppressed notes)")
	cacheDir := fs.String("cache-dir", "", "persist per-package findings keyed by content hash under this directory")
	noCache := fs.Bool("no-cache", false, "bypass the fact cache even when -cache-dir is set")
	fs.Parse(argv)

	if *rules {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%s\n\t%s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "\nsuppression:\n\t//replint:ignore rule[,rule...] -- reason\n"+
			"\t(trailing: suppresses its own line; standalone: the next line)\n"+
			"\t//replint:metadata -- reason\n"+
			"\t(on a struct field or type decl: field carries sanctioned\n"+
			"\tnondeterministic metadata; detflow absorbs stores into it)\n"+
			"\t//replint:guarded gen=<counter field>\n"+
			"\t(on a struct field: writes must be post-dominated by a bump\n"+
			"\tof the sibling counter before return; stalegen enforces it)\n")
		return 0
	}

	start := *dir
	if start == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "replint:", err)
			return 2
		}
		start = wd
	}
	moduleDir, err := findModuleRoot(start)
	if err != nil {
		fmt.Fprintln(stderr, "replint:", err)
		return 2
	}

	loader, err := analysis.NewLoader(moduleDir)
	if err != nil {
		fmt.Fprintln(stderr, "replint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "replint:", err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "replint: no packages match", patterns)
		return 2
	}

	// relFile maps a finding's absolute filename to a module-relative,
	// forward-slash path so output is stable across -C and cwd.
	relFile := func(name string) string {
		if rel, err := filepath.Rel(moduleDir, name); err == nil {
			return filepath.ToSlash(rel)
		}
		return filepath.ToSlash(name)
	}

	// Cache lookup phase: resolve each requested package against both
	// content keys. Key computation parses import clauses only — on a
	// fully warm cache the module is never loaded or type-checked.
	// Outcomes per package:
	//   full hit      both tiers replay, no work;
	//   partial hit   closure key matches but another module package
	//                 changed — local findings replay, the module-wide
	//                 rules re-run (their facts cross the closure);
	//   miss          the package or an import changed — full re-run.
	var cache *analysis.FactCache
	var keys map[string]string
	var modKey string
	if *cacheDir != "" && !*noCache {
		cache, err = analysis.NewFactCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, "replint:", err)
			return 2
		}
		keys, modKey, err = analysis.CacheKeys(loader, analysis.All(), paths)
		if err != nil {
			// Unkeyable tree (e.g. a parse error): fall back to a full
			// uncached run rather than failing the lint.
			fmt.Fprintln(stderr, "replint: cache disabled:", err)
			cache = nil
		}
	}
	results := map[string][]analysis.CachedFinding{}
	cachedLocal := map[string][]analysis.CachedFinding{}
	var missed, stale []string
	for _, path := range paths {
		if cache != nil {
			local, mod, localOK, modOK := cache.Get(path, keys[path], modKey)
			if localOK && modOK {
				results[path] = append(local, mod...)
				continue
			}
			if localOK {
				cachedLocal[path] = local
				stale = append(stale, path)
				continue
			}
		}
		missed = append(missed, path)
	}

	// Rebuild phase: load the whole module once (the interprocedural
	// rules need module-wide facts), run the full catalog over missed
	// packages and only the module-wide subset over stale ones, in
	// parallel.
	if len(missed)+len(stale) > 0 {
		mod, err := analysis.BuildModule(loader)
		if err != nil {
			fmt.Fprintln(stderr, "replint:", err)
			return 2
		}
		for _, path := range append(append([]string{}, missed...), stale...) {
			pkg := mod.Package(path)
			if pkg == nil {
				fmt.Fprintf(stderr, "replint: %s: not part of the module\n", path)
				return 2
			}
			if *verbose {
				for _, terr := range pkg.TypeErrors {
					fmt.Fprintf(stderr, "replint: typecheck (best-effort): %v\n", terr)
				}
			}
		}
		toCached := func(fs []analysis.Finding) (local, modWide []analysis.CachedFinding) {
			local, modWide = []analysis.CachedFinding{}, []analysis.CachedFinding{}
			for _, f := range fs {
				cf := analysis.CachedFinding{
					File: relFile(f.Pos.Filename), Line: f.Pos.Line, Col: f.Pos.Column,
					Rule: f.Rule, Msg: f.Msg,
					Suppressed: f.Suppressed, Reason: f.Reason,
				}
				if analysis.IsModWide(f.Rule) {
					modWide = append(modWide, cf)
				} else {
					local = append(local, cf)
				}
			}
			return local, modWide
		}
		for path, fs := range mod.RunPackages(missed, analysis.All(), 0) {
			local, modWide := toCached(fs)
			results[path] = append(local, modWide...)
			if cache != nil {
				if err := cache.Put(path, keys[path], modKey, local, modWide); err != nil {
					fmt.Fprintln(stderr, "replint: cache write:", err)
				}
			}
		}
		if len(stale) > 0 {
			for path, fs := range mod.RunPackages(stale, analysis.ModWideAnalyzers(), 0) {
				// The subset run re-emits directive findings; those are
				// closure-local and already replayed from the cache, so
				// keep only the module-wide rules' findings.
				_, modWide := toCached(fs)
				results[path] = append(cachedLocal[path], modWide...)
				if err := cache.Put(path, keys[path], modKey, cachedLocal[path], modWide); err != nil {
					fmt.Fprintln(stderr, "replint: cache write:", err)
				}
			}
		}
	}

	// Merge and globally sort: output order is (file, line, col, rule)
	// regardless of package boundaries, cache hits, or worker schedule.
	var all []analysis.CachedFinding
	for _, path := range paths {
		all = append(all, results[path]...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		// Total order: two findings can share a position and rule but
		// differ in message (e.g. one racing write reaching two abstract
		// objects), and sort.Slice is unstable.
		return a.Msg < b.Msg
	})

	stats := cacheStats{Enabled: cache != nil, FactBuilds: len(missed), ModRefreshes: len(stale)}
	if cache != nil {
		stats.Hits, stats.Misses = cache.Hits()+cache.Partials(), cache.Misses()
	}

	machine := *asJSON || *asSARIF
	bad := 0
	for _, f := range all {
		if f.Suppressed {
			if !machine && *verbose {
				fmt.Fprintf(stdout, "%s:%d:%d: %s: %s [suppressed: %s]\n",
					f.File, f.Line, f.Col, f.Rule, f.Msg, f.Reason)
			}
			continue
		}
		if !machine {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Rule, f.Msg)
		}
		bad++
	}

	if *asJSON {
		out := jsonOutput{Findings: []jsonFinding{}, Cache: stats}
		for _, f := range all {
			out.Findings = append(out.Findings, jsonFinding{
				File: f.File, Line: f.Line, Col: f.Col,
				Rule: f.Rule, Msg: f.Msg,
				Suppressed: f.Suppressed, Reason: f.Reason,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "replint:", err)
			return 2
		}
	}
	if *asSARIF {
		findings := make([]analysis.Finding, 0, len(all))
		for _, f := range all {
			findings = append(findings, analysis.Finding{
				Pos:  token.Position{Filename: f.File, Line: f.Line, Column: f.Col},
				Rule: f.Rule, Msg: f.Msg,
				Suppressed: f.Suppressed, Reason: f.Reason,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sarifReport(analysis.All(), findings)); err != nil {
			fmt.Fprintln(stderr, "replint:", err)
			return 2
		}
	}
	if cache != nil {
		fmt.Fprintf(stderr, "replint: cache: %d hit(s), %d miss(es), %d fact build(s), %d mod-rule refresh(es)\n",
			stats.Hits, stats.Misses, stats.FactBuilds, stats.ModRefreshes)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "replint: %d finding(s)\n", bad)
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
