// Command replint runs the repository's determinism/correctness rule
// suite (internal/analysis) over module packages. It needs no network
// and no external tooling: packages are parsed and type-checked with
// the standard library alone.
//
// Usage:
//
//	replint [flags] [packages]
//
// Packages default to ./... relative to the module root, which is
// found by walking up from the working directory to go.mod.
//
// Exit status is 1 when any unsuppressed finding (or malformed replint
// directive) is reported, 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("replint", flag.ExitOnError)
	rules := fs.Bool("rules", false, "print the rule catalog and exit")
	verbose := fs.Bool("v", false, "also show suppressed findings and type-check diagnostics")
	dir := fs.String("C", "", "change to this directory before resolving the module root")
	fs.Parse(argv)

	if *rules {
		for _, a := range analysis.All() {
			fmt.Printf("%s\n\t%s\n", a.Name, a.Doc)
		}
		fmt.Printf("\nsuppression:\n\t//replint:ignore rule[,rule...] -- reason\n" +
			"\t(trailing: suppresses its own line; standalone: the next line)\n")
		return 0
	}

	start := *dir
	if start == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(os.Stderr, "replint:", err)
			return 2
		}
		start = wd
	}
	moduleDir, err := findModuleRoot(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replint:", err)
		return 2
	}

	loader, err := analysis.NewLoader(moduleDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replint:", err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "replint: no packages match", patterns)
		return 2
	}

	bad := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "replint: %s: %v\n", path, err)
			return 2
		}
		if *verbose {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "replint: typecheck (best-effort): %v\n", terr)
			}
		}
		for _, f := range analysis.RunAnalyzers(pkg, analysis.All()) {
			if f.Suppressed {
				if *verbose {
					fmt.Printf("%s [suppressed: %s]\n", f, f.Reason)
				}
				continue
			}
			fmt.Println(f)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "replint: %d finding(s)\n", bad)
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
