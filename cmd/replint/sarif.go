package main

import (
	"repro/internal/analysis"
)

// SARIF 2.1.0 wire types — the minimal subset GitHub code scanning
// ingests. Field order inside the structs follows the spec's examples
// so encoded output diffs cleanly against other tools'.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// sarifReport shapes findings into one SARIF run. Every catalog rule
// is listed in the driver (plus the reserved directive pseudo-rule),
// results reference rules by index, suppressed findings carry an
// inSource suppression with the directive's justification, and
// unsuppressed ones are level=error so code scanning gates on them.
func sarifReport(analyzers []*analysis.Analyzer, findings []analysis.Finding) sarifLog {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	index := map[string]int{}
	for _, a := range analyzers {
		index[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	index["directive"] = len(rules)
	rules = append(rules, sarifRule{ID: "directive",
		ShortDescription: sarifMessage{Text: "malformed or misplaced replint directive"}})

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		r := sarifResult{
			RuleID:    f.Rule,
			RuleIndex: index[f.Rule],
			Level:     "error",
			Message:   sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: f.Pos.Filename},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		}
		if f.Suppressed {
			r.Level = "note"
			r.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: f.Reason}}
		}
		results = append(results, r)
	}

	return sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "replint", Rules: rules}},
			Results: results,
		}},
	}
}
