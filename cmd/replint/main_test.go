package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// fixtureRoot is the analysis fixture module: a self-contained go.mod
// tree with known findings in every rule.
func fixtureRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestModuleRelativePaths runs replint against the fixture module from
// several working directories and directories passed via -C: finding
// paths must come out module-relative with forward slashes regardless,
// so editor jump-to-line and the CI problem matcher work from anywhere.
func TestModuleRelativePaths(t *testing.T) {
	root := fixtureRoot(t)
	sub := filepath.Join(root, "internal", "timing")
	cases := []struct {
		name  string
		chdir string // t.Chdir target; "" stays put
		argv  []string
	}{
		{"dash-C-module-root", "", []string{"-C", root, "./..."}},
		{"dash-C-subdirectory", "", []string{"-C", sub, "./..."}},
		{"cwd-module-root", root, []string{"./..."}},
		{"cwd-subdirectory", sub, []string{"./..."}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.chdir != "" {
				t.Chdir(tc.chdir)
			}
			var stdout, stderr bytes.Buffer
			code := run(tc.argv, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1 (fixtures contain findings); stderr:\n%s", code, stderr.String())
			}
			lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
			if len(lines) == 0 || lines[0] == "" {
				t.Fatal("no findings printed")
			}
			for _, line := range lines {
				if strings.Contains(line, "\\") {
					t.Errorf("finding path contains a backslash: %q", line)
				}
				if !strings.HasPrefix(line, "internal/") {
					t.Errorf("finding path is not module-relative: %q", line)
				}
			}
		})
	}
}

// TestJSONOutput decodes -json output and checks the wire contract:
// a {findings, cache} envelope with module-relative files, populated
// positions, suppressed findings included and flagged with their
// directive reason, and cache counters reporting a disabled cache.
func TestJSONOutput(t *testing.T) {
	root := fixtureRoot(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var out jsonOutput
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("output is not a JSON {findings, cache} object: %v\n%s", err, stdout.String())
	}
	findings := out.Findings
	if len(findings) == 0 {
		t.Fatal("JSON output is empty; fixtures contain findings")
	}
	if out.Cache.Enabled || out.Cache.Hits != 0 || out.Cache.Misses != 0 {
		t.Errorf("cache stats without -cache-dir = %+v, want disabled zeros", out.Cache)
	}
	if out.Cache.FactBuilds == 0 {
		t.Error("fact_builds = 0 on an uncached run; every package was analyzed")
	}
	if !sort.SliceIsSorted(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	}) {
		t.Error("findings are not globally sorted by (file, line, col, rule)")
	}
	var suppressed, unsuppressed int
	for _, f := range findings {
		if f.File == "" || filepath.IsAbs(f.File) || strings.Contains(f.File, "\\") {
			t.Errorf("file %q is not a module-relative forward-slash path", f.File)
		}
		if f.Line <= 0 || f.Col <= 0 {
			t.Errorf("%s: missing position: line=%d col=%d", f.File, f.Line, f.Col)
		}
		if f.Rule == "" || f.Msg == "" {
			t.Errorf("%s:%d: empty rule or message", f.File, f.Line)
		}
		if f.Suppressed {
			suppressed++
			if f.Reason == "" {
				t.Errorf("%s:%d: suppressed finding lost its directive reason", f.File, f.Line)
			}
		} else {
			unsuppressed++
		}
	}
	if suppressed == 0 {
		t.Error("no suppressed findings in JSON output; fixtures have wantsuppressed lines")
	}
	if unsuppressed == 0 {
		t.Error("no unsuppressed findings in JSON output")
	}
}

// TestRulesCatalog checks that every shipped rule appears in -rules.
func TestRulesCatalog(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rules"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-rules exit code = %d, want 0", code)
	}
	for _, rule := range []string{
		"maprange", "floatcmp", "scratchleak", "sharedwrite",
		"detflow", "ctxstride", "hotalloc", "shardwrite",
	} {
		if !strings.Contains(stdout.String(), rule+"\n") {
			t.Errorf("-rules catalog is missing %s", rule)
		}
	}
	for _, directive := range []string{"replint:ignore", "replint:metadata"} {
		if !strings.Contains(stdout.String(), directive) {
			t.Errorf("-rules catalog does not document //%s", directive)
		}
	}
}

// replintJSON runs replint with -json plus extra args against the
// fixture module and returns the decoded envelope and raw output.
func replintJSON(t *testing.T, root string, extra ...string) (jsonOutput, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	argv := append([]string{"-C", root, "-json"}, extra...)
	argv = append(argv, "./...")
	code := run(argv, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var out jsonOutput
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	return out, stdout.String()
}

// TestCacheWarmRun drives the cold→warm contract end to end: the first
// run misses every package and populates the cache; the second run over
// the unchanged tree hits every package, performs zero fact builds, and
// emits byte-identical findings.
func TestCacheWarmRun(t *testing.T) {
	root := fixtureRoot(t)
	cacheDir := filepath.Join(t.TempDir(), "facts")

	cold, coldRaw := replintJSON(t, root, "-cache-dir", cacheDir)
	if !cold.Cache.Enabled {
		t.Fatal("cold run: cache not enabled")
	}
	if cold.Cache.Hits != 0 || cold.Cache.Misses == 0 {
		t.Errorf("cold run: %d hits / %d misses, want 0 hits and all misses", cold.Cache.Hits, cold.Cache.Misses)
	}
	if cold.Cache.FactBuilds != cold.Cache.Misses {
		t.Errorf("cold run: fact_builds = %d, want %d (one per miss)", cold.Cache.FactBuilds, cold.Cache.Misses)
	}

	warm, warmRaw := replintJSON(t, root, "-cache-dir", cacheDir)
	if warm.Cache.Misses != 0 || warm.Cache.FactBuilds != 0 {
		t.Errorf("warm run: %d misses / %d fact builds, want 0 / 0", warm.Cache.Misses, warm.Cache.FactBuilds)
	}
	if warm.Cache.Hits != cold.Cache.Misses {
		t.Errorf("warm run: %d hits, want %d", warm.Cache.Hits, cold.Cache.Misses)
	}
	// Byte-identical findings modulo the cache counters: compare the
	// findings arrays re-encoded, which pins order and every field.
	coldF, _ := json.Marshal(cold.Findings)
	warmF, _ := json.Marshal(warm.Findings)
	if !bytes.Equal(coldF, warmF) {
		t.Errorf("warm findings differ from cold findings:\ncold %s\nwarm %s", coldRaw, warmRaw)
	}
}

// copyTree duplicates a directory tree (regular files only; the
// module stays on go1.22, which predates os.CopyFS).
func copyTree(dst, src string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}

// TestCacheInvalidation edits one file in a scratch copy of a package
// and checks that exactly that package misses on the next run while
// every other entry still hits. The fixture module's internal packages
// are leaves (nothing imports them), so a one-file edit must invalidate
// precisely one package.
func TestCacheInvalidation(t *testing.T) {
	src := fixtureRoot(t)
	root := filepath.Join(t.TempDir(), "fixture")
	if err := copyTree(root, src); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(t.TempDir(), "facts")

	cold, _ := replintJSON(t, root, "-cache-dir", cacheDir)
	total := cold.Cache.Misses

	target := filepath.Join(root, "internal", "timing", "floatcmp.go")
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(target, append(data, []byte("\n// cache-buster\n")...), 0o644); err != nil {
		t.Fatal(err)
	}

	edited, _ := replintJSON(t, root, "-cache-dir", cacheDir)
	if edited.Cache.Misses != 1 || edited.Cache.FactBuilds != 1 {
		t.Errorf("after one-file edit: %d misses / %d fact builds, want 1 / 1",
			edited.Cache.Misses, edited.Cache.FactBuilds)
	}
	if edited.Cache.Hits != total-1 {
		t.Errorf("after one-file edit: %d hits, want %d", edited.Cache.Hits, total-1)
	}
	// The edit rotates the whole-module key, so every OTHER package must
	// re-run its module-wide rules (their facts cross the import
	// closure) while replaying closure-local findings from the cache.
	if edited.Cache.ModRefreshes != total-1 {
		t.Errorf("after one-file edit: %d mod-rule refreshes, want %d",
			edited.Cache.ModRefreshes, total-1)
	}

	// A third run over the now-unchanged tree is fully warm again: the
	// partial entries were rewritten under the new module key.
	warm, _ := replintJSON(t, root, "-cache-dir", cacheDir)
	if warm.Cache.Hits != total || warm.Cache.Misses != 0 ||
		warm.Cache.FactBuilds != 0 || warm.Cache.ModRefreshes != 0 {
		t.Errorf("re-warmed run: %+v, want %d full hits and no rebuilds", warm.Cache, total)
	}
}

// TestNoCacheFlag: -no-cache bypasses a populated cache entirely.
func TestNoCacheFlag(t *testing.T) {
	root := fixtureRoot(t)
	cacheDir := filepath.Join(t.TempDir(), "facts")
	replintJSON(t, root, "-cache-dir", cacheDir) // populate

	out, _ := replintJSON(t, root, "-cache-dir", cacheDir, "-no-cache")
	if out.Cache.Enabled || out.Cache.Hits != 0 {
		t.Errorf("-no-cache run reported cache %+v, want disabled with 0 hits", out.Cache)
	}
	if out.Cache.FactBuilds == 0 {
		t.Error("-no-cache run performed no fact builds")
	}
}
