package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureRoot is the analysis fixture module: a self-contained go.mod
// tree with known findings in every rule.
func fixtureRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestModuleRelativePaths runs replint against the fixture module from
// several working directories and directories passed via -C: finding
// paths must come out module-relative with forward slashes regardless,
// so editor jump-to-line and the CI problem matcher work from anywhere.
func TestModuleRelativePaths(t *testing.T) {
	root := fixtureRoot(t)
	sub := filepath.Join(root, "internal", "timing")
	cases := []struct {
		name  string
		chdir string // t.Chdir target; "" stays put
		argv  []string
	}{
		{"dash-C-module-root", "", []string{"-C", root, "./..."}},
		{"dash-C-subdirectory", "", []string{"-C", sub, "./..."}},
		{"cwd-module-root", root, []string{"./..."}},
		{"cwd-subdirectory", sub, []string{"./..."}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.chdir != "" {
				t.Chdir(tc.chdir)
			}
			var stdout, stderr bytes.Buffer
			code := run(tc.argv, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1 (fixtures contain findings); stderr:\n%s", code, stderr.String())
			}
			lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
			if len(lines) == 0 || lines[0] == "" {
				t.Fatal("no findings printed")
			}
			for _, line := range lines {
				if strings.Contains(line, "\\") {
					t.Errorf("finding path contains a backslash: %q", line)
				}
				if !strings.HasPrefix(line, "internal/") {
					t.Errorf("finding path is not module-relative: %q", line)
				}
			}
		})
	}
}

// TestJSONOutput decodes -json output and checks the wire contract:
// module-relative files, populated positions, suppressed findings
// included and flagged with their directive reason.
func TestJSONOutput(t *testing.T) {
	root := fixtureRoot(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON finding array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output is empty; fixtures contain findings")
	}
	var suppressed, unsuppressed int
	for _, f := range findings {
		if f.File == "" || filepath.IsAbs(f.File) || strings.Contains(f.File, "\\") {
			t.Errorf("file %q is not a module-relative forward-slash path", f.File)
		}
		if f.Line <= 0 || f.Col <= 0 {
			t.Errorf("%s: missing position: line=%d col=%d", f.File, f.Line, f.Col)
		}
		if f.Rule == "" || f.Msg == "" {
			t.Errorf("%s:%d: empty rule or message", f.File, f.Line)
		}
		if f.Suppressed {
			suppressed++
			if f.Reason == "" {
				t.Errorf("%s:%d: suppressed finding lost its directive reason", f.File, f.Line)
			}
		} else {
			unsuppressed++
		}
	}
	if suppressed == 0 {
		t.Error("no suppressed findings in JSON output; fixtures have wantsuppressed lines")
	}
	if unsuppressed == 0 {
		t.Error("no unsuppressed findings in JSON output")
	}
}

// TestRulesCatalog checks that every shipped rule appears in -rules.
func TestRulesCatalog(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rules"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-rules exit code = %d, want 0", code)
	}
	for _, rule := range []string{
		"maprange", "floatcmp", "scratchleak", "sharedwrite",
		"detflow", "ctxstride", "hotalloc", "shardwrite",
	} {
		if !strings.Contains(stdout.String(), rule+"\n") {
			t.Errorf("-rules catalog is missing %s", rule)
		}
	}
	for _, directive := range []string{"replint:ignore", "replint:metadata"} {
		if !strings.Contains(stdout.String(), directive) {
			t.Errorf("-rules catalog does not document //%s", directive)
		}
	}
}
