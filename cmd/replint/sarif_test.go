package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"

	"repro/internal/analysis"
)

// TestSARIFReport table-tests the pure finding→SARIF shaping: rule
// catalog indexing, error/note levels, suppression records, and
// location encoding.
func TestSARIFReport(t *testing.T) {
	analyzers := analysis.All()
	ruleIdx := map[string]int{}
	for i, a := range analyzers {
		ruleIdx[a.Name] = i
	}

	finding := func(rule, file string, line, col int, msg string) analysis.Finding {
		return analysis.Finding{
			Pos:  token.Position{Filename: file, Line: line, Column: col},
			Rule: rule, Msg: msg,
		}
	}
	suppressed := func(f analysis.Finding, reason string) analysis.Finding {
		f.Suppressed = true
		f.Reason = reason
		return f
	}

	cases := []struct {
		name     string
		findings []analysis.Finding
		check    func(t *testing.T, log sarifLog)
	}{
		{
			name:     "empty run still lists the catalog",
			findings: nil,
			check: func(t *testing.T, log sarifLog) {
				if len(log.Runs) != 1 {
					t.Fatalf("runs = %d, want 1", len(log.Runs))
				}
				run := log.Runs[0]
				if len(run.Results) != 0 {
					t.Errorf("results = %d, want 0", len(run.Results))
				}
				// Every analyzer plus the directive pseudo-rule.
				if got, want := len(run.Tool.Driver.Rules), len(analyzers)+1; got != want {
					t.Errorf("driver rules = %d, want %d", got, want)
				}
				last := run.Tool.Driver.Rules[len(run.Tool.Driver.Rules)-1]
				if last.ID != "directive" {
					t.Errorf("last rule = %q, want directive", last.ID)
				}
			},
		},
		{
			name: "unsuppressed finding is an error with a location",
			findings: []analysis.Finding{
				finding("stalegen", "internal/timing/spt_cache.go", 184, 3,
					"write to guarded field downT is not followed by a bump of builtGen on every path to return"),
			},
			check: func(t *testing.T, log sarifLog) {
				r := log.Runs[0].Results[0]
				if r.Level != "error" {
					t.Errorf("level = %q, want error", r.Level)
				}
				if r.RuleID != "stalegen" || r.RuleIndex != ruleIdx["stalegen"] {
					t.Errorf("ruleId/index = %q/%d, want stalegen/%d", r.RuleID, r.RuleIndex, ruleIdx["stalegen"])
				}
				if len(r.Suppressions) != 0 {
					t.Errorf("suppressions = %d, want 0", len(r.Suppressions))
				}
				loc := r.Locations[0].PhysicalLocation
				if loc.ArtifactLocation.URI != "internal/timing/spt_cache.go" {
					t.Errorf("uri = %q", loc.ArtifactLocation.URI)
				}
				if loc.Region.StartLine != 184 || loc.Region.StartColumn != 3 {
					t.Errorf("region = %d:%d, want 184:3", loc.Region.StartLine, loc.Region.StartColumn)
				}
			},
		},
		{
			name: "suppressed finding is a note with an inSource suppression",
			findings: []analysis.Finding{
				suppressed(finding("wgleak", "internal/serve/manager.go", 42, 2, "goroutine has no join"),
					"best-effort notification"),
			},
			check: func(t *testing.T, log sarifLog) {
				r := log.Runs[0].Results[0]
				if r.Level != "note" {
					t.Errorf("level = %q, want note", r.Level)
				}
				if len(r.Suppressions) != 1 {
					t.Fatalf("suppressions = %d, want 1", len(r.Suppressions))
				}
				s := r.Suppressions[0]
				if s.Kind != "inSource" || s.Justification != "best-effort notification" {
					t.Errorf("suppression = %+v", s)
				}
			},
		},
		{
			name: "directive findings index past the catalog",
			findings: []analysis.Finding{
				finding("directive", "internal/core/x.go", 7, 1, "malformed replint directive"),
			},
			check: func(t *testing.T, log sarifLog) {
				r := log.Runs[0].Results[0]
				if r.RuleIndex != len(analyzers) {
					t.Errorf("ruleIndex = %d, want %d", r.RuleIndex, len(analyzers))
				}
				if got := log.Runs[0].Tool.Driver.Rules[r.RuleIndex].ID; got != "directive" {
					t.Errorf("indexed rule = %q, want directive", got)
				}
			},
		},
		{
			name: "mixed findings keep input order",
			findings: []analysis.Finding{
				finding("maprange", "a.go", 1, 1, "m1"),
				suppressed(finding("floatcmp", "b.go", 2, 2, "m2"), "r2"),
				finding("deferbal", "c.go", 3, 3, "m3"),
			},
			check: func(t *testing.T, log sarifLog) {
				got := log.Runs[0].Results
				if len(got) != 3 {
					t.Fatalf("results = %d, want 3", len(got))
				}
				for i, want := range []string{"maprange", "floatcmp", "deferbal"} {
					if got[i].RuleID != want {
						t.Errorf("result %d rule = %q, want %q", i, got[i].RuleID, want)
					}
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			log := sarifReport(analyzers, tc.findings)
			if log.Version != "2.1.0" || log.Schema == "" {
				t.Errorf("version/schema = %q/%q", log.Version, log.Schema)
			}
			// The log must round-trip through encoding/json: code
			// scanning consumes the serialized form.
			raw, err := json.Marshal(log)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var back sarifLog
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			tc.check(t, back)
		})
	}
}

// TestSARIFEndToEnd drives the real driver with -sarif over the
// fixture module: output must parse as SARIF, contain both error and
// suppressed-note results, and the exit code must still reflect the
// unsuppressed findings.
func TestSARIFEndToEnd(t *testing.T) {
	root := fixtureRoot(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "-sarif", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var log sarifLog
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("output is not SARIF: %v", err)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	var errors, notes int
	for _, r := range log.Runs[0].Results {
		switch r.Level {
		case "error":
			errors++
		case "note":
			notes++
			if len(r.Suppressions) == 0 {
				t.Errorf("note result %s has no suppression record", r.RuleID)
			}
		}
		if len(r.Locations) != 1 {
			t.Errorf("result %s has %d locations, want 1", r.RuleID, len(r.Locations))
		}
	}
	if errors == 0 || notes == 0 {
		t.Errorf("errors=%d notes=%d, want both nonzero (fixtures contain fire and suppress cases)", errors, notes)
	}
}
