// Command replload load-tests a repld daemon: it fires N replication
// jobs at bounded concurrency, retries queue rejections with backoff,
// and reports latency percentiles, throughput, rejection counts, and a
// determinism cross-check (identical specs must produce bit-identical
// optimized periods).
//
//	repld -addr :8080 &
//	replload -n 50 -concurrency 8 -circuit ex5p -scale 0.1
//
// Exit status is 1 when any non-rejected job fails or determinism is
// violated.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "repld base URL")
		n           = flag.Int("n", 50, "total jobs to submit")
		concurrency = flag.Int("concurrency", 8, "concurrent in-flight jobs")
		circuit     = flag.String("circuit", "ex5p", "suite circuit per job")
		scale       = flag.Float64("scale", 0.1, "circuit size multiplier")
		algo        = flag.String("algo", "rt", "algorithm per job")
		maxIters    = flag.Int("max-iters", 10, "engine iteration cap per job (0 = engine default)")
		route       = flag.Bool("route", false, "route each job after optimization")
		timeoutMS   = flag.Int("timeout-ms", 0, "per-job timeout (0 = server default)")
		varySeed    = flag.Bool("vary-seed", false, "give each job a distinct placement seed (disables the determinism check)")
		poll        = flag.Duration("poll", 50*time.Millisecond, "status poll interval")
		wait        = flag.Duration("wait", 10*time.Minute, "overall deadline")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *wait)
	defer cancel()

	lg := &loadgen{
		c:        client.New(*addr),
		poll:     *poll,
		varySeed: *varySeed,
		results:  make([]outcome, *n),
		work:     make(chan int),
		spec: serve.JobSpec{
			Circuit:   *circuit,
			Scale:     *scale,
			Algo:      *algo,
			MaxIters:  *maxIters,
			Route:     *route,
			TimeoutMS: *timeoutMS,
		},
	}

	if _, err := lg.c.Health(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "replload: cannot reach %s: %v\n", *addr, err)
		os.Exit(2)
	}

	start := time.Now()
	done := make(chan struct{})
	workers := *concurrency
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		go lg.worker(ctx, done)
	}
	for i := 0; i < *n; i++ {
		lg.work <- i
	}
	close(lg.work)
	for w := 0; w < workers; w++ {
		<-done
	}
	wall := time.Since(start)

	ok := report(lg.results, wall, !*varySeed)
	if !ok {
		os.Exit(1)
	}
}

// outcome records one job's fate from the client's point of view.
type outcome struct {
	state      serve.State
	latency    time.Duration // submit-accepted → terminal
	rejections int           // 429s absorbed before acceptance
	err        string
	// periodBits is the optimized period's bit pattern, for the exact
	// determinism cross-check.
	periodBits uint64
	iterations int
}

// loadgen drives the job stream. Workers claim indices from work and
// write only results[idx] — disjoint slots, no lock needed.
type loadgen struct {
	c        *client.Client
	spec     serve.JobSpec
	poll     time.Duration
	varySeed bool
	work     chan int
	results  []outcome
}

func (lg *loadgen) worker(ctx context.Context, done chan<- struct{}) {
	for idx := range lg.work {
		lg.results[idx] = lg.runJob(ctx, idx)
	}
	done <- struct{}{}
}

// runJob submits one job (retrying queue rejections with backoff,
// counting them) and waits for its terminal state.
func (lg *loadgen) runJob(ctx context.Context, idx int) outcome {
	spec := lg.spec
	if lg.varySeed {
		spec.Seed = int64(idx + 1)
	}
	var out outcome
	backoff := 50 * time.Millisecond
	var st serve.Status
	for {
		var err error
		st, err = lg.c.Submit(ctx, spec)
		if err == nil {
			break
		}
		if errors.Is(err, client.ErrQueueFull) {
			// Backpressure is the server doing its job; absorb it and
			// count it.
			out.rejections++
			select {
			case <-ctx.Done():
				out.state = serve.StateFailed
				out.err = "deadline while backing off from 429"
				return out
			case <-time.After(backoff):
			}
			if backoff < time.Second {
				backoff *= 2
			}
			continue
		}
		out.state = serve.StateFailed
		out.err = "submit: " + err.Error()
		return out
	}
	t0 := time.Now()
	fin, err := lg.c.Wait(ctx, st.ID, lg.poll)
	out.latency = time.Since(t0)
	if err != nil {
		out.state = serve.StateFailed
		out.err = "wait: " + err.Error()
		return out
	}
	out.state = fin.State
	out.err = fin.Error
	if fin.Result != nil {
		out.periodBits = math.Float64bits(fin.Result.OptimizedPeriod)
		out.iterations = fin.Result.Iterations
	}
	return out
}

// report prints the summary and returns false on failures or broken
// determinism.
func report(results []outcome, wall time.Duration, checkDeterminism bool) bool {
	var completed, failed, cancelled, rejections int
	var lats []float64
	for i := range results {
		r := &results[i]
		rejections += r.rejections
		switch r.state {
		case serve.StateDone:
			completed++
			lats = append(lats, r.latency.Seconds())
		case serve.StateCancelled:
			cancelled++
		default:
			failed++
		}
	}
	fmt.Printf("jobs: %d total, %d completed, %d cancelled, %d failed; %d queue rejections absorbed\n",
		len(results), completed, cancelled, failed, rejections)
	fmt.Printf("wall: %.2fs, throughput %.2f jobs/s\n",
		wall.Seconds(), float64(completed)/wall.Seconds())
	if len(lats) > 0 {
		sort.Float64s(lats)
		mean := 0.0
		for _, l := range lats {
			mean += l
		}
		mean /= float64(len(lats))
		fmt.Printf("latency: mean %.0fms  p50 %.0fms  p90 %.0fms  p99 %.0fms  max %.0fms\n",
			mean*1e3, pctl(lats, 50)*1e3, pctl(lats, 90)*1e3, pctl(lats, 99)*1e3,
			lats[len(lats)-1]*1e3)
	}
	for i := range results {
		if results[i].state == serve.StateFailed {
			fmt.Printf("  FAILED job %d: %s\n", i, results[i].err)
		}
	}
	ok := failed == 0
	if checkDeterminism && completed > 1 {
		// All jobs ran the identical spec: every completed one must
		// report the bit-identical optimized period and iteration
		// count, or the engine's determinism contract broke somewhere
		// between the queue and the wavefront.
		var refBits uint64
		refIters, have := 0, false
		mismatches := 0
		for i := range results {
			r := &results[i]
			if r.state != serve.StateDone {
				continue
			}
			if !have {
				refBits, refIters, have = r.periodBits, r.iterations, true
				continue
			}
			if r.periodBits != refBits || r.iterations != refIters {
				mismatches++
			}
		}
		if mismatches > 0 {
			fmt.Printf("DETERMINISM VIOLATION: %d job(s) disagree with the reference result\n", mismatches)
			ok = false
		} else {
			fmt.Printf("determinism: %d identical jobs, bit-identical results\n", completed)
		}
	}
	return ok
}

// pctl returns the p-th percentile (nearest-rank) of sorted values.
func pctl(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
