// Command replload load-tests a repld daemon or cluster: it fires N
// replication jobs at bounded concurrency across one or more
// endpoints, absorbs 429 backpressure with the client's jittered
// exponential backoff, and reports latency percentiles (overall and
// per executing node), throughput, the cluster's cache hit rate, and
// a determinism cross-check (identical specs must produce
// bit-identical results, wherever and however they were served).
//
//	repld -addr :8080 &
//	replload -n 50 -concurrency 8 -circuit ex5p -scale 0.1
//
// Against a cluster, list every member and introduce duplicates:
//
//	replload -addrs http://n1:8081,http://n2:8082,http://n3:8083 \
//	         -n 30 -distinct 15
//
// -distinct K cycles K distinct placement seeds across the N jobs, so
// K < N submits duplicate specs the cluster should coalesce or serve
// from its result cache.
//
// Exit status is 1 when any job fails or determinism is violated.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "repld base URL")
		addrs       = flag.String("addrs", "", "comma-separated endpoint list (overrides -addr)")
		n           = flag.Int("n", 50, "total jobs to submit")
		concurrency = flag.Int("concurrency", 8, "concurrent in-flight jobs")
		circuit     = flag.String("circuit", "ex5p", "suite circuit per job")
		scale       = flag.Float64("scale", 0.1, "circuit size multiplier")
		algo        = flag.String("algo", "rt", "algorithm per job")
		maxIters    = flag.Int("max-iters", 10, "engine iteration cap per job (0 = engine default)")
		route       = flag.Bool("route", false, "route each job after optimization")
		timeoutMS   = flag.Int("timeout-ms", 0, "per-job timeout (0 = server default)")
		distinct    = flag.Int("distinct", 1, "distinct placement seeds cycled across jobs (<n introduces duplicates; 0 or >=n makes every job unique)")
		raceList    = flag.String("race-variants", "", `race the listed variants per job (comma list, or "all" for every engine variant; empty = no racing)`)
		periodBound = flag.Float64("period-bound", 0, "racing period bound (0 = first full board decides)")
		deadlineFr  = flag.Float64("deadline-frac", 0, "fraction of jobs submitted in the deadline QoS class (0..1)")
		varySeed    = flag.Bool("vary-seed", false, "give each job a distinct placement seed (same as -distinct=n)")
		poll        = flag.Duration("poll", 50*time.Millisecond, "status poll interval")
		wait        = flag.Duration("wait", 10*time.Minute, "overall deadline")
	)
	flag.Parse()

	endpoints := []string{*addr}
	if *addrs != "" {
		endpoints = nil
		for _, a := range strings.Split(*addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				endpoints = append(endpoints, a)
			}
		}
	}
	groups := *distinct
	if *varySeed || groups <= 0 || groups > *n {
		groups = *n
	}

	ctx, cancel := context.WithTimeout(context.Background(), *wait)
	defer cancel()

	cc, err := client.NewClusterClient(endpoints, client.DefaultBackoff())
	if err != nil {
		fmt.Fprintf(os.Stderr, "replload: %v\n", err)
		os.Exit(2)
	}
	spec := serve.JobSpec{
		Circuit:   *circuit,
		Scale:     *scale,
		Algo:      *algo,
		MaxIters:  *maxIters,
		Route:     *route,
		TimeoutMS: *timeoutMS,
	}
	if *raceList != "" {
		spec.Algo = serve.AlgoRace
		spec.PeriodBound = *periodBound
		if *raceList != "all" {
			for _, v := range strings.Split(*raceList, ",") {
				if v = strings.TrimSpace(v); v != "" {
					spec.RaceVariants = append(spec.RaceVariants, v)
				}
			}
		}
	}
	lg := &loadgen{
		cc:           cc,
		poll:         *poll,
		groups:       groups,
		deadlineFrac: *deadlineFr,
		results:      make([]outcome, *n),
		work:         make(chan int),
		spec:         spec,
	}

	reachable := 0
	for _, ep := range endpoints {
		if _, herr := client.New(ep).Health(ctx); herr == nil {
			reachable++
		}
	}
	if reachable == 0 {
		fmt.Fprintf(os.Stderr, "replload: no reachable endpoint among %v\n", endpoints)
		os.Exit(2)
	}

	start := time.Now()
	done := make(chan struct{})
	workers := *concurrency
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		// The shared Backoff's fields are written once inside
		// sync.Once.Do and its jitter rng is guarded by its own mutex;
		// workers only read the frozen schedule.
		//replint:ignore aliasrace -- Backoff init is sync.Once-guarded and its rng mutex-guarded; workers read a frozen schedule
		go lg.worker(ctx, done)
	}
	for i := 0; i < *n; i++ {
		lg.work <- i
	}
	close(lg.work)
	for w := 0; w < workers; w++ {
		<-done
	}
	wall := time.Since(start)

	if !report(lg.results, wall) {
		os.Exit(1)
	}
}

// outcome records one job's fate from the client's point of view.
type outcome struct {
	state   serve.State
	latency time.Duration // submit call → terminal status
	err     string
	// seed is the job's placement seed — its duplicate-group key.
	seed int64
	// node and source are the cluster's routing/dedup telemetry:
	// which member executed and whether the job was executed fresh,
	// coalesced onto an in-flight duplicate, or served from the
	// result cache. Empty against a single-process daemon.
	node   string
	source string
	// endpoint is the base URL that accepted the submission.
	endpoint string
	// periodBits is the optimized period's bit pattern, for the exact
	// determinism cross-check.
	periodBits uint64
	iterations int
	// deadline is the submitted QoS class; winner is the raced variant
	// that decided the job (empty when not racing). Duplicate groups
	// must agree on the winner too — racing is part of the spec, so a
	// deterministic race picks the same variant everywhere.
	deadline bool
	winner   string
}

// loadgen drives the job stream. Workers claim indices from work and
// write only results[idx] — disjoint slots, no lock needed.
type loadgen struct {
	cc           *client.ClusterClient
	spec         serve.JobSpec
	poll         time.Duration
	groups       int
	deadlineFrac float64
	work         chan int
	results      []outcome
}

// isDeadline assigns QoS classes deterministically and interleaved: a
// multiplicative hash of the index spreads the deadline fraction
// evenly through the submission order.
func (lg *loadgen) isDeadline(idx int) bool {
	return lg.deadlineFrac > 0 && (idx*7919)%100 < int(lg.deadlineFrac*100+0.5)
}

func (lg *loadgen) worker(ctx context.Context, done chan<- struct{}) {
	for idx := range lg.work {
		// Each index arrives over the unbuffered work channel to
		// exactly one worker, so results slots are disjoint per job.
		//replint:ignore aliasrace -- idx is received from the work channel by exactly one worker; results[idx] slots are disjoint
		lg.results[idx] = lg.runJob(ctx, idx)
	}
	done <- struct{}{}
}

// runJob submits one job (the cluster client absorbs 429s with
// backoff and rotates endpoints) and waits for its terminal state.
func (lg *loadgen) runJob(ctx context.Context, idx int) outcome {
	spec := lg.spec
	spec.Seed = int64(idx%lg.groups) + 1
	if lg.isDeadline(idx) {
		spec.QoS = serve.QoSDeadline
	}
	out := outcome{seed: spec.Seed, deadline: spec.QoS == serve.QoSDeadline}
	t0 := time.Now()
	fin, ep, err := lg.cc.Run(ctx, spec, lg.poll)
	out.latency = time.Since(t0)
	if ep != nil {
		out.endpoint = ep.BaseURL
	}
	if err != nil {
		out.state = serve.StateFailed
		out.err = err.Error()
		return out
	}
	out.state = fin.State
	out.err = fin.Error
	out.node = fin.Node
	out.source = fin.Source
	if fin.Result != nil {
		out.periodBits = math.Float64bits(fin.Result.OptimizedPeriod)
		out.iterations = fin.Result.Iterations
		out.winner = fin.Result.RaceWinner
	}
	return out
}

// report prints the summary and returns false on failures or broken
// determinism.
func report(results []outcome, wall time.Duration) bool {
	var completed, failed, cancelled int
	var lats []float64
	byNode := make(map[string][]float64)
	byClass := make(map[string][]float64)
	bySource := make(map[string]int)
	for i := range results {
		r := &results[i]
		switch r.state {
		case serve.StateDone:
			completed++
			lats = append(lats, r.latency.Seconds())
			node := r.node
			if node == "" {
				node = r.endpoint
			}
			byNode[node] = append(byNode[node], r.latency.Seconds())
			class := "best-effort"
			if r.deadline {
				class = "deadline"
			}
			byClass[class] = append(byClass[class], r.latency.Seconds())
			if r.source != "" {
				bySource[r.source]++
			}
		case serve.StateCancelled:
			cancelled++
		default:
			failed++
		}
	}
	fmt.Printf("jobs: %d total, %d completed, %d cancelled, %d failed\n",
		len(results), completed, cancelled, failed)
	fmt.Printf("wall: %.2fs, throughput %.2f jobs/s\n",
		wall.Seconds(), float64(completed)/wall.Seconds())
	if len(lats) > 0 {
		sort.Float64s(lats)
		fmt.Printf("latency: %s\n", latLine(lats))
	}
	// Per-QoS-class percentiles: only printed for a mixed load, where
	// the deadline class's p99 is the scheduler's headline number.
	if len(byClass) > 1 {
		for _, class := range []string{"deadline", "best-effort"} {
			ls := byClass[class]
			if len(ls) == 0 {
				continue
			}
			sort.Float64s(ls)
			fmt.Printf("  class %-12s %3d jobs  %s\n", class, len(ls), latLine(ls))
		}
	}
	// Per-node percentiles: sorted node names for a stable report.
	if len(byNode) > 1 || (len(byNode) == 1 && anyNode(byNode) != "") {
		nodes := make([]string, 0, len(byNode))
		for node := range byNode {
			nodes = append(nodes, node)
		}
		sort.Strings(nodes)
		for _, node := range nodes {
			ls := byNode[node]
			sort.Float64s(ls)
			name := node
			if name == "" {
				name = "(unknown)"
			}
			fmt.Printf("  node %-12s %3d jobs  %s\n", name, len(ls), latLine(ls))
		}
	}
	// Cache effectiveness: only meaningful against a cluster (sources
	// are set by the cluster layer).
	if len(bySource) > 0 {
		hits := bySource["cache"] + bySource["coalesced"]
		fmt.Printf("dedup: %d executed, %d coalesced, %d cache hits — hit rate %.0f%%\n",
			bySource["executed"]+bySource["forwarded"], bySource["coalesced"], bySource["cache"],
			100*float64(hits)/float64(completed))
	}
	for i := range results {
		if results[i].state == serve.StateFailed {
			fmt.Printf("  FAILED job %d (seed %d): %s\n", i, results[i].seed, results[i].err)
		}
	}
	ok := failed == 0
	// Determinism cross-check per duplicate group: every completed job
	// with the same seed ran the identical spec, so each must report
	// the bit-identical optimized period and iteration count — whether
	// it executed, coalesced, or came from the cache on any node.
	type ref struct {
		bits   uint64
		iters  int
		winner string
		have   bool
	}
	refs := make(map[int64]*ref)
	mismatches, checked := 0, 0
	for i := range results {
		r := &results[i]
		if r.state != serve.StateDone {
			continue
		}
		g := refs[r.seed]
		if g == nil {
			g = &ref{}
			refs[r.seed] = g
		}
		if !g.have {
			g.bits, g.iters, g.winner, g.have = r.periodBits, r.iterations, r.winner, true
			continue
		}
		checked++
		if r.periodBits != g.bits || r.iterations != g.iters {
			mismatches++
			fmt.Printf("  MISMATCH job %d (seed %d): period bits %x vs %x\n",
				i, r.seed, r.periodBits, g.bits)
		}
		// Raced duplicates must also agree on which variant won: the
		// race decision is a function of the spec, not of finish order.
		if r.winner != g.winner {
			mismatches++
			fmt.Printf("  MISMATCH job %d (seed %d): race winner %q vs %q\n",
				i, r.seed, r.winner, g.winner)
		}
	}
	if mismatches > 0 {
		fmt.Printf("DETERMINISM VIOLATION: %d job(s) disagree with their duplicate group\n", mismatches)
		ok = false
	} else if checked > 0 {
		fmt.Printf("determinism: %d duplicate jobs across %d groups, bit-identical results\n",
			checked, len(refs))
	}
	return ok
}

// latLine formats the standard percentile line for sorted seconds.
func latLine(sorted []float64) string {
	mean := 0.0
	for _, l := range sorted {
		mean += l
	}
	mean /= float64(len(sorted))
	return fmt.Sprintf("mean %.0fms  p50 %.0fms  p90 %.0fms  p99 %.0fms  max %.0fms",
		mean*1e3, pctl(sorted, 50)*1e3, pctl(sorted, 90)*1e3, pctl(sorted, 99)*1e3,
		sorted[len(sorted)-1]*1e3)
}

// anyNode returns the single map key (helper for the one-node case).
func anyNode(m map[string][]float64) string {
	for k := range m {
		return k
	}
	return ""
}

// pctl returns the p-th percentile (nearest-rank) of sorted values.
func pctl(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
