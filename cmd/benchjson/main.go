// Command benchjson converts `go test -bench` text output on stdin to
// a JSON array on stdout, one object per benchmark result line:
//
//	go test -run '^$' -bench 'Embed|STA' -benchmem . | benchjson > BENCH_embed.json
//
// Standard units (ns/op, B/op, allocs/op) become top-level fields;
// custom b.ReportMetric units land in "metrics". Non-benchmark lines
// (build output, pass/fail summary) are ignored, so the command can sit
// at the end of a pipe without upstream filtering.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line in JSON form.
type result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if results == nil {
		results = []result{}
	}
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine decodes one "BenchmarkName-P  N  v unit  v unit ..." line.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	r := result{Name: strings.TrimPrefix(fields[0], "Benchmark")}
	if i := strings.LastIndex(r.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iterations = iters
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
