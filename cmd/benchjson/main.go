// Command benchjson converts `go test -bench` text output on stdin to
// a JSON array on stdout, one object per benchmark result line:
//
//	go test -run '^$' -bench 'Embed|STA' -benchmem . | benchjson > BENCH_embed.json
//
// Standard units (ns/op, B/op, allocs/op) become top-level fields;
// custom b.ReportMetric units land in "metrics". Non-benchmark lines
// (build output, pass/fail summary) are ignored, so the command can sit
// at the end of a pipe without upstream filtering — but a line that
// *starts* like a benchmark result and then fails to parse is an error,
// and producing no results at all is an error too. Silently emitting
// `[]` is how a broken bench pipeline poisons a perf dashboard.
//
// With -baseline OLD.json (a previous benchjson output), each result
// that matches a baseline entry by name carries a "vs_baseline" object
// with the baseline's standard units and the wall-clock speedup
// (baseline ns/op over current ns/op, so > 1 means this run is
// faster). Results without a baseline counterpart — renamed or new
// benchmarks — are emitted without the field rather than dropped: the
// perf trajectory must show additions, not silently skip them.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line in JSON form.
type result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Baseline    *baselineDelta     `json:"vs_baseline,omitempty"`
}

// baselineDelta is the comparison against a -baseline entry of the
// same name: its standard units verbatim, plus the wall-clock speedup
// of the current run over it.
type baselineDelta struct {
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Speedup is baseline ns/op divided by current ns/op: > 1 means
	// this run is faster.
	Speedup float64 `json:"speedup,omitempty"`
}

// errNoResults reports input that contained no benchmark lines at all —
// usually a failed bench run or a -bench pattern that matched nothing.
var errNoResults = errors.New("no benchmark results in input (failed run or -bench matched nothing?)")

func main() {
	baseline := flag.String("baseline", "", "previous benchjson output to compare against (attaches vs_baseline per matching result)")
	flag.Parse()
	var base []result
	if *baseline != "" {
		var err error
		if base, err = loadBaseline(*baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if err := runCompare(os.Stdin, os.Stdout, base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// loadBaseline reads a previous benchjson output. An unreadable or
// malformed file is an error — comparing against garbage would record
// a bogus trajectory — and so is an empty one, mirroring errNoResults.
func loadBaseline(path string) ([]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %v", err)
	}
	var base []result
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("baseline %s: no results", path)
	}
	return base, nil
}

// run converts bench output on r to a JSON array on w. Lines that start
// like a benchmark result but fail to parse are errors, as is input
// that yields no results at all.
func run(r io.Reader, w io.Writer) error { return runCompare(r, w, nil) }

// runCompare is run with an optional baseline: results matching a
// baseline entry by name (and procs, when both sides recorded one)
// carry a vs_baseline delta.
func runCompare(r io.Reader, w io.Writer, baseline []result) error {
	var results []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, err := parseLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %v: %q", lineno, err, line)
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return errNoResults
	}
	if baseline != nil {
		byName := make(map[string]*result, len(baseline))
		for i := range baseline {
			byName[baseline[i].Name] = &baseline[i]
		}
		for i := range results {
			cur := &results[i]
			old, ok := byName[cur.Name]
			if !ok || (old.Procs != cur.Procs && old.Procs != 0 && cur.Procs != 0) {
				continue
			}
			d := &baselineDelta{
				NsPerOp:     old.NsPerOp,
				BytesPerOp:  old.BytesPerOp,
				AllocsPerOp: old.AllocsPerOp,
			}
			if cur.NsPerOp > 0 && old.NsPerOp > 0 {
				d.Speedup = old.NsPerOp / cur.NsPerOp
			}
			cur.Baseline = d
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// parseLine decodes one "BenchmarkName-P  N  v unit  v unit ..." line.
// The caller guarantees the line starts with "Benchmark".
func parseLine(line string) (result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, fmt.Errorf("want name, iterations, and value/unit pairs; got %d fields", len(fields))
	}
	r := result{Name: strings.TrimPrefix(fields[0], "Benchmark")}
	if i := strings.LastIndex(r.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, fmt.Errorf("bad iteration count %q", fields[1])
	}
	r.Iterations = iters
	// The remainder alternates value/unit pairs.
	if (len(fields)-2)%2 != 0 {
		return result{}, fmt.Errorf("dangling field %q without a unit", fields[len(fields)-1])
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, fmt.Errorf("bad value %q for unit %q", fields[i], fields[i+1])
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, nil
}
