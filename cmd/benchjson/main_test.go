package main

import (
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/embed
BenchmarkEmbedWave-8   	     120	   9876543 ns/op	  123456 B/op	     789 allocs/op
BenchmarkSTA-8         	    5000	    234567 ns/op	       4.25 combos/op
PASS
ok  	repro/internal/embed	3.210s
`

func decode(t *testing.T, out string) []result {
	t.Helper()
	var rs []result
	if err := json.Unmarshal([]byte(out), &rs); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	return rs
}

func TestRunParsesBenchOutput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(benchOutput), &out); err != nil {
		t.Fatal(err)
	}
	rs := decode(t, out.String())
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2", len(rs))
	}
	wave := rs[0]
	if wave.Name != "EmbedWave" || wave.Procs != 8 || wave.Iterations != 120 {
		t.Errorf("first result header = %q/%d/%d, want EmbedWave/8/120", wave.Name, wave.Procs, wave.Iterations)
	}
	if wave.NsPerOp != 9876543 || wave.BytesPerOp != 123456 || wave.AllocsPerOp != 789 {
		t.Errorf("standard units wrong: %+v", wave)
	}
	if got := rs[1].Metrics["combos/op"]; got != 4.25 {
		t.Errorf("custom metric combos/op = %v, want 4.25", got)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	for name, input := range map[string]string{
		"empty":          "",
		"no bench lines": "goos: linux\nPASS\nok  \trepro\t0.1s\n",
	} {
		var out strings.Builder
		err := run(strings.NewReader(input), &out)
		if !errors.Is(err, errNoResults) {
			t.Errorf("%s: err = %v, want errNoResults", name, err)
		}
		if out.Len() != 0 {
			t.Errorf("%s: wrote output despite error: %q", name, out.String())
		}
	}
}

func TestRunRejectsMalformedBenchLines(t *testing.T) {
	for name, input := range map[string]string{
		"bad iterations": "BenchmarkX-8\tmany\t100 ns/op\n",
		"bad value":      "BenchmarkX-8\t100\tfast ns/op\n",
		"dangling field": "BenchmarkX-8\t100\t100 ns/op\t7\n",
		"truncated":      "BenchmarkX-8\t100\n",
	} {
		var out strings.Builder
		err := run(strings.NewReader(input), &out)
		if err == nil {
			t.Errorf("%s: run accepted malformed line %q", name, input)
			continue
		}
		if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("%s: error %q does not name the offending line", name, err)
		}
	}
}

func TestRunCompareAttachesBaseline(t *testing.T) {
	baseline := []result{
		{Name: "EmbedWave", Procs: 8, NsPerOp: 19753086, BytesPerOp: 200000, AllocsPerOp: 1000},
		{Name: "Gone", Procs: 8, NsPerOp: 1},
	}
	var out strings.Builder
	if err := runCompare(strings.NewReader(benchOutput), &out, baseline); err != nil {
		t.Fatal(err)
	}
	rs := decode(t, out.String())
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2", len(rs))
	}
	wave := rs[0]
	if wave.Baseline == nil {
		t.Fatal("EmbedWave has no vs_baseline despite a matching baseline entry")
	}
	if wave.Baseline.NsPerOp != 19753086 || wave.Baseline.BytesPerOp != 200000 || wave.Baseline.AllocsPerOp != 1000 {
		t.Errorf("baseline units not carried over: %+v", wave.Baseline)
	}
	if got := wave.Baseline.Speedup; got != 19753086.0/9876543.0 {
		t.Errorf("speedup = %v, want exactly baseline/current", got)
	}
	if rs[1].Baseline != nil {
		t.Errorf("STA matched a baseline entry it should not have: %+v", rs[1].Baseline)
	}
}

func TestRunCompareSkipsProcsMismatch(t *testing.T) {
	baseline := []result{{Name: "EmbedWave", Procs: 4, NsPerOp: 1}}
	var out strings.Builder
	if err := runCompare(strings.NewReader(benchOutput), &out, baseline); err != nil {
		t.Fatal(err)
	}
	if rs := decode(t, out.String()); rs[0].Baseline != nil {
		t.Errorf("EmbedWave-8 compared against a -4 baseline: %+v", rs[0].Baseline)
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	write := func(name, data string) string {
		t.Helper()
		p := dir + "/" + name
		if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := write("good.json", `[{"name":"X","iterations":1,"ns_per_op":5}]`)
	base, err := loadBaseline(good)
	if err != nil || len(base) != 1 || base[0].NsPerOp != 5 {
		t.Fatalf("loadBaseline(good) = %+v, %v", base, err)
	}
	for name, path := range map[string]string{
		"missing":   dir + "/nope.json",
		"malformed": write("bad.json", "{not json"),
		"empty":     write("empty.json", "[]"),
	} {
		if _, err := loadBaseline(path); err == nil {
			t.Errorf("loadBaseline(%s) accepted a bad baseline", name)
		}
	}
}

func TestRunReportsLineNumbers(t *testing.T) {
	input := "goos: linux\nBenchmarkOK-8\t10\t5 ns/op\nBenchmarkBad-8\tnope\t5 ns/op\n"
	var out strings.Builder
	err := run(strings.NewReader(input), &out)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want mention of line 3", err)
	}
}
