// Command mcncgen generates the synthetic MCNC-20 stand-in circuits
// and writes them as netlist text files:
//
//	mcncgen -scale 0.2 -dir bench_circuits
//	mcncgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/arch"
	"repro/internal/circuits"
)

func main() {
	var (
		dir   = flag.String("dir", "bench_circuits", "output directory")
		scale = flag.Float64("scale", 1.0, "circuit size multiplier")
		list  = flag.Bool("list", false, "list the suite and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %6s %5s %4s %8s %8s\n", "circuit", "LUTs", "I/Os", "seq", "FPGA", "density")
		for _, m := range circuits.MCNC20 {
			seq := ""
			if m.Sequential {
				seq = "yes"
			}
			f := arch.MinSquare(m.LUTs, m.IOs)
			fmt.Printf("%-10s %6d %5d %4s %8s %8.3f\n",
				m.Name, m.LUTs, m.IOs, seq, f, f.Density(m.LUTs))
		}
		return
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatalf("%v", err)
	}
	for _, m := range circuits.MCNC20 {
		nl, err := circuits.Generate(m.Spec(*scale))
		if err != nil {
			fatalf("%s: %v", m.Name, err)
		}
		path := filepath.Join(*dir, m.Name+".ckt")
		f, err := os.Create(path)
		if err != nil {
			fatalf("%v", err)
		}
		if err := nl.Write(f); err != nil {
			fatalf("write %s: %v", path, err)
		}
		f.Close()
		fmt.Printf("%-10s -> %s (%d LUTs, %d I/Os)\n", m.Name, path, nl.NumLUTs(), nl.NumIOs())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcncgen: "+format+"\n", args...)
	os.Exit(1)
}
