// Command replcheck runs the correctness oracle suite from the command
// line: brute-force frontier agreement for the embedding DP, and the
// differential/metamorphic engine checks (serial/parallel bit-identity,
// functional equivalence, structural invariants, rename and translation
// invariance) on randomized circuits.
//
//	replcheck                 # default budget of every check family
//	replcheck -frontier 2000  # hammer the embedder only
//	replcheck -engine 50 -seed 7
//
// Exit status 0 means every instance agreed; 1 reports the first
// counterexample, with its seed, for replay.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/oracle"
	"repro/internal/place"
)

func main() {
	var (
		frontier  = flag.Int("frontier", 400, "frontier-agreement instances per embedding mode")
		engine    = flag.Int("engine", 8, "differential engine runs")
		rename    = flag.Int("rename", 2, "rename-invariance runs")
		translate = flag.Int("translate", 2, "translation-invariance runs")
		seed      = flag.Int64("seed", 1, "base random seed")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "replcheck: "+format+"\n", args...)
		os.Exit(1)
	}

	modes := []struct {
		name string
		mode embed.Mode
	}{
		{"plain", embed.Mode{LexDepth: 1}},
		{"lex3", embed.Mode{LexDepth: 3}},
		{"lex-mc", embed.Mode{LexDepth: 2, MC: true}},
		{"quadratic", embed.Mode{LexDepth: 1, Delay: embed.QuadraticDelay}},
		{"elmore", embed.Mode{LexDepth: 1, Delay: embed.ElmoreDelay, GateR: 0.5}},
		{"overlap", embed.Mode{LexDepth: 1, OverlapControl: true}},
	}
	for _, m := range modes {
		rng := rand.New(rand.NewSource(*seed))
		for i := 0; i < *frontier; i++ {
			p := oracle.GenProblem(rng, m.mode)
			if i%3 == 2 {
				p.Parallelism = 2
			}
			want, err := oracle.Frontier(p)
			if err != nil {
				fail("mode %s instance %d (seed %d): oracle refused: %v", m.name, i, *seed, err)
			}
			r, err := p.Solve()
			if err != nil {
				if len(want) != 0 {
					fail("mode %s instance %d (seed %d): Solve infeasible but oracle found %d solutions",
						m.name, i, *seed, len(want))
				}
				continue
			}
			if derr := oracle.Diff(r.Frontier, want); derr != nil {
				fail("mode %s instance %d (seed %d): %v", m.name, i, *seed, derr)
			}
		}
		fmt.Printf("frontier %-10s %d instances OK\n", m.name, *frontier)
	}

	cfg := core.Default()
	cfg.MaxIters = 8
	cfg.Patience = 4
	rng := rand.New(rand.NewSource(*seed + 100))
	for i := 0; i < *engine; i++ {
		spec := circuits.Spec{
			Name:    "replcheck",
			LUTs:    10 + rng.Intn(14),
			Inputs:  3 + rng.Intn(3),
			Outputs: 2 + rng.Intn(2),
			Seed:    rng.Int63n(1 << 30),
		}
		if i%2 == 1 {
			spec.RegisteredFrac = 0.3
		}
		rep, err := oracle.CheckEngine(engineOpts(spec, cfg))
		if err != nil {
			fail("engine run %d: %v", i, err)
		}
		fmt.Printf("engine run %-2d  %s: period %.3g -> %.3g OK\n", i, spec.Name, rep.Baseline, rep.Final)
	}

	for i := 0; i < *rename; i++ {
		spec := circuits.Spec{
			Name: "replcheck", LUTs: 12, Inputs: 4, Outputs: 2,
			Seed: *seed + int64(i),
		}
		if err := oracle.CheckRenameInvariance(engineOpts(spec, cfg), "zz_"); err != nil {
			fail("rename run %d: %v", i, err)
		}
	}
	if *rename > 0 {
		fmt.Printf("rename invariance %d runs OK\n", *rename)
	}

	tcfg := cfg
	tcfg.FFRelocation = false
	for i := 0; i < *translate; i++ {
		dx, dy := int16(1+i%2), int16(2-i%2)
		if err := oracle.CheckTranslationInvariance(*seed+int64(i), 48, tcfg, place.Defaults().Delay, dx, dy); err != nil {
			fail("translation run %d: %v", i, err)
		}
	}
	if *translate > 0 {
		fmt.Printf("translation invariance %d runs OK\n", *translate)
	}
	fmt.Println("replcheck: all checks passed")
}

func engineOpts(spec circuits.Spec, cfg core.Config) oracle.EngineCheckOptions {
	po := place.Defaults()
	po.Effort = 1
	po.Seed = spec.Seed
	return oracle.EngineCheckOptions{
		Spec:      spec,
		GridN:     8,
		PlaceOpts: po,
		Config:    cfg,
		Delay:     po.Delay,
		Equiv:     oracle.EquivOptions{Seed: spec.Seed},
	}
}
