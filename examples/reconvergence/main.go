// Reconvergence demonstrates the Section VI effect (Figs. 15-16): a
// reconvergent subcircuit whose critical path is already monotone.
// Plain cost/max-arrival RT-Embedding has no incentive to touch the
// detoured *subcritical* path, while the Lex-3 signature over-optimizes
// it, breaking the reconvergence so later iterations (and downstream
// logic) benefit.
//
// Run: go run ./examples/reconvergence
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/timing"
)

// build constructs a Fig. 15 situation: the critical path
// b/c -> e -> d -> g -> f lies on a straight, monotone line and cannot
// be improved — the cost/max-arrival-optimal embedding leaves every
// cell where it is. The *subcritical* input a reaches d over a longer
// wire than necessary; d could slide along the critical line toward a
// at no cost in critical arrival, but d also drives a second output
// (o2), so moving it means replication, whose cost the plain 2-D
// objective will not pay for a path that is not critical.
func build() (*netlist.Netlist, *placement.Placement) {
	nl := netlist.New("fig15")
	f := arch.New(10)
	pl := placement.New(f, nl)
	at := func(c *netlist.Cell, x, y int16) { pl.Place(c.ID, arch.Loc{X: x, Y: y}) }

	at(nl.AddCell("a", netlist.IPad, 0), 11, 4)
	at(nl.AddCell("b", netlist.IPad, 0), 2, 0)
	at(nl.AddCell("c", netlist.IPad, 0), 8, 0)
	e := nl.AddCell("e", netlist.LUT, 2)
	nl.ConnectByName(e.ID, 0, "b")
	nl.ConnectByName(e.ID, 1, "c")
	at(e, 5, 1)
	d := nl.AddCell("d", netlist.LUT, 2)
	nl.ConnectByName(d.ID, 0, "a")
	nl.ConnectByName(d.ID, 1, "e")
	at(d, 5, 3) // on the critical line, but a backtrack for input a
	g := nl.AddCell("g", netlist.LUT, 2)
	nl.ConnectByName(g.ID, 0, "d")
	nl.ConnectByName(g.ID, 1, "e")
	at(g, 5, 8)
	o := nl.AddCell("f", netlist.OPad, 1)
	nl.ConnectByName(o.ID, 0, "g")
	at(o, 5, 11)
	// Second fanout of d: pins it (moving d means replicating it).
	o2 := nl.AddCell("o2", netlist.OPad, 1)
	nl.ConnectByName(o2.ID, 0, "d")
	at(o2, 11, 3)
	return nl, pl
}

func run(mode embed.Mode, label string) {
	nl, pl := build()
	dm := arch.DefaultDelayModel()
	before, err := timing.Analyze(nl, pl, dm)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Default()
	cfg.Mode = mode
	eng := core.New(nl, pl, dm, cfg)
	st, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	nl, pl = eng.Netlist, eng.Placement
	after, err := timing.Analyze(nl, pl, dm)
	if err != nil {
		log.Fatal(err)
	}
	// The interesting quantity: the subcritical path through input a.
	aID, _ := nl.CellByName("a")
	fmt.Printf("%-14s period %.1f -> %.1f | path through a: %.1f -> %.1f | replicated %d unified %d\n",
		label, before.Period, after.Period,
		before.Through[aID], after.Through[aID],
		st.Replicated, st.Unified)
}

func main() {
	fmt.Println("Fig. 15/16: reconvergence and subcritical over-optimization")
	fmt.Println("(critical path b/c->e->d->g->f is straight and at its bound;")
	fmt.Println(" the subcritical a->d wire backtracks and only the Lex modes fix it)")
	fmt.Println()
	run(embed.Mode{LexDepth: 1}, "RT-Embedding")
	run(embed.Mode{LexDepth: 2}, "Lex-2")
	run(embed.Mode{LexDepth: 3}, "Lex-3")
	run(embed.Mode{LexDepth: 1, MC: true}, "Lex-mc")
}
