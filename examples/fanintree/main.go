// Fanintree reproduces the worked example of Section II (Fig. 7) with
// the fanin-tree embedder used directly as a library: a 5-slot line
// graph, source s at slot 0, sink t at slot 4, one internal gate x;
// placement cost equals the slot index, wire cost is the length, wire
// delay is quadratic in length, and every gate adds one unit of delay.
//
// The program prints each solution set A[i][j] of the dynamic program
// and the final cost/delay tradeoff at the sink, matching the numbers
// in the paper's text, then extracts both endpoints of the tradeoff.
//
// Run: go run ./examples/fanintree
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"repro/internal/embed"
)

// project reduces a signature set to its non-dominated (cost, arrival)
// pairs, the form in which the paper lists them.
func project(sigs []embed.Sig) [][2]float64 {
	ps := make([][2]float64, 0, len(sigs))
	for _, s := range sigs {
		ps = append(ps, [2]float64{s.Cost, s.D[0]})
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
	var out [][2]float64
	for _, p := range ps {
		if len(out) > 0 && out[len(out)-1][1] <= p[1] {
			continue
		}
		out = append(out, p)
	}
	return out
}

func main() {
	// Line graph 0-1-2-3-4: unit wire cost and unit length per edge.
	g := embed.NewGraph(5)
	for v := 0; v < 4; v++ {
		g.AddBiEdge(embed.Vertex(v), embed.Vertex(v+1), 1, 1)
	}

	// Tree: s (leaf at 0) -> x (internal) -> t (root at 4).
	tree := &embed.Tree{
		Nodes: []embed.Node{
			{Vertex: 0, Arr: 0},
			{Children: []embed.NodeID{0}, Intrinsic: 1},
			{Children: []embed.NodeID{1}, Vertex: 4, Intrinsic: 1},
		},
		Root: 2,
	}

	p := &embed.Problem{
		G:    g,
		T:    tree,
		Mode: embed.Mode{LexDepth: 1, Delay: embed.QuadraticDelay},
		PlaceCost: func(node embed.NodeID, v embed.Vertex) float64 {
			if node == 2 {
				return 0 // sink already placed
			}
			if v == 0 || v == 4 {
				return math.Inf(1) // slots occupied by s and t
			}
			return float64(v) // "placement cost equal to the slot index"
		},
	}
	r, err := p.Solve()
	if err != nil {
		log.Fatal(err)
	}

	// The paper lists the (cost, arrival) projections of the solution
	// sets; the solver keeps additional stem-length-distinguished
	// solutions internally (needed for quadratic delay correctness).
	names := []string{"s", "x", "t"}
	for node := 0; node < 3; node++ {
		for v := 0; v < 5; v++ {
			sols := project(r.SolutionsAt(embed.NodeID(node), embed.Vertex(v)))
			if len(sols) == 0 {
				continue
			}
			fmt.Printf("A[%s][%d] = {", names[node], v)
			for i, s := range sols {
				if i > 0 {
					fmt.Print(", ")
				}
				fmt.Printf("(%.0f,%.0f)", s[0], s[1])
			}
			fmt.Println("}")
		}
	}

	fmt.Println("\ntradeoff at the sink:")
	for _, f := range r.Frontier {
		fmt.Printf("  cost %.0f, arrival %.0f\n", f.Sig.Cost, f.Sig.D[0])
	}

	// "Assuming a lower bound on some global circuit delay is 15
	// units, we would rather choose solution (5,12) ... instead of the
	// faster (6,10)."
	cheap, _ := r.SelectByBound(15)
	emb := r.Extract(cheap)
	fmt.Printf("\nbound 15 -> choose (%.0f,%.0f): x placed at slot %d\n",
		cheap.Sig.Cost, cheap.Sig.D[0], emb.NodeVertex[1])
	fast, _ := r.SelectByBound(11)
	emb = r.Extract(fast)
	fmt.Printf("bound 11 -> choose (%.0f,%.0f): x placed at slot %d\n",
		fast.Sig.Cost, fast.Sig.D[0], emb.NodeVertex[1])
}
