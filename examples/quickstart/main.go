// Quickstart: build a small netlist, place it, run placement-coupled
// replication, and print the clock-period improvement.
//
// The circuit is the motivating example of Figs. 1-2 of the paper: a
// shared cell v sits between diverging input-to-output paths; the
// replication engine duplicates it so each copy serves one direction
// and both paths straighten.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/timing"
)

func main() {
	// A 10x10 FPGA and a LUT with two diverging fanouts.
	f := arch.New(10)
	dm := arch.DefaultDelayModel()

	nl := netlist.New("quickstart")
	a := nl.AddCell("a", netlist.IPad, 0) // input pad, west edge
	e := nl.AddCell("e", netlist.IPad, 0) // input pad, south edge
	c := nl.AddCell("c", netlist.LUT, 2)  // the shared cell of Fig. 1
	nl.ConnectByName(c.ID, 0, "a")
	nl.ConnectByName(c.ID, 1, "e")
	u := nl.AddCell("u", netlist.LUT, 1) // post-logic toward output b
	nl.ConnectByName(u.ID, 0, "c")
	v := nl.AddCell("v", netlist.LUT, 1) // post-logic toward output d
	nl.ConnectByName(v.ID, 0, "c")
	b := nl.AddCell("b", netlist.OPad, 1)
	nl.ConnectByName(b.ID, 0, "u")
	d := nl.AddCell("d", netlist.OPad, 1)
	nl.ConnectByName(d.ID, 0, "v")

	// A deliberately stressed placement: the shared cell centered, its
	// consumers pulled to opposite corners.
	pl := placement.New(f, nl)
	pl.Place(a.ID, arch.Loc{X: 0, Y: 3})
	pl.Place(e.ID, arch.Loc{X: 3, Y: 0})
	pl.Place(c.ID, arch.Loc{X: 5, Y: 5})
	pl.Place(u.ID, arch.Loc{X: 8, Y: 2})
	pl.Place(v.ID, arch.Loc{X: 2, Y: 8})
	pl.Place(b.ID, arch.Loc{X: 11, Y: 2})
	pl.Place(d.ID, arch.Loc{X: 2, Y: 11})

	sta, err := timing.Analyze(nl, pl, dm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: clock period %.2f, %d LUTs\n", sta.Period, nl.NumLUTs())

	// Run the replication engine (RT-Embedding, the paper's default).
	eng := core.New(nl, pl, dm, core.Default())
	st, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	nl, pl = eng.Netlist, eng.Placement

	sta, err = timing.Analyze(nl, pl, dm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after:  clock period %.2f, %d LUTs (%d replicated, %d unified, %d iterations)\n",
		sta.Period, nl.NumLUTs(), st.Replicated, st.Unified, st.Iterations)
	fmt.Printf("improvement: %.1f%%\n", 100*(1-sta.Period/st.InitialPeriod))

	// Show where the copies of c ended up.
	if cID, ok := nl.CellByName("c"); ok {
		for _, id := range nl.EquivClass(cID) {
			loc := pl.Loc(id)
			fmt.Printf("  %s at (%d,%d) drives %d sink(s)\n",
				nl.Cell(id).Name, loc.X, loc.Y, len(nl.Net(nl.Cell(id).Out).Sinks))
		}
	}
}
