// Localmono demonstrates the limitation of local monotonicity (Fig. 3
// of the paper): a U-shaped critical path whose every three-cell
// window is locally monotone. The local replication baseline finds no
// candidate and changes nothing; replication-tree embedding sees the
// whole path and straightens it.
//
// Run: go run ./examples/localmono
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/localrep"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/timing"
)

// build places the chain s -> a -> b -> t in a U: the pads sit close
// together on the west edge, the LUTs detour east.
func build() (*netlist.Netlist, *placement.Placement) {
	nl := netlist.New("fig3")
	f := arch.New(8)
	pl := placement.New(f, nl)
	at := func(c *netlist.Cell, x, y int16) { pl.Place(c.ID, arch.Loc{X: x, Y: y}) }

	at(nl.AddCell("s", netlist.IPad, 0), 0, 2)
	a := nl.AddCell("a", netlist.LUT, 1)
	nl.ConnectByName(a.ID, 0, "s")
	at(a, 5, 2)
	b := nl.AddCell("b", netlist.LUT, 1)
	nl.ConnectByName(b.ID, 0, "a")
	at(b, 5, 6)
	t := nl.AddCell("t", netlist.OPad, 1)
	nl.ConnectByName(t.ID, 0, "b")
	at(t, 0, 6)
	return nl, pl
}

func main() {
	dm := arch.DefaultDelayModel()

	nl, pl := build()
	sta, err := timing.Analyze(nl, pl, dm)
	if err != nil {
		log.Fatal(err)
	}
	path := sta.CriticalPath(nl, pl, dm)
	fmt.Printf("critical path globally monotone: %v, locally monotone: %v\n",
		timing.PathMonotone(pl, path), timing.LocallyMonotone(pl, path))
	fmt.Printf("initial period: %.2f\n\n", sta.Period)

	// Local replication: blind to this path.
	lr := localrep.New(nl.Clone(), pl.Clone(), dm, localrep.Defaults())
	lst, err := lr.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local replication:  period %.2f (replicated %d, relocated %d) — cannot see the detour\n",
		lst.FinalPeriod, lst.Replicated, lst.Relocated)

	// RT-Embedding: straightens the whole path.
	eng := core.New(nl.Clone(), pl.Clone(), dm, core.Default())
	est, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RT-Embedding:       period %.2f (%d iterations)\n", est.FinalPeriod, est.Iterations)

	after, err := timing.Analyze(eng.Netlist, eng.Placement, dm)
	if err != nil {
		log.Fatal(err)
	}
	path = after.CriticalPath(eng.Netlist, eng.Placement, dm)
	fmt.Printf("optimized path globally monotone: %v\n", timing.PathMonotone(eng.Placement, path))
}
