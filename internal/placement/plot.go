package placement

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/netlist"
)

// Plot renders the placement as an ASCII floorplan, one character per
// slot: '.' empty logic, '#' occupied logic, '*' overfull, 'i'/'o'
// pads, '+' highlighted cells (e.g. a critical path or the replicas of
// one equivalence class). The origin is bottom-left, matching the
// coordinate system.
func (p *Placement) Plot(nl *netlist.Netlist, highlight map[netlist.CellID]bool) string {
	f := p.fpga
	var b strings.Builder
	fmt.Fprintf(&b, "placement %dx%d (+IO ring)\n", f.N, f.N)
	for y := f.N + 1; y >= 0; y-- {
		for x := 0; x <= f.N+1; x++ {
			l := arch.Loc{X: int16(x), Y: int16(y)}
			b.WriteByte(p.slotGlyph(nl, l, highlight))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (p *Placement) slotGlyph(nl *netlist.Netlist, l arch.Loc, highlight map[netlist.CellID]bool) byte {
	f := p.fpga
	cells := p.occ[l]
	for _, id := range cells {
		if highlight[id] {
			return '+'
		}
	}
	switch {
	case f.IsCorner(l):
		return ' '
	case f.IsLogic(l):
		switch {
		case len(cells) == 0:
			return '.'
		case len(cells) > f.CLBCapacity:
			return '*'
		default:
			return '#'
		}
	case f.IsIO(l):
		if len(cells) == 0 {
			return '-'
		}
		for _, id := range cells {
			if nl.Alive(id) && nl.Cell(id).Kind == netlist.IPad {
				return 'i'
			}
		}
		return 'o'
	default:
		return '?'
	}
}
