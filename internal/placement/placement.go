// Package placement maintains the assignment of netlist cells to FPGA
// slots, including the deliberately *illegal* intermediate states the
// optimization flow passes through: the embedder is allowed to place a
// critical cell on top of an occupied slot and let the timing-driven
// legalizer resolve the overlap afterwards (Section II-A of the paper).
package placement

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/netlist"
)

// Placement maps cells to locations and tracks per-slot occupancy.
type Placement struct {
	fpga *arch.FPGA
	// loc[cell] is the cell's location; cells beyond the slice or at
	// unplaced{} are unplaced.
	loc []arch.Loc
	// occ maps a location to the cells currently in it (possibly more
	// than its capacity during illegal intermediate states).
	occ map[arch.Loc][]netlist.CellID
}

var unplaced = arch.Loc{X: -1, Y: -1}

// New returns an empty placement for the given device sized for the
// given netlist.
func New(f *arch.FPGA, n *netlist.Netlist) *Placement {
	p := &Placement{
		fpga: f,
		loc:  make([]arch.Loc, n.Cap()),
		occ:  make(map[arch.Loc][]netlist.CellID),
	}
	for i := range p.loc {
		p.loc[i] = unplaced
	}
	return p
}

// FPGA returns the device this placement targets.
func (p *Placement) FPGA() *arch.FPGA { return p.fpga }

// Placed reports whether the cell has a location.
func (p *Placement) Placed(id netlist.CellID) bool {
	return int(id) < len(p.loc) && p.loc[id] != unplaced
}

// Loc returns the cell's location; it panics if the cell is unplaced.
func (p *Placement) Loc(id netlist.CellID) arch.Loc {
	if !p.Placed(id) {
		panic(fmt.Sprintf("placement: cell %d is unplaced", id))
	}
	return p.loc[id]
}

// grow extends the location table to cover cell IDs created after the
// placement was (replicas).
func (p *Placement) grow(id netlist.CellID) {
	for int(id) >= len(p.loc) {
		p.loc = append(p.loc, unplaced)
	}
}

// Place puts a cell at l, which must be in bounds. Overlap with other
// cells is permitted (see package comment); use OverCapacity to find
// violations.
func (p *Placement) Place(id netlist.CellID, l arch.Loc) {
	if !p.fpga.InBounds(l) {
		panic(fmt.Sprintf("placement: %v out of bounds", l))
	}
	p.grow(id)
	if p.loc[id] != unplaced {
		p.removeOcc(id, p.loc[id])
	}
	p.loc[id] = l
	p.occ[l] = append(p.occ[l], id)
}

// Remove unplaces a cell (used when a replica is deleted by
// unification).
func (p *Placement) Remove(id netlist.CellID) {
	if !p.Placed(id) {
		return
	}
	p.removeOcc(id, p.loc[id])
	p.loc[id] = unplaced
}

func (p *Placement) removeOcc(id netlist.CellID, l arch.Loc) {
	cells := p.occ[l]
	for i, c := range cells {
		if c == id {
			cells[i] = cells[len(cells)-1]
			p.occ[l] = cells[:len(cells)-1]
			if len(p.occ[l]) == 0 {
				delete(p.occ, l)
			}
			return
		}
	}
	panic(fmt.Sprintf("placement: cell %d not at %v", id, l))
}

// At returns the cells occupying location l (shared slice; do not
// mutate).
func (p *Placement) At(l arch.Loc) []netlist.CellID { return p.occ[l] }

// Usage returns the number of cells at l.
func (p *Placement) Usage(l arch.Loc) int { return len(p.occ[l]) }

// OverCapacity returns every location holding more cells than its
// capacity, in scan order (bottom-to-top, left-to-right), matching the
// legalizer's "first overlap we encounter while we scan" rule.
func (p *Placement) OverCapacity() []arch.Loc {
	var out []arch.Loc
	f := p.fpga
	for y := 0; y <= f.N+1; y++ {
		for x := 0; x <= f.N+1; x++ {
			l := arch.Loc{X: int16(x), Y: int16(y)}
			if len(p.occ[l]) > f.Capacity(l) {
				out = append(out, l)
			}
		}
	}
	return out
}

// Legal reports whether no slot exceeds its capacity.
func (p *Placement) Legal() bool { return len(p.OverCapacity()) == 0 }

// FreeLogicSlot reports whether l is a logic slot with spare capacity.
func (p *Placement) FreeLogicSlot(l arch.Loc) bool {
	return p.fpga.IsLogic(l) && len(p.occ[l]) < p.fpga.CLBCapacity
}

// NearestFreeLogic returns the free logic slot nearest to l (ties
// broken deterministically by scan order of increasing radius), or
// false if the device is full.
func (p *Placement) NearestFreeLogic(l arch.Loc) (arch.Loc, bool) {
	f := p.fpga
	maxR := 2 * f.N
	for r := 0; r <= maxR; r++ {
		for dx := -r; dx <= r; dx++ {
			dy := r - abs(dx)
			for _, s := range []arch.Loc{
				{X: l.X + int16(dx), Y: l.Y + int16(dy)},
				{X: l.X + int16(dx), Y: l.Y - int16(dy)},
			} {
				if p.FreeLogicSlot(s) {
					return s, true
				}
				if dy == 0 {
					break // avoid double-checking the same slot
				}
			}
		}
	}
	return arch.Loc{}, false
}

// QuadrantFreeSlots returns up to four free logic slots, the nearest in
// each quadrant around center (paper Section V-A: "identify up to four
// closest free slots, one slot in each quadrant").
func (p *Placement) QuadrantFreeSlots(center arch.Loc) []arch.Loc {
	f := p.fpga
	type best struct {
		l arch.Loc
		d int
	}
	quad := [4]best{{d: 1 << 30}, {d: 1 << 30}, {d: 1 << 30}, {d: 1 << 30}}
	for y := 1; y <= f.N; y++ {
		for x := 1; x <= f.N; x++ {
			l := arch.Loc{X: int16(x), Y: int16(y)}
			if !p.FreeLogicSlot(l) {
				continue
			}
			q := 0
			if l.X < center.X {
				q |= 1
			}
			if l.Y < center.Y {
				q |= 2
			}
			if d := arch.Dist(center, l); d < quad[q].d {
				quad[q] = best{l, d}
			}
		}
	}
	var out []arch.Loc
	for _, b := range quad {
		if b.d < 1<<30 {
			out = append(out, b.l)
		}
	}
	return out
}

// NearestFreeSlots returns up to k free logic slots nearest to center,
// in increasing-distance order (deterministic tie order).
func (p *Placement) NearestFreeSlots(center arch.Loc, k int) []arch.Loc {
	f := p.fpga
	var out []arch.Loc
	maxR := 2 * f.N
	for r := 0; r <= maxR && len(out) < k; r++ {
		for dx := -r; dx <= r; dx++ {
			dy := r - abs(dx)
			cands := []arch.Loc{{X: center.X + int16(dx), Y: center.Y + int16(dy)}}
			if dy != 0 {
				cands = append(cands, arch.Loc{X: center.X + int16(dx), Y: center.Y - int16(dy)})
			}
			for _, s := range cands {
				if p.FreeLogicSlot(s) {
					out = append(out, s)
					if len(out) == k {
						return out
					}
				}
			}
		}
	}
	return out
}

// Clone returns an independent copy of the placement.
func (p *Placement) Clone() *Placement {
	c := &Placement{
		fpga: p.fpga,
		loc:  append([]arch.Loc(nil), p.loc...),
		occ:  make(map[arch.Loc][]netlist.CellID, len(p.occ)),
	}
	for l, cells := range p.occ {
		c.occ[l] = append([]netlist.CellID(nil), cells...)
	}
	return c
}

// Validate cross-checks the location table against the occupancy map
// and that every live cell of the netlist is placed in a slot of the
// right type.
func (p *Placement) Validate(n *netlist.Netlist) error {
	var err error
	n.Cells(func(c *netlist.Cell) {
		if err != nil {
			return
		}
		if !p.Placed(c.ID) {
			err = fmt.Errorf("cell %s unplaced", c.Name)
			return
		}
		l := p.loc[c.ID]
		isIO := c.Kind != netlist.LUT
		if isIO && !p.fpga.IsIO(l) {
			err = fmt.Errorf("pad %s at non-IO slot %v", c.Name, l)
			return
		}
		if !isIO && !p.fpga.IsLogic(l) {
			err = fmt.Errorf("LUT %s at non-logic slot %v", c.Name, l)
			return
		}
		found := false
		for _, id := range p.occ[l] {
			if id == c.ID {
				found = true
			}
		}
		if !found {
			err = fmt.Errorf("cell %s missing from occupancy at %v", c.Name, l)
		}
	})
	if err != nil {
		return err
	}
	for l, cells := range p.occ {
		for _, id := range cells {
			if int(id) >= len(p.loc) || p.loc[id] != l {
				return fmt.Errorf("occupancy at %v lists cell %d not placed there", l, id)
			}
		}
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
