package placement

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/netlist"
)

func tinyNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	n := netlist.New("tiny")
	n.AddCell("i0", netlist.IPad, 0)
	n.AddCell("i1", netlist.IPad, 0)
	l0 := n.AddCell("l0", netlist.LUT, 2)
	n.ConnectByName(l0.ID, 0, "i0")
	n.ConnectByName(l0.ID, 1, "i1")
	l1 := n.AddCell("l1", netlist.LUT, 1)
	n.ConnectByName(l1.ID, 0, "l0")
	o := n.AddCell("o", netlist.OPad, 1)
	n.ConnectByName(o.ID, 0, "l1")
	return n
}

func TestPlaceAndLookup(t *testing.T) {
	n := tinyNetlist(t)
	f := arch.New(4)
	p := New(f, n)
	l0, _ := n.CellByName("l0")
	if p.Placed(l0) {
		t.Error("fresh placement should have unplaced cells")
	}
	p.Place(l0, arch.Loc{X: 2, Y: 3})
	if !p.Placed(l0) || p.Loc(l0) != (arch.Loc{X: 2, Y: 3}) {
		t.Error("Place/Loc mismatch")
	}
	if p.Usage(arch.Loc{X: 2, Y: 3}) != 1 {
		t.Error("usage should be 1")
	}
	// Re-placing moves the cell.
	p.Place(l0, arch.Loc{X: 1, Y: 1})
	if p.Usage(arch.Loc{X: 2, Y: 3}) != 0 {
		t.Error("old slot should be empty after move")
	}
	if p.Loc(l0) != (arch.Loc{X: 1, Y: 1}) {
		t.Error("move did not update location")
	}
}

func TestOverCapacityAndLegal(t *testing.T) {
	n := tinyNetlist(t)
	f := arch.New(4)
	p := New(f, n)
	l0, _ := n.CellByName("l0")
	l1, _ := n.CellByName("l1")
	slot := arch.Loc{X: 2, Y: 2}
	p.Place(l0, slot)
	if !p.Legal() {
		t.Error("single occupancy should be legal")
	}
	p.Place(l1, slot)
	over := p.OverCapacity()
	if len(over) != 1 || over[0] != slot {
		t.Errorf("OverCapacity = %v, want [%v]", over, slot)
	}
	if p.Legal() {
		t.Error("double occupancy of capacity-1 CLB should be illegal")
	}
	// IO slots hold IORat pads legally.
	i0, _ := n.CellByName("i0")
	i1, _ := n.CellByName("i1")
	io := arch.Loc{X: 0, Y: 1}
	p.Place(i0, io)
	p.Place(i1, io)
	for _, l := range p.OverCapacity() {
		if l == io {
			t.Error("two pads in one IO slot (IORat=2) should be legal")
		}
	}
}

func TestRemove(t *testing.T) {
	n := tinyNetlist(t)
	p := New(arch.New(4), n)
	l0, _ := n.CellByName("l0")
	p.Place(l0, arch.Loc{X: 1, Y: 2})
	p.Remove(l0)
	if p.Placed(l0) {
		t.Error("cell should be unplaced after Remove")
	}
	if p.Usage(arch.Loc{X: 1, Y: 2}) != 0 {
		t.Error("slot should be empty after Remove")
	}
	p.Remove(l0) // idempotent
}

func TestGrowForReplicas(t *testing.T) {
	n := tinyNetlist(t)
	p := New(arch.New(4), n)
	l0, _ := n.CellByName("l0")
	p.Place(l0, arch.Loc{X: 1, Y: 1})
	rep := n.Replicate(l0)
	p.Place(rep.ID, arch.Loc{X: 2, Y: 2}) // must not panic
	if p.Loc(rep.ID) != (arch.Loc{X: 2, Y: 2}) {
		t.Error("replica placement lost")
	}
}

func TestNearestFreeLogic(t *testing.T) {
	n := tinyNetlist(t)
	f := arch.New(3)
	p := New(f, n)
	center := arch.Loc{X: 2, Y: 2}
	got, ok := p.NearestFreeLogic(center)
	if !ok || got != center {
		t.Errorf("empty grid: nearest free to center = %v, want %v", got, center)
	}
	l0, _ := n.CellByName("l0")
	p.Place(l0, center)
	got, ok = p.NearestFreeLogic(center)
	if !ok || arch.Dist(got, center) != 1 {
		t.Errorf("nearest free should be at distance 1, got %v", got)
	}
}

func TestNearestFreeLogicFullDevice(t *testing.T) {
	nl := netlist.New("full")
	f := arch.New(2)
	p := New(f, nl)
	for i, s := range f.LogicSlots() {
		c := nl.AddCell(string(rune('a'+i)), netlist.LUT, 0)
		p.Place(c.ID, s)
	}
	if _, ok := p.NearestFreeLogic(arch.Loc{X: 1, Y: 1}); ok {
		t.Error("full device should report no free slot")
	}
}

func TestQuadrantFreeSlots(t *testing.T) {
	nl := netlist.New("q")
	f := arch.New(5)
	p := New(f, nl)
	center := arch.Loc{X: 3, Y: 3}
	slots := p.QuadrantFreeSlots(center)
	if len(slots) != 4 {
		t.Fatalf("empty grid should yield 4 quadrant slots, got %d", len(slots))
	}
	// Each returned slot should be free, and they must cover 4
	// distinct quadrants.
	quads := map[int]bool{}
	for _, s := range slots {
		if !p.FreeLogicSlot(s) {
			t.Errorf("slot %v not free", s)
		}
		q := 0
		if s.X < center.X {
			q |= 1
		}
		if s.Y < center.Y {
			q |= 2
		}
		quads[q] = true
	}
	if len(quads) != 4 {
		t.Errorf("slots cover %d quadrants, want 4", len(quads))
	}
}

func TestCloneIndependent(t *testing.T) {
	n := tinyNetlist(t)
	p := New(arch.New(4), n)
	l0, _ := n.CellByName("l0")
	p.Place(l0, arch.Loc{X: 1, Y: 1})
	c := p.Clone()
	c.Place(l0, arch.Loc{X: 2, Y: 2})
	if p.Loc(l0) != (arch.Loc{X: 1, Y: 1}) {
		t.Error("clone edit leaked into original")
	}
}

func TestValidate(t *testing.T) {
	n := tinyNetlist(t)
	f := arch.New(4)
	p := New(f, n)
	if err := p.Validate(n); err == nil {
		t.Error("unplaced netlist should fail validation")
	}
	// Place everything properly.
	ioSlots := f.IOSlots()
	ioIdx := 0
	logic := f.LogicSlots()
	logicIdx := 0
	n.Cells(func(c *netlist.Cell) {
		if c.Kind == netlist.LUT {
			p.Place(c.ID, logic[logicIdx])
			logicIdx++
		} else {
			p.Place(c.ID, ioSlots[ioIdx])
			ioIdx++
		}
	})
	if err := p.Validate(n); err != nil {
		t.Errorf("valid placement rejected: %v", err)
	}
	// A pad on a logic slot must be rejected.
	i0, _ := n.CellByName("i0")
	p.Place(i0, arch.Loc{X: 1, Y: 1})
	if err := p.Validate(n); err == nil {
		t.Error("pad on logic slot should fail validation")
	}
}

func TestOccupancyConsistencyRandomized(t *testing.T) {
	// Property: after any sequence of Place/Remove, Usage sums to the
	// number of placed cells and every placed cell appears at its slot.
	rng := rand.New(rand.NewSource(7))
	nl := netlist.New("rand")
	var ids []netlist.CellID
	for i := 0; i < 40; i++ {
		c := nl.AddCell(string(rune('A'+i%26))+string(rune('a'+i/26)), netlist.LUT, 0)
		ids = append(ids, c.ID)
	}
	f := arch.New(6)
	p := New(f, nl)
	logic := f.LogicSlots()
	for step := 0; step < 500; step++ {
		id := ids[rng.Intn(len(ids))]
		if rng.Intn(4) == 0 {
			p.Remove(id)
		} else {
			p.Place(id, logic[rng.Intn(len(logic))])
		}
	}
	placed := 0
	total := 0
	for _, s := range logic {
		total += p.Usage(s)
	}
	for _, id := range ids {
		if p.Placed(id) {
			placed++
			found := false
			for _, c := range p.At(p.Loc(id)) {
				if c == id {
					found = true
				}
			}
			if !found {
				t.Fatalf("cell %d not in occupancy of its own slot", id)
			}
		}
	}
	if placed != total {
		t.Errorf("placed cells %d != total occupancy %d", placed, total)
	}
}

func TestPlot(t *testing.T) {
	n := tinyNetlist(t)
	f := arch.New(3)
	p := New(f, n)
	l0, _ := n.CellByName("l0")
	l1, _ := n.CellByName("l1")
	i0, _ := n.CellByName("i0")
	p.Place(l0, arch.Loc{X: 2, Y: 2})
	p.Place(l1, arch.Loc{X: 2, Y: 2}) // overfull
	p.Place(i0, arch.Loc{X: 0, Y: 1})
	out := p.Plot(n, map[netlist.CellID]bool{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // header + 5 rows (N+2)
		t.Fatalf("plot has %d lines:\n%s", len(lines), out)
	}
	// Row for y=2 is lines[3] (printed top-down from y=4).
	row2 := lines[3]
	if row2[2] != '*' {
		t.Errorf("overfull slot should render '*':\n%s", out)
	}
	row1 := lines[4]
	if row1[0] != 'i' {
		t.Errorf("input pad should render 'i':\n%s", out)
	}
	// Highlighting wins.
	out = p.Plot(n, map[netlist.CellID]bool{l0: true})
	if !strings.Contains(out, "+") {
		t.Errorf("highlight missing:\n%s", out)
	}
}
