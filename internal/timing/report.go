package timing

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/netlist"
)

// MonotonicityStats summarizes how "straight" a placement's timing
// paths are — the quantity replication exists to improve. The paper
// uses it both to motivate the approach (typical placements have
// highly nonmonotone critical paths) and to report end states
// ("for circuits misex3, diffeq, dsip, des, bigkey and s38584.1 we
// have reached a theoretical lower bound, i.e., all FF to FF paths
// are monotone").
type MonotonicityStats struct {
	// Paths is the number of sink-terminated worst paths examined
	// (one per timing sink).
	Paths int
	// Monotone counts paths whose total wire equals the source-sink
	// distance.
	Monotone int
	// LocallyMonotone counts paths monotone in every 3-cell window
	// (the weaker property local replication targets).
	LocallyMonotone int
	// WorstDetour is the largest (path wire − direct distance) over
	// all examined paths, in grid units.
	WorstDetour int
	// CriticalMonotone reports whether the critical path itself is
	// monotone — when true and the path is at its wire lower bound,
	// the clock period cannot improve without moving endpoints.
	CriticalMonotone bool
}

// Monotonicity examines, for every timing sink, the worst arrival path
// feeding it.
func Monotonicity(nl *netlist.Netlist, pl Locator, dm arch.DelayModel, a *Analysis) MonotonicityStats {
	var st MonotonicityStats
	nl.Cells(func(c *netlist.Cell) {
		if !c.IsSink() || math.IsInf(a.SinkArr[c.ID], -1) {
			return
		}
		path := worstPathTo(nl, pl, dm, a, c.ID)
		if len(path) < 2 {
			return
		}
		st.Paths++
		mono := PathMonotone(pl, path)
		if mono {
			st.Monotone++
		}
		if LocallyMonotone(pl, path) {
			st.LocallyMonotone++
		}
		if d := pathDetour(pl, path); d > st.WorstDetour {
			st.WorstDetour = d
		}
		if c.ID == a.CritSink {
			st.CriticalMonotone = mono
		}
	})
	return st
}

// pathDetour is total path wire minus the direct source-sink distance.
func pathDetour(pl Locator, path []netlist.CellID) int {
	total := 0
	for i := 1; i < len(path); i++ {
		total += arch.Dist(pl.Loc(path[i-1]), pl.Loc(path[i]))
	}
	return total - arch.Dist(pl.Loc(path[0]), pl.Loc(path[len(path)-1]))
}

// worstPathTo retraces the worst arrival path ending at the given
// sink, in signal-flow order.
func worstPathTo(nl *netlist.Netlist, pl Locator, dm arch.DelayModel, a *Analysis, sink netlist.CellID) []netlist.CellID {
	var rev []netlist.CellID
	cur := sink
	rev = append(rev, cur)
	for {
		c := nl.Cell(cur)
		bestU := netlist.CellID(netlist.None)
		bestT := math.Inf(-1)
		for _, net := range c.Fanin {
			if net == netlist.None {
				continue
			}
			u := nl.Net(net).Driver
			t := a.Arr[u] + dm.WireDelay(arch.Dist(pl.Loc(u), pl.Loc(cur)))
			if t > bestT {
				bestT = t
				bestU = u
			}
		}
		if bestU == netlist.None {
			break
		}
		rev = append(rev, bestU)
		if nl.Cell(bestU).IsSource() {
			break
		}
		cur = bestU
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathReport is one entry of a timing report.
type PathReport struct {
	Sink    netlist.CellID
	Arrival float64
	// Slack relative to the clock period.
	Slack float64
	// Cells in signal-flow order.
	Cells []netlist.CellID
	// Monotone reports the straightness of the placed path.
	Monotone bool
}

// TopPaths returns the k worst sink paths, slowest first — the
// "timing report" a downstream user reads after optimization.
func TopPaths(nl *netlist.Netlist, pl Locator, dm arch.DelayModel, a *Analysis, k int) []PathReport {
	type sinkArr struct {
		id  netlist.CellID
		arr float64
	}
	var sinks []sinkArr
	nl.Cells(func(c *netlist.Cell) {
		if c.IsSink() && !math.IsInf(a.SinkArr[c.ID], -1) {
			sinks = append(sinks, sinkArr{c.ID, a.SinkArr[c.ID]})
		}
	})
	sort.Slice(sinks, func(i, j int) bool {
		if sinks[i].arr != sinks[j].arr {
			return sinks[i].arr > sinks[j].arr
		}
		return sinks[i].id < sinks[j].id
	})
	if k > len(sinks) {
		k = len(sinks)
	}
	out := make([]PathReport, 0, k)
	for _, s := range sinks[:k] {
		path := worstPathTo(nl, pl, dm, a, s.id)
		out = append(out, PathReport{
			Sink:     s.id,
			Arrival:  s.arr,
			Slack:    a.Period - s.arr,
			Cells:    path,
			Monotone: PathMonotone(pl, path),
		})
	}
	return out
}

// FormatReport renders a human-readable timing report.
func FormatReport(nl *netlist.Netlist, pl Locator, reports []PathReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %10s %8s %5s  path\n", "#", "arrival", "slack", "mono")
	for i, r := range reports {
		names := make([]string, len(r.Cells))
		for j, id := range r.Cells {
			l := pl.Loc(id)
			names[j] = fmt.Sprintf("%s(%d,%d)", nl.Cell(id).Name, l.X, l.Y)
		}
		mono := "no"
		if r.Monotone {
			mono = "yes"
		}
		fmt.Fprintf(&b, "%4d %10.2f %8.2f %5s  %s\n",
			i+1, r.Arrival, r.Slack, mono, strings.Join(names, " -> "))
	}
	return b.String()
}
