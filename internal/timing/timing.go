// Package timing performs static timing analysis (STA) over a placed
// netlist under the linear placement-level delay model of Section II-B,
// and derives the structures the replication engine consumes: the
// critical path, the slowest-paths tree (SPT), its ε-restriction
// (ε-SPT, Section III), path-monotonicity statistics, and lower bounds
// on the achievable clock period.
//
// Conventions: Arr[c] is the signal arrival time at the *output* of
// cell c. Timing sources (input pads and registered LUTs) have
// Arr = 0. A connection (u, v) contributes delay
// WireDelay(dist(u,v)) + intrinsic(v). Paths end at timing sinks
// (output pads and the inputs of registered LUTs); SinkArr[c] is the
// path arrival there, including the sink's intrinsic delay. The clock
// period is the maximum SinkArr.
package timing

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/arch"
	"repro/internal/netlist"
)

// Analysis is the result of one STA pass.
type Analysis struct {
	// Arr is the arrival time at each cell's output (0 for sources).
	Arr []float64
	// SinkArr is the path arrival time at each timing sink (math.Inf(-1)
	// for non-sinks).
	SinkArr []float64
	// Through is the delay of the slowest source-to-sink path passing
	// through each cell.
	Through []float64
	// Down is the worst-case delay from each cell's output to any path
	// end (math.Inf(-1) if the cell reaches no sink combinationally).
	Down []float64
	// Period is the clock period: the maximum SinkArr.
	Period float64
	// CritSink is the sink realizing Period.
	CritSink netlist.CellID
	// SecondArr is the worst sink arrival excluding CritSink
	// (math.Inf(-1) when no other sink exists). The engine's selection
	// bound needs it, and folding it into the period reduction keeps it
	// free for both the full and incremental passes.
	SecondArr float64
	// SecondSink is the sink realizing SecondArr.
	SecondSink netlist.CellID
	// Order is the combinational topological order used.
	Order []netlist.CellID
}

// Intrinsic returns the intrinsic delay the model assigns to cell c.
func Intrinsic(dm arch.DelayModel, c *netlist.Cell) float64 {
	switch c.Kind {
	case netlist.LUT:
		return dm.LUTDelay
	default:
		return dm.IODelay
	}
}

// EdgeDelay returns the delay of connection (u, v) under placement pl:
// wire delay over the Manhattan distance plus v's intrinsic delay.
func EdgeDelay(nl *netlist.Netlist, pl Locator, dm arch.DelayModel, u, v netlist.CellID) float64 {
	return dm.WireDelay(arch.Dist(pl.Loc(u), pl.Loc(v))) + Intrinsic(dm, nl.Cell(v))
}

// Locator provides cell locations. It is the subset of
// placement.Placement the analyzer needs; the interface keeps this
// package decoupled and lets tests supply synthetic placements.
type Locator interface {
	Loc(netlist.CellID) arch.Loc
}

// WireDelayFunc gives the wire delay of the connection from cell u to
// cell v. Placement-level analysis uses Manhattan distance; post-route
// analysis substitutes actual routed path lengths.
type WireDelayFunc func(u, v netlist.CellID) float64

// ManhattanWire is the placement-level wire delay function.
func ManhattanWire(pl Locator, dm arch.DelayModel) WireDelayFunc {
	return func(u, v netlist.CellID) float64 {
		return dm.WireDelay(arch.Dist(pl.Loc(u), pl.Loc(v)))
	}
}

// Analyze runs a full STA pass using Manhattan wire delays, with the
// default worker count (GOMAXPROCS). Results are independent of the
// worker count.
func Analyze(nl *netlist.Netlist, pl Locator, dm arch.DelayModel) (*Analysis, error) {
	return AnalyzeWorkers(nl, pl, dm, runtime.GOMAXPROCS(0))
}

// AnalyzeWorkers runs a full STA pass using Manhattan wire delays on
// the given number of workers; 1 selects the exact serial path. The
// parallel path levelizes the netlist and fans each level's arrival
// (and, backward, required-time) computations out across goroutines;
// it produces bit-identical results to the serial path because each
// cell's values depend only on earlier (respectively later) levels.
func AnalyzeWorkers(nl *netlist.Netlist, pl Locator, dm arch.DelayModel, workers int) (*Analysis, error) {
	return AnalyzeCustomWorkers(nl, ManhattanWire(pl, dm), dm, workers)
}

// AnalyzeWorkersCtx is AnalyzeWorkers with cooperative cancellation:
// the pass checks ctx between levels (and periodically on the serial
// path) and returns ctx.Err() once the context is done, so a cancelled
// job stops paying for STA over a large netlist.
func AnalyzeWorkersCtx(ctx context.Context, nl *netlist.Netlist, pl Locator, dm arch.DelayModel, workers int) (*Analysis, error) {
	return AnalyzeCustomWorkersCtx(ctx, nl, ManhattanWire(pl, dm), dm, workers)
}

// AnalyzeCustom runs a full STA pass with an arbitrary per-connection
// wire delay function, serially.
func AnalyzeCustom(nl *netlist.Netlist, wireOf WireDelayFunc, dm arch.DelayModel) (*Analysis, error) {
	return AnalyzeCustomWorkers(nl, wireOf, dm, 1)
}

// minParallelCells gates the levelized parallel path: below this size
// the per-level goroutine fan-out costs more than the work it splits.
const minParallelCells = 2048

// minParallelLevel is the smallest level that is worth fanning out.
const minParallelLevel = 256

// AnalyzeCustomWorkers runs a full STA pass with an arbitrary
// per-connection wire delay function on the given number of workers.
// wireOf must be safe for concurrent calls when workers > 1.
func AnalyzeCustomWorkers(nl *netlist.Netlist, wireOf WireDelayFunc, dm arch.DelayModel, workers int) (*Analysis, error) {
	return AnalyzeCustomWorkersCtx(context.Background(), nl, wireOf, dm, workers)
}

// ctxCheckStride is how many serial per-cell steps run between
// cancellation checks; ctx.Err can take a lock, so the check is
// amortized over a stride that still reacts within microseconds of
// work.
const ctxCheckStride = 4096

// AnalyzeCustomWorkersCtx is AnalyzeCustomWorkers under a context.
// Cancellation is cooperative and coarse-grained — between levelized
// passes and every ctxCheckStride cells on the serial path — which
// bounds the overhang to a fraction of one pass. A cancelled analysis
// returns (nil, ctx.Err()) and never a partial Analysis.
func AnalyzeCustomWorkersCtx(ctx context.Context, nl *netlist.Netlist, wireOf WireDelayFunc, dm arch.DelayModel, workers int) (*Analysis, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		Arr:     make([]float64, nl.Cap()),
		SinkArr: make([]float64, nl.Cap()),
		Through: make([]float64, nl.Cap()),
		Down:    make([]float64, nl.Cap()),
		Order:   order,
		Period:  math.Inf(-1),
	}
	for i := range a.SinkArr {
		a.SinkArr[i] = math.Inf(-1)
	}
	for i := range a.Down {
		a.Down[i] = math.Inf(-1)
	}
	for i := range a.Through {
		a.Through[i] = math.Inf(-1)
	}

	// The per-cell kernels are shared with the incremental engine
	// (incremental.go): evaluating the same float expressions in the
	// same order is what makes incremental results Float64bits-identical
	// to a from-scratch pass.
	p := &pass{nl: nl, wireOf: wireOf, dm: dm, a: a}
	forward := p.forward
	regArr := p.regArr
	backward := p.backward

	var regs []netlist.CellID
	for _, id := range order {
		if c := nl.Cell(id); c.IsSource() && c.IsSink() {
			regs = append(regs, id)
		}
	}

	if workers <= 1 || len(order) < minParallelCells {
		for i, id := range order {
			if i%ctxCheckStride == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			forward(id)
		}
		for _, id := range regs {
			regArr(id)
		}
		for i := len(order) - 1; i >= 0; i-- {
			if i%ctxCheckStride == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			backward(order[i])
		}
	} else {
		// Levelized parallel passes: all cells of one level depend
		// only on cells of strictly earlier levels (later levels, for
		// the backward pass), so each level fans out across workers.
		// Cancellation is checked between levels: a level's workers
		// always run to completion, so no goroutine outlives the call.
		levels, _ := levelize(nl, order)
		for _, lv := range levels {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			runLevel(lv, workers, forward)
		}
		runLevel(regs, workers, regArr)
		for i := len(levels) - 1; i >= 0; i-- {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			runLevel(levels[i], workers, backward)
		}
	}

	a.reducePeriod(order)
	if math.IsInf(a.Period, -1) {
		return nil, fmt.Errorf("timing: netlist %s has no timing sinks", nl.Name)
	}
	if assertEnabled {
		assertArrivalMonotone(nl, wireOf, dm, a)
	}
	return a, nil
}

// pass bundles the inputs of one STA evaluation. Its methods are the
// per-cell kernels shared by the full analyzer and the incremental
// engine: each kernel recomputes its cell's outputs from scratch with
// a fixed float expression order, so re-running a kernel over
// bitwise-unchanged inputs reproduces bitwise-unchanged outputs — the
// exactness contract the incremental path is built on. Every kernel
// writes all of its cell's outputs (assigning the defaults explicitly
// where the original closures relied on array initialization), which
// makes the kernels idempotent under repeated application.
type pass struct {
	nl     *netlist.Netlist
	wireOf WireDelayFunc
	dm     arch.DelayModel
	a      *Analysis
}

// worstInput returns the worst arrival over the cell's fanin
// connections and whether any fanin exists.
func (p *pass) worstInput(id netlist.CellID) (float64, bool) {
	c := p.nl.Cell(id)
	worstIn := math.Inf(-1)
	haveIn := false
	for _, net := range c.Fanin {
		if net == netlist.None {
			continue
		}
		u := p.nl.Net(net).Driver
		t := p.a.Arr[u] + p.wireOf(u, id)
		if t > worstIn {
			worstIn = t
		}
		haveIn = true
	}
	return worstIn, haveIn
}

// forward computes one cell's output arrival and, for purely
// combinational sinks, its path arrival. Registered LUTs are both
// source and sink: their output arrival is 0, but their *input*
// arrival depends on drivers that the topological order does not
// place before them (edges into timing sources do not constrain it),
// so it is deferred to regArr, after every Arr is final.
func (p *pass) forward(id netlist.CellID) {
	c := p.nl.Cell(id)
	if c.IsSource() {
		p.a.Arr[id] = 0
		return
	}
	worstIn, haveIn := p.worstInput(id)
	if c.IsSink() {
		if haveIn {
			p.a.SinkArr[id] = worstIn + Intrinsic(p.dm, c)
		} else {
			p.a.SinkArr[id] = math.Inf(-1)
		}
	}
	if c.Kind == netlist.LUT {
		if haveIn {
			p.a.Arr[id] = worstIn + p.dm.LUTDelay
		} else {
			p.a.Arr[id] = 0 // floating LUT: treat as constant source
		}
	}
}

// regArr finishes a registered sink once all arrivals are final.
func (p *pass) regArr(id netlist.CellID) {
	c := p.nl.Cell(id)
	worstIn, haveIn := p.worstInput(id)
	if haveIn {
		p.a.SinkArr[id] = worstIn + Intrinsic(p.dm, c)
	} else {
		p.a.SinkArr[id] = math.Inf(-1)
	}
}

// backward computes one cell's worst downstream delay and Through.
// A registered LUT lies on two kinds of paths — those ending at
// its input (SinkArr) and those starting at its output (Arr +
// downstream) — so Through takes the maximum of both.
func (p *pass) backward(id netlist.CellID) {
	c := p.nl.Cell(id)
	down := math.Inf(-1)
	if c.Out != netlist.None {
		for _, pn := range p.nl.Net(c.Out).Sinks {
			v := pn.Cell
			vc := p.nl.Cell(v)
			wire := p.wireOf(id, v)
			var tail float64
			if vc.IsSink() {
				tail = wire + Intrinsic(p.dm, vc)
			} else if !math.IsInf(p.a.Down[v], -1) {
				tail = wire + p.dm.LUTDelay + p.a.Down[v]
			} else {
				continue // v reaches no sink
			}
			if tail > down {
				down = tail
			}
		}
	}
	p.a.Down[id] = down
	th := math.Inf(-1)
	if c.IsSink() && !math.IsInf(p.a.SinkArr[id], -1) {
		th = p.a.SinkArr[id]
	}
	if !math.IsInf(down, -1) {
		if t := p.a.Arr[id] + down; t > th {
			th = t
		}
	}
	p.a.Through[id] = th
}

// reducePeriod recomputes Period/CritSink and the runner-up
// SecondArr/SecondSink by scanning sink arrivals over ids in
// topological order (first sink to strictly exceed the running maximum
// wins), so serial, parallel, and incremental passes agree on
// tie-breaking. Non-sinks carry SinkArr = -Inf and are skipped, so
// passing the full order or just the sinks in order is equivalent.
func (a *Analysis) reducePeriod(ids []netlist.CellID) {
	a.Period = math.Inf(-1)
	a.CritSink = 0
	a.SecondArr = math.Inf(-1)
	a.SecondSink = 0
	for _, id := range ids {
		t := a.SinkArr[id]
		if math.IsInf(t, -1) {
			continue
		}
		if t > a.Period {
			a.SecondArr = a.Period
			a.SecondSink = a.CritSink
			a.Period = t
			a.CritSink = id
		} else if t > a.SecondArr {
			a.SecondArr = t
			a.SecondSink = id
		}
	}
}

// levelize buckets the live cells by combinational depth: sources at
// level 0, every other cell one past its deepest fanin driver. Within
// a level cells keep their topological order, so chunked reductions
// stay deterministic. The second result maps each cell to its level
// (meaningful for cells in order only); the incremental engine keys
// its worklist buckets by it.
func levelize(nl *netlist.Netlist, order []netlist.CellID) ([][]netlist.CellID, []int32) {
	lvl := make([]int32, nl.Cap())
	maxl := int32(0)
	for _, id := range order {
		c := nl.Cell(id)
		if c.IsSource() {
			continue // level 0
		}
		l := int32(0)
		for _, net := range c.Fanin {
			if net == netlist.None {
				continue
			}
			u := nl.Net(net).Driver
			if lvl[u]+1 > l {
				l = lvl[u] + 1
			}
		}
		lvl[id] = l
		if l > maxl {
			maxl = l
		}
	}
	levels := make([][]netlist.CellID, maxl+1)
	for _, id := range order {
		levels[lvl[id]] = append(levels[lvl[id]], id)
	}
	return levels, lvl
}

// runLevel applies fn to every cell of one level, fanning out across
// workers when the level is wide enough to amortize the goroutines.
func runLevel(cells []netlist.CellID, workers int, fn func(netlist.CellID)) {
	if workers <= 1 || len(cells) < minParallelLevel {
		for _, id := range cells {
			fn(id)
		}
		return
	}
	chunk := (len(cells) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(cells); lo += chunk {
		hi := lo + chunk
		if hi > len(cells) {
			hi = len(cells)
		}
		wg.Add(1)
		go func(span []netlist.CellID) {
			defer wg.Done()
			for _, id := range span {
				fn(id)
			}
		}(cells[lo:hi])
	}
	wg.Wait()
}

// Slack returns Period minus the slowest path through cell id; cells on
// the critical path have zero slack.
func (a *Analysis) Slack(id netlist.CellID) float64 { return a.Period - a.Through[id] }

// CriticalPath returns the cells of the slowest path in signal-flow
// order, from a timing source to the critical sink.
func (a *Analysis) CriticalPath(nl *netlist.Netlist, pl Locator, dm arch.DelayModel) []netlist.CellID {
	var rev []netlist.CellID
	cur := a.CritSink
	rev = append(rev, cur)
	// Walk backward, at each step picking the fanin whose arrival plus
	// wire delay realizes the node's input arrival.
	for {
		c := nl.Cell(cur)
		bestU := netlist.CellID(netlist.None)
		bestT := math.Inf(-1)
		for _, net := range c.Fanin {
			if net == netlist.None {
				continue
			}
			u := nl.Net(net).Driver
			t := a.Arr[u] + dm.WireDelay(arch.Dist(pl.Loc(u), pl.Loc(cur)))
			if t > bestT {
				bestT = t
				bestU = u
			}
		}
		if bestU == netlist.None {
			break
		}
		rev = append(rev, bestU)
		if nl.Cell(bestU).IsSource() {
			break
		}
		cur = bestU
	}
	// Reverse into signal-flow order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathMonotone reports whether the placed path visits cells in
// non-detouring order: the total wire length equals the source-to-sink
// distance.
func PathMonotone(pl Locator, path []netlist.CellID) bool {
	if len(path) < 2 {
		return true
	}
	total := 0
	for i := 1; i < len(path); i++ {
		total += arch.Dist(pl.Loc(path[i-1]), pl.Loc(path[i]))
	}
	return total == arch.Dist(pl.Loc(path[0]), pl.Loc(path[len(path)-1]))
}

// LocallyMonotone reports whether every length-3 window of the path is
// monotone — the weaker property exploited by the local replication
// baseline and shown insufficient in Fig. 3 of the paper.
func LocallyMonotone(pl Locator, path []netlist.CellID) bool {
	for i := 2; i < len(path); i++ {
		a, b, c := pl.Loc(path[i-2]), pl.Loc(path[i-1]), pl.Loc(path[i])
		if arch.Dist(a, c) < arch.Dist(a, b)+arch.Dist(b, c) {
			return false
		}
	}
	return true
}

// LowerBound computes a lower bound on the achievable arrival time at
// the given sink assuming only the sink and the timing sources stay
// fixed: for every source s in the sink's fanin cone, any s-to-sink
// path must cover at least the source-sink Manhattan distance in wire
// and pass through at least the minimum logic depth in LUTs
// (Section II-C: "limited by distance between PIs and POs and number of
// logic blocks in between").
func LowerBound(nl *netlist.Netlist, pl Locator, dm arch.DelayModel, sink netlist.CellID) float64 {
	depth := minLogicDepth(nl, sink)
	sc := nl.Cell(sink)
	bound := 0.0
	// Sorted cone iteration: max over the cone is order-independent
	// mathematically, but keeping every ordered reduction on a sorted
	// sequence is the invariant replint's maprange rule enforces.
	cone := make([]netlist.CellID, 0, len(depth))
	for u := range depth {
		cone = append(cone, u)
	}
	sort.Slice(cone, func(i, j int) bool { return cone[i] < cone[j] })
	for _, u := range cone {
		d := depth[u]
		uc := nl.Cell(u)
		if !uc.IsSource() && uc.Kind != netlist.IPad {
			continue
		}
		lb := dm.WireDelay(arch.Dist(pl.Loc(u), pl.Loc(sink))) +
			float64(d)*dm.LUTDelay + Intrinsic(dm, sc)
		if lb > bound {
			bound = lb
		}
	}
	return bound
}

// minLogicDepth returns, for each cell in the sink's fanin cone, the
// minimum number of (non-registered) LUTs on any path from that cell's
// output to the sink's input.
func minLogicDepth(nl *netlist.Netlist, sink netlist.CellID) map[netlist.CellID]int {
	depth := map[netlist.CellID]int{sink: 0}
	// BFS over reversed edges; because all LUT weights are equal we
	// can process in waves of equal depth (0-1 BFS is unnecessary: the
	// only zero-weight hop is the final edge into the sink, folded in
	// below).
	queue := []netlist.CellID{sink}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		vc := nl.Cell(v)
		if vc.IsSource() && v != sink {
			continue
		}
		// Cost of passing through v on the way to the sink: v itself
		// is a LUT stage unless v is the sink (whose intrinsic is
		// accounted separately).
		stage := 0
		if v != sink && vc.Kind == netlist.LUT {
			stage = 1
		}
		for _, net := range vc.Fanin {
			if net == netlist.None {
				continue
			}
			u := nl.Net(net).Driver
			d := depth[v] + stage
			if old, seen := depth[u]; !seen || d < old {
				depth[u] = d
				queue = append(queue, u)
			}
		}
	}
	return depth
}
