package timing

import (
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/netlist"
)

// SPT is a slowest-paths tree rooted at a timing sink: for every cell
// in the sink's fanin cone, Parent gives the next cell on the slowest
// path from that cell toward the sink (Section III: "the result of
// finding a longest paths tree from the critical sink in the timing
// graph with the edges reversed").
type SPT struct {
	Sink netlist.CellID
	// SinkArr is the arrival time at the sink (the tree's path delay).
	SinkArr float64
	// Parent maps each cone cell to its tree parent (the sink maps to
	// nothing).
	Parent map[netlist.CellID]netlist.CellID
	// PathThrough maps each cone cell u to the delay of the slowest
	// source-to-sink path passing through u *and ending at this sink*.
	PathThrough map[netlist.CellID]float64
}

// BuildSPT derives the slowest-paths tree for the given sink from a
// completed analysis.
func BuildSPT(nl *netlist.Netlist, pl Locator, dm arch.DelayModel, a *Analysis, sink netlist.CellID) *SPT {
	s, _, _, _ := buildSPT(nl, pl, dm, a, sink)
	return s
}

// buildSPT is BuildSPT exposing its intermediates — the cone-restricted
// downstream delays, the cone, and the cone cells in topological order
// — which the SPT cache retains to patch the tree incrementally.
func buildSPT(nl *netlist.Netlist, pl Locator, dm arch.DelayModel, a *Analysis, sink netlist.CellID) (
	*SPT, map[netlist.CellID]float64, map[netlist.CellID]bool, []netlist.CellID) {
	cone := nl.FaninCone(sink)
	s := &SPT{
		Sink:        sink,
		SinkArr:     a.SinkArr[sink],
		Parent:      make(map[netlist.CellID]netlist.CellID, len(cone)),
		PathThrough: make(map[netlist.CellID]float64, len(cone)),
	}
	// downT[u]: worst delay from u's output to the sink's path end,
	// restricted to cone-internal edges. Computed in reverse
	// topological order.
	downT := make(map[netlist.CellID]float64, len(cone))
	s.PathThrough[sink] = a.SinkArr[sink]

	order := a.Order
	coneOrder := make([]netlist.CellID, 0, len(cone))
	for _, u := range order {
		if cone[u] {
			coneOrder = append(coneOrder, u)
		}
	}
	for i := len(coneOrder) - 1; i >= 0; i-- {
		u := coneOrder[i]
		if u == sink {
			continue
		}
		best, bestV := sptDown(nl, pl, dm, cone, downT, u, sink)
		if bestV == netlist.None {
			continue // u does not reach the sink combinationally
		}
		downT[u] = best
		s.Parent[u] = bestV
		s.PathThrough[u] = a.Arr[u] + best
	}
	return s, downT, cone, coneOrder
}

// sptDown is the per-cell SPT kernel: the worst cone-internal delay
// from u's output to the sink's path end, and the fanout realizing it.
// Shared by the full build and the cache's patch sweep so both compute
// bitwise-identical values.
func sptDown(nl *netlist.Netlist, pl Locator, dm arch.DelayModel,
	cone map[netlist.CellID]bool, downT map[netlist.CellID]float64,
	u, sink netlist.CellID) (float64, netlist.CellID) {
	uc := nl.Cell(u)
	if uc.Out == netlist.None {
		return math.Inf(-1), netlist.None
	}
	best := math.Inf(-1)
	var bestV netlist.CellID = netlist.None
	for _, p := range nl.Net(uc.Out).Sinks {
		v := p.Cell
		if !cone[v] {
			continue
		}
		wire := dm.WireDelay(arch.Dist(pl.Loc(u), pl.Loc(v)))
		var tail float64
		if v == sink {
			tail = wire + Intrinsic(dm, nl.Cell(v))
		} else {
			dv, ok := downT[v]
			if !ok {
				continue
			}
			tail = wire + dm.LUTDelay + dv
		}
		if tail > best {
			best = tail
			bestV = v
		}
	}
	return best, bestV
}

// Epsilon returns the node set of the ε-SPT: the sink plus every cone
// cell whose slowest path to this sink is within eps of the sink's
// arrival time. By construction of the SPT the set is connected via
// Parent edges.
func (s *SPT) Epsilon(eps float64) map[netlist.CellID]bool {
	nodes := map[netlist.CellID]bool{s.Sink: true}
	for u, pt := range s.PathThrough {
		if pt >= s.SinkArr-eps {
			nodes[u] = true
		}
	}
	return nodes
}

// Children inverts the parent relation over a node subset, returning
// each member's tree children in deterministic (ascending ID) order.
// Members are visited in sorted-ID order, so each child list comes out
// ascending by construction — no map-order dependence, no per-key sort.
func (s *SPT) Children(members map[netlist.CellID]bool) map[netlist.CellID][]netlist.CellID {
	ids := make([]netlist.CellID, 0, len(members))
	for u := range members {
		ids = append(ids, u)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ch := make(map[netlist.CellID][]netlist.CellID)
	for _, u := range ids {
		if u == s.Sink {
			continue
		}
		p := s.Parent[u]
		if members[p] {
			ch[p] = append(ch[p], u)
		}
	}
	return ch
}
