//go:build replassert

package timing

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/netlist"
)

// assertEnabled gates the replassert runtime invariant layer for the
// STA. Built with -tags replassert, every analysis re-derives the
// forward recurrence serially and demands bitwise agreement; the
// default build compiles the check away (see assert_off.go).
const assertEnabled = true

// assertArrivalMonotone re-runs the arrival recurrence cell by cell in
// topological order and panics on any bitwise difference from the
// analysis results. This is the strongest form of the arrival
// monotonicity invariant: under a nonnegative delay model the
// recurrence makes Arr non-decreasing along every combinational path,
// and bitwise agreement with a serial re-derivation is exactly the
// determinism contract the levelized parallel passes promise.
func assertArrivalMonotone(nl *netlist.Netlist, wireOf WireDelayFunc, dm arch.DelayModel, a *Analysis) {
	worst := func(id netlist.CellID) (float64, bool) {
		c := nl.Cell(id)
		worstIn := math.Inf(-1)
		haveIn := false
		for _, net := range c.Fanin {
			if net == netlist.None {
				continue
			}
			u := nl.Net(net).Driver
			if t := a.Arr[u] + wireOf(u, id); t > worstIn {
				worstIn = t
			}
			haveIn = true
		}
		return worstIn, haveIn
	}
	for _, id := range a.Order {
		c := nl.Cell(id)
		if c.IsSource() {
			if a.Arr[id] != 0 {
				panic(fmt.Sprintf("replassert: source %s has Arr %g, want 0", c.Name, a.Arr[id]))
			}
		}
		worstIn, haveIn := worst(id)
		if !c.IsSource() && c.Kind == netlist.LUT {
			want := 0.0
			if haveIn {
				want = worstIn + dm.LUTDelay
			}
			if a.Arr[id] != want {
				panic(fmt.Sprintf(
					"replassert: Arr[%s] = %g diverges from serial recurrence %g", c.Name, a.Arr[id], want))
			}
		}
		if c.IsSink() {
			want := math.Inf(-1)
			if haveIn {
				want = worstIn + Intrinsic(dm, c)
			}
			if a.SinkArr[id] != want {
				panic(fmt.Sprintf(
					"replassert: SinkArr[%s] = %g diverges from serial recurrence %g", c.Name, a.SinkArr[id], want))
			}
		}
	}
}
