package timing

import (
	"math"

	"repro/internal/arch"
	"repro/internal/netlist"
)

// SPTCacheStats counts cache outcomes across one engine run.
type SPTCacheStats struct {
	// Hits are requests served entirely from cache (no cone cell's
	// timing or location changed since the tree was built).
	Hits int
	// Patches are requests served by re-running the SPT kernel over
	// only the cone cells whose endpoint timing or location changed.
	Patches int
	// Rebuilds are from-scratch constructions: first request per sink,
	// structural changes, and evictions.
	Rebuilds int
	// PatchedCells is the cumulative number of cone cells touched by
	// patch sweeps (the full build touches the whole cone).
	PatchedCells int
}

// defaultSPTCacheCap bounds cached trees; the engine revisits at most
// a handful of distinct critical sinks between structural changes.
const defaultSPTCacheCap = 4

// SPTCache keeps slowest-paths trees alive between engine iterations
// and patches, rather than rebuilds, the ones whose cones were only
// locally disturbed. It is driven by an Incremental analyzer's change
// generations: a cached tree is patched by re-running the shared
// sptDown kernel over exactly the cone cells whose location moved (or
// that feed a moved cell) since the tree was built, propagating
// upstream while recomputed values change bits, and refreshing
// PathThrough where arrivals changed. Cells with bitwise-unchanged
// kernel inputs keep bitwise-unchanged values, so a patched tree is
// Float64bits-identical to BuildSPT run from scratch. Any structural
// change (StructGen) rebuilds: cone membership may have shifted.
type SPTCache struct {
	inc     *Incremental
	cap     int
	entries map[netlist.CellID]*sptEntry
	fifo    []netlist.CellID
	Stats   SPTCacheStats
}

type sptEntry struct {
	// The tree and its cone indexes are only bitwise-trustworthy while
	// builtGen matches the analyzer's generation; every mutation must
	// re-stamp builtGen before returning (replint's stalegen rule
	// enforces this — a patch that escapes without the stamp would be
	// served as a false cache hit next Get).
	spt       *SPT                       //replint:guarded gen=builtGen
	downT     map[netlist.CellID]float64 //replint:guarded gen=builtGen
	cone      map[netlist.CellID]bool    //replint:guarded gen=builtGen
	coneOrder []netlist.CellID           //replint:guarded gen=builtGen
	builtGen  uint64
	// dirty is the patch sweep's per-entry scratch, reused across
	// patches to keep steady-state iterations allocation-light.
	dirty map[netlist.CellID]uint8
}

// dirty marks for the patch sweep.
const (
	dirtyDown uint8 = 1 << iota // recompute downT/Parent/PathThrough
	dirtyPT                     // refresh PathThrough only (Arr changed)
)

// NewSPTCache returns a cache bound to the incremental analyzer whose
// generations drive invalidation; capacity 0 selects the default.
func NewSPTCache(inc *Incremental, capacity int) *SPTCache {
	if capacity <= 0 {
		capacity = defaultSPTCacheCap
	}
	return &SPTCache{
		inc:     inc,
		cap:     capacity,
		entries: make(map[netlist.CellID]*sptEntry, capacity),
	}
}

// Get returns the slowest-paths tree for sink over analysis a,
// patching or reusing a cached tree when the change log proves it
// valid. The returned tree is owned by the cache: it is valid until
// the next Get.
func (c *SPTCache) Get(nl *netlist.Netlist, pl Locator, dm arch.DelayModel, a *Analysis, sink netlist.CellID) *SPT {
	e := c.entries[sink]
	if e == nil || c.inc.StructGen() > e.builtGen {
		return c.rebuild(nl, pl, dm, a, sink, e)
	}
	return c.patch(nl, pl, dm, a, e)
}

// rebuild constructs the tree from scratch and (re)inserts it.
func (c *SPTCache) rebuild(nl *netlist.Netlist, pl Locator, dm arch.DelayModel, a *Analysis, sink netlist.CellID, old *sptEntry) *SPT {
	spt, downT, cone, coneOrder := buildSPT(nl, pl, dm, a, sink)
	e := old
	if e == nil {
		if len(c.entries) >= c.cap {
			victim := c.fifo[0]
			c.fifo = c.fifo[1:]
			delete(c.entries, victim)
		}
		e = &sptEntry{}
		c.entries[sink] = e
		c.fifo = append(c.fifo, sink)
	}
	e.spt, e.downT, e.cone, e.coneOrder = spt, downT, cone, coneOrder
	e.builtGen = c.inc.Gen()
	c.Stats.Rebuilds++
	return spt
}

// patch brings a structurally valid cached tree up to date with the
// analyzer's current generation.
func (c *SPTCache) patch(nl *netlist.Netlist, pl Locator, dm arch.DelayModel, a *Analysis, e *sptEntry) *SPT {
	s := e.spt
	sink := s.Sink
	if e.dirty == nil {
		e.dirty = make(map[netlist.CellID]uint8)
	} else {
		clear(e.dirty)
	}
	dirty := e.dirty

	// Seed scan: O(cone) integer generation compares. A moved cell
	// invalidates its own downstream delay (outgoing wires) and that of
	// every cone driver feeding it (their wire to it changed); a cell
	// with changed arrival only needs its PathThrough refreshed.
	any := false
	for _, u := range e.coneOrder {
		if c.inc.MovedSince(u, e.builtGen) {
			any = true
			if u != sink {
				dirty[u] |= dirtyDown
			}
			for _, net := range nl.Cell(u).Fanin {
				if net == netlist.None {
					continue
				}
				if w := nl.Net(net).Driver; e.cone[w] {
					dirty[w] |= dirtyDown
				}
			}
		}
		if c.inc.ArrChangedSince(u, e.builtGen) {
			any = true
			dirty[u] |= dirtyPT
		}
	}
	if !any {
		e.builtGen = c.inc.Gen()
		c.Stats.Hits++
		return s
	}

	// Patch sweep in reverse topological order over the cone: dirty
	// cells re-run the shared kernel; a changed downstream delay marks
	// the cone drivers feeding the cell, which appear later in the
	// sweep. Key sets never change here — reachability to the sink is
	// structural, and structural changes rebuilt above.
	touched := 0
	for i := len(e.coneOrder) - 1; i >= 0; i-- {
		u := e.coneOrder[i]
		m := dirty[u]
		if m == 0 {
			continue
		}
		touched++
		if u == sink {
			s.SinkArr = a.SinkArr[sink]
			s.PathThrough[sink] = a.SinkArr[sink]
			continue
		}
		if m&dirtyDown == 0 {
			// Arrival-only change: downstream delay is intact.
			if _, ok := e.downT[u]; ok {
				s.PathThrough[u] = a.Arr[u] + e.downT[u]
			}
			continue
		}
		best, bestV := sptDown(nl, pl, dm, e.cone, e.downT, u, sink)
		if bestV == netlist.None {
			continue // u does not reach the sink combinationally
		}
		changed := math.Float64bits(e.downT[u]) != math.Float64bits(best)
		e.downT[u] = best
		s.Parent[u] = bestV
		s.PathThrough[u] = a.Arr[u] + best
		if !changed {
			continue
		}
		for _, net := range nl.Cell(u).Fanin {
			if net == netlist.None {
				continue
			}
			if w := nl.Net(net).Driver; e.cone[w] {
				dirty[w] |= dirtyDown
			}
		}
	}
	e.builtGen = c.inc.Gen()
	c.Stats.Patches++
	c.Stats.PatchedCells += touched
	return s
}
