package timing

import (
	"context"
	"math"

	"repro/internal/arch"
	"repro/internal/netlist"
)

// PlacedLocator extends Locator with placement membership, letting the
// incremental engine snapshot locations without panicking on cells the
// engine has not placed yet.
type PlacedLocator interface {
	Locator
	Placed(netlist.CellID) bool
}

// IncrementalStats counts what the incremental analyzer actually did;
// the engine surfaces them through core.Stats and the service layer.
type IncrementalStats struct {
	// Updates counts incremental (dirty-region) analyses applied.
	Updates int
	// FullRuns counts from-scratch analyses: the first pass, passes
	// after Invalidate, and threshold fallbacks.
	FullRuns int
	// Fallbacks counts full runs forced by the dirty frontier
	// exceeding MaxDirtyFrac.
	Fallbacks int
	// Seeds is the cumulative number of dirty seed cells across
	// incremental updates.
	Seeds int
	// CellsForward / CellsBackward are the cumulative cells
	// re-propagated by each pass direction.
	CellsForward  int
	CellsBackward int
	// MaxDirty is the largest single-update dirty cone (forward +
	// backward cells re-propagated).
	MaxDirty int
}

// defaultMaxDirtyFrac bounds the dirty frontier at a quarter of the
// live cells before an update falls back to the full analyzer: past
// that point the worklist bookkeeping costs more than the levelized
// full pass it avoids.
const defaultMaxDirtyFrac = 0.25

// Incremental is a dirty-region STA engine. Analyze behaves exactly
// like AnalyzeWorkersCtx — the returned Analysis is Float64bits-
// identical to a from-scratch pass over the same netlist and placement
// — but after the first call it re-propagates arrivals and downstream
// delays only through the cones affected by cells that moved, were
// rewired, created, or deleted since the previous call.
//
// Change detection is by diffing against a snapshot of the previous
// state (locations, liveness, fanin nets) rather than by trusting
// callers to report mutations: the engine restores whole netlist
// clones on drift-discard and best-restore, and a diff is immune to a
// forgotten notification. Exactness comes from three properties: the
// per-cell kernels are shared with the full pass (same float
// expression order), propagation stops only when a recomputed value is
// bitwise-unchanged (so anything downstream of a truly changed value
// is recomputed), and ordered reductions (Period/CritSink tie-breaks)
// re-run over the same topological sequence the full pass uses.
//
// Incremental is not safe for concurrent use; the engine owns one.
type Incremental struct {
	dm      arch.DelayModel
	workers int
	// MaxDirtyFrac is the dirty-frontier fallback threshold as a
	// fraction of live cells; 0 selects defaultMaxDirtyFrac.
	MaxDirtyFrac float64

	a *Analysis

	// Structure caches, rebuilt on any structural change. They are
	// generation-guarded: downstream consumers (the SPT cache) trust
	// them only while structGen is current, so every mutation must be
	// followed by a structGen advance before returning (replint's
	// stalegen rule enforces this).
	lvl    []int32 //replint:guarded gen=structGen
	levels [][]netlist.CellID //replint:guarded gen=structGen
	sinks  []netlist.CellID //replint:guarded gen=structGen
	live   int //replint:guarded gen=structGen

	// Snapshots of the last analyzed state, diffed on each call.
	alive     []bool
	placed    []bool
	locs      []arch.Loc
	faninOff  []int32
	faninFlat []netlist.NetID

	// Generation tracking for downstream caches (the SPT cache derives
	// its patch seeds from these). gen advances on every Analyze;
	// structGen records the last structural change or full run.
	gen        uint64
	structGen  uint64
	changedGen []uint64 // gen when Arr or SinkArr last changed bits
	movedGen   []uint64 // gen when the cell's location last changed

	// Worklist scratch, epoch-stamped so updates never clear arrays.
	stampF   []uint64
	stampB   []uint64
	stampReg []uint64
	buckets  [][]netlist.CellID
	seedB    []netlist.CellID
	regSet   []netlist.CellID

	lastFull bool

	Stats IncrementalStats
}

// NewIncremental returns an incremental analyzer for the given delay
// model; workers bounds the levelized fan-out of full (fallback)
// passes, exactly as in AnalyzeWorkers.
func NewIncremental(dm arch.DelayModel, workers int) *Incremental {
	return &Incremental{dm: dm, workers: workers}
}

// Gen returns the current analysis generation; it advances on every
// Analyze call.
func (inc *Incremental) Gen() uint64 { return inc.gen }

// StructGen returns the generation of the last structural change
// (cells born/died/rewired) or full recompute. Caches keyed on
// structure must rebuild when this passes their build generation.
func (inc *Incremental) StructGen() uint64 { return inc.structGen }

// ArrChangedSince reports whether cell id's Arr or SinkArr changed
// bits strictly after generation g.
func (inc *Incremental) ArrChangedSince(id netlist.CellID, g uint64) bool {
	return int(id) < len(inc.changedGen) && inc.changedGen[id] > g
}

// MovedSince reports whether cell id's location changed strictly after
// generation g.
func (inc *Incremental) MovedSince(id netlist.CellID, g uint64) bool {
	return int(id) < len(inc.movedGen) && inc.movedGen[id] > g
}

// LastFull reports whether the most recent Analyze took the full
// (from-scratch) path.
func (inc *Incremental) LastFull() bool { return inc.lastFull }

// Invalidate drops all incremental state; the next Analyze runs the
// full analyzer. It is cheap and safe to call at any time.
func (inc *Incremental) Invalidate() {
	inc.a = nil
}

// maxDirty returns the dirty-cell budget for one update.
func (inc *Incremental) maxDirty() int {
	frac := inc.MaxDirtyFrac
	if frac <= 0 {
		frac = defaultMaxDirtyFrac
	}
	return int(frac * float64(inc.live))
}

// Analyze returns the timing analysis of (nl, pl), reusing the
// previous call's results where the diff proves them still valid. The
// returned Analysis aliases the analyzer's internal state: it is valid
// until the next Analyze or Invalidate call.
func (inc *Incremental) Analyze(ctx context.Context, nl *netlist.Netlist, pl PlacedLocator) (*Analysis, error) {
	inc.gen++
	if inc.a == nil || nl.Cap() < len(inc.alive) {
		// First run, post-Invalidate, or the netlist shrank (the engine
		// restored an older clone with a smaller cell table — rare, and
		// the analysis arrays must match nl.Cap() exactly).
		return inc.full(ctx, nl, pl)
	}
	d, err := inc.diff(nl, pl)
	if err != nil {
		return nil, err
	}
	if len(d.seedF)+len(d.seedB)+len(d.regs) > inc.maxDirty() {
		inc.Stats.Fallbacks++
		return inc.full(ctx, nl, pl)
	}
	if err := inc.propagate(ctx, nl, pl, d); err != nil {
		if err == errDirtyOverflow {
			inc.Stats.Fallbacks++
			return inc.full(ctx, nl, pl)
		}
		return nil, err
	}
	inc.a.reducePeriod(inc.sinks)
	if math.IsInf(inc.a.Period, -1) {
		inc.Invalidate()
		return nil, errNoSinks(nl)
	}
	if assertEnabled {
		// Under -tags replassert every incremental update is re-derived
		// serially and checked bitwise, same as the full pass.
		assertArrivalMonotone(nl, ManhattanWire(pl, inc.dm), inc.dm, inc.a)
	}
	inc.snapshot(nl, pl)
	inc.lastFull = false
	inc.Stats.Updates++
	inc.Stats.Seeds += len(d.seedF) + len(d.seedB) + len(d.regs)
	return inc.a, nil
}

// full runs the from-scratch analyzer and rebuilds every cache and
// snapshot from its result.
func (inc *Incremental) full(ctx context.Context, nl *netlist.Netlist, pl PlacedLocator) (*Analysis, error) {
	a, err := AnalyzeWorkersCtx(ctx, nl, pl, inc.dm, inc.workers)
	if err != nil {
		inc.Invalidate()
		return nil, err
	}
	inc.a = a
	inc.levels, inc.lvl = levelize(nl, a.Order)
	inc.sinks = inc.sinks[:0]
	for _, id := range a.Order {
		if nl.Cell(id).IsSink() {
			inc.sinks = append(inc.sinks, id)
		}
	}
	inc.live = len(a.Order)
	inc.structGen = inc.gen
	inc.growTracking(nl.Cap())
	inc.snapshot(nl, pl)
	inc.lastFull = true
	inc.Stats.FullRuns++
	return a, nil
}

// growTracking sizes the per-cell generation arrays.
func (inc *Incremental) growTracking(n int) {
	for len(inc.changedGen) < n {
		inc.changedGen = append(inc.changedGen, 0)
	}
	for len(inc.movedGen) < n {
		inc.movedGen = append(inc.movedGen, 0)
	}
}

// snapshot records the state Analyze just analyzed, for the next diff.
func (inc *Incremental) snapshot(nl *netlist.Netlist, pl PlacedLocator) {
	n := nl.Cap()
	if cap(inc.alive) < n {
		inc.alive = make([]bool, n)
		inc.placed = make([]bool, n)
		inc.locs = make([]arch.Loc, n)
		inc.faninOff = make([]int32, n+1)
	}
	inc.alive = inc.alive[:n]
	inc.placed = inc.placed[:n]
	inc.locs = inc.locs[:n]
	inc.faninOff = inc.faninOff[:n+1]
	inc.faninFlat = inc.faninFlat[:0]
	for i := 0; i < n; i++ {
		id := netlist.CellID(i)
		inc.faninOff[i] = int32(len(inc.faninFlat))
		if !nl.Alive(id) {
			inc.alive[i] = false
			inc.placed[i] = false
			continue
		}
		inc.alive[i] = true
		if pl.Placed(id) {
			inc.placed[i] = true
			inc.locs[i] = pl.Loc(id)
		} else {
			inc.placed[i] = false
		}
		inc.faninFlat = append(inc.faninFlat, nl.Cell(id).Fanin...)
	}
	inc.faninOff[n] = int32(len(inc.faninFlat))
}

// delta is one diff's seed sets.
type delta struct {
	seedF []netlist.CellID // forward kernel recompute
	seedB []netlist.CellID // backward kernel recompute
	regs  []netlist.CellID // registered-sink (regArr) recompute
}

// diff compares (nl, pl) against the snapshot of the last analyzed
// state and derives the seed sets for re-propagation. Structural
// changes (births, deaths, rewired pins) also refresh the topological
// order, levelization, and sink list — integer-only work that is cheap
// next to the float passes but required for bit-identical ordered
// reductions.
func (inc *Incremental) diff(nl *netlist.Netlist, pl PlacedLocator) (*delta, error) {
	inc.growStamps(nl.Cap())
	inc.growTracking(nl.Cap()) // born cells stamp their generations mid-scan
	d := &delta{}
	structChanged := false
	oldCap := len(inc.alive)

	// seedRegOrF routes a recompute seed to the right kernel: a
	// registered LUT's input arrival is regArr's job, everything else
	// recomputes forward.
	seedRegOrF := func(id netlist.CellID) {
		c := nl.Cell(id)
		if c.IsSource() {
			if c.IsSink() {
				d.regs = inc.push(d.regs, inc.stampReg, id)
			}
			return // IPads: Arr is constant 0
		}
		d.seedF = inc.push(d.seedF, inc.stampF, id)
	}
	seedB := func(id netlist.CellID) {
		d.seedB = inc.push(d.seedB, inc.stampB, id)
	}
	// seedFanoutOf marks every sink of id's output net: the wire delay
	// of those connections changed.
	seedFanoutOf := func(id netlist.CellID) {
		c := nl.Cell(id)
		if c.Out == netlist.None {
			return
		}
		for _, p := range nl.Net(c.Out).Sinks {
			seedRegOrF(p.Cell)
		}
	}
	// seedFaninDrivers marks the live drivers feeding id: their Down
	// depends on their outgoing edge to id.
	seedFaninDrivers := func(id netlist.CellID) {
		for _, net := range nl.Cell(id).Fanin {
			if net == netlist.None {
				continue
			}
			if u := nl.Net(net).Driver; nl.Alive(u) {
				seedB(u)
			}
		}
	}
	// seedOldDrivers is seedFaninDrivers over the snapshot's pins.
	seedOldDrivers := func(i int) {
		for _, net := range inc.faninFlat[inc.faninOff[i]:inc.faninOff[i+1]] {
			if net == netlist.None {
				continue
			}
			if !nl.NetAlive(net) {
				continue
			}
			if u := nl.Net(net).Driver; nl.Alive(u) {
				seedB(u)
			}
		}
	}

	for i := 0; i < nl.Cap(); i++ {
		id := netlist.CellID(i)
		aliveNow := nl.Alive(id)
		aliveOld := i < oldCap && inc.alive[i]
		switch {
		case !aliveNow && !aliveOld:
			continue
		case aliveNow && !aliveOld: // born
			structChanged = true
			seedRegOrF(id)
			seedB(id)
			seedFaninDrivers(id)
			seedFanoutOf(id)
			inc.changedGen[id] = inc.gen
			inc.movedGen[id] = inc.gen
			continue
		case !aliveNow && aliveOld: // died
			structChanged = true
			inc.resetCell(id)
			seedOldDrivers(i)
			inc.changedGen[id] = inc.gen
			continue
		}
		// Alive in both states: diff pins, then location.
		snap := inc.faninFlat[inc.faninOff[i]:inc.faninOff[i+1]]
		cur := nl.Cell(id).Fanin
		rewired := len(snap) != len(cur)
		if !rewired {
			for p := range cur {
				if cur[p] != snap[p] {
					rewired = true
					break
				}
			}
		}
		if rewired {
			structChanged = true
			seedRegOrF(id)
			seedB(id)
			seedOldDrivers(i)   // lost a sink: their Down shrinks
			seedFaninDrivers(id) // gained a sink: their Down grows
		}
		moved := inc.placed[i] != pl.Placed(id) ||
			(inc.placed[i] && pl.Placed(id) && inc.locs[i] != pl.Loc(id))
		if moved {
			inc.movedGen[id] = inc.gen
			seedRegOrF(id) // in-wires changed
			seedB(id)      // out-wires changed
			seedFanoutOf(id)
			seedFaninDrivers(id)
		}
	}

	if structChanged {
		order, err := nl.TopoOrder()
		if err != nil {
			inc.Invalidate()
			return nil, err
		}
		inc.a.Order = order
		inc.levels, inc.lvl = levelize(nl, order)
		inc.sinks = inc.sinks[:0]
		for _, id := range order {
			if nl.Cell(id).IsSink() {
				inc.sinks = append(inc.sinks, id)
			}
		}
		inc.live = len(order)
		inc.structGen = inc.gen
		inc.growAnalysis(nl.Cap())
		inc.growTracking(nl.Cap())
	}
	return d, nil
}

// resetCell restores a dead cell's analysis entries to the values a
// fresh full pass leaves for cells outside the order.
func (inc *Incremental) resetCell(id netlist.CellID) {
	a := inc.a
	if int(id) >= len(a.Arr) {
		return
	}
	a.Arr[id] = 0
	a.SinkArr[id] = math.Inf(-1)
	a.Down[id] = math.Inf(-1)
	a.Through[id] = math.Inf(-1)
}

// growAnalysis extends the analysis arrays to cover newly created cell
// IDs, with the same defaults a fresh pass initializes.
func (inc *Incremental) growAnalysis(n int) {
	a := inc.a
	for len(a.Arr) < n {
		a.Arr = append(a.Arr, 0)
		a.SinkArr = append(a.SinkArr, math.Inf(-1))
		a.Down = append(a.Down, math.Inf(-1))
		a.Through = append(a.Through, math.Inf(-1))
	}
}

// growStamps sizes the dedup stamps and per-level buckets.
func (inc *Incremental) growStamps(n int) {
	for len(inc.stampF) < n {
		inc.stampF = append(inc.stampF, 0)
		inc.stampB = append(inc.stampB, 0)
		inc.stampReg = append(inc.stampReg, 0)
	}
}

// push appends id to set if not already stamped this generation.
func (inc *Incremental) push(set []netlist.CellID, stamp []uint64, id netlist.CellID) []netlist.CellID {
	if stamp[id] == inc.gen {
		return set
	}
	stamp[id] = inc.gen
	return append(set, id)
}

// errDirtyOverflow aborts an update whose frontier outgrew the budget
// mid-propagation; the caller falls back to the full analyzer.
var errDirtyOverflow = errSentinel("timing: dirty frontier overflow")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }

// propagate runs the levelized dirty-region passes: forward arrivals
// ascending by level, deferred registered-sink arrivals, then
// downstream delays descending by level, recomputing Through alongside.
// A cell re-enters the worklist only when a recomputed input actually
// changed bits, so the passes reach the bitwise fixpoint of the full
// recurrence restricted to the dirty cones.
func (inc *Incremental) propagate(ctx context.Context, nl *netlist.Netlist, pl PlacedLocator, d *delta) error {
	a := inc.a
	p := &pass{nl: nl, wireOf: ManhattanWire(pl, inc.dm), dm: inc.dm, a: a}
	budget := inc.maxDirty()
	dirty := 0

	// Level buckets for the forward pass.
	if len(inc.buckets) < len(inc.levels) {
		inc.buckets = append(inc.buckets, make([][]netlist.CellID, len(inc.levels)-len(inc.buckets))...)
	}
	buckets := inc.buckets[:len(inc.levels)]
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}
	for _, id := range d.seedF {
		buckets[inc.lvl[id]] = append(buckets[inc.lvl[id]], id)
	}
	inc.seedB = append(inc.seedB[:0], d.seedB...)
	inc.regSet = append(inc.regSet[:0], d.regs...)

	forwardCells := 0
	for l := 0; l < len(buckets); l++ {
		if l%4 == 0 && ctx.Err() != nil {
			inc.Invalidate() // partial writes: state is unusable
			return ctx.Err()
		}
		for n := 0; n < len(buckets[l]); n++ {
			id := buckets[l][n]
			oldArr := math.Float64bits(a.Arr[id])
			oldSink := math.Float64bits(a.SinkArr[id])
			p.forward(id)
			forwardCells++
			dirty++
			if dirty > budget {
				inc.Invalidate()
				return errDirtyOverflow
			}
			sinkChanged := math.Float64bits(a.SinkArr[id]) != oldSink
			arrChanged := math.Float64bits(a.Arr[id]) != oldArr
			if sinkChanged {
				inc.changedGen[id] = inc.gen
				// Through depends on SinkArr.
				inc.seedB = inc.push(inc.seedB, inc.stampB, id)
			}
			if !arrChanged {
				continue
			}
			inc.changedGen[id] = inc.gen
			// Through depends on Arr.
			inc.seedB = inc.push(inc.seedB, inc.stampB, id)
			c := nl.Cell(id)
			if c.Out == netlist.None {
				continue
			}
			for _, pn := range nl.Net(c.Out).Sinks {
				v := pn.Cell
				vc := nl.Cell(v)
				if vc.IsSource() {
					if vc.IsSink() {
						inc.regSet = inc.push(inc.regSet, inc.stampReg, v)
					}
					continue
				}
				if inc.stampF[v] != inc.gen {
					inc.stampF[v] = inc.gen
					buckets[inc.lvl[v]] = append(buckets[inc.lvl[v]], v)
				}
			}
		}
	}

	// Deferred registered-sink arrivals, exactly as the full pass runs
	// them after the forward sweep.
	for _, id := range inc.regSet {
		oldSink := math.Float64bits(a.SinkArr[id])
		p.regArr(id)
		if math.Float64bits(a.SinkArr[id]) != oldSink {
			inc.changedGen[id] = inc.gen
			inc.seedB = inc.push(inc.seedB, inc.stampB, id)
		}
	}

	// Backward pass: bucketize the accumulated seeds, run levels in
	// descending order, and propagate Down changes to fanin drivers.
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}
	for _, id := range inc.seedB {
		buckets[inc.lvl[id]] = append(buckets[inc.lvl[id]], id)
	}
	backwardCells := 0
	for l := len(buckets) - 1; l >= 0; l-- {
		if l%4 == 0 && ctx.Err() != nil {
			inc.Invalidate()
			return ctx.Err()
		}
		for n := 0; n < len(buckets[l]); n++ {
			id := buckets[l][n]
			oldDown := math.Float64bits(a.Down[id])
			p.backward(id)
			backwardCells++
			dirty++
			if dirty > budget {
				inc.Invalidate()
				return errDirtyOverflow
			}
			if math.Float64bits(a.Down[id]) == oldDown {
				continue
			}
			for _, net := range nl.Cell(id).Fanin {
				if net == netlist.None {
					continue
				}
				u := nl.Net(net).Driver
				if inc.stampB[u] != inc.gen {
					inc.stampB[u] = inc.gen
					buckets[inc.lvl[u]] = append(buckets[inc.lvl[u]], u)
				}
			}
		}
	}

	inc.Stats.CellsForward += forwardCells
	inc.Stats.CellsBackward += backwardCells
	if forwardCells+backwardCells > inc.Stats.MaxDirty {
		inc.Stats.MaxDirty = forwardCells + backwardCells
	}
	return nil
}

func errNoSinks(nl *netlist.Netlist) error {
	return errSentinel("timing: netlist " + nl.Name + " has no timing sinks")
}
