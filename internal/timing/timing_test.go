package timing

import (
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/netlist"
)

// mapLoc is a test Locator backed by a map.
type mapLoc map[netlist.CellID]arch.Loc

func (m mapLoc) Loc(id netlist.CellID) arch.Loc { return m[id] }

func dm() arch.DelayModel { return arch.DelayModel{SegDelay: 1, LUTDelay: 2, IODelay: 0.5} }

// chain builds i -> l1 -> l2 -> o placed on a horizontal line.
func chain(t *testing.T) (*netlist.Netlist, mapLoc) {
	t.Helper()
	n := netlist.New("chain")
	i := n.AddCell("i", netlist.IPad, 0)
	l1 := n.AddCell("l1", netlist.LUT, 1)
	n.ConnectByName(l1.ID, 0, "i")
	l2 := n.AddCell("l2", netlist.LUT, 1)
	n.ConnectByName(l2.ID, 0, "l1")
	o := n.AddCell("o", netlist.OPad, 1)
	n.ConnectByName(o.ID, 0, "l2")
	loc := mapLoc{
		i.ID:  {X: 0, Y: 1},
		l1.ID: {X: 2, Y: 1},
		l2.ID: {X: 5, Y: 1},
		o.ID:  {X: 8, Y: 1},
	}
	return n, loc
}

func TestAnalyzeChain(t *testing.T) {
	n, loc := chain(t)
	a, err := Analyze(n, loc, dm())
	if err != nil {
		t.Fatal(err)
	}
	l1, _ := n.CellByName("l1")
	l2, _ := n.CellByName("l2")
	o, _ := n.CellByName("o")
	if got := a.Arr[l1]; got != 4 { // 2 wire + 2 LUT
		t.Errorf("Arr[l1] = %v, want 4", got)
	}
	if got := a.Arr[l2]; got != 9 { // 4 + 3 wire + 2 LUT
		t.Errorf("Arr[l2] = %v, want 9", got)
	}
	if got := a.SinkArr[o]; got != 12.5 { // 9 + 3 wire + 0.5 pad
		t.Errorf("SinkArr[o] = %v, want 12.5", got)
	}
	if a.Period != 12.5 || a.CritSink != o {
		t.Errorf("Period = %v CritSink = %v, want 12.5 at o", a.Period, a.CritSink)
	}
	// Everything is on the single path: Through = Period, slack 0.
	for _, name := range []string{"i", "l1", "l2", "o"} {
		id, _ := n.CellByName(name)
		if got := a.Through[id]; got != 12.5 {
			t.Errorf("Through[%s] = %v, want 12.5", name, got)
		}
		if s := a.Slack(id); s != 0 {
			t.Errorf("Slack[%s] = %v, want 0", name, s)
		}
	}
}

func TestAnalyzeRegisteredCut(t *testing.T) {
	// i -> r (registered) -> o: two separate timing paths.
	n := netlist.New("seq")
	i := n.AddCell("i", netlist.IPad, 0)
	r := n.AddCell("r", netlist.LUT, 1)
	r.Registered = true
	n.ConnectByName(r.ID, 0, "i")
	o := n.AddCell("o", netlist.OPad, 1)
	n.ConnectByName(o.ID, 0, "r")
	loc := mapLoc{i.ID: {X: 0, Y: 1}, r.ID: {X: 4, Y: 1}, o.ID: {X: 5, Y: 1}}
	a, err := Analyze(n, loc, dm())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Arr[r.ID]; got != 0 {
		t.Errorf("registered LUT output arrival = %v, want 0", got)
	}
	if got := a.SinkArr[r.ID]; got != 6 { // 4 wire + 2 LUT
		t.Errorf("SinkArr[r] = %v, want 6", got)
	}
	if got := a.SinkArr[o.ID]; got != 1.5 { // 1 wire + 0.5 pad
		t.Errorf("SinkArr[o] = %v, want 1.5", got)
	}
	if a.Period != 6 || a.CritSink != r.ID {
		t.Errorf("Period %v at %v, want 6 at r", a.Period, a.CritSink)
	}
	// Through for r covers both its ending and starting paths.
	if got := a.Through[r.ID]; got != 6 {
		t.Errorf("Through[r] = %v, want 6", got)
	}
}

func TestAnalyzeConvergingPaths(t *testing.T) {
	// Two inputs converge on one LUT; the slower one dominates.
	n := netlist.New("conv")
	near := n.AddCell("near", netlist.IPad, 0)
	far := n.AddCell("far", netlist.IPad, 0)
	l := n.AddCell("l", netlist.LUT, 2)
	n.ConnectByName(l.ID, 0, "near")
	n.ConnectByName(l.ID, 1, "far")
	o := n.AddCell("o", netlist.OPad, 1)
	n.ConnectByName(o.ID, 0, "l")
	loc := mapLoc{near.ID: {X: 4, Y: 1}, far.ID: {X: 0, Y: 9}, l.ID: {X: 5, Y: 1}, o.ID: {X: 6, Y: 1}}
	a, err := Analyze(n, loc, dm())
	if err != nil {
		t.Fatal(err)
	}
	// far -> l wire = 5+8 = 13, so Arr[l] = 13+2 = 15.
	if got := a.Arr[l.ID]; got != 15 {
		t.Errorf("Arr[l] = %v, want 15", got)
	}
	path := a.CriticalPath(n, loc, dm())
	if len(path) != 3 || path[0] != far.ID || path[1] != l.ID || path[2] != o.ID {
		t.Errorf("critical path = %v, want [far l o]", path)
	}
	// near has positive slack.
	if a.Slack(near.ID) <= 0 {
		t.Errorf("Slack[near] = %v, want > 0", a.Slack(near.ID))
	}
}

func TestNoSinksError(t *testing.T) {
	n := netlist.New("nosink")
	n.AddCell("i", netlist.IPad, 0)
	l := n.AddCell("l", netlist.LUT, 1)
	n.ConnectByName(l.ID, 0, "i")
	loc := mapLoc{0: {X: 0, Y: 1}, 1: {X: 1, Y: 1}}
	if _, err := Analyze(n, loc, dm()); err == nil {
		t.Error("netlist without sinks should fail analysis")
	}
}

func TestPathMonotone(t *testing.T) {
	n := netlist.New("m")
	ids := make([]netlist.CellID, 4)
	loc := mapLoc{}
	names := []string{"s", "a", "b", "t"}
	for i, nm := range names {
		var c *netlist.Cell
		if i == 0 {
			c = n.AddCell(nm, netlist.IPad, 0)
		} else if i == len(names)-1 {
			c = n.AddCell(nm, netlist.OPad, 1)
		} else {
			c = n.AddCell(nm, netlist.LUT, 1)
		}
		ids[i] = c.ID
		if i > 0 {
			n.ConnectByName(c.ID, 0, names[i-1])
		}
	}
	// Straight line: monotone both ways.
	loc[ids[0]], loc[ids[1]], loc[ids[2]], loc[ids[3]] =
		arch.Loc{X: 1, Y: 1}, arch.Loc{X: 3, Y: 1}, arch.Loc{X: 5, Y: 1}, arch.Loc{X: 7, Y: 1}
	if !PathMonotone(loc, ids) || !LocallyMonotone(loc, ids) {
		t.Error("straight line should be monotone and locally monotone")
	}
	// Fig. 3 shape: a U. Every window of 3 is monotone, the whole
	// path is not — the case local replication cannot improve.
	loc[ids[0]], loc[ids[1]], loc[ids[2]], loc[ids[3]] =
		arch.Loc{X: 1, Y: 1}, arch.Loc{X: 5, Y: 1}, arch.Loc{X: 5, Y: 5}, arch.Loc{X: 1, Y: 5}
	if PathMonotone(loc, ids) {
		t.Error("U path should not be globally monotone")
	}
	if !LocallyMonotone(loc, ids) {
		t.Error("U path should be locally monotone (Fig. 3)")
	}
	// Hard detour: not even locally monotone.
	loc[ids[0]], loc[ids[1]], loc[ids[2]], loc[ids[3]] =
		arch.Loc{X: 1, Y: 1}, arch.Loc{X: 8, Y: 8}, arch.Loc{X: 2, Y: 2}, arch.Loc{X: 3, Y: 1}
	if LocallyMonotone(loc, ids) {
		t.Error("zig-zag should not be locally monotone")
	}
}

func TestLowerBoundChain(t *testing.T) {
	n, loc := chain(t)
	o, _ := n.CellByName("o")
	lb := LowerBound(n, loc, dm(), o)
	// i at (0,1), o at (8,1): 8 wire + 2 LUT stages * 2 + 0.5 pad = 12.5.
	if lb != 12.5 {
		t.Errorf("LowerBound = %v, want 12.5", lb)
	}
	a, _ := Analyze(n, loc, dm())
	if lb > a.Period {
		t.Error("lower bound must not exceed the achieved period")
	}
}

func TestLowerBoundDetour(t *testing.T) {
	// Same chain but with a detoured middle cell: the bound must stay
	// below the (detoured) period and equal the straightened delay.
	n, loc := chain(t)
	l1, _ := n.CellByName("l1")
	loc[l1] = arch.Loc{X: 2, Y: 7} // force a detour
	o, _ := n.CellByName("o")
	a, err := Analyze(n, loc, dm())
	if err != nil {
		t.Fatal(err)
	}
	lb := LowerBound(n, loc, dm(), o)
	if lb != 12.5 {
		t.Errorf("LowerBound = %v, want 12.5 (straightened)", lb)
	}
	if a.Period <= lb {
		t.Errorf("detoured period %v should exceed bound %v", a.Period, lb)
	}
}

// fig9 builds a circuit in the spirit of Fig. 9: inputs a,b,c,d,j,
// outputs l and m, where m is critical and the ε-SPT excludes g and j.
func fig9(t *testing.T) (*netlist.Netlist, mapLoc, netlist.CellID) {
	t.Helper()
	n := netlist.New("fig9")
	for _, in := range []string{"a", "b", "c", "d", "j"} {
		n.AddCell(in, netlist.IPad, 0)
	}
	e := n.AddCell("e", netlist.LUT, 2)
	n.ConnectByName(e.ID, 0, "a")
	n.ConnectByName(e.ID, 1, "b")
	f := n.AddCell("f", netlist.LUT, 2)
	n.ConnectByName(f.ID, 0, "c")
	n.ConnectByName(f.ID, 1, "d")
	g := n.AddCell("g", netlist.LUT, 1)
	n.ConnectByName(g.ID, 0, "j")
	h := n.AddCell("h", netlist.LUT, 2)
	n.ConnectByName(h.ID, 0, "e")
	n.ConnectByName(h.ID, 1, "f")
	k := n.AddCell("k", netlist.LUT, 2)
	n.ConnectByName(k.ID, 0, "h")
	n.ConnectByName(k.ID, 1, "g")
	lo := n.AddCell("l", netlist.OPad, 1)
	n.ConnectByName(lo.ID, 0, "g")
	m := n.AddCell("m", netlist.OPad, 1)
	n.ConnectByName(m.ID, 0, "k")

	loc := mapLoc{}
	at := func(name string, x, y int16) {
		id, _ := n.CellByName(name)
		loc[id] = arch.Loc{X: x, Y: y}
	}
	// Long path a/b/c/d -> e/f -> h -> k -> m; short path j -> g -> k.
	at("a", 0, 2)
	at("b", 0, 4)
	at("c", 0, 6)
	at("d", 0, 8)
	at("e", 3, 3)
	at("f", 3, 7)
	at("h", 6, 5)
	at("j", 9, 2)
	at("g", 9, 4)
	at("k", 9, 5)
	at("l", 11, 4)
	at("m", 11, 5)
	return n, loc, m.ID
}

func TestEpsilonSPTFig9(t *testing.T) {
	n, loc, m := fig9(t)
	a, err := Analyze(n, loc, dm())
	if err != nil {
		t.Fatal(err)
	}
	if a.CritSink != m {
		t.Fatalf("critical sink should be m, got %v", a.CritSink)
	}
	spt := BuildSPT(n, loc, dm(), a, m)
	if spt.SinkArr != a.SinkArr[m] {
		t.Error("SPT sink arrival mismatch")
	}
	// PathThrough at any node never exceeds the sink arrival and the
	// parent's PathThrough dominates the child's.
	for u, pt := range spt.PathThrough {
		if pt > spt.SinkArr+1e-9 {
			t.Errorf("PathThrough[%v] = %v exceeds sink arrival %v", u, pt, spt.SinkArr)
		}
		if u == m {
			continue
		}
		p := spt.Parent[u]
		if pp := spt.PathThrough[p]; pp+1e-9 < pt {
			t.Errorf("parent PathThrough %v < child %v", pp, pt)
		}
	}
	// ε = 0: only the single critical path.
	zero := spt.Epsilon(0)
	for _, name := range []string{"h", "k"} {
		id, _ := n.CellByName(name)
		if !zero[id] {
			t.Errorf("ε=0 SPT should contain %s", name)
		}
	}
	gID, _ := n.CellByName("g")
	jID, _ := n.CellByName("j")
	if zero[gID] || zero[jID] {
		t.Error("ε=0 SPT must exclude the fast g/j branch (Fig. 9)")
	}
	// Large ε: everything in the cone joins.
	all := spt.Epsilon(1e9)
	if !all[gID] || !all[jID] {
		t.Error("huge ε should include g and j")
	}
	// Monotone growth: bigger ε never loses members.
	small := spt.Epsilon(1)
	for u := range zero {
		if !small[u] {
			t.Errorf("ε growth lost member %v", u)
		}
	}
}

func TestSPTChildren(t *testing.T) {
	n, loc, m := fig9(t)
	a, _ := Analyze(n, loc, dm())
	spt := BuildSPT(n, loc, dm(), a, m)
	members := spt.Epsilon(1e9)
	ch := spt.Children(members)
	kID, _ := n.CellByName("k")
	hID, _ := n.CellByName("h")
	gID, _ := n.CellByName("g")
	// k's tree children are h and g.
	kids := ch[kID]
	if len(kids) != 2 || kids[0] != hID && kids[1] != hID {
		t.Errorf("children of k = %v, want h and g", kids)
	}
	_ = gID
	// Every member except the sink appears exactly once as a child.
	count := map[netlist.CellID]int{}
	for _, kids := range ch {
		for _, k := range kids {
			count[k]++
		}
	}
	for u := range members {
		if u == m {
			continue
		}
		if count[u] != 1 {
			t.Errorf("member %v appears %d times as child, want 1", u, count[u])
		}
	}
}

func TestSlackNonNegativeOnAllCells(t *testing.T) {
	n, loc, _ := fig9(t)
	a, _ := Analyze(n, loc, dm())
	n.Cells(func(c *netlist.Cell) {
		if s := a.Slack(c.ID); !math.IsInf(s, 1) && s < -1e-9 {
			t.Errorf("negative slack %v at %s", s, c.Name)
		}
	})
}

func TestMonotonicityStats(t *testing.T) {
	n, loc, _ := fig9(t)
	a, err := Analyze(n, loc, dm())
	if err != nil {
		t.Fatal(err)
	}
	st := Monotonicity(n, loc, dm(), a)
	if st.Paths != 2 { // sinks l and m
		t.Errorf("Paths = %d, want 2", st.Paths)
	}
	if st.Monotone > st.Paths || st.LocallyMonotone < st.Monotone {
		t.Errorf("inconsistent counts: %+v (monotone implies locally monotone)", st)
	}
	if st.WorstDetour < 0 {
		t.Errorf("negative detour %d", st.WorstDetour)
	}
}

func TestMonotonicityDetectsDetour(t *testing.T) {
	n, loc := chain(t)
	a, _ := Analyze(n, loc, dm())
	st := Monotonicity(n, loc, dm(), a)
	if st.Monotone != 1 || st.WorstDetour != 0 || !st.CriticalMonotone {
		t.Errorf("straight chain: %+v", st)
	}
	// Detour the middle cell.
	l1, _ := n.CellByName("l1")
	loc[l1] = arch.Loc{X: 2, Y: 5}
	a, _ = Analyze(n, loc, dm())
	st = Monotonicity(n, loc, dm(), a)
	if st.Monotone != 0 || st.WorstDetour != 8 || st.CriticalMonotone {
		t.Errorf("detoured chain: %+v, want detour 8", st)
	}
}

func TestTopPathsAndReport(t *testing.T) {
	n, loc, m := fig9(t)
	a, _ := Analyze(n, loc, dm())
	reports := TopPaths(n, loc, dm(), a, 10)
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	// Slowest first; first is the critical sink with zero slack.
	if reports[0].Sink != m || reports[0].Slack != 0 {
		t.Errorf("first report %+v, want critical sink m with slack 0", reports[0])
	}
	if reports[1].Arrival > reports[0].Arrival {
		t.Error("reports not sorted by arrival")
	}
	if reports[1].Slack <= 0 {
		t.Error("subcritical path should have positive slack")
	}
	// Paths start at a source and end at the sink.
	for _, r := range reports {
		if !n.Cell(r.Cells[0]).IsSource() {
			t.Errorf("path does not start at a source: %v", r.Cells)
		}
		if r.Cells[len(r.Cells)-1] != r.Sink {
			t.Errorf("path does not end at its sink")
		}
	}
	text := FormatReport(n, loc, reports)
	if !strings.Contains(text, "arrival") || !strings.Contains(text, "->") {
		t.Errorf("report formatting broken:\n%s", text)
	}
	// TopPaths(k) truncates.
	if got := len(TopPaths(n, loc, dm(), a, 1)); got != 1 {
		t.Errorf("TopPaths(1) returned %d", got)
	}
}
