package timing_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/netlist"
	"repro/internal/timing"
)

// placedGrid is a mutable PlacedLocator for driving the incremental
// analyzer directly, without a full placement.
type placedGrid struct {
	locs   []arch.Loc
	placed []bool
}

func (p *placedGrid) Loc(id netlist.CellID) arch.Loc { return p.locs[id] }
func (p *placedGrid) Placed(id netlist.CellID) bool {
	return int(id) < len(p.placed) && p.placed[id]
}

func (p *placedGrid) grow(n int) {
	for len(p.locs) < n {
		p.locs = append(p.locs, arch.Loc{})
		p.placed = append(p.placed, false)
	}
}

func (p *placedGrid) place(id netlist.CellID, l arch.Loc) {
	p.grow(int(id) + 1)
	p.locs[id] = l
	p.placed[id] = true
}

// newPlacedGrid places every live cell of nl at a seeded random spot.
func newPlacedGrid(nl *netlist.Netlist, rng *rand.Rand) *placedGrid {
	p := &placedGrid{}
	p.grow(nl.Cap())
	nl.Cells(func(c *netlist.Cell) {
		p.place(c.ID, arch.Loc{X: int16(rng.Intn(40)), Y: int16(rng.Intn(40))})
	})
	return p
}

// bitsEqual demands two analyses agree bit for bit over the full
// analysis's range (the incremental arrays may be longer: they keep
// capacity across netlist restores).
func bitsEqual(t *testing.T, round int, inc, full *timing.Analysis) {
	t.Helper()
	if math.Float64bits(inc.Period) != math.Float64bits(full.Period) || inc.CritSink != full.CritSink {
		t.Fatalf("round %d: period %v@%d, full %v@%d", round, inc.Period, inc.CritSink, full.Period, full.CritSink)
	}
	if math.Float64bits(inc.SecondArr) != math.Float64bits(full.SecondArr) || inc.SecondSink != full.SecondSink {
		t.Fatalf("round %d: second %v@%d, full %v@%d", round, inc.SecondArr, inc.SecondSink, full.SecondArr, full.SecondSink)
	}
	if len(inc.Order) != len(full.Order) {
		t.Fatalf("round %d: order length %d vs %d", round, len(inc.Order), len(full.Order))
	}
	for i := range full.Order {
		if inc.Order[i] != full.Order[i] {
			t.Fatalf("round %d: order[%d] = %d, full %d", round, i, inc.Order[i], full.Order[i])
		}
	}
	if len(inc.Arr) < len(full.Arr) {
		t.Fatalf("round %d: incremental arrays shorter than full: %d < %d", round, len(inc.Arr), len(full.Arr))
	}
	for i := range full.Arr {
		if math.Float64bits(inc.Arr[i]) != math.Float64bits(full.Arr[i]) {
			t.Fatalf("round %d: Arr[%d] = %v, full %v", round, i, inc.Arr[i], full.Arr[i])
		}
		if math.Float64bits(inc.SinkArr[i]) != math.Float64bits(full.SinkArr[i]) {
			t.Fatalf("round %d: SinkArr[%d] = %v, full %v", round, i, inc.SinkArr[i], full.SinkArr[i])
		}
		if math.Float64bits(inc.Down[i]) != math.Float64bits(full.Down[i]) {
			t.Fatalf("round %d: Down[%d] = %v, full %v", round, i, inc.Down[i], full.Down[i])
		}
		if math.Float64bits(inc.Through[i]) != math.Float64bits(full.Through[i]) {
			t.Fatalf("round %d: Through[%d] = %v, full %v", round, i, inc.Through[i], full.Through[i])
		}
	}
}

// liveLUTs returns the live multi-fanout LUT IDs, for mutation picks.
func liveLUTs(nl *netlist.Netlist) []netlist.CellID {
	var out []netlist.CellID
	nl.Cells(func(c *netlist.Cell) {
		if c.Kind == netlist.LUT {
			out = append(out, c.ID)
		}
	})
	return out
}

// perturb applies one random mutation mix: cell moves every round,
// plus a replication (birth + rewire) or an unification (death +
// rewire) on alternating rounds. Replicas made earlier are the
// unification victims, so deaths exercise the snapshot-driven seeding.
func perturb(nl *netlist.Netlist, pl *placedGrid, rng *rand.Rand, round int, replicas *[]netlist.CellID) {
	luts := liveLUTs(nl)
	for k := 0; k < 1+rng.Intn(3); k++ {
		id := luts[rng.Intn(len(luts))]
		pl.place(id, arch.Loc{X: int16(rng.Intn(40)), Y: int16(rng.Intn(40))})
	}
	switch {
	case round%3 == 1:
		// Replicate a multi-fanout LUT and steal one of its sinks.
		for try := 0; try < 10; try++ {
			v := luts[rng.Intn(len(luts))]
			sinks := nl.Net(nl.Cell(v).Out).Sinks
			if len(sinks) < 2 {
				continue
			}
			rep := nl.Replicate(v)
			pl.place(rep.ID, arch.Loc{X: int16(rng.Intn(40)), Y: int16(rng.Intn(40))})
			nl.MoveSink(sinks[rng.Intn(len(sinks))], rep.ID)
			*replicas = append(*replicas, rep.ID)
			return
		}
	case round%3 == 2 && len(*replicas) > 0:
		// Unify the oldest replica back into an equivalence sibling,
		// deleting it (and possibly a redundant subtree).
		dup := (*replicas)[0]
		*replicas = (*replicas)[1:]
		if !nl.Alive(dup) {
			return
		}
		for _, keep := range nl.EquivClass(dup) {
			if keep != dup {
				nl.Unify(keep, dup)
				return
			}
		}
	}
}

// TestIncrementalMatchesFull drives random move / replicate / unify
// mutations through the incremental analyzer and demands bitwise
// agreement with a from-scratch pass after every round.
func TestIncrementalMatchesFull(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 12
	}
	dm := arch.DefaultDelayModel()
	for seed := int64(1); seed <= 3; seed++ {
		nl, gl := randomPlaced(t, seed, 300)
		rng := rand.New(rand.NewSource(seed * 1000))
		pl := &placedGrid{}
		pl.grow(nl.Cap())
		nl.Cells(func(c *netlist.Cell) { pl.place(c.ID, gl.locs[c.ID]) })

		inc := timing.NewIncremental(dm, 4)
		ctx := context.Background()
		var replicas []netlist.CellID
		for round := 0; round < rounds; round++ {
			if round > 0 {
				perturb(nl, pl, rng, round, &replicas)
			}
			a, err := inc.Analyze(ctx, nl, pl)
			if err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			full, err := timing.AnalyzeWorkers(nl, pl, dm, 1)
			if err != nil {
				t.Fatalf("seed %d round %d (full): %v", seed, round, err)
			}
			bitsEqual(t, round, a, full)
		}
		if inc.Stats.Updates == 0 {
			t.Fatalf("seed %d: no incremental updates recorded: %+v", seed, inc.Stats)
		}
	}
}

// TestIncrementalNoChangeIsHit pins the steady-state fast path: a
// second Analyze over untouched state re-propagates nothing.
func TestIncrementalNoChangeIsHit(t *testing.T) {
	nl, gl := randomPlaced(t, 7, 200)
	rng := rand.New(rand.NewSource(7))
	_ = rng
	pl := &placedGrid{}
	pl.grow(nl.Cap())
	nl.Cells(func(c *netlist.Cell) { pl.place(c.ID, gl.locs[c.ID]) })
	inc := timing.NewIncremental(arch.DefaultDelayModel(), 2)
	ctx := context.Background()
	if _, err := inc.Analyze(ctx, nl, pl); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Analyze(ctx, nl, pl); err != nil {
		t.Fatal(err)
	}
	if inc.Stats.Updates != 1 || inc.Stats.CellsForward != 0 || inc.Stats.CellsBackward != 0 {
		t.Fatalf("no-op analyze re-propagated cells: %+v", inc.Stats)
	}
	if inc.LastFull() {
		t.Fatal("no-op analyze took the full path")
	}
}

// TestIncrementalOverflowFallsBack forces the dirty-frontier budget to
// zero and checks every post-change analysis falls back to the full
// pass — bit-identically — and that the analyzer keeps working after.
func TestIncrementalOverflowFallsBack(t *testing.T) {
	nl, gl := randomPlaced(t, 9, 200)
	rng := rand.New(rand.NewSource(9))
	pl := &placedGrid{}
	pl.grow(nl.Cap())
	nl.Cells(func(c *netlist.Cell) { pl.place(c.ID, gl.locs[c.ID]) })
	dm := arch.DefaultDelayModel()
	inc := timing.NewIncremental(dm, 4)
	inc.MaxDirtyFrac = 1e-12 // budget rounds to zero cells
	ctx := context.Background()
	if _, err := inc.Analyze(ctx, nl, pl); err != nil {
		t.Fatal(err)
	}
	luts := liveLUTs(nl)
	for round := 0; round < 5; round++ {
		id := luts[rng.Intn(len(luts))]
		pl.place(id, arch.Loc{X: int16(rng.Intn(40)), Y: int16(rng.Intn(40))})
		a, err := inc.Analyze(ctx, nl, pl)
		if err != nil {
			t.Fatal(err)
		}
		if !inc.LastFull() {
			t.Fatalf("round %d: zero budget did not fall back to the full pass", round)
		}
		full, err := timing.AnalyzeWorkers(nl, pl, dm, 1)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, round, a, full)
	}
	if inc.Stats.Fallbacks != 5 {
		t.Fatalf("Fallbacks = %d, want 5: %+v", inc.Stats.Fallbacks, inc.Stats)
	}
}

// TestSPTCacheMatchesBuild checks patched slowest-paths trees against
// from-scratch builds across random perturbations.
func TestSPTCacheMatchesBuild(t *testing.T) {
	// No -short reduction: the tail rounds are where the fixed-seed
	// perturbation sequence first revisits a sink without a structural
	// change, i.e. where patching (and its stats assertion below)
	// actually happens — and 25 rounds on 300 LUTs is sub-second.
	const rounds = 25
	dm := arch.DefaultDelayModel()
	nl, gl := randomPlaced(t, 21, 300)
	rng := rand.New(rand.NewSource(21))
	pl := &placedGrid{}
	pl.grow(nl.Cap())
	nl.Cells(func(c *netlist.Cell) { pl.place(c.ID, gl.locs[c.ID]) })

	inc := timing.NewIncremental(dm, 4)
	cache := timing.NewSPTCache(inc, 0)
	ctx := context.Background()
	var replicas []netlist.CellID
	for round := 0; round < rounds; round++ {
		if round > 0 {
			perturb(nl, pl, rng, round, &replicas)
		}
		a, err := inc.Analyze(ctx, nl, pl)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got := cache.Get(nl, pl, dm, a, a.CritSink)
		want := timing.BuildSPT(nl, pl, dm, a, a.CritSink)
		if got.Sink != want.Sink || math.Float64bits(got.SinkArr) != math.Float64bits(want.SinkArr) {
			t.Fatalf("round %d: sink/arr (%d, %v) vs (%d, %v)", round, got.Sink, got.SinkArr, want.Sink, want.SinkArr)
		}
		if len(got.Parent) != len(want.Parent) || len(got.PathThrough) != len(want.PathThrough) {
			t.Fatalf("round %d: sizes parent %d/%d pathThrough %d/%d",
				round, len(got.Parent), len(want.Parent), len(got.PathThrough), len(want.PathThrough))
		}
		for u, p := range want.Parent {
			if got.Parent[u] != p {
				t.Fatalf("round %d: parent[%d] = %d, want %d", round, u, got.Parent[u], p)
			}
		}
		for u, pt := range want.PathThrough {
			if math.Float64bits(got.PathThrough[u]) != math.Float64bits(pt) {
				t.Fatalf("round %d: pathThrough[%d] = %v, want %v", round, u, got.PathThrough[u], pt)
			}
		}
	}
	if cache.Stats.Rebuilds == 0 || cache.Stats.Rebuilds == rounds {
		t.Fatalf("cache never patched or never rebuilt: %+v", cache.Stats)
	}
}
