//go:build replassert

package timing

import "testing"

// These tests run only under -tags replassert: they prove the STA
// invariant layer panics on corrupted analyses and stays silent on
// clean ones (the regular suite, run under the tag, covers the latter
// on every Analyze call).

func TestAssertEnabledUnderTag(t *testing.T) {
	if !assertEnabled {
		t.Fatal("assertEnabled must be true under -tags replassert")
	}
}

func TestAssertArrivalMonotoneFires(t *testing.T) {
	nl, loc := chain(t)
	a, err := AnalyzeWorkers(nl, loc, dm(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// A clean analysis passes (Analyze already asserted internally,
	// but the direct call documents the contract).
	assertArrivalMonotone(nl, ManhattanWire(loc, dm()), dm(), a)

	// Corrupt one interior arrival: the recurrence no longer holds.
	l1, _ := nl.CellByName("l1")
	a.Arr[l1] += 1
	defer func() {
		if recover() == nil {
			t.Fatal("assertArrivalMonotone did not panic on a corrupted arrival")
		}
	}()
	assertArrivalMonotone(nl, ManhattanWire(loc, dm()), dm(), a)
}
