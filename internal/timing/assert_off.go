//go:build !replassert

package timing

import (
	"repro/internal/arch"
	"repro/internal/netlist"
)

// assertEnabled is false in the default build; the constant-false
// guard at the call site removes the re-derivation entirely. Build
// with -tags replassert to turn it on.
const assertEnabled = false

func assertArrivalMonotone(*netlist.Netlist, WireDelayFunc, arch.DelayModel, *Analysis) {}
