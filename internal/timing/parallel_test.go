package timing_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuits"
	"repro/internal/netlist"
	"repro/internal/timing"
)

type gridLoc struct {
	locs []arch.Loc
}

func (g *gridLoc) Loc(id netlist.CellID) arch.Loc { return g.locs[id] }

// randomPlaced builds a seeded synthetic circuit with registered LUTs
// and a random (not necessarily legal — STA does not care) placement.
func randomPlaced(t *testing.T, seed int64, luts int) (*netlist.Netlist, *gridLoc) {
	t.Helper()
	spec := circuits.Spec{
		Name: "par", LUTs: luts, Inputs: 12, Outputs: 12,
		Depth: 6, RegisteredFrac: 0.25, Seed: seed,
	}
	nl, err := circuits.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	g := &gridLoc{locs: make([]arch.Loc, nl.Cap())}
	for i := range g.locs {
		g.locs[i] = arch.Loc{X: int16(rng.Intn(40)), Y: int16(rng.Intn(40))}
	}
	return nl, g
}

func analysesEqual(t *testing.T, name string, a, b *timing.Analysis) {
	t.Helper()
	if a.Period != b.Period || a.CritSink != b.CritSink {
		t.Fatalf("%s: period/critsink differ: (%v, %v) vs (%v, %v)",
			name, a.Period, a.CritSink, b.Period, b.CritSink)
	}
	cmp := func(field string, x, y []float64) {
		if len(x) != len(y) {
			t.Fatalf("%s: %s length %d vs %d", name, field, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] && !(math.IsInf(x[i], -1) && math.IsInf(y[i], -1)) {
				t.Fatalf("%s: %s[%d] = %v vs %v", name, field, i, x[i], y[i])
			}
		}
	}
	cmp("Arr", a.Arr, b.Arr)
	cmp("SinkArr", a.SinkArr, b.SinkArr)
	cmp("Through", a.Through, b.Through)
	cmp("Down", a.Down, b.Down)
}

// TestAnalyzeWorkersDeterministic checks that the levelized parallel
// STA is bit-identical to the serial pass, including the per-level
// fan-out path (the circuit is larger than the parallel cutoff).
func TestAnalyzeWorkersDeterministic(t *testing.T) {
	luts := 4000
	if testing.Short() {
		luts = 2500
	}
	dm := arch.DefaultDelayModel()
	for seed := int64(1); seed <= 3; seed++ {
		nl, pl := randomPlaced(t, seed, luts)
		serial, err := timing.AnalyzeWorkers(nl, pl, dm, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4, 8} {
			par, err := timing.AnalyzeWorkers(nl, pl, dm, w)
			if err != nil {
				t.Fatal(err)
			}
			analysesEqual(t, "seed/workers", serial, par)
		}
	}
}

// TestRegisteredSinkArrivalOrdering pins the fix for registered sinks
// fed by combinational logic: the register's input arrival must see
// its drivers' final arrival times, even though the topological order
// places timing sources before the logic that feeds them.
func TestRegisteredSinkArrivalOrdering(t *testing.T) {
	n := netlist.New("regorder")
	i := n.AddCell("i", netlist.IPad, 0)
	a := n.AddCell("a", netlist.LUT, 1)
	n.ConnectByName(a.ID, 0, "i")
	r := n.AddCell("r", netlist.LUT, 1)
	r.Registered = true
	n.ConnectByName(r.ID, 0, "a")
	o := n.AddCell("o", netlist.OPad, 1)
	n.ConnectByName(o.ID, 0, "r")
	locs := &gridLoc{locs: make([]arch.Loc, n.Cap())}
	locs.locs[i.ID] = arch.Loc{X: 0, Y: 1}
	locs.locs[a.ID] = arch.Loc{X: 2, Y: 1}
	locs.locs[r.ID] = arch.Loc{X: 4, Y: 1}
	locs.locs[o.ID] = arch.Loc{X: 5, Y: 1}
	dm := arch.DelayModel{SegDelay: 1, LUTDelay: 2, IODelay: 0.5}
	an, err := timing.Analyze(n, locs, dm)
	if err != nil {
		t.Fatal(err)
	}
	// Arr[a] = 2 wire + 2 LUT = 4; r's input path = 4 + 2 wire + 2
	// LUT intrinsic = 8, which is also the critical path.
	if got := an.Arr[a.ID]; got != 4 {
		t.Errorf("Arr[a] = %v, want 4", got)
	}
	if got := an.SinkArr[r.ID]; got != 8 {
		t.Errorf("SinkArr[r] = %v, want 8 (stale driver arrival used)", got)
	}
	if an.Period != 8 || an.CritSink != r.ID {
		t.Errorf("Period %v at %v, want 8 at r", an.Period, an.CritSink)
	}
}
