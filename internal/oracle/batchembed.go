package oracle

import (
	"context"
	"fmt"
	"math"

	"repro/internal/embed"
)

// CheckBatchEmbed is the batch-embedding differential oracle: a seeded
// multi-tree design (k independent random fanin-tree problems) solved
// through embed.SolveBatch must reproduce, slot for slot, exactly what
// solving each problem alone produces — same error outcomes and
// bitwise-identical frontiers. This is the property that lets the
// serve layer push a whole design's trees through one wavefront pass
// without perturbing any downstream decision.
func CheckBatchEmbed(probs []*embed.Problem, workers int) error {
	solo := make([]*embed.Result, len(probs))
	serr := make([]error, len(probs))
	for i, p := range probs {
		solo[i], serr[i] = p.Solve()
	}
	got, errs := embed.SolveBatch(context.Background(), probs, workers)
	for i := range probs {
		if (serr[i] == nil) != (errs[i] == nil) {
			return fmt.Errorf("problem %d: batch err %v, solo err %v", i, errs[i], serr[i])
		}
		if serr[i] != nil {
			if errs[i].Error() != serr[i].Error() {
				return fmt.Errorf("problem %d: batch err %q, solo err %q", i, errs[i], serr[i])
			}
			continue
		}
		if err := frontierBitsEqual(solo[i].Frontier, got[i].Frontier); err != nil {
			return fmt.Errorf("problem %d (workers %d): %w", i, workers, err)
		}
	}
	return nil
}

// frontierBitsEqual compares two frontiers bitwise, order included:
// both sides come from the canonical finish sort, so any difference —
// even a NaN payload or signed zero — is a determinism break.
func frontierBitsEqual(want, got []embed.FrontierSol) error {
	if len(want) != len(got) {
		return fmt.Errorf("frontier size %d, solo %d", len(got), len(want))
	}
	for i := range want {
		if !sigBitsEqual(want[i].Sig, got[i].Sig) || want[i].Vertex != got[i].Vertex {
			return fmt.Errorf("frontier[%d] = %+v, solo %+v", i, got[i], want[i])
		}
	}
	return nil
}

// sigBitsEqual compares signatures by float bit pattern, not float
// equality: +0 vs -0 and NaN payloads count as differences.
func sigBitsEqual(a, b embed.Sig) bool {
	if math.Float64bits(a.Cost) != math.Float64bits(b.Cost) ||
		math.Float64bits(a.TC) != math.Float64bits(b.TC) ||
		math.Float64bits(a.R) != math.Float64bits(b.R) ||
		a.W != b.W || a.Branch != b.Branch || a.Peak != b.Peak {
		return false
	}
	for i := range a.D {
		if math.Float64bits(a.D[i]) != math.Float64bits(b.D[i]) {
			return false
		}
	}
	return true
}
