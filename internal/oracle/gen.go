package oracle

import (
	"math"
	"math/rand"

	"repro/internal/embed"
)

// Seeded random instance generation for the differential harness.
//
// Every numeric value is a dyadic rational — a small multiple of 1/4 —
// so the float sums and products (Elmore multiplies quarter-grain
// values into 1/32-grain ones, still dyadic, still tiny) performed by
// both the DP and the oracle are exact and order-independent. That is
// what licenses bitwise frontier comparison: with exact arithmetic,
// "same multiset of operations in any order" means "same bits".
//
// Zero wire delays and zero intrinsics are generated on purpose: exact
// ties are where dominance pruning, heap tie-breaks and canonical
// ordering earn their keep, and where historical bugs hide.

// quarter returns a random non-negative multiple of 1/4 below max.
func quarter(rng *rand.Rand, max int) float64 {
	return float64(rng.Intn(max)) * 0.25
}

// GenProblem builds a random small embedding problem for the given
// mode: a connected graph of at most 9 vertices (sometimes a uniform
// grid, usually an irregular random graph), a fanin tree of at most 8
// nodes with at most 3 internal gates, dyadic-exact costs, delays and
// arrivals, occasional blocked vertices and infinite placement costs
// (possibly making the instance infeasible — callers must treat
// "Solve errors" and "oracle frontier empty" as the same outcome), and
// a free root 20% of the time.
func GenProblem(rng *rand.Rand, mode embed.Mode) *embed.Problem {
	g, nv := genGraph(rng)
	t := genTree(rng, nv)

	// Per-(node, vertex) placement costs, with a sprinkle of +Inf
	// (forbidden slots, e.g. already-full CLBs).
	costs := make([][]float64, len(t.Nodes))
	for id := range t.Nodes {
		costs[id] = make([]float64, nv)
		for v := 0; v < nv; v++ {
			if rng.Intn(20) == 0 {
				costs[id][v] = math.Inf(1)
			} else {
				costs[id][v] = quarter(rng, 9)
			}
		}
	}
	caps := make([]int, nv)
	for v := range caps {
		caps[v] = 1 + rng.Intn(2)
	}
	return &embed.Problem{
		G:    g,
		T:    t,
		Mode: mode,
		PlaceCost: func(id embed.NodeID, v embed.Vertex) float64 {
			return costs[id][v]
		},
		Capacity: func(v embed.Vertex) int { return caps[v] },
	}
}

// genGraph returns a small connected embedding graph. One in four is a
// uniform grid (the production shape); the rest are irregular: a random
// spanning tree plus extra bidirectional edges, occasionally a directed
// shortcut, occasionally a blocked vertex or two.
func genGraph(rng *rand.Rand) (*embed.Graph, int) {
	var g *embed.Graph
	if rng.Intn(4) == 0 {
		w, h := 2+rng.Intn(2), 2+rng.Intn(2) // up to 3×3
		g = embed.NewGrid(embed.GridSpec{
			W: w, H: h,
			WireCost:  0.25 * float64(1+rng.Intn(4)),
			WireDelay: quarter(rng, 4),
		})
	} else {
		n := 4 + rng.Intn(6) // 4..9 vertices
		g = embed.NewGraph(n)
		for v := 1; v < n; v++ {
			u := rng.Intn(v) // spanning tree: connectivity guaranteed
			g.AddBiEdge(embed.Vertex(u), embed.Vertex(v),
				0.25*float64(1+rng.Intn(8)), quarter(rng, 5))
		}
		for extra := rng.Intn(3); extra > 0; extra-- {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			cost, delay := 0.25*float64(1+rng.Intn(8)), quarter(rng, 5)
			if rng.Intn(4) == 0 {
				g.AddEdge(embed.Vertex(u), embed.Vertex(v), cost, delay)
			} else {
				g.AddBiEdge(embed.Vertex(u), embed.Vertex(v), cost, delay)
			}
		}
	}
	nv := g.NumVertices()
	if rng.Intn(3) == 0 {
		for k := 1 + rng.Intn(2); k > 0; k-- {
			g.Block(embed.Vertex(rng.Intn(nv)))
		}
	}
	return g, nv
}

// genTree returns a random fanin tree: 1..3 internal gates (node 0 the
// root, later internals attached to a random earlier one), 2..4 leaves
// spread over the internals, plus a leaf for any internal left
// childless. Leaves land on random vertices — including blocked ones,
// which is legal (the signal can leave but nothing can join there).
// One leaf is marked critical for Lex-mc.
func genTree(rng *rand.Rand, nv int) *embed.Tree {
	nInt := 1 + rng.Intn(3)
	t := &embed.Tree{Root: 0}
	for i := 0; i < nInt; i++ {
		n := embed.Node{Vertex: -1, Intrinsic: quarter(rng, 5)}
		if i > 0 {
			parent := rng.Intn(i)
			t.Nodes[parent].Children = append(t.Nodes[parent].Children, embed.NodeID(i))
		}
		t.Nodes = append(t.Nodes, n)
	}
	if rng.Intn(5) != 0 {
		t.Nodes[0].Vertex = embed.Vertex(rng.Intn(nv)) // fixed root
	}
	addLeaf := func(parent int) {
		id := embed.NodeID(len(t.Nodes))
		t.Nodes = append(t.Nodes, embed.Node{
			Vertex: embed.Vertex(rng.Intn(nv)),
			Arr:    quarter(rng, 13),
		})
		t.Nodes[parent].Children = append(t.Nodes[parent].Children, id)
	}
	for k := 2 + rng.Intn(3); k > 0; k-- {
		addLeaf(rng.Intn(nInt))
	}
	for i := 0; i < nInt; i++ {
		if len(t.Nodes[i].Children) == 0 {
			addLeaf(i)
		}
	}
	// Mark one leaf critical (Lex-mc's distinguished input).
	leaves := []int{}
	for i := range t.Nodes {
		if t.Nodes[i].IsLeaf() {
			leaves = append(leaves, i)
		}
	}
	t.Nodes[leaves[rng.Intn(len(leaves))]].Critical = true
	return t
}
