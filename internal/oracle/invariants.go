package oracle

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/timing"
)

// Structural and placement invariants every engine run must preserve.
// These are the paper's implicit legality contract: replication may add
// cells and move flip-flops, but the result must still be a well-formed
// netlist, legally placed, and no slower than what it started from.

// CheckPlaced verifies the structural invariants of a placed design:
//
//   - the netlist is well-formed (single drivers, no dangling nets, no
//     dead references, consistent equivalence classes — every replica
//     agrees with its class on pin count and kind);
//   - every live cell is placed, on a slot of the right type;
//   - no slot holds more cells than its capacity.
func CheckPlaced(nl *netlist.Netlist, pl *placement.Placement) error {
	if err := nl.Validate(); err != nil {
		return fmt.Errorf("oracle: netlist invariant: %w", err)
	}
	if err := pl.Validate(nl); err != nil {
		return fmt.Errorf("oracle: placement invariant: %w", err)
	}
	if over := pl.OverCapacity(); len(over) > 0 {
		return fmt.Errorf("oracle: placement over capacity at %d slots (first %v)", len(over), over[0])
	}
	return nil
}

// CheckNoRegression verifies the engine's monotonicity contract: the
// final design's critical-path period must not exceed the baseline
// (the engine snapshots and restores the best solution, so even a
// failed exploration must end no worse than it began). The comparison
// is exact — the engine restores a snapshot, not a recomputation.
func CheckNoRegression(nl *netlist.Netlist, pl *placement.Placement, dm arch.DelayModel, baseline float64) error {
	a, err := timing.Analyze(nl, pl, dm)
	if err != nil {
		return fmt.Errorf("oracle: timing invariant: %w", err)
	}
	if a.Period > baseline {
		return fmt.Errorf("oracle: critical path worsened: %v > baseline %v", a.Period, baseline)
	}
	return nil
}
