package oracle

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/place"
)

func harnessDelay() arch.DelayModel {
	return arch.DelayModel{SegDelay: 1, LUTDelay: 2, IODelay: 0.5}
}

func harnessConfig() core.Config {
	cfg := core.Default()
	cfg.MaxIters = 8
	cfg.Patience = 4
	return cfg
}

func harnessOptions(spec circuits.Spec) EngineCheckOptions {
	po := place.Defaults()
	po.Effort = 1
	po.Seed = spec.Seed
	return EngineCheckOptions{
		Spec:      spec,
		GridN:     8,
		PlaceOpts: po,
		Config:    harnessConfig(),
		Delay:     harnessDelay(),
		Equiv:     EquivOptions{Seed: spec.Seed},
	}
}

// TestEngineDifferential drives randomized circuits through the full
// pipeline, checking serial/parallel bit-identity, structural
// invariants, timing monotonicity, and functional equivalence.
func TestEngineDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	runs := 6
	if testing.Short() {
		runs = 2
	}
	for i := 0; i < runs; i++ {
		spec := circuits.Spec{
			Name:    "diff",
			LUTs:    10 + rng.Intn(12),
			Inputs:  3 + rng.Intn(3),
			Outputs: 2 + rng.Intn(2),
			Seed:    rng.Int63n(1 << 30),
		}
		if i%2 == 1 {
			spec.RegisteredFrac = 0.3
		}
		rep, err := CheckEngine(harnessOptions(spec))
		if err != nil {
			t.Fatalf("run %d (seed %d): %v", i, spec.Seed, err)
		}
		if rep.Final > rep.Baseline {
			t.Fatalf("run %d: report says final %v > baseline %v", i, rep.Final, rep.Baseline)
		}
	}
}

// TestIncrementalDifferential pins the incremental engine's exactness
// claim end to end: dirty-region STA, patched critical-path trees, and
// memoized frontiers must reproduce the full engine's optimized design
// bit for bit, with in-run verification re-deriving every incremental
// artifact from scratch.
func TestIncrementalDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	runs := 4
	if testing.Short() {
		runs = 2
	}
	for i := 0; i < runs; i++ {
		spec := circuits.Spec{
			Name:    "incdiff",
			LUTs:    12 + rng.Intn(14),
			Inputs:  3 + rng.Intn(3),
			Outputs: 2 + rng.Intn(2),
			Seed:    rng.Int63n(1 << 30),
		}
		if i%2 == 1 {
			spec.RegisteredFrac = 0.3
		}
		opt := harnessOptions(spec)
		opt.ParallelWorkers = 1 + i%2*3
		st, err := CheckIncremental(opt)
		if err != nil {
			t.Fatalf("run %d (seed %d): %v", i, spec.Seed, err)
		}
		inc := st.Incremental
		if inc.STAUpdates+inc.STAFullRuns+inc.STAFallbacks == 0 {
			t.Fatalf("run %d: incremental run recorded no STA activity: %+v", i, inc)
		}
	}
}

// TestRenameInvariance pins name-blindness: prefixing every cell name
// must not change any engine decision.
func TestRenameInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	runs := 3
	if testing.Short() {
		runs = 1
	}
	for i := 0; i < runs; i++ {
		spec := circuits.Spec{
			Name:    "ren",
			LUTs:    10 + rng.Intn(10),
			Inputs:  3 + rng.Intn(3),
			Outputs: 2,
			Seed:    rng.Int63n(1 << 30),
		}
		if err := CheckRenameInvariance(harnessOptions(spec), "zz_"); err != nil {
			t.Fatalf("run %d (seed %d): %v", i, spec.Seed, err)
		}
	}
}

// TestTranslationInvariance pins geometry-blindness: a pad-free design
// translated across the fabric interior must optimize to an exact
// translate of the base result.
func TestTranslationInvariance(t *testing.T) {
	cfg := harnessConfig()
	cfg.FFRelocation = false
	cfg.MaxIters = 6
	runs := 3
	if testing.Short() {
		runs = 1
	}
	shifts := [][2]int16{{2, 0}, {-2, 1}, {1, -2}}
	for i := 0; i < runs; i++ {
		s := shifts[i%len(shifts)]
		if err := CheckTranslationInvariance(int64(20+i), 48, cfg, harnessDelay(), s[0], s[1]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEquivalentCatchesRewire pins the checker's teeth: moving a sink
// pin to a non-equivalent driver must be detected.
func TestEquivalentCatchesRewire(t *testing.T) {
	nl, err := circuits.Generate(circuits.Spec{
		Name: "teeth", LUTs: 12, Inputs: 4, Outputs: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := nl.Clone()
	// Move one output pad's pin to a different, non-equivalent driver.
	var pad, oldDriver netlist.CellID = netlist.None, netlist.None
	bad.Cells(func(c *netlist.Cell) {
		if pad == netlist.None && c.Kind == netlist.OPad {
			pad = c.ID
			oldDriver = bad.Net(c.Fanin[0]).Driver
		}
	})
	moved := false
	bad.Cells(func(c *netlist.Cell) {
		if !moved && c.Kind == netlist.LUT && !bad.Equivalent(c.ID, oldDriver) {
			bad.Connect(pad, 0, c.Out)
			moved = true
		}
	})
	if !moved {
		t.Fatal("no alternative driver found")
	}
	if err := Equivalent(nl, bad, EquivOptions{Seed: 1}); err == nil {
		t.Fatal("Equivalent accepted a rewired output pad")
	}
}
