package oracle

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/arch"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/placement"
	"repro/internal/timing"
)

// The differential / metamorphic harness: randomized circuits driven
// through the full place → replicate pipeline, checked four ways —
//
//   - serial and parallel engine runs must be bit-identical;
//   - the optimized design must compute the original's function
//     (Equivalent) and satisfy every structural invariant
//     (CheckPlaced, CheckNoRegression);
//   - renaming every cell must not change the outcome beyond the names
//     (CheckRenameInvariance);
//   - translating a pad-free design across the fabric must translate
//     the outcome and nothing else (CheckTranslationInvariance).
//
// The harness is plain library code so the test suite and the
// replcheck command share one implementation.

// EngineCheckOptions configures one differential engine run.
type EngineCheckOptions struct {
	Spec      circuits.Spec
	GridN     int
	PlaceOpts place.Options
	Config    core.Config
	Delay     arch.DelayModel
	Equiv     EquivOptions
	// ParallelWorkers is the worker count of the parallel run compared
	// against the serial baseline (default 4).
	ParallelWorkers int
}

// EngineReport summarizes one passing differential engine run.
type EngineReport struct {
	Baseline float64 // placed period before optimization
	Final    float64 // optimized period (serial == parallel, bitwise)
	Stats    *core.Stats
	Snapshot string // canonical optimized design
}

// CheckEngine generates the spec's circuit, places it, optimizes it
// twice (serial and parallel), and verifies bit-identity, structural
// invariants, timing monotonicity, and functional equivalence.
func CheckEngine(opt EngineCheckOptions) (*EngineReport, error) {
	if opt.ParallelWorkers <= 0 {
		opt.ParallelWorkers = 4
	}
	nl, err := circuits.Generate(opt.Spec)
	if err != nil {
		return nil, err
	}
	orig := nl.Clone()
	pl, err := place.Place(nl, arch.New(opt.GridN), opt.PlaceOpts)
	if err != nil {
		return nil, err
	}
	if err := CheckPlaced(nl, pl); err != nil {
		return nil, fmt.Errorf("pre-optimization %s: %w", opt.Spec.Name, err)
	}
	a, err := timing.Analyze(nl, pl, opt.Delay)
	if err != nil {
		return nil, err
	}
	baseline := a.Period

	serial, err := runOnce(nl.Clone(), pl.Clone(), opt.Delay, opt.Config, 1)
	if err != nil {
		return nil, fmt.Errorf("serial run %s: %w", opt.Spec.Name, err)
	}
	par, err := runOnce(nl.Clone(), pl.Clone(), opt.Delay, opt.Config, opt.ParallelWorkers)
	if err != nil {
		return nil, fmt.Errorf("parallel run %s: %w", opt.Spec.Name, err)
	}
	if math.Float64bits(serial.period) != math.Float64bits(par.period) {
		return nil, fmt.Errorf("%s: serial period %v != parallel(%d) period %v",
			opt.Spec.Name, serial.period, opt.ParallelWorkers, par.period)
	}
	if serial.snap != par.snap {
		return nil, fmt.Errorf("%s: parallel(%d) design diverges from serial:\n--- serial\n%s--- parallel\n%s",
			opt.Spec.Name, opt.ParallelWorkers, serial.snap, par.snap)
	}

	if err := CheckPlaced(serial.nl, serial.pl); err != nil {
		return nil, fmt.Errorf("optimized %s: %w", opt.Spec.Name, err)
	}
	if err := CheckNoRegression(serial.nl, serial.pl, opt.Delay, baseline); err != nil {
		return nil, fmt.Errorf("optimized %s: %w", opt.Spec.Name, err)
	}
	if err := Equivalent(orig, serial.nl, opt.Equiv); err != nil {
		return nil, fmt.Errorf("optimized %s not equivalent: %w", opt.Spec.Name, err)
	}
	return &EngineReport{
		Baseline: baseline,
		Final:    serial.period,
		Stats:    serial.stats,
		Snapshot: serial.snap,
	}, nil
}

// CheckIncremental is the incremental engine's differential oracle:
// the same placed design optimized with the incremental machinery
// disabled and enabled must produce bit-identical periods and designs.
// The incremental run additionally enables Config.VerifyIncremental,
// so every dirty-region STA update, patched critical-path tree, and
// memoized embedding frontier inside the run is re-derived from
// scratch and checked bitwise as it happens.
func CheckIncremental(opt EngineCheckOptions) (*core.Stats, error) {
	nl, err := circuits.Generate(opt.Spec)
	if err != nil {
		return nil, err
	}
	pl, err := place.Place(nl, arch.New(opt.GridN), opt.PlaceOpts)
	if err != nil {
		return nil, err
	}

	workers := opt.ParallelWorkers
	if workers <= 0 {
		workers = 1
	}
	full := opt.Config
	full.Incremental = false
	fres, err := runOnce(nl.Clone(), pl.Clone(), opt.Delay, full, workers)
	if err != nil {
		return nil, fmt.Errorf("full run %s: %w", opt.Spec.Name, err)
	}

	inc := opt.Config
	inc.Incremental = true
	inc.VerifyIncremental = true
	ires, err := runOnce(nl, pl, opt.Delay, inc, workers)
	if err != nil {
		return nil, fmt.Errorf("incremental run %s: %w", opt.Spec.Name, err)
	}

	if math.Float64bits(fres.period) != math.Float64bits(ires.period) {
		return nil, fmt.Errorf("%s: incremental period %v != full period %v",
			opt.Spec.Name, ires.period, fres.period)
	}
	if fres.snap != ires.snap {
		return nil, fmt.Errorf("%s: incremental design diverges from full:\n--- full\n%s--- incremental\n%s",
			opt.Spec.Name, fres.snap, ires.snap)
	}
	return ires.stats, nil
}

type runResult struct {
	nl     *netlist.Netlist
	pl     *placement.Placement
	stats  *core.Stats
	period float64
	snap   string
}

func runOnce(nl *netlist.Netlist, pl *placement.Placement, dm arch.DelayModel, cfg core.Config, workers int) (*runResult, error) {
	cfg.Parallelism = workers
	e := core.New(nl, pl, dm, cfg)
	st, err := e.Run()
	if err != nil {
		return nil, err
	}
	return &runResult{
		nl:     e.Netlist,
		pl:     e.Placement,
		stats:  st,
		period: st.FinalPeriod,
		snap:   Snapshot(e.Netlist, e.Placement),
	}, nil
}

// Snapshot renders a placed design canonically: cells in ID order with
// kind, register flag, location, and fanin driver names. Two designs
// are bit-identical iff their snapshots and period bits are equal.
func Snapshot(nl *netlist.Netlist, pl *placement.Placement) string {
	return snapshotMapped(nl, pl, func(s string) string { return s }, 0, 0)
}

// snapshotMapped is Snapshot with a name normalization and a location
// offset subtracted — the metamorphic checks compare a transformed
// run's snapshot against the base run's after undoing the transform.
func snapshotMapped(nl *netlist.Netlist, pl *placement.Placement, name func(string) string, dx, dy int16) string {
	var b strings.Builder
	nl.Cells(func(c *netlist.Cell) {
		l := pl.Loc(c.ID)
		fmt.Fprintf(&b, "%s/%v", name(c.Name), c.Kind)
		if c.Registered {
			b.WriteString("/reg")
		}
		fmt.Fprintf(&b, "@%d,%d:", l.X-dx, l.Y-dy)
		for _, net := range c.Fanin {
			if net == netlist.None {
				b.WriteString(" -")
				continue
			}
			fmt.Fprintf(&b, " %s", name(nl.Cell(nl.Net(net).Driver).Name))
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// CheckRenameInvariance verifies the engine is name-blind: rebuilding
// the circuit with every cell name prefixed (IDs, classes, pin orders
// and placement all preserved) must yield the identical optimized
// design modulo the prefix, with the identical period bits.
func CheckRenameInvariance(opt EngineCheckOptions, prefix string) error {
	nl, err := circuits.Generate(opt.Spec)
	if err != nil {
		return err
	}
	pl, err := place.Place(nl, arch.New(opt.GridN), opt.PlaceOpts)
	if err != nil {
		return err
	}
	rnl := renamePrefix(nl, prefix)
	rpl := pl.Clone() // cell IDs are preserved, so the placement carries over

	base, err := runOnce(nl, pl, opt.Delay, opt.Config, 1)
	if err != nil {
		return fmt.Errorf("base run %s: %w", opt.Spec.Name, err)
	}
	ren, err := runOnce(rnl, rpl, opt.Delay, opt.Config, 1)
	if err != nil {
		return fmt.Errorf("renamed run %s: %w", opt.Spec.Name, err)
	}
	if math.Float64bits(base.period) != math.Float64bits(ren.period) {
		return fmt.Errorf("%s: renaming changed the period: %v vs %v", opt.Spec.Name, base.period, ren.period)
	}
	stripped := snapshotMapped(ren.nl, ren.pl, func(s string) string {
		return strings.TrimPrefix(s, prefix)
	}, 0, 0)
	if stripped != base.snap {
		return fmt.Errorf("%s: renaming changed the optimized design:\n--- base\n%s--- renamed (prefix stripped)\n%s",
			opt.Spec.Name, base.snap, stripped)
	}
	return nil
}

// renamePrefix rebuilds nl with every cell name prefixed, preserving
// cell IDs, net IDs, pin order and equivalence classes (the rebuild
// replays construction in ID order, which reassigns the same IDs).
func renamePrefix(nl *netlist.Netlist, prefix string) *netlist.Netlist {
	out := netlist.New(nl.Name)
	nl.Cells(func(c *netlist.Cell) {
		nc := out.AddCell(prefix+c.Name, c.Kind, len(c.Fanin))
		nc.Registered = c.Registered
	})
	nl.Cells(func(c *netlist.Cell) {
		for pin, net := range c.Fanin {
			if net == netlist.None {
				continue
			}
			out.ConnectByName(c.ID, pin, prefix+nl.Cell(nl.Net(net).Driver).Name)
		}
	})
	return out
}

// CheckTranslationInvariance verifies the engine sees only relative
// geometry: hand-placing a pad-free register-bounded circuit at the
// fabric center and again translated by (dx, dy) must yield optimized
// designs that are exact translates, with identical period bits.
// Pad-free circuits are used because I/O pads are pinned to the ring
// and cannot translate; FF relocation should be disabled by the caller
// for windows near nothing (it is translation-covariant too, but keeps
// failures easier to read when this check trips).
func CheckTranslationInvariance(seed int64, gridN int, cfg core.Config, dm arch.DelayModel, dx, dy int16) error {
	rng := rand.New(rand.NewSource(seed))
	nl := registerBounded(rng, fmt.Sprintf("ring%d", seed))
	rnl := nl.Clone()

	f := arch.New(gridN)
	pl := placement.New(f, nl)
	blockPlace(nl, pl, int16(gridN/2), int16(gridN/2))
	tpl := placement.New(f, rnl)
	blockPlace(rnl, tpl, int16(gridN/2)+dx, int16(gridN/2)+dy)
	if err := CheckPlaced(nl, pl); err != nil {
		return fmt.Errorf("seed %d: %w", seed, err)
	}

	base, err := runOnce(nl, pl, dm, cfg, 1)
	if err != nil {
		return fmt.Errorf("base run seed %d: %w", seed, err)
	}
	moved, err := runOnce(rnl, tpl, dm, cfg, 1)
	if err != nil {
		return fmt.Errorf("translated run seed %d: %w", seed, err)
	}
	if math.Float64bits(base.period) != math.Float64bits(moved.period) {
		return fmt.Errorf("seed %d: translation (%d,%d) changed the period: %v vs %v",
			seed, dx, dy, base.period, moved.period)
	}
	shifted := snapshotMapped(moved.nl, moved.pl, func(s string) string { return s }, dx, dy)
	if shifted != base.snap {
		return fmt.Errorf("seed %d: translation (%d,%d) changed the optimized design:\n--- base\n%s--- translated (shifted back)\n%s",
			seed, dx, dy, base.snap, shifted)
	}
	return nil
}

// registerBounded builds a random pad-free circuit: a layer of source
// registers, combinational LUTs, a layer of sink registers, and the
// sink outputs wired back into the source registers' inputs (legal —
// registers break the timing cycle).
func registerBounded(rng *rand.Rand, name string) *netlist.Netlist {
	n := netlist.New(name)
	nSrc := 3 + rng.Intn(2)
	nMid := 5 + rng.Intn(5)
	nDst := 2 + rng.Intn(2)
	var srcs, pool []string
	for i := 0; i < nSrc; i++ {
		nm := fmt.Sprintf("r%d", i)
		n.AddCell(nm, netlist.LUT, 1).Registered = true
		srcs = append(srcs, nm)
		pool = append(pool, nm)
	}
	for i := 0; i < nMid; i++ {
		nm := fmt.Sprintf("m%d", i)
		k := 2 + rng.Intn(2)
		c := n.AddCell(nm, netlist.LUT, k)
		seen := map[string]bool{}
		for p := 0; p < k; p++ {
			sig := pool[rng.Intn(len(pool))]
			for seen[sig] && len(seen) < len(pool) {
				sig = pool[rng.Intn(len(pool))]
			}
			seen[sig] = true
			n.ConnectByName(c.ID, p, sig)
		}
		pool = append(pool, nm)
	}
	var dsts []string
	for i := 0; i < nDst; i++ {
		nm := fmt.Sprintf("s%d", i)
		c := n.AddCell(nm, netlist.LUT, 2)
		c.Registered = true
		// Feed from the latest combinational signals to get depth.
		n.ConnectByName(c.ID, 0, pool[len(pool)-1-i%2])
		n.ConnectByName(c.ID, 1, pool[rng.Intn(len(pool))])
		dsts = append(dsts, nm)
	}
	for i, s := range srcs {
		id, _ := n.CellByName(s)
		n.ConnectByName(id, 0, dsts[i%len(dsts)])
	}
	return n
}

// blockPlace hand-places every cell in a compact square block whose
// top-left corner is (x0, y0), one cell per slot, in ID order.
func blockPlace(nl *netlist.Netlist, pl *placement.Placement, x0, y0 int16) {
	side := 1
	for side*side < nl.NumCells() {
		side++
	}
	i := 0
	nl.Cells(func(c *netlist.Cell) {
		pl.Place(c.ID, arch.Loc{X: x0 + int16(i%side), Y: y0 + int16(i/side)})
		i++
	})
}
