package oracle

// Independent re-implementation of the signature algebra from the
// paper's definitions (Sections II-C, II-D, VI-A), deliberately sharing
// no code with internal/embed beyond the Sig data type itself. Where
// embed folds k-ary joins through a two-pointer pairwise merge, this
// file gathers-and-sorts; where embed prunes with staircases and heap
// orders, pruneCanonical is a quadratic scan. On dyadic-exact instances
// every operation here is exact float arithmetic, so agreement with the
// DP is demanded bitwise.

import (
	"math"
	"sort"

	"repro/internal/embed"
)

// lexDepth clamps the mode's lexicographic depth to [1, MaxLex],
// matching the embed contract.
func lexDepth(m embed.Mode) int {
	if m.LexDepth <= 0 {
		return 1
	}
	if m.LexDepth > embed.MaxLex {
		return embed.MaxLex
	}
	return m.LexDepth
}

// leafSig is the initial signature of a leaf with the given arrival:
// one gate (the leaf's driver) at its own vertex, one recorded path.
func leafSig(m embed.Mode, arr float64, critical bool) embed.Sig {
	s := embed.Sig{Branch: 1, Peak: 1}
	s.D[0] = arr
	for i := 1; i < embed.MaxLex; i++ {
		s.D[i] = math.Inf(-1)
	}
	if m.MC && critical {
		s.TC = arr
		s.W = 1
	}
	return s
}

// applyRoute walks a signature across a route edge by edge: wire cost
// accumulates, wire delay (per the mode's delay model) adds to every
// live arrival entry and, for Lex-mc, to the critical-input arrival.
// The result is a non-branching solution: no gate of this subtree sits
// at the route's endpoint, so Branch resets to 0.
func applyRoute(m embed.Mode, s embed.Sig, edges []embed.Edge) embed.Sig {
	out := s
	depth := lexDepth(m)
	for _, e := range edges {
		out.Cost += e.Cost
		var wd float64
		switch m.Delay {
		case embed.LinearDelay:
			wd = e.Delay
		case embed.QuadraticDelay:
			l0 := out.R
			l1 := l0 + e.Delay
			wd = l1*l1 - l0*l0
			out.R = l1
		case embed.ElmoreDelay:
			wd = e.Delay * (out.R + e.Delay/2)
			out.R = out.R + e.Delay
		}
		for i := 0; i < depth; i++ {
			if out.D[i] != math.Inf(-1) {
				out.D[i] += wd
			}
		}
		if m.MC && out.W > 0 {
			out.TC += wd
		}
	}
	out.Branch = 0
	return out
}

// mergeSigs combines two child signatures meeting at a branching
// vertex: costs, critical weights and co-located gate counts add, the
// arrival vector becomes the top-depth values of the multiset union
// (gathered and sorted rather than two-pointer merged — same values,
// independent mechanism), and Peak takes the worse side.
func mergeSigs(m embed.Mode, a, b *embed.Sig) embed.Sig {
	out := embed.Sig{
		Cost:   a.Cost + b.Cost,
		TC:     a.TC + b.TC,
		W:      a.W + b.W,
		Branch: a.Branch + b.Branch,
		Peak:   a.Peak,
	}
	if b.Peak > out.Peak {
		out.Peak = b.Peak
	}
	depth := lexDepth(m)
	vals := make([]float64, 0, 2*depth)
	vals = append(vals, a.D[:depth]...)
	vals = append(vals, b.D[:depth]...)
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	for k := 0; k < embed.MaxLex; k++ {
		if k < depth {
			out.D[k] = vals[k]
		} else {
			out.D[k] = math.Inf(-1)
		}
	}
	return out
}

// finishJoinSig applies the join's per-vertex terms: placement cost,
// the gate's intrinsic delay on every live arrival (and the critical
// path, when one runs through), the gate itself joining the co-located
// count, and the load-dependent resistance reset — the gate now drives
// whatever wire comes next.
func finishJoinSig(m embed.Mode, s embed.Sig, placeCost, intrinsic float64) embed.Sig {
	out := s
	out.Cost += placeCost
	out.Branch = s.Branch + 1
	if out.Branch > out.Peak {
		out.Peak = out.Branch
	}
	depth := lexDepth(m)
	for i := 0; i < depth; i++ {
		if out.D[i] != math.Inf(-1) {
			out.D[i] += intrinsic
		}
	}
	if m.MC && out.W > 0 {
		out.TC += intrinsic
	}
	switch m.Delay {
	case embed.QuadraticDelay:
		out.R = 0
	case embed.ElmoreDelay:
		out.R = m.GateR
	}
	return out
}

// dominatesSig is the dominance partial order: no worse in every
// dimension the mode optimizes. Branch participates in every mode
// because future Peak grows from it, and Peak always participates.
// Exact float equality is the point: instances are dyadic-exact, and
// the comparison must mirror the DP's bit for bit.
//
//replint:floatcmp-helper
func dominatesSig(m embed.Mode, a, b *embed.Sig) bool {
	if a.Cost > b.Cost {
		return false
	}
	depth := lexDepth(m)
	for i := 0; i < depth; i++ {
		if a.D[i] != b.D[i] {
			if a.D[i] > b.D[i] {
				return false
			}
			break
		}
	}
	if m.MC && a.TC > b.TC {
		return false
	}
	if m.Delay != embed.LinearDelay && a.R > b.R {
		return false
	}
	if a.Branch > b.Branch {
		return false
	}
	if a.Peak > b.Peak {
		return false
	}
	return true
}

// canonLess is the total order refining dominance used to canonicalize
// a solution set: dominance dimensions first (so a dominating signature
// sorts before everything it dominates), remaining fields as
// deterministic tie-breaks. Exact equality is deliberate, as in
// dominatesSig.
//
//replint:floatcmp-helper
func canonLess(m embed.Mode, a, b *embed.Sig) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	depth := lexDepth(m)
	for i := 0; i < depth; i++ {
		if a.D[i] != b.D[i] {
			return a.D[i] < b.D[i]
		}
	}
	if m.MC && a.TC != b.TC {
		return a.TC < b.TC
	}
	if m.Delay != embed.LinearDelay && a.R != b.R {
		return a.R < b.R
	}
	if a.Branch != b.Branch {
		return a.Branch < b.Branch
	}
	if a.Peak != b.Peak {
		return a.Peak < b.Peak
	}
	if a.TC != b.TC {
		return a.TC < b.TC
	}
	if a.R != b.R {
		return a.R < b.R
	}
	if a.W != b.W {
		return a.W < b.W
	}
	return false
}

// pruneCanonical reduces a solution set to its canonical minimal
// antichain: sorted by canonLess, scanned forward, keeping everything
// no kept signature dominates (exact duplicates fall out because a
// signature dominates itself).
func pruneCanonical(m embed.Mode, in []embed.Sig) []embed.Sig {
	sorted := append([]embed.Sig(nil), in...)
	sort.Slice(sorted, func(i, j int) bool { return canonLess(m, &sorted[i], &sorted[j]) })
	var out []embed.Sig
	for i := range sorted {
		dominated := false
		for j := range out {
			if dominatesSig(m, &out[j], &sorted[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, sorted[i])
		}
	}
	return out
}
