package oracle

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// Simulation-based functional-equivalence checking.
//
// The netlist model carries no truth tables — replication is purely
// structural — so every equivalence class is assigned a *pseudo
// function*: a fixed hash of (EquivID, input bit vector). Replication
// copies a cell with its class and pin order intact, so a replica fed
// the same values computes the same pseudo-function value; any rewiring
// that changes what a pin observes (the bug class this checker exists
// for: a sink moved to a non-equivalent driver, a lost pin, crossed
// pins after unification) changes some simulated value.
//
// Timing sources (input pads and registered LUTs) are the free
// variables: each source *class* gets one bit per vector, so a replica
// of a registered LUT latches the same state as its original. The
// observed values are the timing-sink inputs — output-pad pins and
// registered-LUT pins (the next-state functions) — plus every class's
// output value.

// EquivOptions tunes Equivalent.
type EquivOptions struct {
	// MaxExhaustive is the largest source-class count simulated
	// exhaustively (2^k vectors). Above it, RandomVectors seeded
	// vectors are used. Defaults to 16.
	MaxExhaustive int
	// RandomVectors is the sampled vector count. Defaults to 256.
	RandomVectors int
	// Seed drives vector sampling.
	Seed int64
}

func (o *EquivOptions) defaults() {
	if o.MaxExhaustive <= 0 {
		o.MaxExhaustive = 16
	}
	if o.RandomVectors <= 0 {
		o.RandomVectors = 256
	}
}

// Equivalent checks that netlist b computes the same function as
// netlist a, where b is a transformed (replicated, unified, pruned)
// version of a. nil means no vector distinguished them.
func Equivalent(a, b *netlist.Netlist, opt EquivOptions) error {
	opt.defaults()
	ta, err := a.TopoOrder()
	if err != nil {
		return fmt.Errorf("oracle: netlist %s: %w", a.Name, err)
	}
	tb, err := b.TopoOrder()
	if err != nil {
		return fmt.Errorf("oracle: netlist %s: %w", b.Name, err)
	}

	// The free variables: every source class seen in either netlist.
	classSet := map[netlist.EquivID]bool{}
	collect := func(n *netlist.Netlist) {
		n.Cells(func(c *netlist.Cell) {
			if c.IsSource() {
				classSet[c.Equiv] = true
			}
		})
	}
	collect(a)
	collect(b)
	sources := make([]netlist.EquivID, 0, len(classSet))
	for e := range classSet {
		sources = append(sources, e)
	}
	sortEquivs(sources)

	exhaustive := len(sources) <= opt.MaxExhaustive
	var vectors int
	if exhaustive {
		vectors = 1 << len(sources)
	} else {
		vectors = opt.RandomVectors
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	for v := 0; v < vectors; v++ {
		in := make(map[netlist.EquivID]bool, len(sources))
		for i, e := range sources {
			if exhaustive {
				in[e] = v&(1<<i) != 0
			} else {
				in[e] = rng.Intn(2) == 1
			}
		}
		sa, err := simulate(a, ta, in)
		if err != nil {
			return err
		}
		sb, err := simulate(b, tb, in)
		if err != nil {
			return err
		}
		if err := compareSim(sa, sb, in); err != nil {
			return fmt.Errorf("oracle: %s vs %s, vector %d: %w", a.Name, b.Name, v, err)
		}
	}
	return nil
}

// simResult is one netlist's response to one input vector.
type simResult struct {
	nl *netlist.Netlist
	// outVal is each live class's output value. All members of a class
	// must agree — simulate fails otherwise (replica inconsistency).
	outVal map[netlist.EquivID]bool
	// sinkVal is each observed sink-pin value, keyed by the sink's
	// class and pin index: what the output pad emits, what the
	// register latches next cycle.
	sinkVal map[sinkKey]bool
	// sinkOf names a representative sink cell per key, for messages.
	sinkOf map[sinkKey]string
}

type sinkKey struct {
	class netlist.EquivID
	pin   int32
}

// simulate evaluates the netlist over one assignment of source-class
// values, in topological order.
func simulate(n *netlist.Netlist, order []netlist.CellID, in map[netlist.EquivID]bool) (*simResult, error) {
	res := &simResult{
		nl:      n,
		outVal:  make(map[netlist.EquivID]bool),
		sinkVal: make(map[sinkKey]bool),
		sinkOf:  make(map[sinkKey]string),
	}
	netVal := make([]bool, n.NetCap())
	record := func(c *netlist.Cell, val bool) error {
		if prev, ok := res.outVal[c.Equiv]; ok {
			if prev != val {
				return fmt.Errorf("netlist %s: class %d is inconsistent: %s computes %v, a sibling computed %v",
					n.Name, c.Equiv, c.Name, val, prev)
			}
			return nil
		}
		res.outVal[c.Equiv] = val
		return nil
	}
	for _, id := range order {
		c := n.Cell(id)
		// Output value.
		var val bool
		switch {
		case c.IsSource():
			val = in[c.Equiv]
		case c.Kind == netlist.LUT:
			val = pseudoLUT(c.Equiv, c.Fanin, netVal)
		}
		if c.Kind != netlist.OPad {
			if err := record(c, val); err != nil {
				return nil, err
			}
		}
		if c.Out != netlist.None {
			netVal[c.Out] = val
		}
		// Observed sink pins.
		if c.IsSink() {
			for pin, net := range c.Fanin {
				if net == netlist.None {
					continue
				}
				k := sinkKey{class: c.Equiv, pin: int32(pin)}
				pv := netVal[net]
				if prev, ok := res.sinkVal[k]; ok {
					if prev != pv {
						return nil, fmt.Errorf("netlist %s: sinks %s and %s (class %d) latch different pin-%d values",
							n.Name, res.sinkOf[k], c.Name, c.Equiv, pin)
					}
					continue
				}
				res.sinkVal[k] = pv
				res.sinkOf[k] = c.Name
			}
		}
	}
	return res, nil
}

// compareSim checks b's response against a's: shared classes agree on
// output values, and every sink pin a observes is observed identically
// by b (transformations may delete dead classes, never observed pins).
func compareSim(a, b *simResult, in map[netlist.EquivID]bool) error {
	for e, av := range a.outVal {
		if bv, ok := b.outVal[e]; ok && av != bv {
			return fmt.Errorf("class %d output differs: %v vs %v (inputs %v)", e, av, bv, in)
		}
	}
	for k, av := range a.sinkVal {
		bv, ok := b.sinkVal[k]
		if !ok {
			return fmt.Errorf("sink pin (class %d, pin %d, e.g. %s) disappeared", k.class, k.pin, a.sinkOf[k])
		}
		if av != bv {
			return fmt.Errorf("sink %s (class %d) pin %d differs: %v vs %v", b.sinkOf[k], k.class, k.pin, av, bv)
		}
	}
	for k := range b.sinkVal {
		if _, ok := a.sinkVal[k]; !ok {
			return fmt.Errorf("sink pin (class %d, pin %d, e.g. %s) appeared from nowhere", k.class, k.pin, b.sinkOf[k])
		}
	}
	return nil
}

// pseudoLUT is the pseudo-function of one class: a splitmix-style hash
// of the class ID and the pin-ordered input values, reduced to one bit.
// Unconnected pins read constant false.
func pseudoLUT(e netlist.EquivID, fanin []netlist.NetID, netVal []bool) bool {
	h := uint64(e)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	for _, net := range fanin {
		bit := uint64(0)
		if net != netlist.None && netVal[net] {
			bit = 1
		}
		h ^= bit + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
	}
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h&1 == 1
}

func sortEquivs(es []netlist.EquivID) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j] < es[j-1]; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}
