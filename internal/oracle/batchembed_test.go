package oracle

import (
	"math/rand"
	"testing"

	"repro/internal/embed"
)

// TestBatchEmbedAgreement sweeps ~100 seeded multi-tree designs
// through the batch-embedding oracle: each design is 3..8 independent
// random problems (mixed modes, occasional infeasible instances), and
// the shared wavefront pass must reproduce the one-at-a-time results
// bitwise at several worker counts.
func TestBatchEmbedAgreement(t *testing.T) {
	designs := agreementRuns(t, 100)
	modes := []embed.Mode{
		{LexDepth: 1},
		{LexDepth: 1, Delay: embed.QuadraticDelay},
		{LexDepth: 1, Delay: embed.ElmoreDelay},
		{LexDepth: 3},
		{LexDepth: 1, MC: true},
		{LexDepth: 1, OverlapControl: true},
	}
	workerSweep := []int{1, 2, 4}
	rng := rand.New(rand.NewSource(4021))
	for d := 0; d < designs; d++ {
		k := 3 + rng.Intn(6)
		probs := make([]*embed.Problem, k)
		for i := range probs {
			probs[i] = GenProblem(rng, modes[rng.Intn(len(modes))])
		}
		workers := workerSweep[d%len(workerSweep)]
		if err := CheckBatchEmbed(probs, workers); err != nil {
			t.Fatalf("design %d (k=%d, workers=%d): %v", d, k, workers, err)
		}
	}
}
