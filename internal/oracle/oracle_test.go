package oracle

import (
	"math/rand"
	"testing"

	"repro/internal/embed"
)

// agreementRuns returns the instance count per mode: the full suite
// sweeps enough randomized instances to satisfy the oracle-agreement
// bar; -short keeps the race/CI loop snappy.
func agreementRuns(t *testing.T, full int) int {
	if testing.Short() {
		if full > 60 {
			return 60
		}
		return full
	}
	return full
}

// testAgreement cross-checks the DP against the brute-force oracle on
// n seeded random instances: the frontier must match bitwise, and an
// infeasible DP run must correspond to an empty oracle frontier.
func testAgreement(t *testing.T, mode embed.Mode, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	feasible := 0
	for i := 0; i < n; i++ {
		p := GenProblem(rng, mode)
		if i%3 == 2 {
			p.Parallelism = 2 // parallel joins must agree bitwise too
		}
		want, oerr := Frontier(p)
		if oerr != nil {
			t.Fatalf("instance %d: oracle refused: %v", i, oerr)
		}
		r, err := p.Solve()
		if err != nil {
			if len(want) != 0 {
				t.Errorf("instance %d: Solve says infeasible (%v) but oracle found %d solutions",
					i, err, len(want))
			}
			continue
		}
		feasible++
		if derr := Diff(r.Frontier, want); derr != nil {
			t.Errorf("instance %d (seed %d): %v", i, seed, derr)
		}
	}
	if feasible < n/2 {
		t.Errorf("only %d/%d instances feasible; generator is degenerate", feasible, n)
	}
}

func TestAgreementPlain(t *testing.T) {
	testAgreement(t, embed.Mode{LexDepth: 1}, agreementRuns(t, 220), 1)
}

func TestAgreementLex3(t *testing.T) {
	testAgreement(t, embed.Mode{LexDepth: 3}, agreementRuns(t, 220), 2)
}

func TestAgreementLexMC(t *testing.T) {
	testAgreement(t, embed.Mode{LexDepth: 2, MC: true}, agreementRuns(t, 220), 3)
}

func TestAgreementQuadratic(t *testing.T) {
	testAgreement(t, embed.Mode{LexDepth: 1, Delay: embed.QuadraticDelay}, agreementRuns(t, 120), 4)
}

func TestAgreementElmore(t *testing.T) {
	testAgreement(t, embed.Mode{LexDepth: 1, Delay: embed.ElmoreDelay, GateR: 0.5}, agreementRuns(t, 120), 5)
}

func TestAgreementOverlapControl(t *testing.T) {
	testAgreement(t, embed.Mode{LexDepth: 1, OverlapControl: true}, agreementRuns(t, 120), 6)
}

func TestAgreementLex5Elmore(t *testing.T) {
	testAgreement(t, embed.Mode{LexDepth: 5, Delay: embed.ElmoreDelay, GateR: 0.25}, agreementRuns(t, 80), 7)
}

// TestOracleRejectsInexactMode pins the exact-mode guard: the capped
// solver has no ground truth, so the oracle must refuse it rather than
// report spurious disagreement.
func TestOracleRejectsInexactMode(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := GenProblem(rng, embed.Mode{LexDepth: 1})
	p.MaxPerVertex = 4
	if _, err := Frontier(p); err == nil {
		t.Fatal("oracle accepted MaxPerVertex > 0")
	}
}
