package oracle

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/embed"
)

// Diff compares a DP frontier against the oracle frontier as sets of
// (vertex, signature) points and returns a descriptive error on any
// mismatch. Signatures are compared bitwise — on dyadic-exact instances
// the DP and the oracle perform exact float arithmetic in different
// orders, so even the last bit must agree. nil means exact agreement.
func Diff(got []embed.FrontierSol, want []Point) error {
	g := make(map[Point]int, len(got))
	for _, f := range got {
		g[Point{Sig: f.Sig, Vertex: f.Vertex}]++
	}
	w := make(map[Point]int, len(want))
	for _, p := range want {
		w[p]++
	}
	var lines []string
	for p, n := range g {
		switch {
		case n > 1:
			lines = append(lines, fmt.Sprintf("solver frontier repeats %s ×%d", fmtPoint(p), n))
		case w[p] == 0:
			lines = append(lines, fmt.Sprintf("solver has spurious %s", fmtPoint(p)))
		}
	}
	for p, n := range w {
		switch {
		case n > 1:
			lines = append(lines, fmt.Sprintf("oracle frontier repeats %s ×%d", fmtPoint(p), n))
		case g[p] == 0:
			lines = append(lines, fmt.Sprintf("solver misses %s", fmtPoint(p)))
		}
	}
	if len(lines) == 0 {
		return nil
	}
	sort.Strings(lines)
	return fmt.Errorf("frontier mismatch (%d solver vs %d oracle points):\n  %s",
		len(got), len(want), strings.Join(lines, "\n  "))
}

func fmtPoint(p Point) string {
	return fmt.Sprintf("v%d cost=%v D=%v TC=%v W=%d R=%v Branch=%d Peak=%d",
		p.Vertex, p.Sig.Cost, p.Sig.D, p.Sig.TC, p.Sig.W, p.Sig.R, p.Sig.Branch, p.Sig.Peak)
}
