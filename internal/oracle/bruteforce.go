// Package oracle is the correctness oracle for the replication engine:
// independent, brutally simple reference implementations that the
// optimized subsystems are differentially tested against.
//
// Three checkers live here:
//
//   - a brute-force fanin-tree embedder (this file) that enumerates
//     every embedding of a small tree into a small graph and returns
//     the true non-dominated frontier, cross-checked for exact
//     equality against embed.Problem.Solve;
//   - a simulation-based functional-equivalence checker (equiv.go)
//     proving a post-replication netlist computes the same function as
//     the original;
//   - a structural/placement invariant checker (invariants.go) for
//     full core.Engine runs.
//
// Everything is written for clarity over speed and shares no pruning,
// scheduling or scratch machinery with the code under test. The
// embedder is exponential by design and guarded by explicit size caps;
// instances come from the seeded generators in gen.go, which emit only
// dyadic-rational values (multiples of 1/4) so every float sum the
// solver performs is exact and frontier comparison can demand bitwise
// equality.
package oracle

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/embed"
)

// Point is one point of the oracle's frontier: a root signature and the
// vertex the root was placed at (meaningful for free-root problems,
// where per-vertex curves are kept).
type Point struct {
	Sig    embed.Sig
	Vertex embed.Vertex
}

// Enumeration guards: the oracle refuses instances whose exhaustive
// expansion would exceed these bounds rather than silently sampling.
const (
	maxAssignments   = 1 << 16 // internal-node placement assignments
	maxRoutesPerPair = 1 << 14 // simple paths between one vertex pair
	maxSigsPerNode   = 1 << 18 // partial signatures within one assignment
)

// Frontier exhaustively enumerates every embedding of p.T into p.G —
// every assignment of internal nodes to vertices, every simple-path
// route per tree edge, and every branch-resetting closed-walk route at
// a shared vertex — evaluates each with an independent implementation
// of the signature algebra, and returns the canonical non-dominated
// frontier. For a fixed root the result is the minimal antichain at the
// root vertex; for a free root, the per-vertex minimal antichains of
// every root location (mirroring Solve's FF-relocation contract).
//
// The problem must be in exact mode: MaxPerVertex == 0 (the per-vertex
// cap plus delay quantum deliberately trade exactness for speed and
// have no ground truth to compare against).
func Frontier(p *embed.Problem) ([]Point, error) {
	if p.MaxPerVertex != 0 {
		return nil, fmt.Errorf("oracle: MaxPerVertex %d is inexact mode; oracle requires 0", p.MaxPerVertex)
	}
	if err := p.T.Validate(p.G.NumVertices()); err != nil {
		return nil, err
	}
	if rv := p.T.Nodes[p.T.Root].Vertex; rv >= 0 && p.G.Blocked(rv) {
		// A join places a new gate, and blocked vertices host no new
		// gates: a root pinned to one is infeasible. (Free internals
		// already range over unblocked spots only.)
		return nil, nil
	}
	b := &brute{p: p, routes: make(map[routeKey][]route)}

	// Free placements: every internal node except a fixed root ranges
	// over all unblocked vertices.
	var free []embed.NodeID
	for id := range p.T.Nodes {
		n := &p.T.Nodes[id]
		if n.IsLeaf() {
			continue
		}
		if embed.NodeID(id) == p.T.Root && n.Vertex >= 0 {
			continue
		}
		free = append(free, embed.NodeID(id))
	}
	var spots []embed.Vertex
	for v := 0; v < p.G.NumVertices(); v++ {
		if !p.G.Blocked(embed.Vertex(v)) {
			spots = append(spots, embed.Vertex(v))
		}
	}
	total := 1
	for range free {
		total *= len(spots)
		if total > maxAssignments {
			return nil, fmt.Errorf("oracle: %d^%d assignments exceed cap %d",
				len(spots), len(free), maxAssignments)
		}
	}

	assign := make([]embed.Vertex, len(p.T.Nodes))
	for id := range p.T.Nodes {
		assign[id] = p.T.Nodes[id].Vertex // leaves and a fixed root
	}
	byVertex := make(map[embed.Vertex][]embed.Sig)
	var enumerate func(i int) error
	enumerate = func(i int) error {
		if i == len(free) {
			sols, err := b.subSols(p.T.Root, assign)
			if err != nil {
				return err
			}
			rv := assign[p.T.Root]
			byVertex[rv] = append(byVertex[rv], sols...)
			return nil
		}
		for _, v := range spots {
			assign[free[i]] = v
			if err := enumerate(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := enumerate(0); err != nil {
		return nil, err
	}

	rootFree := p.T.Nodes[p.T.Root].Vertex < 0
	var out []Point
	for _, v := range sortedVertices(byVertex) {
		for _, s := range pruneCanonical(p.Mode, byVertex[v]) {
			out = append(out, Point{Sig: s, Vertex: v})
		}
	}
	if !rootFree {
		// Fixed root: everything sits at one vertex, already canonical.
		return out, nil
	}
	// Free root: per-vertex curves are kept; cross-vertex dominance is
	// legitimate and deliberately not applied (Solve keeps it too).
	return out, nil
}

// brute carries the memoized route sets of one enumeration.
type brute struct {
	p *embed.Problem
	// routes caches the pareto-reduced simple-path route set per
	// routeKey; the to==from entry holds the branch-resetting closed
	// walks (the trivial stay-put route is handled separately because
	// it preserves Branch).
	routes map[routeKey][]route
}

// routeKey identifies one memoized route set. startR matters because
// Elmore delay is load-dependent: a route's delay from resistance R0 is
// delay(0) + R0·length, so which of two routes is faster can flip
// between a leaf child (R0 = 0) and a joined child (R0 = GateR) — the
// pareto reduction must happen per start-resistance class.
type routeKey struct {
	from, to embed.Vertex
	startR   float64
}

// route is one wire route: the edge sequence walked from the child's
// vertex, plus its evaluated cost/delay effect used for the pareto
// reduction (valid because instances are dyadic-exact, so the
// sequential sums the signature algebra performs equal these totals).
type route struct {
	edges []embed.Edge
	cost  float64
	delay float64
}

// subSols returns every signature of the subtree rooted at id under the
// given assignment, joined at assign[id] — the oracle's independent
// evaluation of the paper's Join: child solutions are routed to the
// join vertex, cross-producted pairwise in child order, then charged
// the placement cost and gate delay. No intermediate pruning happens;
// dominated candidates die only at the root, which is what makes this
// an oracle rather than a second DP.
func (b *brute) subSols(id embed.NodeID, assign []embed.Vertex) ([]embed.Sig, error) {
	n := &b.p.T.Nodes[id]
	v := assign[id]
	pc := 0.0
	if b.p.PlaceCost != nil {
		pc = b.p.PlaceCost(id, v)
	}
	if math.IsInf(pc, 1) {
		return nil, nil
	}
	var combos []embed.Sig
	for ci, c := range n.Children {
		var childAt []embed.Sig
		if cn := &b.p.T.Nodes[c]; cn.IsLeaf() {
			childAt = []embed.Sig{leafSig(b.p.Mode, cn.Arr, cn.Critical)}
		} else {
			sub, err := b.subSols(c, assign)
			if err != nil {
				return nil, err
			}
			childAt = sub
		}
		startR := 0.0
		if b.p.Mode.Delay == embed.ElmoreDelay && !b.p.T.Nodes[c].IsLeaf() {
			startR = b.p.Mode.GateR // the gate drives the route
		}
		routed, err := b.routed(childAt, assign[c], v, startR)
		if err != nil {
			return nil, err
		}
		if len(routed) == 0 {
			return nil, nil // child cannot reach the join vertex
		}
		if ci == 0 {
			combos = routed
			continue
		}
		next := make([]embed.Sig, 0, len(combos)*len(routed))
		for i := range combos {
			for j := range routed {
				next = append(next, mergeSigs(b.p.Mode, &combos[i], &routed[j]))
			}
		}
		combos = next
		if len(combos) > maxSigsPerNode {
			return nil, fmt.Errorf("oracle: %d partial signatures at node %d exceed cap %d",
				len(combos), id, maxSigsPerNode)
		}
	}
	out := make([]embed.Sig, 0, len(combos))
	for i := range combos {
		s := finishJoinSig(b.p.Mode, combos[i], pc, n.Intrinsic)
		if b.p.Mode.OverlapControl {
			cap := 1
			if b.p.Capacity != nil {
				cap = b.p.Capacity(v)
			}
			if int(s.Branch) > cap {
				continue // join would overfill the slot
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// routed applies every route from cv to v to every signature in sols.
// At cv == v the trivial route (stay put, Branch preserved — the
// signal is consumed where it is produced) joins the closed walks,
// which leave and return to cv, resetting Branch to 0 at the price of
// wire cost and delay. Those walks are what the wavefront finds when a
// smaller Branch (hence smaller future Peak, or overlap-control
// feasibility) is worth paying for; omitting them is the classic way
// to build a subtly wrong oracle.
func (b *brute) routed(sols []embed.Sig, cv, v embed.Vertex, startR float64) ([]embed.Sig, error) {
	routes, err := b.routesBetween(cv, v, startR)
	if err != nil {
		return nil, err
	}
	var out []embed.Sig
	if cv == v {
		out = append(out, sols...) // trivial route
	}
	for _, rt := range routes {
		for i := range sols {
			out = append(out, applyRoute(b.p.Mode, sols[i], rt.edges))
		}
	}
	return out, nil
}

// routesBetween returns the pareto-reduced route set from u to w: all
// simple paths (u != w) or all simple closed walks (u == w), reduced on
// evaluated (cost, delay) — a route both costlier and slower than
// another yields dominated signatures whatever it is applied to, since
// every route here lands in the same Branch class (0). Routes may not
// enter a blocked vertex; starting at one is fine (a leaf may sit on a
// blocked slot), which also means no closed walk exists at a blocked
// vertex — the return step would enter it.
func (b *brute) routesBetween(u, w embed.Vertex, startR float64) ([]route, error) {
	key := routeKey{from: u, to: w, startR: startR}
	if rs, ok := b.routes[key]; ok {
		return rs, nil
	}
	g := b.p.G
	var all []route
	visited := make([]bool, g.NumVertices())
	var edges []embed.Edge
	var walk func(at embed.Vertex) error
	walk = func(at embed.Vertex) error {
		if at == w && len(edges) > 0 {
			all = append(all, route{edges: append([]embed.Edge(nil), edges...)})
			if len(all) > maxRoutesPerPair {
				return fmt.Errorf("oracle: routes %d->%d exceed cap %d", u, w, maxRoutesPerPair)
			}
			return nil // extending past the target only builds dominated walks
		}
		for _, e := range g.Adj(at) {
			if g.Blocked(e.To) {
				continue
			}
			// A closed walk may end at u; anything else must be simple.
			if visited[e.To] && !(e.To == w && u == w) {
				continue
			}
			was := visited[e.To]
			visited[e.To] = true
			edges = append(edges, e)
			err := walk(e.To)
			edges = edges[:len(edges)-1]
			visited[e.To] = was
			if err != nil {
				return err
			}
		}
		return nil
	}
	visited[u] = true
	if err := walk(u); err != nil {
		return nil, err
	}
	for i := range all {
		all[i].cost, all[i].delay = evalRoute(b.p.Mode, all[i].edges, startR)
	}
	rs := paretoRoutes(all)
	b.routes[key] = rs
	return rs, nil
}

// evalRoute computes a route's cost and delay contribution when walked
// from stem/resistance state startR, by probing the route with a fresh
// zero-arrival signature.
func evalRoute(m embed.Mode, edges []embed.Edge, startR float64) (cost, delay float64) {
	var s embed.Sig
	s.R = startR
	for i := 1; i < embed.MaxLex; i++ {
		s.D[i] = math.Inf(-1)
	}
	s = applyRoute(m, s, edges)
	return s.Cost, s.D[0]
}

// paretoRoutes keeps the routes not worsened in both cost and delay by
// another; exact ties keep the first (identical effects yield identical
// signatures).
func paretoRoutes(in []route) []route {
	sort.Slice(in, func(i, j int) bool {
		if in[i].cost != in[j].cost {
			return in[i].cost < in[j].cost
		}
		return in[i].delay < in[j].delay
	})
	var out []route
	for _, r := range in {
		dominated := false
		for _, k := range out {
			if k.cost <= r.cost && k.delay <= r.delay {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, r)
		}
	}
	return out
}

// sortedVertices returns the map's keys in ascending order, the
// deterministic iteration order frontier assembly requires.
func sortedVertices(m map[embed.Vertex][]embed.Sig) []embed.Vertex {
	keys := make([]embed.Vertex, 0, len(m))
	for v := range m {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
