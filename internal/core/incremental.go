// Verification and fingerprinting glue for the incremental engine.
//
// The incremental machinery (dirty-region STA, SPT patching, frontier
// memoization) is exact by construction: every cached or patched value
// must be Float64bits-identical to the from-scratch computation. The
// verify* helpers here enforce that claim at runtime when
// Config.VerifyIncremental is set, by re-deriving each artifact the
// slow way and failing the run on the first bitwise divergence — this
// is the oracle hook the differential harness and CI cross-checks use.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/embed"
	"repro/internal/netlist"
	"repro/internal/rtree"
	"repro/internal/timing"
)

// verifyAnalysis re-runs full STA over the current state and demands
// bitwise agreement with the incremental result. The incremental
// arrays may be longer than the fresh ones (they grow with netlist
// capacity and survive restores to smaller clones); the comparison
// covers the fresh analysis's full range, which spans every cell the
// current netlist can name.
func (e *Engine) verifyAnalysis(ctx context.Context, a *timing.Analysis) error {
	full, err := timing.AnalyzeWorkersCtx(ctx, e.Netlist, e.Placement, e.Delay, e.Config.Parallelism)
	if err != nil {
		return err
	}
	if math.Float64bits(a.Period) != math.Float64bits(full.Period) || a.CritSink != full.CritSink {
		return fmt.Errorf("core: incremental STA diverged: period %v@%d, full %v@%d",
			a.Period, a.CritSink, full.Period, full.CritSink)
	}
	if math.Float64bits(a.SecondArr) != math.Float64bits(full.SecondArr) || a.SecondSink != full.SecondSink {
		return fmt.Errorf("core: incremental STA diverged: second %v@%d, full %v@%d",
			a.SecondArr, a.SecondSink, full.SecondArr, full.SecondSink)
	}
	if len(a.Order) != len(full.Order) {
		return fmt.Errorf("core: incremental STA order length %d, full %d", len(a.Order), len(full.Order))
	}
	for i := range full.Order {
		if a.Order[i] != full.Order[i] {
			return fmt.Errorf("core: incremental STA order diverged at %d: %d vs %d", i, a.Order[i], full.Order[i])
		}
	}
	if len(a.Arr) < len(full.Arr) {
		return fmt.Errorf("core: incremental STA arrays shorter than full: %d < %d", len(a.Arr), len(full.Arr))
	}
	for i := range full.Arr {
		if math.Float64bits(a.Arr[i]) != math.Float64bits(full.Arr[i]) {
			return fmt.Errorf("core: incremental Arr[%d] = %v, full %v", i, a.Arr[i], full.Arr[i])
		}
		if math.Float64bits(a.SinkArr[i]) != math.Float64bits(full.SinkArr[i]) {
			return fmt.Errorf("core: incremental SinkArr[%d] = %v, full %v", i, a.SinkArr[i], full.SinkArr[i])
		}
		if math.Float64bits(a.Down[i]) != math.Float64bits(full.Down[i]) {
			return fmt.Errorf("core: incremental Down[%d] = %v, full %v", i, a.Down[i], full.Down[i])
		}
		if math.Float64bits(a.Through[i]) != math.Float64bits(full.Through[i]) {
			return fmt.Errorf("core: incremental Through[%d] = %v, full %v", i, a.Through[i], full.Through[i])
		}
	}
	return nil
}

// verifySPT demands the patched tree equal a from-scratch build, key
// set and bit pattern alike.
func verifySPT(got, want *timing.SPT) error {
	if got.Sink != want.Sink {
		return fmt.Errorf("core: patched SPT sink %d, rebuilt %d", got.Sink, want.Sink)
	}
	if math.Float64bits(got.SinkArr) != math.Float64bits(want.SinkArr) {
		return fmt.Errorf("core: patched SPT sink arrival %v, rebuilt %v", got.SinkArr, want.SinkArr)
	}
	if len(got.Parent) != len(want.Parent) {
		return fmt.Errorf("core: patched SPT has %d parents, rebuilt %d", len(got.Parent), len(want.Parent))
	}
	// Visit keys in sorted order so a mismatch always names the same
	// offender, keeping verify-mode failures comparable across runs.
	for _, u := range sortedKeys(want.Parent) {
		p := want.Parent[u]
		if gp, ok := got.Parent[u]; !ok || gp != p {
			return fmt.Errorf("core: patched SPT parent[%d] = %d, rebuilt %d", u, gp, p)
		}
	}
	if len(got.PathThrough) != len(want.PathThrough) {
		return fmt.Errorf("core: patched SPT has %d path-throughs, rebuilt %d", len(got.PathThrough), len(want.PathThrough))
	}
	for _, u := range sortedKeys(want.PathThrough) {
		pt := want.PathThrough[u]
		gpt, ok := got.PathThrough[u]
		if !ok || math.Float64bits(gpt) != math.Float64bits(pt) {
			return fmt.Errorf("core: patched SPT pathThrough[%d] = %v, rebuilt %v", u, gpt, pt)
		}
	}
	return nil
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[netlist.CellID]V) []netlist.CellID {
	keys := make([]netlist.CellID, 0, len(m))
	for u := range m {
		keys = append(keys, u)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// verifyFrontier re-solves the freshly constructed problem and demands
// the cached frontier match it point for point.
func (e *Engine) verifyFrontier(ctx context.Context, prob *embed.Problem, cached *embed.Result) error {
	fresh, err := prob.SolveContext(ctx)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return fmt.Errorf("core: cached frontier hit but fresh solve infeasible: %w", err)
	}
	if len(cached.Frontier) != len(fresh.Frontier) {
		return fmt.Errorf("core: cached frontier has %d points, fresh %d", len(cached.Frontier), len(fresh.Frontier))
	}
	for i := range fresh.Frontier {
		c, f := &cached.Frontier[i], &fresh.Frontier[i]
		if c.Vertex != f.Vertex {
			return fmt.Errorf("core: frontier[%d] vertex %d, fresh %d", i, c.Vertex, f.Vertex)
		}
		if err := sigEqual(c.Sig, f.Sig); err != nil {
			return fmt.Errorf("core: frontier[%d] %w", i, err)
		}
	}
	return nil
}

// sigEqual compares two solution signatures bit for bit.
func sigEqual(a, b embed.Sig) error {
	if math.Float64bits(a.Cost) != math.Float64bits(b.Cost) {
		return fmt.Errorf("cost %v vs %v", a.Cost, b.Cost)
	}
	for k := range a.D {
		if math.Float64bits(a.D[k]) != math.Float64bits(b.D[k]) {
			return fmt.Errorf("D[%d] %v vs %v", k, a.D[k], b.D[k])
		}
	}
	if math.Float64bits(a.TC) != math.Float64bits(b.TC) || a.W != b.W {
		return fmt.Errorf("TC/W %v/%d vs %v/%d", a.TC, a.W, b.TC, b.W)
	}
	if math.Float64bits(a.R) != math.Float64bits(b.R) {
		return fmt.Errorf("R %v vs %v", a.R, b.R)
	}
	if a.Branch != b.Branch || a.Peak != b.Peak {
		return fmt.Errorf("branch/peak %d/%d vs %d/%d", a.Branch, a.Peak, b.Branch, b.Peak)
	}
	return nil
}

// embedFingerprint folds every input the embedding DP reads into a
// deterministic 128-bit key: the window graph (geometry, blocked
// flags, edge cost/delay bits — congestion multipliers included), the
// extracted tree (structure, pinned leaf vertices, arrival bits), the
// signature mode and solver limits, and the placement-cost inputs the
// PlaceCost closure would consult — slot legality, capacity, usage,
// occupant equivalence classes per window location, plus each tree
// cell's own class, fanout, and the root's current location. Two
// iterations with equal fingerprints hand the solver bitwise-identical
// inputs, so the memoized frontier is exact. Parallelism is excluded:
// the solver's results are bit-identical at any worker count.
func (e *Engine) embedFingerprint(g *embed.Graph, ep *rtree.EmbedProblem, rootFree bool, quantum float64) embed.Fingerprint {
	h := embed.NewHasher()
	g.Fingerprint(&h)
	ep.Tree.Fingerprint(&h)
	e.Config.Mode.Fingerprint(&h)
	h.Int(e.Config.MaxPerVertex)
	h.F64(quantum)
	h.Bool(rootFree)
	h.F64(e.Config.FreeSlotCost)
	h.F64(e.Config.OccupiedSlotCost)
	h.F64(e.Config.ReplicationPenalty)
	h.F64(e.Config.FanoutOneFactor)

	// Placement state inside the window, in vertex order: everything
	// congestion() and the equivalence discount can read.
	f := e.Placement.FPGA()
	for v := 0; v < g.NumVertices(); v++ {
		loc := g.LocOf(embed.Vertex(v))
		h.Bool(f.IsLogic(loc))
		h.Int(f.Capacity(loc))
		occ := e.Placement.At(loc)
		h.Int(len(occ))
		for _, id := range occ {
			h.Int(int(e.Netlist.Cell(id).Equiv))
		}
	}

	// Per-node cell identity: equivalence class and fanout drive the
	// discount and the fanout-one penalty; node-to-cell binding beyond
	// that is irrelevant to the DP.
	for _, cell := range ep.NodeCell {
		c := e.Netlist.Cell(cell)
		h.Int(int(c.Equiv))
		if c.Out == netlist.None {
			h.Int(-1)
		} else {
			h.Int(len(e.Netlist.Net(c.Out).Sinks))
		}
	}
	rootLoc := e.Placement.Loc(ep.NodeCell[ep.Tree.Root])
	h.Int(int(rootLoc.X))
	h.Int(int(rootLoc.Y))
	return h.Sum()
}
