// Package core is the paper's optimization engine: the main loop of
// Fig. 11 that repeatedly identifies the critical sink, extracts a
// replication tree from the ε-SPT, embeds it with the timing-driven
// fanin-tree embedder, applies the chosen solution to the netlist and
// placement (replicating, relocating, or implicitly unifying cells),
// post-processes unifications, and legalizes — while dynamically
// growing ε on non-improvement and relocating critical FFs
// (Sections IV, V, and VI).
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/embed"
	"repro/internal/legal"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/rtree"
	"repro/internal/timing"
)

// Config tunes the engine. Zero values select the paper's defaults via
// Default().
type Config struct {
	// Mode selects the embedding signature: plain RT-Embedding
	// (LexDepth 1), Lex-2..Lex-5, or Lex-mc.
	Mode embed.Mode
	// MaxIters bounds the optimization loop.
	MaxIters int
	// Patience stops the loop after this many consecutive iterations
	// without clock-period improvement.
	Patience int
	// EpsStep is the ε increment, as a fraction of the current period,
	// applied when an iteration fails to improve (Section V-B).
	EpsStep float64
	// MaxTreeInternal caps replication-tree size (the paper observed
	// trees "up to almost a thousand cells").
	MaxTreeInternal int
	// WindowMargin pads the embedding window around the tree's
	// bounding box, in slots.
	WindowMargin int
	// MaxPerVertex / DelayQuantumFrac bound the embedder's per-vertex
	// solution lists on large instances (0 = exact).
	MaxPerVertex     int
	DelayQuantumFrac float64
	// FreeSlotCost, OccupiedSlotCost, ReplicationPenalty, and
	// FanoutOneFactor shape the placement cost p_ij (Section II-A):
	// free slots are cheap, occupied slots congested, creating a new
	// cell costs extra, and fanout-1 cells are discounted everywhere
	// since "no actual replication will ever occur".
	FreeSlotCost       float64
	OccupiedSlotCost   float64
	ReplicationPenalty float64
	FanoutOneFactor    float64
	// AggressiveUnify reassigns fanouts to new replicas whenever doing
	// so does not violate the current critical delay, not only when it
	// strictly improves arrival (Section VII-B).
	AggressiveUnify bool
	// FFRelocation allows moving a registered-LUT sink when it is the
	// bottleneck (Section V-D).
	FFRelocation bool
	// MaxDrift is the fraction by which the working solution may
	// degrade past the best before the engine resets to the best
	// snapshot (exploration headroom).
	MaxDrift float64
	// LexCostSlackFrac/Abs bound the extra embedding cost the Lex
	// modes may spend on subcritical-path speed beyond the cheapest
	// fast-enough solution.
	LexCostSlackFrac float64
	LexCostSlackAbs  float64
	// WireCongestion, when non-nil, biases the embedding graph's wire
	// costs by actual routing-channel occupancy — the Section VIII
	// improvement ("use the actual channel occupancy to assign wire
	// costs in the embedding graph... the embedder is biased to place
	// cells in regions with smaller wire utilization"). Values are
	// per-tile net counts, e.g. route.Result.TileUsage.
	WireCongestion map[arch.Loc]int
	// WireCongestionWeight scales that bias (cost per net of
	// occupancy, in wire-cost units).
	WireCongestionWeight float64
	// Parallelism bounds worker goroutines in the embedder's join
	// phase and the levelized STA. 1 forces the exact serial path;
	// results are bit-identical at any setting.
	Parallelism int
	// Incremental enables the dirty-region iteration engine: STA
	// re-propagates only through cones affected since the previous
	// analysis, slowest-paths trees are patched instead of rebuilt,
	// and solved embedding frontiers are reused when extraction
	// reproduces a bitwise-identical problem. Results are
	// Float64bits-identical to the full path at any setting.
	Incremental bool
	// IncrementalMaxDirtyFrac is the dirty-frontier threshold (as a
	// fraction of live cells) past which an incremental STA update
	// falls back to the full analyzer; 0 selects the default.
	IncrementalMaxDirtyFrac float64
	// VerifyIncremental cross-checks every incremental result — STA
	// updates, patched SPTs, and frontier-cache hits — against the
	// from-scratch computation, failing the run on any Float64bits
	// difference. Debug/CI mode: it costs more than disabling
	// Incremental entirely.
	VerifyIncremental bool
	// FrontierCacheSize bounds the embedding-frontier cache (entries);
	// 0 selects the default.
	FrontierCacheSize int
}

// Default returns the configuration used in the paper's experiments.
func Default() Config {
	return Config{
		Mode:                 embed.Mode{LexDepth: 1, Delay: embed.LinearDelay},
		MaxIters:             400,
		Patience:             40,
		EpsStep:              0.05,
		MaxTreeInternal:      1000,
		WindowMargin:         4,
		MaxPerVertex:         8,
		DelayQuantumFrac:     0.005,
		FreeSlotCost:         0.2,
		OccupiedSlotCost:     3.0,
		ReplicationPenalty:   4.0,
		FanoutOneFactor:      0.25,
		AggressiveUnify:      true,
		FFRelocation:         true,
		MaxDrift:             0.02,
		LexCostSlackFrac:     0.25,
		LexCostSlackAbs:      3.0,
		WireCongestionWeight: 0.1,
		Parallelism:          runtime.GOMAXPROCS(0),
		Incremental:          true,
	}
}

// IterStat records one iteration for the Fig. 14 replication/
// unification statistics.
type IterStat struct {
	Iter       int
	Period     float64
	Replicated int // cumulative cells created by replication
	Unified    int // cumulative cells removed by unification
}

// PhaseTimes accumulates wall-clock seconds per engine phase across a
// run. The split follows the Fig. 11 loop: STA (analyze), ε-SPT /
// replication-tree construction (extract), the embedding DP plus
// solution selection (embed), netlist+placement mutation and
// unification (apply), and timing-driven legalization (legalize).
// Serving layers surface these as per-job breakdowns.
//
//replint:metadata -- wall-clock telemetry by design; no solver decision reads it
type PhaseTimes struct {
	Analyze  float64 `json:"analyze"`
	Extract  float64 `json:"extract"`
	Embed    float64 `json:"embed"`
	Apply    float64 `json:"apply"`
	Legalize float64 `json:"legalize"`
}

// Total sums all phase timings.
func (p PhaseTimes) Total() float64 {
	return p.Analyze + p.Extract + p.Embed + p.Apply + p.Legalize
}

// Stats summarizes an engine run.
type Stats struct {
	Iterations    int
	Replicated    int
	Unified       int
	FFRelocations int
	InitialPeriod float64
	FinalPeriod   float64
	PerIter       []IterStat
	// StoppedEarly notes termination due to exhausted free slots, the
	// condition the paper reports for ex5p, apex4, seq, spla, ex1010.
	StoppedEarly bool
	// Phases breaks the run's wall time down by engine phase.
	Phases PhaseTimes
	// Incremental reports what the incremental engine reused versus
	// recomputed (zero when Config.Incremental is off).
	Incremental IncrementalStats
}

// IncrementalStats aggregates the incremental engine's counters across
// one run: the dirty-region STA, the SPT cache, and the
// embedding-frontier cache. Serving layers surface these per job.
//
//replint:metadata -- reuse telemetry by design; no solver decision reads it
type IncrementalStats struct {
	// Dirty-region STA: incremental updates applied, full recomputes
	// (first pass + fallbacks), threshold fallbacks, cumulative dirty
	// seeds, cells re-propagated by each pass, and the largest
	// single-update dirty cone.
	STAUpdates       int `json:"sta_updates"`
	STAFullRuns      int `json:"sta_full_runs"`
	STAFallbacks     int `json:"sta_fallbacks"`
	STASeeds         int `json:"sta_seeds"`
	STACellsForward  int `json:"sta_cells_forward"`
	STACellsBackward int `json:"sta_cells_backward"`
	STAMaxDirty      int `json:"sta_max_dirty"`
	// SPT cache: trees served unchanged, patched in place, or rebuilt,
	// and the cumulative cone cells touched by patch sweeps.
	SPTHits         int `json:"spt_hits"`
	SPTPatches      int `json:"spt_patches"`
	SPTRebuilds     int `json:"spt_rebuilds"`
	SPTPatchedCells int `json:"spt_patched_cells"`
	// Embedding-frontier cache hits and misses.
	FrontierHits   int `json:"frontier_hits"`
	FrontierMisses int `json:"frontier_misses"`
}

// Engine drives placement-coupled replication on one design.
type Engine struct {
	Netlist   *netlist.Netlist
	Placement *placement.Placement
	Delay     arch.DelayModel
	Config    Config

	leg *legal.Legalizer

	// Incremental machinery (nil when Config.Incremental is off):
	// the dirty-region STA engine, the SPT cache driven by its change
	// generations, and the embedding-frontier cache.
	inc  *timing.Incremental
	sptc *timing.SPTCache
	emc  *embed.Cache

	// ctx and phases are live only inside RunContext: the run's
	// cancellation context and the Stats phase accumulator.
	ctx    context.Context
	phases *PhaseTimes

	eps        float64
	lastSink   netlist.CellID
	dryAtSink  int
	bestPeriod float64
	bestNL     *netlist.Netlist
	bestPL     *placement.Placement
}

// New returns an engine over the given placed design. The placement
// must be legal and complete.
func New(nl *netlist.Netlist, pl *placement.Placement, dm arch.DelayModel, cfg Config) *Engine {
	return &Engine{
		Netlist:   nl,
		Placement: pl,
		Delay:     dm,
		Config:    cfg,
		leg:       legal.New(),
		lastSink:  netlist.None,
	}
}

// Run executes the optimization loop and leaves the engine's netlist
// and placement at the best solution encountered.
func (e *Engine) Run() (*Stats, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run under a context: cancellation (deadline or caller
// cancel) is checked at every iteration boundary and threaded into the
// STA and the embedding DP, so a cancelled run stops promptly even in
// the middle of a large wavefront instead of orphaning its workers.
// On cancellation it returns (nil, ctx.Err()); the engine's netlist
// and placement are left at a consistent (pre-iteration or
// best-snapshot) state but should be considered abandoned.
func (e *Engine) RunContext(ctx context.Context) (*Stats, error) {
	st := &Stats{}
	e.ctx = ctx
	e.phases = &st.Phases
	defer func() { e.ctx, e.phases = nil, nil }()
	// A repeated Run on the same engine (re-optimization after the
	// caller perturbed the design) is a fresh Fig. 11 flow: the ε
	// schedule restarts from zero exactly as on a new engine. The
	// incremental caches deliberately survive — their diff/generation
	// tracking absorbs whatever the caller changed in between.
	e.eps, e.lastSink, e.dryAtSink = 0, netlist.None, 0
	a, err := e.analyze()
	if err != nil {
		return nil, err
	}
	st.InitialPeriod = a.Period
	e.bestPeriod = a.Period
	e.snapshot()

	dry := 0
	improvedLast := true
	for iter := 0; iter < e.Config.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		preNL, prePL, prePeriod := e.Netlist, e.Placement, a.Period
		e.Netlist = preNL.Clone()
		e.Placement = prePL.Clone()
		stop, err := e.iterate(a, st, improvedLast)
		if err != nil {
			return nil, err
		}
		st.Iterations = iter + 1
		if stop {
			st.StoppedEarly = true
			break
		}
		a, err = e.analyze()
		if err != nil {
			return nil, err
		}
		if a.Period > prePeriod*(1+e.Config.MaxDrift) {
			// The iteration's collateral damage (usually dense-design
			// legalization) exceeded the exploration allowance:
			// discard it entirely rather than optimize from a damaged
			// state. ε still grows on the non-improvement, so the
			// next attempt differs.
			e.Netlist, e.Placement = preNL, prePL
			a, err = e.analyze()
			if err != nil {
				return nil, err
			}
		}
		st.PerIter = append(st.PerIter, IterStat{
			Iter:       iter,
			Period:     a.Period,
			Replicated: st.Replicated,
			Unified:    st.Unified,
		})
		// Improvement is judged on the measured clock period against
		// the best seen — not the embedder's prediction, which
		// legalization and side paths can eat. States matching the
		// best period also refresh the snapshot: period-neutral
		// mutations (Lex subcritical over-optimization, intermediate
		// replication) are what enable later gains, and the paper's
		// flow continues from them rather than reverting.
		improvedLast = a.Period < e.bestPeriod-1e-9
		if a.Period < e.bestPeriod+1e-9 {
			e.bestPeriod = math.Min(a.Period, e.bestPeriod)
			e.snapshot()
		}
		if improvedLast {
			dry = 0
		} else {
			dry++
			if dry >= e.Config.Patience {
				break
			}
			// Mild degradation is allowed to persist — intermediate
			// solutions can enable otherwise unachievable quality
			// (Section V-D) — but runaway drift resets to the best
			// state.
			if a.Period > e.bestPeriod*(1+e.Config.MaxDrift) {
				e.restoreBest()
				a, err = e.analyze()
				if err != nil {
					return nil, err
				}
			}
		}
	}
	e.restoreBest()
	final, err := e.analyze()
	if err != nil {
		return nil, err
	}
	st.FinalPeriod = final.Period
	e.harvestIncremental(st)
	return st, nil
}

// analyze runs STA over the engine's current state with the
// configured worker count, under the run's context. With
// Config.Incremental it routes through the dirty-region analyzer,
// which diffs the state against the previous call and re-propagates
// only the affected cones; VerifyIncremental additionally re-derives
// the analysis from scratch and demands bitwise agreement.
func (e *Engine) analyze() (*timing.Analysis, error) {
	ctx := e.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	defer e.timePhase(func(p *PhaseTimes) *float64 { return &p.Analyze })()
	if !e.Config.Incremental {
		return timing.AnalyzeWorkersCtx(ctx, e.Netlist, e.Placement, e.Delay, e.Config.Parallelism)
	}
	e.ensureIncremental()
	a, err := e.inc.Analyze(ctx, e.Netlist, e.Placement)
	if err != nil {
		return nil, err
	}
	if e.Config.VerifyIncremental {
		if err := e.verifyAnalysis(ctx, a); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// ensureIncremental lazily constructs the incremental machinery, so
// Config.Incremental may be set any time before the first analysis.
func (e *Engine) ensureIncremental() {
	if e.inc != nil {
		return
	}
	e.inc = timing.NewIncremental(e.Delay, e.Config.Parallelism)
	e.inc.MaxDirtyFrac = e.Config.IncrementalMaxDirtyFrac
	e.sptc = timing.NewSPTCache(e.inc, 0)
	e.emc = embed.NewCache(e.Config.FrontierCacheSize)
}

// harvestIncremental copies the incremental engine's counters into the
// run's stats.
func (e *Engine) harvestIncremental(st *Stats) {
	if e.inc == nil {
		return
	}
	is := &st.Incremental
	is.STAUpdates = e.inc.Stats.Updates
	is.STAFullRuns = e.inc.Stats.FullRuns
	is.STAFallbacks = e.inc.Stats.Fallbacks
	is.STASeeds = e.inc.Stats.Seeds
	is.STACellsForward = e.inc.Stats.CellsForward
	is.STACellsBackward = e.inc.Stats.CellsBackward
	is.STAMaxDirty = e.inc.Stats.MaxDirty
	is.SPTHits = e.sptc.Stats.Hits
	is.SPTPatches = e.sptc.Stats.Patches
	is.SPTRebuilds = e.sptc.Stats.Rebuilds
	is.SPTPatchedCells = e.sptc.Stats.PatchedCells
	is.FrontierHits = e.emc.Stats.Hits
	is.FrontierMisses = e.emc.Stats.Misses
}

// timePhase starts a wall-clock measurement charged to the phase field
// selected by sel; the returned func stops it. No-op outside a run.
func (e *Engine) timePhase(sel func(*PhaseTimes) *float64) func() {
	if e.phases == nil {
		return func() {}
	}
	acc := sel(e.phases)
	t0 := time.Now()
	return func() { *acc += time.Since(t0).Seconds() }
}

// snapshot saves the current netlist and placement as the best seen.
func (e *Engine) snapshot() {
	e.bestNL = e.Netlist.Clone()
	e.bestPL = e.Placement.Clone()
}

// restoreBest reinstates the best snapshot ("we save the best solution
// seen until this point so that we can always report the best solution
// encountered", Section V-D).
func (e *Engine) restoreBest() {
	e.Netlist = e.bestNL.Clone()
	e.Placement = e.bestPL.Clone()
}

// coreDebug enables iterate tracing for development probes.
var coreDebug = false

// SetDebug toggles iterate tracing.
func SetDebug(v bool) { coreDebug = v }

// iterate runs one pass of the Fig. 11 loop; improvedLast says whether
// the previous iteration reduced the measured period. It reports
// whether the flow must stop (free slots exhausted).
func (e *Engine) iterate(a *timing.Analysis, st *Stats, improvedLast bool) (stop bool, err error) {
	sink := a.CritSink
	// ε schedule and FF-relocation trigger (Sections V-B and V-D):
	// ε starts at zero and grows only "when nonimprovement occurs" at
	// the same critical sink; if that sink is a register, eventually
	// let it move.
	rootFree := false
	if sink == e.lastSink && !improvedLast {
		e.dryAtSink++
		e.eps += e.Config.EpsStep * a.Period
		if e.Config.FFRelocation && e.dryAtSink >= 2 {
			if c := e.Netlist.Cell(sink); c.Kind == netlist.LUT && c.Registered {
				rootFree = true
			}
		}
	} else if sink != e.lastSink {
		e.lastSink = sink
		e.dryAtSink = 0
		e.eps = 0
	}

	stopExtract := e.timePhase(func(p *PhaseTimes) *float64 { return &p.Extract })
	var spt *timing.SPT
	if e.Config.Incremental && e.sptc != nil {
		spt = e.sptc.Get(e.Netlist, e.Placement, e.Delay, a, sink)
		if e.Config.VerifyIncremental {
			if err := verifySPT(spt, timing.BuildSPT(e.Netlist, e.Placement, e.Delay, a, sink)); err != nil {
				stopExtract()
				return false, err
			}
		}
	} else {
		spt = timing.BuildSPT(e.Netlist, e.Placement, e.Delay, a, sink)
	}
	members := spt.Epsilon(e.eps)
	e.trimMembers(spt, members)
	rt, err := rtree.Build(e.Netlist, a, spt, members)
	if err != nil {
		stopExtract()
		return false, fmt.Errorf("core: %w", err)
	}
	if rt.Internal == 0 && !rootFree {
		stopExtract()
		return false, nil // nothing movable on this path
	}

	g := e.buildWindow(rt, rootFree)
	ep, err := rt.ToEmbedProblem(g, e.Netlist, e.Placement, e.Delay, rootFree)
	stopExtract()
	if err != nil {
		return false, fmt.Errorf("core: %w", err)
	}
	prob := &embed.Problem{
		G:            g,
		T:            ep.Tree,
		Mode:         e.Config.Mode,
		PlaceCost:    e.placeCostFunc(g, ep),
		MaxPerVertex: e.Config.MaxPerVertex,
		DelayQuantum: e.Config.DelayQuantumFrac * a.Period,
		Parallelism:  e.Config.Parallelism,
	}
	ctx := e.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	stopEmbed := e.timePhase(func(p *PhaseTimes) *float64 { return &p.Embed })
	// Frontier memoization: if the extraction reproduced a problem
	// whose canonical encoding (window, tree, cost inputs) matches a
	// solved one bit for bit, the DP would recompute the identical
	// frontier — reuse it instead. The solver is deterministic, so a
	// hit is exact, not approximate; VerifyIncremental re-solves and
	// checks.
	var res *embed.Result
	var fp embed.Fingerprint
	if e.Config.Incremental && e.emc != nil {
		fp = e.embedFingerprint(g, ep, rootFree, prob.DelayQuantum)
		if r, ok := e.emc.Get(fp); ok {
			res = r
			if e.Config.VerifyIncremental {
				if err := e.verifyFrontier(ctx, prob, res); err != nil {
					stopEmbed()
					return false, err
				}
			}
		}
	}
	if res == nil {
		res, err = prob.SolveContext(ctx)
		if err != nil {
			stopEmbed()
			if cerr := ctx.Err(); cerr != nil {
				return false, cerr // cancelled mid-DP, not an infeasible window
			}
			return false, nil // window infeasible; ε will grow
		}
		if e.Config.Incremental && e.emc != nil {
			e.emc.Put(fp, res)
		}
	}
	// Selection bound: the cheapest solution faster than both the
	// tree's own lower bound and the second-most-critical sink (below
	// which the clock period cannot drop this iteration).
	var sel embed.FrontierSol
	if rootFree {
		var ok bool
		sel, ok = e.selectRelocation(res, g, sink, a)
		if !ok {
			stopEmbed()
			return false, nil
		}
	} else {
		bound := math.Max(ep.LowerBound, e.secondArrival(a, sink))
		if bound >= a.SinkArr[sink]-1e-9 {
			// The critical sink ties with others (common in dense
			// designs): "fast enough" must not degenerate to the
			// status quo, so fall back to the paper's pure
			// lower-bound rule and optimize this sink fully; the
			// banked slack lets later iterations untangle the ties.
			bound = ep.LowerBound
		}
		var ok bool
		sel, ok = res.SelectByBound(bound)
		if !ok {
			// Nothing on the frontier is fast enough: take the fastest
			// solution and let the status-quo check below decide whether
			// it still improves the critical sink.
			sel, ok = res.SelectFastest()
		}
		if !ok {
			stopEmbed()
			return false, nil // empty frontier: nothing to select
		}
		if e.Config.Mode.LexDepth > 1 || e.Config.Mode.MC {
			sel = e.refineLex(res, sel)
		}
		if sel.Sig.D[0] > a.SinkArr[sink]+1e-9 {
			stopEmbed()
			return false, nil // embedder cannot beat the status quo
		}
	}

	emb := res.Extract(sel)
	stopEmbed()
	if coreDebug {
		fmt.Printf("DBG selected cost %.1f D0 %.1f (sink arr %.1f, bound path)\n", sel.Sig.Cost, sel.Sig.D[0], a.SinkArr[sink])
	}
	stopApply := e.timePhase(func(p *PhaseTimes) *float64 { return &p.Apply })
	reps := e.apply(rt, ep, g, emb, sel, st)
	stopApply()
	if coreDebug {
		ax, _ := e.analyze()
		fmt.Printf("DBG after apply: period %.1f sinkArr %.1f\n", ax.Period, ax.SinkArr[sink])
	}
	if rootFree {
		st.FFRelocations++
	}

	// Post-process unification needs fresh arrival times (Section V-C).
	a2, err := e.analyze()
	if err != nil {
		return false, err
	}
	stopApply = e.timePhase(func(p *PhaseTimes) *float64 { return &p.Apply })
	e.postUnify(a2, reps, st)
	stopApply()
	if coreDebug {
		ax, _ := e.analyze()
		fmt.Printf("DBG after unify: period %.1f sinkArr %.1f\n", ax.Period, ax.SinkArr[sink])
	}

	// Timing-driven legalization resolves the overlaps the embedder
	// was allowed to create.
	a3, err := e.analyze()
	if err != nil {
		return false, err
	}
	stopLegal := e.timePhase(func(p *PhaseTimes) *float64 { return &p.Legalize })
	lst, lerr := e.leg.Run(e.Netlist, e.Placement, e.Delay, a3)
	stopLegal()
	if coreDebug {
		ax, _ := e.analyze()
		fmt.Printf("DBG after legal: period %.1f sinkArr %.1f moves %d unif %d\n", ax.Period, ax.SinkArr[sink], lst.Moves, lst.Unified)
	}
	st.Unified += lst.Unified
	if lerr != nil {
		// Out of free slots: restore the best snapshot and stop, as
		// the paper does when replication space runs out.
		e.restoreBest()
		return true, nil
	}
	return false, nil
}

// refineLex upgrades a baseline selection for the Lex/Lex-mc modes:
// among frontier solutions no slower on the critical arrival and
// within a bounded cost premium, take the lexicographically fastest —
// this is where subcritical paths actually get over-optimized
// (Section VI-A). The cost premium is what the paper pays in extra
// wiring for the Lex variants (their wire overhead grows from ~8% to
// ~16%).
func (e *Engine) refineLex(res *embed.Result, base embed.FrontierSol) embed.FrontierSol {
	budget := base.Sig.Cost*(1+e.Config.LexCostSlackFrac) + e.Config.LexCostSlackAbs
	best := base
	depth := e.Config.Mode.LexDepth
	if depth < 1 {
		depth = 1
	}
	for i := range res.Frontier {
		f := &res.Frontier[i]
		if f.Sig.Cost > budget || f.Sig.D[0] > base.Sig.D[0]+1e-9 {
			continue
		}
		if lexBetter(&f.Sig, &best.Sig, depth, e.Config.Mode.MC) {
			best = *f
		}
	}
	return best
}

// lexBetter compares delay vectors lexicographically (with the Lex-mc
// critical-input arrival as the penultimate component); exact delay
// ties prefer less gate stacking, then lower cost. Both signatures are
// produced by the same operation sequence, so bitwise tie detection is
// the intended semantics.
//
//replint:floatcmp-helper
func lexBetter(a, b *embed.Sig, depth int, mc bool) bool {
	for i := 0; i < depth; i++ {
		if a.D[i] != b.D[i] {
			return a.D[i] < b.D[i]
		}
	}
	if mc && a.TC != b.TC {
		return a.TC < b.TC
	}
	if a.Peak != b.Peak {
		return a.Peak < b.Peak
	}
	return a.Cost < b.Cost
}

// selectRelocation picks a frontier solution for a relocating FF sink
// (Section V-D): "the solution minimizing the arrival time without
// introducing large delay penalty on other paths that touch that FF".
// Each candidate root location is scored by the worse of the tree's
// arrival and the register's outgoing paths from that location; mild
// global degradation is tolerated, as intermediate relocations can
// enable otherwise unachievable quality.
func (e *Engine) selectRelocation(res *embed.Result, g *embed.Graph, sink netlist.CellID, a *timing.Analysis) (embed.FrontierSol, bool) {
	nl := e.Netlist
	best := -1
	bestScore := math.Inf(1)
	for i := range res.Frontier {
		f := &res.Frontier[i]
		loc := g.LocOf(f.Vertex)
		out := 0.0
		if c := nl.Cell(sink); c.Out != netlist.None {
			for _, p := range nl.Net(c.Out).Sinks {
				v := p.Cell
				vc := nl.Cell(v)
				wireD := e.Delay.WireDelay(arch.Dist(loc, e.Placement.Loc(v)))
				var tail float64
				if vc.IsSink() {
					tail = wireD + timing.Intrinsic(e.Delay, vc)
				} else if int(v) < len(a.Down) && !math.IsInf(a.Down[v], -1) {
					tail = wireD + e.Delay.LUTDelay + a.Down[v]
				} else {
					continue
				}
				if tail > out {
					out = tail
				}
			}
		}
		score := math.Max(f.Sig.D[0], out)
		//replint:ignore floatcmp -- exact score tie deterministically prefers the cheaper candidate; an epsilon here would make the winner depend on visit order
		if score < bestScore || (score == bestScore && best >= 0 && f.Sig.Cost < res.Frontier[best].Sig.Cost) {
			bestScore = score
			best = i
		}
	}
	if best < 0 {
		return embed.FrontierSol{}, false
	}
	// Tolerate slight global degradation; the saved-best snapshot
	// protects the reported result.
	if bestScore > a.Period*1.02 {
		return embed.FrontierSol{}, false
	}
	return res.Frontier[best], true
}

// secondArrival returns the worst sink arrival excluding the given
// sink. The period reduction already tracks the runner-up, so this is
// O(1) instead of a full cell scan: excluding the critical sink
// leaves SecondArr (floored at 0, the old scan's starting value);
// excluding anything else leaves the period itself.
func (e *Engine) secondArrival(a *timing.Analysis, exclude netlist.CellID) float64 {
	if exclude != a.CritSink {
		return a.Period
	}
	if math.IsInf(a.SecondArr, -1) || a.SecondArr < 0 {
		return 0
	}
	return a.SecondArr
}

// trimMembers caps the ε-SPT at MaxTreeInternal movable cells, keeping
// the most critical ones and preserving parent-chain closure.
func (e *Engine) trimMembers(spt *timing.SPT, members map[netlist.CellID]bool) {
	limit := e.Config.MaxTreeInternal
	if limit <= 0 || len(members) <= limit {
		return
	}
	// Tree depth to the sink, so ties on PathThrough (common on a
	// critical path, where every cell ties at the period) keep the
	// cells nearest the sink — exactly the prefix that stays closed
	// under the parent relation.
	depth := map[netlist.CellID]int{spt.Sink: 0}
	var depthOf func(id netlist.CellID) int
	depthOf = func(id netlist.CellID) int {
		if d, ok := depth[id]; ok {
			return d
		}
		d := depthOf(spt.Parent[id]) + 1
		depth[id] = d
		return d
	}
	// Iterate members in sorted-ID order: map order must never reach
	// an ordered decision (replint:maprange), and depthOf memoization
	// plus the selection below both consume this sequence.
	ids := make([]netlist.CellID, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	type entry struct {
		id netlist.CellID
		pt float64
		d  int
	}
	entries := make([]entry, 0, len(ids))
	for _, id := range ids {
		if id == spt.Sink {
			continue
		}
		entries = append(entries, entry{id, spt.PathThrough[id], depthOf(id)})
	}
	// Selection by PathThrough descending, then depth ascending, then
	// ID for determinism.
	less := func(a, b entry) bool {
		//replint:ignore floatcmp -- total-order comparator: an epsilon tie would break transitivity; bitwise equality falls through to depth/ID tie-breaks
		if a.pt != b.pt {
			return a.pt > b.pt
		}
		if a.d != b.d {
			return a.d < b.d
		}
		return a.id < b.id
	}
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && less(entries[j], entries[j-1]); j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	keep := map[netlist.CellID]bool{spt.Sink: true}
	for i := 0; i < len(entries) && len(keep)-1 < limit; i++ {
		keep[entries[i].id] = true
	}
	// Closure: drop members whose parent chain leaves the set. Iterate
	// the sorted ID slice, not the map — the per-pass delete order
	// affects how fast the fixpoint converges, and ranging keep while
	// deleting from it under a condition that reads it is exactly the
	// shape the maprange rule exists to keep out.
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			if id == spt.Sink {
				continue
			}
			if keep[id] && !keep[spt.Parent[id]] {
				delete(keep, id)
				changed = true
			}
		}
	}
	for id := range members {
		if !keep[id] {
			delete(members, id)
		}
	}
}

// buildWindow constructs the embedding grid: the bounding box of every
// tree cell location, padded by the window margin, clamped to the
// device (including the I/O ring so pad-rooted trees stay in-window).
func (e *Engine) buildWindow(rt *rtree.RTree, rootFree bool) *embed.Graph {
	f := e.Placement.FPGA()
	minX, minY := f.N+1, f.N+1
	maxX, maxY := 0, 0
	grow := func(l arch.Loc) {
		if int(l.X) < minX {
			minX = int(l.X)
		}
		if int(l.X) > maxX {
			maxX = int(l.X)
		}
		if int(l.Y) < minY {
			minY = int(l.Y)
		}
		if int(l.Y) > maxY {
			maxY = int(l.Y)
		}
	}
	for i := range rt.Nodes {
		grow(e.Placement.Loc(rt.Nodes[i].Cell))
	}
	m := e.Config.WindowMargin
	if rootFree {
		m += 2 // give a relocating FF extra room
	}
	minX = clamp(minX-m, 0, f.N+1)
	maxX = clamp(maxX+m, 0, f.N+1)
	minY = clamp(minY-m, 0, f.N+1)
	maxY = clamp(maxY+m, 0, f.N+1)
	g := embed.NewGrid(embed.GridSpec{
		X0: minX, Y0: minY,
		W: maxX - minX + 1, H: maxY - minY + 1,
		WireCost:  1.0,
		WireDelay: e.Delay.SegDelay,
	})
	if e.Config.WireCongestion != nil {
		// Section VIII congestion feedback: rebuild the window with
		// per-edge wire costs scaled by routed channel occupancy so
		// the embedder avoids utilized regions.
		g = e.congestedGrid(minX, minY, maxX-minX+1, maxY-minY+1)
	}
	// Corners of the device are unusable.
	for _, c := range []arch.Loc{{X: 0, Y: 0}, {X: 0, Y: int16(f.N + 1)},
		{X: int16(f.N + 1), Y: 0}, {X: int16(f.N + 1), Y: int16(f.N + 1)}} {
		if v := g.VertexAt(c); v >= 0 {
			g.Block(v)
		}
	}
	return g
}

// congestedGrid builds the embedding window with wire costs biased by
// routed channel occupancy (Section VIII).
func (e *Engine) congestedGrid(x0, y0, w, h int) *embed.Graph {
	g := embed.NewGraphGrid(x0, y0, w, h)
	cost := func(a, b arch.Loc) float64 {
		occ := float64(e.Config.WireCongestion[a]+e.Config.WireCongestion[b]) / 2
		return 1.0 + e.Config.WireCongestionWeight*occ
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			la := arch.Loc{X: int16(x0 + x), Y: int16(y0 + y)}
			va := g.VertexAt(la)
			if x+1 < w {
				lb := arch.Loc{X: la.X + 1, Y: la.Y}
				g.AddBiEdge(va, g.VertexAt(lb), cost(la, lb), e.Delay.SegDelay)
			}
			if y+1 < h {
				lb := arch.Loc{X: la.X, Y: la.Y + 1}
				g.AddBiEdge(va, g.VertexAt(lb), cost(la, lb), e.Delay.SegDelay)
			}
		}
	}
	return g
}

// placeCostFunc builds p_ij for the embedder (Section II-A plus the
// replication-tree discounts of Section III): zero on top of a
// logically equivalent cell, discounted everywhere for fanout-1 cells,
// congestion plus replication penalty elsewhere, and +Inf off the
// logic fabric (for everything but a root pad).
func (e *Engine) placeCostFunc(g *embed.Graph, ep *rtree.EmbedProblem) func(embed.NodeID, embed.Vertex) float64 {
	f := e.Placement.FPGA()
	nl := e.Netlist
	return func(node embed.NodeID, v embed.Vertex) float64 {
		cell := ep.NodeCell[node]
		loc := g.LocOf(v)
		if node == ep.Tree.Root {
			// The sink: fixed roots only ever query their own slot;
			// free roots (relocating FFs) may go to any logic slot.
			if loc == e.Placement.Loc(cell) {
				return 0
			}
			if !f.IsLogic(loc) {
				return math.Inf(1)
			}
			return e.congestion(loc, cell)
		}
		if !f.IsLogic(loc) {
			return math.Inf(1)
		}
		// Discount: placement on top of any logically equivalent cell
		// means no replication materializes.
		for _, other := range e.Placement.At(loc) {
			if nl.Equivalent(other, cell) {
				return 0
			}
		}
		// Congestion is paid regardless; the replication penalty is
		// discounted for fanout-1 cells — "we still replicate, but all
		// placement locations receive a discounted cost, since no
		// actual replication will ever occur."
		base := e.congestion(loc, cell)
		if len(nl.Net(nl.Cell(cell).Out).Sinks) <= 1 {
			return base + e.Config.ReplicationPenalty*e.Config.FanoutOneFactor
		}
		return base + e.Config.ReplicationPenalty
	}
}

// congestion scores local placement congestion at loc.
func (e *Engine) congestion(loc arch.Loc, cell netlist.CellID) float64 {
	cap := e.Placement.FPGA().Capacity(loc)
	use := e.Placement.Usage(loc)
	if use < cap {
		return e.Config.FreeSlotCost
	}
	return e.Config.OccupiedSlotCost * float64(use-cap+1)
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
