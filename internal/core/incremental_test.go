package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuits"
	"repro/internal/place"
)

// randomDesign generates a seeded synthetic circuit and places it with
// the analytic placer, giving the engine a realistic starting point.
func randomDesign(t *testing.T, seed int64, luts, gridN int) *design {
	t.Helper()
	nl, err := circuits.Generate(circuits.Spec{
		Name: "incprop", LUTs: luts, Inputs: 4, Outputs: 3,
		RegisteredFrac: 0.2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	po := place.Defaults()
	po.Effort = 1
	po.Seed = seed
	pl, err := place.Place(nl, arch.New(gridN), po)
	if err != nil {
		t.Fatal(err)
	}
	return &design{nl: nl, pl: pl}
}

// runWith optimizes a fresh copy of the seeded design under cfg and
// returns the canonical result plus the run's stats.
func runWith(t *testing.T, seed int64, cfg Config) (string, float64, *Stats) {
	t.Helper()
	d := randomDesign(t, seed, 18, 8)
	e := New(d.nl, d.pl, dm(), cfg)
	st, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return snapshot(e.Netlist, e.Placement), st.FinalPeriod, st
}

// TestIncrementalEngineMatchesFull pins the engine-level exactness
// contract: with the incremental machinery on (and self-verifying),
// the optimized design must be bit-identical to the full engine's.
func TestIncrementalEngineMatchesFull(t *testing.T) {
	for seed := int64(31); seed <= 33; seed++ {
		full := Default()
		full.Incremental = false
		fullSnap, fullPeriod, _ := runWith(t, seed, full)

		inc := Default()
		inc.Incremental = true
		inc.VerifyIncremental = true
		incSnap, incPeriod, st := runWith(t, seed, inc)

		if math.Float64bits(fullPeriod) != math.Float64bits(incPeriod) {
			t.Fatalf("seed %d: incremental period %v, full %v", seed, incPeriod, fullPeriod)
		}
		if fullSnap != incSnap {
			t.Fatalf("seed %d: designs diverge:\n--- full\n%s--- incremental\n%s", seed, fullSnap, incSnap)
		}
		if st.Incremental.STAUpdates+st.Incremental.STAFullRuns == 0 {
			t.Fatalf("seed %d: incremental run recorded no STA activity: %+v", seed, st.Incremental)
		}
	}
}

// TestDirtyOverflowMidRun is the overflow property test: with the
// dirty-frontier budget shrunk to near zero, every post-change STA
// update overflows mid-propagation and must fall back to the full
// analyzer — still bit-identical to the plain full engine, with
// VerifyIncremental re-checking every fallback result and the SPT /
// frontier caches absorbing the resets cleanly. Random seeds vary the
// circuit so the fallback path is exercised across different shapes.
func TestDirtyOverflowMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	runs := 4
	if testing.Short() {
		runs = 2
	}
	for i := 0; i < runs; i++ {
		seed := rng.Int63n(1 << 30)
		full := Default()
		full.Incremental = false
		fullSnap, fullPeriod, _ := runWith(t, seed, full)

		inc := Default()
		inc.Incremental = true
		inc.VerifyIncremental = true
		inc.IncrementalMaxDirtyFrac = 1e-12 // zero-cell budget: always overflow
		incSnap, incPeriod, st := runWith(t, seed, inc)

		if math.Float64bits(fullPeriod) != math.Float64bits(incPeriod) {
			t.Fatalf("seed %d: overflow run period %v, full %v", seed, incPeriod, fullPeriod)
		}
		if fullSnap != incSnap {
			t.Fatalf("seed %d: overflow run design diverges:\n--- full\n%s--- overflow\n%s", seed, fullSnap, incSnap)
		}
		is := st.Incremental
		// No-op diffs (nothing changed between analyses) legitimately
		// stay incremental with zero seeds; any actual change must
		// overflow the zero budget, so no cells are ever re-propagated.
		if is.STACellsForward+is.STACellsBackward != 0 || is.STASeeds != 0 {
			t.Fatalf("seed %d: zero budget still re-propagated cells: %+v", seed, is)
		}
		if is.STAFullRuns == 0 {
			t.Fatalf("seed %d: no full STA runs recorded: %+v", seed, is)
		}
		// Engine state mutates between analyses, so post-change analyses
		// must have overflowed (unless the run never changed anything).
		if st.Replicated+st.FFRelocations > 0 && is.STAFallbacks == 0 {
			t.Fatalf("seed %d: run mutated the design but never overflowed: %+v", seed, is)
		}
	}
}

// TestIncrementalTelemetryFlows checks the run stats surface cache
// activity: a multi-iteration run must record SPT cache traffic
// consistent with its rebuild/patch/hit split.
func TestIncrementalTelemetryFlows(t *testing.T) {
	cfg := Default()
	cfg.VerifyIncremental = true
	_, _, st := runWith(t, 51, cfg)
	is := st.Incremental
	if is.SPTRebuilds == 0 {
		t.Fatalf("no SPT rebuilds recorded: %+v", is)
	}
	if is.FrontierHits+is.FrontierMisses == 0 {
		t.Fatalf("no frontier cache traffic recorded: %+v", is)
	}
	if is.STAFullRuns == 0 {
		t.Fatalf("first analysis must be a full run: %+v", is)
	}
}
