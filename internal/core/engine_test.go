package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/embed"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/timing"
)

func dm() arch.DelayModel { return arch.DelayModel{SegDelay: 1, LUTDelay: 2, IODelay: 0.5} }

// design is a small test harness bundling a netlist and placement.
type design struct {
	nl *netlist.Netlist
	pl *placement.Placement
}

func newDesign(t *testing.T, name string, gridN int) *design {
	t.Helper()
	d := &design{nl: netlist.New(name)}
	d.pl = placement.New(arch.New(gridN), d.nl)
	return d
}

func (d *design) input(name string, x, y int16) {
	c := d.nl.AddCell(name, netlist.IPad, 0)
	d.pl.Place(c.ID, arch.Loc{X: x, Y: y})
}

func (d *design) output(name, sig string, x, y int16) {
	c := d.nl.AddCell(name, netlist.OPad, 1)
	d.nl.ConnectByName(c.ID, 0, sig)
	d.pl.Place(c.ID, arch.Loc{X: x, Y: y})
}

func (d *design) lut(name string, x, y int16, ins ...string) {
	c := d.nl.AddCell(name, netlist.LUT, len(ins))
	for i, s := range ins {
		d.nl.ConnectByName(c.ID, i, s)
	}
	d.pl.Place(c.ID, arch.Loc{X: x, Y: y})
}

func (d *design) check(t *testing.T) {
	t.Helper()
	if err := d.nl.Validate(); err != nil {
		t.Fatalf("netlist invalid: %v", err)
	}
	if err := d.pl.Validate(d.nl); err != nil {
		t.Fatalf("placement invalid: %v", err)
	}
}

func (d *design) period(t *testing.T) float64 {
	t.Helper()
	a, err := timing.Analyze(d.nl, d.pl, dm())
	if err != nil {
		t.Fatal(err)
	}
	return a.Period
}

// detouredChain places a 2-LUT chain in a U shape: input and output
// pads are close together on the west edge, but the LUTs detour east.
func detouredChain(t *testing.T) *design {
	d := newDesign(t, "uchain", 8)
	d.input("i", 0, 2)
	d.lut("l1", 4, 2, "i")
	d.lut("l2", 4, 6, "l1")
	d.output("o", "l2", 0, 6)
	d.check(t)
	return d
}

func TestStraightenDetour(t *testing.T) {
	d := detouredChain(t)
	before := d.period(t)
	// Current: 4 + 4 + 4 wire + 2+2+0.5 = 16.5. The pads sit on the
	// x=0 I/O ring and LUTs live at x>=1, so the best achievable route
	// is 6 units of wire: period 6 + 4.5 = 10.5.
	if before != 16.5 {
		t.Fatalf("setup period = %v, want 16.5", before)
	}
	e := New(d.nl, d.pl, dm(), Default())
	st, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	d.nl, d.pl = e.Netlist, e.Placement
	d.check(t)
	after := d.period(t)
	if after != 10.5 {
		t.Errorf("optimized period = %v, want the 10.5 bound", after)
	}
	if st.FinalPeriod != after {
		t.Errorf("Stats.FinalPeriod = %v, measured %v", st.FinalPeriod, after)
	}
	// Both LUTs have fanout 1: pure relocation, no net replication.
	if d.nl.NumLUTs() != 2 {
		t.Errorf("LUT count = %d, want 2 (relocation, not replication)", d.nl.NumLUTs())
	}
	if !d.pl.Legal() {
		t.Error("final placement must be legal")
	}
}

// forkDesign: one LUT drives two diverging outputs; serving both from
// one location forces a detour for the critical one. Replication
// should split the fanout (the Figs. 1-2 mechanism).
func forkDesign(t *testing.T) *design {
	d := newDesign(t, "fork", 8)
	d.input("i", 0, 4)
	d.lut("v", 4, 4, "i")
	d.output("o1", "v", 0, 1) // far, critical via the detour through v
	d.output("o2", "v", 9, 4) // v already sits on this straight line
	d.check(t)
	return d
}

func TestReplicateFork(t *testing.T) {
	d := forkDesign(t)
	before := d.period(t)
	// o1 path: 4 + (4+3) wire + 2.5 = 13.5; o2 path: 4+5+2.5 = 11.5.
	if before != 13.5 {
		t.Fatalf("setup period = %v, want 13.5", before)
	}
	e := New(d.nl, d.pl, dm(), Default())
	st, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	d.nl, d.pl = e.Netlist, e.Placement
	d.check(t)
	after := d.period(t)
	// The engine should fix the o1 detour; o2's path delay may move a
	// little if v itself relocates but must stay ≥ its 7.5 bound.
	if after > 11.5+1e-9 {
		t.Errorf("optimized period = %v, want <= 11.5", after)
	}
	if st.Replicated == 0 {
		t.Error("expected at least one replication")
	}
	// The replica and the original partition the two outputs.
	vID, _ := d.nl.CellByName("v")
	if d.nl.Alive(vID) {
		class := d.nl.EquivClass(vID)
		if len(class) < 2 {
			t.Error("v should have a surviving replica")
		}
		for _, id := range class {
			if got := len(d.nl.Net(d.nl.Cell(id).Out).Sinks); got != 1 {
				t.Errorf("cell %d drives %d sinks, want 1 (fanout partitioned)", id, got)
			}
		}
	}
	if !d.pl.Legal() {
		t.Error("final placement must be legal")
	}
}

func TestNeverWorsens(t *testing.T) {
	// An already optimal straight chain: the engine must return it
	// untouched (or equal), never degrade it.
	d := newDesign(t, "straight", 8)
	d.input("i", 0, 4)
	d.lut("l1", 3, 4, "i")
	d.lut("l2", 6, 4, "l1")
	d.output("o", "l2", 9, 4)
	d.check(t)
	before := d.period(t)
	e := New(d.nl, d.pl, dm(), Default())
	_, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	d.nl, d.pl = e.Netlist, e.Placement
	after := d.period(t)
	if after > before {
		t.Errorf("engine worsened period: %v -> %v", before, after)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, int, string) {
		d := forkDesign(t)
		e := New(d.nl, d.pl, dm(), Default())
		st, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		names := ""
		for _, n := range e.Netlist.SortedCellNames() {
			names += n + ","
		}
		return st.FinalPeriod, st.Replicated, names
	}
	p1, r1, n1 := run()
	p2, r2, n2 := run()
	if p1 != p2 || r1 != r2 || n1 != n2 {
		t.Errorf("engine not deterministic: (%v,%d,%q) vs (%v,%d,%q)", p1, r1, n1, p2, r2, n2)
	}
}

// fig15 builds the exact reconvergence scenario of Section VI: inputs
// a, b, c; e(b,c) on a straight line to the sink; d(a,e) off to the
// side; g(d,e) feeding sink f. The critical path b/c→e→g→f is monotone
// and already optimal; the subcritical a→d→g→f path detours through
// d's bad location.
func fig15(t *testing.T) *design {
	d := newDesign(t, "fig15", 10)
	d.input("a", 0, 2)
	d.input("b", 0, 6)
	d.input("c", 0, 8)
	d.lut("e", 3, 7, "b", "c")
	d.lut("d", 3, 1, "a", "e")
	d.lut("g", 7, 7, "d", "e")
	d.output("f", "g", 11, 7)
	d.check(t)
	return d
}

func TestFig15ReconvergenceLex3(t *testing.T) {
	runWith := func(mode embed.Mode) (*design, float64) {
		d := fig15(t)
		cfg := Default()
		cfg.Mode = mode
		e := New(d.nl, d.pl, dm(), cfg)
		st, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		d.nl, d.pl = e.Netlist, e.Placement
		d.check(t)
		return d, st.FinalPeriod
	}
	dRT, pRT := runWith(embed.Mode{LexDepth: 1})
	dL3, pL3 := runWith(embed.Mode{LexDepth: 3})
	// Neither may worsen the clock period.
	if pL3 > pRT+1e-9 {
		t.Errorf("Lex-3 period %v worse than RT-Embedding %v", pL3, pRT)
	}
	// The Lex-3 flow should leave the subcritical path through d at
	// least as fast as RT-Embedding does, and strictly faster when the
	// over-optimization fired.
	through := func(d *design, name string) float64 {
		a, err := timing.Analyze(d.nl, d.pl, dm())
		if err != nil {
			t.Fatal(err)
		}
		id, ok := d.nl.CellByName(name)
		if !ok {
			return 0 // cell unified away: its path was fully absorbed
		}
		return a.Through[id]
	}
	tRT := through(dRT, "a")
	tL3 := through(dL3, "a")
	if tL3 > tRT+1e-9 {
		t.Errorf("Lex-3 left subcritical path through a at %v, RT at %v (want <=)", tL3, tRT)
	}
}

func TestLexModesAllRun(t *testing.T) {
	for _, mode := range []embed.Mode{
		{LexDepth: 1},
		{LexDepth: 2},
		{LexDepth: 3},
		{LexDepth: 4},
		{LexDepth: 5},
		{LexDepth: 1, MC: true},
	} {
		d := fig15(t)
		cfg := Default()
		cfg.Mode = mode
		e := New(d.nl, d.pl, dm(), cfg)
		st, err := e.Run()
		if err != nil {
			t.Fatalf("mode %+v: %v", mode, err)
		}
		if st.FinalPeriod > st.InitialPeriod+1e-9 {
			t.Errorf("mode %+v worsened period %v -> %v", mode, st.InitialPeriod, st.FinalPeriod)
		}
		if err := e.Netlist.Validate(); err != nil {
			t.Errorf("mode %+v: invalid netlist: %v", mode, err)
		}
		if !e.Placement.Legal() {
			t.Errorf("mode %+v: illegal placement", mode)
		}
	}
}

func TestStatsPerIterMonotone(t *testing.T) {
	d := forkDesign(t)
	e := New(d.nl, d.pl, dm(), Default())
	st, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(st.PerIter); i++ {
		if st.PerIter[i].Replicated < st.PerIter[i-1].Replicated {
			t.Error("cumulative replication count must not decrease")
		}
		if st.PerIter[i].Unified < st.PerIter[i-1].Unified {
			t.Error("cumulative unification count must not decrease")
		}
	}
	if st.InitialPeriod < st.FinalPeriod {
		t.Errorf("final period %v worse than initial %v", st.FinalPeriod, st.InitialPeriod)
	}
}

func TestRegisteredSinkFFRelocation(t *testing.T) {
	// A registered LUT pinned at a bad location between two pads; the
	// engine's FF relocation should move it once plain embedding is
	// exhausted.
	d := newDesign(t, "ffmove", 8)
	d.input("i", 0, 4)
	r := d.nl.AddCell("r", netlist.LUT, 1)
	r.Registered = true
	d.nl.ConnectByName(r.ID, 0, "i")
	d.pl.Place(r.ID, arch.Loc{X: 7, Y: 7}) // far corner
	d.lut("l", 4, 4, "r")
	d.output("o", "l", 9, 4)
	d.check(t)
	before := d.period(t)
	cfg := Default()
	e := New(d.nl, d.pl, dm(), cfg)
	st, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalPeriod > before {
		t.Errorf("period worsened %v -> %v", before, st.FinalPeriod)
	}
	if st.FFRelocations == 0 {
		t.Error("expected FF relocation to trigger")
	}
	// The register should have moved off the far corner.
	rID, _ := e.Netlist.CellByName("r")
	if e.Placement.Loc(rID) == (arch.Loc{X: 7, Y: 7}) && st.FinalPeriod == before {
		t.Error("register never moved and period never improved")
	}
}

// TestPostUnifyFig13 reproduces the Fig. 13 scenario: cell a and its
// replica a_r live on opposite sides; a_r sits much closer to a's
// remaining fanout, so post-process unification reassigns the fanout
// to the replica and deletes the now-redundant original.
func TestPostUnifyFig13(t *testing.T) {
	d := newDesign(t, "fig13", 8)
	d.input("i", 0, 4)
	d.lut("a", 2, 4, "i")
	d.output("o1", "a", 9, 4) // far from a, close to where a_r will be
	d.check(t)

	aID, _ := d.nl.CellByName("a")
	rep := d.nl.Replicate(aID)
	d.pl.Place(rep.ID, arch.Loc{X: 6, Y: 4})
	o2 := d.nl.AddCell("o2", netlist.OPad, 1)
	d.nl.Connect(o2.ID, 0, rep.Out)
	d.pl.Place(o2.ID, arch.Loc{X: 9, Y: 5})
	d.check(t)

	e := New(d.nl, d.pl, dm(), Default())
	a, err := timing.Analyze(d.nl, d.pl, dm())
	if err != nil {
		t.Fatal(err)
	}
	st := &Stats{}
	e.postUnify(a, []netlist.CellID{rep.ID}, st)
	if err := e.Netlist.Validate(); err != nil {
		t.Fatal(err)
	}
	// o1 now reads the replica; the original a is redundant and gone.
	o1, _ := e.Netlist.CellByName("o1")
	if e.Netlist.Net(e.Netlist.Cell(o1).Fanin[0]).Driver != rep.ID {
		t.Error("o1 should have been reassigned to the replica")
	}
	if e.Netlist.Alive(aID) {
		t.Error("original a should be deleted as redundant (Fig. 13 unification)")
	}
	if st.Unified == 0 {
		t.Error("unification count not recorded")
	}
	if e.Placement.Placed(aID) {
		t.Error("deleted cell must be unplaced")
	}
}

// TestTrimMembers: the ε-SPT cap keeps the most critical cells and
// parent-chain closure.
func TestTrimMembers(t *testing.T) {
	// Long chain: i -> l0 -> l1 -> ... -> l9 -> o.
	d := newDesign(t, "trim", 14)
	d.input("i", 0, 7)
	prev := "i"
	for k := 0; k < 10; k++ {
		name := "l" + string(rune('0'+k))
		d.lut(name, int16(k+1), 7, prev)
		prev = name
	}
	d.output("o", prev, 15, 7)
	d.check(t)
	a, err := timing.Analyze(d.nl, d.pl, dm())
	if err != nil {
		t.Fatal(err)
	}
	spt := timing.BuildSPT(d.nl, d.pl, dm(), a, a.CritSink)
	members := spt.Epsilon(1e9)
	cfg := Default()
	cfg.MaxTreeInternal = 4
	e := New(d.nl, d.pl, dm(), cfg)
	e.trimMembers(spt, members)
	if len(members) > 5 { // sink + 4
		t.Errorf("trim left %d members, want <= 5", len(members))
	}
	// Closure: every member's parent chain stays inside.
	for id := range members {
		if id == spt.Sink {
			continue
		}
		if !members[spt.Parent[id]] {
			t.Errorf("member %v has trimmed parent", id)
		}
	}
	// The cells nearest the sink (most critical in the chain suffix)
	// survive.
	l9, _ := d.nl.CellByName("l9")
	if !members[l9] {
		t.Error("the most critical cell was trimmed")
	}
}

// TestCLBCapacity2 exercises the hierarchical-FPGA case of
// Section II-A: CLBs holding two LUTs. The whole flow must respect the
// larger slot capacity, and co-locating two chained LUTs in one CLB is
// now legal (zero-distance connection).
func TestCLBCapacity2(t *testing.T) {
	d := newDesign(t, "clb2", 6)
	d.pl.FPGA().CLBCapacity = 2
	d.input("i", 0, 3)
	d.lut("l1", 4, 2, "i")
	d.lut("l2", 4, 5, "l1")
	d.output("o", "l2", 7, 3)
	d.check(t)
	before := d.period(t)
	e := New(d.nl, d.pl, dm(), Default())
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	d.nl, d.pl = e.Netlist, e.Placement
	d.check(t)
	if !d.pl.Legal() {
		t.Fatal("placement exceeds CLB capacity")
	}
	after := d.period(t)
	if after > before {
		t.Errorf("period worsened %v -> %v", before, after)
	}
	// With capacity 2, both LUTs can share a CLB on the i-o line:
	// wire = dist(i,o) with one zero-length hop.
	// i(0,3) -> clb -> o(7,3): 7 wire + 2+2+0.5 intrinsics = 11.5.
	if after > 11.5+1e-9 {
		t.Errorf("period %v, want <= 11.5 (shared-CLB optimum)", after)
	}
}

// TestElmoreModeEngine smoke-tests the Section II-D load-dependent
// signature inside the full engine (the ASIC-domain configuration):
// the run must terminate, stay valid, and never worsen the (linear-
// model) measured period.
func TestElmoreModeEngine(t *testing.T) {
	d := detouredChain(t)
	before := d.period(t)
	cfg := Default()
	cfg.Mode = embed.Mode{LexDepth: 1, Delay: embed.ElmoreDelay, GateR: 0.5}
	e := New(d.nl, d.pl, dm(), cfg)
	st, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	d.nl, d.pl = e.Netlist, e.Placement
	d.check(t)
	if st.FinalPeriod > before {
		t.Errorf("Elmore-mode engine worsened period %v -> %v", before, st.FinalPeriod)
	}
}
