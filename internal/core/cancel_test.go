package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/circuits"
	"repro/internal/place"
)

// buildLargeDesign generates a circuit big enough that a full engine
// run takes well over the test deadlines, so cancellation has to cut
// it short mid-flight.
func buildLargeDesign(t *testing.T) *design {
	t.Helper()
	mc, ok := circuits.ByName("spla")
	if !ok {
		t.Fatal("suite circuit spla missing")
	}
	nl, err := circuits.Generate(mc.Spec(0.25))
	if err != nil {
		t.Fatal(err)
	}
	f := arch.MinSquare(nl.NumLUTs(), nl.NumIOs())
	popt := place.Defaults()
	popt.Seed = 7
	popt.Effort = 0.5 // cheap placement; the engine is what we time
	popt.Delay = arch.DefaultDelayModel()
	pl, err := place.Place(nl, f, popt)
	if err != nil {
		t.Fatal(err)
	}
	return &design{nl: nl, pl: pl}
}

// waitGoroutines polls until the goroutine count settles back to at
// most base+slack, so slow unwinding does not flake the leak check.
func waitGoroutines(base, slack int, d time.Duration) int {
	deadline := time.Now().Add(d)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack || time.Now().After(deadline) {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunContextDeadline is the cancellation contract end to end: a
// large design under a deadline far shorter than its run time must
// return context.DeadlineExceeded promptly — the cancellation points
// threaded through the engine loop, the embed level scheduler, and the
// STA workers all get exercised — and must not leak a single goroutine
// (the -race build of this test is the memory-model check).
func TestRunContextDeadline(t *testing.T) {
	d := buildLargeDesign(t)
	dmod := arch.DefaultDelayModel()

	// Baseline: how long does one uncancelled iteration take? Only to
	// sanity-check that the deadline is actually shorter than the work.
	before := runtime.NumGoroutine()

	cfg := Default()
	cfg.Parallelism = 4
	e := New(d.nl, d.pl, dmod, cfg)

	const deadline = 100 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	t0 := time.Now()
	st, err := e.RunContext(ctx)
	elapsed := time.Since(t0)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = (%+v, %v), want context.DeadlineExceeded", st, err)
	}
	if st != nil {
		t.Fatalf("cancelled run returned partial stats: %+v", st)
	}
	// Prompt: the check strides inside the embedder and STA bound the
	// overshoot to well under a second even on a loaded machine.
	if elapsed > deadline+2*time.Second {
		t.Fatalf("cancellation took %v after a %v deadline", elapsed, deadline)
	}
	if after := waitGoroutines(before, 2, 5*time.Second); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, after)
	}
}

// TestRunContextPreCancelled: an already-dead context returns
// immediately without touching the design.
func TestRunContextPreCancelled(t *testing.T) {
	d := detouredChain(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(d.nl, d.pl, dm(), Default())
	st, err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) || st != nil {
		t.Fatalf("RunContext on dead ctx = (%+v, %v), want (nil, Canceled)", st, err)
	}
}

// TestRunContextCancelMidRun: user-style cancellation (Cancel, not a
// deadline) also unwinds cleanly with context.Canceled.
func TestRunContextCancelMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a large design")
	}
	d := buildLargeDesign(t)
	before := runtime.NumGoroutine()

	e := New(d.nl, d.pl, arch.DefaultDelayModel(), Default())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	st, err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = (%+v, %v), want context.Canceled", st, err)
	}
	if after := waitGoroutines(before, 2, 5*time.Second); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after cancel", before, after)
	}
}

// TestRunContextCompletesUnhindered: a generous deadline must not
// change the result — Run and RunContext(ctx) are bit-identical, so
// threading cancellation through the hot paths cost no determinism.
func TestRunContextCompletesUnhindered(t *testing.T) {
	build := func() *design { return detouredChain(t) }

	d1 := build()
	e1 := New(d1.nl, d1.pl, dm(), Default())
	st1, err := e1.Run()
	if err != nil {
		t.Fatal(err)
	}

	d2 := build()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	e2 := New(d2.nl, d2.pl, dm(), Default())
	st2, err := e2.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if snapshot(e1.Netlist, e1.Placement) != snapshot(e2.Netlist, e2.Placement) {
		t.Fatal("RunContext with a live deadline diverged from Run")
	}
	if st1.Iterations != st2.Iterations || st1.Replicated != st2.Replicated {
		t.Fatalf("stats diverged: %+v vs %+v", st1, st2)
	}
	// The phase breakdown is recorded for completed runs.
	if st2.Phases.Total() <= 0 {
		t.Fatalf("phase timings missing: %+v", st2.Phases)
	}
}
