package core

import (
	"repro/internal/arch"
	"repro/internal/embed"
	"repro/internal/netlist"
	"repro/internal/rtree"
	"repro/internal/timing"
)

// apply materializes a chosen embedding on the netlist and placement.
// For each internal tree node, top-down:
//
//   - If the target slot holds a cell logically equivalent to the
//     node's cell that is not the cell itself, the node is *implicitly
//     unified* with it: the parent takes its signal from that cell and
//     the whole subtree below the node is skipped (its improvements are
//     subsumed by the existing cell's fanin cone).
//   - If the target is the cell's own current slot, the cell stays and
//     its fanin pins are rewired to the realized children.
//   - Otherwise a replica is created at the target slot, wired to the
//     realized children on tree pins and to the original fanins
//     elsewhere — the replication-tree wiring rule of Section III.
//
// Originals that lose their last fanout are deleted as redundant.
// It returns the cells newly created by replication.
func (e *Engine) apply(rt *rtree.RTree, ep *rtree.EmbedProblem, g *embed.Graph, emb *embed.Embedding, sel embed.FrontierSol, st *Stats) []netlist.CellID {
	nl := e.Netlist
	var created []netlist.CellID
	// touched collects drivers that may have become redundant.
	var touched []netlist.CellID

	// realize returns the cell that implements tree node idx at its
	// chosen location, recursing into children when (and only when)
	// the node materializes fresh logic or stays in place.
	var realize func(idx int32) netlist.CellID
	realize = func(idx int32) netlist.CellID {
		node := &rt.Nodes[idx]
		cell := node.Cell
		if node.IsLeaf() {
			return cell
		}
		target := g.LocOf(emb.NodeVertex[idx])
		cur := e.Placement.Loc(cell)
		if target != cur {
			// Implicit unification with an existing equivalent cell?
			for _, other := range e.Placement.At(target) {
				if other != cell && nl.Equivalent(other, cell) {
					return other
				}
			}
		}
		var impl netlist.CellID
		if target == cur {
			impl = cell // stays put; children may still improve
		} else {
			rep := nl.Replicate(cell)
			e.Placement.Place(rep.ID, target)
			created = append(created, rep.ID)
			st.Replicated++
			impl = rep.ID
		}
		// Wire realized children onto the implementation's tree pins.
		for _, ci := range node.Children {
			child := &rt.Nodes[ci]
			rc := realize(ci)
			want := nl.Cell(rc).Out
			if nl.Cell(impl).Fanin[child.Pin] != want {
				old := nl.Cell(impl).Fanin[child.Pin]
				nl.Connect(impl, int(child.Pin), want)
				if old != netlist.None {
					touched = append(touched, nl.Net(old).Driver)
				}
			}
		}
		return impl
	}

	// Root: rewire the sink's pins to the realized top-level cells,
	// and relocate the sink itself in FF-relocation mode.
	root := rt.Root()
	rootTarget := g.LocOf(emb.NodeVertex[0])
	if rootTarget != e.Placement.Loc(root.Cell) {
		e.Placement.Place(root.Cell, rootTarget)
	}
	for _, ci := range root.Children {
		child := &rt.Nodes[ci]
		rc := realize(ci)
		want := nl.Cell(rc).Out
		if nl.Cell(root.Cell).Fanin[child.Pin] != want {
			old := nl.Cell(root.Cell).Fanin[child.Pin]
			nl.Connect(root.Cell, int(child.Pin), want)
			if old != netlist.None {
				touched = append(touched, nl.Net(old).Driver)
			}
		}
	}

	// Sweep originals (and any rewired-away drivers) that lost their
	// last fanout.
	for _, id := range touched {
		if nl.Alive(id) {
			e.sweepRedundant(id, st)
		}
	}
	for _, id := range rt.Cells() {
		if nl.Alive(id) {
			e.sweepRedundant(id, st)
		}
	}
	// Drop created cells that were themselves swept (possible when a
	// later sibling unified past them).
	live := created[:0]
	for _, id := range created {
		if nl.Alive(id) {
			live = append(live, id)
		}
	}
	return live
}

// sweepRedundant removes a cell if it drives nothing, unplacing every
// cell the recursive deletion removes.
func (e *Engine) sweepRedundant(id netlist.CellID, st *Stats) {
	nl := e.Netlist
	if nl.Cell(id).Kind != netlist.LUT {
		return
	}
	if len(nl.Net(nl.Cell(id).Out).Sinks) > 0 {
		return
	}
	// DeleteIfRedundant recurses; collect the victims by diffing
	// aliveness of the cell's fanin cone before/after.
	victims := e.collectRedundant(id)
	deleted := nl.DeleteIfRedundant(id)
	st.Unified += deleted
	for _, v := range victims {
		if !nl.Alive(v) {
			e.Placement.Remove(v)
		}
	}
}

// collectRedundant lists cells that could be removed by a recursive
// delete rooted at id (id plus its transitive fanin drivers).
func (e *Engine) collectRedundant(id netlist.CellID) []netlist.CellID {
	nl := e.Netlist
	var out []netlist.CellID
	seen := map[netlist.CellID]bool{}
	var walk func(netlist.CellID)
	walk = func(c netlist.CellID) {
		if seen[c] || !nl.Alive(c) {
			return
		}
		seen[c] = true
		out = append(out, c)
		for _, net := range nl.Cell(c).Fanin {
			if net != netlist.None {
				walk(nl.Net(net).Driver)
			}
		}
	}
	walk(id)
	return out
}

// postUnify is the Section V-C postprocess: for every newly created
// replica, examine its logically equivalent cells; any fanout of an
// equivalent cell that would see an equal-or-better arrival from the
// replica is reassigned to it. Equivalents left without fanouts are
// deleted (recursively). With AggressiveUnify, reassignment also
// happens when the move degrades that input's arrival but stays within
// the current critical period — the paper's aggressive clean-up for
// high-density circuits.
func (e *Engine) postUnify(a *timing.Analysis, created []netlist.CellID, st *Stats) {
	nl := e.Netlist
	for _, rep := range created {
		if !nl.Alive(rep) {
			continue
		}
		repLoc := e.Placement.Loc(rep)
		repArr := arrOf(a, rep)
		for _, other := range nl.EquivClass(rep) {
			if other == rep || !nl.Alive(other) {
				continue
			}
			otherLoc := e.Placement.Loc(other)
			otherArr := arrOf(a, other)
			sinks := append([]netlist.Pin(nil), nl.Net(nl.Cell(other).Out).Sinks...)
			for _, p := range sinks {
				sLoc := e.Placement.Loc(p.Cell)
				oldT := otherArr + e.Delay.WireDelay(arch.Dist(otherLoc, sLoc))
				newT := repArr + e.Delay.WireDelay(arch.Dist(repLoc, sLoc))
				ok := newT <= oldT+1e-9
				if !ok && e.Config.AggressiveUnify {
					// Allowed if the degraded arrival still cannot
					// push the slowest path through this input past
					// the current period.
					headroom := a.Period - throughVia(nl, a, e.Delay, p.Cell, oldT)
					ok = newT-oldT <= headroom-1e-9
				}
				if ok {
					nl.MoveSink(p, rep)
				}
			}
			if len(nl.Net(nl.Cell(other).Out).Sinks) == 0 {
				e.sweepRedundant(other, st)
			}
		}
	}
}

// throughVia estimates the slowest source-to-sink path entering cell v
// through an input arriving at time inArr.
func throughVia(nl *netlist.Netlist, a *timing.Analysis, dm arch.DelayModel, v netlist.CellID, inArr float64) float64 {
	c := nl.Cell(v)
	t := inArr + timing.Intrinsic(dm, c)
	if c.IsSink() {
		return t
	}
	if int(v) < len(a.Down) && a.Down[v] > 0 {
		return inArr + dm.LUTDelay + a.Down[v]
	}
	return t
}

// arrOf reads arrival defensively for cells newer than the analysis.
func arrOf(a *timing.Analysis, id netlist.CellID) float64 {
	if int(id) < len(a.Arr) {
		return a.Arr[id]
	}
	return 0
}
