package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/placement"
)

// These tests pin the engine-level determinism contract that replint's
// rules guard statically: the full optimized design — every cell, its
// location, and its connectivity — must be bit-identical across
// repeated runs and across worker counts. A regression here usually
// means an unordered map iteration or an epsilon-less float compare
// crept back into a decision path.

// snapshot renders the optimized design canonically: cells in ID
// order with kind, location, and fanin driver names.
func snapshot(nl *netlist.Netlist, pl *placement.Placement) string {
	var b strings.Builder
	nl.Cells(func(c *netlist.Cell) {
		loc := pl.Loc(c.ID)
		fmt.Fprintf(&b, "%s/%v@%d,%d:", c.Name, c.Kind, loc.X, loc.Y)
		for _, net := range c.Fanin {
			if net == netlist.None {
				b.WriteString(" -")
				continue
			}
			fmt.Fprintf(&b, " %s", nl.Cell(nl.Net(net).Driver).Name)
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// runEngine builds a fresh design, optimizes it with the given worker
// count, and returns the canonical result.
func runEngine(t *testing.T, build func(*testing.T) *design, par int) (string, float64) {
	t.Helper()
	d := build(t)
	cfg := Default()
	cfg.Parallelism = par
	e := New(d.nl, d.pl, dm(), cfg)
	st, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return snapshot(e.Netlist, e.Placement), st.FinalPeriod
}

func TestEngineDeterminism(t *testing.T) {
	designs := []struct {
		name  string
		build func(*testing.T) *design
	}{
		{"uchain", detouredChain},
		{"fork", forkDesign},
	}
	for _, dd := range designs {
		t.Run(dd.name, func(t *testing.T) {
			base, basePeriod := runEngine(t, dd.build, 1)
			for _, par := range []int{1, 1, 4, 4, 8} {
				snap, period := runEngine(t, dd.build, par)
				if period != basePeriod {
					t.Fatalf("workers=%d: period %v, serial baseline %v", par, period, basePeriod)
				}
				if snap != base {
					t.Fatalf("workers=%d: optimized design diverges from serial baseline:\n--- baseline\n%s--- got\n%s",
						par, base, snap)
				}
			}
		})
	}
}
