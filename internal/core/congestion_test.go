package core

import (
	"testing"

	"repro/internal/arch"
)

// TestCongestionFeedback exercises the Section VIII extension: with
// heavy reported channel occupancy across the straight corridor, the
// embedder pays extra wire cost there; the run must still succeed, stay
// legal, and never worsen timing.
func TestCongestionFeedback(t *testing.T) {
	d := detouredChain(t)
	before := d.period(t)

	cfg := Default()
	cfg.WireCongestion = map[arch.Loc]int{}
	// Saturate the direct corridor rows between the pads.
	for x := int16(0); x <= 9; x++ {
		for y := int16(3); y <= 5; y++ {
			cfg.WireCongestion[arch.Loc{X: x, Y: y}] = 20
		}
	}
	cfg.WireCongestionWeight = 0.5
	e := New(d.nl, d.pl, dm(), cfg)
	st, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	d.nl, d.pl = e.Netlist, e.Placement
	d.check(t)
	after := d.period(t)
	if after > before {
		t.Errorf("congestion-aware run worsened period %v -> %v", before, after)
	}
	if st.FinalPeriod != after {
		t.Errorf("stats/measured mismatch: %v vs %v", st.FinalPeriod, after)
	}
}

// TestCongestionFeedbackUnbiased: with zero occupancy everywhere the
// congested grid must behave exactly like the uniform one.
func TestCongestionFeedbackUnbiased(t *testing.T) {
	run := func(withMap bool) float64 {
		d := detouredChain(t)
		cfg := Default()
		if withMap {
			cfg.WireCongestion = map[arch.Loc]int{}
		}
		e := New(d.nl, d.pl, dm(), cfg)
		st, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.FinalPeriod
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("empty congestion map changed the result: %v vs %v", a, b)
	}
}
