package serve

import (
	"reflect"
	"testing"
)

// TestSpecNormalized pins the semantic defaults the cluster layer's
// content hash keys on. ExecuteJob resolves its defaults through
// Normalized too, so a drift here would split the result cache.
func TestSpecNormalized(t *testing.T) {
	cases := []struct {
		name string
		in   JobSpec
		want JobSpec
	}{
		{"circuit defaults",
			JobSpec{Circuit: "ex5p"},
			JobSpec{Circuit: "ex5p", Scale: 0.2, Algo: "rt", Seed: 1, Effort: 2}},
		{"explicit fields survive",
			JobSpec{Circuit: "apex4", Scale: 0.5, Algo: "lex3", Seed: 7, Effort: 1.5, MaxIters: 9, Route: true},
			JobSpec{Circuit: "apex4", Scale: 0.5, Algo: "lex3", Seed: 7, Effort: 1.5, MaxIters: 9, Route: true}},
		{"algo case folds to canonical",
			JobSpec{Circuit: "ex5p", Algo: "LEX3"},
			JobSpec{Circuit: "ex5p", Scale: 0.2, Algo: "lex3", Seed: 1, Effort: 2}},
		{"netlist clears circuit fields",
			JobSpec{Netlist: "circuit t\ninput a\noutput o a\n", Circuit: "ignored", Scale: 0.9},
			JobSpec{Netlist: "circuit t\ninput a\noutput o a\n", Algo: "rt", Seed: 1, Effort: 2}},
		{"non-semantic knobs untouched",
			JobSpec{Circuit: "ex5p", Parallelism: 7, TimeoutMS: 1234},
			JobSpec{Circuit: "ex5p", Scale: 0.2, Algo: "rt", Seed: 1, Effort: 2, Parallelism: 7, TimeoutMS: 1234}},
		{"unknown algo passes through for Validate to reject",
			JobSpec{Circuit: "ex5p", Algo: "fastest"},
			JobSpec{Circuit: "ex5p", Scale: 0.2, Algo: "fastest", Seed: 1, Effort: 2}},
		{"race defaults to every engine variant",
			JobSpec{Circuit: "ex5p", Algo: "RACE"},
			JobSpec{Circuit: "ex5p", Scale: 0.2, Algo: "race", Seed: 1, Effort: 2,
				RaceVariants: []string{"rt", "lexmc", "lex2", "lex3", "lex4", "lex5"}}},
		{"race variants fold to canonical order, case, and set",
			JobSpec{Circuit: "ex5p", Algo: "race", PeriodBound: 9.5,
				RaceVariants: []string{"LEX5", "rt", "lex5", "Lex3"}},
			JobSpec{Circuit: "ex5p", Scale: 0.2, Algo: "race", Seed: 1, Effort: 2, PeriodBound: 9.5,
				RaceVariants: []string{"rt", "lex3", "lex5"}}},
		{"unknown race variant passes through for Validate to reject",
			JobSpec{Circuit: "ex5p", Algo: "race", RaceVariants: []string{"lex3", "fastest"}},
			JobSpec{Circuit: "ex5p", Scale: 0.2, Algo: "race", Seed: 1, Effort: 2,
				RaceVariants: []string{"lex3", "fastest"}}},
		{"qos folds case",
			JobSpec{Circuit: "ex5p", QoS: "Deadline"},
			JobSpec{Circuit: "ex5p", Scale: 0.2, Algo: "rt", Seed: 1, Effort: 2, QoS: "deadline"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.in.Normalized(); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Normalized:\n  got  %+v\n  want %+v", got, tc.want)
			}
		})
	}
	// Idempotence: normalizing twice is a no-op.
	for _, tc := range cases {
		n := tc.in.Normalized()
		if n2 := n.Normalized(); !reflect.DeepEqual(n2, n) {
			t.Errorf("%s: Normalized not idempotent: %+v vs %+v", tc.name, n2, n)
		}
	}
}
