package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// stubSpec is a valid spec for manager tests that never reach the real
// runner.
func stubSpec() JobSpec { return JobSpec{Circuit: "ex5p"} }

// sleepRunner blocks until the context is done or d elapses.
func sleepRunner(d time.Duration) Runner {
	return func(ctx context.Context, _ JobSpec) (*Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(d):
			return &Result{Circuit: "stub"}, nil
		}
	}
}

func waitState(t *testing.T, m *Manager, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (err %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Status{}
}

func TestQueueBackpressure(t *testing.T) {
	block := make(chan struct{})
	m := NewManager(Config{
		Workers:    1,
		QueueDepth: 2,
		Runner: func(ctx context.Context, _ JobSpec) (*Result, error) {
			select {
			case <-block:
				return &Result{}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer func() { close(block); m.Shutdown(context.Background()) }()

	// First job occupies the worker; the queue holds two more; the
	// fourth submission must bounce with ErrQueueFull.
	first, err := m.Submit(stubSpec())
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	waitState(t, m, first.ID, StateRunning)
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(stubSpec()); err != nil {
			t.Fatalf("submit %d: %v", i+2, err)
		}
	}
	if _, err := m.Submit(stubSpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit over capacity: err = %v, want ErrQueueFull", err)
	}
	c := m.Counters()
	if c.JobsRejectedFull != 1 || c.JobsAccepted != 3 {
		t.Fatalf("counters = %+v, want 3 accepted / 1 rejected", c)
	}
	if c.QueueDepth != 2 {
		t.Fatalf("queue depth = %d, want 2", c.QueueDepth)
	}
}

// TestIncrementalCountersAccumulate checks completed jobs' engine
// reuse telemetry rolls up into the /debug/vars counters.
func TestIncrementalCountersAccumulate(t *testing.T) {
	m := NewManager(Config{
		Workers: 1,
		Runner: func(context.Context, JobSpec) (*Result, error) {
			r := &Result{Circuit: "stub"}
			r.Incremental.STAUpdates = 7
			r.Incremental.STAFullRuns = 2
			r.Incremental.STACellsForward = 30
			r.Incremental.STACellsBackward = 12
			r.Incremental.SPTPatches = 4
			r.Incremental.SPTRebuilds = 1
			r.Incremental.FrontierHits = 5
			r.Incremental.FrontierMisses = 3
			return r, nil
		},
	})
	defer m.Shutdown(context.Background())
	for i := 0; i < 2; i++ {
		st, err := m.Submit(stubSpec())
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, st.ID, StateDone)
	}
	c := m.Counters()
	if c.STAUpdates != 14 || c.STAFullRuns != 4 || c.STACellsRepropagated != 84 {
		t.Fatalf("STA counters = %+v, want 14/4/84", c)
	}
	if c.SPTPatches != 8 || c.SPTRebuilds != 2 {
		t.Fatalf("SPT counters = %+v, want 8/2", c)
	}
	if c.FrontierHits != 10 || c.FrontierMisses != 6 {
		t.Fatalf("frontier counters = %+v, want 10/6", c)
	}
}

func TestPanicRecovery(t *testing.T) {
	m := NewManager(Config{
		Workers: 1,
		Runner: func(_ context.Context, spec JobSpec) (*Result, error) {
			if spec.Seed == 666 {
				panic("synthetic job panic")
			}
			return &Result{Circuit: "ok"}, nil
		},
	})
	defer m.Shutdown(context.Background())

	bad := stubSpec()
	bad.Seed = 666
	st, err := m.Submit(bad)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	fin, err := m.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != StateFailed {
		t.Fatalf("panicking job state = %s, want failed", fin.State)
	}
	if fin.Error == "" {
		t.Fatal("panicking job lost its error message")
	}

	// The process (and the worker) survived: the next job still runs.
	st, err = m.Submit(stubSpec())
	if err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	fin, err = m.Wait(context.Background(), st.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("job after panic: state %s err %v, want done", fin.State, err)
	}
	if c := m.Counters(); c.JobPanics != 1 {
		t.Fatalf("panic counter = %d, want 1", c.JobPanics)
	}
}

func TestJobTimeout(t *testing.T) {
	m := NewManager(Config{Workers: 1, Runner: sleepRunner(time.Hour)})
	defer m.Shutdown(context.Background())

	spec := stubSpec()
	spec.TimeoutMS = 50
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	t0 := time.Now()
	fin, err := m.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != StateCancelled {
		t.Fatalf("timed-out job state = %s (err %q), want cancelled", fin.State, fin.Error)
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("timeout took %v, want prompt", el)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	block := make(chan struct{})
	m := NewManager(Config{
		Workers: 1,
		Runner: func(ctx context.Context, _ JobSpec) (*Result, error) {
			select {
			case <-block:
				return &Result{}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer func() { close(block); m.Shutdown(context.Background()) }()

	running, err := m.Submit(stubSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, m, running.ID, StateRunning)
	queued, err := m.Submit(stubSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Cancelling a queued job finalizes it immediately.
	st, err := m.Cancel(queued.ID)
	if err != nil || st.State != StateCancelled {
		t.Fatalf("cancel queued: state %s err %v", st.State, err)
	}
	// Cancelling the running job unwinds it through its context.
	if _, err := m.Cancel(running.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	fin, err := m.Wait(context.Background(), running.ID)
	if err != nil || fin.State != StateCancelled {
		t.Fatalf("cancelled running job: state %s err %v", fin.State, err)
	}
	// The cancelled-while-queued job never runs.
	if c := m.Counters(); c.JobsCompleted != 0 || c.JobsCancelled != 2 {
		t.Fatalf("counters = %+v, want 0 completed / 2 cancelled", c)
	}
}

func TestShutdownDrain(t *testing.T) {
	var ran atomic.Int64
	m := NewManager(Config{
		Workers: 2,
		Runner: func(ctx context.Context, _ JobSpec) (*Result, error) {
			ran.Add(1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(20 * time.Millisecond):
				return &Result{}, nil
			}
		},
	})
	var ids []string
	for i := 0; i < 6; i++ {
		st, err := m.Submit(stubSpec())
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m.Shutdown(drainCtx)

	// After drain: no job left non-terminal, and new submissions are
	// refused.
	for _, id := range ids {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if !st.State.Terminal() {
			t.Fatalf("job %s still %s after Shutdown", id, st.State)
		}
	}
	if _, err := m.Submit(stubSpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after shutdown: err = %v, want ErrDraining", err)
	}
	// The generous drain window let everything finish.
	if c := m.Counters(); c.JobsCompleted != 6 {
		t.Fatalf("completed = %d, want 6 (ran %d)", c.JobsCompleted, ran.Load())
	}
}

func TestShutdownCancelsSlowJobs(t *testing.T) {
	m := NewManager(Config{Workers: 2, QueueDepth: 8, Runner: sleepRunner(time.Hour)})
	var ids []string
	for i := 0; i < 4; i++ {
		st, err := m.Submit(stubSpec())
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, st.ID)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	m.Shutdown(drainCtx)
	if el := time.Since(t0); el > 5*time.Second {
		t.Fatalf("shutdown took %v despite hour-long jobs", el)
	}
	for _, id := range ids {
		st, _ := m.Get(id)
		if st.State != StateCancelled {
			t.Fatalf("job %s state = %s after forced drain, want cancelled", id, st.State)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	m := NewManager(Config{Workers: 1, Runner: sleepRunner(0)})
	defer m.Shutdown(context.Background())
	cases := []JobSpec{
		{},                                  // neither circuit nor netlist
		{Circuit: "nope"},                   // unknown circuit
		{Circuit: "ex5p", Algo: "fastest"},  // unknown algorithm
		{Circuit: "ex5p", Netlist: "input"}, // both sources
		{Circuit: "ex5p", Scale: 7},         // scale out of range
		{Netlist: "lut a b\n"},              // unresolvable signal
		{Circuit: "ex5p", TimeoutMS: -1},    // negative tuning
		{Netlist: "input a\ninput a\n"},     // duplicate cell
		{Netlist: "widget frob\n"},          // unknown directive
		{Circuit: "ex5p", Parallelism: -2},  // negative tuning
	}
	for _, spec := range cases {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid spec", spec)
		}
	}
	if c := m.Counters(); c.JobsAccepted != 0 {
		t.Fatalf("invalid specs consumed queue slots: %+v", c)
	}
}

// TestNoGoroutineLeakAcrossLifecycle pins the drain contract: after
// Shutdown returns, every worker and job goroutine is gone.
func TestNoGoroutineLeakAcrossLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		m := NewManager(Config{Workers: 4, Runner: sleepRunner(time.Millisecond)})
		for i := 0; i < 8; i++ {
			if _, err := m.Submit(stubSpec()); err != nil {
				t.Fatalf("round %d submit %d: %v", round, i, err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		m.Shutdown(ctx)
		cancel()
	}
	if !goroutinesSettle(before, 5*time.Second) {
		t.Fatalf("goroutines: %d before, %d after shutdowns", before, runtime.NumGoroutine())
	}
}

// goroutinesSettle waits for the goroutine count to return to at most
// base+2 (the runtime keeps a little slack) within the deadline.
func goroutinesSettle(base int, d time.Duration) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return runtime.NumGoroutine() <= base+2
}

// TestStatusPositions checks queue positions decrease FIFO.
func TestStatusPositions(t *testing.T) {
	block := make(chan struct{})
	m := NewManager(Config{
		Workers: 1,
		Runner: func(ctx context.Context, _ JobSpec) (*Result, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return &Result{}, nil
		},
	})
	defer func() { close(block); m.Shutdown(context.Background()) }()
	first, _ := m.Submit(stubSpec())
	waitState(t, m, first.ID, StateRunning)
	var queued []Status
	for i := 0; i < 3; i++ {
		st, err := m.Submit(stubSpec())
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		queued = append(queued, st)
	}
	for i, st := range queued {
		got, _ := m.Get(st.ID)
		if got.Position != i {
			t.Errorf("job %s position = %d, want %d", st.ID, got.Position, i)
		}
	}
	if len(m.List()) != 4 {
		t.Fatalf("List() = %d jobs, want 4", len(m.List()))
	}
}

// TestIDsAreSequential pins the externally visible ID format.
func TestIDsAreSequential(t *testing.T) {
	block := make(chan struct{})
	m := NewManager(Config{
		Workers: 1,
		Runner: func(ctx context.Context, _ JobSpec) (*Result, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return &Result{}, nil
		},
	})
	// Unblock the runner before draining, or Shutdown waits forever.
	defer func() { close(block); m.Shutdown(context.Background()) }()
	for i := 1; i <= 3; i++ {
		st, err := m.Submit(stubSpec())
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if want := fmt.Sprintf("j%06d", i); st.ID != want {
			t.Fatalf("job ID = %s, want %s", st.ID, want)
		}
	}
}
