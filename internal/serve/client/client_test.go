package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
)

// startDaemon spins up a full in-process repld stack with a stub
// runner and returns a client pointed at it.
func startDaemon(t *testing.T, cfg serve.Config) (*Client, *serve.Manager) {
	t.Helper()
	m := serve.NewManager(cfg)
	ts := httptest.NewServer(serve.NewServer(m).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return New(ts.URL), m
}

func instantRunner(_ context.Context, spec serve.JobSpec) (*serve.Result, error) {
	return &serve.Result{Circuit: spec.Circuit, Iterations: 3}, nil
}

func TestClientRoundTrip(t *testing.T) {
	c, _ := startDaemon(t, serve.Config{Workers: 1, Runner: instantRunner})
	ctx := context.Background()

	if h, err := c.Health(ctx); err != nil || h != "ok" {
		t.Fatalf("Health = %q, %v", h, err)
	}
	st, err := c.Run(ctx, serve.JobSpec{Circuit: "ex5p"}, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.State != serve.StateDone || st.Result == nil || st.Result.Iterations != 3 {
		t.Fatalf("Run result = %+v", st)
	}
	got, err := c.Get(ctx, st.ID)
	if err != nil || got.State != serve.StateDone {
		t.Fatalf("Get after done: %+v, %v", got, err)
	}
}

func TestClientQueueFullSentinel(t *testing.T) {
	block := make(chan struct{})
	c, _ := startDaemon(t, serve.Config{
		Workers:    1,
		QueueDepth: 1,
		Runner: func(ctx context.Context, _ serve.JobSpec) (*serve.Result, error) {
			select {
			case <-block:
				return &serve.Result{}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer close(block)
	ctx := context.Background()

	st, err := c.Submit(ctx, serve.JobSpec{Circuit: "ex5p"})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	// Wait for the worker to pick it up, then fill the single slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := c.Get(ctx, st.ID)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if got.State == serve.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Submit(ctx, serve.JobSpec{Circuit: "ex5p"}); err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if _, err := c.Submit(ctx, serve.JobSpec{Circuit: "ex5p"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
}

func TestClientCancel(t *testing.T) {
	c, _ := startDaemon(t, serve.Config{
		Workers: 1,
		Runner: func(ctx context.Context, _ serve.JobSpec) (*serve.Result, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	ctx := context.Background()

	st, err := c.Submit(ctx, serve.JobSpec{Circuit: "ex5p"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	fin, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != serve.StateCancelled {
		t.Fatalf("state = %s, want cancelled", fin.State)
	}
}

func TestClientErrorsAreDescriptive(t *testing.T) {
	c, _ := startDaemon(t, serve.Config{Workers: 1, Runner: instantRunner})
	ctx := context.Background()

	if _, err := c.Submit(ctx, serve.JobSpec{Circuit: "nonesuch"}); err == nil {
		t.Fatal("bad circuit accepted")
	}
	if _, err := c.Get(ctx, "j999999"); err == nil {
		t.Fatal("missing job did not error")
	}
}
