package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestBackoffDelayNoJitter pins the exact exponential schedule.
func TestBackoffDelayNoJitter(t *testing.T) {
	b := &Backoff{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Mult: 2, NoJitter: true}
	want := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second,
		2 * time.Second,
	}
	for k, w := range want {
		if got := b.Delay(k); got != w {
			t.Errorf("Delay(%d) = %v, want %v", k, got, w)
		}
	}
}

// TestBackoffDelayJitterBounds: jittered delays stay inside the
// ±Jitter envelope of the exact schedule, never negative.
func TestBackoffDelayJitterBounds(t *testing.T) {
	b := &Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Mult: 2, Jitter: 0.2, Seed: 7}
	exact := &Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Mult: 2, NoJitter: true}
	for k := 0; k < 12; k++ {
		e := float64(exact.Delay(k))
		for rep := 0; rep < 20; rep++ {
			d := float64(b.Delay(k))
			if d < 0.8*e-1 || d > 1.2*e+1 {
				t.Fatalf("Delay(%d) = %v outside ±20%% of %v", k, time.Duration(d), time.Duration(e))
			}
		}
	}
}

// TestBackoffSeededReplay: a fixed seed replays an identical schedule,
// and different seeds diverge — the jitter is real but reproducible.
func TestBackoffSeededReplay(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		b := &Backoff{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Seed: seed}
		out := make([]time.Duration, 8)
		for k := range out {
			out[k] = b.Delay(k)
		}
		return out
	}
	a, b2 := mk(42), mk(42)
	for k := range a {
		if a[k] != b2[k] {
			t.Fatalf("seed 42 replay diverged at k=%d: %v vs %v", k, a[k], b2[k])
		}
	}
	c := mk(43)
	same := true
	for k := range a {
		if a[k] != c[k] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical schedules")
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := DefaultBackoff()
	if got := b.MaxRetries(); got != 8 {
		t.Errorf("MaxRetries = %d, want 8", got)
	}
	if d := b.Delay(0); d < 40*time.Millisecond || d > 60*time.Millisecond {
		t.Errorf("Delay(0) = %v, want 50ms ± 20%%", d)
	}
	if d := b.Delay(100); d > time.Duration(1.2*float64(2*time.Second)) {
		t.Errorf("Delay(100) = %v, exceeds jittered cap", d)
	}
}

// fakeSleeper records requested delays instead of sleeping. Safe for
// concurrent observation via count().
type fakeSleeper struct {
	mu     sync.Mutex
	delays []time.Duration
	// failAt, when >= 0, returns ctx.Err-style cancellation on the
	// n-th sleep.
	failAt int
}

func (f *fakeSleeper) sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failAt >= 0 && len(f.delays) == f.failAt {
		return context.Canceled
	}
	f.delays = append(f.delays, d)
	return nil
}

func (f *fakeSleeper) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.delays)
}

func (f *fakeSleeper) at(i int) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delays[i]
}

// TestBackoffSleepFakeClock: Sleep consults Delay and the sleep seam —
// no real time passes under the fake clock.
func TestBackoffSleepFakeClock(t *testing.T) {
	fs := &fakeSleeper{failAt: -1}
	b := &Backoff{Base: 50 * time.Millisecond, Cap: 2 * time.Second, NoJitter: true, sleep: fs.sleep}
	start := time.Now()
	for k := 0; k < 5; k++ {
		if err := b.Sleep(context.Background(), k); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("fake clock slept for real: %v", elapsed)
	}
	want := []time.Duration{50, 100, 200, 400, 800}
	for k, w := range want {
		if fs.at(k) != w*time.Millisecond {
			t.Errorf("sleep %d = %v, want %v", k, fs.at(k), w*time.Millisecond)
		}
	}
}

// TestBackoffSleepCancelled: a dead context surfaces from Sleep.
func TestBackoffSleepCancelled(t *testing.T) {
	b := &Backoff{Base: time.Hour, NoJitter: true}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := b.Sleep(ctx, 0); err == nil {
		t.Fatal("Sleep with dead context returned nil")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep blocked despite dead context")
	}
}

// flakyServer 429s the first rejectN submissions, then accepts.
func flakyServer(t *testing.T, rejectN int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			if calls.Add(1) <= int64(rejectN) {
				w.WriteHeader(http.StatusTooManyRequests)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(serve.Status{ID: "j000001", State: serve.StateQueued})
			return
		}
		http.NotFound(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// TestSubmitRetriesQueueFull: with Retry configured, Submit absorbs
// 429s under the schedule (fake clock) and succeeds.
func TestSubmitRetriesQueueFull(t *testing.T) {
	srv, calls := flakyServer(t, 3)
	fs := &fakeSleeper{failAt: -1}
	c := New(srv.URL)
	c.Retry = &Backoff{Base: 10 * time.Millisecond, NoJitter: true, Retries: 5, sleep: fs.sleep}
	st, err := c.Submit(context.Background(), serve.JobSpec{Circuit: "ex5p"})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j000001" {
		t.Errorf("status %+v", st)
	}
	if calls.Load() != 4 {
		t.Errorf("%d attempts, want 4 (3 rejections + 1 success)", calls.Load())
	}
	if fs.count() != 3 {
		t.Errorf("%d backoff sleeps, want 3", fs.count())
	}
}

// TestSubmitRetriesExhausted: a persistently full queue surfaces
// ErrQueueFull after the retry budget.
func TestSubmitRetriesExhausted(t *testing.T) {
	srv, calls := flakyServer(t, 1000)
	fs := &fakeSleeper{failAt: -1}
	c := New(srv.URL)
	c.Retry = &Backoff{Base: time.Millisecond, NoJitter: true, Retries: 3, sleep: fs.sleep}
	_, err := c.Submit(context.Background(), serve.JobSpec{Circuit: "ex5p"})
	if err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if calls.Load() != 4 {
		t.Errorf("%d attempts, want 4 (initial + 3 retries)", calls.Load())
	}
}

// TestSubmitNoRetryWithoutBackoff: nil Retry preserves the pre-cluster
// fail-fast behavior.
func TestSubmitNoRetryWithoutBackoff(t *testing.T) {
	srv, calls := flakyServer(t, 1000)
	c := New(srv.URL)
	if _, err := c.Submit(context.Background(), serve.JobSpec{Circuit: "ex5p"}); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if calls.Load() != 1 {
		t.Errorf("%d attempts, want 1", calls.Load())
	}
}
