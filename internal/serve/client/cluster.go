package client

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// ClusterClient fans the single-daemon client across the endpoints of
// a repld cluster. Every member serves the full public surface —
// submissions are routed to their ring owner server-side and
// cross-node job IDs resolve via 307 redirects that the underlying
// HTTP client follows — so the cluster client's job is availability,
// not topology: rotate away from unreachable endpoints, absorb 429
// backpressure with the shared Backoff schedule, and stick status
// polls to the endpoint that accepted the job.
type ClusterClient struct {
	clients []*Client
	retry   *Backoff
	next    atomic.Uint64
}

// NewClusterClient builds a client over the given base URLs. retry
// nil selects DefaultBackoff.
func NewClusterClient(urls []string, retry *Backoff) (*ClusterClient, error) {
	if len(urls) == 0 {
		return nil, errors.New("client: cluster needs at least one endpoint")
	}
	if retry == nil {
		retry = DefaultBackoff()
	}
	cc := &ClusterClient{retry: retry}
	for _, u := range urls {
		// Per-endpoint clients carry no Retry of their own: the
		// cluster client owns the schedule so a backoff round rotates
		// endpoints instead of hammering one.
		cc.clients = append(cc.clients, New(u))
	}
	return cc, nil
}

// Endpoints returns the configured base URLs.
func (cc *ClusterClient) Endpoints() []string {
	out := make([]string, len(cc.clients))
	for i, c := range cc.clients {
		out[i] = c.BaseURL
	}
	return out
}

// Submit tries each endpoint starting from a rotating cursor. An
// unreachable or draining endpoint rotates immediately; a full round
// of 429s sleeps one backoff step before the next round. The endpoint
// that accepted is returned for poll affinity.
func (cc *ClusterClient) Submit(ctx context.Context, spec serve.JobSpec) (serve.Status, *Client, error) {
	var lastErr error
	for round := 0; ; round++ {
		start := cc.next.Add(1) - 1
		sawQueueFull := false
		for i := 0; i < len(cc.clients); i++ {
			c := cc.clients[(start+uint64(i))%uint64(len(cc.clients))]
			st, err := c.submitOnce(ctx, spec)
			switch {
			case err == nil:
				return st, c, nil
			case errors.Is(err, ErrQueueFull):
				sawQueueFull = true
				lastErr = err
			case errors.Is(err, ErrDraining):
				lastErr = err
			default:
				lastErr = err
			}
		}
		if !sawQueueFull || round >= cc.retry.MaxRetries() {
			return serve.Status{}, nil, fmt.Errorf("client: all %d endpoints failed: %w",
				len(cc.clients), lastErr)
		}
		if serr := cc.retry.Sleep(ctx, round); serr != nil {
			return serve.Status{}, nil, fmt.Errorf("client: %w while backing off from 429", serr)
		}
	}
}

// Get fetches a job status, preferring the affinity endpoint and
// failing over to the rest on transport errors. A 404 is answered
// authoritatively by any endpoint (the ID's owner is encoded in it),
// so it does not fail over.
func (cc *ClusterClient) Get(ctx context.Context, affinity *Client, id string) (serve.Status, error) {
	var lastErr error
	for _, c := range cc.ordered(affinity) {
		st, err := c.Get(ctx, id)
		if err == nil || errors.Is(err, ErrNotFound) {
			return st, err
		}
		lastErr = err
	}
	return serve.Status{}, lastErr
}

// Wait polls until the job reaches a terminal state or ctx is done,
// failing over between endpoints on transport errors.
func (cc *ClusterClient) Wait(ctx context.Context, affinity *Client, id string, poll time.Duration) (serve.Status, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := cc.Get(ctx, affinity, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Run submits a job and waits for its terminal status, returning the
// endpoint that accepted it.
func (cc *ClusterClient) Run(ctx context.Context, spec serve.JobSpec, poll time.Duration) (serve.Status, *Client, error) {
	st, c, err := cc.Submit(ctx, spec)
	if err != nil {
		return st, c, err
	}
	if st.State.Terminal() {
		// Cache hits come back terminal on the submit response; no
		// polling needed.
		return st, c, nil
	}
	fin, err := cc.Wait(ctx, c, st.ID, poll)
	// How the submission was satisfied (executed vs coalesced) is only
	// on the submit response; carry it onto the terminal status.
	if fin.Source == "" {
		fin.Source = st.Source
	}
	if fin.SpecHash == "" {
		fin.SpecHash = st.SpecHash
	}
	return fin, c, err
}

// ordered returns the clients with the affinity endpoint first.
func (cc *ClusterClient) ordered(affinity *Client) []*Client {
	if affinity == nil {
		return cc.clients
	}
	out := make([]*Client, 0, len(cc.clients))
	out = append(out, affinity)
	for _, c := range cc.clients {
		if c != affinity {
			out = append(out, c)
		}
	}
	return out
}
