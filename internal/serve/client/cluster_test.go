package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// stubEndpoint is one scripted cluster member.
type stubEndpoint struct {
	srv     *httptest.Server
	submits atomic.Int64
	// mode: "accept", "reject429", "reject503", or "down".
	mode atomic.Value
}

func newStubEndpoint(t *testing.T, id string) *stubEndpoint {
	t.Helper()
	e := &stubEndpoint{}
	e.mode.Store("accept")
	e.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			e.submits.Add(1)
			switch e.mode.Load().(string) {
			case "reject429":
				w.WriteHeader(http.StatusTooManyRequests)
			case "reject503":
				w.WriteHeader(http.StatusServiceUnavailable)
			default:
				writeStatus(w, http.StatusAccepted, serve.Status{
					ID: "j1@" + id, State: serve.StateQueued, Node: id,
				})
			}
		case r.Method == http.MethodGet:
			writeStatus(w, http.StatusOK, serve.Status{
				ID: "j1@" + id, State: serve.StateDone, Node: id,
			})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(e.srv.Close)
	return e
}

func writeStatus(w http.ResponseWriter, code int, st serve.Status) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(st)
}

func TestClusterClientValidation(t *testing.T) {
	if _, err := NewClusterClient(nil, nil); err == nil {
		t.Error("empty endpoint list accepted")
	}
	cc, err := NewClusterClient([]string{"http://a", "http://b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := cc.Endpoints(); len(got) != 2 || got[0] != "http://a" {
		t.Errorf("Endpoints = %v", got)
	}
}

// TestClusterClientRotation: successive submissions start from a
// rotating cursor, spreading entry load across healthy endpoints.
func TestClusterClientRotation(t *testing.T) {
	a, b, c := newStubEndpoint(t, "a"), newStubEndpoint(t, "b"), newStubEndpoint(t, "c")
	cc, err := NewClusterClient([]string{a.srv.URL, b.srv.URL, c.srv.URL}, &Backoff{NoJitter: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, _, err := cc.Submit(context.Background(), serve.JobSpec{Circuit: "ex5p"}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []*stubEndpoint{a, b, c} {
		if got := e.submits.Load(); got != 3 {
			t.Errorf("endpoint saw %d submissions, want 3 (even rotation)", got)
		}
	}
}

// TestClusterClientFailover: a 429 or unreachable endpoint rotates to
// the next without consuming the backoff budget.
func TestClusterClientFailover(t *testing.T) {
	a, b := newStubEndpoint(t, "a"), newStubEndpoint(t, "b")
	a.mode.Store("reject429")
	fs := &fakeSleeper{failAt: -1}
	cc, err := NewClusterClient([]string{a.srv.URL, b.srv.URL},
		&Backoff{Base: time.Millisecond, NoJitter: true, Retries: 2, sleep: fs.sleep})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		st, ep, err := cc.Submit(context.Background(), serve.JobSpec{Circuit: "ex5p"})
		if err != nil {
			t.Fatal(err)
		}
		if st.Node != "b" || ep.BaseURL != b.srv.URL {
			t.Fatalf("submission landed on %q via %q, want the healthy endpoint", st.Node, ep.BaseURL)
		}
	}
	if fs.count() != 0 {
		t.Errorf("%d backoff sleeps despite a healthy endpoint, want 0", fs.count())
	}
}

// TestClusterClientAllQueueFull: when every endpoint is saturated the
// client backs off between full rounds, then succeeds when one drains.
func TestClusterClientAllQueueFull(t *testing.T) {
	a, b := newStubEndpoint(t, "a"), newStubEndpoint(t, "b")
	a.mode.Store("reject429")
	b.mode.Store("reject429")
	fs := &fakeSleeper{failAt: -1}
	cc, err := NewClusterClient([]string{a.srv.URL, b.srv.URL},
		&Backoff{Base: time.Millisecond, NoJitter: true, Retries: 8, sleep: fs.sleep})
	if err != nil {
		t.Fatal(err)
	}
	// Drain endpoint b after the second backoff round.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for fs.count() < 2 {
			time.Sleep(100 * time.Microsecond)
		}
		b.mode.Store("accept")
	}()
	st, _, err := cc.Submit(context.Background(), serve.JobSpec{Circuit: "ex5p"})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != "b" {
		t.Errorf("landed on %q, want b", st.Node)
	}
	if fs.count() < 2 {
		t.Errorf("%d backoff rounds, want >= 2", fs.count())
	}
}

// TestClusterClientExhausted: persistent saturation everywhere
// surfaces an error naming ErrQueueFull after the retry budget.
func TestClusterClientExhausted(t *testing.T) {
	a := newStubEndpoint(t, "a")
	a.mode.Store("reject429")
	fs := &fakeSleeper{failAt: -1}
	cc, err := NewClusterClient([]string{a.srv.URL},
		&Backoff{Base: time.Millisecond, NoJitter: true, Retries: 3, sleep: fs.sleep})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cc.Submit(context.Background(), serve.JobSpec{Circuit: "ex5p"}); err == nil {
		t.Fatal("submit succeeded against a saturated cluster")
	}
	if got := a.submits.Load(); got != 4 {
		t.Errorf("%d attempts, want 4 (initial round + 3 retries)", got)
	}
}

// TestClusterClientDownEndpoint: an unreachable endpoint (connection
// refused) fails over without backoff and without failing the call.
func TestClusterClientDownEndpoint(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	b := newStubEndpoint(t, "b")
	cc, err := NewClusterClient([]string{deadURL, b.srv.URL}, &Backoff{NoJitter: true})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := cc.Submit(context.Background(), serve.JobSpec{Circuit: "ex5p"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != "b" {
		t.Errorf("landed on %q, want b", st.Node)
	}
	// Get fails over too.
	if _, err := cc.Get(context.Background(), nil, "j1@b"); err != nil {
		t.Errorf("Get with one endpoint down: %v", err)
	}
}
