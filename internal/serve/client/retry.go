package client

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff is a bounded exponential backoff schedule with jitter, used
// to absorb 429 backpressure instead of failing the caller. The
// schedule is delay(k) = min(Cap, Base·Mult^k) stretched by a jitter
// factor uniform in [1-Jitter, 1+Jitter]; jitter decorrelates the
// retry storms that synchronized clients would otherwise produce
// against a saturated owner node.
//
// The jitter stream is seeded, so a Backoff with a fixed Seed replays
// an identical schedule — the retry tables in the tests pin it with a
// fake clock.
type Backoff struct {
	// Base is the first delay (default 50ms).
	Base time.Duration
	// Cap bounds every delay (default 2s).
	Cap time.Duration
	// Mult is the growth factor (default 2).
	Mult float64
	// Jitter is the ± stretch fraction in [0, 1) (default 0.2; set
	// NoJitter for exact exponential delays).
	Jitter float64
	// NoJitter disables the stretch entirely.
	NoJitter bool
	// Retries bounds the retry count after the initial attempt
	// (default 8).
	Retries int
	// Seed fixes the jitter stream (0 seeds from 1).
	Seed int64

	// sleep is the test seam; nil means context-aware time.Sleep.
	sleep func(context.Context, time.Duration) error

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
}

// DefaultBackoff returns the standard schedule: 50ms doubling to a 2s
// cap, ±20% jitter, 8 retries (≈4s of accumulated patience).
func DefaultBackoff() *Backoff { return &Backoff{} }

func (b *Backoff) init() {
	b.once.Do(func() {
		if b.Base <= 0 {
			b.Base = 50 * time.Millisecond
		}
		if b.Cap <= 0 {
			b.Cap = 2 * time.Second
		}
		if b.Mult < 1 {
			b.Mult = 2
		}
		if b.Jitter <= 0 || b.Jitter >= 1 {
			b.Jitter = 0.2
		}
		if b.NoJitter {
			b.Jitter = 0
		}
		if b.Retries <= 0 {
			b.Retries = 8
		}
		seed := b.Seed
		if seed == 0 {
			seed = 1
		}
		b.rng = rand.New(rand.NewSource(seed))
		if b.sleep == nil {
			b.sleep = sleepCtx
		}
	})
}

// MaxRetries returns the retry bound.
func (b *Backoff) MaxRetries() int {
	b.init()
	return b.Retries
}

// Delay returns the k-th retry's delay (k counts from 0), advancing
// the jitter stream. Safe for concurrent use.
func (b *Backoff) Delay(k int) time.Duration {
	b.init()
	d := float64(b.Base)
	for i := 0; i < k; i++ {
		d *= b.Mult
		if d >= float64(b.Cap) {
			d = float64(b.Cap)
			break
		}
	}
	if d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	if b.Jitter > 0 {
		b.mu.Lock()
		u := b.rng.Float64()
		b.mu.Unlock()
		d *= 1 - b.Jitter + 2*b.Jitter*u
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Sleep waits out the k-th retry delay, returning early with ctx's
// error if the context dies first.
func (b *Backoff) Sleep(ctx context.Context, k int) error {
	b.init()
	return b.sleep(ctx, b.Delay(k))
}

// sleepCtx is a context-aware sleep.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
