// Package client is the Go client for a repld daemon: submit jobs,
// poll status, cancel, and wait for completion. cmd/replload builds
// its load generator on it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/serve"
)

// Rejection errors. ErrQueueFull corresponds to HTTP 429 (backpressure
// — retry later); ErrDraining to 503 (the daemon is shutting down);
// ErrNotFound to 404 (lets the cluster client tell a missing job from
// an unreachable node).
var (
	ErrQueueFull = errors.New("client: queue full (429)")
	ErrDraining  = errors.New("client: server draining (503)")
	ErrNotFound  = errors.New("client: no such job (404)")
)

// Client talks to one repld daemon.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 30s request timeout.
	HTTPClient *http.Client
	// Retry, when set, absorbs 429 rejections on Submit with bounded
	// exponential backoff instead of surfacing ErrQueueFull on the
	// first hit. Nil disables retrying (the pre-cluster behavior).
	Retry *Backoff
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
	}
}

// Submit enqueues a job and returns its initial status. A full queue
// fails with ErrQueueFull — after the Retry schedule is exhausted, if
// one is configured — and a draining daemon with ErrDraining.
func (c *Client) Submit(ctx context.Context, spec serve.JobSpec) (serve.Status, error) {
	st, err := c.submitOnce(ctx, spec)
	if c.Retry == nil {
		return st, err
	}
	for k := 0; errors.Is(err, ErrQueueFull) && k < c.Retry.MaxRetries(); k++ {
		if serr := c.Retry.Sleep(ctx, k); serr != nil {
			return st, err
		}
		st, err = c.submitOnce(ctx, spec)
	}
	return st, err
}

// submitOnce is a single submission attempt.
func (c *Client) submitOnce(ctx context.Context, spec serve.JobSpec) (serve.Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return serve.Status{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return serve.Status{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, http.StatusAccepted)
}

// Get fetches a job's status.
func (c *Client) Get(ctx context.Context, id string) (serve.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return serve.Status{}, err
	}
	return c.do(req, http.StatusOK)
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) (serve.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return serve.Status{}, err
	}
	return c.do(req, http.StatusOK)
}

// Wait polls until the job reaches a terminal state or ctx is done.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (serve.Status, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Run submits a job and waits for its terminal status.
func (c *Client) Run(ctx context.Context, spec serve.JobSpec, poll time.Duration) (serve.Status, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return st, err
	}
	return c.Wait(ctx, st.ID, poll)
}

// Health fetches /healthz ("ok" or "draining").
func (c *Client) Health(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var doc struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", err
	}
	return doc.Status, nil
}

// do executes the request and decodes a Status, mapping the rejection
// statuses to their sentinel errors.
func (c *Client) do(req *http.Request, want int) (serve.Status, error) {
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return serve.Status{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case want:
		var st serve.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return serve.Status{}, fmt.Errorf("client: decode response: %w", err)
		}
		return st, nil
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return serve.Status{}, ErrQueueFull
	case http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return serve.Status{}, ErrDraining
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return serve.Status{}, ErrNotFound
	default:
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return serve.Status{}, fmt.Errorf("client: %s %s: %s", req.Method, req.URL.Path, e.Error)
	}
}
