package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flow"
)

// raceTable is the metamorphic test seam: a deterministic per-variant
// outcome table (period or failure) plus injected per-variant delays.
// The delays perturb finish order — the thing the determinism rule must
// be blind to — while the outcomes fix what every variant computes.
type raceTable struct {
	period map[string]float64
	fail   map[string]bool
	delay  map[string]time.Duration
}

// runner turns the table into a Runner: each variant sleeps its
// injected delay, then reports its fixed period (or failure).
func (rt *raceTable) runner() Runner {
	return func(ctx context.Context, spec JobSpec) (*Result, error) {
		if d := rt.delay[spec.Algo]; d > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(d):
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if rt.fail[spec.Algo] {
			return nil, fmt.Errorf("variant %s: injected failure", spec.Algo)
		}
		p, ok := rt.period[spec.Algo]
		if !ok {
			return nil, fmt.Errorf("variant %s: no table entry", spec.Algo)
		}
		return &Result{Circuit: spec.Circuit, Algo: spec.Algo, OptimizedPeriod: p}, nil
	}
}

// refWinner is an independent restatement of the determinism rule,
// computed without running anything: earliest canonical-order variant
// meeting the bound; otherwise (bound 0 or nobody meets it) the best
// period among the successes, ties to canonical order. ok=false means
// every variant fails.
func refWinner(variants []string, tab *raceTable, bound float64) (winner string, met, ok bool) {
	if bound > 0 {
		for _, v := range variants {
			if !tab.fail[v] && tab.period[v] <= bound {
				return v, true, true
			}
		}
	}
	best := ""
	for _, v := range variants {
		if tab.fail[v] {
			continue
		}
		if best == "" || tab.period[v] < tab.period[best] {
			best = v
		}
	}
	return best, false, best != ""
}

// subsetVariants expands a bitmask over the canonical engine-variant
// list into a variant subset.
func subsetVariants(mask int) []string {
	names := flow.EngineAlgorithmNames()
	var out []string
	for i, n := range names {
		if mask&(1<<i) != 0 {
			out = append(out, n)
		}
	}
	return out
}

// TestRaceMetamorphic is the racing determinism suite: across every
// non-empty variant subset, randomized outcome tables, bounds, and
// injected per-variant delays, RunRace must return exactly the result
// of running the reference-rule winner alone — Float64bits-identical
// period — regardless of which variant finishes first.
func TestRaceMetamorphic(t *testing.T) {
	trials := 3
	if testing.Short() {
		trials = 1
	}
	rng := rand.New(rand.NewSource(9))
	delays := []time.Duration{0, time.Millisecond, 3 * time.Millisecond, 7 * time.Millisecond}
	for mask := 1; mask < 1<<len(flow.EngineAlgorithms); mask++ {
		variants := subsetVariants(mask)
		for trial := 0; trial < trials; trial++ {
			tab := &raceTable{
				period: map[string]float64{},
				fail:   map[string]bool{},
				delay:  map[string]time.Duration{},
			}
			for _, v := range variants {
				// Quarter-step periods keep every comparison float-exact.
				tab.period[v] = 8 + float64(rng.Intn(16))*0.25
				tab.fail[v] = rng.Intn(5) == 0
				tab.delay[v] = delays[rng.Intn(len(delays))]
			}
			var bound float64
			switch rng.Intn(4) {
			case 0:
				bound = 0 // unbounded: run everything, best period wins
			case 1:
				bound = 1 // impossible: nobody meets it
			case 2:
				bound = 100 // trivial: first success meets it
			default:
				bound = 8 + float64(rng.Intn(16))*0.25
			}
			spec := JobSpec{Circuit: "ex5p", Algo: AlgoRace, RaceVariants: variants, PeriodBound: bound}
			got, err := RunRace(context.Background(), spec, tab.runner())
			want, wantMet, wantOK := refWinner(variants, tab, bound)
			name := fmt.Sprintf("mask=%#x trial=%d bound=%v table=%+v", mask, trial, bound, tab)
			if !wantOK {
				if err == nil {
					t.Fatalf("%s: expected all-variants-failed error, got winner %q", name, got.RaceWinner)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: RunRace: %v", name, err)
			}
			if got.RaceWinner != want || got.RaceMetBound != wantMet {
				t.Fatalf("%s: winner %q (met=%v), reference rule says %q (met=%v)",
					name, got.RaceWinner, got.RaceMetBound, want, wantMet)
			}
			// The raced result must be the winner's solo result, bit
			// for bit: same runner, same spec, no race around it.
			solo := spec
			solo.Algo = want
			solo.RaceVariants = nil
			solo.PeriodBound = 0
			ref, err := tab.runner()(context.Background(), solo.Normalized())
			if err != nil {
				t.Fatalf("%s: solo run of winner: %v", name, err)
			}
			if math.Float64bits(got.OptimizedPeriod) != math.Float64bits(ref.OptimizedPeriod) {
				t.Fatalf("%s: raced period %x != solo period %x",
					name, math.Float64bits(got.OptimizedPeriod), math.Float64bits(ref.OptimizedPeriod))
			}
		}
	}
}

// TestRaceRealEngine races the actual engine on a small seeded
// instance at several Parallelism settings: the raced Result must be
// byte-identical (modulo race decoration and wall-clock telemetry) to
// executing the winning variant alone.
func TestRaceRealEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("real-engine race in -short mode")
	}
	base := JobSpec{Circuit: "ex5p", Scale: 0.05, Seed: 1, Effort: 0.5, MaxIters: 2}
	for _, par := range []int{1, 2, 4} {
		spec := base
		spec.Algo = AlgoRace
		spec.RaceVariants = []string{"rt", "lex3"}
		spec.Parallelism = par
		raced, err := RunRace(context.Background(), spec, ExecuteJob)
		if err != nil {
			t.Fatalf("par=%d: RunRace: %v", par, err)
		}
		if raced.RaceWinner == "" {
			t.Fatalf("par=%d: no winner recorded", par)
		}
		solo := base
		solo.Algo = raced.RaceWinner
		solo.Parallelism = par
		ref, err := ExecuteJob(context.Background(), solo)
		if err != nil {
			t.Fatalf("par=%d: solo %s: %v", par, raced.RaceWinner, err)
		}
		if math.Float64bits(raced.OptimizedPeriod) != math.Float64bits(ref.OptimizedPeriod) ||
			math.Float64bits(raced.PlacedPeriod) != math.Float64bits(ref.PlacedPeriod) {
			t.Fatalf("par=%d: raced periods (%x, %x) != solo (%x, %x)", par,
				math.Float64bits(raced.PlacedPeriod), math.Float64bits(raced.OptimizedPeriod),
				math.Float64bits(ref.PlacedPeriod), math.Float64bits(ref.OptimizedPeriod))
		}
		// Full structural identity, ignoring wall-clock telemetry and
		// the race decoration.
		a, b := *raced, *ref
		a.RaceWinner, a.RaceMetBound = "", false
		a.Phases, b.Phases = ref.Phases, ref.Phases
		a.PlaceSeconds, b.PlaceSeconds = 0, 0
		a.EngineSeconds, b.EngineSeconds = 0, 0
		a.RouteSeconds, b.RouteSeconds = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("par=%d: raced result drifted from solo run:\n  raced %+v\n  solo  %+v", par, a, b)
		}
	}
}

// TestRaceCancelsLosers: once the canonical-first variant meets the
// bound, later variants must be cancelled instead of running to their
// (long) completion — and every variant goroutine must be joined by
// the time RunRace returns.
func TestRaceCancelsLosers(t *testing.T) {
	before := runtime.NumGoroutine()
	var slowFinished atomic.Bool
	run := func(ctx context.Context, spec JobSpec) (*Result, error) {
		if spec.Algo == "rt" {
			return &Result{Algo: "rt", OptimizedPeriod: 5}, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(30 * time.Second):
			slowFinished.Store(true)
			return &Result{Algo: spec.Algo, OptimizedPeriod: 1}, nil
		}
	}
	spec := JobSpec{Circuit: "ex5p", Algo: AlgoRace, PeriodBound: 10}
	start := time.Now()
	res, err := RunRace(context.Background(), spec, run)
	if err != nil {
		t.Fatalf("RunRace: %v", err)
	}
	if res.RaceWinner != "rt" || !res.RaceMetBound {
		t.Fatalf("winner %q met=%v, want rt met=true", res.RaceWinner, res.RaceMetBound)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("race took %v: losers were not cancelled", elapsed)
	}
	if slowFinished.Load() {
		t.Fatal("a losing variant ran to completion despite cancellation")
	}
	if !goroutinesSettle(before, 5*time.Second) {
		t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
	}
}

// TestRaceLateWinnerWaitsForEarlier: a later-ordered variant that
// finishes first and meets the bound must NOT win while an
// earlier-ordered variant is still running — the earlier one finishes,
// meets the bound too, and takes the race. First-finisher-wins would
// fail this.
func TestRaceLateWinnerWaitsForEarlier(t *testing.T) {
	run := func(ctx context.Context, spec JobSpec) (*Result, error) {
		d := time.Duration(0)
		if spec.Algo == "rt" {
			d = 100 * time.Millisecond // canonical-first, slowest
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(d):
		}
		return &Result{Algo: spec.Algo, OptimizedPeriod: 5}, nil
	}
	spec := JobSpec{Circuit: "ex5p", Algo: AlgoRace, RaceVariants: []string{"rt", "lex5"}, PeriodBound: 10}
	res, err := RunRace(context.Background(), spec, run)
	if err != nil {
		t.Fatalf("RunRace: %v", err)
	}
	if res.RaceWinner != "rt" {
		t.Fatalf("winner %q: a fast later-ordered finisher stole the race from rt", res.RaceWinner)
	}
}

// TestRaceAllFail: the aggregate error must name every variant, in
// canonical order, so the failure is as deterministic as a result.
func TestRaceAllFail(t *testing.T) {
	run := func(ctx context.Context, spec JobSpec) (*Result, error) {
		return nil, fmt.Errorf("%s exploded", spec.Algo)
	}
	spec := JobSpec{Circuit: "ex5p", Algo: AlgoRace, RaceVariants: []string{"lex3", "rt"}}
	_, err := RunRace(context.Background(), spec, run)
	if err == nil {
		t.Fatal("expected error when every variant fails")
	}
	if !strings.Contains(err.Error(), "rt: rt exploded; lex3: lex3 exploded") {
		t.Fatalf("aggregate error not in canonical order: %v", err)
	}
}

// TestRacePanicIsolation: a panicking variant loses the race as a
// failure; the survivors still decide a winner.
func TestRacePanicIsolation(t *testing.T) {
	run := func(ctx context.Context, spec JobSpec) (*Result, error) {
		if spec.Algo == "rt" {
			panic("rt blew up")
		}
		return &Result{Algo: spec.Algo, OptimizedPeriod: 7}, nil
	}
	spec := JobSpec{Circuit: "ex5p", Algo: AlgoRace, RaceVariants: []string{"rt", "lex3"}, PeriodBound: 10}
	res, err := RunRace(context.Background(), spec, run)
	if err != nil {
		t.Fatalf("RunRace: %v", err)
	}
	if res.RaceWinner != "lex3" {
		t.Fatalf("winner %q, want lex3 after rt panicked", res.RaceWinner)
	}
}

// TestRaceParentCancel: cancelling the job context cancels the whole
// race promptly, like any single-variant job.
func TestRaceParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	spec := JobSpec{Circuit: "ex5p", Algo: AlgoRace}
	_, err := RunRace(ctx, spec, sleepRunner(30*time.Second))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
}

// TestRaceThroughManager drives a raced job through Submit/Wait: the
// manager routes Algo=race through the speculative layer with the
// configured Runner as the per-variant seam, and the counters record
// the race and its cancelled losers.
func TestRaceThroughManager(t *testing.T) {
	tab := &raceTable{
		period: map[string]float64{"rt": 9, "lexmc": 8, "lex2": 7, "lex3": 6, "lex4": 5, "lex5": 4},
		fail:   map[string]bool{},
		delay:  map[string]time.Duration{"lex4": 50 * time.Millisecond, "lex5": 50 * time.Millisecond},
	}
	m := NewManager(Config{Workers: 1, Runner: tab.runner()})
	defer m.Shutdown(context.Background())
	st, err := m.Submit(JobSpec{Circuit: "ex5p", Algo: AlgoRace, PeriodBound: 8.5, QoS: QoSDeadline})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final, err := m.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("state %s (err %q), want done", final.State, final.Error)
	}
	// lexmc is the earliest canonical variant meeting the 8.5 bound.
	if final.Result == nil || final.Result.RaceWinner != "lexmc" {
		t.Fatalf("result %+v, want winner lexmc", final.Result)
	}
	c := m.Counters()
	if c.Races != 1 {
		t.Fatalf("races counter %d, want 1", c.Races)
	}
	if c.RaceLosersCancelled == 0 {
		t.Fatal("expected cancelled losers (lex4/lex5 were delayed past the decision)")
	}
	if c.JobsDeadline != 1 {
		t.Fatalf("deadline counter %d, want 1", c.JobsDeadline)
	}
}
