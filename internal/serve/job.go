// Package serve turns the replication engine into a long-running
// service: a bounded FIFO job queue feeding a worker pool, with
// per-job timeouts, cooperative cancellation threaded down into the
// engine/embedder/STA, panic isolation, graceful drain, and
// expvar-style introspection. cmd/repld is the HTTP front end;
// internal/serve/client and cmd/replload drive it.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/netlist"
)

// JobSpec describes one replication job. Exactly one of Circuit (a
// synthetic suite circuit by name) or Netlist (inline text-format
// netlist) selects the design; the rest tune the flow. The zero value
// of every optional field selects a sane default, so a minimal job is
// {"circuit":"ex5p"}.
type JobSpec struct {
	// Circuit names a synthetic suite circuit (circuits.ByName).
	Circuit string `json:"circuit,omitempty"`
	// Scale multiplies the suite circuit size (default 0.2; ignored
	// with Netlist).
	Scale float64 `json:"scale,omitempty"`
	// Netlist is an inline netlist in the package text format.
	Netlist string `json:"netlist,omitempty"`
	// Algo is the optimization algorithm, in the shared
	// flow.ParseAlgorithm vocabulary (default "rt").
	Algo string `json:"algo,omitempty"`
	// Seed drives placement (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Effort is the placer annealing effort (default 2).
	Effort float64 `json:"effort,omitempty"`
	// MaxIters caps engine iterations (default: engine default).
	MaxIters int `json:"max_iters,omitempty"`
	// Parallelism bounds engine/STA workers (default: all CPUs).
	Parallelism int `json:"parallelism,omitempty"`
	// Route runs the low-stress router after optimization.
	Route bool `json:"route,omitempty"`
	// TimeoutMS caps the job's run time; 0 uses the manager default.
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// RaceVariants lists the engine variants to race when Algo is
	// AlgoRace (default: every flow.EngineAlgorithms variant). Order,
	// case, and duplicates are irrelevant — Normalized folds the list
	// into canonical racing order, so two raced specs differing only in
	// list order hash identically in the cluster layer.
	RaceVariants []string `json:"race_variants,omitempty"`
	// PeriodBound is the racing target (AlgoRace only): the earliest
	// canonical-order variant whose optimized period meets the bound
	// wins. 0 means unbounded — every variant runs and the best period
	// wins (ties go to canonical order).
	PeriodBound float64 `json:"period_bound,omitempty"`
	// QoS selects the scheduling class: QoSDeadline jobs are scheduled
	// ahead of QoSBestEffort ones (with a bounded bypass count so
	// best-effort jobs cannot starve). Scheduling-only: it never
	// changes what a job computes, so the cluster layer excludes it
	// from the content hash.
	QoS string `json:"qos,omitempty"`
}

// AlgoRace is the JobSpec.Algo value selecting speculative
// multi-variant racing.
const AlgoRace = "race"

// QoS class names accepted in JobSpec.QoS. Empty means best-effort.
const (
	QoSBestEffort = "best-effort"
	QoSDeadline   = "deadline"
)

// IsRace reports whether the spec requests speculative racing.
func (s *JobSpec) IsRace() bool {
	return strings.EqualFold(s.Algo, AlgoRace)
}

// Deadline reports whether the spec is in the deadline QoS class.
func (s *JobSpec) Deadline() bool {
	return strings.EqualFold(s.QoS, QoSDeadline)
}

// maxInlineNetlist bounds inline netlist text (16 MiB, matching the
// parser's line-buffer cap) so a single request cannot exhaust memory.
const maxInlineNetlist = 16 << 20

// Normalized returns the spec with every semantic default applied:
// the canonical algorithm spelling, seed 1, the service effort and
// scale defaults, and — for inline-netlist jobs — the circuit/scale
// fields cleared (they are ignored on that path). Two valid specs that
// normalize equal produce bit-identical results, which is what the
// cluster layer's content hash keys on; ExecuteJob resolves its
// defaults through here so the two can never drift. Parallelism and
// TimeoutMS are left untouched: they change how fast a job runs, not
// what it computes.
func (s JobSpec) Normalized() JobSpec {
	n := s
	if n.IsRace() {
		n.Algo = AlgoRace
		n.RaceVariants = canonVariants(n.RaceVariants)
	} else {
		if a, ok := flow.ParseAlgorithm(n.Algo); ok {
			n.Algo = flow.CanonicalName(a)
		}
		// Race tuning is meaningless outside racing; clearing it here
		// (rather than hashing it) would let a stray bound alias two
		// different submissions, so Validate rejects it instead and
		// normalization only has to handle the race side.
	}
	n.QoS = strings.ToLower(n.QoS)
	if n.Seed == 0 {
		n.Seed = 1
	}
	if n.Effort == 0 {
		n.Effort = defaultEffort
	}
	if n.Netlist != "" {
		n.Circuit = ""
		n.Scale = 0
	} else if n.Scale == 0 {
		n.Scale = defaultScale
	}
	return n
}

// canonVariants folds a raced variant list into canonical racing
// order: names resolve through flow.ParseAlgorithm, duplicates and
// case variants collapse, and the result follows flow.EngineAlgorithms
// order — the order racing winners are decided in. An empty list
// selects every engine variant. Lists containing empty, unknown, or
// non-engine names come back unchanged for Validate to reject.
func canonVariants(vs []string) []string {
	if len(vs) == 0 {
		return flow.EngineAlgorithmNames()
	}
	have := make(map[flow.Algorithm]bool, len(vs))
	for _, v := range vs {
		a, ok := flow.ParseAlgorithm(v)
		if v == "" || !ok || flow.EngineOrder(a) < 0 {
			return vs
		}
		have[a] = true
	}
	out := make([]string, 0, len(have))
	for _, a := range flow.EngineAlgorithms {
		if have[a] {
			out = append(out, flow.CanonicalName(a))
		}
	}
	return out
}

// DecodeSpec parses one job spec from r, rejecting unknown fields. It
// does not validate — submission does that — but any input, however
// hostile, must come back as an error, never a panic; the fuzz harness
// holds it to that.
func DecodeSpec(r io.Reader) (JobSpec, error) {
	var spec JobSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return JobSpec{}, err
	}
	return spec, nil
}

// Validate rejects malformed specs up front, before the job consumes a
// queue slot.
func (s *JobSpec) Validate() error {
	if (s.Circuit == "") == (s.Netlist == "") {
		return fmt.Errorf("spec needs exactly one of circuit or netlist")
	}
	if s.Circuit != "" {
		if _, ok := circuits.ByName(s.Circuit); !ok {
			return fmt.Errorf("unknown circuit %q", s.Circuit)
		}
	}
	if len(s.Netlist) > maxInlineNetlist {
		return fmt.Errorf("inline netlist exceeds %d bytes", maxInlineNetlist)
	}
	if s.IsRace() {
		for _, v := range s.RaceVariants {
			a, ok := flow.ParseAlgorithm(v)
			if v == "" || !ok || flow.EngineOrder(a) < 0 {
				return fmt.Errorf("race variant %q is not an engine variant (valid: %s)",
					v, strings.Join(flow.EngineAlgorithmNames(), ", "))
			}
		}
		if math.IsNaN(s.PeriodBound) || math.IsInf(s.PeriodBound, 0) || s.PeriodBound < 0 {
			return fmt.Errorf("period bound %v must be finite and non-negative", s.PeriodBound)
		}
	} else {
		if _, ok := flow.ParseAlgorithm(s.Algo); !ok {
			return fmt.Errorf("unknown algorithm %q (valid: %s, %s)",
				s.Algo, strings.Join(flow.AlgorithmNames(), ", "), AlgoRace)
		}
		if len(s.RaceVariants) > 0 || s.PeriodBound != 0 {
			return fmt.Errorf("race_variants/period_bound require algo %q", AlgoRace)
		}
	}
	switch strings.ToLower(s.QoS) {
	case "", QoSBestEffort, QoSDeadline:
	default:
		return fmt.Errorf("unknown qos %q (valid: %s, %s)", s.QoS, QoSBestEffort, QoSDeadline)
	}
	if s.Scale < 0 || s.Scale > 1 {
		return fmt.Errorf("scale %v out of range (0, 1]", s.Scale)
	}
	if s.TimeoutMS < 0 || s.MaxIters < 0 || s.Parallelism < 0 || s.Effort < 0 {
		return fmt.Errorf("negative tuning field")
	}
	if s.Netlist != "" {
		// Parse once at admission so syntax errors come back on the
		// submit response, not as a failed job.
		if _, err := netlist.Read(strings.NewReader(s.Netlist)); err != nil {
			return fmt.Errorf("netlist: %w", err)
		}
	}
	return nil
}

// State is a job's lifecycle state.
type State string

// Job lifecycle: Queued → Running → one of the terminal states
// (Done, Failed, Cancelled). A queued job can go straight to
// Cancelled without running.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Result is a completed job's outcome.
type Result struct {
	Circuit string `json:"circuit"`
	Algo    string `json:"algo"`
	LUTs    int    `json:"luts"`
	IOs     int    `json:"ios"`
	// PlacedPeriod / OptimizedPeriod are the placement-level STA clock
	// periods before and after optimization.
	PlacedPeriod    float64 `json:"placed_period"`
	OptimizedPeriod float64 `json:"optimized_period"`
	Iterations      int     `json:"iterations"`
	Replicated      int     `json:"replicated"`
	Unified         int     `json:"unified"`
	FFRelocations   int     `json:"ff_relocations"`
	StoppedEarly    bool    `json:"stopped_early,omitempty"`
	// Phases is the engine's per-phase wall-clock breakdown.
	//replint:metadata -- timing telemetry; the solver's outputs never read it back
	Phases core.PhaseTimes `json:"phases"`
	// Incremental is the engine's incremental-machinery telemetry:
	// dirty-cone sizes, STA cells re-propagated, and cache hit/miss
	// splits for the critical-path and frontier caches.
	//replint:metadata -- reuse telemetry; the solver's outputs never read it back
	Incremental core.IncrementalStats `json:"incremental"`
	// Coarse per-stage seconds for the whole flow.
	//replint:metadata -- timing telemetry; the solver's outputs never read it back
	PlaceSeconds float64 `json:"place_seconds"`
	//replint:metadata -- timing telemetry; the solver's outputs never read it back
	EngineSeconds float64 `json:"engine_seconds"`
	//replint:metadata -- timing telemetry; the solver's outputs never read it back
	RouteSeconds float64 `json:"route_seconds,omitempty"`
	// Routing results (Route jobs only).
	RoutedCritPath float64 `json:"routed_crit_path,omitempty"`
	ChannelWidth   int     `json:"channel_width,omitempty"`
	WireLength     int     `json:"wire_length,omitempty"`

	// Race outcome (raced jobs only). RaceWinner is the canonical name
	// of the variant whose result this is, and RaceMetBound reports
	// whether it met the spec's period bound. Both are functions of the
	// per-variant results alone — never of finish order — so they are
	// as bit-reproducible as the rest of the Result.
	RaceWinner   string `json:"race_winner,omitempty"`
	RaceMetBound bool   `json:"race_met_bound,omitempty"`
}

// Status is the externally visible job record, as served at
// GET /v1/jobs/{id}.
type Status struct {
	ID    string  `json:"id"`
	State State   `json:"state"`
	Spec  JobSpec `json:"spec"`
	Error string  `json:"error,omitempty"`
	// Position is the number of same-QoS-class jobs ahead in the queue
	// (queued only); cross-class order depends on the bypass policy.
	Position int `json:"position,omitempty"`

	// SpecHash, Source, and Node are set by the cluster layer
	// (internal/cluster): the job's content address, how this status
	// was satisfied ("executed", "coalesced", "cache", or
	// "forwarded"), and the node that executed it. Empty on a
	// single-process repld.
	SpecHash string `json:"spec_hash,omitempty"`
	Source   string `json:"source,omitempty"`
	Node     string `json:"node,omitempty"`

	//replint:metadata -- queue timestamps are job metadata, not solver output
	SubmittedAt time.Time `json:"submitted_at"`
	//replint:metadata -- queue timestamps are job metadata, not solver output
	StartedAt *time.Time `json:"started_at,omitempty"`
	//replint:metadata -- queue timestamps are job metadata, not solver output
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// QueueSeconds and RunSeconds split the job's latency.
	//replint:metadata -- latency telemetry, not solver output
	QueueSeconds float64 `json:"queue_seconds"`
	//replint:metadata -- latency telemetry, not solver output
	RunSeconds float64 `json:"run_seconds,omitempty"`

	Result *Result `json:"result,omitempty"`
}
