package serve

// Speculative multi-variant racing. A job with Algo == AlgoRace runs
// every listed engine variant in parallel under one parent context and
// returns one variant's result — chosen by a rule that is a pure
// function of the per-variant results, never of finish order.
//
// The rule: the winner is the earliest variant in canonical
// flow.EngineAlgorithms order among those meeting the period bound. A
// later-ordered variant can be declared the winner only after every
// earlier-ordered variant has finished (missing the bound or failing)
// — an early finish by a later variant merely lets the race cancel
// variants that are provably unable to win, it never changes which
// result is returned. With no bound (PeriodBound == 0) every variant
// runs to completion and the smallest optimized period wins, ties
// resolved toward canonical order.
//
// Why not first-finisher-wins: each variant is individually
// bit-deterministic, but which variant finishes first is scheduling
// noise. The cluster layer content-addresses specs and replays cached
// results for byte-identical submissions (internal/cluster), so a
// raced spec must map to exactly one result forever. The canonical-
// order rule makes the winner — and therefore the cached result — a
// function of the spec alone.

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
)

// RunRace executes a raced spec by fanning its variants out through
// run and returning the deterministic winner's result, decorated with
// RaceWinner/RaceMetBound. Losing variants are cancelled as soon as
// they are provably unable to win, and every variant goroutine is
// joined before RunRace returns — no work outlives the call. A
// non-race spec falls through to run unchanged.
func RunRace(ctx context.Context, spec JobSpec, run Runner) (*Result, error) {
	return raceRun(ctx, spec, run, nil)
}

// raceOutcome is one variant's terminal state.
type raceOutcome struct {
	res *Result
	err error
}

// raceRun is RunRace with the manager's counter hooks (nil-safe).
func raceRun(ctx context.Context, spec JobSpec, run Runner, c *counters) (*Result, error) {
	norm := spec.Normalized()
	if !norm.IsRace() {
		return run(ctx, spec)
	}
	if err := norm.Validate(); err != nil {
		return nil, err
	}
	variants := norm.RaceVariants
	bound := norm.PeriodBound
	n := len(variants)

	rctx, rcancel := context.WithCancel(ctx)
	cancels := make([]context.CancelFunc, n)
	outs := make([]*raceOutcome, n) // nil until that variant finishes
	type completion struct {
		i   int
		out raceOutcome
	}
	compl := make(chan completion, n) // buffered: no send outlives the loop

	var wg sync.WaitGroup
	for i, v := range variants {
		vspec := norm
		vspec.Algo = v
		vspec.RaceVariants = nil
		vspec.PeriodBound = 0
		vctx, vcancel := context.WithCancel(rctx)
		cancels[i] = vcancel
		wg.Add(1)
		go func(i int, vspec JobSpec, vctx context.Context) {
			defer wg.Done()
			compl <- completion{i, runVariant(vctx, vspec, run)}
		}(i, vspec, vctx)
	}
	// Losers' teardown, in LIFO defer order: cancel whatever is still
	// running, then join every variant goroutine before the result
	// escapes.
	defer wg.Wait()
	defer rcancel()

	// met is bound satisfaction; only meaningful when a bound is set.
	met := func(o *raceOutcome) bool {
		return o != nil && o.err == nil && o.res != nil && bound > 0 && o.res.OptimizedPeriod <= bound
	}

	// decide scans variants in canonical order and reports the winner
	// once it is determined. It reads only the outcome board — never
	// arrival order — so any completion interleaving that produces the
	// same board decides the same winner.
	decide := func() (int, bool) {
		for i := 0; i < n; i++ {
			o := outs[i]
			if o == nil {
				// An unfinished earlier-ordered variant may still meet
				// the bound and outrank everything after it.
				return 0, false
			}
			if met(o) {
				return i, true
			}
		}
		// Every variant finished and none met the bound (or none was
		// set): the best period among the successes wins, earliest
		// canonical order on exact ties.
		best := -1
		for i := 0; i < n; i++ {
			o := outs[i]
			if o.err != nil || o.res == nil {
				continue
			}
			if best < 0 || o.res.OptimizedPeriod < outs[best].res.OptimizedPeriod {
				best = i
			}
		}
		return best, true
	}

	finalize := func(w int) (*Result, error) {
		if c != nil {
			for _, o := range outs {
				if o == nil {
					c.raceCancelled.Add(1)
				}
			}
		}
		if w < 0 {
			msgs := make([]string, 0, n)
			for i, o := range outs {
				msgs = append(msgs, fmt.Sprintf("%s: %v", variants[i], o.err))
			}
			return nil, fmt.Errorf("race: every variant failed: %s", strings.Join(msgs, "; "))
		}
		res := *outs[w].res
		res.RaceWinner = variants[w]
		res.RaceMetBound = met(outs[w])
		return &res, nil
	}

	for pending := n; pending > 0; {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case cm := <-compl:
			outs[cm.i] = &cm.out
			pending--
			if w, ok := decide(); ok {
				return finalize(w)
			}
			if met(outs[cm.i]) {
				// cm.i meets the bound, so the eventual winner is at
				// canonical index <= cm.i: cancel everything after it —
				// those variants are provably unable to win, and
				// cutting them early is the whole point of racing.
				for k := cm.i + 1; k < n; k++ {
					if outs[k] == nil {
						cancels[k]()
					}
				}
			}
		}
	}
	w, _ := decide() // the full board always decides
	return finalize(w)
}

// runVariant runs one variant with per-variant panic isolation: a
// panicking variant loses the race as a failure instead of taking the
// whole job (or daemon) down with it.
func runVariant(ctx context.Context, spec JobSpec, run Runner) (out raceOutcome) {
	defer func() {
		if r := recover(); r != nil {
			out = raceOutcome{err: fmt.Errorf("variant %s panicked: %v\n%s", spec.Algo, r, debug.Stack())}
		}
	}()
	res, err := run(ctx, spec)
	return raceOutcome{res: res, err: err}
}
