package serve

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/localrep"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/timing"
)

// defaultScale keeps suite circuits service-sized unless the job asks
// for more; 1.0 is the paper's published sizes.
const defaultScale = 0.2

// defaultEffort trades placement quality for latency relative to the
// VPR default of 10.
const defaultEffort = 2.0

// ExecuteJob runs one replication job start to finish: resolve the
// design, place it, optimize it with the selected algorithm under ctx,
// and optionally route. It is the Manager's default Runner. The result
// is deterministic for identical specs at any Parallelism, because the
// placer is seed-driven and the engine's parallel paths are
// bit-identical to serial.
func ExecuteJob(ctx context.Context, spec JobSpec) (*Result, error) {
	// Normalized() applies every semantic default exactly once; the
	// cluster layer hashes the same normal form, so two specs with
	// equal hashes run identical flows here.
	spec = spec.Normalized()
	algo, ok := flow.ParseAlgorithm(spec.Algo)
	if !ok {
		return nil, fmt.Errorf("unknown algorithm %q", spec.Algo)
	}
	nl, err := resolveNetlist(spec)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	dm := arch.DefaultDelayModel()
	f := arch.MinSquare(nl.NumLUTs(), nl.NumIOs())
	res := &Result{
		Circuit: nl.Name,
		Algo:    algo.String(),
		LUTs:    nl.NumLUTs(),
		IOs:     nl.NumIOs(),
	}

	popt := place.Defaults()
	popt.Seed = spec.Seed
	popt.Effort = spec.Effort
	popt.Delay = dm
	t0 := time.Now()
	pl, err := place.PlaceContext(ctx, nl, f, popt)
	res.PlaceSeconds = time.Since(t0).Seconds()
	if err != nil {
		return nil, fmt.Errorf("place: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	workers := spec.Parallelism
	a, err := timing.AnalyzeWorkersCtx(ctx, nl, pl, dm, staWorkers(workers))
	if err != nil {
		return nil, err
	}
	res.PlacedPeriod = a.Period

	t0 = time.Now()
	switch algo {
	case flow.VPRBaseline:
		// The unoptimized placement is the result.
	case flow.LocalRep:
		opt := localrep.Defaults()
		opt.Seed = popt.Seed
		var st *localrep.Stats
		nl, pl, st, err = localrep.BestOf(nl, pl, dm, opt, 3)
		if err != nil {
			return nil, fmt.Errorf("local replication: %w", err)
		}
		res.Iterations = st.Iterations
		res.Replicated = st.Replicated
	default:
		ecfg := core.Default()
		ecfg.Mode = algo.Mode()
		if workers > 0 {
			ecfg.Parallelism = workers
		}
		if spec.MaxIters > 0 {
			ecfg.MaxIters = spec.MaxIters
		}
		eng := core.New(nl, pl, dm, ecfg)
		st, err := eng.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		nl, pl = eng.Netlist, eng.Placement
		res.Iterations = st.Iterations
		res.Replicated = st.Replicated
		res.Unified = st.Unified
		res.FFRelocations = st.FFRelocations
		res.StoppedEarly = st.StoppedEarly
		res.Phases = st.Phases
		res.Incremental = st.Incremental
	}
	res.EngineSeconds = time.Since(t0).Seconds()

	a, err = timing.AnalyzeWorkersCtx(ctx, nl, pl, dm, staWorkers(workers))
	if err != nil {
		return nil, err
	}
	res.OptimizedPeriod = a.Period

	if spec.Route {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t0 = time.Now()
		ls, w, err := route.LowStress(nl, pl, f, dm, route.Defaults())
		res.RouteSeconds = time.Since(t0).Seconds()
		if err != nil {
			return nil, fmt.Errorf("route: %w", err)
		}
		res.RoutedCritPath = ls.CritPath
		res.ChannelWidth = w
		res.WireLength = ls.WireLength
	}
	return res, nil
}

// staWorkers maps a spec's Parallelism (0 = default) to the STA worker
// count.
func staWorkers(p int) int {
	if p > 0 {
		return p
	}
	return core.Default().Parallelism
}

// resolveNetlist materializes the job's design: parse the inline text
// or generate the named suite circuit at the requested scale.
func resolveNetlist(spec JobSpec) (*netlist.Netlist, error) {
	if spec.Netlist != "" {
		nl, err := netlist.Read(strings.NewReader(spec.Netlist))
		if err != nil {
			return nil, fmt.Errorf("netlist: %w", err)
		}
		return nl, nil
	}
	mc, ok := circuits.ByName(spec.Circuit)
	if !ok {
		return nil, fmt.Errorf("unknown circuit %q", spec.Circuit)
	}
	// Normalized() applied the default scale; the guard keeps direct
	// callers with a raw spec safe.
	scale := spec.Scale
	if scale == 0 {
		scale = defaultScale
	}
	return circuits.Generate(mc.Spec(scale))
}
