package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// Submission errors, mapped to HTTP statuses by the server layer.
var (
	// ErrQueueFull is backpressure: the bounded queue has no free slot
	// (HTTP 429).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining means the manager is shutting down and no longer
	// accepts work (HTTP 503).
	ErrDraining = errors.New("serve: draining, not accepting jobs")
	// ErrNotFound means no job has the requested ID (HTTP 404).
	ErrNotFound = errors.New("serve: no such job")
)

// Runner executes one job under a context. The default is ExecuteJob;
// tests substitute stubs (slow, panicking, failing) to exercise the
// manager in isolation.
type Runner func(ctx context.Context, spec JobSpec) (*Result, error)

// Config tunes a Manager. Zero values select the defaults noted.
type Config struct {
	// Workers is the concurrent job limit (default 2).
	Workers int
	// QueueDepth bounds the jobs waiting to run (default 64). A full
	// queue rejects submissions with ErrQueueFull.
	QueueDepth int
	// DefaultTimeout applies to jobs that do not set TimeoutMS
	// (default 10 minutes). MaxTimeout caps what a job may request
	// (default 30 minutes).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBypass bounds best-effort starvation: at most MaxBypass
	// consecutive deadline jobs may be scheduled past a waiting
	// best-effort job before the best-effort head runs (default 4).
	MaxBypass int
	// Runner executes jobs (default ExecuteJob). Raced jobs fan out
	// through the same Runner once per variant, so a test Runner seam
	// covers the race path too.
	Runner Runner
	// Clock overrides the manager's time source (default time.Now) so
	// scheduler tests can drive timestamps with a fake clock.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Minute
	}
	if c.MaxBypass <= 0 {
		c.MaxBypass = 4
	}
	if c.Runner == nil {
		c.Runner = ExecuteJob
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// job is the manager's internal record. All mutable fields are guarded
// by the owning Manager's mu; the snapshot under the same lock is what
// leaves the package.
type job struct {
	id   string
	spec JobSpec

	state      State
	err        string
	result     *Result
	submitted  time.Time
	started    time.Time
	finished   time.Time
	cancelRun  context.CancelFunc // non-nil while running
	userCancel bool
	done       chan struct{} // closed on reaching a terminal state
}

// Manager owns the bounded job queue and worker pool. The queue is two
// FIFOs — deadline-class and best-effort — drained under a bounded-
// bypass policy: deadline jobs go first, but after MaxBypass
// consecutive deadline pops past a waiting best-effort job, the
// best-effort head runs. Within a class, order is strictly FIFO.
type Manager struct {
	cfg Config

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond // signalled on enqueue and on drain start
	jobs     map[string]*job
	order    []string // submission order, for stable listings
	queued   []string // FIFO of not-yet-started job IDs, for positions
	seq      int
	draining bool

	queueD []*job // deadline-class FIFO
	queueB []*job // best-effort FIFO
	bypass int    // deadline pops since the best-effort head last ran

	wg sync.WaitGroup

	c counters
}

// NewManager builds a manager and starts its workers.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		// Each worker executes only jobs it alone dequeued under m.mu;
		// a job's netlist is cloned inside that job's execution and is
		// never shared across workers. Ownership transfer through the
		// queue is outside the points-to model.
		//replint:ignore aliasrace -- per-job ownership: each netlist clone belongs to the single worker that dequeued the job
		go m.worker()
	}
	return m
}

// Submit validates and enqueues a job, returning its initial status.
// A full queue fails with ErrQueueFull without mutating anything; a
// draining manager fails with ErrDraining.
func (m *Manager) Submit(spec JobSpec) (Status, error) {
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.c.rejectedDrain.Add(1)
		return Status{}, ErrDraining
	}
	// Admission is one shared bound across both QoS classes — a
	// deadline flood still hits ErrQueueFull at the same depth the
	// pre-QoS single queue did.
	if len(m.queueD)+len(m.queueB) >= m.cfg.QueueDepth {
		m.c.rejectedFull.Add(1)
		return Status{}, ErrQueueFull
	}
	m.seq++
	j := &job{
		id:        fmt.Sprintf("j%06d", m.seq),
		spec:      spec,
		state:     StateQueued,
		submitted: m.cfg.Clock(),
		done:      make(chan struct{}),
	}
	if j.spec.Deadline() {
		m.queueD = append(m.queueD, j)
		m.c.deadlineAccepted.Add(1)
	} else {
		m.queueB = append(m.queueB, j)
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.queued = append(m.queued, j.id)
	m.c.accepted.Add(1)
	m.cond.Signal()
	return m.statusLocked(j), nil
}

// Get returns a job's status.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return m.statusLocked(j), nil
}

// List returns every job's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

// Cancel requests cancellation: a queued job is finalized as cancelled
// immediately (the worker skips it when popped); a running job has its
// context cancelled and reaches the cancelled state when the engine
// unwinds. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		j.userCancel = true
		m.finalizeLocked(j, StateCancelled, "cancelled before start")
	case StateRunning:
		j.userCancel = true
		if j.cancelRun != nil {
			j.cancelRun()
		}
	}
	return m.statusLocked(j), nil
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	select {
	case <-j.done:
		return m.Get(id)
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Shutdown drains the manager: new submissions are rejected, queued
// and running jobs get until ctx is done to finish, then their
// contexts are cancelled and the remaining queue entries are finalized
// as cancelled. It returns once every worker has exited, so no job
// goroutine survives the call.
func (m *Manager) Shutdown(ctx context.Context) {
	m.mu.Lock()
	m.draining = true
	// Wake every idle worker: they drain the remaining queue entries,
	// then exit on the empty-while-draining condition.
	m.cond.Broadcast()
	m.mu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
	case <-ctx.Done():
		// Out of patience: cancel every running job's context (they
		// all derive from baseCtx) and wait for the unwind, which is
		// prompt because cancellation is threaded into the engine.
		m.baseCancel()
		<-workersDone
	}
	m.baseCancel()
}

// worker pulls scheduled jobs until the manager drains empty. Jobs
// popped after the base context died (drain deadline passed) are
// finalized as cancelled without running.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.nextJob()
		if j == nil {
			return
		}
		m.runOne(j)
	}
}

// nextJob blocks until the scheduler yields a job; nil means the
// manager is draining and both queues are empty.
func (m *Manager) nextJob() *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	//replint:ignore ctxstride -- worker parking loop: woken by Submit's Signal or Shutdown's draining+Broadcast, the manager's lifecycle events; there is no per-job ctx to poll here
	for {
		if j := m.popLocked(); j != nil {
			return j
		}
		if m.draining {
			return nil
		}
		m.cond.Wait()
	}
}

// popLocked applies the QoS policy to the two FIFOs: deadline first,
// except that once the waiting best-effort head has been bypassed
// MaxBypass consecutive times it runs next regardless. Caller holds mu.
func (m *Manager) popLocked() *job {
	if len(m.queueD) > 0 && (len(m.queueB) == 0 || m.bypass < m.cfg.MaxBypass) {
		j := m.queueD[0]
		m.queueD[0] = nil // drop the backing-array reference
		m.queueD = m.queueD[1:]
		if len(m.queueB) > 0 {
			m.bypass++ // the best-effort head waited through this pop
		}
		return j
	}
	if len(m.queueB) > 0 {
		j := m.queueB[0]
		m.queueB[0] = nil
		m.queueB = m.queueB[1:]
		m.bypass = 0 // the head ran; the next one starts a fresh count
		return j
	}
	return nil
}

// runOne moves one job queued → running → terminal, isolating panics.
func (m *Manager) runOne(j *job) {
	m.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting; already finalized.
		m.mu.Unlock()
		return
	}
	if m.baseCtx.Err() != nil {
		m.finalizeLocked(j, StateCancelled, "server shutting down")
		m.mu.Unlock()
		return
	}
	timeout := m.cfg.DefaultTimeout
	if j.spec.TimeoutMS > 0 {
		timeout = time.Duration(j.spec.TimeoutMS) * time.Millisecond
	}
	if timeout > m.cfg.MaxTimeout {
		timeout = m.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(m.baseCtx, timeout)
	j.state = StateRunning
	j.started = m.cfg.Clock()
	j.cancelRun = cancel
	m.dequeueLocked(j.id)
	m.c.running.Add(1)
	m.mu.Unlock()
	defer cancel()

	res, err := m.runProtected(ctx, j.spec)

	m.mu.Lock()
	defer m.mu.Unlock()
	m.c.running.Add(-1)
	switch {
	case err == nil:
		j.result = res
		if res != nil {
			m.c.engineSeconds.add(res.EngineSeconds)
			m.c.embedSeconds.add(res.Phases.Embed)
			inc := &res.Incremental
			m.c.staUpdates.Add(int64(inc.STAUpdates))
			m.c.staFullRuns.Add(int64(inc.STAFullRuns))
			m.c.staCells.Add(int64(inc.STACellsForward + inc.STACellsBackward))
			m.c.sptPatches.Add(int64(inc.SPTPatches))
			m.c.sptRebuilds.Add(int64(inc.SPTRebuilds))
			m.c.frontierHits.Add(int64(inc.FrontierHits))
			m.c.frontierMisses.Add(int64(inc.FrontierMisses))
		}
		m.finalizeLocked(j, StateDone, "")
	case errors.Is(err, context.DeadlineExceeded) && !j.userCancel:
		m.finalizeLocked(j, StateCancelled, fmt.Sprintf("timed out after %v", timeout))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		m.finalizeLocked(j, StateCancelled, "cancelled")
	default:
		m.finalizeLocked(j, StateFailed, err.Error())
	}
}

// runProtected invokes the runner with panic isolation: a panicking
// job fails with the panic value and stack instead of killing the
// process — one malformed design must not take down the daemon. Raced
// jobs route through the speculative layer, fanning the same Runner
// out once per variant.
func (m *Manager) runProtected(ctx context.Context, spec JobSpec) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.c.panics.Add(1)
			err = fmt.Errorf("job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if spec.IsRace() {
		m.c.races.Add(1)
		return raceRun(ctx, spec, m.cfg.Runner, &m.c)
	}
	return m.cfg.Runner(ctx, spec)
}

// finalizeLocked moves a job to a terminal state. Caller holds mu.
func (m *Manager) finalizeLocked(j *job, s State, errMsg string) {
	if j.state.Terminal() {
		return
	}
	if j.state == StateQueued {
		m.dequeueLocked(j.id)
	}
	j.state = s
	j.err = errMsg
	j.finished = m.cfg.Clock()
	if j.started.IsZero() {
		j.started = j.finished
	}
	switch s {
	case StateDone:
		m.c.completed.Add(1)
	case StateFailed:
		m.c.failed.Add(1)
	case StateCancelled:
		m.c.cancelled.Add(1)
	}
	close(j.done)
}

// dequeueLocked removes one ID from the queued-position list.
func (m *Manager) dequeueLocked(id string) {
	for i, q := range m.queued {
		if q == id {
			m.queued = append(m.queued[:i], m.queued[i+1:]...)
			return
		}
	}
}

// statusLocked snapshots a job. Caller holds mu.
func (m *Manager) statusLocked(j *job) Status {
	st := Status{
		ID:          j.id,
		State:       j.state,
		Spec:        j.spec,
		Error:       j.err,
		SubmittedAt: j.submitted,
		Result:      j.result,
	}
	if j.state == StateQueued {
		// Position is class-relative: the number of same-class jobs
		// scheduled ahead. Cross-class order depends on the bypass
		// policy, so a single global position would be a lie.
		pos := 0
		for _, q := range m.queued {
			if q == j.id {
				break
			}
			if m.jobs[q].spec.Deadline() == j.spec.Deadline() {
				pos++
			}
		}
		st.Position = pos
		st.QueueSeconds = m.cfg.Clock().Sub(j.submitted).Seconds()
		return st
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
		st.QueueSeconds = j.started.Sub(j.submitted).Seconds()
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
		st.RunSeconds = j.finished.Sub(j.started).Seconds()
	} else if j.state == StateRunning {
		st.RunSeconds = m.cfg.Clock().Sub(j.started).Seconds()
	}
	return st
}

// QueueDepth returns the number of jobs waiting to start.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queued)
}
