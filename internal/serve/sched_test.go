package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock is the Config.Clock seam: a manually advanced time source,
// so queue/run timestamps in these tests are exact rather than sampled.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// orderRecorder is a Runner that appends each executed job's Seed (the
// test's job marker) to a shared slice. One designated plug seed blocks
// until released, holding the single worker while a test stages its
// arrival sequence.
type orderRecorder struct {
	mu      sync.Mutex
	order   []int64
	plug    int64
	release chan struct{}
}

func (r *orderRecorder) runner() Runner {
	return func(ctx context.Context, spec JobSpec) (*Result, error) {
		if spec.Seed == r.plug {
			select {
			case <-r.release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &Result{}, nil
		}
		r.mu.Lock()
		r.order = append(r.order, spec.Seed)
		r.mu.Unlock()
		return &Result{}, nil
	}
}

func (r *orderRecorder) recorded() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int64(nil), r.order...)
}

// refSchedule replays the documented QoS policy over a static arrival
// sequence: deadline first, except that after maxBypass consecutive
// deadline pops past a waiting best-effort head, best-effort runs.
func refSchedule(arrivals []bool /* true = deadline */, maxBypass int) []int {
	var d, b []int
	for i, dl := range arrivals {
		if dl {
			d = append(d, i)
		} else {
			b = append(b, i)
		}
	}
	var out []int
	bypass := 0
	for len(d)+len(b) > 0 {
		if len(d) > 0 && (len(b) == 0 || bypass < maxBypass) {
			out = append(out, d[0])
			d = d[1:]
			if len(b) > 0 {
				bypass++
			}
		} else {
			out = append(out, b[0])
			b = b[1:]
			bypass = 0
		}
	}
	return out
}

// runScheduleTrial submits the arrival sequence to a single-worker
// manager (held by a plug job), releases the worker, and returns the
// execution order as arrival indices.
func runScheduleTrial(t *testing.T, arrivals []bool, maxBypass int, clk *fakeClock) []int {
	t.Helper()
	rec := &orderRecorder{plug: -999, release: make(chan struct{})}
	m := NewManager(Config{
		Workers:    1,
		QueueDepth: len(arrivals) + 1,
		MaxBypass:  maxBypass,
		Runner:     rec.runner(),
		Clock:      clk.Now,
	})
	defer m.Shutdown(context.Background())

	plug, err := m.Submit(JobSpec{Circuit: "ex5p", Seed: rec.plug})
	if err != nil {
		t.Fatalf("plug submit: %v", err)
	}
	waitState(t, m, plug.ID, StateRunning)

	ids := make([]string, len(arrivals))
	for i, dl := range arrivals {
		spec := JobSpec{Circuit: "ex5p", Seed: int64(i + 1)}
		if dl {
			spec.QoS = QoSDeadline
		}
		clk.Advance(time.Millisecond) // distinct, ordered arrival stamps
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}
	close(rec.release)
	for _, id := range ids {
		if _, err := m.Wait(context.Background(), id); err != nil {
			t.Fatalf("wait: %v", err)
		}
	}
	got := rec.recorded()
	out := make([]int, len(got))
	for i, seed := range got {
		out[i] = int(seed) - 1
	}
	return out
}

// TestSchedulerMatchesReference drives randomized arrival sequences
// through the real manager and checks the execution order against the
// independent policy replay, for several bypass bounds.
func TestSchedulerMatchesReference(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 4 + rng.Intn(12)
		arrivals := make([]bool, n)
		for i := range arrivals {
			arrivals[i] = rng.Intn(2) == 0
		}
		maxBypass := 1 + rng.Intn(4)
		got := runScheduleTrial(t, arrivals, maxBypass, newFakeClock())
		want := refSchedule(arrivals, maxBypass)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d (arrivals %v, maxBypass %d):\n  got  %v\n  want %v",
				trial, arrivals, maxBypass, got, want)
		}
		// Property 1: deadline jobs never reorder among themselves,
		// and neither do best-effort jobs (per-class FIFO).
		lastD, lastB := -1, -1
		for _, idx := range got {
			if arrivals[idx] {
				if idx < lastD {
					t.Fatalf("trial %d: deadline jobs reordered: %v", trial, got)
				}
				lastD = idx
			} else {
				if idx < lastB {
					t.Fatalf("trial %d: best-effort jobs reordered: %v", trial, got)
				}
				lastB = idx
			}
		}
		// Property 2: bounded bypass — no best-effort job waits through
		// more than maxBypass deadline executions once it heads its
		// queue (i.e. between two best-effort executions).
		streak := 0
		waitingBE := false
		for pos, idx := range got {
			if arrivals[idx] {
				// Does any best-effort job remain unexecuted?
				waitingBE = false
				for _, later := range got[pos+1:] {
					if !arrivals[later] {
						waitingBE = true
						break
					}
				}
				if waitingBE {
					streak++
					if streak > maxBypass {
						t.Fatalf("trial %d: best-effort bypassed %d > %d times: %v",
							trial, streak, maxBypass, got)
					}
				}
			} else {
				streak = 0
			}
		}
	}
}

// TestSchedulerStarvationUnderDeadlineFlood keeps the deadline queue
// non-empty forever (a new deadline job arrives every time one runs)
// and checks a best-effort job still executes within MaxBypass
// deadline pops.
func TestSchedulerStarvationUnderDeadlineFlood(t *testing.T) {
	const maxBypass = 3
	rec := &orderRecorder{plug: -999, release: make(chan struct{})}
	clk := newFakeClock()
	m := NewManager(Config{
		Workers:    1,
		QueueDepth: 64,
		MaxBypass:  maxBypass,
		Runner:     rec.runner(),
		Clock:      clk.Now,
	})
	defer m.Shutdown(context.Background())

	plug, err := m.Submit(JobSpec{Circuit: "ex5p", Seed: rec.plug})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, plug.ID, StateRunning)

	// One best-effort job behind a wall of deadline jobs, with more
	// deadline jobs always queued than the bypass bound allows.
	be, err := m.Submit(JobSpec{Circuit: "ex5p", Seed: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*maxBypass+4; i++ {
		if _, err := m.Submit(JobSpec{Circuit: "ex5p", Seed: int64(i + 1), QoS: QoSDeadline}); err != nil {
			t.Fatal(err)
		}
	}
	close(rec.release)
	if _, err := m.Wait(context.Background(), be.ID); err != nil {
		t.Fatal(err)
	}
	order := rec.recorded()
	pos := -1
	for i, s := range order {
		if s == 1000 {
			pos = i
			break
		}
	}
	if pos < 0 || pos > maxBypass {
		t.Fatalf("best-effort job ran at position %d, want <= %d (order %v)", pos, maxBypass, order)
	}
}

// TestQueueFullBehaviorUnchanged pins the seed 429 semantics across
// the QoS split: one shared QueueDepth bound, ErrQueueFull for either
// class once it is reached, and no job/ID state mutated by a rejected
// submission.
func TestQueueFullBehaviorUnchanged(t *testing.T) {
	rec := &orderRecorder{plug: -999, release: make(chan struct{})}
	m := NewManager(Config{Workers: 1, QueueDepth: 2, Runner: rec.runner(), Clock: newFakeClock().Now})
	defer func() {
		close(rec.release)
		m.Shutdown(context.Background())
	}()

	plug, err := m.Submit(JobSpec{Circuit: "ex5p", Seed: rec.plug})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, plug.ID, StateRunning)

	if _, err := m.Submit(JobSpec{Circuit: "ex5p", QoS: QoSDeadline}); err != nil {
		t.Fatalf("first queued submit: %v", err)
	}
	if _, err := m.Submit(JobSpec{Circuit: "ex5p"}); err != nil {
		t.Fatalf("second queued submit: %v", err)
	}
	for _, qos := range []string{"", QoSDeadline, QoSBestEffort} {
		if _, err := m.Submit(JobSpec{Circuit: "ex5p", QoS: qos}); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("qos %q over-capacity submit: err %v, want ErrQueueFull", qos, err)
		}
	}
	if c := m.Counters(); c.JobsRejectedFull != 3 {
		t.Fatalf("rejected-full counter %d, want 3", c.JobsRejectedFull)
	}
	// Rejected submissions must not burn IDs: the next accepted job
	// continues the sequence.
	if len(m.List()) != 3 {
		t.Fatalf("job list has %d entries, want 3 (rejections recorded state)", len(m.List()))
	}
}

// TestFakeClockLatencySplit checks the Clock seam end to end: queue
// and run seconds come from the injected clock, not the wall.
func TestFakeClockLatencySplit(t *testing.T) {
	clk := newFakeClock()
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	m := NewManager(Config{
		Workers: 1,
		Clock:   clk.Now,
		Runner: func(ctx context.Context, spec JobSpec) (*Result, error) {
			once.Do(func() { close(started) })
			<-gate
			return &Result{}, nil
		},
	})
	defer m.Shutdown(context.Background())

	st, err := m.Submit(stubSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	clk.Advance(7 * time.Second) // "runs" for 7 fake seconds
	close(gate)
	final, err := m.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.RunSeconds != 7 {
		t.Fatalf("RunSeconds %v, want exactly 7 (fake clock)", final.RunSeconds)
	}
	if final.QueueSeconds != 0 {
		t.Fatalf("QueueSeconds %v, want 0 (clock never advanced while queued)", final.QueueSeconds)
	}
}
