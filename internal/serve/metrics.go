package serve

import (
	"math"
	"sync/atomic"
)

// atomicFloat accumulates float64 seconds across workers.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// counters are the manager's monotonic event counts and gauges,
// surfaced expvar-style at /debug/vars.
type counters struct {
	accepted      atomic.Int64
	rejectedFull  atomic.Int64
	rejectedDrain atomic.Int64
	completed     atomic.Int64
	failed        atomic.Int64
	cancelled     atomic.Int64
	panics        atomic.Int64
	running       atomic.Int64
	engineSeconds atomicFloat
	embedSeconds  atomicFloat
	// Incremental-engine reuse counters, accumulated from completed
	// jobs' engine telemetry.
	staUpdates     atomic.Int64
	staFullRuns    atomic.Int64
	staCells       atomic.Int64
	sptPatches     atomic.Int64
	sptRebuilds    atomic.Int64
	frontierHits   atomic.Int64
	frontierMisses atomic.Int64
	// Racing and QoS counters: raced jobs run, losing variants
	// cancelled before they finished, and deadline-class admissions.
	races            atomic.Int64
	raceCancelled    atomic.Int64
	deadlineAccepted atomic.Int64
}

// CounterSnapshot is a point-in-time view of the manager's counters.
type CounterSnapshot struct {
	JobsAccepted      int64 `json:"jobs_accepted"`
	JobsRejectedFull  int64 `json:"jobs_rejected_queue_full"`
	JobsRejectedDrain int64 `json:"jobs_rejected_draining"`
	JobsCompleted     int64 `json:"jobs_completed"`
	JobsFailed        int64 `json:"jobs_failed"`
	JobsCancelled     int64 `json:"jobs_cancelled"`
	JobPanics         int64 `json:"job_panics"`
	WorkersBusy       int64 `json:"workers_busy"`
	Workers           int   `json:"workers"`
	QueueDepth        int   `json:"queue_depth"`
	QueueCapacity     int   `json:"queue_capacity"`
	// Cumulative engine wall seconds and embed-phase seconds across
	// completed jobs: the live view of where the service spends time.
	//replint:metadata -- load telemetry; never fed back into a solve
	EngineSeconds float64 `json:"engine_seconds"`
	//replint:metadata -- load telemetry; never fed back into a solve
	EmbedSeconds float64 `json:"embed_seconds"`
	// Incremental-engine reuse across completed jobs: how many STA
	// passes were dirty-region updates vs full runs, how many cells
	// those updates re-propagated, and the cache hit/miss splits for
	// critical-path trees and embedding frontiers.
	//replint:metadata -- reuse telemetry; never fed back into a solve
	STAUpdates int64 `json:"sta_updates"`
	//replint:metadata -- reuse telemetry; never fed back into a solve
	STAFullRuns int64 `json:"sta_full_runs"`
	//replint:metadata -- reuse telemetry; never fed back into a solve
	STACellsRepropagated int64 `json:"sta_cells_repropagated"`
	//replint:metadata -- reuse telemetry; never fed back into a solve
	SPTPatches int64 `json:"spt_patches"`
	//replint:metadata -- reuse telemetry; never fed back into a solve
	SPTRebuilds int64 `json:"spt_rebuilds"`
	//replint:metadata -- reuse telemetry; never fed back into a solve
	FrontierHits int64 `json:"frontier_hits"`
	//replint:metadata -- reuse telemetry; never fed back into a solve
	FrontierMisses int64 `json:"frontier_misses"`
	// Racing and QoS: raced jobs run, losing variants cancelled before
	// finishing (the racing latency win), deadline-class admissions.
	//replint:metadata -- load telemetry; never fed back into a solve
	Races int64 `json:"races"`
	//replint:metadata -- load telemetry; never fed back into a solve
	RaceLosersCancelled int64 `json:"race_losers_cancelled"`
	//replint:metadata -- load telemetry; never fed back into a solve
	JobsDeadline int64 `json:"jobs_deadline"`
}

// Counters snapshots the manager's counters.
func (m *Manager) Counters() CounterSnapshot {
	return CounterSnapshot{
		JobsAccepted:      m.c.accepted.Load(),
		JobsRejectedFull:  m.c.rejectedFull.Load(),
		JobsRejectedDrain: m.c.rejectedDrain.Load(),
		JobsCompleted:     m.c.completed.Load(),
		JobsFailed:        m.c.failed.Load(),
		JobsCancelled:     m.c.cancelled.Load(),
		JobPanics:         m.c.panics.Load(),
		WorkersBusy:       m.c.running.Load(),
		Workers:           m.cfg.Workers,
		QueueDepth:        m.QueueDepth(),
		QueueCapacity:     m.cfg.QueueDepth,
		EngineSeconds:        m.c.engineSeconds.load(),
		EmbedSeconds:         m.c.embedSeconds.load(),
		STAUpdates:           m.c.staUpdates.Load(),
		STAFullRuns:          m.c.staFullRuns.Load(),
		STACellsRepropagated: m.c.staCells.Load(),
		SPTPatches:           m.c.sptPatches.Load(),
		SPTRebuilds:          m.c.sptRebuilds.Load(),
		FrontierHits:         m.c.frontierHits.Load(),
		FrontierMisses:       m.c.frontierMisses.Load(),
		Races:                m.c.races.Load(),
		RaceLosersCancelled:  m.c.raceCancelled.Load(),
		JobsDeadline:         m.c.deadlineAccepted.Load(),
	}
}
