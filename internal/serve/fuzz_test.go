package serve

import (
	"strings"
	"testing"
)

// FuzzDecodeSpec throws arbitrary bytes at the job-spec decoder and
// the spec validator: both must reject garbage with an error, never a
// panic, and an accepted spec must survive re-validation (decode is
// deterministic and side-effect free).
func FuzzDecodeSpec(f *testing.F) {
	f.Add(`{"circuit":"ex5p"}`)
	f.Add(`{"circuit":"ex5p","algo":"lex3","scale":0.2,"seed":7}`)
	f.Add(`{"netlist":"circuit t\ninput a\noutput o a\n"}`)
	f.Add(`{"circuit":"ex5p","unknown_field":1}`)
	f.Add(`{"circuit":"ex5p","netlist":"x"}`)
	f.Add(`{"timeout_ms":-5}`)
	f.Add(`{`)
	f.Add(``)
	f.Add(`[1,2,3]`)
	f.Add(`{"scale":1e309}`)
	f.Add("{\"circuit\":\"\x00\xff\"}")
	f.Fuzz(func(t *testing.T, body string) {
		spec, err := DecodeSpec(strings.NewReader(body))
		if err != nil {
			return
		}
		verr := spec.Validate()
		if verr == nil {
			// Validation must be stable: a spec accepted once is
			// accepted again (no hidden state).
			if again := spec.Validate(); again != nil {
				t.Fatalf("Validate flapped on %q: nil then %v", body, again)
			}
		}
	})
}
