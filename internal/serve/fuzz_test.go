package serve

import (
	"reflect"
	"slices"
	"strings"
	"testing"

	"repro/internal/flow"
)

// FuzzDecodeSpec throws arbitrary bytes at the job-spec decoder and
// the spec validator: both must reject garbage with an error, never a
// panic, and an accepted spec must survive re-validation (decode is
// deterministic and side-effect free).
func FuzzDecodeSpec(f *testing.F) {
	f.Add(`{"circuit":"ex5p"}`)
	f.Add(`{"circuit":"ex5p","algo":"lex3","scale":0.2,"seed":7}`)
	f.Add(`{"netlist":"circuit t\ninput a\noutput o a\n"}`)
	f.Add(`{"circuit":"ex5p","unknown_field":1}`)
	f.Add(`{"circuit":"ex5p","netlist":"x"}`)
	f.Add(`{"timeout_ms":-5}`)
	f.Add(`{`)
	f.Add(``)
	f.Add(`[1,2,3]`)
	f.Add(`{"scale":1e309}`)
	f.Add("{\"circuit\":\"\x00\xff\"}")
	// Racing / QoS surface: unknown variant names, empty and duplicate
	// variant lists, NaN-adjacent / zero / negative bounds, bad classes.
	f.Add(`{"circuit":"ex5p","algo":"race"}`)
	f.Add(`{"circuit":"ex5p","algo":"race","race_variants":[]}`)
	f.Add(`{"circuit":"ex5p","algo":"race","race_variants":["lex3","lex3","LEX3"]}`)
	f.Add(`{"circuit":"ex5p","algo":"race","race_variants":["fastest"]}`)
	f.Add(`{"circuit":"ex5p","algo":"race","race_variants":["vpr"]}`)
	f.Add(`{"circuit":"ex5p","algo":"race","race_variants":[""]}`)
	f.Add(`{"circuit":"ex5p","algo":"race","period_bound":0}`)
	f.Add(`{"circuit":"ex5p","algo":"race","period_bound":-3.5}`)
	f.Add(`{"circuit":"ex5p","algo":"race","period_bound":1e309}`)
	f.Add(`{"circuit":"ex5p","algo":"race","period_bound":"nan"}`)
	f.Add(`{"circuit":"ex5p","race_variants":["rt"]}`)
	f.Add(`{"circuit":"ex5p","qos":"deadline"}`)
	f.Add(`{"circuit":"ex5p","qos":"Best-Effort"}`)
	f.Add(`{"circuit":"ex5p","qos":"urgent"}`)
	f.Fuzz(func(t *testing.T, body string) {
		spec, err := DecodeSpec(strings.NewReader(body))
		if err != nil {
			return
		}
		verr := spec.Validate()
		if verr == nil {
			// Validation must be stable: a spec accepted once is
			// accepted again (no hidden state).
			if again := spec.Validate(); again != nil {
				t.Fatalf("Validate flapped on %q: nil then %v", body, again)
			}
			// A valid spec's normal form must itself be valid and a
			// fixed point — racing folds the variant list here, and the
			// cluster hash assumes the fold converges in one step.
			n := spec.Normalized()
			if nerr := n.Validate(); nerr != nil {
				t.Fatalf("Normalized spec of %q invalid: %v", body, nerr)
			}
			if n2 := n.Normalized(); !reflect.DeepEqual(n2, n) {
				t.Fatalf("Normalized not idempotent on %q: %+v vs %+v", body, n, n2)
			}
			if n.IsRace() {
				// The folded list must be non-empty, duplicate-free,
				// and strictly ascending in canonical racing order.
				if len(n.RaceVariants) == 0 {
					t.Fatalf("race spec %q normalized to an empty variant list", body)
				}
				canon := flow.EngineAlgorithmNames()
				prev := -1
				for _, v := range n.RaceVariants {
					o := slices.Index(canon, v)
					if o < 0 {
						t.Fatalf("race spec %q kept non-canonical variant %q", body, v)
					}
					if o <= prev {
						t.Fatalf("race spec %q variants out of canonical order: %v", body, n.RaceVariants)
					}
					prev = o
				}
			}
		}
	})
}
