package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"
)

// Server is the HTTP/JSON front end over a Manager.
//
//	POST   /v1/jobs      submit a JobSpec  → 202 Status | 400 | 429 | 503
//	GET    /v1/jobs      list all jobs
//	GET    /v1/jobs/{id} job status        → 200 | 404
//	DELETE /v1/jobs/{id} cancel            → 200 | 404
//	GET    /healthz      liveness ("ok" / "draining")
//	GET    /debug/vars   expvar-style counters + runtime stats
//	GET    /debug/pprof/ net/http/pprof profiles
type Server struct {
	m     *Manager
	start time.Time
}

// NewServer wraps a manager.
func NewServer(m *Manager) *Server {
	return &Server{m: m, start: time.Now()}
}

// Manager exposes the underlying manager (for drain on shutdown).
func (s *Server) Manager() *Manager { return s.m }

// MaxSpecBytes bounds a submit body: an inline netlist plus slack.
// The cluster layer applies the same bound to its submit endpoints.
const MaxSpecBytes = maxInlineNetlist + 64*1024

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.m.List())
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeSpec(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	st, err := s.m.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Backpressure: the caller should retry later; the bound is
		// what keeps the daemon alive under overload.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
	default:
		w.Header().Set("Location", "/v1/jobs/"+st.ID)
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		http.NotFound(w, r)
		return
	}
	var (
		st  Status
		err error
	)
	switch r.Method {
	case http.MethodGet:
		st, err = s.m.Get(id)
	case http.MethodDelete:
		st, err = s.m.Cancel(id)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.m.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

// VarsDoc is the expvar-style introspection document served at
// /debug/vars: manager counters plus the runtime stats that matter
// under sustained load. The cluster layer embeds it and appends its
// own section, so clustered and single-process daemons stay
// field-compatible.
type VarsDoc struct {
	CounterSnapshot
	//replint:metadata -- process uptime is introspection, not solver output
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	NumGC          uint32  `json:"num_gc"`
}

// Vars snapshots the introspection document.
func (s *Server) Vars() VarsDoc {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return VarsDoc{
		CounterSnapshot: s.m.Counters(),
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Goroutines:      runtime.NumGoroutine(),
		HeapAllocBytes:  ms.HeapAlloc,
		HeapSysBytes:    ms.HeapSys,
		NumGC:           ms.NumGC,
	}
}

// handleVars serves the introspection document.
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Vars())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
