package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer wires a manager behind httptest. Callers must Close the
// returned server and Shutdown the manager.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(cfg)
	ts := httptest.NewServer(NewServer(m).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return ts, m
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, Status) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: HTTP %d", id, resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

func pollDone(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Status{}
}

// TestHTTPEndToEnd submits two identical real jobs through the HTTP
// layer on a tiny circuit and checks both results are bit-identical —
// the determinism contract holds through the whole service stack.
func TestHTTPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real engine")
	}
	ts, _ := newTestServer(t, Config{Workers: 2})
	spec := `{"circuit":"ex5p","scale":0.05,"algo":"rt","max_iters":4}`

	var ids []string
	for i := 0; i < 2; i++ {
		resp, st := postJob(t, ts, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
			t.Fatalf("Location = %q, want /v1/jobs/%s", loc, st.ID)
		}
		ids = append(ids, st.ID)
	}
	var fins []Status
	for _, id := range ids {
		st := pollDone(t, ts, id, 2*time.Minute)
		if st.State != StateDone {
			t.Fatalf("job %s: state %s, error %q", id, st.State, st.Error)
		}
		if st.Result == nil {
			t.Fatalf("job %s done with nil result", id)
		}
		fins = append(fins, st)
	}
	a, b := fins[0].Result, fins[1].Result
	// Bit-exact comparison: determinism means identical, not close.
	if math.Float64bits(a.OptimizedPeriod) != math.Float64bits(b.OptimizedPeriod) ||
		a.Iterations != b.Iterations || a.Replicated != b.Replicated {
		t.Fatalf("identical specs disagree: %+v vs %+v", a, b)
	}
	if a.OptimizedPeriod > a.PlacedPeriod {
		t.Errorf("optimization made the period worse: %.4f > %.4f",
			a.OptimizedPeriod, a.PlacedPeriod)
	}
	// The phase breakdown is populated and consistent with the coarse
	// engine timer.
	if a.Phases.Total() <= 0 {
		t.Errorf("phase timings empty: %+v", a.Phases)
	}
	if a.Phases.Total() > a.EngineSeconds*1.5+0.1 {
		t.Errorf("phase total %.3fs exceeds engine wall %.3fs", a.Phases.Total(), a.EngineSeconds)
	}
}

func TestHTTPBackpressure429(t *testing.T) {
	block := make(chan struct{})
	ts, _ := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Runner: func(ctx context.Context, _ JobSpec) (*Result, error) {
			select {
			case <-block:
				return &Result{}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer close(block)

	// Occupy the worker, then the single queue slot, then overflow.
	resp, st := postJob(t, ts, `{"circuit":"ex5p"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: HTTP %d", resp.StatusCode)
	}
	waitRunning := func(id string) {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if getStatus(t, ts, id).State == StateRunning {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("job %s never started", id)
	}
	waitRunning(st.ID)
	if resp, _ := postJob(t, ts, `{"circuit":"ex5p"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: HTTP %d", resp.StatusCode)
	}
	resp, _ = postJob(t, ts, `{"circuit":"ex5p"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After header")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, Runner: func(context.Context, JobSpec) (*Result, error) {
		return &Result{}, nil
	}})
	cases := []struct {
		name, body string
	}{
		{"empty", `{}`},
		{"unknown circuit", `{"circuit":"nonesuch"}`},
		{"unknown algo", `{"circuit":"ex5p","algo":"magic"}`},
		{"unknown field", `{"circuit":"ex5p","frobnicate":true}`},
		{"syntax", `{"circuit":`},
		{"bad netlist", `{"netlist":"widget frob\n"}`},
	}
	for _, tc := range cases {
		resp, _ := postJob(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

func TestHTTPNotFoundAndCancel(t *testing.T) {
	block := make(chan struct{})
	ts, _ := newTestServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, _ JobSpec) (*Result, error) {
			select {
			case <-block:
				return &Result{}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer close(block)

	resp, err := http.Get(ts.URL + "/v1/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: HTTP %d, want 404", resp.StatusCode)
	}

	_, st := postJob(t, ts, `{"circuit":"ex5p"}`)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: HTTP %d", resp.StatusCode)
	}
	fin := pollDone(t, ts, st.ID, 5*time.Second)
	if fin.State != StateCancelled {
		t.Fatalf("cancelled job state = %s", fin.State)
	}
}

func TestHTTPIntrospection(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, Runner: func(context.Context, JobSpec) (*Result, error) {
		return &Result{}, nil
	}})

	_, st := postJob(t, ts, `{"circuit":"ex5p"}`)
	pollDone(t, ts, st.ID, 5*time.Second)

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		CounterSnapshot
		UptimeSeconds float64 `json:"uptime_seconds"`
		Goroutines    int     `json:"goroutines"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("decode /debug/vars: %v", err)
	}
	if vars.JobsAccepted != 1 || vars.JobsCompleted != 1 {
		t.Fatalf("vars = %+v, want 1 accepted / 1 completed", vars.CounterSnapshot)
	}
	if vars.Goroutines <= 0 || vars.UptimeSeconds < 0 {
		t.Fatalf("runtime stats missing: %+v", vars)
	}

	// pprof is mounted.
	resp2, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/: HTTP %d", resp2.StatusCode)
	}

	// The job listing shows the one job.
	resp3, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var list []Status
	if err := json.NewDecoder(resp3.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestHTTPDraining503(t *testing.T) {
	m := NewManager(Config{Workers: 1, Runner: func(context.Context, JobSpec) (*Result, error) {
		return &Result{}, nil
	}})
	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m.Shutdown(ctx)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"circuit":"ex5p"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: HTTP %d, want 503", resp.StatusCode)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h map[string]string
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "draining" {
		t.Fatalf("healthz = %q, want draining", h["status"])
	}
}

// TestInlineNetlistJob runs a real job on an inline netlist through the
// HTTP layer.
func TestInlineNetlistJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real engine")
	}
	// A small fan-in tree with registered boundaries, service-sized.
	var sb strings.Builder
	sb.WriteString("circuit inline\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&sb, "input i%d\n", i)
	}
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&sb, "lut a%d i%d i%d\n", i, 2*i, 2*i+1)
	}
	sb.WriteString("lut b0 a0 a1\nlut b1 a2 a3\nreg c b0 b1\noutput o c\n")
	spec, err := json.Marshal(JobSpec{Netlist: sb.String(), Algo: "rt", MaxIters: 2})
	if err != nil {
		t.Fatal(err)
	}

	ts, _ := newTestServer(t, Config{Workers: 1})
	resp, st := postJob(t, ts, string(spec))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit inline: HTTP %d", resp.StatusCode)
	}
	fin := pollDone(t, ts, st.ID, time.Minute)
	if fin.State != StateDone {
		t.Fatalf("inline job: state %s, error %q", fin.State, fin.Error)
	}
	if fin.Result.Circuit != "inline" || fin.Result.LUTs != 7 {
		t.Fatalf("result = %+v", fin.Result)
	}
}
