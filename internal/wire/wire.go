// Package wire estimates net wire length at the placement level using
// the half-perimeter (bounding box) metric augmented by the net-size
// correction factor q(n) of Cheng/VPR, the estimator the paper's
// legalizer cost and the VPR-style placer both use ("wire length
// estimation is given by the half-perimeter metric augmented by a net
// size coefficient from [18]").
package wire

import (
	"repro/internal/arch"
	"repro/internal/netlist"
	"repro/internal/timing"
)

// qTable holds the crossing-count correction factors for nets with
// 1..50 terminals, from C.E. Cheng's "RISA: Accurate and efficient
// placement routability modeling" as adopted by VPR.
var qTable = [51]float64{
	0, // unused (no 0-terminal nets)
	1.0000, 1.0000, 1.0000, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385,
	1.3991, 1.4493, 1.4974, 1.5455, 1.5937, 1.6418, 1.6899, 1.7304,
	1.7709, 1.8114, 1.8519, 1.8924, 1.9288, 1.9652, 2.0015, 2.0379,
	2.0743, 2.1061, 2.1379, 2.1698, 2.2016, 2.2334, 2.2646, 2.2958,
	2.3271, 2.3583, 2.3895, 2.4187, 2.4479, 2.4772, 2.5064, 2.5356,
	2.5610, 2.5864, 2.6117, 2.6371, 2.6625, 2.6887, 2.7148, 2.7410,
	2.7671, 2.7933,
}

// Q returns the correction factor for a net with n terminals (driver +
// sinks). Beyond 50 terminals it extrapolates linearly as VPR does.
func Q(n int) float64 {
	if n <= 0 {
		return 1
	}
	if n <= 50 {
		return qTable[n]
	}
	return qTable[50] + 0.02616*float64(n-50)
}

// BBox is a net bounding box.
type BBox struct {
	Xmin, Xmax, Ymin, Ymax int16
}

// HalfPerim returns the half-perimeter of the box.
func (b BBox) HalfPerim() int {
	return int(b.Xmax-b.Xmin) + int(b.Ymax-b.Ymin)
}

// Expand grows the box to include l.
func (b BBox) Expand(l arch.Loc) BBox {
	if l.X < b.Xmin {
		b.Xmin = l.X
	}
	if l.X > b.Xmax {
		b.Xmax = l.X
	}
	if l.Y < b.Ymin {
		b.Ymin = l.Y
	}
	if l.Y > b.Ymax {
		b.Ymax = l.Y
	}
	return b
}

// NetBBox computes the bounding box of a net's terminals under the
// given locator. The optional override relocates one cell
// hypothetically (used by "what if this cell moved here" cost probes);
// pass override == nil for the plain box.
func NetBBox(nl *netlist.Netlist, pl timing.Locator, netID netlist.NetID, override func(netlist.CellID) (arch.Loc, bool)) BBox {
	net := nl.Net(netID)
	locOf := func(id netlist.CellID) arch.Loc {
		if override != nil {
			if l, ok := override(id); ok {
				return l
			}
		}
		return pl.Loc(id)
	}
	l := locOf(net.Driver)
	b := BBox{Xmin: l.X, Xmax: l.X, Ymin: l.Y, Ymax: l.Y}
	for _, p := range net.Sinks {
		b = b.Expand(locOf(p.Cell))
	}
	return b
}

// NetCost returns the corrected half-perimeter wire cost of a net:
// q(terminals) · HPWL.
func NetCost(nl *netlist.Netlist, pl timing.Locator, netID netlist.NetID, override func(netlist.CellID) (arch.Loc, bool)) float64 {
	net := nl.Net(netID)
	b := NetBBox(nl, pl, netID, override)
	return Q(1+len(net.Sinks)) * float64(b.HalfPerim())
}

// TotalCost sums NetCost over all live nets — the placer's wirelength
// objective.
func TotalCost(nl *netlist.Netlist, pl timing.Locator) float64 {
	total := 0.0
	nl.Nets(func(net *netlist.Net) {
		total += NetCost(nl, pl, net.ID, nil)
	})
	return total
}

// CellNets returns the nets whose cost depends on the cell's location:
// its output net plus every distinct fanin net.
func CellNets(nl *netlist.Netlist, id netlist.CellID) []netlist.NetID {
	c := nl.Cell(id)
	var nets []netlist.NetID
	if c.Out != netlist.None {
		nets = append(nets, c.Out)
	}
	for _, in := range c.Fanin {
		if in == netlist.None {
			continue
		}
		dup := false
		for _, seen := range nets {
			if seen == in {
				dup = true
				break
			}
		}
		if !dup {
			nets = append(nets, in)
		}
	}
	return nets
}
