package wire

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/netlist"
)

type mapLoc map[netlist.CellID]arch.Loc

func (m mapLoc) Loc(id netlist.CellID) arch.Loc { return m[id] }

func TestQ(t *testing.T) {
	if Q(1) != 1 || Q(2) != 1 || Q(3) != 1 {
		t.Error("q(n) must be 1 for nets up to 3 terminals")
	}
	if Q(4) != 1.0828 {
		t.Errorf("Q(4) = %v, want 1.0828", Q(4))
	}
	if Q(50) != 2.7933 {
		t.Errorf("Q(50) = %v, want 2.7933", Q(50))
	}
	if Q(51) <= Q(50) {
		t.Error("extrapolation beyond 50 must increase")
	}
	// Monotone nondecreasing.
	mono := func(n uint8) bool {
		k := int(n)%100 + 1
		return Q(k+1) >= Q(k)
	}
	if err := quick.Check(mono, nil); err != nil {
		t.Error(err)
	}
}

func buildNet(t *testing.T) (*netlist.Netlist, mapLoc, netlist.NetID) {
	t.Helper()
	n := netlist.New("w")
	d := n.AddCell("d", netlist.IPad, 0)
	a := n.AddCell("a", netlist.LUT, 1)
	n.ConnectByName(a.ID, 0, "d")
	b := n.AddCell("b", netlist.LUT, 1)
	n.ConnectByName(b.ID, 0, "d")
	o := n.AddCell("o", netlist.OPad, 1)
	n.ConnectByName(o.ID, 0, "a")
	o2 := n.AddCell("o2", netlist.OPad, 1)
	n.ConnectByName(o2.ID, 0, "b")
	loc := mapLoc{
		d.ID: {X: 0, Y: 0}, a.ID: {X: 4, Y: 2}, b.ID: {X: 1, Y: 5},
		o.ID: {X: 6, Y: 2}, o2.ID: {X: 1, Y: 6},
	}
	return n, loc, n.Cell(d.ID).Out
}

func TestNetBBoxAndCost(t *testing.T) {
	n, loc, net := buildNet(t)
	b := NetBBox(n, loc, net, nil)
	if b.Xmin != 0 || b.Xmax != 4 || b.Ymin != 0 || b.Ymax != 5 {
		t.Errorf("bbox = %+v, want x[0,4] y[0,5]", b)
	}
	if b.HalfPerim() != 9 {
		t.Errorf("HPWL = %d, want 9", b.HalfPerim())
	}
	// 3 terminals: q = 1.
	if got := NetCost(n, loc, net, nil); got != 9 {
		t.Errorf("NetCost = %v, want 9", got)
	}
}

func TestNetCostOverride(t *testing.T) {
	n, loc, net := buildNet(t)
	aID, _ := n.CellByName("a")
	override := func(id netlist.CellID) (arch.Loc, bool) {
		if id == aID {
			return arch.Loc{X: 1, Y: 1}, true
		}
		return arch.Loc{}, false
	}
	if got := NetCost(n, loc, net, override); got != 6 {
		t.Errorf("overridden NetCost = %v, want 6 (x[0,1] y[0,5])", got)
	}
	// Original placement untouched.
	if got := NetCost(n, loc, net, nil); got != 9 {
		t.Errorf("NetCost after override probe = %v, want 9", got)
	}
}

func TestTotalCost(t *testing.T) {
	n, loc, _ := buildNet(t)
	got := TotalCost(n, loc)
	// Net d: 9. Net a: (4..6,2) = 2. Net b: (1,5..6) = 1.
	if got != 12 {
		t.Errorf("TotalCost = %v, want 12", got)
	}
}

func TestCellNets(t *testing.T) {
	n, _, _ := buildNet(t)
	aID, _ := n.CellByName("a")
	nets := CellNets(n, aID)
	if len(nets) != 2 {
		t.Fatalf("CellNets(a) = %v, want 2 nets (own + fanin)", nets)
	}
	// A cell reading the same net twice counts it once.
	dID, _ := n.CellByName("d")
	l2 := n.AddCell("l2", netlist.LUT, 2)
	n.Connect(l2.ID, 0, n.Cell(dID).Out)
	n.Connect(l2.ID, 1, n.Cell(dID).Out)
	nets = CellNets(n, l2.ID)
	if len(nets) != 2 {
		t.Errorf("CellNets(l2) = %v nets, want 2 (dedup fanin)", len(nets))
	}
}
