package flow

import (
	"strings"
	"testing"
)

// FuzzParseAlgorithm holds the parser to its contract on arbitrary
// input: never panic, accept every canonical name case-insensitively,
// and return algorithms that appear in the canonical name list.
func FuzzParseAlgorithm(f *testing.F) {
	for _, name := range AlgorithmNames() {
		f.Add(name)
		f.Add(strings.ToUpper(name))
	}
	f.Add("")
	f.Add("rt ")
	f.Add("no-such-algo")
	f.Add("\x00\xff")
	f.Fuzz(func(t *testing.T, s string) {
		algo, ok := ParseAlgorithm(s)
		lower, lok := ParseAlgorithm(strings.ToLower(s))
		if ok != lok || (ok && algo != lower) {
			t.Fatalf("ParseAlgorithm(%q) = (%v, %v) but lowercased = (%v, %v): not case-insensitive",
				s, algo, ok, lower, lok)
		}
		if !ok {
			return
		}
		// Every accepted input maps to an algorithm with at least one
		// canonical spelling that parses back to it.
		for _, name := range AlgorithmNames() {
			if back, bok := ParseAlgorithm(name); bok && back == algo {
				return
			}
		}
		t.Fatalf("ParseAlgorithm(%q) = %v, which no canonical name produces", s, algo)
	})
}
