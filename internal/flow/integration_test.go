package flow

import (
	"math"
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/netlist"
)

// TestPipelineInvariants runs the full pipeline for several circuits
// and algorithms and checks the invariants every stage must preserve:
// netlist validity, placement legality, functional-equivalence classes,
// and metric sanity (routed ≥ placement-level, low-stress ≥ infinite).
func TestPipelineInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	cfg := quickCfg()
	for _, name := range []string{"ex5p", "tseng"} {
		spec, _ := circuits.ByName(name)
		b, err := RunBaseline(spec, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Metrics.WInf < b.Metrics.PlacePeriod-1e-9 {
			t.Errorf("%s: routed W-inf %v below placement estimate %v",
				name, b.Metrics.WInf, b.Metrics.PlacePeriod)
		}
		for _, algo := range []Algorithm{LocalRep, RTEmbed, Lex3, LexMC} {
			r, err := RunAlgorithm(b, algo, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, algo, err)
			}
			if r.Metrics.PlacePeriod > b.Metrics.PlacePeriod+1e-9 {
				t.Errorf("%s/%s worsened placement period", name, algo)
			}
			if r.Metrics.WLs < r.Metrics.WInf-1e-9 {
				t.Errorf("%s/%s: W-ls %v < W-inf %v", name, algo, r.Metrics.WLs, r.Metrics.WInf)
			}
			if r.Norm[3] < 1.0-1e-9 {
				t.Errorf("%s/%s: block count shrank below baseline (%v)", name, algo, r.Norm[3])
			}
		}
	}
}

// TestCongestionFeedbackPipeline: the Section VIII variant runs end to
// end and never worsens the placement-level period.
func TestCongestionFeedbackPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	cfg := quickCfg()
	cfg.CongestionFeedback = true
	spec, _ := circuits.ByName("apex4")
	b, err := RunBaseline(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunAlgorithm(b, RTEmbed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.PlacePeriod > b.Metrics.PlacePeriod+1e-9 {
		t.Error("congestion-aware RT-Embedding worsened the period")
	}
}

// TestOptimizedNetlistRoundTrips: the optimized netlist (with replicas)
// survives serialization, and its timing is reproducible after a
// round trip.
func TestOptimizedNetlistRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	cfg := quickCfg()
	cfg.SkipRouting = true
	spec, _ := circuits.ByName("misex3")
	b, err := RunBaseline(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunAlgorithm(b, Lex2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = r
	// Re-run to get the mutated netlist (RunAlgorithm measures a
	// clone; use the engine directly through core for the artifact).
	// Simplest: generate, optimize in-process via the flow again but
	// capture through the stats — serialization is what we test here,
	// so round-trip the baseline netlist plus a manual replica.
	nl := b.Netlist.Clone()
	var anyLUT netlist.CellID = netlist.None
	nl.Cells(func(c *netlist.Cell) {
		if anyLUT == netlist.None && c.Kind == netlist.LUT && len(nl.Net(c.Out).Sinks) > 1 {
			anyLUT = c.ID
		}
	})
	if anyLUT == netlist.None {
		t.Skip("no multi-fanout LUT")
	}
	rep := nl.Replicate(anyLUT)
	nl.MoveSink(nl.Net(nl.Cell(anyLUT).Out).Sinks[0], rep.ID)

	var sb strings.Builder
	if err := nl.Write(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := netlist.Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.NumCells() != nl.NumCells() {
		t.Errorf("round trip changed cell count: %d vs %d", back.NumCells(), nl.NumCells())
	}
	// Note: equivalence-class IDs are not serialized (they are an
	// in-memory optimization artifact); structure must still match.
	if back.NumNets() != nl.NumNets() {
		t.Errorf("round trip changed net count")
	}
}

// TestMetricsNormalization is a pure-function check of the Table II
// normalization math.
func TestMetricsNormalization(t *testing.T) {
	base := Metrics{WInf: 100, WLs: 110, Wire: 1000, Blocks: 500}
	m := Metrics{WInf: 80, WLs: 99, Wire: 1100, Blocks: 505}
	n := m.Normalized(base)
	want := [4]float64{0.8, 0.9, 1.1, 1.01}
	for i := range want {
		if math.Abs(n[i]-want[i]) > 1e-12 {
			t.Errorf("component %d = %v, want %v", i, n[i], want[i])
		}
	}
}
