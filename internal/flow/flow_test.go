package flow

import (
	"math"
	"strings"
	"testing"

	"repro/internal/circuits"
)

// quickCfg keeps flow tests fast: tiny circuits, light annealing.
func quickCfg() Config {
	cfg := Defaults()
	cfg.Scale = 0.04
	cfg.PlaceEffort = 1
	cfg.Engine.MaxIters = 60
	cfg.Engine.Patience = 8
	cfg.LocalRepRuns = 2
	return cfg
}

func TestRunBaseline(t *testing.T) {
	cfg := quickCfg()
	b, err := RunBaseline(circuits.MCNC20[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := b.Metrics
	if m.WInf <= 0 || math.IsNaN(m.WInf) {
		t.Errorf("WInf = %v", m.WInf)
	}
	if m.WLs < m.WInf {
		t.Errorf("low-stress period %v below infinite-resource %v", m.WLs, m.WInf)
	}
	if m.Wire <= 0 {
		t.Errorf("wire = %v", m.Wire)
	}
	if m.Wmin < 1 {
		t.Errorf("wmin = %d", m.Wmin)
	}
	if m.Blocks != b.Netlist.NumLUTs()+b.Netlist.NumIOs() {
		t.Error("block count mismatch")
	}
}

func TestRunAlgorithmsImprove(t *testing.T) {
	cfg := quickCfg()
	b, err := RunBaseline(circuits.MCNC20[0], cfg) // ex5p stand-in
	if err != nil {
		t.Fatal(err)
	}
	vpr, err := RunAlgorithm(b, VPRBaseline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if d := vpr.Norm[k] - 1.0; d > 1e-9 || d < -1e-9 {
			t.Errorf("VPR self-normalization component %d = %v", k, vpr.Norm[k])
		}
	}
	rt, err := RunAlgorithm(b, RTEmbed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Placement-level period must not worsen; the paper's headline is
	// that RT-Embedding improves every circuit.
	if rt.Metrics.PlacePeriod > b.Metrics.PlacePeriod+1e-9 {
		t.Errorf("RT-Embedding worsened placement period: %v -> %v",
			b.Metrics.PlacePeriod, rt.Metrics.PlacePeriod)
	}
	if rt.EngineStats == nil {
		t.Error("engine stats missing")
	}
	lr, err := RunAlgorithm(b, LocalRep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lr.LocalStats == nil {
		t.Error("localrep stats missing")
	}
	if lr.Metrics.PlacePeriod > b.Metrics.PlacePeriod+1e-9 {
		t.Error("local replication worsened the placement period")
	}
}

func TestAverages(t *testing.T) {
	mk := func(name string, norm [4]float64) *Result {
		return &Result{Name: name, Norm: norm}
	}
	// ex5p is small, clma is large.
	rs := []*Result{
		mk("ex5p", [4]float64{0.8, 0.8, 1.1, 1.0}),
		mk("clma", [4]float64{0.6, 0.6, 1.3, 1.2}),
	}
	all, small, large := Averages(rs)
	if all[0] != 0.7 {
		t.Errorf("all avg = %v, want 0.7", all[0])
	}
	if small[0] != 0.8 || large[0] != 0.6 {
		t.Errorf("small/large = %v/%v", small[0], large[0])
	}
	if all[3] != 1.1 {
		t.Errorf("blocks avg = %v, want 1.1", all[3])
	}
}

func TestFormatters(t *testing.T) {
	cfg := quickCfg()
	cfg.SkipRouting = true
	b, err := RunBaseline(circuits.MCNC20[1], cfg) // tseng stand-in (sequential)
	if err != nil {
		t.Fatal(err)
	}
	t1 := FormatTableI([]*Baseline{b})
	if !strings.Contains(t1, "tseng") || !strings.Contains(t1, "density") {
		t.Errorf("Table I formatting broken:\n%s", t1)
	}
	rt, err := RunAlgorithm(b, RTEmbed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	byAlgo := map[Algorithm][]*Result{RTEmbed: {rt}}
	t2 := FormatTableII(byAlgo, []Algorithm{RTEmbed})
	if !strings.Contains(t2, "RT-Embedding") || !strings.Contains(t2, "average") {
		t.Errorf("Table II formatting broken:\n%s", t2)
	}
	t3 := FormatTableIII(byAlgo, []Algorithm{RTEmbed})
	if !strings.Contains(t3, "large ckts") {
		t.Errorf("Table III formatting broken:\n%s", t3)
	}
	if rt.EngineStats != nil {
		f14 := FormatFig14(rt.EngineStats)
		if !strings.Contains(f14, "replicated") {
			t.Errorf("Fig14 formatting broken:\n%s", f14)
		}
	}
}

func TestSkipRouting(t *testing.T) {
	cfg := quickCfg()
	cfg.SkipRouting = true
	b, err := RunBaseline(circuits.MCNC20[2], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(b.Metrics.WLs) {
		t.Error("WLs should be NaN when routing is skipped")
	}
	if b.Metrics.WInf != b.Metrics.PlacePeriod {
		t.Error("WInf should equal the placement period when routing is skipped")
	}
	if b.Metrics.Wire <= 0 {
		t.Error("estimated wire should be positive")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	want := map[Algorithm]string{
		VPRBaseline: "VPR", LocalRep: "Local replication", RTEmbed: "RT-Embedding",
		LexMC: "Lex-mc", Lex2: "Lex-2", Lex3: "Lex-3", Lex4: "Lex-4", Lex5: "Lex-5",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
	if Lex3.Mode().LexDepth != 3 || !LexMC.Mode().MC {
		t.Error("Mode mapping broken")
	}
}
