// Package flow runs the paper's end-to-end evaluation pipeline
// (Fig. 10): generate a benchmark circuit, place it with the
// timing-driven VPR-style annealer, optimize the placement with one of
// the replication algorithms, route the result in both the
// infinite-resource and low-stress regimes, and collect the metrics
// reported in Tables I-III (critical path W∞ and W_ls, routed wire
// length, block count) plus the replication statistics of Fig. 14.
package flow

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/arch"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/localrep"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/placement"
	"repro/internal/route"
	"repro/internal/timing"
)

// Algorithm enumerates the optimizers compared in the paper.
type Algorithm int

const (
	// VPRBaseline is the unoptimized timing-driven placement.
	VPRBaseline Algorithm = iota
	// LocalRep is the Beraudo-Lillis local replication baseline
	// (best of three randomized runs).
	LocalRep
	// RTEmbed is replication-tree embedding with the 2-D signature.
	RTEmbed
	// LexMC, Lex2..Lex5 are the reconvergence-aware variants of
	// Section VI.
	LexMC
	Lex2
	Lex3
	Lex4
	Lex5
)

// String names the algorithm as the paper does.
func (a Algorithm) String() string {
	switch a {
	case VPRBaseline:
		return "VPR"
	case LocalRep:
		return "Local replication"
	case RTEmbed:
		return "RT-Embedding"
	case LexMC:
		return "Lex-mc"
	case Lex2:
		return "Lex-2"
	case Lex3:
		return "Lex-3"
	case Lex4:
		return "Lex-4"
	case Lex5:
		return "Lex-5"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Mode returns the embedding signature mode for engine-based
// algorithms.
func (a Algorithm) Mode() embed.Mode {
	switch a {
	case LexMC:
		return embed.Mode{LexDepth: 1, MC: true}
	case Lex2:
		return embed.Mode{LexDepth: 2}
	case Lex3:
		return embed.Mode{LexDepth: 3}
	case Lex4:
		return embed.Mode{LexDepth: 4}
	case Lex5:
		return embed.Mode{LexDepth: 5}
	default:
		return embed.Mode{LexDepth: 1}
	}
}

// EngineAlgorithms lists the Table III variants in paper order. This
// order is load-bearing beyond presentation: the serve layer's
// speculative racing decides winners by position in this slice, so
// reordering it changes which raced variant wins and therefore the
// content hash → result mapping of every raced job.
var EngineAlgorithms = []Algorithm{RTEmbed, LexMC, Lex2, Lex3, Lex4, Lex5}

// EngineOrder returns a's rank within EngineAlgorithms — the canonical
// racing priority — or -1 for algorithms that are not engine variants
// (VPR baseline, local replication).
func EngineOrder(a Algorithm) int {
	for i, e := range EngineAlgorithms {
		if e == a {
			return i
		}
	}
	return -1
}

// EngineAlgorithmNames returns the canonical spellings of the engine
// variants in EngineAlgorithms (racing) order. This is the default
// variant list for raced jobs.
func EngineAlgorithmNames() []string {
	out := make([]string, len(EngineAlgorithms))
	for i, a := range EngineAlgorithms {
		out[i] = CanonicalName(a)
	}
	return out
}

// algoNames maps the user-facing algorithm names (CLI -algo values and
// repld job specs) to algorithms. Every front end must resolve names
// through ParseAlgorithm so the accepted vocabulary cannot drift
// between tools.
var algoNames = []struct {
	name string
	algo Algorithm
}{
	{"vpr", VPRBaseline},
	{"local", LocalRep},
	{"rt", RTEmbed},
	{"lexmc", LexMC},
	{"lex2", Lex2},
	{"lex3", Lex3},
	{"lex4", Lex4},
	{"lex5", Lex5},
}

// ParseAlgorithm resolves a user-facing algorithm name
// (case-insensitive). The empty string selects RTEmbed, the paper's
// base algorithm; unknown names report ok=false.
func ParseAlgorithm(s string) (Algorithm, bool) {
	if s == "" {
		return RTEmbed, true
	}
	ls := strings.ToLower(s)
	for _, e := range algoNames {
		if e.name == ls {
			return e.algo, true
		}
	}
	return 0, false
}

// CanonicalName returns the canonical -algo spelling for a — the one
// ParseAlgorithm maps back to itself. The cluster layer's spec
// canonicalization keys on it, so aliases and case variants of the
// same algorithm hash identically.
func CanonicalName(a Algorithm) string {
	for _, e := range algoNames {
		if e.algo == a {
			return e.name
		}
	}
	return ""
}

// AlgorithmNames returns the accepted algorithm names in canonical
// order, for usage and error messages.
func AlgorithmNames() []string {
	out := make([]string, len(algoNames))
	for i, e := range algoNames {
		out[i] = e.name
	}
	return out
}

// Config tunes a flow run.
type Config struct {
	// Scale shrinks the benchmark circuits (1.0 = published sizes).
	Scale float64
	// PlaceEffort is the annealer effort (VPR default 10; smaller is
	// faster and noisier).
	PlaceEffort float64
	// Seed drives placement and local replication.
	Seed int64
	// Delay is the shared delay model.
	Delay arch.DelayModel
	// SkipRouting computes placement-level metrics only (W∞ becomes
	// the placement STA period; wire falls back to the q·HPWL
	// estimate). Used by quick benchmarks.
	SkipRouting bool
	// LocalRepRuns is the best-of count for the baseline (paper: 3).
	LocalRepRuns int
	// Engine overrides the default engine configuration (Mode is set
	// per algorithm).
	Engine core.Config
	// CongestionFeedback routes the baseline once and feeds the
	// channel occupancy into the embedder's wire costs — the
	// Section VIII improvement the paper proposes as future work.
	CongestionFeedback bool
}

// Defaults returns the full-fidelity configuration.
func Defaults() Config {
	return Config{
		Scale:        1.0,
		PlaceEffort:  10,
		Seed:         1,
		Delay:        arch.DefaultDelayModel(),
		LocalRepRuns: 3,
		Engine:       core.Default(),
	}
}

// Baseline bundles the placed-but-unoptimized design for reuse across
// algorithm runs.
type Baseline struct {
	Spec      circuits.MCNCSpec
	Netlist   *netlist.Netlist
	Placement *placement.Placement
	FPGA      *arch.FPGA
	Metrics   Metrics
}

// Metrics are the per-run measurements of Tables I and II.
type Metrics struct {
	// WInf is the infinite-resource critical path; WLs the low-stress
	// one (NaN when routing is skipped).
	WInf float64
	WLs  float64
	// Wire is the routed wire length (low-stress regime when routed;
	// q·HPWL estimate otherwise).
	Wire float64
	// Blocks is LUTs + I/Os, the paper's "total blk".
	Blocks int
	// Wmin is the minimum routable channel width (0 if not measured).
	Wmin int
	// PlacePeriod is the placement-level STA period.
	PlacePeriod float64
	// Mono summarizes worst-path straightness — the paper's
	// "all FF to FF paths are monotone" end-state indicator.
	Mono timing.MonotonicityStats
}

// Normalized returns m's headline metrics divided by the baseline's,
// the form of Table II.
func (m Metrics) Normalized(base Metrics) [4]float64 {
	return [4]float64{
		m.WInf / base.WInf,
		m.WLs / base.WLs,
		m.Wire / base.Wire,
		float64(m.Blocks) / float64(base.Blocks),
	}
}

// RunBaseline generates, places, and measures one circuit.
func RunBaseline(spec circuits.MCNCSpec, cfg Config) (*Baseline, error) {
	nl, err := circuits.Generate(spec.Spec(cfg.Scale))
	if err != nil {
		return nil, err
	}
	f := arch.MinSquare(nl.NumLUTs(), nl.NumIOs())
	opts := place.Defaults()
	opts.Seed = cfg.Seed
	opts.Effort = cfg.PlaceEffort
	opts.Delay = cfg.Delay
	pl, err := place.Place(nl, f, opts)
	if err != nil {
		return nil, err
	}
	b := &Baseline{Spec: spec, Netlist: nl, Placement: pl, FPGA: f}
	b.Metrics, err = measure(nl, pl, f, cfg)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// measure routes (unless skipped) and collects metrics.
func measure(nl *netlist.Netlist, pl *placement.Placement, f *arch.FPGA, cfg Config) (Metrics, error) {
	var m Metrics
	a, err := timing.Analyze(nl, pl, cfg.Delay)
	if err != nil {
		return m, err
	}
	m.PlacePeriod = a.Period
	m.Blocks = nl.NumLUTs() + nl.NumIOs()
	m.Mono = timing.Monotonicity(nl, pl, cfg.Delay, a)
	if cfg.SkipRouting {
		m.WInf = a.Period
		m.WLs = math.NaN()
		m.Wire = estimateWire(nl, pl)
		return m, nil
	}
	inf, err := route.Infinite(nl, pl, f, cfg.Delay, route.Defaults())
	if err != nil {
		return m, err
	}
	m.WInf = inf.CritPath
	ls, w, err := route.LowStress(nl, pl, f, cfg.Delay, route.Defaults())
	if err != nil {
		return m, err
	}
	m.WLs = ls.CritPath
	m.Wire = float64(ls.WireLength)
	m.Wmin = w
	return m, nil
}

// estimateWire is the placement-level stand-in for routed wirelength:
// the q(n)-corrected half-perimeter sum.
func estimateWire(nl *netlist.Netlist, pl *placement.Placement) float64 {
	total := 0.0
	nl.Nets(func(n *netlist.Net) {
		total += wireNetCost(nl, pl, n.ID)
	})
	return total
}

// Result is one (circuit, algorithm) outcome.
type Result struct {
	Name      string
	Algorithm Algorithm
	Metrics   Metrics
	// Norm holds {W∞, W_ls, wire, blocks} normalized to the VPR
	// baseline.
	Norm [4]float64
	// Engine statistics (zero for VPR and LocalRep).
	EngineStats *core.Stats
	// LocalRep statistics (nil otherwise).
	LocalStats *localrep.Stats
}

// RunAlgorithm optimizes a copy of the baseline design with the given
// algorithm and measures it.
func RunAlgorithm(b *Baseline, algo Algorithm, cfg Config) (*Result, error) {
	res := &Result{Name: b.Spec.Name, Algorithm: algo}
	nl := b.Netlist.Clone()
	pl := b.Placement.Clone()
	switch algo {
	case VPRBaseline:
		// Nothing to do.
	case LocalRep:
		runs := cfg.LocalRepRuns
		if runs <= 0 {
			runs = 3
		}
		opt := localrep.Defaults()
		opt.Seed = cfg.Seed
		var st *localrep.Stats
		var err error
		nl, pl, st, err = localrep.BestOf(nl, pl, cfg.Delay, opt, runs)
		if err != nil {
			return nil, err
		}
		res.LocalStats = st
	default:
		ecfg := cfg.Engine
		ecfg.Mode = algo.Mode()
		if cfg.CongestionFeedback && !cfg.SkipRouting {
			rr, err := route.Infinite(nl, pl, b.FPGA, cfg.Delay, route.Defaults())
			if err != nil {
				return nil, err
			}
			ecfg.WireCongestion = rr.TileUsage
			if ecfg.WireCongestionWeight == 0 {
				ecfg.WireCongestionWeight = core.Default().WireCongestionWeight
			}
		}
		eng := core.New(nl, pl, cfg.Delay, ecfg)
		st, err := eng.Run()
		if err != nil {
			return nil, err
		}
		nl, pl = eng.Netlist, eng.Placement
		res.EngineStats = st
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("flow: %s/%s produced invalid netlist: %w", b.Spec.Name, algo, err)
	}
	if !pl.Legal() {
		return nil, fmt.Errorf("flow: %s/%s produced illegal placement", b.Spec.Name, algo)
	}
	var err error
	res.Metrics, err = measure(nl, pl, b.FPGA, cfg)
	if err != nil {
		return nil, err
	}
	res.Norm = res.Metrics.Normalized(b.Metrics)
	return res, nil
}

// Averages computes the all/small/large mean normalized metrics over a
// result set, the bottom rows of Table II and the body of Table III.
func Averages(results []*Result) (all, small, large [4]float64) {
	var na, ns, nl int
	for _, r := range results {
		spec, _ := circuits.ByName(r.Name)
		for k := 0; k < 4; k++ {
			all[k] += r.Norm[k]
		}
		na++
		if spec.Large() {
			for k := 0; k < 4; k++ {
				large[k] += r.Norm[k]
			}
			nl++
		} else {
			for k := 0; k < 4; k++ {
				small[k] += r.Norm[k]
			}
			ns++
		}
	}
	div := func(v *[4]float64, n int) {
		if n == 0 {
			return
		}
		for k := 0; k < 4; k++ {
			v[k] /= float64(n)
		}
	}
	div(&all, na)
	div(&small, ns)
	div(&large, nl)
	return all, small, large
}
