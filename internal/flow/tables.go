package flow

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/wire"
)

// wireNetCost avoids exporting the estimate helper from flow.go's
// import list twice; it is the q(n)-corrected half-perimeter.
func wireNetCost(nl *netlist.Netlist, pl *placement.Placement, id netlist.NetID) float64 {
	return wire.NetCost(nl, pl, id, nil)
}

// FormatTableI renders baseline measurements in the layout of the
// paper's Table I.
func FormatTableI(baselines []*Baseline) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %9s %9s %9s %6s %5s %6s %8s %8s\n",
		"Circuit", "W-inf", "W-ls", "wire", "LUTs", "I/Os", "blk", "FPGA", "density")
	for _, bl := range baselines {
		m := bl.Metrics
		fmt.Fprintf(&b, "%-10s %9.2f %9s %9.0f %6d %5d %6d %8s %8.3f\n",
			bl.Spec.Name, m.WInf, fmtMaybe(m.WLs), m.Wire,
			bl.Netlist.NumLUTs(), bl.Netlist.NumIOs(), m.Blocks,
			bl.FPGA.String(), bl.FPGA.Density(bl.Netlist.NumLUTs()))
	}
	return b.String()
}

func fmtMaybe(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// FormatTableII renders per-circuit normalized comparisons for a set
// of algorithms (columns W∞, W_ls, wire, blk per algorithm), plus the
// all/small/large average rows, mirroring the paper's Table II.
func FormatTableII(byAlgo map[Algorithm][]*Result, algos []Algorithm) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "Circuit")
	for _, a := range algos {
		fmt.Fprintf(&b, " | %-31s", a.String())
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%-10s", "")
	for range algos {
		fmt.Fprintf(&b, " | %7s %7s %7s %7s", "W-inf", "W-ls", "wire", "blk")
	}
	fmt.Fprintln(&b)
	if len(byAlgo[algos[0]]) == 0 {
		return b.String()
	}
	for i := range byAlgo[algos[0]] {
		fmt.Fprintf(&b, "%-10s", byAlgo[algos[0]][i].Name)
		for _, a := range algos {
			r := byAlgo[a][i]
			fmt.Fprintf(&b, " | %7.3f %7s %7.3f %7.3f",
				r.Norm[0], fmtMaybe(r.Norm[1]), r.Norm[2], r.Norm[3])
		}
		fmt.Fprintln(&b)
	}
	for _, row := range []struct {
		label string
		pick  func(all, small, large [4]float64) [4]float64
	}{
		{"average", func(a, s, l [4]float64) [4]float64 { return a }},
		{"small avg", func(a, s, l [4]float64) [4]float64 { return s }},
		{"large avg", func(a, s, l [4]float64) [4]float64 { return l }},
	} {
		first := row.pick(Averages(byAlgo[algos[0]]))
		//replint:ignore floatcmp -- the average of an empty size class is exactly zero; zero is the no-data sentinel
		if first[0] == 0 {
			continue // no circuits in this size class
		}
		fmt.Fprintf(&b, "%-10s", row.label)
		for _, a := range algos {
			v := row.pick(Averages(byAlgo[a]))
			fmt.Fprintf(&b, " | %7.3f %7s %7.3f %7.3f",
				v[0], fmtMaybe(v[1]), v[2], v[3])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatTableIII renders the averages-only comparison of all engine
// variants, mirroring the paper's Table III.
func FormatTableIII(byAlgo map[Algorithm][]*Result, algos []Algorithm) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s | %-31s | %-31s | %-31s\n",
		"Algorithm", "average (norm. to VPR)", "small ckts", "large ckts")
	fmt.Fprintf(&b, "%-14s", "")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, " | %7s %7s %7s %7s", "W-inf", "W-ls", "wire", "blk")
	}
	fmt.Fprintln(&b)
	for _, a := range algos {
		all, small, large := Averages(byAlgo[a])
		fmt.Fprintf(&b, "%-14s", a.String())
		for _, v := range [][4]float64{all, small, large} {
			fmt.Fprintf(&b, " | %7.3f %7s %7.3f %7.3f",
				v[0], fmtMaybe(v[1]), v[2], v[3])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatFig14 renders the per-iteration replication statistics the
// paper plots in Fig. 14 for circuit ex1010: cumulative replicated and
// unified cell counts per iteration.
func FormatFig14(st *core.Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %12s %12s %12s %10s\n",
		"iter", "replicated", "unified", "net-repl", "period")
	for _, it := range st.PerIter {
		fmt.Fprintf(&b, "%6d %12d %12d %12d %10.2f\n",
			it.Iter, it.Replicated, it.Unified, it.Replicated-it.Unified, it.Period)
	}
	fmt.Fprintf(&b, "total iterations %d, replicated %d, unified %d, net %d\n",
		st.Iterations, st.Replicated, st.Unified, st.Replicated-st.Unified)
	return b.String()
}
