package rtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuits"
	"repro/internal/netlist"
	"repro/internal/timing"
)

// Property tests for Build over randomized circuits: for any ε-SPT
// member set, the replication tree must mirror the paper's wiring rule
// exactly. The expected internal set is recomputed here from the SPT
// parent relation alone — an independent derivation, not a replay of
// Build's recursion.

// expectedInternal returns the cells Build must internalize: the
// movable members whose SPT-parent chain to the sink runs entirely
// through internalized cells (a leaf is never expanded, so a movable
// member hiding behind a non-movable one stays a leaf).
func expectedInternal(nl *netlist.Netlist, spt *timing.SPT, members map[netlist.CellID]bool) map[netlist.CellID]bool {
	children := spt.Children(members)
	internal := map[netlist.CellID]bool{}
	queue := []netlist.CellID{spt.Sink}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range children[v] {
			if Movable(nl, u) && !internal[u] {
				internal[u] = true
				queue = append(queue, u)
			}
		}
	}
	return internal
}

func randomLoc(rng *rand.Rand, nl *netlist.Netlist, n int16) mapLoc {
	loc := mapLoc{}
	nl.Cells(func(c *netlist.Cell) {
		loc[c.ID] = arch.Loc{X: 1 + int16(rng.Intn(int(n))), Y: 1 + int16(rng.Intn(int(n)))}
	})
	return loc
}

func TestBuildProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	runs := 40
	if testing.Short() {
		runs = 10
	}
	trees := 0
	for i := 0; i < runs; i++ {
		spec := circuits.Spec{
			Name:    "prop",
			LUTs:    8 + rng.Intn(20),
			Inputs:  3 + rng.Intn(4),
			Outputs: 2 + rng.Intn(3),
			Seed:    rng.Int63n(1 << 30),
		}
		if i%3 == 1 {
			spec.RegisteredFrac = 0.25
		}
		nl, err := circuits.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		loc := randomLoc(rng, nl, 10)
		a, err := timing.Analyze(nl, loc, dm())
		if err != nil {
			t.Fatal(err)
		}
		var sinks []netlist.CellID
		nl.Cells(func(c *netlist.Cell) {
			if c.IsSink() && !math.IsInf(a.SinkArr[c.ID], -1) {
				sinks = append(sinks, c.ID)
			}
		})
		for s := 0; s < 3 && s < len(sinks); s++ {
			sink := sinks[rng.Intn(len(sinks))]
			spt := timing.BuildSPT(nl, loc, dm(), a, sink)
			eps := []float64{0, 0.15 * a.Period, 0.5 * a.Period}[rng.Intn(3)]
			members := spt.Epsilon(eps)
			rt, err := Build(nl, a, spt, members)
			if err != nil {
				t.Fatalf("run %d (seed %d) sink %d: %v", i, spec.Seed, sink, err)
			}
			trees++
			checkTree(t, nl, a, spt, members, rt)
		}
	}
	if trees < runs {
		t.Fatalf("only %d trees built over %d circuits; generator is degenerate", trees, runs)
	}
}

func checkTree(t *testing.T, nl *netlist.Netlist, a *timing.Analysis, spt *timing.SPT, members map[netlist.CellID]bool, rt *RTree) {
	t.Helper()
	if rt.Root().Cell != spt.Sink || rt.Root().IsLeaf() {
		t.Fatalf("root is %d (leaf=%v), want internal node for sink %d",
			rt.Root().Cell, rt.Root().IsLeaf(), spt.Sink)
	}

	// Internal occurrences and count match the independent derivation.
	want := expectedInternal(nl, spt, members)
	got := map[netlist.CellID]int{}
	internalOccurrences := 0
	for i := 1; i < len(rt.Nodes); i++ {
		if !rt.Nodes[i].IsLeaf() {
			got[rt.Nodes[i].Cell]++
			internalOccurrences++
		}
	}
	if rt.Internal != internalOccurrences {
		t.Fatalf("Internal = %d but tree has %d internal non-root nodes", rt.Internal, internalOccurrences)
	}
	if len(got) != len(want) {
		t.Fatalf("tree internalizes %d distinct cells, ε-SPT derivation says %d (got %v, want %v)",
			len(got), len(want), got, want)
	}
	for u := range want {
		if got[u] != 1 {
			t.Fatalf("cell %d internalized %d times, want exactly once", u, got[u])
		}
	}

	criticals := 0
	for i := range rt.Nodes {
		n := &rt.Nodes[i]
		if n.IsLeaf() {
			// Leaves carry the STA arrival bitwise, and arrival zero
			// iff the cell is a true input (PI or register): every LUT
			// output arrives at least one LUT delay late.
			if math.Float64bits(n.Arr) != math.Float64bits(a.Arr[n.Cell]) {
				t.Fatalf("leaf %d carries Arr %v, STA says %v", n.Cell, n.Arr, a.Arr[n.Cell])
			}
			if (n.Arr == 0) != nl.Cell(n.Cell).IsSource() {
				t.Fatalf("leaf %d: Arr %v vs source %v — zero arrival must mark exactly the true inputs",
					n.Cell, n.Arr, nl.Cell(n.Cell).IsSource())
			}
			if n.Critical {
				criticals++
				if n.Arr != 0 {
					t.Fatalf("critical leaf %d has arrival %v, want a true input", n.Cell, n.Arr)
				}
			}
			continue
		}
		// The wiring rule: one child per connected fanin pin, in order.
		c := nl.Cell(n.Cell)
		var pins []int32
		for pin, net := range c.Fanin {
			if net != netlist.None {
				pins = append(pins, int32(pin))
			}
		}
		if len(n.Children) != len(pins) {
			t.Fatalf("node for cell %d has %d children, cell has %d connected fanins",
				n.Cell, len(n.Children), len(pins))
		}
		for k, ci := range n.Children {
			child := &rt.Nodes[ci]
			if child.Pin != pins[k] {
				t.Fatalf("cell %d child %d feeds pin %d, want %d", n.Cell, k, child.Pin, pins[k])
			}
			if child.Cell != nl.Net(c.Fanin[pins[k]]).Driver {
				t.Fatalf("cell %d pin %d child is cell %d, want the net driver %d",
					n.Cell, pins[k], child.Cell, nl.Net(c.Fanin[pins[k]]).Driver)
			}
			if !child.IsLeaf() && !members[child.Cell] {
				t.Fatalf("cell %d internalized outside the member set", child.Cell)
			}
		}
	}
	if criticals > 1 {
		t.Fatalf("%d critical leaves, want at most one", criticals)
	}
}
