package rtree

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/embed"
	"repro/internal/netlist"
	"repro/internal/timing"
)

type mapLoc map[netlist.CellID]arch.Loc

func (m mapLoc) Loc(id netlist.CellID) arch.Loc { return m[id] }

func dm() arch.DelayModel { return arch.DelayModel{SegDelay: 1, LUTDelay: 2, IODelay: 0.5} }

// fig8 reconstructs the circuit of Fig. 8: inputs x,y,z,w; LUTs
// a(x,y), b(y,z), c(z,w), d(a,c), f(b,c,d); output pad out(f).
func fig8(t *testing.T) (*netlist.Netlist, mapLoc) {
	t.Helper()
	n := netlist.New("fig8")
	for _, in := range []string{"x", "y", "z", "w"} {
		n.AddCell(in, netlist.IPad, 0)
	}
	mk := func(name string, ins ...string) *netlist.Cell {
		c := n.AddCell(name, netlist.LUT, len(ins))
		for i, s := range ins {
			n.ConnectByName(c.ID, i, s)
		}
		return c
	}
	mk("a", "x", "y")
	mk("b", "y", "z")
	mk("c", "z", "w")
	mk("d", "a", "c")
	mk("f", "b", "c", "d")
	o := n.AddCell("out", netlist.OPad, 1)
	n.ConnectByName(o.ID, 0, "f")
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	loc := mapLoc{}
	at := func(name string, x, y int16) {
		id, _ := n.CellByName(name)
		loc[id] = arch.Loc{X: x, Y: y}
	}
	at("x", 0, 1)
	at("y", 0, 3)
	at("z", 0, 5)
	at("w", 0, 7)
	at("a", 2, 2)
	at("b", 2, 4)
	at("c", 2, 6)
	at("d", 4, 3)
	at("f", 6, 4)
	at("out", 8, 4)
	return n, loc
}

func id(t *testing.T, n *netlist.Netlist, name string) netlist.CellID {
	t.Helper()
	cid, ok := n.CellByName(name)
	if !ok {
		t.Fatalf("no cell %q", name)
	}
	return cid
}

// TestReplicationTreeFig8 reproduces the construction of Fig. 8: with
// members {out, f, d, a, b} the induced fanin tree has internal nodes
// f, d, a, b, while c appears twice as a shared leaf (Leaf-DAG) — "d^R
// and f^R connect to c rather than c^R".
func TestReplicationTreeFig8(t *testing.T) {
	n, loc := fig8(t)
	a, err := timing.Analyze(n, loc, dm())
	if err != nil {
		t.Fatal(err)
	}
	out := id(t, n, "out")
	spt := timing.BuildSPT(n, loc, dm(), a, out)
	members := map[netlist.CellID]bool{
		out: true, id(t, n, "f"): true, id(t, n, "d"): true,
		id(t, n, "a"): true, id(t, n, "b"): true,
	}
	rt, err := Build(n, a, spt, members)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Root().Cell != out {
		t.Errorf("root cell = %v, want out", rt.Root().Cell)
	}
	// Internal cells are exactly f, d, a, b.
	want := []netlist.CellID{id(t, n, "a"), id(t, n, "b"), id(t, n, "d"), id(t, n, "f")}
	got := rt.Cells()
	if len(got) != len(want) {
		t.Fatalf("internal cells = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("internal cells = %v, want %v", got, want)
		}
	}
	if rt.Internal != 4 {
		t.Errorf("Internal = %d, want 4", rt.Internal)
	}
	// c appears exactly twice, both times as a leaf.
	cID := id(t, n, "c")
	cLeafCount := 0
	for i := range rt.Nodes {
		node := &rt.Nodes[i]
		if node.Cell == cID {
			if !node.IsLeaf() {
				t.Error("c must be a leaf (reconvergence terminator)")
			}
			cLeafCount++
			// Its arrival is the STA arrival of the original cell.
			if node.Arr != a.Arr[cID] {
				t.Errorf("leaf c arrival = %v, want %v", node.Arr, a.Arr[cID])
			}
		}
	}
	if cLeafCount != 2 {
		t.Errorf("c appears %d times, want 2 (shared Leaf-DAG leaf)", cLeafCount)
	}
	// Internal nodes appear exactly once each.
	seen := map[netlist.CellID]int{}
	for i := range rt.Nodes {
		if !rt.Nodes[i].IsLeaf() {
			seen[rt.Nodes[i].Cell]++
		}
	}
	for cell, count := range seen {
		if count != 1 {
			t.Errorf("cell %v appears %d times as internal node", cell, count)
		}
	}
	// Children order mirrors fanin pin order: f's children are pins
	// 0 (b), 1 (c), 2 (d).
	var fNode *Node
	for i := range rt.Nodes {
		if rt.Nodes[i].Cell == id(t, n, "f") && !rt.Nodes[i].IsLeaf() {
			fNode = &rt.Nodes[i]
		}
	}
	if fNode == nil {
		t.Fatal("no internal node for f")
	}
	wantKids := []netlist.CellID{id(t, n, "b"), cID, id(t, n, "d")}
	for i, ci := range fNode.Children {
		if rt.Nodes[ci].Cell != wantKids[i] {
			t.Errorf("f child %d = cell %v, want %v", i, rt.Nodes[ci].Cell, wantKids[i])
		}
		if rt.Nodes[ci].Pin != int32(i) {
			t.Errorf("f child %d pin = %d, want %d", i, rt.Nodes[ci].Pin, i)
		}
	}
}

// TestBuildFullEpsilon uses the full cone as members: every movable
// LUT with a member parent becomes internal; c joins the tree under
// its SPT parent and still terminates reconvergence at the other
// fanout.
func TestBuildFullEpsilon(t *testing.T) {
	n, loc := fig8(t)
	a, _ := timing.Analyze(n, loc, dm())
	out := id(t, n, "out")
	spt := timing.BuildSPT(n, loc, dm(), a, out)
	members := spt.Epsilon(math.Inf(1))
	rt, err := Build(n, a, spt, members)
	if err != nil {
		t.Fatal(err)
	}
	// All five LUTs are internal now.
	if rt.Internal != 5 {
		t.Errorf("Internal = %d, want 5", rt.Internal)
	}
	// c is internal exactly once and a leaf exactly once (it feeds
	// both d and f but has one SPT parent).
	cID := id(t, n, "c")
	internal, leaf := 0, 0
	for i := range rt.Nodes {
		if rt.Nodes[i].Cell != cID {
			continue
		}
		if rt.Nodes[i].IsLeaf() {
			leaf++
		} else {
			internal++
		}
	}
	if internal != 1 || leaf != 1 {
		t.Errorf("c: internal=%d leaf=%d, want 1 and 1", internal, leaf)
	}
	// Pads never become internal (the root is the sink itself and is
	// not replicated, so it is exempt).
	for i := 1; i < len(rt.Nodes); i++ {
		node := &rt.Nodes[i]
		if !node.IsLeaf() && n.Cell(node.Cell).Kind != netlist.LUT {
			t.Errorf("non-LUT cell %v became internal", node.Cell)
		}
	}
}

// TestCriticalInputMark: exactly one true-input leaf is marked, and it
// is the one with the largest slowest-path-through delay.
func TestCriticalInputMark(t *testing.T) {
	n, loc := fig8(t)
	a, _ := timing.Analyze(n, loc, dm())
	out := id(t, n, "out")
	spt := timing.BuildSPT(n, loc, dm(), a, out)
	rt, err := Build(n, a, spt, spt.Epsilon(math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	marked := 0
	var markedCell netlist.CellID
	for i := range rt.Nodes {
		node := &rt.Nodes[i]
		if node.Critical {
			marked++
			markedCell = node.Cell
			if !node.IsLeaf() || node.Arr != 0 {
				t.Error("critical mark must be on a true-input (arrival 0) leaf")
			}
		}
	}
	if marked != 1 {
		t.Fatalf("marked %d critical inputs, want 1", marked)
	}
	// Verify it's the max-PathThrough input among arrival-0 leaves.
	best := markedCell
	for i := range rt.Nodes {
		node := &rt.Nodes[i]
		if !node.IsLeaf() || node.Arr != 0 {
			continue
		}
		if spt.PathThrough[node.Cell] > spt.PathThrough[best] {
			t.Errorf("leaf %v has larger PathThrough than marked %v", node.Cell, best)
		}
	}
}

// TestToEmbedProblem: the conversion yields a valid embed tree with
// correct vertices, arrival times, clamping, and lower bound.
func TestToEmbedProblem(t *testing.T) {
	n, loc := fig8(t)
	a, _ := timing.Analyze(n, loc, dm())
	out := id(t, n, "out")
	spt := timing.BuildSPT(n, loc, dm(), a, out)
	rt, err := Build(n, a, spt, spt.Epsilon(math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Window covering x in [1,8], y in [1,7]: input pads at x=0 are
	// outside and must be clamped with pre-charged delay.
	g := embed.NewGrid(embed.GridSpec{X0: 1, Y0: 1, W: 8, H: 7, WireCost: 1, WireDelay: dm().SegDelay})
	ep, err := rt.ToEmbedProblem(g, n, loc, dm(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Tree.Validate(g.NumVertices()); err != nil {
		t.Fatalf("embed tree invalid: %v", err)
	}
	// Root is fixed at the sink's location.
	rootV := ep.Tree.Nodes[ep.Tree.Root].Vertex
	if g.LocOf(rootV) != loc[out] {
		t.Errorf("root vertex at %v, want %v", g.LocOf(rootV), loc[out])
	}
	// Clamped leaves: an input pad at (0,3) maps to (1,3) with one
	// unit of wire delay pre-charged.
	yID := id(t, n, "y")
	for i := range rt.Nodes {
		if rt.Nodes[i].Cell != yID {
			continue
		}
		en := ep.Tree.Nodes[i]
		if g.LocOf(en.Vertex) != (arch.Loc{X: 1, Y: 3}) {
			t.Errorf("clamped y at %v, want (1,3)", g.LocOf(en.Vertex))
		}
		if en.Arr != dm().SegDelay*1 {
			t.Errorf("clamped y arrival = %v, want %v", en.Arr, dm().SegDelay)
		}
	}
	// Lower bound is positive and no greater than the current arrival.
	if ep.LowerBound <= 0 || ep.LowerBound > a.SinkArr[out] {
		t.Errorf("LowerBound = %v, want in (0, %v]", ep.LowerBound, a.SinkArr[out])
	}
	// Solving the embedding must succeed and beat nothing worse than
	// the current arrival (re-embedding at current locations is always
	// available).
	p := &embed.Problem{G: g, T: ep.Tree, Mode: embed.Mode{LexDepth: 1, Delay: embed.LinearDelay}}
	r, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	fastest, _ := r.SelectFastest()
	if fastest.Sig.D[0] > a.SinkArr[out]+1e-9 {
		t.Errorf("embedder's fastest %v worse than current arrival %v", fastest.Sig.D[0], a.SinkArr[out])
	}
	if fastest.Sig.D[0] < ep.LowerBound-1e-9 {
		t.Errorf("embedder beat the theoretical lower bound: %v < %v", fastest.Sig.D[0], ep.LowerBound)
	}
}

// TestBuildRequiresSink: member sets not containing the sink are
// rejected.
func TestBuildRequiresSink(t *testing.T) {
	n, loc := fig8(t)
	a, _ := timing.Analyze(n, loc, dm())
	out := id(t, n, "out")
	spt := timing.BuildSPT(n, loc, dm(), a, out)
	if _, err := Build(n, a, spt, map[netlist.CellID]bool{id(t, n, "f"): true}); err == nil {
		t.Error("Build should reject member set without the sink")
	}
}

// TestFig15Reconvergence builds the exact subcircuit of Fig. 15 and
// checks that the replication tree has e both as an internal node
// (e^R) and as a fixed reconvergence-terminator leaf.
func TestFig15Reconvergence(t *testing.T) {
	// Circuit: inputs a, b, c; d(a), e(b, c); f(d, e); e also feeds f
	// via reconvergence... Per the figure: d's inputs {a, e}? The text:
	// internal nodes d and e, sink f; reconvergence on e.
	// We model: e(b,c), d(a,e), f(d,e).
	n := netlist.New("fig15")
	for _, in := range []string{"a", "b", "c"} {
		n.AddCell(in, netlist.IPad, 0)
	}
	e := n.AddCell("e", netlist.LUT, 2)
	n.ConnectByName(e.ID, 0, "b")
	n.ConnectByName(e.ID, 1, "c")
	d := n.AddCell("d", netlist.LUT, 2)
	n.ConnectByName(d.ID, 0, "a")
	n.ConnectByName(d.ID, 1, "e")
	f := n.AddCell("f", netlist.OPad, 1)
	// f is driven by a LUT g(d, e) so the sink has one input.
	g := n.AddCell("g", netlist.LUT, 2)
	n.ConnectByName(g.ID, 0, "d")
	n.ConnectByName(g.ID, 1, "e")
	n.ConnectByName(f.ID, 0, "g")
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	loc := mapLoc{}
	at := func(name string, x, y int16) {
		cid, _ := n.CellByName(name)
		loc[cid] = arch.Loc{X: x, Y: y}
	}
	at("a", 0, 1)
	at("b", 0, 3)
	at("c", 0, 5)
	at("e", 2, 4)
	at("d", 4, 2)
	at("g", 6, 3)
	at("f", 8, 3)

	a, err := timing.Analyze(n, loc, dm())
	if err != nil {
		t.Fatal(err)
	}
	fID, _ := n.CellByName("f")
	spt := timing.BuildSPT(n, loc, dm(), a, fID)
	rt, err := Build(n, a, spt, spt.Epsilon(math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	// e must appear once as internal (e^R, under its SPT parent) and
	// once as a leaf "where reconvergence breaks".
	internal, leaf := 0, 0
	for i := range rt.Nodes {
		if rt.Nodes[i].Cell != e.ID {
			continue
		}
		if rt.Nodes[i].IsLeaf() {
			leaf++
			if rt.Nodes[i].Arr != a.Arr[e.ID] {
				t.Errorf("terminator leaf arrival = %v, want STA arrival %v",
					rt.Nodes[i].Arr, a.Arr[e.ID])
			}
		} else {
			internal++
		}
	}
	if internal != 1 || leaf != 1 {
		t.Errorf("e: internal=%d leaf=%d, want 1 and 1 (Fig. 15 middle)", internal, leaf)
	}
	_ = d
	_ = g
}
