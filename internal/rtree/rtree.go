// Package rtree constructs replication trees (Section III of the
// paper): given an ε-SPT — a set of timing-tree edges pointing at a
// critical sink — it induces a genuine fanin tree in a logically
// equivalent netlist by (conceptually) replicating every movable cell
// in the set. Cells outside the set, fixed cells, and reconvergence
// terminators become leaves with known arrival times; the same leaf
// cell may feed several tree nodes (a Leaf-DAG), which the embedder
// handles because leaf timing is fixed.
package rtree

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/embed"
	"repro/internal/netlist"
	"repro/internal/timing"
)

// Node is one replication-tree node.
type Node struct {
	// Cell is the netlist cell this node refers to: for internal nodes
	// the cell to be (temporarily) replicated; for leaves the fixed
	// cell supplying the signal.
	Cell netlist.CellID
	// Children indexes fanin subtrees (empty for leaves). For internal
	// nodes, Children[i] corresponds 1:1 with the cell's fanin pin i.
	Children []int32
	// Pin is, for internal (non-root) nodes, the input pin of the
	// parent cell this node feeds.
	Pin int32
	// Arr is a leaf's signal arrival time from static timing analysis.
	Arr float64
	// Critical marks the critical input leaf (largest downstream
	// delay among true inputs) used by the Lex-mc objective.
	Critical bool
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// RTree is a replication tree rooted at a timing sink.
type RTree struct {
	// Nodes[0] is the root (the sink cell, never replicated).
	Nodes []Node
	// Internal counts internal (replicable) nodes, excluding the root.
	Internal int
}

// Root returns the root node.
func (t *RTree) Root() *Node { return &t.Nodes[0] }

// Movable reports whether a cell may become an internal tree node: a
// live, non-registered LUT. Pads and registered LUTs are timing
// boundaries and stay fixed (FF relocation is handled separately, by
// freeing the embedding root — Section V-D).
func Movable(nl *netlist.Netlist, id netlist.CellID) bool {
	c := nl.Cell(id)
	return c.Kind == netlist.LUT && !c.Registered
}

// Build constructs the replication tree for the ε-SPT membership set
// `members` (which must include spt.Sink). Every movable member cell
// whose SPT parent is also a member becomes an internal node; every
// other fanin becomes a leaf carrying its STA arrival time, exactly
// following the paper's wiring rule: "if (u_i, v) is a tree edge, then
// v^R receives its i'th input from u_i^R; otherwise from u_i".
func Build(nl *netlist.Netlist, a *timing.Analysis, spt *timing.SPT, members map[netlist.CellID]bool) (*RTree, error) {
	if !members[spt.Sink] {
		return nil, fmt.Errorf("rtree: member set does not include the sink")
	}
	t := &RTree{}
	t.Nodes = append(t.Nodes, Node{Cell: spt.Sink})

	// internal(u, v): u becomes an internal node feeding v iff u is a
	// member, movable, and its slowest path runs through v (tree edge).
	internal := func(u, v netlist.CellID) bool {
		return members[u] && Movable(nl, u) && spt.Parent[u] == v
	}

	var build func(nodeIdx int32) error
	build = func(nodeIdx int32) error {
		cell := t.Nodes[nodeIdx].Cell
		c := nl.Cell(cell)
		for pin, net := range c.Fanin {
			if net == netlist.None {
				continue
			}
			u := nl.Net(net).Driver
			child := Node{Cell: u, Pin: int32(pin)}
			childIdx := int32(len(t.Nodes))
			if internal(u, cell) {
				t.Nodes = append(t.Nodes, child)
				t.Nodes[nodeIdx].Children = append(t.Nodes[nodeIdx].Children, childIdx)
				t.Internal++
				if err := build(childIdx); err != nil {
					return err
				}
			} else {
				child.Arr = a.Arr[u]
				t.Nodes = append(t.Nodes, child)
				t.Nodes[nodeIdx].Children = append(t.Nodes[nodeIdx].Children, childIdx)
			}
		}
		if len(t.Nodes[nodeIdx].Children) == 0 {
			return fmt.Errorf("rtree: internal cell %s has no connected fanins", c.Name)
		}
		return nil
	}
	if err := build(0); err != nil {
		return nil, err
	}
	t.markCriticalInput(spt)
	return t, nil
}

// markCriticalInput marks the true-input leaf (arrival zero — "in this
// way we can distinguish them from the leaves that are created as
// reconvergence terminators") with the largest downstream delay, per
// the Lex-mc construction of Section VI-A. Ties break on the lowest
// cell ID for determinism.
func (t *RTree) markCriticalInput(spt *timing.SPT) {
	bestIdx := -1
	bestPT := 0.0
	for i := range t.Nodes {
		n := &t.Nodes[i]
		//replint:ignore floatcmp -- leaf arrivals are assigned exactly zero at construction, never computed
		if !n.IsLeaf() || n.Arr != 0 {
			continue
		}
		pt, ok := spt.PathThrough[n.Cell]
		if !ok {
			continue
		}
		//replint:ignore floatcmp -- exact tie on PathThrough breaks to the lowest cell ID; bitwise equality is the tie-break semantics
		if bestIdx < 0 || pt > bestPT || (pt == bestPT && n.Cell < t.Nodes[bestIdx].Cell) {
			bestIdx, bestPT = i, pt
		}
	}
	if bestIdx >= 0 {
		t.Nodes[bestIdx].Critical = true
	}
}

// Cells returns the distinct cells appearing as internal nodes, in
// ascending ID order.
func (t *RTree) Cells() []netlist.CellID {
	seen := map[netlist.CellID]bool{}
	var out []netlist.CellID
	for i := 1; i < len(t.Nodes); i++ {
		if t.Nodes[i].IsLeaf() {
			continue
		}
		if !seen[t.Nodes[i].Cell] {
			seen[t.Nodes[i].Cell] = true
			out = append(out, t.Nodes[i].Cell)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EmbedProblem is the translation of a replication tree into an
// embedder instance.
type EmbedProblem struct {
	Tree *embed.Tree
	// NodeCell maps embed tree node IDs back to netlist cells.
	NodeCell []netlist.CellID
	// LowerBound is the best arrival achievable by this tree assuming
	// straight-line wiring and minimum tree depth (Section II-C's
	// selection bound).
	LowerBound float64
}

// ToEmbedProblem converts the replication tree for embedding on graph
// g. Leaves outside the graph window are clamped to the window border
// with the wire delay from their true location pre-charged into the
// leaf arrival time. intrinsic supplies each internal cell's gate
// delay; the root uses the sink's intrinsic delay.
func (t *RTree) ToEmbedProblem(g *embed.Graph, nl *netlist.Netlist, pl timing.Locator, dm arch.DelayModel, rootFree bool) (*EmbedProblem, error) {
	ep := &EmbedProblem{
		Tree: &embed.Tree{
			Nodes: make([]embed.Node, len(t.Nodes)),
			Root:  0,
		},
		NodeCell: make([]netlist.CellID, len(t.Nodes)),
	}
	for i := range t.Nodes {
		rn := &t.Nodes[i]
		en := &ep.Tree.Nodes[i]
		ep.NodeCell[i] = rn.Cell
		en.Children = append([]embed.NodeID(nil), rn.Children...)
		if rn.IsLeaf() {
			loc := pl.Loc(rn.Cell)
			clamped := g.ClampToWindow(loc)
			en.Vertex = g.VertexAt(clamped)
			en.Arr = rn.Arr + dm.WireDelay(arch.Dist(loc, clamped))
			en.Critical = rn.Critical
			continue
		}
		en.Intrinsic = Intrinsic(nl, dm, rn.Cell)
		if i == 0 {
			if rootFree {
				en.Vertex = -1
			} else {
				v := g.VertexAt(pl.Loc(rn.Cell))
				if v < 0 {
					return nil, fmt.Errorf("rtree: sink outside embedding window")
				}
				en.Vertex = v
			}
		} else {
			en.Vertex = -1
		}
	}
	ep.LowerBound = t.lowerBound(nl, pl, dm)
	return ep, nil
}

// Intrinsic returns the delay model's intrinsic delay for a cell.
func Intrinsic(nl *netlist.Netlist, dm arch.DelayModel, id netlist.CellID) float64 {
	return timing.Intrinsic(dm, nl.Cell(id))
}

// lowerBound computes the straight-line tree bound: for each leaf, its
// arrival plus the wire delay of the direct leaf-to-sink distance plus
// the gate delays of the internal nodes between them.
func (t *RTree) lowerBound(nl *netlist.Netlist, pl timing.Locator, dm arch.DelayModel) float64 {
	rootLoc := pl.Loc(t.Nodes[0].Cell)
	bound := 0.0
	var walk func(idx int32, gates float64)
	walk = func(idx int32, gates float64) {
		n := &t.Nodes[idx]
		if n.IsLeaf() {
			lb := n.Arr + dm.WireDelay(arch.Dist(pl.Loc(n.Cell), rootLoc)) + gates
			if lb > bound {
				bound = lb
			}
			return
		}
		for _, c := range n.Children {
			walk(c, gates+Intrinsic(nl, dm, n.Cell))
		}
	}
	root := t.Root()
	for _, c := range root.Children {
		walk(c, Intrinsic(nl, dm, root.Cell))
	}
	return bound
}
