// Package localrep implements the local replication baseline of
// Beraudo and Lillis ("Timing optimization of FPGA placements by logic
// replication", DAC 2003), the algorithm the paper compares against:
// walk the current critical path, find a locally nonmonotone triple
// (v1, v2, v3) — i.e. d(v1,v3) < d(v1,v2) + d(v2,v3), traveling to v2
// creates a detour — replicate v2, let the duplicate drive the
// critical successor (fanout partitioning), place it on a monotone
// position, legalize, and keep the change only if the clock period
// improved. Candidate choice is randomized; the paper runs it three
// times and keeps the best (see BestOf).
//
// Its limitation — Fig. 3 of the paper: a globally nonmonotone path
// whose every window of three cells is locally monotone is invisible
// to this algorithm — is exactly what the replication-tree approach
// lifts.
package localrep

import (
	"math/rand"

	"repro/internal/arch"
	"repro/internal/legal"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/timing"
)

// Options configures a run.
type Options struct {
	// Seed drives the randomized candidate selection.
	Seed int64
	// MaxIters bounds accepted+rejected attempts.
	MaxIters int
	// Patience stops after this many consecutive non-improvements.
	Patience int
}

// Defaults mirrors the original evaluation's settings.
func Defaults() Options {
	return Options{Seed: 1, MaxIters: 300, Patience: 25}
}

// Stats reports what a run did.
type Stats struct {
	Iterations    int
	Replicated    int
	Relocated     int
	InitialPeriod float64
	FinalPeriod   float64
}

// Optimizer carries one local-replication run.
type Optimizer struct {
	Netlist   *netlist.Netlist
	Placement *placement.Placement
	Delay     arch.DelayModel
	Opt       Options

	rng *rand.Rand
	leg *legal.Legalizer
}

// New returns an optimizer over the placed design.
func New(nl *netlist.Netlist, pl *placement.Placement, dm arch.DelayModel, opt Options) *Optimizer {
	return &Optimizer{
		Netlist:   nl,
		Placement: pl,
		Delay:     dm,
		Opt:       opt,
		rng:       rand.New(rand.NewSource(opt.Seed)),
		leg:       legal.New(),
	}
}

// Run optimizes in place and returns statistics.
func (o *Optimizer) Run() (*Stats, error) {
	st := &Stats{}
	a, err := timing.Analyze(o.Netlist, o.Placement, o.Delay)
	if err != nil {
		return nil, err
	}
	st.InitialPeriod = a.Period
	best := a.Period
	dry := 0
	for iter := 0; iter < o.Opt.MaxIters && dry < o.Opt.Patience; iter++ {
		st.Iterations++
		improved, action, err := o.step(a, best)
		if err != nil {
			return nil, err
		}
		if improved {
			dry = 0
			switch action {
			case actReplicate:
				st.Replicated++
			case actRelocate:
				st.Relocated++
			}
		} else {
			dry++
		}
		a, err = timing.Analyze(o.Netlist, o.Placement, o.Delay)
		if err != nil {
			return nil, err
		}
		if a.Period < best {
			best = a.Period
		}
	}
	st.FinalPeriod = best
	return st, nil
}

type action int

const (
	actNone action = iota
	actReplicate
	actRelocate
)

// step attempts one randomized local replication on the critical path.
func (o *Optimizer) step(a *timing.Analysis, best float64) (bool, action, error) {
	path := a.CriticalPath(o.Netlist, o.Placement, o.Delay)
	type candidate struct {
		v1, v2, v3 netlist.CellID
	}
	var cands []candidate
	for i := 2; i < len(path); i++ {
		v1, v2, v3 := path[i-2], path[i-1], path[i]
		l1, l2, l3 := o.Placement.Loc(v1), o.Placement.Loc(v2), o.Placement.Loc(v3)
		if arch.Dist(l1, l3) >= arch.Dist(l1, l2)+arch.Dist(l2, l3) {
			continue // locally monotone: invisible to this algorithm
		}
		c := o.Netlist.Cell(v2)
		if c.Kind != netlist.LUT || c.Registered {
			continue
		}
		cands = append(cands, candidate{v1, v2, v3})
	}
	if len(cands) == 0 {
		return false, actNone, nil
	}
	cd := cands[o.rng.Intn(len(cands))]

	// Snapshot for revert.
	nlSnap := o.Netlist.Clone()
	plSnap := o.Placement.Clone()

	// Ideal spot: v2 projected into the v1-v3 bounding box (any point
	// there lies on a monotone v1→v3 route).
	l1, l2, l3 := o.Placement.Loc(cd.v1), o.Placement.Loc(cd.v2), o.Placement.Loc(cd.v3)
	ideal := arch.Loc{
		X: clamp16(l2.X, min16(l1.X, l3.X), max16(l1.X, l3.X)),
		Y: clamp16(l2.Y, min16(l1.Y, l3.Y), max16(l1.Y, l3.Y)),
	}
	if !o.Placement.FPGA().IsLogic(ideal) {
		ideal = o.Placement.FPGA().LogicSlots()[0] // degenerate; nearest-free fixes it
	}
	target, ok := o.Placement.NearestFreeLogic(ideal)
	if !ok {
		return false, actNone, nil // device full
	}

	act := actReplicate
	fanout := len(o.Netlist.Net(o.Netlist.Cell(cd.v2).Out).Sinks)
	if fanout <= 1 {
		// Single path through v2: moving it is the whole optimization.
		o.Placement.Place(cd.v2, target)
		act = actRelocate
	} else {
		// Replicate and partition: the duplicate takes the critical
		// successor's pin(s); everything else stays on the original.
		rep := o.Netlist.Replicate(cd.v2)
		o.Placement.Place(rep.ID, target)
		out := o.Netlist.Cell(cd.v2).Out
		sinks := append([]netlist.Pin(nil), o.Netlist.Net(out).Sinks...)
		for _, p := range sinks {
			if p.Cell == cd.v3 {
				o.Netlist.MoveSink(p, rep.ID)
			}
		}
	}

	// Legalize (nearest-free placement keeps this a no-op in the
	// common case, but replication can still collide under races).
	a2, err := timing.Analyze(o.Netlist, o.Placement, o.Delay)
	if err != nil {
		return false, actNone, err
	}
	if _, err := o.leg.Run(o.Netlist, o.Placement, o.Delay, a2); err != nil {
		o.Netlist, o.Placement = nlSnap, plSnap
		return false, actNone, nil
	}
	a3, err := timing.Analyze(o.Netlist, o.Placement, o.Delay)
	if err != nil {
		return false, actNone, err
	}
	if a3.Period < best-1e-9 {
		return true, act, nil
	}
	// No improvement: revert.
	o.Netlist, o.Placement = nlSnap, plSnap
	return false, actNone, nil
}

// BestOf runs the optimizer `runs` times with distinct seeds on copies
// of the design and returns the best outcome — the paper's evaluation
// protocol ("since the local replication algorithm is randomized, we
// ran it three times and took the best result").
func BestOf(nl *netlist.Netlist, pl *placement.Placement, dm arch.DelayModel, opt Options, runs int) (*netlist.Netlist, *placement.Placement, *Stats, error) {
	var bestNL *netlist.Netlist
	var bestPL *placement.Placement
	var bestSt *Stats
	for r := 0; r < runs; r++ {
		o := New(nl.Clone(), pl.Clone(), dm, Options{
			Seed:     opt.Seed + int64(r)*7919,
			MaxIters: opt.MaxIters,
			Patience: opt.Patience,
		})
		st, err := o.Run()
		if err != nil {
			return nil, nil, nil, err
		}
		if bestSt == nil || st.FinalPeriod < bestSt.FinalPeriod {
			bestNL, bestPL, bestSt = o.Netlist, o.Placement, st
		}
	}
	return bestNL, bestPL, bestSt, nil
}

func clamp16(x, lo, hi int16) int16 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func min16(a, b int16) int16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b int16) int16 {
	if a > b {
		return a
	}
	return b
}
