package localrep

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/timing"
)

func dm() arch.DelayModel { return arch.DelayModel{SegDelay: 1, LUTDelay: 2, IODelay: 0.5} }

type design struct {
	nl *netlist.Netlist
	pl *placement.Placement
}

func newDesign(name string, gridN int) *design {
	d := &design{nl: netlist.New(name)}
	d.pl = placement.New(arch.New(gridN), d.nl)
	return d
}

func (d *design) input(name string, x, y int16) {
	c := d.nl.AddCell(name, netlist.IPad, 0)
	d.pl.Place(c.ID, arch.Loc{X: x, Y: y})
}

func (d *design) output(name, sig string, x, y int16) {
	c := d.nl.AddCell(name, netlist.OPad, 1)
	d.nl.ConnectByName(c.ID, 0, sig)
	d.pl.Place(c.ID, arch.Loc{X: x, Y: y})
}

func (d *design) lut(name string, x, y int16, ins ...string) {
	c := d.nl.AddCell(name, netlist.LUT, len(ins))
	for i, s := range ins {
		d.nl.ConnectByName(c.ID, i, s)
	}
	d.pl.Place(c.ID, arch.Loc{X: x, Y: y})
}

func (d *design) period(t *testing.T) float64 {
	t.Helper()
	a, err := timing.Analyze(d.nl, d.pl, dm())
	if err != nil {
		t.Fatal(err)
	}
	return a.Period
}

// locallyNonmonotone: v detours off the i→o line — the case this
// baseline fixes.
func locallyNonmonotone() *design {
	d := newDesign("bump", 8)
	d.input("i", 0, 4)
	d.lut("u", 2, 4, "i")
	d.lut("v", 4, 7, "u") // the detour
	d.lut("w", 6, 4, "v")
	d.output("o", "w", 9, 4)
	// A second fanout of v pins it: replication, not relocation.
	d.output("o2", "v", 4, 9)
	return d
}

func TestFixesLocalDetour(t *testing.T) {
	d := locallyNonmonotone()
	before := d.period(t)
	o := New(d.nl, d.pl, dm(), Defaults())
	st, err := o.Run()
	if err != nil {
		t.Fatal(err)
	}
	d.nl, d.pl = o.Netlist, o.Placement
	after := d.period(t)
	if after >= before {
		t.Errorf("local replication failed to improve: %v -> %v", before, after)
	}
	if st.Replicated == 0 {
		t.Error("expected a replication (v has fanout 2)")
	}
	if err := d.nl.Validate(); err != nil {
		t.Fatal(err)
	}
	if !d.pl.Legal() {
		t.Error("result must be legal")
	}
	if st.FinalPeriod != after {
		t.Errorf("FinalPeriod = %v, measured %v", st.FinalPeriod, after)
	}
}

func TestRelocatesFanoutOne(t *testing.T) {
	d := newDesign("mv", 8)
	d.input("i", 0, 4)
	d.lut("u", 2, 4, "i")
	d.lut("v", 4, 7, "u") // detour, fanout 1
	d.lut("w", 6, 4, "v")
	d.output("o", "w", 9, 4)
	before := d.period(t)
	o := New(d.nl, d.pl, dm(), Defaults())
	st, err := o.Run()
	if err != nil {
		t.Fatal(err)
	}
	d.nl, d.pl = o.Netlist, o.Placement
	if after := d.period(t); after >= before {
		t.Errorf("no improvement: %v -> %v", before, after)
	}
	if st.Relocated == 0 {
		t.Error("expected a relocation (fanout-1 cell)")
	}
	if st.Replicated != 0 {
		t.Error("fanout-1 detour should not replicate")
	}
	if d.nl.NumLUTs() != 3 {
		t.Errorf("LUT count changed to %d", d.nl.NumLUTs())
	}
}

// fig3 is the limitation case: a U-shaped path whose length-3 windows
// are all monotone. Local replication must find nothing to do.
func fig3() *design {
	d := newDesign("fig3", 8)
	d.input("s", 0, 2)
	d.lut("a", 4, 2, "s")
	d.lut("b", 4, 6, "a")
	d.output("t", "b", 0, 6)
	return d
}

func TestFig3LimitationOfLocalMonotonicity(t *testing.T) {
	d := fig3()
	before := d.period(t)
	// Confirm the setup: globally nonmonotone, locally monotone.
	a, _ := timing.Analyze(d.nl, d.pl, dm())
	path := a.CriticalPath(d.nl, d.pl, dm())
	if timing.PathMonotone(d.pl, path) {
		t.Fatal("setup: path should be globally nonmonotone")
	}
	if !timing.LocallyMonotone(d.pl, path) {
		t.Fatal("setup: path should be locally monotone (Fig. 3)")
	}
	o := New(d.nl, d.pl, dm(), Defaults())
	st, err := o.Run()
	if err != nil {
		t.Fatal(err)
	}
	d.nl, d.pl = o.Netlist, o.Placement
	after := d.period(t)
	if after != before {
		t.Errorf("local replication changed a locally monotone path: %v -> %v", before, after)
	}
	if st.Replicated != 0 || st.Relocated != 0 {
		t.Error("no candidate should exist on a locally monotone path")
	}
}

func TestNeverWorsens(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		d := locallyNonmonotone()
		before := d.period(t)
		opt := Defaults()
		opt.Seed = seed
		o := New(d.nl, d.pl, dm(), opt)
		st, err := o.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st.FinalPeriod > before {
			t.Errorf("seed %d worsened period %v -> %v", seed, before, st.FinalPeriod)
		}
	}
}

func TestBestOf(t *testing.T) {
	d := locallyNonmonotone()
	nl, pl, st, err := BestOf(d.nl, d.pl, dm(), Defaults(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	if !pl.Legal() {
		t.Error("best-of result must be legal")
	}
	// Original design untouched (BestOf works on clones).
	if d.nl.NumLUTs() != 3 {
		t.Error("BestOf mutated the input design")
	}
	a, err := timing.Analyze(nl, pl, dm())
	if err != nil {
		t.Fatal(err)
	}
	if a.Period != st.FinalPeriod {
		t.Errorf("reported best %v, measured %v", st.FinalPeriod, a.Period)
	}
}
