package arch

import (
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		a, b Loc
		want int
	}{
		{Loc{0, 0}, Loc{0, 0}, 0},
		{Loc{1, 1}, Loc{4, 5}, 7},
		{Loc{4, 5}, Loc{1, 1}, 7},
		{Loc{3, 3}, Loc{3, 9}, 6},
		{Loc{10, 2}, Loc{2, 10}, 16},
	}
	for _, c := range cases {
		if got := Dist(c.a, c.b); got != c.want {
			t.Errorf("Dist(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistProperties(t *testing.T) {
	symmetric := func(ax, ay, bx, by int16) bool {
		return Dist(Loc{ax, ay}, Loc{bx, by}) == Dist(Loc{bx, by}, Loc{ax, ay})
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	triangle := func(ax, ay, bx, by, cx, cy int8) bool {
		a, b, c := Loc{int16(ax), int16(ay)}, Loc{int16(bx), int16(by)}, Loc{int16(cx), int16(cy)}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error(err)
	}
	nonneg := func(ax, ay, bx, by int16) bool {
		return Dist(Loc{ax, ay}, Loc{bx, by}) >= 0
	}
	if err := quick.Check(nonneg, nil); err != nil {
		t.Error(err)
	}
}

func TestMinSquare(t *testing.T) {
	// Cross-check against FPGA sizes published in Table I.
	cases := []struct {
		luts, ios int
		wantN     int
	}{
		{1064, 71, 33},  // ex5p
		{1262, 28, 36},  // apex4
		{1522, 22, 40},  // alu4
		{1370, 426, 54}, // dsip: IO-limited
		{1591, 501, 63}, // des: IO-limited
		{8383, 144, 92}, // clma
		{4598, 20, 68},  // ex1010
		{6406, 135, 81}, // s38417
	}
	for _, c := range cases {
		f := MinSquare(c.luts, c.ios)
		if f.N != c.wantN {
			t.Errorf("MinSquare(%d, %d).N = %d, want %d", c.luts, c.ios, f.N, c.wantN)
		}
		if f.LogicCapacity() < c.luts {
			t.Errorf("N=%d cannot hold %d LUTs", f.N, c.luts)
		}
		if f.IOCapacity() < c.ios {
			t.Errorf("N=%d cannot hold %d IOs", f.N, c.ios)
		}
	}
}

func TestDensityMatchesTableI(t *testing.T) {
	// Spot-check published density values.
	cases := []struct {
		luts, ios int
		want      float64
	}{
		{1064, 71, 0.977},  // ex5p
		{1370, 426, 0.470}, // dsip
		{8383, 144, 0.990}, // clma
	}
	for _, c := range cases {
		f := MinSquare(c.luts, c.ios)
		got := f.Density(c.luts)
		if diff := got - c.want; diff > 0.001 || diff < -0.001 {
			t.Errorf("Density(%d LUTs on %v) = %.3f, want %.3f", c.luts, f, got, c.want)
		}
	}
}

func TestSlotClassification(t *testing.T) {
	f := New(4)
	if !f.IsLogic(Loc{1, 1}) || !f.IsLogic(Loc{4, 4}) {
		t.Error("grid interior should be logic")
	}
	if f.IsLogic(Loc{0, 1}) || f.IsLogic(Loc{5, 2}) {
		t.Error("perimeter should not be logic")
	}
	if !f.IsIO(Loc{0, 1}) || !f.IsIO(Loc{5, 4}) || !f.IsIO(Loc{2, 0}) || !f.IsIO(Loc{3, 5}) {
		t.Error("perimeter ring should be IO")
	}
	for _, corner := range []Loc{{0, 0}, {0, 5}, {5, 0}, {5, 5}} {
		if f.InBounds(corner) {
			t.Errorf("corner %v should be out of bounds", corner)
		}
		if f.Capacity(corner) != 0 {
			t.Errorf("corner %v should have zero capacity", corner)
		}
	}
	if f.Capacity(Loc{2, 2}) != 1 {
		t.Error("logic slot capacity should be CLBCapacity")
	}
	if f.Capacity(Loc{0, 3}) != 2 {
		t.Error("IO slot capacity should be IORat")
	}
}

func TestSlotEnumeration(t *testing.T) {
	f := New(5)
	logic := f.LogicSlots()
	if len(logic) != 25 {
		t.Fatalf("LogicSlots: got %d, want 25", len(logic))
	}
	for _, l := range logic {
		if !f.IsLogic(l) {
			t.Errorf("LogicSlots returned non-logic %v", l)
		}
	}
	ios := f.IOSlots()
	if len(ios) != 20 {
		t.Fatalf("IOSlots: got %d, want 20", len(ios))
	}
	seen := map[Loc]bool{}
	for _, l := range ios {
		if !f.IsIO(l) {
			t.Errorf("IOSlots returned non-IO %v", l)
		}
		if seen[l] {
			t.Errorf("IOSlots returned duplicate %v", l)
		}
		seen[l] = true
	}
}

func TestCapacities(t *testing.T) {
	f := New(10)
	if got := f.LogicCapacity(); got != 100 {
		t.Errorf("LogicCapacity = %d, want 100", got)
	}
	if got := f.IOCapacity(); got != 80 {
		t.Errorf("IOCapacity = %d, want 80", got)
	}
	f.CLBCapacity = 4
	if got := f.LogicCapacity(); got != 400 {
		t.Errorf("LogicCapacity with cap 4 = %d, want 400", got)
	}
}

func TestDelayModel(t *testing.T) {
	m := DefaultDelayModel()
	if m.WireDelay(0) != 0 {
		t.Error("zero distance should have zero wire delay")
	}
	if m.WireDelay(7) != 7*m.SegDelay {
		t.Error("wire delay should be linear in distance")
	}
	// Linearity property (Section II-B): delay(a+b) = delay(a)+delay(b).
	add := func(a, b uint8) bool {
		return m.WireDelay(int(a)+int(b)) == m.WireDelay(int(a))+m.WireDelay(int(b))
	}
	if err := quick.Check(add, nil); err != nil {
		t.Error(err)
	}
}

func TestFPGAString(t *testing.T) {
	if got := New(33).String(); got != "33 x 33" {
		t.Errorf("String = %q, want \"33 x 33\"", got)
	}
}
