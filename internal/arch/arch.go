// Package arch models the target FPGA architecture: a square grid of
// configurable logic blocks (CLBs) surrounded by a ring of I/O pads,
// together with the linear interconnect delay model of Section II-B of
// the paper ("An Approach to Placement-Coupled Logic Replication",
// Hrkić/Lillis/Beraudo).
//
// Coordinates: CLB slots occupy (x, y) with 1 <= x, y <= N. I/O pads sit
// on the perimeter ring where x == 0, x == N+1, y == 0 or y == N+1
// (corners are unusable, as in VPR). Each perimeter position holds up to
// IORat pads.
package arch

import "fmt"

// Loc is a slot coordinate on the FPGA grid.
type Loc struct {
	X, Y int16
}

// Dist returns the Manhattan (rectilinear) distance between two
// locations, the distance metric used throughout the paper.
func Dist(a, b Loc) int {
	dx := int(a.X) - int(b.X)
	if dx < 0 {
		dx = -dx
	}
	dy := int(a.Y) - int(b.Y)
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// DelayModel holds the parameters of the placement-level delay
// estimator. For the buffered-switch FPGA architectures considered in
// the paper, interconnect delay is approximated by a linear function of
// Manhattan wire length (Section II-B); each cell adds an intrinsic
// delay.
type DelayModel struct {
	// SegDelay is the interconnect delay per unit of Manhattan
	// distance.
	SegDelay float64
	// LUTDelay is the intrinsic delay of a logic cell (LUT).
	LUTDelay float64
	// IODelay is the intrinsic delay of an input or output pad.
	IODelay float64
}

// DefaultDelayModel mirrors the relative magnitudes of the VPR
// placement delay estimator: a LUT costs about as much as a couple of
// grid units of wire.
func DefaultDelayModel() DelayModel {
	return DelayModel{SegDelay: 1.0, LUTDelay: 2.0, IODelay: 0.5}
}

// WireDelay returns the estimated interconnect delay for a connection
// spanning the given Manhattan distance.
func (m DelayModel) WireDelay(dist int) float64 {
	return m.SegDelay * float64(dist)
}

// FPGA describes one instance of the target architecture.
type FPGA struct {
	// N is the side of the CLB grid (the FPGA is N x N logic slots).
	N int
	// CLBCapacity is the number of LUTs a single CLB slot can hold.
	CLBCapacity int
	// IORat is the number of I/O pads per perimeter position.
	IORat int
	// Delay is the placement-level delay model.
	Delay DelayModel
}

// New returns an FPGA with an N x N logic grid using default capacity
// (one LUT per slot), VPR's default I/O ratio of two pads per perimeter
// position, and the default delay model.
func New(n int) *FPGA {
	return &FPGA{N: n, CLBCapacity: 1, IORat: 2, Delay: DefaultDelayModel()}
}

// MinSquare returns the smallest FPGA whose logic and I/O capacity can
// accommodate the given cell counts, following the paper's "minimum
// square FPGA able to contain the circuit" rule.
func MinSquare(numLUTs, numIOs int) *FPGA {
	n := 1
	for {
		f := New(n)
		if f.LogicCapacity() >= numLUTs && f.IOCapacity() >= numIOs {
			return f
		}
		n++
	}
}

// LogicCapacity is the total number of LUTs the device can hold.
func (f *FPGA) LogicCapacity() int { return f.N * f.N * f.CLBCapacity }

// IOCapacity is the total number of I/O pads the device can hold.
func (f *FPGA) IOCapacity() int { return 4 * f.N * f.IORat }

// Density is the ratio of used LUTs to available logic capacity, the
// "design density" column of Table I.
func (f *FPGA) Density(numLUTs int) float64 {
	return float64(numLUTs) / float64(f.LogicCapacity())
}

// InBounds reports whether l is a valid slot (logic or I/O) on the
// device.
func (f *FPGA) InBounds(l Loc) bool {
	x, y := int(l.X), int(l.Y)
	if x < 0 || y < 0 || x > f.N+1 || y > f.N+1 {
		return false
	}
	if f.IsCorner(l) {
		return false
	}
	return true
}

// IsLogic reports whether l is a CLB slot.
func (f *FPGA) IsLogic(l Loc) bool {
	x, y := int(l.X), int(l.Y)
	return x >= 1 && x <= f.N && y >= 1 && y <= f.N
}

// IsIO reports whether l is a perimeter I/O position.
func (f *FPGA) IsIO(l Loc) bool {
	return f.InBounds(l) && !f.IsLogic(l)
}

// IsCorner reports whether l is one of the four unusable corner
// positions of the perimeter ring.
func (f *FPGA) IsCorner(l Loc) bool {
	x, y := int(l.X), int(l.Y)
	onX := x == 0 || x == f.N+1
	onY := y == 0 || y == f.N+1
	return onX && onY
}

// Capacity returns the number of cells the slot at l can hold.
func (f *FPGA) Capacity(l Loc) int {
	switch {
	case f.IsLogic(l):
		return f.CLBCapacity
	case f.IsIO(l):
		return f.IORat
	default:
		return 0
	}
}

// LogicSlots returns all CLB slot locations in row-major order.
func (f *FPGA) LogicSlots() []Loc {
	slots := make([]Loc, 0, f.N*f.N)
	for y := 1; y <= f.N; y++ {
		for x := 1; x <= f.N; x++ {
			slots = append(slots, Loc{int16(x), int16(y)})
		}
	}
	return slots
}

// IOSlots returns all perimeter I/O positions (excluding corners) in a
// deterministic clockwise order starting from (1, 0).
func (f *FPGA) IOSlots() []Loc {
	slots := make([]Loc, 0, 4*f.N)
	for x := 1; x <= f.N; x++ { // bottom
		slots = append(slots, Loc{int16(x), 0})
	}
	for y := 1; y <= f.N; y++ { // right
		slots = append(slots, Loc{int16(f.N + 1), int16(y)})
	}
	for x := f.N; x >= 1; x-- { // top
		slots = append(slots, Loc{int16(x), int16(f.N + 1)})
	}
	for y := f.N; y >= 1; y-- { // left
		slots = append(slots, Loc{0, int16(y)})
	}
	return slots
}

// String implements fmt.Stringer, printing the grid dimensions in the
// "N x N" form used by Table I of the paper.
func (f *FPGA) String() string { return fmt.Sprintf("%d x %d", f.N, f.N) }
