package netlist

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRandomEditSequence drives the netlist through long random
// sequences of the editing operations the replication engine uses —
// Replicate, MoveSink, Unify, DeleteIfRedundant — and checks that
// Validate holds after every step. This is the safety net for the
// engine's most intricate state.
func TestRandomEditSequence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := buildRandom(t, rng, 40)
		for step := 0; step < 300; step++ {
			switch rng.Intn(4) {
			case 0: // replicate a random multi-fanout LUT
				if v, ok := randomLUT(rng, n, 2); ok {
					rep := n.Replicate(v)
					// Move a random subset of sinks to the replica.
					sinks := append([]Pin(nil), n.Net(n.Cell(v).Out).Sinks...)
					for _, p := range sinks {
						if rng.Intn(2) == 0 {
							n.MoveSink(p, rep.ID)
						}
					}
					// A replica left driving nothing is redundant.
					n.DeleteIfRedundant(rep.ID)
				}
			case 1: // unify a random equivalence pair
				if v, ok := randomLUT(rng, n, 0); ok {
					class := n.EquivClass(v)
					if len(class) >= 2 {
						n.Unify(class[0], class[1])
					}
				}
			case 2: // rewire a random sink onto an equivalent driver
				if v, ok := randomLUT(rng, n, 1); ok {
					class := n.EquivClass(v)
					other := class[rng.Intn(len(class))]
					sinks := n.Net(n.Cell(v).Out).Sinks
					if len(sinks) > 0 && other != v {
						n.MoveSink(sinks[rng.Intn(len(sinks))], other)
						n.DeleteIfRedundant(v)
					}
				}
			case 3: // sweep any redundant cell
				if v, ok := randomLUT(rng, n, 0); ok {
					if len(n.Net(n.Cell(v).Out).Sinks) == 0 {
						n.DeleteIfRedundant(v)
					}
				}
			}
			if err := n.Validate(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
		// The circuit must still be acyclic and analyzable.
		if _, err := n.TopoOrder(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// buildRandom constructs a random layered netlist for property tests.
func buildRandom(t *testing.T, rng *rand.Rand, luts int) *Netlist {
	t.Helper()
	n := New("prop")
	var signals []CellID
	for i := 0; i < 6; i++ {
		c := n.AddCell(fmt.Sprintf("pi%d", i), IPad, 0)
		signals = append(signals, c.ID)
	}
	for i := 0; i < luts; i++ {
		k := 1 + rng.Intn(3)
		c := n.AddCell(fmt.Sprintf("n%d", i), LUT, k)
		for p := 0; p < k; p++ {
			src := signals[rng.Intn(len(signals))]
			n.Connect(c.ID, p, n.Cell(src).Out)
		}
		signals = append(signals, c.ID)
	}
	for i := 0; i < 6; i++ {
		c := n.AddCell(fmt.Sprintf("po%d", i), OPad, 1)
		src := signals[len(signals)-1-rng.Intn(luts)]
		n.Connect(c.ID, 0, n.Cell(src).Out)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

// randomLUT picks a live LUT with at least minFanout sinks.
func randomLUT(rng *rand.Rand, n *Netlist, minFanout int) (CellID, bool) {
	var cands []CellID
	n.Cells(func(c *Cell) {
		if c.Kind == LUT && len(n.Net(c.Out).Sinks) >= minFanout {
			cands = append(cands, c.ID)
		}
	})
	if len(cands) == 0 {
		return 0, false
	}
	return cands[rng.Intn(len(cands))], true
}

// TestCloneEqualsOriginal: a clone validates and has identical
// structural fingerprint.
func TestCloneEqualsOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := buildRandom(t, rng, 30)
	c := n.Clone()
	fp := func(n *Netlist) string {
		s := ""
		n.Cells(func(cell *Cell) {
			s += cell.Name + "("
			for _, net := range cell.Fanin {
				if net != None {
					s += n.Cell(n.Net(net).Driver).Name + ","
				}
			}
			s += ");"
		})
		return s
	}
	if fp(n) != fp(c) {
		t.Error("clone fingerprint differs")
	}
}

// TestReplicateUnifyRoundTrip: replicate + move all sinks + unify back
// restores the exact original fanout set.
func TestReplicateUnifyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := buildRandom(t, rng, 30)
	v, ok := randomLUT(rng, n, 2)
	if !ok {
		t.Skip("no multi-fanout LUT")
	}
	origSinks := map[Pin]bool{}
	for _, p := range n.Net(n.Cell(v).Out).Sinks {
		origSinks[p] = true
	}
	rep := n.Replicate(v)
	for _, p := range append([]Pin(nil), n.Net(n.Cell(v).Out).Sinks...) {
		n.MoveSink(p, rep.ID)
	}
	// v is now redundant; unify back onto v.
	n.Unify(v, rep.ID)
	if n.Alive(rep.ID) {
		t.Fatal("replica should be gone")
	}
	got := map[Pin]bool{}
	for _, p := range n.Net(n.Cell(v).Out).Sinks {
		got[p] = true
	}
	if len(got) != len(origSinks) {
		t.Fatalf("fanout set changed: %d vs %d", len(got), len(origSinks))
	}
	for p := range origSinks {
		if !got[p] {
			t.Fatalf("sink %v lost in round trip", p)
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}
