// Package netlist represents LUT-level FPGA netlists and the editing
// operations needed by placement-coupled logic replication: cell
// replication, fanout re-assignment, unification of logically
// equivalent cells, and redundancy removal (Sections III and V of the
// paper).
//
// A netlist is a set of cells connected by nets. Each net has exactly
// one driver and any number of sinks; a sink is a (cell, input pin)
// pair. Cells are LUTs (optionally registered, i.e. followed by a
// flip-flop packed into the same slot, VPR BLE style), input pads, or
// output pads.
//
// Logical equivalence is tracked by equivalence-class IDs: replicating
// a cell copies its class, so "is placed on top of a logically
// equivalent cell" (the paper's unification test) is a cheap ID
// comparison. The construction rules of the replication tree guarantee
// that cells sharing a class compute the same function.
package netlist

import (
	"fmt"
	"sort"
)

// CellID identifies a cell within a netlist. IDs are stable across
// edits; deleted cells leave tombstones.
type CellID int32

// NetID identifies a net within a netlist.
type NetID int32

// EquivID identifies a logical-equivalence class of cells.
type EquivID int32

// None marks an unconnected reference.
const None = -1

// Kind enumerates cell types.
type Kind uint8

const (
	// LUT is a lookup-table logic cell (optionally registered).
	LUT Kind = iota
	// IPad is a primary-input pad.
	IPad
	// OPad is a primary-output pad.
	OPad
)

func (k Kind) String() string {
	switch k {
	case LUT:
		return "lut"
	case IPad:
		return "ipad"
	case OPad:
		return "opad"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Pin identifies one input pin of one cell — the unit of connectivity
// re-assignment during fanout partitioning and unification.
type Pin struct {
	Cell CellID
	// Input is the index into the cell's fanin list.
	Input int32
}

// Cell is one netlist cell.
type Cell struct {
	ID   CellID
	Name string
	Kind Kind
	// Registered marks a LUT whose output is latched by a flip-flop in
	// the same slot (a BLE). A registered LUT's output starts a new
	// timing path and its inputs terminate one.
	Registered bool
	// Fanin lists the nets feeding each input pin, in pin order.
	// Entries may be None while a netlist is under construction.
	Fanin []NetID
	// Out is the net driven by this cell (None for output pads).
	Out NetID
	// Equiv is the cell's logical-equivalence class.
	Equiv EquivID
	// Dead marks a deleted cell (tombstone).
	Dead bool
}

// IsSource reports whether the cell's output begins a timing path
// (primary input or registered LUT).
func (c *Cell) IsSource() bool { return c.Kind == IPad || (c.Kind == LUT && c.Registered) }

// IsSink reports whether the cell's inputs end a timing path (primary
// output or registered LUT).
func (c *Cell) IsSink() bool { return c.Kind == OPad || (c.Kind == LUT && c.Registered) }

// Net is a single-driver, multi-sink connection.
type Net struct {
	ID     NetID
	Name   string
	Driver CellID
	Sinks  []Pin
	Dead   bool
}

// Netlist is a mutable LUT-level circuit.
type Netlist struct {
	Name  string
	cells []Cell
	nets  []Net

	nextEquiv EquivID
	byName    map[string]CellID

	numLive     int
	numLiveNets int
}

// New returns an empty netlist with the given name.
func New(name string) *Netlist {
	return &Netlist{Name: name, byName: make(map[string]CellID)}
}

// NumCells returns the number of live cells.
func (n *Netlist) NumCells() int { return n.numLive }

// NumNets returns the number of live nets.
func (n *Netlist) NumNets() int { return n.numLiveNets }

// Cap returns the upper bound on cell IDs (including tombstones); use
// it to size per-cell arrays.
func (n *Netlist) Cap() int { return len(n.cells) }

// NetCap returns the upper bound on net IDs (including tombstones).
func (n *Netlist) NetCap() int { return len(n.nets) }

// Cell returns the cell with the given ID. It panics on a dead or
// invalid ID: holding a reference to a deleted cell is a logic error in
// the optimization flow.
func (n *Netlist) Cell(id CellID) *Cell {
	c := &n.cells[id]
	if c.Dead {
		panic(fmt.Sprintf("netlist: access to dead cell %d (%s)", id, c.Name))
	}
	return c
}

// Net returns the net with the given ID, panicking on dead or invalid
// IDs.
func (n *Netlist) Net(id NetID) *Net {
	t := &n.nets[id]
	if t.Dead {
		panic(fmt.Sprintf("netlist: access to dead net %d (%s)", id, t.Name))
	}
	return t
}

// Alive reports whether the cell ID refers to a live cell.
func (n *Netlist) Alive(id CellID) bool {
	return id >= 0 && int(id) < len(n.cells) && !n.cells[id].Dead
}

// NetAlive reports whether the net ID refers to a live net.
func (n *Netlist) NetAlive(id NetID) bool {
	return id >= 0 && int(id) < len(n.nets) && !n.nets[id].Dead
}

// CellByName looks a cell up by name.
func (n *Netlist) CellByName(name string) (CellID, bool) {
	id, ok := n.byName[name]
	if ok && n.cells[id].Dead {
		return None, false
	}
	return id, ok
}

// Cells iterates over all live cells in ID order.
func (n *Netlist) Cells(f func(*Cell)) {
	for i := range n.cells {
		if !n.cells[i].Dead {
			f(&n.cells[i])
		}
	}
}

// Nets iterates over all live nets in ID order.
func (n *Netlist) Nets(f func(*Net)) {
	for i := range n.nets {
		if !n.nets[i].Dead {
			f(&n.nets[i])
		}
	}
}

// AddCell creates a cell of the given kind with numInputs unconnected
// input pins and (except for output pads) a freshly created output net
// named after the cell. It assigns a new equivalence class.
func (n *Netlist) AddCell(name string, kind Kind, numInputs int) *Cell {
	if _, dup := n.byName[name]; dup {
		panic(fmt.Sprintf("netlist: duplicate cell name %q", name))
	}
	id := CellID(len(n.cells))
	fanin := make([]NetID, numInputs)
	for i := range fanin {
		fanin[i] = None
	}
	n.cells = append(n.cells, Cell{
		ID:    id,
		Name:  name,
		Kind:  kind,
		Fanin: fanin,
		Out:   None,
		Equiv: n.nextEquiv,
	})
	n.nextEquiv++
	n.byName[name] = id
	n.numLive++
	c := &n.cells[id]
	if kind != OPad {
		c.Out = n.addNet(name, id)
	}
	return c
}

func (n *Netlist) addNet(name string, driver CellID) NetID {
	id := NetID(len(n.nets))
	n.nets = append(n.nets, Net{ID: id, Name: name, Driver: driver})
	n.numLiveNets++
	return id
}

// Connect wires input pin `pin` of cell `sink` to net `net`,
// disconnecting any previous source of that pin.
func (n *Netlist) Connect(sink CellID, pin int, net NetID) {
	c := n.Cell(sink)
	if pin < 0 || pin >= len(c.Fanin) {
		panic(fmt.Sprintf("netlist: cell %s has no input pin %d", c.Name, pin))
	}
	if old := c.Fanin[pin]; old != None {
		n.removeSink(old, Pin{sink, int32(pin)})
	}
	c.Fanin[pin] = net
	t := n.Net(net)
	t.Sinks = append(t.Sinks, Pin{sink, int32(pin)})
}

// ConnectByName is a convenience wrapper connecting sink's pin to the
// output net of the cell named driver.
func (n *Netlist) ConnectByName(sink CellID, pin int, driver string) {
	id, ok := n.CellByName(driver)
	if !ok {
		panic(fmt.Sprintf("netlist: no cell named %q", driver))
	}
	n.Connect(sink, pin, n.Cell(id).Out)
}

func (n *Netlist) removeSink(net NetID, p Pin) {
	t := n.Net(net)
	for i, s := range t.Sinks {
		if s == p {
			t.Sinks[i] = t.Sinks[len(t.Sinks)-1]
			t.Sinks = t.Sinks[:len(t.Sinks)-1]
			return
		}
	}
	panic(fmt.Sprintf("netlist: sink %v not on net %s", p, t.Name))
}

// MoveSink re-assigns one sink pin from its current net to the output
// of cell newDriver. This is the primitive behind both fanout
// partitioning after replication and post-process unification
// (Section V-C).
func (n *Netlist) MoveSink(p Pin, newDriver CellID) {
	out := n.Cell(newDriver).Out
	if out == None {
		panic("netlist: MoveSink target drives no net")
	}
	n.Connect(p.Cell, int(p.Input), out)
}

// Replicate creates a copy of LUT cell v computing the same function:
// same kind, registered flag, equivalence class, and fanin nets. The
// replica drives a fresh net with no sinks; the caller re-assigns the
// sinks that should move to the replica. This is the cell-duplication
// primitive of the replication tree (Section III).
func (n *Netlist) Replicate(v CellID) *Cell {
	orig := n.Cell(v)
	if orig.Kind != LUT {
		panic(fmt.Sprintf("netlist: cannot replicate %s cell %s", orig.Kind, orig.Name))
	}
	name := n.freshName(orig.Name + "_r")
	id := CellID(len(n.cells))
	fanin := make([]NetID, len(orig.Fanin))
	for i := range fanin {
		fanin[i] = None
	}
	n.cells = append(n.cells, Cell{
		ID:         id,
		Name:       name,
		Kind:       LUT,
		Registered: orig.Registered,
		Fanin:      fanin,
		Out:        None,
		Equiv:      orig.Equiv,
	})
	n.byName[name] = id
	n.numLive++
	rep := &n.cells[id]
	rep.Out = n.addNet(name, id)
	for i, net := range n.cells[v].Fanin {
		if net != None {
			n.Connect(id, i, net)
		}
	}
	return rep
}

func (n *Netlist) freshName(base string) string {
	name := base
	for i := 1; ; i++ {
		if _, dup := n.byName[name]; !dup {
			return name
		}
		name = fmt.Sprintf("%s%d", base, i)
	}
}

// Equivalent reports whether two cells are logically equivalent (same
// equivalence class). Two equivalent cells can be unified: all fanouts
// of one can take their signal from the other.
func (n *Netlist) Equivalent(a, b CellID) bool {
	return n.Cell(a).Equiv == n.Cell(b).Equiv
}

// EquivClass returns the IDs of all live cells in the same equivalence
// class as v, including v itself, in ID order.
func (n *Netlist) EquivClass(v CellID) []CellID {
	eq := n.Cell(v).Equiv
	var out []CellID
	for i := range n.cells {
		if !n.cells[i].Dead && n.cells[i].Equiv == eq {
			out = append(out, n.cells[i].ID)
		}
	}
	return out
}

// Unify redirects every sink of cell dup's output to cell keep's
// output and deletes dup (and, recursively, any fanin cells made
// redundant). The caller must ensure keep and dup are logically
// equivalent.
func (n *Netlist) Unify(keep, dup CellID) {
	if keep == dup {
		return
	}
	if !n.Equivalent(keep, dup) {
		panic(fmt.Sprintf("netlist: Unify of inequivalent cells %s and %s",
			n.Cell(keep).Name, n.Cell(dup).Name))
	}
	dupOut := n.Cell(dup).Out
	sinks := append([]Pin(nil), n.Net(dupOut).Sinks...)
	for _, p := range sinks {
		n.MoveSink(p, keep)
	}
	n.DeleteIfRedundant(dup)
}

// DeleteIfRedundant removes LUT cell v if its output drives no sinks,
// then recursively re-tests the drivers of its fanin nets, exactly as
// Section V-C prescribes ("after deletion, we may have induced the same
// condition on its parent... the test is applied recursively"). It
// reports the number of cells deleted.
func (n *Netlist) DeleteIfRedundant(v CellID) int {
	c := n.Cell(v)
	if c.Kind != LUT {
		return 0 // never delete pads
	}
	if len(n.Net(c.Out).Sinks) > 0 {
		return 0
	}
	deleted := 1
	parents := make([]CellID, 0, len(c.Fanin))
	for i, net := range c.Fanin {
		if net == None {
			continue
		}
		n.removeSink(net, Pin{v, int32(i)})
		c.Fanin[i] = None
		parents = append(parents, n.Net(net).Driver)
	}
	n.nets[c.Out].Dead = true
	n.numLiveNets--
	c.Dead = true
	n.numLive--
	for _, p := range parents {
		if n.Alive(p) {
			deleted += n.DeleteIfRedundant(p)
		}
	}
	return deleted
}

// CountKind returns the number of live cells of the given kind.
func (n *Netlist) CountKind(k Kind) int {
	count := 0
	n.Cells(func(c *Cell) {
		if c.Kind == k {
			count++
		}
	})
	return count
}

// NumLUTs returns the number of live LUT cells (the "LUTs" column of
// Table I).
func (n *Netlist) NumLUTs() int { return n.CountKind(LUT) }

// NumIOs returns the number of live pad cells (the "I/Os" column of
// Table I).
func (n *Netlist) NumIOs() int { return n.CountKind(IPad) + n.CountKind(OPad) }

// Validate checks structural invariants and returns the first violation
// found, or nil. It verifies driver/sink symmetry, absence of dangling
// references, name-index consistency, and that equivalence classes are
// structurally consistent (cells in one class have fanins drawn from
// pairwise-identical equivalence classes).
func (n *Netlist) Validate() error {
	for i := range n.cells {
		c := &n.cells[i]
		if c.Dead {
			continue
		}
		if got, ok := n.byName[c.Name]; !ok || got != c.ID {
			return fmt.Errorf("cell %s: name index mismatch", c.Name)
		}
		if c.Kind == OPad && c.Out != None {
			return fmt.Errorf("opad %s drives a net", c.Name)
		}
		if c.Kind != OPad {
			if c.Out == None {
				return fmt.Errorf("cell %s drives no net", c.Name)
			}
			if !n.NetAlive(c.Out) {
				return fmt.Errorf("cell %s drives dead net %d", c.Name, c.Out)
			}
			if n.nets[c.Out].Driver != c.ID {
				return fmt.Errorf("cell %s out net has wrong driver", c.Name)
			}
		}
		if c.Kind == IPad && len(c.Fanin) != 0 {
			return fmt.Errorf("ipad %s has inputs", c.Name)
		}
		for pin, net := range c.Fanin {
			if net == None {
				continue
			}
			if !n.NetAlive(net) {
				return fmt.Errorf("cell %s pin %d reads dead net %d", c.Name, pin, net)
			}
			if !hasSink(&n.nets[net], Pin{c.ID, int32(pin)}) {
				return fmt.Errorf("cell %s pin %d missing from net %s sink list", c.Name, pin, n.nets[net].Name)
			}
		}
	}
	for i := range n.nets {
		t := &n.nets[i]
		if t.Dead {
			continue
		}
		if !n.Alive(t.Driver) {
			return fmt.Errorf("net %s has dead driver", t.Name)
		}
		if n.cells[t.Driver].Out != t.ID {
			return fmt.Errorf("net %s driver does not drive it", t.Name)
		}
		seen := map[Pin]bool{}
		for _, p := range t.Sinks {
			if seen[p] {
				return fmt.Errorf("net %s has duplicate sink %v", t.Name, p)
			}
			seen[p] = true
			if !n.Alive(p.Cell) {
				return fmt.Errorf("net %s has dead sink cell %d", t.Name, p.Cell)
			}
			sc := &n.cells[p.Cell]
			if int(p.Input) >= len(sc.Fanin) || sc.Fanin[p.Input] != t.ID {
				return fmt.Errorf("net %s sink %s pin %d not wired back", t.Name, sc.Name, p.Input)
			}
		}
	}
	return n.validateEquiv()
}

// validateEquiv checks that every equivalence class is structurally
// consistent: members share kind, registered flag, pin count, and the
// equivalence classes of their fanin drivers.
func (n *Netlist) validateEquiv() error {
	classes := map[EquivID][]*Cell{}
	for i := range n.cells {
		if !n.cells[i].Dead {
			classes[n.cells[i].Equiv] = append(classes[n.cells[i].Equiv], &n.cells[i])
		}
	}
	for eq, members := range classes {
		if len(members) < 2 {
			continue
		}
		ref := members[0]
		for _, m := range members[1:] {
			if m.Kind != ref.Kind || m.Registered != ref.Registered || len(m.Fanin) != len(ref.Fanin) {
				return fmt.Errorf("equiv class %d: %s and %s differ structurally", eq, ref.Name, m.Name)
			}
			for pin := range ref.Fanin {
				a, b := ref.Fanin[pin], m.Fanin[pin]
				if (a == None) != (b == None) {
					return fmt.Errorf("equiv class %d: %s and %s pin %d connectivity differs", eq, ref.Name, m.Name, pin)
				}
				if a == None {
					continue
				}
				da, db := n.Net(a).Driver, n.Net(b).Driver
				if n.Cell(da).Equiv != n.Cell(db).Equiv {
					return fmt.Errorf("equiv class %d: %s and %s pin %d fed by inequivalent signals", eq, ref.Name, m.Name, pin)
				}
			}
		}
	}
	return nil
}

func hasSink(t *Net, p Pin) bool {
	for _, s := range t.Sinks {
		if s == p {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the netlist.
func (n *Netlist) Clone() *Netlist {
	c := &Netlist{
		Name:        n.Name,
		cells:       make([]Cell, len(n.cells)),
		nets:        make([]Net, len(n.nets)),
		nextEquiv:   n.nextEquiv,
		byName:      make(map[string]CellID, len(n.byName)),
		numLive:     n.numLive,
		numLiveNets: n.numLiveNets,
	}
	copy(c.cells, n.cells)
	for i := range c.cells {
		c.cells[i].Fanin = append([]NetID(nil), n.cells[i].Fanin...)
	}
	copy(c.nets, n.nets)
	for i := range c.nets {
		c.nets[i].Sinks = append([]Pin(nil), n.nets[i].Sinks...)
	}
	for k, v := range n.byName {
		c.byName[k] = v
	}
	return c
}

// SortedCellNames returns the names of all live cells, sorted; useful
// for deterministic iteration in tests and reports.
func (n *Netlist) SortedCellNames() []string {
	names := make([]string, 0, n.numLive)
	n.Cells(func(c *Cell) { names = append(names, c.Name) })
	sort.Strings(names)
	return names
}
