package netlist

import (
	"strings"
	"testing"
)

// buildFig8 constructs the circuit of Fig. 8 of the paper: cells
// a, b, c, d, f with reconvergence through c, rooted at output f.
//
//	a <- (x, y);  b <- (y, z);  c <- (z, w)
//	d <- (a, c);  f <- (b, c, d)... simplified to match the figure's
//
// tree {f, d, a, b, c} with c reconverging into both d and f.
func buildFig8(t *testing.T) *Netlist {
	t.Helper()
	n := New("fig8")
	for _, in := range []string{"x", "y", "z", "w"} {
		n.AddCell(in, IPad, 0)
	}
	a := n.AddCell("a", LUT, 2)
	n.ConnectByName(a.ID, 0, "x")
	n.ConnectByName(a.ID, 1, "y")
	b := n.AddCell("b", LUT, 2)
	n.ConnectByName(b.ID, 0, "y")
	n.ConnectByName(b.ID, 1, "z")
	c := n.AddCell("c", LUT, 2)
	n.ConnectByName(c.ID, 0, "z")
	n.ConnectByName(c.ID, 1, "w")
	d := n.AddCell("d", LUT, 2)
	n.ConnectByName(d.ID, 0, "a")
	n.ConnectByName(d.ID, 1, "c")
	f := n.AddCell("f", LUT, 3)
	n.ConnectByName(f.ID, 0, "b")
	n.ConnectByName(f.ID, 1, "c")
	n.ConnectByName(f.ID, 2, "d")
	o := n.AddCell("out", OPad, 1)
	n.ConnectByName(o.ID, 0, "f")
	if err := n.Validate(); err != nil {
		t.Fatalf("fig8 netlist invalid: %v", err)
	}
	return n
}

func TestAddAndConnect(t *testing.T) {
	n := buildFig8(t)
	if n.NumCells() != 10 {
		t.Errorf("NumCells = %d, want 10", n.NumCells())
	}
	if n.NumLUTs() != 5 {
		t.Errorf("NumLUTs = %d, want 5", n.NumLUTs())
	}
	if n.NumIOs() != 5 {
		t.Errorf("NumIOs = %d, want 5", n.NumIOs())
	}
	cID, _ := n.CellByName("c")
	out := n.Cell(cID).Out
	if got := len(n.Net(out).Sinks); got != 2 {
		t.Errorf("net c fanout = %d, want 2 (reconvergence into d and f)", got)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	n := New("dup")
	n.AddCell("a", IPad, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate cell name")
		}
	}()
	n.AddCell("a", LUT, 2)
}

func TestReplicate(t *testing.T) {
	n := buildFig8(t)
	cID, _ := n.CellByName("c")
	rep := n.Replicate(cID)
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid after Replicate: %v", err)
	}
	if !n.Equivalent(cID, rep.ID) {
		t.Error("replica should be logically equivalent to original")
	}
	if rep.Name != "c_r" {
		t.Errorf("replica name = %q, want c_r", rep.Name)
	}
	// Replica shares fanin nets with the original.
	orig := n.Cell(cID)
	for pin := range orig.Fanin {
		if rep.Fanin[pin] != orig.Fanin[pin] {
			t.Errorf("pin %d: replica fanin differs from original", pin)
		}
	}
	// Replica drives an empty net until sinks are moved.
	if got := len(n.Net(rep.Out).Sinks); got != 0 {
		t.Errorf("fresh replica fanout = %d, want 0", got)
	}
	// A second replica gets a distinct name and same class.
	rep2 := n.Replicate(cID)
	if rep2.Name == rep.Name {
		t.Error("second replica must get a fresh name")
	}
	if got := len(n.EquivClass(cID)); got != 3 {
		t.Errorf("equivalence class size = %d, want 3", got)
	}
}

func TestFanoutPartitioning(t *testing.T) {
	// Replicate c and move the d-sink to the replica, as the paper's
	// Fig. 2 does: c' feeds only b-side, c feeds only d-side.
	n := buildFig8(t)
	cID, _ := n.CellByName("c")
	dID, _ := n.CellByName("d")
	rep := n.Replicate(cID)
	n.MoveSink(Pin{dID, 1}, rep.ID)
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid after MoveSink: %v", err)
	}
	if got := len(n.Net(n.Cell(cID).Out).Sinks); got != 1 {
		t.Errorf("c fanout after partition = %d, want 1", got)
	}
	if got := len(n.Net(rep.Out).Sinks); got != 1 {
		t.Errorf("c_r fanout after partition = %d, want 1", got)
	}
	if n.Cell(dID).Fanin[1] != rep.Out {
		t.Error("d pin 1 should now read the replica's net")
	}
}

func TestUnify(t *testing.T) {
	n := buildFig8(t)
	cID, _ := n.CellByName("c")
	dID, _ := n.CellByName("d")
	rep := n.Replicate(cID)
	repID := rep.ID
	n.MoveSink(Pin{dID, 1}, repID)
	before := n.NumCells()
	n.Unify(cID, repID)
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid after Unify: %v", err)
	}
	if n.Alive(repID) {
		t.Error("unified replica should be deleted")
	}
	if n.NumCells() != before-1 {
		t.Errorf("NumCells = %d, want %d", n.NumCells(), before-1)
	}
	if n.Cell(dID).Fanin[1] != n.Cell(cID).Out {
		t.Error("d pin 1 should read c again after unification")
	}
}

func TestDeleteIfRedundantRecursive(t *testing.T) {
	// Build a chain i -> l1 -> l2 -> o, then cut o's input: deleting
	// recursively should remove l2 then l1 but never the pad i.
	n := New("chain")
	n.AddCell("i", IPad, 0)
	l1 := n.AddCell("l1", LUT, 1)
	n.ConnectByName(l1.ID, 0, "i")
	l2 := n.AddCell("l2", LUT, 1)
	n.ConnectByName(l2.ID, 0, "l1")
	o := n.AddCell("o", OPad, 1)
	n.ConnectByName(o.ID, 0, "l2")
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}

	// Detach the output pad (simulate its sink moving elsewhere).
	iID, _ := n.CellByName("i")
	n.Connect(o.ID, 0, n.Cell(iID).Out) // o now reads i directly
	deleted := n.DeleteIfRedundant(l2.ID)
	if deleted != 2 {
		t.Errorf("deleted = %d, want 2 (l2 and l1)", deleted)
	}
	if n.Alive(l2.ID) || n.Alive(l1.ID) {
		t.Error("l1 and l2 should be deleted")
	}
	if !n.Alive(iID) {
		t.Error("input pad must survive")
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid after recursive delete: %v", err)
	}
}

func TestDeleteIfRedundantKeepsDrivenCells(t *testing.T) {
	n := buildFig8(t)
	cID, _ := n.CellByName("c")
	if n.DeleteIfRedundant(cID) != 0 {
		t.Error("cell with fanout must not be deleted")
	}
	if !n.Alive(cID) {
		t.Error("c should still be alive")
	}
}

func TestUnifyInequivalentPanics(t *testing.T) {
	n := buildFig8(t)
	aID, _ := n.CellByName("a")
	bID, _ := n.CellByName("b")
	defer func() {
		if recover() == nil {
			t.Error("expected panic unifying inequivalent cells")
		}
	}()
	n.Unify(aID, bID)
}

func TestTopoOrder(t *testing.T) {
	n := buildFig8(t)
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != n.NumCells() {
		t.Fatalf("order has %d cells, want %d", len(order), n.NumCells())
	}
	pos := map[CellID]int{}
	for i, id := range order {
		pos[id] = i
	}
	n.Cells(func(c *Cell) {
		if c.IsSource() {
			return
		}
		for _, net := range c.Fanin {
			if net == None {
				continue
			}
			d := n.Net(net).Driver
			if pos[d] >= pos[c.ID] {
				t.Errorf("cell %s ordered before its driver %s", c.Name, n.Cell(d).Name)
			}
		}
	})
}

func TestTopoOrderRegisteredCutsCycles(t *testing.T) {
	// r (registered) feeds l, l feeds r: legal sequential loop.
	n := New("loop")
	r := n.AddCell("r", LUT, 1)
	r.Registered = true
	l := n.AddCell("l", LUT, 1)
	n.ConnectByName(l.ID, 0, "r")
	n.ConnectByName(r.ID, 0, "l")
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatalf("registered loop should be orderable: %v", err)
	}
	if len(order) != 2 {
		t.Errorf("order length = %d, want 2", len(order))
	}
}

func TestTopoOrderDetectsCombinationalCycle(t *testing.T) {
	n := New("badloop")
	a := n.AddCell("a", LUT, 1)
	b := n.AddCell("b", LUT, 1)
	n.ConnectByName(a.ID, 0, "b")
	n.ConnectByName(b.ID, 0, "a")
	if _, err := n.TopoOrder(); err == nil {
		t.Error("combinational cycle should be an error")
	}
	_ = a
	_ = b
}

func TestFaninCone(t *testing.T) {
	n := buildFig8(t)
	fID, _ := n.CellByName("f")
	cone := n.FaninCone(fID)
	for _, name := range []string{"f", "d", "a", "b", "c", "x", "y", "z", "w"} {
		id, _ := n.CellByName(name)
		if !cone[id] {
			t.Errorf("%s should be in fanin cone of f", name)
		}
	}
	oID, _ := n.CellByName("out")
	if cone[oID] {
		t.Error("out pad should not be in fanin cone of f")
	}
}

func TestFaninConeStopsAtRegisters(t *testing.T) {
	n := New("seq")
	n.AddCell("i", IPad, 0)
	r := n.AddCell("r", LUT, 1)
	r.Registered = true
	n.ConnectByName(r.ID, 0, "i")
	l := n.AddCell("l", LUT, 1)
	n.ConnectByName(l.ID, 0, "r")
	o := n.AddCell("o", OPad, 1)
	n.ConnectByName(o.ID, 0, "l")
	cone := n.FaninCone(o.ID)
	iID, _ := n.CellByName("i")
	if cone[iID] {
		t.Error("cone must stop at the registered LUT r, not include i")
	}
	if !cone[r.ID] || !cone[l.ID] {
		t.Error("cone should include r and l")
	}
}

func TestCloneIndependence(t *testing.T) {
	n := buildFig8(t)
	c := n.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	cID, _ := c.CellByName("c")
	c.Replicate(cID)
	if n.NumCells() == c.NumCells() {
		t.Error("editing clone must not affect original count")
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("original corrupted by clone edit: %v", err)
	}
}

func TestRoundTripIO(t *testing.T) {
	n := buildFig8(t)
	// Mark one LUT registered to exercise the reg keyword.
	aID, _ := n.CellByName("a")
	n.Cell(aID).Registered = true

	var sb strings.Builder
	if err := n.Write(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Read: %v\ninput:\n%s", err, sb.String())
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped netlist invalid: %v", err)
	}
	if back.Name != "fig8" {
		t.Errorf("name = %q, want fig8", back.Name)
	}
	if back.NumCells() != n.NumCells() || back.NumNets() != n.NumNets() {
		t.Errorf("cells/nets = %d/%d, want %d/%d",
			back.NumCells(), back.NumNets(), n.NumCells(), n.NumNets())
	}
	a2, _ := back.CellByName("a")
	if !back.Cell(a2).Registered {
		t.Error("registered flag lost in round trip")
	}
	// Connectivity: d reads a and c.
	d2, _ := back.CellByName("d")
	want := []string{"a", "c"}
	for pin, sig := range want {
		driver := back.Net(back.Cell(d2).Fanin[pin]).Driver
		if got := back.Cell(driver).Name; got != sig {
			t.Errorf("d pin %d driven by %q, want %q", pin, got, sig)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"bogus x",
		"input",
		"output o",
		"lut",
		"output o missing_signal",
		"input i\noutput o i\nlut l o", // reading from an output pad
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q) should fail", src)
		}
	}
}

func TestReadForwardReference(t *testing.T) {
	src := `circuit fwd
output o l2
lut l2 l1
lut l1 i
input i
`
	n, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	n := buildFig8(t)
	cID, _ := n.CellByName("c")
	// Corrupt: make c's equiv class collide with a's (structurally
	// different fanins).
	aID, _ := n.CellByName("a")
	n.Cell(cID).Equiv = n.Cell(aID).Equiv
	if err := n.Validate(); err == nil {
		t.Error("Validate should reject structurally inconsistent equivalence class")
	}
}

func TestSortedCellNames(t *testing.T) {
	n := buildFig8(t)
	names := n.SortedCellNames()
	if len(names) != n.NumCells() {
		t.Fatalf("len = %d, want %d", len(names), n.NumCells())
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}
