package netlist

import (
	"strings"
	"testing"
)

// seedCorpus returns netlist texts for the fuzzer's seed corpus: the
// quickstart/reconvergence example circuits in text form plus malformed
// variants of the shapes the parser must reject (duplicate names,
// unknown signals, output-pad signals, truncated directives).
func seedCorpus() []string {
	return []string{
		// examples/quickstart: the Fig. 1-2 diverging-paths circuit.
		`circuit quickstart
input a
input e
lut c a e
lut u c
lut v c
output b u
output d v
`,
		// examples/reconvergence: forward references and a registered
		// boundary, the shapes that exercise deferred resolution.
		`circuit reconv
# comment line
input x
reg r x
lut m1 x r
lut m2 m1 joinv
lut joinv m1 x
output o m2
`,
		// examples/fanintree-like: multi-input LUTs and dashes for
		// unconnected pins.
		`circuit fanin
input i0
input i1
input i2
lut l0 i0 i1 - i2
lut l1 l0 -
output z l1
`,
		"circuit dup\ninput a\ninput a\n",
		"lut a b\n",
		"output o o\n",
		"input\n",
		"reg\n",
		"bogus directive\n",
		"circuit x y z\n",
		"lut self self\n",
	}
}

// FuzzParseNetlist asserts the parser's hard contract: on arbitrary
// input, Read returns an error or a netlist that passes Validate — it
// never panics. Netlists reach Read straight off HTTP request bodies
// in repld, where a parser panic would take down the whole daemon.
func FuzzParseNetlist(f *testing.F) {
	for _, seed := range seedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		nl, err := Read(strings.NewReader(text))
		if err != nil {
			return
		}
		if verr := nl.Validate(); verr != nil {
			t.Fatalf("parsed netlist fails Validate: %v\ninput:\n%s", verr, text)
		}
		// Round-trip: anything the parser accepts must serialize and
		// re-parse to an equally valid netlist.
		var sb strings.Builder
		if werr := nl.Write(&sb); werr != nil {
			t.Fatalf("write after parse: %v", werr)
		}
		nl2, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-parse of written netlist: %v\ntext:\n%s", err, sb.String())
		}
		if verr := nl2.Validate(); verr != nil {
			t.Fatalf("round-tripped netlist fails Validate: %v", verr)
		}
	})
}

// TestReadRejectsDuplicateName pins the duplicate-cell-name fix: before
// it, AddCell's programming-error panic escaped through Read.
func TestReadRejectsDuplicateName(t *testing.T) {
	for _, text := range []string{
		"input a\ninput a\n",
		"input a\nlut a b\n",
		"lut a -\noutput a a\n",
		"reg a -\nreg a -\n",
	} {
		if _, err := Read(strings.NewReader(text)); err == nil {
			t.Errorf("Read(%q) accepted a duplicate cell name", text)
		} else if !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("Read(%q) error = %v, want duplicate-name error", text, err)
		}
	}
}
