package netlist

import "fmt"

// TopoOrder returns the live cells in combinational topological order:
// every LUT appears after the drivers of all its fanin nets, except
// that edges *into* timing sources (registered LUTs, pads) do not
// constrain the order — registered cells cut cycles exactly as
// flip-flops do in static timing analysis.
//
// It returns an error if the combinational subgraph contains a cycle
// (a combinational loop), which is illegal in the target netlists.
func (n *Netlist) TopoOrder() ([]CellID, error) {
	indeg := make([]int32, len(n.cells))
	order := make([]CellID, 0, n.numLive)
	queue := make([]CellID, 0, n.numLive)

	for i := range n.cells {
		c := &n.cells[i]
		if c.Dead {
			continue
		}
		if c.IsSource() {
			// Sources never wait on their inputs.
			queue = append(queue, c.ID)
			continue
		}
		d := int32(0)
		for _, net := range c.Fanin {
			if net != None {
				d++
			}
		}
		indeg[i] = d
		if d == 0 {
			queue = append(queue, c.ID)
		}
	}

	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		c := &n.cells[id]
		if c.Out == None {
			continue
		}
		// A source's *combinational* output still propagates: its
		// sinks' arrival depends on it. Registered outputs restart
		// timing but still feed downstream combinational logic, so the
		// order must respect those edges too — unless the sink is
		// itself a source (its inputs end a path).
		for _, p := range n.nets[c.Out].Sinks {
			sc := &n.cells[p.Cell]
			if sc.IsSource() {
				continue // already enqueued; edge ends a path
			}
			indeg[p.Cell]--
			if indeg[p.Cell] == 0 {
				queue = append(queue, p.Cell)
			}
		}
	}

	if len(order) != n.numLive {
		return nil, fmt.Errorf("netlist %s: combinational cycle detected (%d of %d cells ordered)",
			n.Name, len(order), n.numLive)
	}
	return order, nil
}

// FaninCone returns the set of cells from which sink is combinationally
// reachable, including sink itself. Traversal stops at timing sources
// (their inputs belong to the previous clock cycle).
func (n *Netlist) FaninCone(sink CellID) map[CellID]bool {
	cone := map[CellID]bool{sink: true}
	stack := []CellID{sink}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := n.Cell(id)
		if c.IsSource() && id != sink {
			continue
		}
		for _, net := range c.Fanin {
			if net == None {
				continue
			}
			d := n.Net(net).Driver
			if !cone[d] {
				cone[d] = true
				stack = append(stack, d)
			}
		}
	}
	return cone
}
