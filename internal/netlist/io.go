package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The text format is a minimal BLIF-like line format:
//
//	# comment
//	circuit <name>
//	input <name>
//	output <name> <signal>
//	lut <name> <in1> <in2> ...
//	reg <name> <in1> <in2> ...    (registered LUT / BLE)
//
// Signals are named after their driving cell. Forward references are
// allowed; connectivity is resolved after all cells are declared.

// Write serializes the netlist to the text format.
func (n *Netlist) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", n.Name)
	var err error
	n.Cells(func(c *Cell) {
		if err != nil {
			return
		}
		switch c.Kind {
		case IPad:
			_, err = fmt.Fprintf(bw, "input %s\n", c.Name)
		case OPad:
			_, err = fmt.Fprintf(bw, "output %s %s\n", c.Name, n.signalName(c.Fanin[0]))
		case LUT:
			kw := "lut"
			if c.Registered {
				kw = "reg"
			}
			parts := make([]string, 0, len(c.Fanin)+2)
			parts = append(parts, kw, c.Name)
			for _, net := range c.Fanin {
				parts = append(parts, n.signalName(net))
			}
			_, err = fmt.Fprintln(bw, strings.Join(parts, " "))
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

func (n *Netlist) signalName(net NetID) string {
	if net == None {
		return "-"
	}
	return n.Cell(n.Net(net).Driver).Name
}

// Read parses the text format into a new netlist.
func Read(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := New("unnamed")
	type pending struct {
		cell   CellID
		pin    int
		signal string
	}
	var deferred []pending
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		// AddCell panics on duplicate names (a programming error when
		// building netlists in code); on parser input a duplicate is a
		// malformed file, so it must surface as an error. The parser's
		// hard contract is error-never-panic: netlists arrive over
		// HTTP in repld, where a panic would cost the whole process.
		checkFresh := func(name string) error {
			if _, dup := n.byName[name]; dup {
				return fmt.Errorf("line %d: duplicate cell name %q", lineNo, name)
			}
			return nil
		}
		switch fields[0] {
		case "circuit":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: circuit takes one name", lineNo)
			}
			n.Name = fields[1]
		case "input":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: input takes one name", lineNo)
			}
			if err := checkFresh(fields[1]); err != nil {
				return nil, err
			}
			n.AddCell(fields[1], IPad, 0)
		case "output":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: output takes name and signal", lineNo)
			}
			if err := checkFresh(fields[1]); err != nil {
				return nil, err
			}
			c := n.AddCell(fields[1], OPad, 1)
			deferred = append(deferred, pending{c.ID, 0, fields[2]})
		case "lut", "reg":
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: %s needs a name", lineNo, fields[0])
			}
			if err := checkFresh(fields[1]); err != nil {
				return nil, err
			}
			ins := fields[2:]
			c := n.AddCell(fields[1], LUT, len(ins))
			c.Registered = fields[0] == "reg"
			for pin, sig := range ins {
				if sig == "-" {
					continue
				}
				deferred = append(deferred, pending{c.ID, pin, sig})
			}
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, p := range deferred {
		id, ok := n.CellByName(p.signal)
		if !ok {
			return nil, fmt.Errorf("cell %s pin %d: unknown signal %q",
				n.Cell(p.cell).Name, p.pin, p.signal)
		}
		out := n.Cell(id).Out
		if out == None {
			return nil, fmt.Errorf("signal %q is an output pad and drives nothing", p.signal)
		}
		n.Connect(p.cell, p.pin, out)
	}
	return n, nil
}
