package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mapRangePackages are the module-relative package subtrees in which
// unordered map iteration is a determinism hazard: everything on the
// serial/parallel bit-identical path from the embedder to the router.
var mapRangePackages = []string{
	"internal/embed",
	"internal/timing",
	"internal/core",
	"internal/flow",
	"internal/legal",
	"internal/place",
	"internal/route",
}

// MapRange flags `for range` over a map in the determinism-critical
// packages. Go randomizes map iteration order per run, so any loop that
// feeds an ordered decision — appending to a slice, picking a max with
// an ID tie, seeding a queue — makes results differ between runs and
// breaks the serial/parallel reproducibility contract.
//
// Two shapes are recognized as safe and not flagged:
//
//   - collect-then-sort: the body only collects keys (or values) into a
//     slice that a sort.XXX / slices.Sort call in the same block orders
//     before any other use;
//   - order-insensitive bodies: every statement only writes map/set
//     entries (without reading the written map), deletes keys, bumps
//     integer counters, or sets booleans — commutative effects whose
//     outcome cannot depend on iteration order.
const mapRangeRule = "maprange"

var MapRange = &Analyzer{
	Name: mapRangeRule,
	Doc: "flags `for range` over maps in determinism-critical packages " +
		"(internal/{embed,timing,core,flow,legal,place,route}) unless keys are " +
		"collected and sorted first, or the loop body is provably order-insensitive " +
		"(map/set writes, deletes, integer counters, boolean flags only)",
	Run: runMapRange,
}

func runMapRange(pass *Pass) {
	if !mapRangeApplies(pass.Pkg.Path) {
		return
	}
	for _, file := range pass.Pkg.Files {
		mr := &mapRangeChecker{pass: pass}
		mr.walkBlockOwner(file)
	}
}

func mapRangeApplies(path string) bool {
	i := strings.Index(path, "/")
	if i < 0 {
		return false
	}
	rel := path[i+1:] // strip the module path segment
	for _, p := range mapRangePackages {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

type mapRangeChecker struct {
	pass *Pass
}

// walkBlockOwner walks the file, keeping track of each statement's
// enclosing statement list so collect-then-sort can look at the
// statements that follow a range loop.
func (mr *mapRangeChecker) walkBlockOwner(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		var stmts []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			stmts = b.List
		case *ast.CaseClause:
			stmts = b.Body
		case *ast.CommClause:
			stmts = b.Body
		default:
			return true
		}
		for i, s := range stmts {
			if rng, ok := s.(*ast.RangeStmt); ok {
				mr.checkRange(rng, stmts[i+1:])
			}
		}
		return true
	})
}

func (mr *mapRangeChecker) checkRange(rng *ast.RangeStmt, rest []ast.Stmt) {
	t := mr.pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if mr.isCollectThenSort(rng, rest) {
		return
	}
	ins := &insensitivity{pass: mr.pass, rangedMap: rootObject(mr.pass, rng.X)}
	ins.declareLoopVars(rng)
	if ins.blockOK(rng.Body) {
		return
	}
	what := exprString(rng.X)
	mr.pass.Report(rng.Pos(), mapRangeRule, fmt.Sprintf(
		"iterates map %s in nondeterministic order%s; sort the keys first or make the body order-insensitive",
		what, ins.becauseSuffix()))
}

// isCollectThenSort recognizes the canonical deterministic idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, ...)        // or sort.Ints / slices.Sort / ...
//
// The body must consist solely of appends of the loop variables into
// local slices, and each such slice must reach a sort call in the
// trailing statements of the same block before any other use.
func (mr *mapRangeChecker) isCollectThenSort(rng *ast.RangeStmt, rest []ast.Stmt) bool {
	var collected []types.Object
	for _, s := range rng.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(mr.pass, call.Fun, "append") || len(call.Args) < 2 || call.Ellipsis.IsValid() {
			return false
		}
		dst, ok := call.Args[0].(*ast.Ident)
		if !ok || dst.Name != lhs.Name {
			return false
		}
		obj := mr.pass.ObjectOf(lhs)
		if obj == nil {
			return false
		}
		collected = append(collected, obj)
	}
	if len(collected) == 0 {
		return false
	}
	for _, obj := range collected {
		if !sortedBeforeUse(mr.pass, obj, rest) {
			return false
		}
	}
	return true
}

// sortedBeforeUse scans the statements after the loop for the first one
// mentioning obj and accepts only if that statement is (or contains,
// before any other use) a sort call over obj.
func sortedBeforeUse(pass *Pass, obj types.Object, rest []ast.Stmt) bool {
	for _, s := range rest {
		if !mentionsObject(pass, s, obj) {
			continue
		}
		sorted := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSortCall(call) {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					sorted = true
				}
			}
			return true
		})
		return sorted
	}
	return false
}

func isSortCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return pkg.Name == "sort" || pkg.Name == "slices"
}

// insensitivity is the conservative order-insensitive-body check. It
// accepts only statements whose effects commute across iterations:
// writes to map entries (when the right-hand side does not read the
// written map), deletes, integer counter updates, boolean flag stores
// of constants, and control flow composed of the same. Any function
// call with unknown effects, slice append, float accumulation, break,
// or return makes the body order-sensitive.
type insensitivity struct {
	pass      *Pass
	rangedMap types.Object
	// locals are objects declared inside the loop body (plus the loop
	// variables): per-iteration state that may be freely written.
	locals map[types.Object]bool
	reason string
}

func (in *insensitivity) becauseSuffix() string {
	if in.reason == "" {
		return ""
	}
	return " (" + in.reason + ")"
}

func (in *insensitivity) fail(n ast.Node, why string) bool {
	if in.reason == "" {
		in.reason = why
	}
	_ = n
	return false
}

func (in *insensitivity) declareLoopVars(rng *ast.RangeStmt) {
	in.locals = map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := in.pass.ObjectOf(id); obj != nil {
				in.locals[obj] = true
			}
		}
	}
}

func (in *insensitivity) blockOK(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if !in.stmtOK(s) {
			return false
		}
	}
	return true
}

func (in *insensitivity) stmtOK(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		return in.assignOK(st)
	case *ast.IncDecStmt:
		return in.incDecOK(st)
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && isBuiltin(in.pass, call.Fun, "delete") {
			return true
		}
		return in.fail(st, "calls with side effects in the body")
	case *ast.IfStmt:
		if st.Init != nil && !in.stmtOK(st.Init) {
			return false
		}
		if !in.pureExpr(st.Cond) {
			return in.fail(st.Cond, "impure loop condition")
		}
		if !in.blockOK(st.Body) {
			return false
		}
		if st.Else != nil {
			return in.stmtOK(st.Else)
		}
		return true
	case *ast.BlockStmt:
		return in.blockOK(st)
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return in.fail(st, "declaration in the body")
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return in.fail(st, "declaration in the body")
			}
			for _, v := range vs.Values {
				if !in.pureExpr(v) {
					return in.fail(v, "impure initializer")
				}
			}
			for _, name := range vs.Names {
				if obj := in.pass.ObjectOf(name); obj != nil {
					in.locals[obj] = true
				}
			}
		}
		return true
	case *ast.BranchStmt:
		if st.Tok == token.CONTINUE {
			return true
		}
		return in.fail(st, "order-dependent control flow (break/goto)")
	case *ast.EmptyStmt:
		return true
	default:
		return in.fail(s, "statement with order-dependent effects")
	}
}

// incDecOK accepts x++ / x-- on per-iteration locals, on outer integer
// counters (increments commute), and on integer map elements.
func (in *insensitivity) incDecOK(st *ast.IncDecStmt) bool {
	if id, ok := st.X.(*ast.Ident); ok {
		obj := in.pass.ObjectOf(id)
		if obj != nil && in.locals[obj] {
			return true
		}
		t := in.pass.TypeOf(id)
		if t != nil && isInteger(t) {
			return true
		}
		return in.fail(st, fmt.Sprintf("writes outer variable %s", id.Name))
	}
	if ix, ok := st.X.(*ast.IndexExpr); ok {
		xt := in.pass.TypeOf(ix.X)
		if xt != nil {
			if mt, isMap := xt.Underlying().(*types.Map); isMap && isInteger(mt.Elem()) && in.pureExpr(ix.Index) {
				return true
			}
		}
	}
	return in.fail(st, "non-commutative increment target")
}

func (in *insensitivity) assignOK(as *ast.AssignStmt) bool {
	if as.Tok == token.DEFINE {
		// New per-iteration locals; initializers must still be pure.
		for _, r := range as.Rhs {
			if !in.pureExpr(r) {
				return in.fail(r, "impure initializer")
			}
		}
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if obj := in.pass.ObjectOf(id); obj != nil {
					in.locals[obj] = true
				}
			}
		}
		return true
	}
	for i, l := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else {
			rhs = as.Rhs[0]
		}
		if !in.lhsOK(l, rhs, as) {
			return false
		}
	}
	return true
}

// lhsOK accepts one assignment target under commutativity rules.
func (in *insensitivity) lhsOK(l, rhs ast.Expr, as *ast.AssignStmt) bool {
	if id, ok := l.(*ast.Ident); ok {
		if id.Name == "_" {
			return true
		}
		obj := in.pass.ObjectOf(id)
		if obj != nil && in.locals[obj] {
			if !in.pureExpr(rhs) {
				return in.fail(rhs, "impure right-hand side")
			}
			return true
		}
		// Outer variable: allow integer counter updates and constant
		// boolean stores — both order-insensitive.
		t := in.pass.TypeOf(id)
		if t != nil && isIntegerCommutative(as.Tok) && isInteger(t) && in.pureExpr(rhs) {
			return true
		}
		if t != nil && as.Tok == token.ASSIGN && isBool(t) && isConstExpr(in.pass, rhs) {
			return true
		}
		return in.fail(l, fmt.Sprintf("writes outer variable %s", id.Name))
	}
	if ix, ok := l.(*ast.IndexExpr); ok {
		xt := in.pass.TypeOf(ix.X)
		if xt != nil {
			if _, isMap := xt.Underlying().(*types.Map); isMap {
				if !in.pureExpr(ix.Index) {
					return in.fail(ix.Index, "impure map key")
				}
				written := rootObject(in.pass, ix.X)
				if as.Tok == token.ASSIGN {
					if written != nil && exprMentions(in.pass, rhs, written) {
						return in.fail(rhs, "map write reads the written map")
					}
					if !in.pureExpr(rhs) {
						return in.fail(rhs, "impure right-hand side")
					}
					return true
				}
				if isIntegerCommutative(as.Tok) {
					mt := xt.Underlying().(*types.Map)
					if isInteger(mt.Elem()) && in.pureExpr(rhs) {
						return true
					}
				}
				return in.fail(as, "non-commutative map update")
			}
		}
		return in.fail(l, "indexed write to non-map")
	}
	return in.fail(l, "write through a pointer or selector")
}

// pureExpr accepts side-effect-free expressions: literals, identifiers,
// selectors, index reads, arithmetic, comparisons, conversions of the
// same, and calls to len/cap.
func (in *insensitivity) pureExpr(e ast.Expr) bool {
	switch ex := e.(type) {
	case nil:
		return true
	case *ast.BasicLit, *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return in.pureExpr(ex.X)
	case *ast.IndexExpr:
		return in.pureExpr(ex.X) && in.pureExpr(ex.Index)
	case *ast.BinaryExpr:
		return in.pureExpr(ex.X) && in.pureExpr(ex.Y)
	case *ast.UnaryExpr:
		return ex.Op != token.ARROW && in.pureExpr(ex.X)
	case *ast.ParenExpr:
		return in.pureExpr(ex.X)
	case *ast.StarExpr:
		return in.pureExpr(ex.X)
	case *ast.CallExpr:
		if isBuiltin(in.pass, ex.Fun, "len") || isBuiltin(in.pass, ex.Fun, "cap") {
			return len(ex.Args) == 1 && in.pureExpr(ex.Args[0])
		}
		// Type conversions are pure.
		if fn, ok := ex.Fun.(*ast.Ident); ok {
			if obj := in.pass.ObjectOf(fn); obj != nil {
				if _, isType := obj.(*types.TypeName); isType {
					return len(ex.Args) == 1 && in.pureExpr(ex.Args[0])
				}
			}
		}
		return false
	case *ast.TypeAssertExpr:
		return in.pureExpr(ex.X)
	case *ast.CompositeLit:
		for _, el := range ex.Elts {
			if !in.pureExpr(el) {
				return false
			}
		}
		return true
	case *ast.KeyValueExpr:
		return in.pureExpr(ex.Key) && in.pureExpr(ex.Value)
	default:
		return false
	}
}

func isIntegerCommutative(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// isBuiltin reports whether fun denotes the named builtin.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return true // unresolved: trust the spelling
	}
	_, isB := obj.(*types.Builtin)
	return isB
}

// rootObject unwraps selectors/indexes/parens/stars down to the base
// identifier's object.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch ex := e.(type) {
		case *ast.Ident:
			return pass.ObjectOf(ex)
		case *ast.SelectorExpr:
			e = ex.X
		case *ast.IndexExpr:
			e = ex.X
		case *ast.ParenExpr:
			e = ex.X
		case *ast.StarExpr:
			e = ex.X
		case *ast.CallExpr:
			e = ex.Fun
		default:
			return nil
		}
	}
}

func exprMentions(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func mentionsObject(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// exprString renders a short source form of e for messages.
func exprString(e ast.Expr) string {
	switch ex := e.(type) {
	case *ast.Ident:
		return ex.Name
	case *ast.SelectorExpr:
		return exprString(ex.X) + "." + ex.Sel.Name
	case *ast.IndexExpr:
		return exprString(ex.X) + "[...]"
	case *ast.CallExpr:
		return exprString(ex.Fun) + "(...)"
	case *ast.ParenExpr:
		return "(" + exprString(ex.X) + ")"
	case *ast.StarExpr:
		return "*" + exprString(ex.X)
	default:
		return "expression"
	}
}
