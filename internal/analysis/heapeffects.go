package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// heapeffects.go turns the points-to solution into per-context heap
// access summaries: which abstract objects each flow context (function
// body or function literal body) reads and writes, under which
// must-held lock sets, and whether the access is atomic. The shared-
// heap rules consume these summaries instead of re-walking syntax.
//
// Accesses are collected per flow context (a literal's accesses belong
// to the literal, not its encloser), with the must-held lock set at the
// access point taken from lockorder's forward solver. The transitive
// view of a context adds its non-launched nested literals and the
// contexts of everything reachable through the call graph — excluding
// `go` statements, whose bodies run in a different goroutine and must
// not be attributed to the caller's.

// heapAccess is one read or write of abstract objects.
type heapAccess struct {
	objs   []int // sorted abstract-object ids of the base expression
	pos    token.Pos
	write  bool
	atomic bool
	held   map[types.Object]bool // must-held locks at the access
	expr   ast.Expr              // the access expression, for reporting
	owner  *types.Func           // declared function containing the access
	pkg    *Package
	// field names the struct field touched on the base objects; "" for
	// element/pointee accesses (index, star, copy/append backing). Two
	// accesses conflict only when their fields match or either is the
	// whole-storage "".
	field string
}

type heapFacts struct {
	mod *Module
	// byCtx holds each flow context's own accesses (nested literal
	// interiors excluded — they have their own entry).
	byCtx map[*ast.BlockStmt][]heapAccess
	// ctxCallees lists the module functions a context may call
	// synchronously (go-statement callees excluded).
	ctxCallees map[*ast.BlockStmt][]*types.Func
	// ctxCallHeld maps each context's callees to the intersection of
	// must-held lock sets across that context's call sites — the locks a
	// callee can rely on its caller holding ("caller holds mu" helpers).
	ctxCallHeld map[*ast.BlockStmt]map[*types.Func]map[types.Object]bool
	// ctxLits lists a context's immediate nested literal bodies that
	// are not directly launched with `go` in that context.
	ctxLits map[*ast.BlockStmt][]*ast.BlockStmt
	// declCtxs lists, per declared function, its body plus every
	// non-launched literal body (the contexts that run synchronously
	// with a call of the function).
	declCtxs map[*types.Func][]*ast.BlockStmt
}

func buildHeapEffects(m *Module) *heapFacts {
	h := &heapFacts{
		mod:         m,
		byCtx:       map[*ast.BlockStmt][]heapAccess{},
		ctxCallees:  map[*ast.BlockStmt][]*types.Func{},
		ctxCallHeld: map[*ast.BlockStmt]map[*types.Func]map[types.Object]bool{},
		ctxLits:     map[*ast.BlockStmt][]*ast.BlockStmt{},
		declCtxs:    map[*types.Func][]*ast.BlockStmt{},
	}
	for _, f := range m.Funcs {
		h.buildFunc(f)
	}
	return h
}

func (h *heapFacts) buildFunc(f *ModFunc) {
	// Literal bodies directly launched with `go` anywhere in the
	// declaration: their accesses belong to the spawned goroutine.
	launched := map[*ast.BlockStmt]bool{}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				launched[lit.Body] = true
			}
		}
		return true
	})

	for _, ctx := range flowContexts(f.Decl) {
		h.buildCtx(f, ctx)
		if ctx.lit == nil || !launched[ctx.body] {
			h.declCtxs[f.Obj] = append(h.declCtxs[f.Obj], ctx.body)
		}
	}
	// Immediate (non-transitive) nested literals per context.
	for _, ctx := range flowContexts(f.Decl) {
		var lits []*ast.BlockStmt
		inspectChildLits(ctx.body, func(fl *ast.FuncLit) {
			if !launched[fl.Body] {
				lits = append(lits, fl.Body)
			}
		})
		h.ctxLits[ctx.body] = lits
	}
}

// inspectChildLits visits the immediate function literals of body (not
// literals nested inside other literals).
func inspectChildLits(body *ast.BlockStmt, f func(*ast.FuncLit)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		if fl, ok := n.(*ast.FuncLit); ok {
			f(fl)
			return false
		}
		return true
	})
}

// buildCtx collects one flow context's accesses and synchronous
// callees, walking its CFG so every access carries lockorder's
// must-held set.
func (h *heapFacts) buildCtx(f *ModFunc, ctx flowCtx) {
	m := h.mod
	c := m.cfgOf(f.Pkg, ctx.body)
	in := solveHeldSets(c)

	var accs []heapAccess
	callees := map[*types.Func]bool{}
	callHeld := map[*types.Func]map[types.Object]bool{}
	for _, b := range c.blocks {
		held := copySet(in[b])
		for _, n := range b.nodes {
			h.collectNode(f, n, held, &accs)
			nodeCallees := map[*types.Func]bool{}
			h.collectCallees(f.Pkg, n, nodeCallees)
			for fn := range nodeCallees {
				callees[fn] = true
				if prev, ok := callHeld[fn]; ok {
					callHeld[fn] = intersectSets(prev, held)
				} else {
					callHeld[fn] = copySet(held)
				}
			}
			applyLockTransfers(f.Pkg, n, held, nil)
		}
	}
	h.byCtx[ctx.body] = accs
	h.ctxCallees[ctx.body] = sortedFuncs(callees)
	h.ctxCallHeld[ctx.body] = callHeld
}

// collectCallees records module functions called (not go'd) in one CFG
// node, including interface dispatch targets.
func (h *heapFacts) collectCallees(pkg *Package, n ast.Node, out map[*types.Func]bool) {
	var goCall *ast.CallExpr
	if gs, ok := n.(*ast.GoStmt); ok {
		goCall = gs.Call
	}
	inspectOwned(n, func(inner ast.Node) bool {
		call, ok := inner.(*ast.CallExpr)
		if !ok || call == goCall {
			return true
		}
		callee := calleeFunc(pkg, call)
		if callee == nil {
			return true
		}
		if h.mod.byObj[callee] != nil {
			out[callee] = true
			return true
		}
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil &&
			types.IsInterface(sig.Recv().Type()) {
			for _, impl := range h.mod.impls.resolve(sig.Recv().Type(), callee.Name()) {
				if h.mod.byObj[impl] != nil {
					out[impl] = true
				}
			}
		}
		return true
	})
}

// collectNode records the heap accesses of one CFG node: writes through
// selector/index/star l-values (plus copy/append backing-store writes),
// reads at every selector/index/star/arrow path step, atomic flags on
// accesses inside sync/atomic call arguments.
func (h *heapFacts) collectNode(f *ModFunc, n ast.Node, held map[types.Object]bool, out *[]heapAccess) {
	pa := h.mod.pts
	pkg := f.Pkg

	// Spans of sync/atomic address operands: only the storage the call
	// actually operates on atomically — the receiver of an atomic-type
	// method (c.n.Add(1)), or the *addr first argument of a package-
	// level function (atomic.AddInt64(&c.n, d)). Value arguments are
	// evaluated as ordinary reads: in atomic.AddInt64(&c.n, f(s.f)),
	// s.f gets no atomicity.
	var atomicSpans []posRange
	inspectOwned(n, func(inner ast.Node) bool {
		call, ok := inner.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					atomicSpans = append(atomicSpans, posRange{sel.X.Pos(), sel.X.End()})
				} else if len(call.Args) > 0 {
					atomicSpans = append(atomicSpans, posRange{call.Args[0].Pos(), call.Args[0].End()})
				}
			}
		}
		return true
	})
	inAtomic := func(pos token.Pos) bool {
		for _, r := range atomicSpans {
			if r.from <= pos && pos <= r.to {
				return true
			}
		}
		return false
	}

	add := func(e ast.Expr, base ast.Expr, write bool, field string) {
		node := pa.nodeOfExpr(ast.Unparen(base))
		if node < 0 {
			return
		}
		// Channel bases are self-synchronizing; the payload flow is
		// chanshare's concern, not a raw heap access.
		if tt := pkg.typeOf(ast.Unparen(base)); tt != nil {
			if _, isChan := tt.Underlying().(*types.Chan); isChan {
				return
			}
		}
		objs := pa.objectsOf(ast.Unparen(base))
		// A struct-valued identifier is its own storage: `n := s` copies
		// the struct, so `n.f = x` mutates n's variable object only —
		// the copy-source objects the points-to node conflates (value
		// assignment is modeled as a node copy) are never touched.
		if id, ok := ast.Unparen(base).(*ast.Ident); ok {
			obj := pkg.Info.Uses[id]
			if obj == nil {
				obj = pkg.Info.Defs[id]
			}
			if v, ok := obj.(*types.Var); ok && v.Type() != nil && directObjType(v.Type()) {
				if oid, ok := pa.varObjID[v]; ok {
					objs = []int{oid}
				}
			}
		}
		if len(objs) == 0 {
			return
		}
		*out = append(*out, heapAccess{
			objs: objs, pos: e.Pos(), write: write,
			atomic: inAtomic(e.Pos()),
			held:   copySet(held),
			expr:   e, owner: f.Obj, pkg: pkg,
			field: field,
		})
	}

	// Writes: assignment l-values (skip := defines), inc/dec, copy dst,
	// append arg0 (the shared backing array may be mutated in place).
	switch st := n.(type) {
	case *ast.AssignStmt:
		if st.Tok != token.DEFINE {
			for _, lhs := range st.Lhs {
				h.writeTarget(f, ast.Unparen(lhs), add)
			}
		}
	case *ast.IncDecStmt:
		h.writeTarget(f, ast.Unparen(st.X), add)
	}
	inspectOwned(n, func(inner ast.Node) bool {
		call, ok := inner.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "copy":
					if len(call.Args) == 2 {
						add(call.Args[0], call.Args[0], true, "")
					}
				case "append":
					if len(call.Args) > 1 {
						add(call.Args[0], call.Args[0], true, "")
					}
				}
			}
		}
		return true
	})

	// Reads: every selector/index/star path step with a tracked base.
	inspectOwned(n, func(inner ast.Node) bool {
		switch e := inner.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				add(e, e.X, false, e.Sel.Name)
			}
		case *ast.IndexExpr:
			add(e, e.X, false, "")
		case *ast.StarExpr:
			add(e, e.X, false, "")
		}
		return true
	})
}

// writeTarget classifies one l-value and records the write against its
// base objects. Plain identifiers are variable (stack) writes, not heap
// accesses — sharedwrite owns those.
func (h *heapFacts) writeTarget(f *ModFunc, lhs ast.Expr, add func(e, base ast.Expr, write bool, field string)) {
	switch lv := lhs.(type) {
	case *ast.SelectorExpr:
		if sel, ok := f.Pkg.Info.Selections[lv]; ok && sel.Kind() == types.FieldVal {
			add(lv, lv.X, true, lv.Sel.Name)
		}
	case *ast.IndexExpr:
		add(lv, lv.X, true, "")
	case *ast.StarExpr:
		add(lv, lv.X, true, "")
	}
}

// ownAccesses returns the accesses that run on body's own goroutine
// without leaving the function: body's entries plus those of its
// non-launched nested literal contexts, transitively (a deferred or
// stored literal executes in the same goroutine; only `go`-launched
// literals are excluded).
func (h *heapFacts) ownAccesses(body *ast.BlockStmt) []heapAccess {
	var out []heapAccess
	seen := map[*ast.BlockStmt]bool{}
	var add func(b *ast.BlockStmt)
	add = func(b *ast.BlockStmt) {
		if seen[b] {
			return
		}
		seen[b] = true
		out = append(out, h.byCtx[b]...)
		for _, lit := range h.ctxLits[b] {
			add(lit)
		}
	}
	add(body)
	return out
}

// transAccesses returns every access that may execute synchronously
// when body runs: its own accesses, its non-launched nested literals',
// and — through the call graph — those of every reachable module
// function's synchronous contexts. Each reached function carries an
// inherited lock set: the intersection, over every call path from
// body, of the locks held at the call sites — so a "caller holds mu"
// helper's accesses surface with mu in their held set when every path
// to the helper really does hold it. Read-only over frozen state, safe
// for parallel rule runs.
func (h *heapFacts) transAccesses(body *ast.BlockStmt) []heapAccess {
	var out []heapAccess
	seenCtx := map[*ast.BlockStmt]bool{}

	// Fixpoint over reachable functions: inherited[fn] only ever
	// shrinks (set intersection), so the worklist terminates.
	inherited := map[*types.Func]map[types.Object]bool{}
	var work []*types.Func
	edge := func(fn *types.Func, held map[types.Object]bool) {
		cur, ok := inherited[fn]
		if !ok {
			inherited[fn] = copySet(held)
			work = append(work, fn)
			return
		}
		next := intersectSets(cur, held)
		if !sameSet(next, cur) {
			inherited[fn] = next
			work = append(work, fn)
		}
	}

	var addCtx func(b *ast.BlockStmt)
	addCtx = func(b *ast.BlockStmt) {
		if seenCtx[b] {
			return
		}
		seenCtx[b] = true
		out = append(out, h.byCtx[b]...)
		for fn, held := range h.ctxCallHeld[b] {
			edge(fn, held)
		}
		for _, lit := range h.ctxLits[b] {
			addCtx(lit)
		}
	}
	addCtx(body)

	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		inh := inherited[fn]
		for _, b := range h.declCtxs[fn] {
			for fn2, siteHeld := range h.ctxCallHeld[b] {
				edge(fn2, unionSets(inh, siteHeld))
			}
		}
	}

	// Emit each reached function's accesses with its inherited locks
	// folded in. Contexts already emitted as roots keep their own sets.
	fns := make([]*types.Func, 0, len(inherited))
	for fn := range inherited {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		inh := inherited[fn]
		for _, b := range h.declCtxs[fn] {
			if seenCtx[b] {
				continue
			}
			seenCtx[b] = true
			for _, acc := range h.byCtx[b] {
				if len(inh) > 0 {
					acc.held = unionSets(acc.held, inh)
				}
				out = append(out, acc)
			}
		}
	}
	return out
}

// intersectSets returns a ∩ b as a fresh set.
func intersectSets(a, b map[types.Object]bool) map[types.Object]bool {
	out := map[types.Object]bool{}
	for o := range a {
		if b[o] {
			out[o] = true
		}
	}
	return out
}

// unionSets returns a ∪ b as a fresh set (inputs are never mutated —
// access held sets are shared with the frozen byCtx entries).
func unionSets(a, b map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(a)+len(b))
	for o := range a {
		out[o] = true
	}
	for o := range b {
		out[o] = true
	}
	return out
}

// transSpans returns the body spans of every context contributing to
// transAccesses(body): the body itself, its non-launched nested
// literals, and the declaration bodies of every transitively called
// function. An object allocated inside any of these spans is created
// within the dynamic extent of one run of body, so two goroutine
// instances of body allocate distinct concrete objects even though the
// abstract object is one — per-instance data, not shared state.
// (The exception — a callee-allocated object escaping to a global or a
// channel and re-entering another instance — is arenaescape/chanshare
// territory, not aliasrace's.)
func (h *heapFacts) transSpans(body *ast.BlockStmt) []posRange {
	var out []posRange
	seenCtx := map[*ast.BlockStmt]bool{}
	roots := map[*types.Func]bool{}

	var addCtx func(b *ast.BlockStmt)
	addCtx = func(b *ast.BlockStmt) {
		if seenCtx[b] {
			return
		}
		seenCtx[b] = true
		out = append(out, posRange{b.Pos(), b.End()})
		for _, fn := range h.ctxCallees[b] {
			roots[fn] = true
		}
		for _, lit := range h.ctxLits[b] {
			addCtx(lit)
		}
	}
	addCtx(body)

	seenFn := map[*types.Func]bool{}
	work := sortedFuncs(roots)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if seenFn[fn] {
			continue
		}
		seenFn[fn] = true
		for _, b := range h.declCtxs[fn] {
			if !seenCtx[b] {
				seenCtx[b] = true
				out = append(out, posRange{b.Pos(), b.End()})
			}
			for _, fn2 := range h.ctxCallees[b] {
				if !seenFn[fn2] {
					work = append(work, fn2)
				}
			}
		}
	}
	return out
}
