package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package. Test files
// (_test.go) are deliberately excluded: replint's rules guard
// production code paths, and tests routinely exercise the exact
// patterns (map ranges, float equality) the rules forbid.
type Package struct {
	// Path is the import path ("repro/internal/embed").
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Fset is the shared file set of the loader that produced this
	// package.
	Fset *token.FileSet
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Src maps each file (by token.File name) to its raw source, used
	// by the directive scanner to classify comment placement.
	Src map[string][]byte
	// Types and Info carry the go/types results. Type checking is
	// best-effort: errors are collected in TypeErrors and the analyzers
	// run on whatever information survived.
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Loader loads module-local packages with the standard library resolved
// from GOROOT source — no go/packages, no network, no export data.
type Loader struct {
	Fset *token.FileSet
	// ModulePath and ModuleDir root the import-path namespace: the
	// import path ModulePath+"/x/y" resolves to ModuleDir/x/y.
	ModulePath string
	ModuleDir  string

	std     types.Importer
	ctx     build.Context
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module directory. The module
// path is read from go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctx := build.Default
	ctx.BuildTags = nil // default build: e.g. replassert files stay out
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  moduleDir,
		std:        importer.ForCompiler(fset, "source", nil),
		ctx:        ctx,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Import implements types.Importer, routing module-local paths to the
// source tree and everything else to the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load loads (or returns the cached) package with the given
// module-local import path.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath)))
	pkg, err := l.loadDir(path, dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loadDir parses and type-checks the non-test files of one directory.
func (l *Loader) loadDir(path, dir string) (*Package, error) {
	names, err := l.sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	pkg := &Package{
		Path: path,
		Dir:  dir,
		Fset: l.Fset,
		Src:  map[string][]byte{},
	}
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.Fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Src[full] = src
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns an error on the first problem, but with Error set
	// it keeps going and still populates Info and the package scope.
	tpkg, _ := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// sourceFiles lists the buildable non-test .go files of dir in sorted
// order, honoring build constraints under the loader's build context.
func (l *Loader) sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if ok, err := l.ctx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Expand resolves package patterns relative to the module root into
// import paths, in sorted order. Supported forms: "./...", "./dir/...",
// "./dir", and plain import paths inside the module.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		rel := strings.TrimPrefix(pat, "./")
		if rel == "." {
			rel = ""
		}
		if strings.HasPrefix(rel, l.ModulePath) {
			rel = strings.TrimPrefix(strings.TrimPrefix(rel, l.ModulePath), "/")
		}
		root := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
		if !recursive {
			if names, err := l.sourceFiles(root); err == nil && len(names) > 0 {
				add(joinImportPath(l.ModulePath, rel))
			}
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(p)
			if p != root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") ||
				base == "testdata" || base == "vendor") {
				return filepath.SkipDir
			}
			if names, ferr := l.sourceFiles(p); ferr == nil && len(names) > 0 {
				relp, rerr := filepath.Rel(l.ModuleDir, p)
				if rerr != nil {
					return rerr
				}
				if relp == "." {
					relp = ""
				}
				add(joinImportPath(l.ModulePath, filepath.ToSlash(relp)))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func joinImportPath(mod, rel string) string {
	if rel == "" {
		return mod
	}
	return mod + "/" + rel
}
