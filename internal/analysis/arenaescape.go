package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ArenaEscape is the semantic upgrade of scratchleak: where scratchleak
// checks that a pooled value is *released* on every path, arenaescape
// checks that the value does not *outlive* the release. A scratch
// buffer that is Put back while a reference to it (or to anything
// reachable from it) has been stored into a package-level variable,
// sent on a channel, or returned to the caller will be recycled under a
// live alias — the next Get hands the same storage to someone else and
// the determinism guarantee dies in a way no syntactic rule can see.
//
// For every acquisition the scratchleak machinery recognizes
// (`x := getScratch()`, `x := pool.Get().(*T)`) that also has a textual
// release in the same function body, the rule takes the points-to set
// of the acquired variable and reports when any of its objects is
// reachable — through the solved field/element cells — from a
// package-level variable, from a channel payload, or from the
// function's return values. The reachability is interprocedural for
// free: Andersen's argument-to-parameter binding means a helper that
// stores its argument into a global taints the caller's acquisition
// with no extra fixpoint.
//
// Missing releases stay scratchleak's finding; this rule is silent on
// them so one defect yields one finding.
const arenaEscapeRule = "arenaescape"

var ArenaEscape = &Analyzer{
	Name: arenaEscapeRule,
	Doc: "flags pooled scratch/arena values whose points-to set escapes the " +
		"Get/Put extent (stored to a global, sent on a channel, or returned) " +
		"so a recycled object cannot live on under an alias",
	// ModWide: points-to sets fold in caller bindings and
	// interface impls from anywhere in the module.
	ModWide: true,
	Run:     runArenaEscape,
}

func runArenaEscape(pass *Pass) {
	mod := pass.Mod
	if mod == nil || mod.pts == nil {
		return
	}
	for _, f := range mod.funcsInPackage(pass.Pkg) {
		for _, fc := range flowContexts(f.Decl) {
			checkArenaCtx(pass, f, fc)
		}
	}
}

func checkArenaCtx(pass *Pass, f *ModFunc, fc flowCtx) {
	pa := pass.Mod.pts
	for _, acq := range findAcquisitions(pass, fc.body) {
		if !hasRelease(pass, fc.body, acq.obj) {
			continue // unreleased is scratchleak's finding, not ours
		}
		n, ok := pa.varNode[acq.obj]
		if !ok || n < 0 {
			continue
		}
		objs := pa.pointsToSet(pa.find(n))
		if len(objs) == 0 {
			continue
		}
		// Returned objects: anything reachable from this context's
		// result nodes.
		retObjs := map[int]bool{}
		for _, rn := range pa.retNodes[fc.body] {
			if rn < 0 {
				continue
			}
			for o := range pa.pointsToSet(pa.find(rn)) {
				retObjs[o] = true
			}
		}
		returned := pa.reachFrom(retObjs)

		kind := ""
		for o := range objs {
			// The pool's own storage cell points at the pooled object
			// by construction; escapes are judged on where *else* the
			// object is reachable from.
			switch {
			case pa.escapedGlobal[o]:
				kind = "is reachable from a package-level variable"
			case pa.escapedChan[o]:
				kind = "escapes through a channel send"
			case returned[o]:
				kind = "is reachable from this function's return value"
			default:
				continue
			}
			break
		}
		if kind == "" {
			continue
		}
		pass.Report(acq.stmt.Pos(), arenaEscapeRule, fmt.Sprintf(
			"%s obtained from %s %s while also being released: the pool will "+
				"recycle it under a live alias; copy the escaping data out or "+
				"drop the %s",
			acq.obj.Name(), acq.source, kind, acq.releaseHint))
	}
}

// hasRelease reports whether the body textually releases the
// acquisition object anywhere (path sensitivity is scratchleak's job).
func hasRelease(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	inspectSkippingFuncLits(body, func(n ast.Node) {
		if found {
			return
		}
		if call, ok := n.(*ast.CallExpr); ok && isReleaseCall(pass, call, obj) {
			found = true
		}
	})
	if found {
		return true
	}
	// defer put(x) appears as a DeferStmt whose call inspectSkipping
	// still visits; the walk above covers it. Also accept a release in
	// a deferred literal: `defer func() { put(x) }()`.
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				if call, ok := inner.(*ast.CallExpr); ok && isReleaseCall(pass, call, obj) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
