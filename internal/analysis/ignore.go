package analysis

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
)

// replint honors four comment directives:
//
//	//replint:ignore rule1,rule2 -- reason
//	    Suppresses findings of the listed rules. A trailing comment
//	    suppresses findings on its own line; a comment alone on a line
//	    suppresses findings on the line below it. The "-- reason" part
//	    is mandatory: a suppression without a written justification is
//	    itself reported (rule "directive") and cannot be silenced.
//
//	//replint:floatcmp-helper
//	    Placed in a function's doc comment, designates that function as
//	    one of the blessed comparison helpers: exact float comparisons
//	    inside it are allowed (see the floatcmp rule).
//
//	//replint:metadata -- reason
//	    Placed on a struct field (doc or trailing comment) or on a type
//	    declaration, designates the field(s) as sanctioned
//	    nondeterministic metadata (wall-clock diagnostics): the detflow
//	    taint engine absorbs values stored into them. The reason is
//	    mandatory, same as for ignore directives.
//
//	//replint:guarded gen=<counter>
//	    Placed on a struct field (doc or trailing comment), declares
//	    the field to be generation-guarded derived state: every write
//	    to it must be post-dominated by a bump of the sibling counter
//	    field named by gen= before the mutating function returns (see
//	    the stalegen rule).

// directiveRule is the reserved rule ID for malformed directives.
const directiveRule = "directive"

var ignoreRE = regexp.MustCompile(`^//replint:ignore\s+([A-Za-z0-9_,]+)\s+--\s+(\S.*)$`)

// helperDirective is the marker for designated float-compare helpers.
const helperDirective = "//replint:floatcmp-helper"

const guardedPrefix = "//replint:guarded"

var guardedRE = regexp.MustCompile(`^//replint:guarded\s+gen=([A-Za-z_][A-Za-z0-9_]*)\s*$`)

// parsedDirective is the outcome of parsing one //replint: comment.
type parsedDirective struct {
	// Kind is "ignore", "metadata", "guarded", or "helper" for a
	// well-formed directive; empty when Err is set.
	Kind string
	// Rules holds the rule IDs an ignore directive suppresses.
	Rules []string
	// Reason is the justification text of ignore/metadata directives.
	Reason string
	// Counter is the generation-counter field name of a guarded
	// directive.
	Counter string
	// Err is the malformed-directive message, empty when well-formed.
	Err string
}

// parseDirective parses one comment's text. The second result is false
// when the comment is not a replint directive at all. It is the single
// syntax authority for every directive form, tolerant of CRLF sources
// (a trailing \r never changes the verdict).
func parseDirective(text string) (parsedDirective, bool) {
	text = strings.TrimRight(text, "\r")
	if !strings.HasPrefix(text, "//replint:") {
		return parsedDirective{}, false
	}
	switch {
	case strings.HasPrefix(text, helperDirective):
		return parsedDirective{Kind: "helper"}, true
	case strings.HasPrefix(text, metadataPrefix):
		if !metadataRE.MatchString(text) {
			return parsedDirective{Err: `malformed replint directive; want "//replint:metadata -- reason"`}, true
		}
		return parsedDirective{Kind: "metadata", Reason: strings.TrimSpace(strings.SplitN(text, "--", 2)[1])}, true
	case strings.HasPrefix(text, guardedPrefix):
		m := guardedRE.FindStringSubmatch(text)
		if m == nil {
			return parsedDirective{Err: `malformed replint directive; want "//replint:guarded gen=<counter field>"`}, true
		}
		return parsedDirective{Kind: "guarded", Counter: m[1]}, true
	}
	m := ignoreRE.FindStringSubmatch(text)
	if m == nil {
		return parsedDirective{Err: `malformed replint directive; want "//replint:ignore rule[,rule...] -- reason"`}, true
	}
	return parsedDirective{Kind: "ignore", Rules: strings.Split(m[1], ","), Reason: m[2]}, true
}

// directives indexes the parsed ignore directives of one package.
type directives struct {
	// byLine maps filename -> line -> suppressions effective there.
	byLine    map[string]map[int][]ignoreEntry
	malformed []Finding
}

type ignoreEntry struct {
	rules  []string
	reason string
}

// collectDirectives scans every comment of the package for replint
// directives and computes the lines each one covers.
func collectDirectives(pkg *Package) *directives {
	d := &directives{byLine: map[string]map[int][]ignoreEntry{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.addComment(pkg, c)
			}
		}
	}
	return d
}

func (d *directives) addComment(pkg *Package, c *ast.Comment) {
	pd, ok := parseDirective(c.Text)
	if !ok {
		return
	}
	pos := pkg.Fset.Position(c.Pos())
	if pd.Err != "" {
		d.malformed = append(d.malformed, Finding{Pos: pos, Rule: directiveRule, Msg: pd.Err})
		return
	}
	if pd.Kind != "ignore" {
		// helper, metadata, and guarded directives are resolved
		// structurally (floatcmp, collectMetadataFields,
		// collectGuardedFields).
		return
	}
	// An ignore naming a rule that does not exist would sit silently
	// forever (typo, or a rule renamed after the directive was written);
	// report it so stale suppressions cannot rot. The directive still
	// suppresses its valid rule names.
	for _, r := range pd.Rules {
		if !knownRules[r] {
			d.malformed = append(d.malformed, Finding{Pos: pos, Rule: directiveRule,
				Msg: "replint directive names unknown rule " + strconv.Quote(r) +
					"; it will never match a finding (run `replint -rules` for the catalog)"})
		}
	}
	entry := ignoreEntry{rules: pd.Rules, reason: pd.Reason}
	// A comment with code before it on its line shields that line; a
	// comment alone on its line shields the next line.
	line := pos.Line
	if standaloneComment(pkg.Src[pos.Filename], pos.Offset) {
		line++
	}
	if d.byLine[pos.Filename] == nil {
		d.byLine[pos.Filename] = map[int][]ignoreEntry{}
	}
	d.byLine[pos.Filename][line] = append(d.byLine[pos.Filename][line], entry)
}

// standaloneComment reports whether only whitespace precedes the
// comment (starting at the given byte offset) on its source line.
func standaloneComment(src []byte, offset int) bool {
	if offset > len(src) {
		return false
	}
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true // comment starts the file
}

// suppressed reports whether a finding of rule at file:line is covered
// by a directive, and returns the directive's reason.
func (d *directives) suppressed(file string, line int, rule string) (string, bool) {
	for _, e := range d.byLine[file][line] {
		for _, r := range e.rules {
			if r == rule {
				return e.reason, true
			}
		}
	}
	return "", false
}

// isHelperFunc reports whether the function declaration carries the
// floatcmp-helper designation in its doc comment.
func isHelperFunc(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, helperDirective) {
			return true
		}
	}
	return false
}
