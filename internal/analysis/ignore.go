package analysis

import (
	"go/ast"
	"regexp"
	"strings"
)

// replint honors two comment directives:
//
//	//replint:ignore rule1,rule2 -- reason
//	    Suppresses findings of the listed rules. A trailing comment
//	    suppresses findings on its own line; a comment alone on a line
//	    suppresses findings on the line below it. The "-- reason" part
//	    is mandatory: a suppression without a written justification is
//	    itself reported (rule "directive") and cannot be silenced.
//
//	//replint:floatcmp-helper
//	    Placed in a function's doc comment, designates that function as
//	    one of the blessed comparison helpers: exact float comparisons
//	    inside it are allowed (see the floatcmp rule).
//
//	//replint:metadata -- reason
//	    Placed on a struct field (doc or trailing comment) or on a type
//	    declaration, designates the field(s) as sanctioned
//	    nondeterministic metadata (wall-clock diagnostics): the detflow
//	    taint engine absorbs values stored into them. The reason is
//	    mandatory, same as for ignore directives.

// directiveRule is the reserved rule ID for malformed directives.
const directiveRule = "directive"

var ignoreRE = regexp.MustCompile(`^//replint:ignore\s+([A-Za-z0-9_,]+)\s+--\s+(\S.*)$`)

// helperDirective is the marker for designated float-compare helpers.
const helperDirective = "//replint:floatcmp-helper"

// directives indexes the parsed ignore directives of one package.
type directives struct {
	// byLine maps filename -> line -> suppressions effective there.
	byLine    map[string]map[int][]ignoreEntry
	malformed []Finding
}

type ignoreEntry struct {
	rules  []string
	reason string
}

// collectDirectives scans every comment of the package for replint
// directives and computes the lines each one covers.
func collectDirectives(pkg *Package) *directives {
	d := &directives{byLine: map[string]map[int][]ignoreEntry{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.addComment(pkg, c)
			}
		}
	}
	return d
}

func (d *directives) addComment(pkg *Package, c *ast.Comment) {
	text := c.Text
	if !strings.HasPrefix(text, "//replint:") {
		return
	}
	if strings.HasPrefix(text, helperDirective) {
		return // handled structurally by floatcmp
	}
	pos := pkg.Fset.Position(c.Pos())
	if strings.HasPrefix(text, metadataPrefix) {
		if !metadataRE.MatchString(text) {
			d.malformed = append(d.malformed, Finding{
				Pos:  pos,
				Rule: directiveRule,
				Msg:  `malformed replint directive; want "//replint:metadata -- reason"`,
			})
		}
		return // field resolution happens in collectMetadataFields
	}
	m := ignoreRE.FindStringSubmatch(text)
	if m == nil {
		d.malformed = append(d.malformed, Finding{
			Pos:  pos,
			Rule: directiveRule,
			Msg:  `malformed replint directive; want "//replint:ignore rule[,rule...] -- reason"`,
		})
		return
	}
	entry := ignoreEntry{rules: strings.Split(m[1], ","), reason: m[2]}
	// A comment with code before it on its line shields that line; a
	// comment alone on its line shields the next line.
	line := pos.Line
	if standaloneComment(pkg.Src[pos.Filename], pos.Offset) {
		line++
	}
	if d.byLine[pos.Filename] == nil {
		d.byLine[pos.Filename] = map[int][]ignoreEntry{}
	}
	d.byLine[pos.Filename][line] = append(d.byLine[pos.Filename][line], entry)
}

// standaloneComment reports whether only whitespace precedes the
// comment (starting at the given byte offset) on its source line.
func standaloneComment(src []byte, offset int) bool {
	if offset > len(src) {
		return false
	}
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true // comment starts the file
}

// suppressed reports whether a finding of rule at file:line is covered
// by a directive, and returns the directive's reason.
func (d *directives) suppressed(file string, line int, rule string) (string, bool) {
	for _, e := range d.byLine[file][line] {
		for _, r := range e.rules {
			if r == rule {
				return e.reason, true
			}
		}
	}
	return "", false
}

// isHelperFunc reports whether the function declaration carries the
// floatcmp-helper designation in its doc comment.
func isHelperFunc(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, helperDirective) {
			return true
		}
	}
	return false
}
