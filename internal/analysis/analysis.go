// Package analysis is replint's stdlib-only static-analysis framework:
// a package loader built on go/parser + go/types (no go/packages, no
// external modules), a small Analyzer/Pass API, and the determinism and
// correctness rules this codebase enforces on itself.
//
// The parallel embedding engine and the levelized STA promise
// bit-identical results at any worker count. That contract is
// structural — it survives only as long as nothing iterates an
// unordered map into an ordered decision, compares float costs with ==,
// leaks pooled scratch, or writes shared state from a worker without a
// proven disjointness argument. These rules make each of those failure
// classes a build error rather than a debugging session.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
	// Suppressed marks findings covered by a //replint:ignore
	// directive; the driver reports them only in verbose mode.
	Suppressed bool
	// Reason is the justification text of the suppressing directive.
	Reason string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Pass is the per-package context handed to each analyzer.
type Pass struct {
	Pkg *Package
	// Mod is the whole-module dataflow context. It is non-nil when the
	// package is analyzed through Module.RunPackage; the interprocedural
	// rules no-op without it, and floatcmp loses only its zero-sentinel
	// exemption.
	Mod    *Module
	report func(pos token.Pos, rule, msg string)
}

// Report records a finding at pos under the given rule.
func (p *Pass) Report(pos token.Pos, rule, msg string) { p.report(pos, rule, msg) }

// TypeOf returns the type of expr, or nil when type checking did not
// resolve it (best-effort under type errors).
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[expr]; ok {
		return tv.Type
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj := p.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// Analyzer is one replint rule.
type Analyzer struct {
	// Name is the rule ID used in reports and ignore directives.
	Name string
	// Doc is the one-paragraph rule description for `replint -rules`.
	Doc string
	// ModWide marks rules whose findings consume facts from outside the
	// package's import closure: interface dispatch through the module
	// impl index, reverse call edges, module-global storage/taint field
	// facts, or points-to sets bound by callers anywhere in the module.
	// The fact cache must key these findings on the whole-module content
	// hash — an edit to ANY module package can change them — while
	// closure-local rules stay valid under the package's own import-
	// closure key.
	ModWide bool
	Run     func(*Pass)
}

// All returns the rule catalog in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapRange,
		FloatCmp,
		ScratchLeak,
		SharedWrite,
		DetFlow,
		CtxStride,
		HotAlloc,
		ShardWrite,
		StaleGen,
		LockOrder,
		WGLeak,
		DeferBal,
		AliasRace,
		ArenaEscape,
		ChanShare,
	}
}

// knownRules is the set of valid rule IDs an ignore directive may name:
// the full catalog plus the reserved directive rule itself.
var knownRules = func() map[string]bool {
	m := map[string]bool{directiveRule: true}
	for _, a := range All() {
		m[a.Name] = true
	}
	return m
}()

// modWideRules is the set of rule IDs whose findings are valid only
// under the whole-module key. The reserved directive rule is closure-
// local: malformed and unknown-rule directives depend on the package's
// own sources alone.
var modWideRules = func() map[string]bool {
	m := map[string]bool{}
	for _, a := range All() {
		if a.ModWide {
			m[a.Name] = true
		}
	}
	return m
}()

// IsModWide reports whether findings of the named rule depend on
// module-wide facts (see Analyzer.ModWide). Unknown names — including
// the reserved "directive" rule — are closure-local.
func IsModWide(rule string) bool { return modWideRules[rule] }

// ModWideAnalyzers returns the catalog subset with ModWide set, in the
// same stable order as All(). The cache driver re-runs exactly these
// rules for packages whose import-closure key still matches but whose
// module key went stale.
func ModWideAnalyzers() []*Analyzer {
	var out []*Analyzer
	for _, a := range All() {
		if a.ModWide {
			out = append(out, a)
		}
	}
	return out
}

// RunAnalyzers applies the analyzers to one loaded package and returns
// the findings — directive-suppressed ones included but marked — in
// file/line order. Malformed replint directives are reported under the
// reserved rule "directive", which cannot be suppressed.
//
// This entry point has no module context: the interprocedural rules
// report nothing through it. Prefer BuildModule + Module.RunPackage.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Finding {
	return runAnalyzers(nil, pkg, analyzers)
}

func runAnalyzers(mod *Module, pkg *Package, analyzers []*Analyzer) []Finding {
	dirs := collectDirectives(pkg)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Pkg: pkg,
			Mod: mod,
			report: func(pos token.Pos, rule, msg string) {
				findings = append(findings, Finding{Pos: pkg.Fset.Position(pos), Rule: rule, Msg: msg})
			},
		}
		a.Run(pass)
	}
	findings = append(findings, dirs.malformed...)
	for i := range findings {
		f := &findings[i]
		if f.Rule == directiveRule {
			continue
		}
		if reason, ok := dirs.suppressed(f.Pos.Filename, f.Pos.Line, f.Rule); ok {
			f.Suppressed = true
			f.Reason = reason
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := &findings[i], &findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		// Total order: two findings can share a position and rule but
		// differ in message (e.g. one racing write reaching two abstract
		// objects), and sort.Slice is unstable.
		return a.Msg < b.Msg
	})
	return findings
}
