package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// FactVersion names the fact-cache schema and analyzer generation.
// Bump it whenever rule logic, the points-to layer, or the cached
// finding format changes in a way that should invalidate every entry.
const FactVersion = "replint-facts-v2"

// CachedFinding is the serialized form of one finding: positions are
// module-relative forward-slash paths, so an entry written on one
// checkout replays byte-identically on another.
type CachedFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Rule       string `json:"rule"`
	Msg        string `json:"msg"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// factEntry is the on-disk record for one package. Findings are stored
// in two tiers because they have two distinct validity domains:
// closure-local rules read nothing beyond the package and its imports,
// while module-wide rules (Analyzer.ModWide) consume facts — interface
// impls, reverse call edges, global field facts, caller-bound points-to
// sets — that an edit to ANY module package can change.
type factEntry struct {
	// Path is the package import path, recorded for debuggability.
	Path string `json:"path"`
	// Key is the import-closure content key Findings were computed under.
	Key string `json:"key"`
	// ModKey is the whole-module content key ModFindings were computed
	// under.
	ModKey string `json:"mod_key"`
	// Findings are the closure-local rules' findings (directive findings
	// included), suppressed ones included.
	Findings []CachedFinding `json:"findings"`
	// ModFindings are the module-wide rules' findings.
	ModFindings []CachedFinding `json:"mod_findings"`
}

// FactCache persists per-package findings in two tiers: closure-local
// findings keyed by a content hash of the package's sources and its
// module-local import closure, and module-wide findings keyed by a hash
// of the entire module. A full hit means the analyzers would recompute
// exactly what is stored; a partial hit (closure key matches, module
// key stale) replays the local tier and re-runs only the module-wide
// rules.
type FactCache struct {
	Dir string

	mu       sync.Mutex
	hits     int
	partials int
	misses   int
}

// NewFactCache opens (creating if needed) a cache rooted at dir.
func NewFactCache(dir string) (*FactCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FactCache{Dir: dir}, nil
}

// Hits returns the number of full hits so far: lookups where both the
// closure key and the module key matched.
func (c *FactCache) Hits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Partials returns the number of partial hits so far: the closure key
// matched (local findings replay) but the module key was stale, so the
// module-wide rules must re-run for the package.
func (c *FactCache) Partials() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.partials
}

// Misses returns the number of failed lookups so far: no entry, or the
// package's own closure key changed.
func (c *FactCache) Misses() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// entryFile maps an import path to its cache file. The name hashes the
// path (import paths contain separators) and keeps a readable suffix.
func (c *FactCache) entryFile(path string) string {
	sum := sha256.Sum256([]byte(path))
	base := filepath.Base(path)
	if len(base) > 32 {
		base = base[:32]
	}
	return filepath.Join(c.Dir, hex.EncodeToString(sum[:8])+"-"+base+".json")
}

// Get looks up path's entry against both content keys. localOK reports
// that the entry exists and was written under the same closure key, so
// local replays the closure-local findings; modOK additionally reports
// that the module key matched, so mod replays the module-wide findings
// too. On a partial hit (localOK without modOK) mod is nil and the
// caller must re-run the module-wide rules for the package.
func (c *FactCache) Get(path, key, modKey string) (local, mod []CachedFinding, localOK, modOK bool) {
	data, err := os.ReadFile(c.entryFile(path))
	if err != nil {
		c.miss()
		return nil, nil, false, false
	}
	var e factEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key || e.Path != path {
		c.miss()
		return nil, nil, false, false
	}
	if e.Findings == nil {
		e.Findings = []CachedFinding{}
	}
	if e.ModKey != modKey {
		c.mu.Lock()
		c.partials++
		c.mu.Unlock()
		return e.Findings, nil, true, false
	}
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	if e.ModFindings == nil {
		e.ModFindings = []CachedFinding{}
	}
	return e.Findings, e.ModFindings, true, true
}

func (c *FactCache) miss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// Put stores the two finding tiers for path under their respective
// keys, atomically (write to a temp file in the same directory, then
// rename).
func (c *FactCache) Put(path, key, modKey string, local, mod []CachedFinding) error {
	if local == nil {
		local = []CachedFinding{}
	}
	if mod == nil {
		mod = []CachedFinding{}
	}
	data, err := json.MarshalIndent(factEntry{
		Path: path, Key: key, ModKey: modKey,
		Findings: local, ModFindings: mod,
	}, "", "  ")
	if err != nil {
		return err
	}
	dst := c.entryFile(path)
	tmp, err := os.CreateTemp(c.Dir, ".fact-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), dst)
}

// factKeyer computes content keys for module packages without loading
// or type-checking them: it reads the raw sources, parses import
// clauses only (on its own fileset, so it never pollutes the loader's),
// and folds in the keys of module-local imports recursively. Because
// every dependency's key already covers its dependencies, one level of
// inclusion yields the transitive closure: editing a file changes the
// key of its package and of every reverse dependency, and of nothing
// else.
type factKeyer struct {
	l     *Loader
	rules string // sorted rule names, the analyzer-set fingerprint
	keys  map[string]string
	state map[string]int // 0 unvisited, 1 in progress, 2 done
}

func newFactKeyer(l *Loader, analyzers []*Analyzer) *factKeyer {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return &factKeyer{
		l:     l,
		rules: strings.Join(names, ","),
		keys:  map[string]string{},
		state: map[string]int{},
	}
}

// Key returns the content key for the package with the given
// module-local import path.
func (k *factKeyer) Key(path string) (string, error) {
	if k.state[path] == 2 {
		return k.keys[path], nil
	}
	if k.state[path] == 1 {
		return "", fmt.Errorf("analysis: import cycle through %s", path)
	}
	k.state[path] = 1

	dir := filepath.Join(k.l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(path, k.l.ModulePath)))
	names, err := k.l.sourceFiles(dir)
	if err != nil {
		return "", err
	}
	if len(names) == 0 {
		return "", fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\x00", FactVersion, runtime.Version(), k.rules, path)
	fset := token.NewFileSet()
	depSet := map[string]bool{}
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", name, len(src))
		h.Write(src)
		f, err := parser.ParseFile(fset, name, src, parser.ImportsOnly)
		if err != nil {
			return "", err
		}
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if ip == k.l.ModulePath || strings.HasPrefix(ip, k.l.ModulePath+"/") {
				depSet[ip] = true
			}
		}
	}
	deps := make([]string, 0, len(depSet))
	for d := range depSet {
		deps = append(deps, d)
	}
	sort.Strings(deps)
	for _, d := range deps {
		dk, err := k.Key(d)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "dep\x00%s\x00%s\x00", d, dk)
	}

	key := hex.EncodeToString(h.Sum(nil))
	k.keys[path] = key
	k.state[path] = 2
	return key, nil
}

// PackageKeys computes the import-closure content key of every listed
// module package using the loader's file discovery, without loading the
// module. The result maps import path to key. Closure keys validate
// only the closure-local rule tier; module-wide findings need the
// whole-module key from CacheKeys/ModuleKey.
func PackageKeys(l *Loader, analyzers []*Analyzer, paths []string) (map[string]string, error) {
	k := newFactKeyer(l, analyzers)
	out := make(map[string]string, len(paths))
	for _, p := range paths {
		key, err := k.Key(p)
		if err != nil {
			return nil, err
		}
		out[p] = key
	}
	return out, nil
}

// moduleKey folds every module package's closure key into one
// fingerprint of the entire module's sources (plus, through the
// per-package keys, the rule set and toolchain version). Module-wide
// rule findings are valid only under this key: interface dispatch, the
// reverse call graph, global field facts, and caller-bound points-to
// sets let an edit ANYWHERE in the module change any package's
// findings, even outside its import closure.
func (k *factKeyer) moduleKey() (string, error) {
	all, err := k.l.Expand([]string{"./..."})
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "module\x00%s\x00", FactVersion)
	for _, p := range all { // Expand returns sorted paths
		pk, err := k.Key(p)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%s\x00", p, pk)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ModuleKey computes the whole-module content key on its own keyer.
func ModuleKey(l *Loader, analyzers []*Analyzer) (string, error) {
	return newFactKeyer(l, analyzers).moduleKey()
}

// CacheKeys computes the import-closure key of every requested package
// plus the whole-module key, sharing one keyer so each package's
// sources are read and parsed once.
func CacheKeys(l *Loader, analyzers []*Analyzer, paths []string) (map[string]string, string, error) {
	k := newFactKeyer(l, analyzers)
	out := make(map[string]string, len(paths))
	for _, p := range paths {
		key, err := k.Key(p)
		if err != nil {
			return nil, "", err
		}
		out[p] = key
	}
	modKey, err := k.moduleKey()
	if err != nil {
		return nil, "", err
	}
	return out, modKey, nil
}
