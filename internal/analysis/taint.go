package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// taint.go is the determinism-taint engine. It computes, module-wide,
// which storage locations (locals, fields, package vars — one fact
// per types.Object, struct fields field-based across all instances)
// may hold a value derived from a nondeterminism source:
//
//	wallclock — time.Now / time.Since / time.Until
//	mathrand  — math/rand package-level functions (the shared global
//	            source; methods on a seeded *rand.Rand are fine)
//	maporder  — map iteration bindings
//	goorder   — receives from channels fed by multiple goroutines
//	            (completion order), detected via go-launched literals
//	ptrfmt    — fmt verbs formatting pointers (%p)
//
// Propagation is a flow-insensitive monotone fixpoint over
// assignments, composite literals, call argument/parameter bindings
// (with pointer back-edges), returns, and channel sends. Struct
// values carry the union of their fields' taint when passed around
// (typeFieldTaint). The lattice is the powerset of the five kinds;
// each kind keeps its earliest source position for reporting.
//
// Soundness limits (documented in DESIGN.md): calls through function
// values and reflection propagate nothing; field-based struct facts
// conflate instances (a taint on one instance's field taints all);
// containers are conflated with their elements.
//
// The //replint:metadata directive punches a deliberate hole: a store
// into an annotated field absorbs taint. It designates fields that
// are *supposed* to be nondeterministic diagnostics (wall-clock
// durations in job status JSON) and are excluded from the
// determinism contract.

// taintSet maps source kind → earliest source position (for stable,
// deterministic messages).
type taintSet map[string]token.Pos

func (s taintSet) mergeFrom(o taintSet) bool {
	grew := false
	for k, p := range o {
		have, ok := s[k]
		if !ok {
			s[k] = p
			grew = true
		} else if p < have {
			s[k] = p
		}
	}
	return grew
}

// without returns the set minus one kind (copy-on-write; the receiver
// is not modified).
func (s taintSet) without(kind string) taintSet {
	if _, ok := s[kind]; !ok {
		return s
	}
	out := taintSet{}
	for k, p := range s {
		if k != kind {
			out[k] = p
		}
	}
	return out
}

func (s taintSet) describe() string {
	kinds := make([]string, 0, len(s))
	for k := range s {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return strings.Join(kinds, "+")
}

type taintFacts struct {
	mod     *Module
	storage map[types.Object]taintSet
	ret     map[*types.Func]taintSet
	// writeParam[f][i]: f may write through its i-th parameter
	// (pointer/slice/map reference); i == -1 is the receiver.
	writeParam map[*types.Func]map[int]bool
	// sinkParam[f][i]: the i-th parameter flows to a determinism sink
	// inside f (transitively); i == -1 is the receiver.
	sinkParam map[*types.Func]map[int]bool
	// multiSend marks channel objects sent to from goroutines with
	// more than one instance (receive order is scheduling-dependent).
	multiSend map[types.Object]bool
	changed   bool
}

func buildTaint(m *Module) *taintFacts {
	t := &taintFacts{
		mod:        m,
		storage:    map[types.Object]taintSet{},
		ret:        map[*types.Func]taintSet{},
		writeParam: map[*types.Func]map[int]bool{},
		sinkParam:  map[*types.Func]map[int]bool{},
		multiSend:  map[types.Object]bool{},
	}
	t.findMultiSendChans()
	t.seedSinkParams()
	for pass := 0; pass < 40; pass++ {
		t.changed = false
		for _, f := range m.Funcs {
			t.walkFunc(f)
		}
		if !t.changed {
			break
		}
	}
	return t
}

// ---------------------------------------------------------------------
// Multi-sender channel detection.

func (t *taintFacts) findMultiSendChans() {
	// sites counts distinct single-instance go-statements sending on a
	// channel; a send from a loop-launched goroutine is multi at once.
	sites := map[types.Object]int{}
	for _, f := range t.mod.Funcs {
		var loops [][2]token.Pos
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ForStmt:
				loops = append(loops, [2]token.Pos{st.Body.Pos(), st.Body.End()})
			case *ast.RangeStmt:
				loops = append(loops, [2]token.Pos{st.Body.Pos(), st.Body.End()})
			}
			return true
		})
		inLoop := func(pos token.Pos) bool {
			for _, r := range loops {
				if r[0] <= pos && pos <= r[1] {
					return true
				}
			}
			return false
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit := launchedLiteral(f.Pkg, f.Decl, gs.Call)
			if lit == nil {
				return true
			}
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				send, ok := inner.(*ast.SendStmt)
				if !ok {
					return true
				}
				ch := storageRoot(f.Pkg, send.Chan)
				if ch == nil {
					return true
				}
				if inLoop(gs.Pos()) {
					t.multiSend[ch] = true
				} else if sites[ch]++; sites[ch] >= 2 {
					t.multiSend[ch] = true
				}
				return true
			})
			return true
		})
	}
}

// launchedLiteral resolves `go f()` to a function literal: either
// written in place or bound to a local whose single definition is a
// literal.
func launchedLiteral(pkg *Package, decl *ast.FuncDecl, call *ast.CallExpr) *ast.FuncLit {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun
	case *ast.Ident:
		obj := pkg.Info.ObjectOf(fun)
		if obj == nil {
			return nil
		}
		var found *ast.FuncLit
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || pkg.Info.ObjectOf(id) != obj {
					continue
				}
				if lit, ok := as.Rhs[i].(*ast.FuncLit); ok {
					found = lit
				}
			}
			return true
		})
		return found
	}
	return nil
}

// ---------------------------------------------------------------------
// The per-function transfer walk.

func (t *taintFacts) walkFunc(f *ModFunc) {
	pkg := f.Pkg
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			t.transferAssign(f, st)
		case *ast.RangeStmt:
			t.transferRange(f, st)
		case *ast.SendStmt:
			if ch := storageRoot(pkg, st.Chan); ch != nil {
				t.addTaint(ch, t.exprTaint(f, st.Value))
			}
		case *ast.ReturnStmt:
			set := taintSet{}
			if len(st.Results) == 0 {
				// Bare return with named results.
				if f.Decl.Type.Results != nil {
					for _, fl := range f.Decl.Type.Results.List {
						for _, name := range fl.Names {
							if obj := pkg.Info.Defs[name]; obj != nil && !isErrorType(obj.Type()) {
								set.mergeFrom(t.storage[obj])
							}
						}
					}
				}
			}
			for _, res := range st.Results {
				if isErrorType(pkg.typeOf(res)) {
					continue
				}
				set.mergeFrom(t.exprTaint(f, res))
				set.mergeFrom(t.typeFieldTaint(pkg.typeOf(res), nil))
			}
			if len(set) > 0 {
				if t.ret[f.Obj] == nil {
					t.ret[f.Obj] = taintSet{}
				}
				if t.ret[f.Obj].mergeFrom(set) {
					t.changed = true
				}
			}
		case *ast.CallExpr:
			t.transferCall(f, st)
		case *ast.CompositeLit:
			t.transferCompositeLit(f, st)
		}
		return true
	})
}

func (t *taintFacts) transferAssign(f *ModFunc, st *ast.AssignStmt) {
	pkg := f.Pkg
	store := func(lhs ast.Expr, set taintSet) {
		target := storageRoot(pkg, lhs)
		if target == nil {
			return
		}
		if t.mod.meta[target] {
			return // //replint:metadata absorbs
		}
		// A store into a map element is order-insensitive: whatever
		// order a range walked its source in, each key maps to the
		// same value, so the maporder component is laundered (the
		// canonical map-copy loop in Clone-style code is clean).
		if isMapElementStore(pkg, lhs) {
			set = set.without("maporder")
		}
		t.addTaint(target, set)
		t.noteWriteThrough(f, lhs)
	}
	if len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			store(lhs, t.exprTaint(f, st.Rhs[i]))
		}
		return
	}
	// Tuple assignment: every lhs gets the rhs taint.
	set := t.exprTaint(f, st.Rhs[0])
	for _, lhs := range st.Lhs {
		store(lhs, set)
	}
}

func (t *taintFacts) transferRange(f *ModFunc, st *ast.RangeStmt) {
	pkg := f.Pkg
	set := taintSet{}
	set.mergeFrom(t.exprTaint(f, st.X))
	containerT := pkg.typeOf(st.X)
	if containerT != nil {
		switch containerT.Underlying().(type) {
		case *types.Map:
			set.mergeFrom(taintSet{"maporder": st.For})
		case *types.Chan:
			if ch := storageRoot(pkg, st.X); ch != nil && t.multiSend[ch] {
				set.mergeFrom(taintSet{"goorder": st.For})
			}
		}
	}
	if len(set) == 0 {
		return
	}
	for _, bind := range []ast.Expr{st.Key, st.Value} {
		if bind == nil {
			continue
		}
		if target := storageRoot(pkg, bind); target != nil && !t.mod.meta[target] {
			t.addTaint(target, set)
		}
	}
}

func (t *taintFacts) transferCompositeLit(f *ModFunc, lit *ast.CompositeLit) {
	pkg := f.Pkg
	tt := pkg.typeOf(lit)
	if tt == nil {
		return
	}
	if p, ok := tt.Underlying().(*types.Pointer); ok {
		tt = p.Elem()
	}
	st, ok := tt.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var field types.Object
		var val ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				field = fieldByName(st, id.Name)
			}
			val = kv.Value
		} else if i < st.NumFields() {
			field, val = st.Field(i), elt
		}
		if field == nil || val == nil || t.mod.meta[field] {
			continue
		}
		t.addTaint(field, t.exprTaint(f, val))
	}
}

// transferCall binds argument taint into callee parameters, applies
// pointer back-edges, and lifts the callee's write/sink summaries
// into the caller's own summaries when the argument is itself one of
// the caller's parameters.
func (t *taintFacts) transferCall(f *ModFunc, call *ast.CallExpr) {
	pkg := f.Pkg
	callee := calleeFunc(pkg, call)
	if callee == nil {
		return
	}
	mf := t.mod.byObj[callee]
	if mf == nil {
		return // external; exprTaint handles value flow
	}
	recvObj, params := signatureObjects(mf)
	// Receiver binding for method calls written obj.M(...).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && recvObj != nil {
		set := t.exprTaint(f, sel.X)
		set.mergeFrom(t.typeFieldTaint(pkg.typeOf(sel.X), nil))
		t.addTaint(recvObj, set)
		t.liftSummaries(f, call, sel.X, callee, -1)
	}
	for i, arg := range call.Args {
		if i >= len(params) {
			// Variadic tail: bind into the last parameter.
			if len(params) == 0 {
				break
			}
			i = len(params) - 1
		}
		p := params[i]
		if p == nil {
			continue
		}
		set := t.exprTaint(f, arg)
		set.mergeFrom(t.typeFieldTaint(pkg.typeOf(arg), nil))
		t.addTaint(p, set)
		// Pointer back-edge: writes through the parameter surface in
		// the argument's storage.
		if referenceLike(pkg.typeOf(arg)) {
			if root := storageRoot(pkg, deref(arg)); root != nil && !t.mod.meta[root] {
				t.addTaint(root, t.storage[p])
			}
		}
		t.liftSummaries(f, call, arg, callee, i)
	}
}

// liftSummaries propagates writeParam/sinkParam facts one call level
// up: when callee writes through (or sinks) its slot and our argument
// is rooted at one of our own parameters, we write/sink that slot
// too. One level of local indirection is chased through def-use
// (`ns := &r.sols[i]; accept(ns, ...)` still marks the receiver).
func (t *taintFacts) liftSummaries(f *ModFunc, call *ast.CallExpr, arg ast.Expr, callee *types.Func, slot int) {
	if !t.writeParam[callee][slot] && !t.sinkParam[callee][slot] {
		return
	}
	myRecv, myParams := signatureObjects(f)
	classify := func(obj types.Object) (int, bool) {
		if obj == nil {
			return 0, false
		}
		if obj == myRecv {
			return -1, true
		}
		for i, p := range myParams {
			if obj == p {
				return i, true
			}
		}
		return 0, false
	}
	root := syntacticBase(f.Pkg, arg)
	mySlot, ok := classify(root)
	if !ok && root != nil {
		// Chase one def level: local derived from a param/receiver
		// region (`ns := &r.sols[i]; accept(ns, ...)` still writes
		// through the receiver as far as callers can tell). Only
		// reference-typed defs alias; a value copy severs the link.
		if du := t.mod.defuse[f.Obj]; du != nil {
			for _, rec := range du.defs[root] {
				if rec.rhs == nil || !referenceLike(f.Pkg.typeOf(rec.rhs)) {
					continue
				}
				if s, ok2 := classify(syntacticBase(f.Pkg, rec.rhs)); ok2 {
					mySlot, ok = s, true
					break
				}
			}
		}
	}
	if !ok {
		return
	}
	if t.writeParam[callee][slot] {
		t.setSummary(t.writeParam, f.Obj, mySlot)
	}
	if t.sinkParam[callee][slot] {
		t.setSummary(t.sinkParam, f.Obj, mySlot)
	}
}

func (t *taintFacts) setSummary(m map[*types.Func]map[int]bool, f *types.Func, slot int) {
	if m[f] == nil {
		m[f] = map[int]bool{}
	}
	if !m[f][slot] {
		m[f][slot] = true
		t.changed = true
	}
}

// noteWriteThrough records a writeParam summary when the assignment
// target is reached through a parameter or the receiver (a selector,
// index, or deref rooted there — a bare rebind of the parameter
// itself is invisible to the caller and does not count).
func (t *taintFacts) noteWriteThrough(f *ModFunc, lhs ast.Expr) {
	if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		return
	}
	base := syntacticBase(f.Pkg, lhs)
	if base == nil {
		return
	}
	recvObj, params := signatureObjects(f)
	classify := func(o types.Object) (int, bool) {
		if o == recvObj && recvObj != nil {
			return -1, true
		}
		for i, p := range params {
			if o == p && p != nil {
				return i, true
			}
		}
		return 0, false
	}
	slot, hit := classify(base)
	if !hit {
		// One def level: a local alias of a param/receiver region
		// (`ns := &r.sols[id]; ns.at[v] = ...` writes through the
		// receiver as far as callers can tell). Only reference-typed
		// defs alias; a value copy severs the link.
		if du := t.mod.defuse[f.Obj]; du != nil {
			for _, rec := range du.defs[base] {
				if rec.rhs == nil || !referenceLike(f.Pkg.typeOf(rec.rhs)) {
					continue
				}
				if s, ok2 := classify(syntacticBase(f.Pkg, rec.rhs)); ok2 {
					slot, hit = s, true
					break
				}
			}
		}
	}
	if hit {
		t.setSummary(t.writeParam, f.Obj, slot)
	}
}

// signatureObjects returns the receiver object (nil for functions)
// and parameter objects of a declared function.
func signatureObjects(f *ModFunc) (types.Object, []types.Object) {
	var recv types.Object
	if f.Decl.Recv != nil {
		for _, fl := range f.Decl.Recv.List {
			for _, name := range fl.Names {
				recv = f.Pkg.Info.Defs[name]
			}
		}
	}
	var params []types.Object
	if f.Decl.Type.Params != nil {
		for _, fl := range f.Decl.Type.Params.List {
			if len(fl.Names) == 0 {
				params = append(params, nil) // unnamed parameter
				continue
			}
			for _, name := range fl.Names {
				params = append(params, f.Pkg.Info.Defs[name])
			}
		}
	}
	return recv, params
}

// isMapElementStore reports whether lhs writes a map element
// (m[k] = v).
func isMapElementStore(pkg *Package, lhs ast.Expr) bool {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	tt := pkg.typeOf(idx.X)
	if tt == nil {
		return false
	}
	_, isMap := tt.Underlying().(*types.Map)
	return isMap
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func referenceLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// syntacticBase unwraps selectors, indexes, slices, derefs, and &
// down to the base identifier's object — the storage a *caller* would
// say the expression is rooted at. Unlike storageRoot it never
// resolves a selector to its field object, so the result is
// comparable against receiver/parameter objects.
func syntacticBase(pkg *Package, e ast.Expr) types.Object {
	for {
		switch ex := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pkg.Info.ObjectOf(ex)
		case *ast.SelectorExpr:
			e = ex.X
		case *ast.IndexExpr:
			e = ex.X
		case *ast.SliceExpr:
			e = ex.X
		case *ast.StarExpr:
			e = ex.X
		case *ast.UnaryExpr:
			if ex.Op != token.AND {
				return nil
			}
			e = ex.X
		default:
			return nil
		}
	}
}

// deref unwraps a leading & so the storage root of `&x.f` is x.f.
func deref(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return e
}

func (t *taintFacts) addTaint(obj types.Object, set taintSet) {
	if obj == nil || len(set) == 0 {
		return
	}
	if t.storage[obj] == nil {
		t.storage[obj] = taintSet{}
	}
	if t.storage[obj].mergeFrom(set) {
		t.changed = true
	}
}

// ---------------------------------------------------------------------
// Expression taint evaluation.

func (t *taintFacts) exprTaint(f *ModFunc, e ast.Expr) taintSet {
	pkg := f.Pkg
	set := taintSet{}
	// error values are diagnostics by definition: their text may
	// legitimately depend on iteration order or timing (which of two
	// equivalent problems is reported first), and treating them as
	// carriers would taint every (T, error) tuple at every call site.
	if isErrorType(pkg.typeOf(e)) {
		return set
	}
	switch ex := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pkg.Info.ObjectOf(ex); obj != nil {
			set.mergeFrom(t.storage[obj])
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[ex]; ok && sel.Kind() == types.FieldVal {
			// Field reads use the field-based fact alone: unioning the
			// container's value-taint here would conflate sibling
			// fields (a wall-clock timestamp next to a config field
			// would taint both). Whole-value flows into sinks are
			// covered by typeFieldTaint at the sink instead.
			set.mergeFrom(t.storage[sel.Obj()])
			break
		}
		if obj, ok := pkg.Info.Uses[ex.Sel].(*types.Var); ok {
			set.mergeFrom(t.storage[obj])
		}
	case *ast.CallExpr:
		set.mergeFrom(t.callTaint(f, ex))
	case *ast.UnaryExpr:
		if ex.Op == token.ARROW {
			if ch := storageRoot(pkg, ex.X); ch != nil && t.multiSend[ch] {
				set.mergeFrom(taintSet{"goorder": ex.Pos()})
			}
			set.mergeFrom(t.exprTaint(f, ex.X))
			break
		}
		set.mergeFrom(t.exprTaint(f, ex.X))
	case *ast.BinaryExpr:
		set.mergeFrom(t.exprTaint(f, ex.X))
		set.mergeFrom(t.exprTaint(f, ex.Y))
	case *ast.IndexExpr:
		set.mergeFrom(t.exprTaint(f, ex.X))
		set.mergeFrom(t.exprTaint(f, ex.Index))
	case *ast.SliceExpr:
		set.mergeFrom(t.exprTaint(f, ex.X))
	case *ast.StarExpr:
		set.mergeFrom(t.exprTaint(f, ex.X))
	case *ast.TypeAssertExpr:
		set.mergeFrom(t.exprTaint(f, ex.X))
	case *ast.CompositeLit:
		set.mergeFrom(t.compositeLitTaint(f, ex))
	case *ast.KeyValueExpr:
		set.mergeFrom(t.exprTaint(f, ex.Value))
	}
	return set
}

// compositeLitTaint is the value taint of a composite literal: the
// union of its element taints, excluding elements assigned to
// //replint:metadata fields — the literal carries sanctioned metadata
// there exactly as a field store would, so `Status{SubmittedAt:
// time.Now()}` does not taint the whole Status value.
func (t *taintFacts) compositeLitTaint(f *ModFunc, lit *ast.CompositeLit) taintSet {
	set := taintSet{}
	var st *types.Struct
	if tt := f.Pkg.typeOf(lit); tt != nil {
		u := tt.Underlying()
		if p, ok := u.(*types.Pointer); ok {
			u = p.Elem().Underlying()
		}
		st, _ = u.(*types.Struct)
	}
	for i, elt := range lit.Elts {
		var field types.Object
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && st != nil {
				field = fieldByName(st, id.Name)
			}
			val = kv.Value
		} else if st != nil && i < st.NumFields() {
			field = st.Field(i)
		}
		if field != nil && t.mod.meta[field] {
			continue
		}
		set.mergeFrom(t.exprTaint(f, val))
	}
	return set
}

func (t *taintFacts) callTaint(f *ModFunc, call *ast.CallExpr) taintSet {
	pkg := f.Pkg
	set := taintSet{}
	// Type conversion: value passes through.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		for _, arg := range call.Args {
			set.mergeFrom(t.exprTaint(f, arg))
		}
		return set
	}
	callee := calleeFunc(pkg, call)
	if kind := sourceKindOfCall(pkg, callee, call); kind != "" {
		set.mergeFrom(taintSet{kind: call.Pos()})
	}
	if callee != nil {
		if t.mod.byObj[callee] != nil {
			set.mergeFrom(t.ret[callee])
			return set
		}
	}
	// Builtin append / external call: union over operands (a helper we
	// cannot see is assumed to pass taint through, not launder it).
	for _, arg := range call.Args {
		set.mergeFrom(t.exprTaint(f, arg))
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		set.mergeFrom(t.exprTaint(f, sel.X))
	}
	return set
}

// typeFieldTaint unions the taint of every field reachable from a
// struct type (through pointers, slices, embedded structs), depth
// bounded. It makes struct *values* carry their fields' taint across
// call boundaries and into sinks. //replint:metadata fields are
// excluded by construction (stores into them were absorbed).
func (t *taintFacts) typeFieldTaint(tt types.Type, seen map[*types.Named]bool) taintSet {
	set := taintSet{}
	if tt == nil {
		return set
	}
	if seen == nil {
		seen = map[*types.Named]bool{}
	}
	if len(seen) > 8 {
		return set
	}
	switch u := tt.(type) {
	case *types.Named:
		if seen[u] {
			return set
		}
		seen[u] = true
		return t.typeFieldTaint(u.Underlying(), seen)
	case *types.Pointer:
		return t.typeFieldTaint(u.Elem(), seen)
	case *types.Slice:
		return t.typeFieldTaint(u.Elem(), seen)
	case *types.Array:
		return t.typeFieldTaint(u.Elem(), seen)
	case *types.Map:
		return t.typeFieldTaint(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			fd := u.Field(i)
			if t.mod.meta[fd] {
				continue
			}
			set.mergeFrom(t.storage[fd])
			set.mergeFrom(t.typeFieldTaint(fd.Type(), seen))
		}
	}
	return set
}

// ---------------------------------------------------------------------
// Sources.

var ptrVerbRE = regexp.MustCompile(`%[-+# 0-9.*]*p`)

// sourceKindOfCall classifies a call as a nondeterminism source.
func sourceKindOfCall(pkg *Package, callee *types.Func, call *ast.CallExpr) string {
	if callee == nil || callee.Pkg() == nil {
		return ""
	}
	sig, _ := callee.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch callee.Pkg().Path() {
	case "time":
		if !isMethod {
			switch callee.Name() {
			case "Now", "Since", "Until":
				return "wallclock"
			}
		}
	case "math/rand", "math/rand/v2":
		// Package-level draw functions use the shared global source.
		// Constructors (New, NewSource, NewPCG, ...) and methods on a
		// seeded *rand.Rand are the deterministic idiom and are clean.
		if !isMethod && !strings.HasPrefix(callee.Name(), "New") {
			return "mathrand"
		}
	case "fmt":
		if !isMethod && strings.Contains(callee.Name(), "rintf") {
			// Sprintf/Fprintf/Printf family: %p formats an address.
			for _, arg := range call.Args {
				if tv, ok := pkg.Info.Types[arg]; ok && tv.Value != nil {
					if ptrVerbRE.MatchString(tv.Value.ExactString()) {
						return "ptrfmt"
					}
				}
			}
		}
	}
	return ""
}

// ---------------------------------------------------------------------
// The //replint:metadata directive.

var metadataRE = regexp.MustCompile(`^//replint:metadata\s+--\s+\S.*$`)

const metadataPrefix = "//replint:metadata"

// collectMetadataFields resolves every //replint:metadata directive
// to the struct-field objects it designates. The directive is valid
// on a field (doc or trailing comment — covers that field) and on a
// type declaration (covers every field of the struct).
func collectMetadataFields(m *Module) map[types.Object]bool {
	meta := map[types.Object]bool{}
	markField := func(pkg *Package, field *ast.Field) {
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				meta[obj] = true
			}
		}
	}
	hasDirective := func(groups ...*ast.CommentGroup) bool {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				if metadataRE.MatchString(c.Text) {
					return true
				}
			}
		}
		return false
	}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					typeWide := hasDirective(gd.Doc, ts.Doc, ts.Comment)
					for _, field := range st.Fields.List {
						if typeWide || hasDirective(field.Doc, field.Comment) {
							markField(pkg, field)
						}
					}
				}
			}
			// Anonymous struct types (e.g. one-off debug payloads):
			// field-level directives still apply.
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if hasDirective(field.Doc, field.Comment) {
						markField(pkg, field)
					}
				}
				return true
			})
		}
	}
	return meta
}
