package analysis

import (
	"go/ast"
	"testing"
)

// cfgForFunc builds (and caches via Module.cfgOf, so the noreturn
// summary is wired in) the CFG of a named function in a module.
func cfgForFunc(t *testing.T, mod *Module, name string) *cfg {
	t.Helper()
	f := funcNamed(t, mod, name)
	return mod.cfgOf(f.Pkg, f.Decl.Body)
}

// findOwned locates the first owned node matching the predicate, in
// block order.
func findOwned(t *testing.T, c *cfg, match func(ast.Node) bool) (*cfgBlock, int) {
	t.Helper()
	for _, b := range c.blocks {
		for i, n := range b.nodes {
			if match(n) {
				return b, i
			}
		}
	}
	t.Fatal("no owned node matched")
	return nil, 0
}

// definesVar matches an owned node that is a := definition of name.
func definesVar(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
				return true
			}
		}
		return false
	}
}

// callsBump is the discharge predicate the must-pass tests share: the
// owned node contains a call to the package function bump.
func callsBump(n ast.Node) bool {
	found := false
	inspectOwned(n, func(inner ast.Node) bool {
		if call, ok := inner.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bump" {
				found = true
			}
		}
		return true
	})
	return found
}

const cfgFixtureSrc = `package cfgfix

import "os"

func bump() {}

func fatalWrapper() { panic("fatal") }

func allPaths(x int) {
	y := x
	_ = y
	bump()
}

func branchOnly(x int) {
	y := x
	_ = y
	if x > 0 {
		bump()
	}
}

func bothBranches(x int) {
	y := x
	_ = y
	if x > 0 {
		bump()
	} else {
		bump()
	}
}

func panicPath(x int) {
	y := x
	_ = y
	if x < 0 {
		panic("negative")
	}
	bump()
}

func exitPath(x int) {
	y := x
	_ = y
	if x < 0 {
		os.Exit(2)
	}
	bump()
}

func viaNoReturn(x int) {
	y := x
	_ = y
	if x < 0 {
		fatalWrapper()
	}
	bump()
}

func infiniteLoop(x int) {
	y := x
	_ = y
	for {
	}
}

func loopEscape(xs []int) {
	y := 0
	_ = y
	for _, v := range xs {
		if v > 10 {
			break
		}
		if v < 0 {
			continue
		}
	}
	bump()
}

func switchNoDefault(x int) {
	y := x
	_ = y
	switch x {
	case 1:
		bump()
	case 2:
		bump()
	}
}

func switchDefault(x int) {
	y := x
	_ = y
	switch x {
	case 1:
		bump()
	default:
		bump()
	}
}

func selectBoth(ch chan int) {
	y := 0
	_ = y
	select {
	case v := <-ch:
		_ = v
		bump()
	default:
		bump()
	}
}

func gotoSkip(x int) {
	y := x
	_ = y
	if x > 0 {
		goto done
	}
	bump()
done:
	_ = x
}

func earlyReturnBeforeWrite(x int) {
	if x == 0 {
		return
	}
	y := x
	_ = y
	bump()
}

func defsKill() int {
	x := 1
	x = 2
	return x
}

func defsMerge(cond bool) int {
	x := 1
	if cond {
		x = 2
	}
	return x
}

func defsOpaque() int {
	x := 1
	p := &x
	_ = p
	return x
}

func defsParam(x int) int {
	return x
}

func defsLoop(n int) int {
	x := 0
	for i := 0; i < n; i++ {
		x = x + 1
	}
	return x
}
`

func buildCFGFixture(t *testing.T) *Module {
	t.Helper()
	return buildScratchModule(t, map[string]string{"cfgfix/cfgfix.go": cfgFixtureSrc})
}

// TestCFGStructure sanity-checks the graph shape: entry/exit exist, the
// exit is empty and synthetic, and succ/pred lists are mutually
// consistent in every function's graph.
func TestCFGStructure(t *testing.T) {
	mod := buildCFGFixture(t)
	for _, name := range []string{"allPaths", "branchOnly", "loopEscape", "switchNoDefault", "selectBoth", "gotoSkip"} {
		c := cfgForFunc(t, mod, name)
		if c.entry == nil || c.exit == nil {
			t.Fatalf("%s: missing entry/exit", name)
		}
		if len(c.exit.nodes) != 0 || len(c.exit.succs) != 0 {
			t.Errorf("%s: exit block must be empty and terminal", name)
		}
		for _, b := range c.blocks {
			for _, s := range b.succs {
				found := false
				for _, p := range s.preds {
					if p == b {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: edge %d->%d has no matching pred", name, b.idx, s.idx)
				}
			}
		}
	}
}

// TestMustPassToExit exercises the post-dominance query from the
// y-definition site of each fixture function: does every returning
// path pass a bump() call?
func TestMustPassToExit(t *testing.T) {
	mod := buildCFGFixture(t)
	cases := []struct {
		fn   string
		want bool
	}{
		{"allPaths", true},
		{"branchOnly", false},       // bump on the then-branch only
		{"bothBranches", true},      // both arms discharge
		{"panicPath", true},         // panicking path is vacuous
		{"exitPath", true},          // os.Exit terminates its block
		{"viaNoReturn", true},       // noreturn summary covers the wrapper
		{"infiniteLoop", true},      // no path returns at all
		{"loopEscape", true},        // break/continue both rejoin before bump
		{"switchNoDefault", false},  // missing default falls through unbumped
		{"switchDefault", true},     // every clause discharges
		{"selectBoth", true},        // both comm clauses discharge
		{"gotoSkip", false},         // goto jumps over the bump
		{"earlyReturnBeforeWrite", true}, // the early return precedes the query point
	}
	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			c := cfgForFunc(t, mod, tc.fn)
			b, ord := findOwned(t, c, definesVar("y"))
			if got := c.mustPassToExit(b, ord, callsBump); got != tc.want {
				t.Errorf("mustPassToExit from y-def in %s = %v, want %v", tc.fn, got, tc.want)
			}
		})
	}
}

// TestDefsReaching exercises the reaching-definitions solver: kills,
// branch merges, loop-carried defs, address-taken opacity, and the
// empty answer for objects defined outside the graph.
func TestDefsReaching(t *testing.T) {
	mod := buildCFGFixture(t)

	// atReturn locates the return statement and the object its result
	// identifier resolves to.
	atReturn := func(t *testing.T, c *cfg, f *ModFunc) (*cfgBlock, int, []*cfgDef) {
		t.Helper()
		b, ord := findOwned(t, c, func(n ast.Node) bool {
			_, ok := n.(*ast.ReturnStmt)
			return ok
		})
		ret := b.nodes[ord].(*ast.ReturnStmt)
		id := ret.Results[0].(*ast.Ident)
		obj := f.Pkg.Info.ObjectOf(id)
		if obj == nil {
			t.Fatal("return identifier does not resolve")
		}
		return b, ord, c.defsReaching(b, ord, obj)
	}

	run := func(name string) (*cfg, []*cfgDef) {
		f := funcNamed(t, mod, name)
		c := mod.cfgOf(f.Pkg, f.Decl.Body)
		_, _, defs := atReturn(t, c, f)
		return c, defs
	}

	t.Run("later def kills earlier in a block", func(t *testing.T) {
		_, defs := run("defsKill")
		if len(defs) != 1 {
			t.Fatalf("reaching defs = %d, want 1", len(defs))
		}
		lit, ok := defs[0].rec.rhs.(*ast.BasicLit)
		if !ok || lit.Value != "2" {
			t.Errorf("surviving def rhs = %v, want the literal 2", defs[0].rec.rhs)
		}
	})
	t.Run("branch merge keeps both defs", func(t *testing.T) {
		_, defs := run("defsMerge")
		if len(defs) != 2 {
			t.Errorf("reaching defs = %d, want 2 (init and then-branch)", len(defs))
		}
	})
	t.Run("address-taken def is opaque", func(t *testing.T) {
		_, defs := run("defsOpaque")
		if len(defs) != 1 || !defs[0].rec.opaque {
			t.Errorf("reaching defs = %+v, want one opaque def at the & site", defs)
		}
	})
	t.Run("parameter has no in-graph defs", func(t *testing.T) {
		_, defs := run("defsParam")
		if len(defs) != 0 {
			t.Errorf("reaching defs = %d, want 0 (defined outside the graph)", len(defs))
		}
	})
	t.Run("loop-carried def joins the init def", func(t *testing.T) {
		_, defs := run("defsLoop")
		if len(defs) != 2 {
			t.Errorf("reaching defs = %d, want 2 (zero-trip init and loop body)", len(defs))
		}
	})
}
