package analysis

import (
	"fmt"
	"os"
	"testing"
)

// TestDebugTaintDump is a development aid: REPLINT_DEBUG_TAINT=Mode go
// test -run DebugTaint dumps every tainted storage object with that
// name and the source positions. Skipped otherwise.
func TestDebugTaintDump(t *testing.T) {
	name := os.Getenv("REPLINT_DEBUG_TAINT")
	if name == "" {
		t.Skip("set REPLINT_DEBUG_TAINT=<object name>")
	}
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := BuildModule(loader)
	if err != nil {
		t.Fatal(err)
	}
	for obj, set := range mod.taint.storage {
		if obj.Name() != name || len(set) == 0 {
			continue
		}
		fmt.Printf("%s (%v declared at %s):\n", obj.Name(), obj.Type(), loader.Fset.Position(obj.Pos()))
		for kind, pos := range set {
			fmt.Printf("  %s from %s\n", kind, loader.Fset.Position(pos))
		}
	}
	for fn, slots := range mod.taint.writeParam {
		if fn.Name() == name {
			fmt.Printf("writeParam[%s] = %v\n", fn.FullName(), slots)
		}
	}
	for fn, slots := range mod.taint.sinkParam {
		if fn.Name() == name {
			fmt.Printf("sinkParam[%s] = %v\n", fn.FullName(), slots)
		}
	}
}
