package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StaleGen enforces the generation-guard discipline on fields
// annotated //replint:guarded gen=<counter>: every write to a guarded
// field must be post-dominated by a bump of its counter before the
// mutating function returns. This is the invariant the incremental
// engine's caches live on — derived state (levelization, SPT trees,
// memoized frontiers) is only trusted while its build generation
// matches, so a mutation that escapes without advancing the counter is
// a stale-read bug waiting for the next cache hit.
//
// The check is flow-sensitive (the AST layer cannot see it): a bump in
// only one branch, or an early return between the write and the bump,
// is exactly what it exists to catch. Paths that never return (panic,
// os.Exit, noreturn wrappers) are vacuously fine, and a bump inside a
// defer counts on every path through the defer statement.
var StaleGen = &Analyzer{
	Name: "stalegen",
	Doc: "writes to //replint:guarded fields must be post-dominated by a bump " +
		"of their gen= counter before function exit; flags mutations of " +
		"generation-tracked cache state that can escape without invalidating readers",
	Run: runStaleGen,
}

func runStaleGen(pass *Pass) {
	mod := pass.Mod
	if mod == nil {
		return
	}
	for _, gi := range mod.guardBad[pass.Pkg] {
		pass.Report(gi.pos, directiveRule, gi.msg)
	}
	if len(mod.guard) == 0 {
		return
	}
	for _, f := range mod.funcsInPackage(pass.Pkg) {
		for _, fc := range flowContexts(f.Decl) {
			checkStaleGen(pass, mod, fc)
		}
	}
}

// guardedWrite is one mutation of a guarded field found in a context.
type guardedWrite struct {
	pos   token.Pos
	field types.Object // the guarded field
	base  types.Object // object the field's struct is rooted at (receiver, local, ...)
}

func checkStaleGen(pass *Pass, mod *Module, fc flowCtx) {
	pkg := pass.Pkg
	c := mod.cfgOf(pkg, fc.body)
	for _, b := range c.blocks {
		for ord, n := range b.nodes {
			for _, w := range guardedWritesIn(mod, c, b, ord, n) {
				counter := mod.guard[w.field]
				if deferredBump(c, counter, w.base) {
					// A defer registered anywhere in this context bumps
					// the counter at return; the forward must-pass scan
					// cannot see a defer that precedes the write, so it
					// is credited here (over-approximate: a defer inside
					// a branch is trusted too).
					continue
				}
				sat := func(sn ast.Node) bool { return bumpsCounter(pkg, sn, counter, w.base) }
				if !c.mustPassToExit(b, ord, sat) && !bumpsCounter(pkg, n, counter, w.base) {
					pass.Report(w.pos, "stalegen",
						"write to guarded field "+w.field.Name()+" is not followed by a bump of "+
							counter.Name()+" on every path to return")
				}
			}
		}
	}
}

// deferredBump reports whether any defer statement of the context
// bumps the counter on the base — deferred bumps run at return
// regardless of where the defer sits relative to the write.
func deferredBump(c *cfg, counter, base types.Object) bool {
	for _, b := range c.blocks {
		for _, n := range b.nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer && bumpsCounter(c.pkg, n, counter, base) {
				return true
			}
		}
	}
	return false
}

// guardedWritesIn extracts the guarded-field mutations of one owned
// node: assignments and ++/-- whose target is rooted in a guarded
// field, and builtin delete/clear on guarded storage. Writes into a
// freshly allocated struct (a local whose every reaching definition is
// &T{...}, T{...}, or new(T)) are construction, not mutation of
// visible cache state, and are exempt.
func guardedWritesIn(mod *Module, c *cfg, b *cfgBlock, ord int, n ast.Node) []guardedWrite {
	var out []guardedWrite
	add := func(target ast.Expr) {
		field, base := guardedTarget(mod, c, b, ord, target)
		if field == nil || base == nil {
			return
		}
		if freshlyAllocated(c, b, ord, base) {
			return
		}
		out = append(out, guardedWrite{pos: target.Pos(), field: field, base: base})
	}
	inspectOwned(n, func(inner ast.Node) bool {
		switch st := inner.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				add(lhs)
			}
		case *ast.IncDecStmt:
			add(st.X)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok &&
				(id.Name == "delete" || id.Name == "clear") && len(st.Args) >= 1 {
				if _, isBuiltin := c.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					add(st.Args[0])
				}
			}
		}
		return true
	})
	return out
}

// guardedTarget resolves a write target to the guarded field it
// mutates and the object the field's struct is rooted at. Two shapes
// count: a selector chain that passes through a guarded field
// (e.downT[u], e.spt.Parent — rooted at e), and a write through a
// local alias whose every reaching definition is rooted in the same
// guarded field (s := e.spt; s.Parent[u] = v).
func guardedTarget(mod *Module, c *cfg, b *cfgBlock, ord int, target ast.Expr) (field, base types.Object) {
	if f, bs := guardedChain(mod, c.pkg, target); f != nil {
		return f, bs
	}
	// Alias chase: the target digs into a local (selector or index on
	// it) whose value came from guarded storage.
	root := ast.Unparen(target)
	dug := false
	for {
		switch ex := root.(type) {
		case *ast.SelectorExpr:
			root, dug = ex.X, true
		case *ast.IndexExpr:
			root, dug = ex.X, true
		case *ast.StarExpr:
			root = ex.X
		case *ast.ParenExpr:
			root = ex.X
		default:
			goto resolved
		}
		root = ast.Unparen(root)
	}
resolved:
	id, ok := root.(*ast.Ident)
	if !ok || !dug {
		return nil, nil
	}
	obj := c.pkg.Info.ObjectOf(id)
	if obj == nil {
		return nil, nil
	}
	defs := c.defsReaching(b, ord, obj)
	if len(defs) == 0 {
		return nil, nil
	}
	for _, d := range defs {
		if d.rec.opaque || d.rec.rhs == nil {
			return nil, nil
		}
		f, bs := guardedChain(mod, c.pkg, d.rec.rhs)
		if f == nil || (field != nil && f != field) {
			return nil, nil
		}
		field, base = f, bs
	}
	return field, base
}

// guardedChain scans the selector chain of an expression for a guarded
// field; on a hit it returns the field and the chain's base object.
func guardedChain(mod *Module, pkg *Package, e ast.Expr) (field, base types.Object) {
	cur := ast.Unparen(deref(e))
	for {
		switch ex := cur.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[ex]; ok && sel.Kind() == types.FieldVal {
				if obj := sel.Obj(); mod.guard[obj] != nil {
					return obj, syntacticBase(pkg, ex.X)
				}
			}
			cur = ast.Unparen(ex.X)
		case *ast.IndexExpr:
			cur = ast.Unparen(ex.X)
		case *ast.StarExpr:
			cur = ast.Unparen(ex.X)
		case *ast.SliceExpr:
			cur = ast.Unparen(ex.X)
		default:
			return nil, nil
		}
	}
}

// bumpsCounter reports whether a node assigns or increments the given
// counter field on the given base. Defer statements are inspected in
// full (a deferred bump runs at return, which is exactly the
// obligation), other nodes without descending into function literals.
func bumpsCounter(pkg *Package, n ast.Node, counter, base types.Object) bool {
	inspect := inspectOwned
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		inspect = func(n ast.Node, f func(ast.Node) bool) { ast.Inspect(n, f) }
	}
	found := false
	isBump := func(target ast.Expr) bool {
		if storageRoot(pkg, target) != counter {
			return false
		}
		sel, ok := ast.Unparen(target).(*ast.SelectorExpr)
		return ok && syntacticBase(pkg, sel.X) == base
	}
	inspect(n, func(inner ast.Node) bool {
		if found {
			return false
		}
		switch st := inner.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if isBump(lhs) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if isBump(st.X) {
				found = true
			}
		}
		return true
	})
	return found
}

// freshlyAllocated reports whether every reaching definition of obj at
// the given point is a fresh allocation: &T{...}, T{...}, or new(T).
// Writes into such a value initialize state no reader has seen.
func freshlyAllocated(c *cfg, b *cfgBlock, ord int, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	defs := c.defsReaching(b, ord, obj)
	if len(defs) == 0 {
		return false
	}
	for _, d := range defs {
		if d.rec.opaque || d.rec.rhs == nil || !freshAllocExpr(c.pkg, d.rec.rhs) {
			return false
		}
	}
	return true
}

func freshAllocExpr(pkg *Package, e ast.Expr) bool {
	switch ex := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if ex.Op != token.AND {
			return false
		}
		_, isLit := ast.Unparen(ex.X).(*ast.CompositeLit)
		return isLit
	case *ast.CallExpr:
		if id, ok := ast.Unparen(ex.Fun).(*ast.Ident); ok && id.Name == "new" {
			_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
			return isBuiltin
		}
	}
	return false
}
