package analysis

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestPointsToFixture loads the dedicated ptsfixture module and asserts
// the solved points-to sets of named locals through the Module.PointsTo
// debug query: assignment chains, interface dispatch through a slice of
// implementations, channel send/receive, closure capture via a bound
// literal, map element flow across a function boundary, per-site extern
// objects, and field-sensitive stores.
func TestPointsToFixture(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "ptsfixture"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := BuildModule(loader)
	if err != nil {
		t.Fatal(err)
	}
	pkg := mod.Package("ptsfixture")
	if pkg == nil {
		t.Fatal("ptsfixture package missing")
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("ptsfixture does not type-check: %v", pkg.TypeErrors)
	}

	cases := []struct {
		fn, v string
		want  []string
	}{
		// Assignment chain: c still points at the origin literal.
		{"chain", "c", []string{"pts.node{}@pts.go:26"}},
		// new(T) object.
		{"fresh", "p", []string{"new(pts.node)@pts.go:34"}},
		// Slice element flow + interface value: both implementations.
		{"dispatch", "s", []string{"pts.circle{}@pts.go:41", "pts.square{}@pts.go:41"}},
		// Channel send → receive.
		{"channels", "got", []string{"pts.node{}@pts.go:52"}},
		// Closure capture through a bound literal call.
		{"capture", "kept", []string{"pts.node{}@pts.go:62"}},
		// Map element flow across buildMap's return.
		{"readMap", "v", []string{"pts.node{}@pts.go:69"}},
		{"readMap", "m", []string{"make(map[string]*pts.node)@pts.go:68"}},
		// Extern object for the unresolved stdlib callee.
		{"external", "err", []string{"extern:New"}},
		// Field-sensitive store: n sees tail, not head.
		{"fields", "n", []string{"pts.node{}@pts.go:88"}},
	}
	for _, tc := range cases {
		got := mod.PointsTo("ptsfixture", tc.fn, tc.v)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("PointsTo(%s, %s) = %v, want %v", tc.fn, tc.v, got, tc.want)
		}
	}

	// The query hook returns nil, not garbage, for unknown names.
	if got := mod.PointsTo("ptsfixture", "nosuch", "x"); got != nil {
		t.Errorf("PointsTo on unknown function = %v, want nil", got)
	}
	if got := mod.PointsTo("nosuchpkg", "chain", "c"); got != nil {
		t.Errorf("PointsTo on unknown package = %v, want nil", got)
	}
}
