package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AliasRace is the semantic sibling of sharedwrite/shardwrite: instead
// of asking "which captured *name* is written", it asks "which abstract
// *object* is reachable from two goroutines with at least one
// unsynchronized write" — so an aliased write through a second name,
// invisible to the syntactic rules, is still caught.
//
// For every function that launches goroutines (go statements resolved
// through the wgleak launch machinery: in-place literals, bound
// literals, declared callees), the rule takes each launched body's
// transitive heap-effect summary and intersects object sets across
// launch pairs. A pair races on object o when one side writes o and
// the other touches o, unless:
//
//   - either access is atomic (sync/atomic call argument);
//   - the accesses share a must-held lock (lockorder's forward solver);
//   - o is allocated inside either goroutine body or anything it calls
//     transitively (each instance allocates its own concrete object);
//   - o is the storage of a per-instance variable — a worker parameter,
//     a go1.22 per-iteration loop variable, or an atomic claim index;
//   - o's type synchronizes itself (channels, context, sync.*);
//   - both accesses are shard-keyed: a singleton object needs its
//     outermost index step keyed (distinct instances provably hit
//     distinct elements of the *same* object), a summary object is
//     discharged by any keyed step, and accesses reached through calls
//     accept the enclosing callee's parameters as keys (the caller
//     passing disjoint slices per worker is shardwrite's contract).
//
// The same launch site pairs with itself when it is multi-instance
// (launched in a loop, or one of several launches in the function).
const aliasRaceRule = "aliasrace"

var AliasRace = &Analyzer{
	Name: aliasRaceRule,
	Doc: "flags abstract heap objects reachable from two goroutines with at " +
		"least one unsynchronized, un-shard-keyed write (points-to based: " +
		"catches aliased writes through a second name that the syntactic " +
		"capture rules miss)",
	// ModWide: points-to sets fold in caller bindings and
	// interface impls from anywhere in the module.
	ModWide: true,
	Run:     runAliasRace,
}

func runAliasRace(pass *Pass) {
	mod := pass.Mod
	if mod == nil || mod.pts == nil || mod.heap == nil {
		return
	}
	for _, f := range mod.funcsInPackage(pass.Pkg) {
		checkAliasRaces(pass, f)
	}
}

// arLaunch is one resolved goroutine launch.
type arLaunch struct {
	gs    *ast.GoStmt
	body  *ast.BlockStmt
	pkg   *Package
	multi bool
	keys  map[types.Object]bool
	accs  []heapAccess
	// spans are the body spans of the launch's transitive call closure:
	// objects allocated inside them are fresh per instance.
	spans []posRange
}

func checkAliasRaces(pass *Pass, f *ModFunc) {
	mod := pass.Mod

	// Loop spans and their iteration variables, for multi-instance
	// classification and per-iteration shard keys.
	type loopInfo struct {
		from, to token.Pos
		vars     map[types.Object]bool
	}
	var loops []loopInfo
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ForStmt:
			vars := map[types.Object]bool{}
			if init, ok := st.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.Pkg.Info.Defs[id]; obj != nil {
							vars[obj] = true
						}
					}
				}
			}
			loops = append(loops, loopInfo{st.Pos(), st.End(), vars})
		case *ast.RangeStmt:
			vars := map[types.Object]bool{}
			for _, bind := range []ast.Expr{st.Key, st.Value} {
				if id, ok := bind.(*ast.Ident); ok {
					if obj := pass.Pkg.Info.Defs[id]; obj != nil {
						vars[obj] = true
					}
				}
			}
			loops = append(loops, loopInfo{st.Pos(), st.End(), vars})
		}
		return true
	})

	var launches []*arLaunch
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body, bodyPkg, _ := launchBody(mod, pass.Pkg, f.Decl, gs)
		if body == nil {
			return true
		}
		l := &arLaunch{gs: gs, body: body, pkg: bodyPkg, keys: map[types.Object]bool{}}
		for _, li := range loops {
			if li.from <= gs.Pos() && gs.Pos() <= li.to {
				l.multi = true
				for o := range li.vars {
					l.keys[o] = true
				}
			}
		}
		if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok && lit.Body == body {
			for o := range paramObjects(pass, lit) {
				l.keys[o] = true
			}
			addAtomicClaimKeys(pass, lit, l.keys)
		} else if callee := calleeFunc(pass.Pkg, gs.Call); callee != nil {
			if mf := mod.byObj[callee]; mf != nil {
				recv, params := signatureObjects(mf)
				if recv != nil {
					l.keys[recv] = true
				}
				for _, p := range params {
					if p != nil {
						l.keys[p] = true
					}
				}
			}
		} else if lit := launchedLiteral(pass.Pkg, f.Decl, gs.Call); lit != nil {
			for o := range paramObjects(pass, lit) {
				l.keys[o] = true
			}
			addAtomicClaimKeys(pass, lit, l.keys)
		}
		l.accs = mod.heap.transAccesses(body)
		l.spans = mod.heap.transSpans(body)
		launches = append(launches, l)
		return true
	})
	if len(launches) == 0 {
		return
	}
	if len(launches) >= 2 {
		for _, l := range launches {
			l.multi = true
		}
	}

	reported := map[string]bool{}
	for i, a := range launches {
		for j := i; j < len(launches); j++ {
			b := launches[j]
			if i == j && !a.multi {
				continue
			}
			checkLaunchPair(pass, f, a, b, reported)
			if i != j {
				// checkLaunchPair pairs writes of its first launch against
				// accesses of its second; a race where only the later
				// launch writes needs the sides swapped.
				checkLaunchPair(pass, f, b, a, reported)
			}
		}
	}
}

// checkLaunchPair reports objects written by one launch and touched by
// the other without synchronization or shard discharge.
func checkLaunchPair(pass *Pass, f *ModFunc, a, b *arLaunch, reported map[string]bool) {
	mod := pass.Mod
	pa := mod.pts

	// Object → accesses, per side.
	index := func(l *arLaunch) map[int][]*heapAccess {
		m := map[int][]*heapAccess{}
		for i := range l.accs {
			acc := &l.accs[i]
			for _, o := range acc.objs {
				m[o] = append(m[o], acc)
			}
		}
		return m
	}
	am, bm := index(a), index(b)

	for o, aAccs := range am {
		bAccs := bm[o]
		if len(bAccs) == 0 {
			continue
		}
		obj := pa.objs[o]
		if objPerInstance(pa, obj, a) || objPerInstance(pa, obj, b) {
			continue
		}
		if obj.typ != nil && selfSyncHeapType(obj.typ) {
			continue
		}
		for _, wa := range aAccs {
			if !wa.write {
				continue
			}
			for _, ab := range bAccs {
				if a == b && wa == ab && !wa.write {
					continue
				}
				if wa.atomic || ab.atomic {
					continue
				}
				// Field-sensitive conflict: accesses of distinct named
				// fields touch disjoint storage; "" (element/pointee)
				// overlaps everything.
				if wa.field != ab.field && wa.field != "" && ab.field != "" {
					continue
				}
				if heldIntersect(wa.held, ab.held) {
					continue
				}
				if dischargedAccess(mod, wa, a, obj) && dischargedAccess(mod, ab, b, obj) {
					continue
				}
				reportAliasRace(pass, f, a, b, obj, wa, reported)
			}
		}
	}
}

// objPerInstance reports whether o is per-goroutine data for launch l:
// allocated inside the launched body or any function the launch calls
// transitively (each instance allocates its own concrete object at
// those sites), or the storage of one of the launch's per-instance
// variables (parameters, loop variables, claim indices).
func objPerInstance(pa *ptsFacts, o *ptObj, l *arLaunch) bool {
	if o.varObj != nil && l.keys[o.varObj] {
		return true
	}
	for _, sp := range l.spans {
		if sp.from <= o.pos && o.pos <= sp.to {
			return true
		}
	}
	return false
}

// selfSyncHeapType mirrors lockorder's selfSyncField on a bare type:
// channels, contexts, and the sync/sync-atomic types synchronize their
// own access.
func selfSyncHeapType(t types.Type) bool {
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		return true
	}
	if isContextType(t) {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		if p, ok := t.(*types.Pointer); ok {
			return selfSyncHeapType(p.Elem())
		}
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil &&
		(obj.Pkg().Path() == "sync" || obj.Pkg().Path() == "sync/atomic")
}

func heldIntersect(a, b map[types.Object]bool) bool {
	for o := range a {
		if b[o] {
			return true
		}
	}
	return false
}

// dischargedAccess reports whether one access is shard-keyed for its
// launch: singleton objects need the outermost index step keyed (the
// instances provably hit distinct elements), summary objects accept any
// keyed step. Accesses reached through calls (outside the launched
// body) additionally accept the enclosing function's parameters as keys
// — the caller's per-worker slicing is shardwrite's contract to check.
func dischargedAccess(mod *Module, acc *heapAccess, l *arLaunch, obj *ptObj) bool {
	keys := l.keys
	if acc.pos < l.body.Pos() || acc.pos > l.body.End() {
		keys = map[types.Object]bool{}
		for o := range l.keys {
			keys[o] = true
		}
		if mf := mod.byObj[acc.owner]; mf != nil {
			recv, params := signatureObjects(mf)
			if recv != nil {
				keys[recv] = true
			}
			for _, p := range params {
				if p != nil {
					keys[p] = true
				}
			}
		}
	}
	outermost, any := keyedSteps(acc.pkg, acc.expr, keys)
	if obj.summary {
		return any
	}
	return outermost
}

// keyedSteps walks an access path, reporting whether the outermost
// index step mentions a key and whether any step does.
func keyedSteps(pkg *Package, e ast.Expr, keys map[types.Object]bool) (outermost, any bool) {
	first := true
	for {
		switch ex := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			hit := exprMentionsObjs(pkg, ex.Index, keys)
			if hit {
				any = true
				if first {
					outermost = true
				}
			}
			first = false
			e = ex.X
		case *ast.SelectorExpr:
			e = ex.X
		case *ast.StarExpr:
			e = ex.X
		case *ast.SliceExpr:
			e = ex.X
		default:
			return outermost, any
		}
	}
}

func exprMentionsObjs(pkg *Package, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := pkg.Info.Uses[id]
			if obj == nil {
				obj = pkg.Info.Defs[id]
			}
			if obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

func reportAliasRace(pass *Pass, f *ModFunc, a, b *arLaunch, obj *ptObj, wa *heapAccess, reported map[string]bool) {
	// Report at the write when it lives in the pass package (so the
	// finding sits on the racing line); otherwise at the launch.
	pos := wa.pos
	if wa.pkg != pass.Pkg {
		pos = a.gs.Pos()
	}
	objLabel := obj.label
	if obj.kind != objGlobal && obj.kind != objExtern {
		p := obj.pkg.Fset.Position(obj.pos)
		objLabel = fmt.Sprintf("%s (allocated at line %d)", obj.label, p.Line)
	}
	key := fmt.Sprintf("%d|%d", obj.id, pos)
	if reported[key] {
		return
	}
	reported[key] = true
	la := pass.Pkg.Fset.Position(a.gs.Pos()).Line
	lb := pass.Pkg.Fset.Position(b.gs.Pos()).Line
	where := fmt.Sprintf("goroutines launched at lines %d and %d", la, lb)
	if a == b {
		where = fmt.Sprintf("instances of the goroutine launched at line %d", la)
	}
	pass.Report(pos, aliasRaceRule, fmt.Sprintf(
		"%s both reach %s with an unsynchronized write; guard with a shared "+
			"lock, use sync/atomic, shard by a per-instance key, or document "+
			"disjointness with //replint:ignore", where, objLabel))
}
