package analysis

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseDirective hammers the single syntax authority for replint
// comment directives. The invariants hold for every input, not just
// well-formed ones:
//
//   - only //replint:-prefixed comments are directives at all;
//   - every replint-prefixed comment parses to exactly one of the four
//     kinds or a malformed-directive error, never silence;
//   - a trailing \r (CRLF sources) never changes the verdict;
//   - well-formed results carry the fields their kind promises, and
//     parsing never panics on any byte soup.
func FuzzParseDirective(f *testing.F) {
	seeds := []string{
		"//replint:ignore maprange -- iteration order irrelevant here",
		"//replint:ignore maprange,floatcmp -- two rules, one reason",
		"//replint:ignore maprange --",
		"//replint:ignore maprange",
		"//replint:ignore -- no rules",
		"//replint:ignore rule -- reason\r",
		"//replint:metadata -- wall-clock diagnostics only",
		"//replint:metadata --   ",
		"//replint:metadata",
		"//replint:floatcmp-helper",
		"//replint:floatcmp-helper trailing words",
		"//replint:guarded gen=builtGen",
		"//replint:guarded gen=builtGen\r",
		"//replint:guarded gen=",
		"//replint:guarded gen=1bad",
		"//replint:guarded gen=a gen=b",
		"//replint:guarded gen=a,gen=b",
		"//replint:guarded",
		"//replint:guarded  gen=x  ",
		"//replint:unknown gen=x",
		"//replint:",
		"// plain comment",
		"//replint:ignore a -- r\n//replint:ignore b -- s",
		"//replint:guarded gen=é",
		"//replint:ignore a\x00b -- r",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, text string) {
		pd, ok := parseDirective(text)

		trimmed := strings.TrimRight(text, "\r")
		if strings.HasPrefix(trimmed, "//replint:") != ok {
			t.Fatalf("ok=%v disagrees with //replint: prefix for %q", ok, text)
		}
		if !ok {
			if pd.Kind != "" || pd.Err != "" || pd.Rules != nil {
				t.Fatalf("non-directive %q returned non-zero result %+v", text, pd)
			}
			return
		}

		// Exactly one of (kind, error) — never both, never neither.
		if (pd.Kind == "") == (pd.Err == "") {
			t.Fatalf("parse of %q: kind=%q err=%q — want exactly one set", text, pd.Kind, pd.Err)
		}

		switch pd.Kind {
		case "ignore":
			if len(pd.Rules) == 0 || pd.Reason == "" {
				t.Fatalf("ignore directive %q parsed without rules or reason: %+v", text, pd)
			}
			for _, r := range pd.Rules {
				if strings.ContainsAny(r, " \t") {
					t.Fatalf("rule %q of %q contains whitespace", r, text)
				}
			}
		case "metadata":
			if pd.Reason == "" {
				t.Fatalf("metadata directive %q parsed without a reason", text)
			}
		case "guarded":
			if pd.Counter == "" {
				t.Fatalf("guarded directive %q parsed without a counter", text)
			}
			// The counter must be a plausible Go identifier: the field
			// resolver trusts this shape.
			for i, r := range pd.Counter {
				alpha := r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z')
				digit := '0' <= r && r <= '9'
				if !alpha && !(i > 0 && digit) {
					t.Fatalf("guarded counter %q of %q is not an identifier", pd.Counter, text)
				}
			}
			if strings.Contains(trimmed, "gen="+pd.Counter+" gen=") {
				t.Fatalf("duplicate gen= keys slipped through in %q", text)
			}
		case "helper":
			// Nothing else promised.
		case "":
			// Malformed: the error must be a complete message.
			if !strings.Contains(pd.Err, "replint directive") {
				t.Fatalf("malformed directive %q has unhelpful error %q", text, pd.Err)
			}
		default:
			t.Fatalf("unknown kind %q for %q", pd.Kind, text)
		}

		// CRLF invariance: one more trailing \r never changes the
		// outcome.
		pd2, ok2 := parseDirective(text + "\r")
		if ok2 != ok || pd2.Kind != pd.Kind || pd2.Err != pd.Err ||
			pd2.Counter != pd.Counter || pd2.Reason != pd.Reason ||
			strings.Join(pd2.Rules, ",") != strings.Join(pd.Rules, ",") {
			t.Fatalf("trailing \\r changed verdict for %q: %+v vs %+v", text, pd, pd2)
		}

		// Determinism: same input, same output.
		pd3, ok3 := parseDirective(text)
		if ok3 != ok || pd3.Kind != pd.Kind || pd3.Err != pd.Err {
			t.Fatalf("parseDirective is nondeterministic for %q", text)
		}

		_ = utf8.ValidString(text) // invalid UTF-8 must have been handled above without panicking
	})
}
