package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// defuse.go is the SSA-lite layer: an AST-level reaching-definitions
// table per function (every definition site of every local, with just
// enough classification to answer the questions the rules ask), plus
// the module-wide storage facts derived from it — most importantly
// "is this field/variable ever written by floating-point arithmetic",
// which powers the floatcmp zero-means-unset exemption.
//
// There is no CFG and no phi nodes: the table is flow-insensitive
// (all defs of an object, regardless of path). Every consumer asks
// universally quantified questions ("do ALL defs look like X") or
// existential ones ("does ANY def look like Y"), for which the
// flow-insensitive answer is the conservative one.

// defRecord classifies one definition site of a local object.
type defRecord struct {
	// rhs is the defining expression; nil for zero-value var decls and
	// opaque definitions.
	rhs ast.Expr
	// rng is set when the definition is a range-statement binding.
	rng *ast.RangeStmt
	// arith marks op-assign (+=, *=, ...) and ++/-- definitions.
	arith bool
	// opaque marks definitions the pass cannot see through: the
	// object's address was taken, so any callee may write it.
	opaque bool
}

// defUse is the per-function definitions table. Objects not present
// were never assigned in the body (parameters, receivers, captured
// outer locals).
type defUse struct {
	defs map[types.Object][]defRecord
	// params holds the function's parameters, receiver, and named
	// results — objects defined by the signature rather than a
	// statement.
	params map[types.Object]bool
}

func buildDefUse(pkg *Package, fn *ast.FuncDecl) *defUse {
	du := &defUse{defs: map[types.Object][]defRecord{}, params: map[types.Object]bool{}}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					du.params[obj] = true
				}
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)
	addFields(fn.Type.Results)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			// Literal params are definition-free locals of the
			// enclosing table; record them as params too.
			addFields(st.Type.Params)
			addFields(st.Type.Results)
		case *ast.AssignStmt:
			du.addAssign(pkg, st)
		case *ast.IncDecStmt:
			du.add(pkg, st.X, defRecord{arith: true})
		case *ast.RangeStmt:
			if st.Key != nil {
				du.add(pkg, st.Key, defRecord{rng: st})
			}
			if st.Value != nil {
				du.add(pkg, st.Value, defRecord{rng: st})
			}
		case *ast.GenDecl:
			if st.Tok != token.VAR {
				return true
			}
			for _, spec := range st.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					} else if len(vs.Values) == 1 && len(vs.Names) > 1 {
						rhs = vs.Values[0]
					}
					// rhs == nil means a zero-value declaration —
					// recorded as a non-opaque nil-rhs def.
					du.add(pkg, name, defRecord{rhs: rhs})
				}
			}
		case *ast.UnaryExpr:
			if st.Op == token.AND {
				// Address taken: all bets off for this object.
				if id, ok := ast.Unparen(st.X).(*ast.Ident); ok {
					if obj := pkg.Info.ObjectOf(id); obj != nil {
						du.defs[obj] = append(du.defs[obj], defRecord{opaque: true})
					}
				}
			}
		}
		return true
	})
	return du
}

func (du *defUse) addAssign(pkg *Package, st *ast.AssignStmt) {
	switch {
	case st.Tok == token.ASSIGN || st.Tok == token.DEFINE:
		if len(st.Lhs) == len(st.Rhs) {
			for i, lhs := range st.Lhs {
				du.add(pkg, lhs, defRecord{rhs: st.Rhs[i]})
			}
			return
		}
		// Tuple assignment: every target is defined by the one rhs
		// (a call or map/chan/type-assert comma-ok).
		for _, lhs := range st.Lhs {
			du.add(pkg, lhs, defRecord{rhs: st.Rhs[0]})
		}
	default:
		// Op-assign. Shifts and bitwise ops count as arithmetic here:
		// the question consumers ask is "can this hold anything but
		// its original sentinel", and any op-assign can.
		du.add(pkg, st.Lhs[0], defRecord{rhs: st.Rhs[0], arith: true})
	}
}

// add records a definition when the target is a bare identifier
// denoting a local object. Writes through selectors/indices are
// storage-facts territory, not local defs.
func (du *defUse) add(pkg *Package, lhs ast.Expr, rec defRecord) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pkg.Info.ObjectOf(id)
	if obj == nil {
		return
	}
	du.defs[obj] = append(du.defs[obj], rec)
}

// ---------------------------------------------------------------------
// Module-wide storage facts.

// storageFacts answers "may this storage location ever hold an
// arithmetic result" for fields, package vars, and locals, module
// wide. A storage location is a types.Object: struct fields are
// field-based (one fact per field declaration, all instances
// conflated), containers are conflated with their elements, pointers
// with their pointees — all in the conservative direction for the
// zero-means-unset exemption, which requires proving the absence of
// arithmetic writes.
type storageFacts struct {
	arith map[types.Object]bool
}

func buildStorageFacts(m *Module) *storageFacts {
	sf := &storageFacts{arith: map[types.Object]bool{}}
	// copyTo[src] = destinations that receive src's value verbatim.
	copyTo := map[types.Object][]types.Object{}
	addStore := func(pkg *Package, target types.Object, rhs ast.Expr) {
		if target == nil || rhs == nil {
			return
		}
		if arithExpr(pkg, rhs) {
			sf.arith[target] = true
			return
		}
		if src := storageRoot(pkg, rhs); src != nil && src != target {
			copyTo[src] = append(copyTo[src], target)
		}
		// Calls, literals, and constants are neutral: a JSON decode or
		// a flag.Float64Var writing a field does not make it
		// arithmetic-derived.
	}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					if st.Tok == token.ASSIGN || st.Tok == token.DEFINE {
						if len(st.Lhs) == len(st.Rhs) {
							for i, lhs := range st.Lhs {
								addStore(pkg, storageRoot(pkg, lhs), st.Rhs[i])
							}
						}
						// Tuple assigns come from calls — neutral.
						return true
					}
					if t := storageRoot(pkg, st.Lhs[0]); t != nil {
						sf.arith[t] = true
					}
				case *ast.IncDecStmt:
					if t := storageRoot(pkg, st.X); t != nil {
						sf.arith[t] = true
					}
				case *ast.ValueSpec:
					for i, name := range st.Names {
						if i < len(st.Values) {
							addStore(pkg, pkg.Info.Defs[name], st.Values[i])
						}
					}
				case *ast.CompositeLit:
					// Struct literals store into fields wherever the
					// literal ends up flowing.
					sf.addCompositeLit(pkg, st, addStore)
				}
				return true
			})
		}
	}
	// Propagate arith along copy edges to a fixpoint.
	work := make([]types.Object, 0, len(sf.arith))
	for o := range sf.arith {
		work = append(work, o)
	}
	for len(work) > 0 {
		src := work[len(work)-1]
		work = work[:len(work)-1]
		for _, dst := range copyTo[src] {
			if !sf.arith[dst] {
				sf.arith[dst] = true
				work = append(work, dst)
			}
		}
	}
	return sf
}

func (sf *storageFacts) addCompositeLit(pkg *Package, lit *ast.CompositeLit, addStore func(*Package, types.Object, ast.Expr)) {
	t := pkg.typeOf(lit)
	if t == nil {
		return
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				addStore(pkg, fieldByName(st, id.Name), kv.Value)
			}
			continue
		}
		if i < st.NumFields() {
			addStore(pkg, st.Field(i), elt)
		}
	}
}

func fieldByName(st *types.Struct, name string) types.Object {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i)
		}
	}
	return nil
}

// typeOf is Pass.TypeOf without a Pass.
func (pkg *Package) typeOf(e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pkg.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// storageRoot resolves an expression to the storage object its value
// lives in (or that a write through it lands in): an identifier's
// object, a selector's *field* object, a container for index
// expressions, the pointer variable for derefs. Returns nil for
// calls, literals, and anything else without stable storage.
func storageRoot(pkg *Package, e ast.Expr) types.Object {
	switch ex := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pkg.Info.ObjectOf(ex)
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
		return nil
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[ex]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		// Qualified identifier (pkg.Var).
		if obj, ok := pkg.Info.Uses[ex.Sel].(*types.Var); ok {
			return obj
		}
		return nil
	case *ast.IndexExpr:
		return storageRoot(pkg, ex.X)
	case *ast.StarExpr:
		return storageRoot(pkg, ex.X)
	case *ast.TypeAssertExpr:
		return storageRoot(pkg, ex.X)
	case *ast.CallExpr:
		// Conversions pass the value through.
		if len(ex.Args) == 1 {
			if tv, ok := pkg.Info.Types[ex.Fun]; ok && tv.IsType() {
				return storageRoot(pkg, ex.Args[0])
			}
		}
		return nil
	}
	return nil
}

// arithExpr reports whether the expression computes a numeric
// arithmetic result anywhere inside it (+-*/% and shifts on numeric
// operands). String concatenation does not count.
func arithExpr(pkg *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.SHL, token.SHR, token.AND_NOT:
		default:
			return true
		}
		t := pkg.typeOf(be)
		if t == nil {
			// Unknown type: assume numeric — the safe direction for an
			// exemption that must prove absence of arithmetic.
			found = true
			return false
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
			found = true
			return false
		}
		return true
	})
	return found
}

// ---------------------------------------------------------------------
// The floatcmp zero-means-unset exemption.

// zeroSentinelExempt reports whether comparing expr against literal 0
// is the zero-means-unset idiom: the compared storage is never
// written by arithmetic anywhere in the module, so 0 can only mean
// "still the zero value / explicitly configured 0", which is exact by
// construction.
//
// Fields and package vars qualify on the storage facts alone. Locals
// additionally need every reaching definition to be transparent: a
// copy from qualifying storage, a constant, or a zero-value decl —
// a call result or range binding disqualifies (the value's history
// left the function).
func zeroSentinelExempt(mod *Module, pkg *Package, fn *ast.FuncDecl, expr ast.Expr) bool {
	if mod == nil {
		return false
	}
	return storageZeroExempt(mod, pkg, fn, expr, 0)
}

func storageZeroExempt(mod *Module, pkg *Package, fn *ast.FuncDecl, expr ast.Expr, depth int) bool {
	if depth > 4 {
		return false
	}
	switch ex := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[ex]; ok && sel.Kind() == types.FieldVal {
			return !mod.facts.arith[sel.Obj()]
		}
		if obj, ok := pkg.Info.Uses[ex.Sel].(*types.Var); ok {
			return !mod.facts.arith[obj]
		}
		return false
	case *ast.Ident:
		obj := pkg.Info.ObjectOf(ex)
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		if mod.facts.arith[obj] {
			return false
		}
		if pkg.Types != nil && v.Parent() == pkg.Types.Scope() {
			return true // package-level var: facts suffice
		}
		// Local: every def must be transparent.
		if fn == nil {
			return false
		}
		var du *defUse
		if fnObj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
			du = mod.defuse[fnObj]
		}
		if du == nil {
			return false
		}
		if du.params[obj] {
			return false
		}
		recs := du.defs[obj]
		if len(recs) == 0 {
			return false
		}
		for _, rec := range recs {
			if rec.opaque || rec.arith || rec.rng != nil {
				return false
			}
			if rec.rhs == nil {
				continue // zero-value decl
			}
			if isConstRhs(pkg, rec.rhs) {
				continue
			}
			if !storageZeroExempt(mod, pkg, fn, rec.rhs, depth+1) {
				return false
			}
		}
		return true
	case *ast.IndexExpr:
		// Map/slice elements are conflated with the container only in
		// the arith direction; an element compare stays flagged.
		return false
	case *ast.CallExpr:
		if len(ex.Args) == 1 {
			if tv, ok := pkg.Info.Types[ex.Fun]; ok && tv.IsType() {
				return storageZeroExempt(mod, pkg, fn, ex.Args[0], depth+1)
			}
		}
		return false
	}
	return false
}

func isConstRhs(pkg *Package, e ast.Expr) bool {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Value != nil
	}
	return false
}

// scratchTyped reports whether the expression's chain mentions a
// value whose named type advertises pooled scratch ("Scratch" /
// "scratch" in the type name) — used by hotalloc to exempt appends
// into arena-backed storage.
func scratchTyped(pkg *Package, e ast.Expr) bool {
	for {
		switch ex := ast.Unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.SliceExpr:
			if named := namedTypeOf(pkg.typeOf(e)); named != "" && strings.Contains(strings.ToLower(named), "scratch") {
				return true
			}
			switch x := ex.(type) {
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			default:
				return false
			}
		default:
			return false
		}
	}
}

func namedTypeOf(t types.Type) string {
	for t != nil {
		switch tt := t.(type) {
		case *types.Named:
			return tt.Obj().Name()
		case *types.Pointer:
			t = tt.Elem()
		default:
			return ""
		}
	}
	return ""
}
