package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WGLeak checks goroutine launches for a join or cancellation
// discipline, combining the callgraph and polls summaries with the
// flow-sensitive must-pass query:
//
//   - wg.Add inside the launched goroutine races the launcher's Wait
//     and is reported outright; Add belongs before `go`.
//   - A goroutine that calls wg.Done needs a matching Add in the
//     launcher before the launch, the Done should be deferred (a panic
//     between launch and a trailing Done leaks the count), and — for a
//     WaitGroup local to the launcher — Wait must post-dominate the
//     launch: an early return between `go` and `Wait` leaks the
//     goroutine. Field-held WaitGroups are joined elsewhere
//     (Shutdown-style), so only the pairing is required.
//   - A goroutine with no WaitGroup needs another reason to terminate:
//     it polls cancellation (the ctxstride polls summary, transitive
//     through calls), drains a channel (range over one), or signals a
//     channel the launcher consumes (send/close of a channel the
//     launcher receives from — the done-channel idiom).
//
// Anything else can outlive every path that launched it and is
// reported at the go statement.
var WGLeak = &Analyzer{
	Name: "wgleak",
	Doc: "goroutines must be joined or cancellable: WaitGroup Add/Done/Wait " +
		"pairing across launcher and goroutine (Wait must post-dominate the " +
		"launch for locals), or cancellation polling, or a done-channel the " +
		"launcher consumes",
	Run: runWGLeak,
}

func runWGLeak(pass *Pass) {
	mod := pass.Mod
	if mod == nil {
		return
	}
	for _, f := range mod.funcsInPackage(pass.Pkg) {
		for _, fc := range flowContexts(f.Decl) {
			checkWGLeak(pass, mod, f, fc)
		}
	}
}

func checkWGLeak(pass *Pass, mod *Module, f *ModFunc, fc flowCtx) {
	pkg := pass.Pkg
	c := mod.cfgOf(pkg, fc.body)
	for _, b := range c.blocks {
		for ord, n := range b.nodes {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				continue
			}
			checkLaunch(pass, mod, f, fc, c, b, ord, gs)
		}
	}
}

// launchBody resolves what a go statement runs: a function literal
// (written in place or bound to a single-definition local) or the body
// of a declared function/method via the callgraph. argOf maps a callee
// parameter object back to the caller-side argument expression; nil
// when unresolvable.
func launchBody(mod *Module, pkg *Package, decl *ast.FuncDecl, gs *ast.GoStmt) (body *ast.BlockStmt, bodyPkg *Package, argOf func(types.Object) ast.Expr) {
	if lit := launchedLiteral(pkg, decl, gs.Call); lit != nil {
		params := map[types.Object]ast.Expr{}
		if lit.Type.Params != nil {
			i := 0
			for _, fl := range lit.Type.Params.List {
				for _, name := range fl.Names {
					if obj := pkg.Info.Defs[name]; obj != nil && i < len(gs.Call.Args) {
						params[obj] = gs.Call.Args[i]
					}
					i++
				}
			}
		}
		return lit.Body, pkg, func(o types.Object) ast.Expr { return params[o] }
	}
	callee := calleeFunc(pkg, gs.Call)
	if callee == nil {
		return nil, nil, nil
	}
	mf := mod.FuncOf(callee)
	if mf == nil {
		return nil, nil, nil
	}
	_, params := signatureObjects(mf)
	argmap := map[types.Object]ast.Expr{}
	for i, p := range params {
		if p != nil && i < len(gs.Call.Args) {
			argmap[p] = gs.Call.Args[i]
		}
	}
	return mf.Decl.Body, mf.Pkg, func(o types.Object) ast.Expr { return argmap[o] }
}

func checkLaunch(pass *Pass, mod *Module, f *ModFunc, fc flowCtx, c *cfg, b *cfgBlock, ord int, gs *ast.GoStmt) {
	pkg := pass.Pkg
	body, bodyPkg, argOf := launchBody(mod, pkg, f.Decl, gs)
	if body == nil {
		return // function value or external: nothing to inspect
	}

	// WaitGroup usage inside the goroutine.
	var doneWG []types.Object // storage roots of wg.Done receivers
	doneDeferred := map[types.Object]bool{}
	addInside := false
	walkBody := func(visit func(inDefer bool, call *ast.CallExpr)) {
		var walk func(n ast.Node, inDefer bool)
		walk = func(n ast.Node, inDefer bool) {
			ast.Inspect(n, func(inner ast.Node) bool {
				switch st := inner.(type) {
				case *ast.DeferStmt:
					visit(true, st.Call)
					walk(st.Call.Fun, true)
					return false
				case *ast.CallExpr:
					visit(inDefer, st)
				}
				return true
			})
		}
		walk(body, false)
	}
	walkBody(func(inDefer bool, call *ast.CallExpr) {
		typ, method, recv := syncCall(bodyPkg, call)
		if typ != "WaitGroup" {
			return
		}
		wg := storageRoot(bodyPkg, recv)
		if wg == nil {
			return
		}
		switch method {
		case "Add":
			addInside = true
		case "Done":
			doneWG = append(doneWG, wg)
			if inDefer {
				doneDeferred[wg] = true
			}
		}
	})

	if addInside {
		pass.Report(gs.Pos(), "wgleak",
			"wg.Add inside the launched goroutine races the launcher's Wait; Add before the go statement")
	}

	if len(doneWG) > 0 {
		checkDonePairing(pass, mod, f, c, b, ord, gs, doneWG, doneDeferred, argOf)
		return
	}

	// No WaitGroup: the goroutine needs another termination story.
	if pollsInBody(mod, bodyPkg, body) {
		return
	}
	if rangesOverChannel(bodyPkg, body) {
		return
	}
	if joinedByChannel(pass, mod, f, fc, bodyPkg, body, argOf) {
		return
	}
	pass.Report(gs.Pos(), "wgleak",
		"goroutine has no join (WaitGroup/done channel) and never polls cancellation; it can outlive every caller")
}

// checkDonePairing validates the launcher side of a Done-calling
// goroutine: an Add before the launch, and for launcher-local
// WaitGroups a Wait post-dominating it.
func checkDonePairing(pass *Pass, mod *Module, f *ModFunc, c *cfg, b *cfgBlock, ord int, gs *ast.GoStmt,
	doneWG []types.Object, doneDeferred map[types.Object]bool, argOf func(types.Object) ast.Expr) {
	pkg := pass.Pkg
	for _, wg := range doneWG {
		if !doneDeferred[wg] {
			pass.Report(gs.Pos(), "wgleak",
				"wg.Done in the goroutine is not deferred; a panic before it would leak the Wait count")
		}
		// Map a callee-parameter WaitGroup back to the caller's argument.
		launcherWG := wg
		if arg := argOf(wg); arg != nil {
			launcherWG = storageRoot(pkg, deref(arg))
			if launcherWG == nil {
				continue
			}
		}
		if !launcherHasAdd(pkg, f.Decl.Body, gs, launcherWG) {
			pass.Report(gs.Pos(), "wgleak",
				"goroutine calls Done on a WaitGroup the launcher never Adds to before the launch")
			continue
		}
		if v, isVar := launcherWG.(*types.Var); isVar && !v.IsField() {
			waitSat := func(n ast.Node) bool { return callsWGMethod(pkg, n, launcherWG, "Wait") }
			if !c.mustPassToExit(b, ord, waitSat) {
				pass.Report(gs.Pos(), "wgleak",
					"Wait on the local WaitGroup does not post-dominate this launch; an early return leaks the goroutine")
			}
		}
	}
}

// launcherHasAdd reports whether the launcher's body calls Add on the
// same WaitGroup storage before the go statement's position.
func launcherHasAdd(pkg *Package, body *ast.BlockStmt, gs *ast.GoStmt, wg types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= gs.Pos() {
			return true
		}
		typ, method, recv := syncCall(pkg, call)
		if typ == "WaitGroup" && method == "Add" && storageRoot(pkg, recv) == wg {
			found = true
		}
		return true
	})
	return found
}

// callsWGMethod reports whether the node calls the given WaitGroup
// method on the given storage (defers included: a deferred Wait still
// joins).
func callsWGMethod(pkg *Package, n ast.Node, wg types.Object, method string) bool {
	found := false
	ast.Inspect(n, func(inner ast.Node) bool {
		if found {
			return false
		}
		if _, ok := inner.(*ast.FuncLit); ok {
			return false
		}
		call, ok := inner.(*ast.CallExpr)
		if !ok {
			return true
		}
		typ, meth, recv := syncCall(pkg, call)
		if typ == "WaitGroup" && meth == method && storageRoot(pkg, recv) == wg {
			found = true
		}
		return true
	})
	return found
}

// rangesOverChannel reports whether the body drains a channel with a
// range loop — the worker-pool shape, which terminates when the
// producer closes the channel.
func rangesOverChannel(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pkg.typeOf(rs.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				found = true
			}
		}
		return true
	})
	return found
}

// joinedByChannel reports the done-channel idiom: the goroutine sends
// to or closes some channel, and the launcher receives from the same
// channel storage. Callee parameters are mapped back to launch-site
// arguments first.
func joinedByChannel(pass *Pass, mod *Module, f *ModFunc, fc flowCtx, bodyPkg *Package, body *ast.BlockStmt,
	argOf func(types.Object) ast.Expr) bool {
	pkg := pass.Pkg
	// Channels the goroutine signals on.
	var signaled []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt:
			if ch := storageRoot(bodyPkg, st.Chan); ch != nil {
				signaled = append(signaled, ch)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "close" && len(st.Args) == 1 {
				if _, isBuiltin := bodyPkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					if ch := storageRoot(bodyPkg, st.Args[0]); ch != nil {
						signaled = append(signaled, ch)
					}
				}
			}
		}
		return true
	})
	if len(signaled) == 0 {
		return false
	}
	// Channels the launcher context receives from (<-ch, range ch, and
	// select comm clauses all surface as UnaryExpr or RangeStmt).
	received := map[types.Object]bool{}
	ast.Inspect(fc.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.UnaryExpr:
			if st.Op == token.ARROW {
				if ch := storageRoot(pkg, st.X); ch != nil {
					received[ch] = true
				}
			}
		case *ast.RangeStmt:
			if t := pkg.typeOf(st.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if ch := storageRoot(pkg, st.X); ch != nil {
						received[ch] = true
					}
				}
			}
		}
		return true
	})
	for _, ch := range signaled {
		launcherCh := ch
		if arg := argOf(ch); arg != nil {
			launcherCh = storageRoot(pkg, arg)
			if launcherCh == nil {
				continue
			}
		}
		if received[launcherCh] {
			return true
		}
	}
	return false
}
