package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FloatCmp flags exact equality on floating-point cost/delay values:
// `==`, `!=`, and `switch` on a float expression. Accumulated float64
// costs differ in the last bits depending on summation order, so exact
// equality silently turns into "equal only on the path the serial code
// happened to take" — the root cause of epsilon-less comparisons
// breaking the parallel determinism contract.
//
// Exemptions:
//
//   - functions designated with a //replint:floatcmp-helper doc
//     directive — the codebase's blessed exact-compare helpers
//     (dominance tests and heap orderings, where *bitwise* equality is
//     the semantics: both sides derive from identical operation
//     sequences and the compare is a deterministic tie-break);
//   - comparisons against an infinity sentinel (math.Inf(...) calls or
//     identifiers containing "Inf"), which are exact by construction;
//   - comparisons where both operands are compile-time constants;
//   - comparisons inside a function literal passed directly to a sort
//     or slices call: a comparator must induce a strict weak ordering,
//     and an epsilon tie there would break transitivity — exact
//     comparison is the only correct choice in that position;
//   - (module mode only) comparisons against literal 0 where the
//     compared storage is never written by arithmetic anywhere in the
//     module — the zero-means-unset idiom for optional config fields.
//     0 there can only be the zero value or an explicitly stored
//     constant, both exact by construction; the def-use pass proves
//     the absence of arithmetic writes (see zeroSentinelExempt).
const floatCmpRule = "floatcmp"

var FloatCmp = &Analyzer{
	Name: floatCmpRule,
	Doc: "flags ==/!=/switch on float64 expressions outside designated " +
		"//replint:floatcmp-helper functions; use an epsilon compare, or " +
		"designate the function if bitwise equality is the intended semantics",
	// ModWide: the zero-sentinel exemption reads module-global
	// arithmetic-write facts: any package may op-assign a field.
	ModWide: true,
	Run:     runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		// Collect designated-helper body ranges first.
		var helpers []*ast.FuncDecl
		for _, d := range file.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && isHelperFunc(fn) {
				helpers = append(helpers, fn)
			}
		}
		inHelper := func(pos token.Pos) bool {
			for _, h := range helpers {
				if h.Body != nil && h.Body.Pos() <= pos && pos <= h.Body.End() {
					return true
				}
			}
			return false
		}
		// Function literals handed straight to sort/slices: exact
		// comparison is mandatory there, not a hazard.
		var comparators [][2]token.Pos
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSortCall(call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					comparators = append(comparators, [2]token.Pos{lit.Pos(), lit.End()})
				}
			}
			return true
		})
		inComparator := func(pos token.Pos) bool {
			for _, r := range comparators {
				if r[0] <= pos && pos <= r[1] {
					return true
				}
			}
			return false
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch ex := n.(type) {
			case *ast.BinaryExpr:
				if ex.Op != token.EQL && ex.Op != token.NEQ {
					return true
				}
				if !isFloat(pass.TypeOf(ex.X)) && !isFloat(pass.TypeOf(ex.Y)) {
					return true
				}
				if inHelper(ex.Pos()) || inComparator(ex.Pos()) || isInfSentinel(ex.X) || isInfSentinel(ex.Y) {
					return true
				}
				if isConstExpr(pass, ex.X) && isConstExpr(pass, ex.Y) {
					return true
				}
				if zeroUnsetCompare(pass, file, ex) {
					return true
				}
				pass.Report(ex.OpPos, floatCmpRule, fmt.Sprintf(
					"exact %s on float operands %s and %s; compare with an epsilon or designate the enclosing function //replint:floatcmp-helper",
					ex.Op, exprString(ex.X), exprString(ex.Y)))
			case *ast.SwitchStmt:
				if ex.Tag == nil || !isFloat(pass.TypeOf(ex.Tag)) {
					return true
				}
				if inHelper(ex.Pos()) {
					return true
				}
				pass.Report(ex.Switch, floatCmpRule, fmt.Sprintf(
					"switch on float expression %s compares cases exactly; use if/else with epsilon compares",
					exprString(ex.Tag)))
			}
			return true
		})
	}
}

// zeroUnsetCompare recognizes the zero-means-unset idiom in module
// mode: one operand is the literal constant 0 and the other is
// storage the whole-module facts prove is never arithmetic-written.
func zeroUnsetCompare(pass *Pass, file *ast.File, ex *ast.BinaryExpr) bool {
	if pass.Mod == nil {
		return false
	}
	var other ast.Expr
	switch {
	case isZeroConst(pass, ex.X):
		other = ex.Y
	case isZeroConst(pass, ex.Y):
		other = ex.X
	default:
		return false
	}
	fn := enclosingFuncDecl(file, int(ex.Pos()))
	return zeroSentinelExempt(pass.Mod, pass.Pkg, fn, other)
}

func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isInfSentinel recognizes ±Inf sentinels: math.Inf calls and
// identifiers whose name advertises an infinity (negInf, posInf, ...).
func isInfSentinel(e ast.Expr) bool {
	switch ex := e.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(ex.Name), "inf")
	case *ast.CallExpr:
		if sel, ok := ex.Fun.(*ast.SelectorExpr); ok {
			if pkg, ok := sel.X.(*ast.Ident); ok {
				return pkg.Name == "math" && sel.Sel.Name == "Inf"
			}
		}
	case *ast.UnaryExpr:
		return isInfSentinel(ex.X)
	case *ast.ParenExpr:
		return isInfSentinel(ex.X)
	}
	return false
}
