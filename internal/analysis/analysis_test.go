package analysis

import (
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The golden fixture module under testdata/src/fixture exercises every
// analyzer in both directions: lines marked `// want <rule>` must yield
// an unsuppressed finding of that rule, lines marked
// `// wantsuppressed <rule>` must yield a finding covered by an
// adjacent //replint:ignore directive, and no other line may yield
// anything. The fixture has its own go.mod so its packages live under
// fixture/internal/... and the maprange package filter applies to them
// exactly as it does to the real tree.

var wantRE = regexp.MustCompile(`//\s*want(suppressed)?\s+([a-z]+(?:,[a-z]+)*)\s*$`)

func TestAnalyzersOnFixtures(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	// Module mode, exactly as cmd/replint runs: the whole fixture
	// module is loaded and summarized once, so the interprocedural
	// rules (detflow, ctxstride, hotalloc, shardwrite) see the same
	// call-graph and taint facts they would in the real tree.
	mod, err := BuildModule(loader)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no fixture packages found under testdata/src/fixture")
	}
	rulesSeen := map[string]bool{}
	for _, path := range paths {
		t.Run(strings.TrimPrefix(path, "fixture/"), func(t *testing.T) {
			pkg := mod.Package(path)
			if pkg == nil {
				t.Fatalf("package %s missing from the fixture module", path)
			}
			if len(pkg.TypeErrors) > 0 {
				t.Fatalf("fixture does not type-check: %v", pkg.TypeErrors)
			}

			type key struct {
				file string
				line int
				rule string
			}
			// Parse the expectations out of the fixture sources.
			want := map[key]bool{} // key -> expected Suppressed flag
			for file, src := range pkg.Src {
				for i, line := range strings.Split(string(src), "\n") {
					m := wantRE.FindStringSubmatch(line)
					if m == nil {
						continue
					}
					for _, rule := range strings.Split(m[2], ",") {
						want[key{file, i + 1, rule}] = m[1] != ""
					}
				}
			}
			if len(want) == 0 {
				t.Fatal("fixture package declares no // want expectations")
			}

			got := map[key]Finding{}
			for _, f := range mod.RunPackage(pkg, All()) {
				got[key{f.Pos.Filename, f.Pos.Line, f.Rule}] = f
				rulesSeen[f.Rule] = true
			}

			// Deterministic error order for readable failures.
			keys := make([]key, 0, len(want))
			for k := range want {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				a, b := keys[i], keys[j]
				if a.file != b.file {
					return a.file < b.file
				}
				if a.line != b.line {
					return a.line < b.line
				}
				return a.rule < b.rule
			})
			for _, k := range keys {
				suppressed := want[k]
				f, ok := got[k]
				if !ok {
					t.Errorf("%s:%d: expected %s finding, analyzer reported nothing",
						filepath.Base(k.file), k.line, k.rule)
					continue
				}
				if f.Suppressed != suppressed {
					t.Errorf("%s:%d: %s finding has Suppressed=%v, want %v",
						filepath.Base(k.file), k.line, k.rule, f.Suppressed, suppressed)
				}
				if suppressed && f.Reason == "" {
					t.Errorf("%s:%d: suppressed %s finding lost its directive reason",
						filepath.Base(k.file), k.line, k.rule)
				}
				delete(got, k)
			}
			for k, f := range got {
				t.Errorf("%s:%d: unexpected %s finding: %s",
					filepath.Base(k.file), k.line, k.rule, f.Msg)
			}
		})
	}
	// Every shipped analyzer (plus the directive pseudo-rule) must be
	// exercised by at least one fixture, in both directions where the
	// wants say so.
	for _, a := range All() {
		if !rulesSeen[a.Name] {
			t.Errorf("no fixture exercises rule %s", a.Name)
		}
	}
	if !rulesSeen[directiveRule] {
		t.Error("no fixture exercises the malformed-directive report")
	}
}
