package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

const sharedWriteRule = "sharedwrite"

// SharedWrite flags writes to captured state inside worker function
// literals — closures launched with `go` or handed to a level/shard
// runner (runLevel and friends). A worker that assigns through a
// captured pointer, slice, or map races with its siblings unless the
// written locations are provably disjoint.
//
// The one disjointness argument the analyzer accepts structurally is
// the partitioned-write idiom this codebase is built on: every index on
// the path to the written location is the worker's own parameter
// (`a.Arr[id] = v` inside `func(id CellID) {...}` passed to runLevel).
// The runner hands each worker a distinct id, so writes cannot collide.
// Any other captured write needs an explicit //replint:ignore with the
// disjointness reasoning spelled out.
var SharedWrite = &Analyzer{
	Name: sharedWriteRule,
	Doc: "flags assignments to captured variables inside goroutine/level-worker " +
		"function literals, except writes indexed solely by the worker's own " +
		"parameter (the partitioned-write idiom)",
	Run: runSharedWrite,
}

// workerCalleeRE matches the names of functions that fan a callback out
// across goroutines: a function literal passed to one of these runs
// concurrently even though no `go` keyword appears at the call site.
var workerCalleeRE = regexp.MustCompile(`^run(Level|Shard|Chunk|Span|Worker)s?$`)

func runSharedWrite(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, w := range collectWorkers(pass, file) {
			checkWorker(pass, w)
		}
	}
}

// collectWorkers finds the function literals that run concurrently:
// launched in a go statement, passed directly to a worker-spawning
// callee, or bound to a variable that is later launched or passed.
func collectWorkers(pass *Pass, file *ast.File) []*ast.FuncLit {
	// First pass: record funcLits used directly and the objects of
	// identifiers used in a worker position.
	direct := map[*ast.FuncLit]bool{}
	workerObjs := map[types.Object]bool{}
	markArg := func(arg ast.Expr) {
		switch a := arg.(type) {
		case *ast.FuncLit:
			direct[a] = true
		case *ast.Ident:
			if obj := pass.ObjectOf(a); obj != nil {
				workerObjs[obj] = true
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			markArg(st.Call.Fun)
		case *ast.CallExpr:
			name := ""
			switch fun := st.Fun.(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if workerCalleeRE.MatchString(name) {
				for _, arg := range st.Args {
					markArg(arg)
				}
			}
		}
		return true
	})
	// Second pass: resolve marked objects to the funcLits bound to them.
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok || i >= len(st.Lhs) {
					continue
				}
				if id, ok := st.Lhs[i].(*ast.Ident); ok {
					if obj := pass.ObjectOf(id); obj != nil && workerObjs[obj] {
						direct[lit] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range st.Values {
				lit, ok := v.(*ast.FuncLit)
				if !ok || i >= len(st.Names) {
					continue
				}
				if obj := pass.ObjectOf(st.Names[i]); obj != nil && workerObjs[obj] {
					direct[lit] = true
				}
			}
		}
		return true
	})
	var out []*ast.FuncLit
	ast.Inspect(file, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && direct[lit] {
			out = append(out, lit)
		}
		return true
	})
	return out
}

// checkWorker flags captured writes inside one worker funcLit.
func checkWorker(pass *Pass, worker *ast.FuncLit) {
	params := paramObjects(pass, worker)
	var walk func(n ast.Node, params map[types.Object]bool)
	walk = func(n ast.Node, params map[types.Object]bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch st := m.(type) {
			case *ast.FuncLit:
				if st == worker {
					return true
				}
				// A nested literal inherits the worker's concurrency;
				// its own parameters also become blessed indices.
				inner := map[types.Object]bool{}
				for o := range params {
					inner[o] = true
				}
				for o := range paramObjects(pass, st) {
					inner[o] = true
				}
				walk(st.Body, inner)
				return false
			case *ast.AssignStmt:
				if st.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range st.Lhs {
					checkWrite(pass, worker, lhs, params)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, worker, st.X, params)
			}
			return true
		})
	}
	walk(worker.Body, params)
}

// checkWrite reports lhs when its root variable is captured from
// outside the worker and the write is not parameter-partitioned.
func checkWrite(pass *Pass, worker *ast.FuncLit, lhs ast.Expr, params map[types.Object]bool) {
	root := rootObject(pass, lhs)
	if root == nil || root.Name() == "_" {
		return
	}
	// Declared inside the worker literal: worker-local, fine.
	if worker.Pos() <= root.Pos() && root.Pos() < worker.End() {
		return
	}
	if partitionedWrite(pass, lhs, params) {
		return
	}
	pass.Report(lhs.Pos(), sharedWriteRule, fmt.Sprintf(
		"worker goroutine writes captured %s via %s; index every step by the worker's own parameter or document disjointness with //replint:ignore",
		root.Name(), exprString(lhs)))
}

// partitionedWrite reports whether every index on the LHS path is an
// identifier denoting one of the worker's parameters, making sibling
// workers' writes disjoint by construction. A path with no index at
// all (plain field or variable write) is not partitioned.
func partitionedWrite(pass *Pass, lhs ast.Expr, params map[types.Object]bool) bool {
	sawIndex := false
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			id, ok := e.Index.(*ast.Ident)
			if !ok {
				return false
			}
			obj := pass.ObjectOf(id)
			if obj == nil || !params[obj] {
				return false
			}
			sawIndex = true
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.Ident:
			return sawIndex
		default:
			return false
		}
	}
}

// paramObjects returns the objects declared by the funcLit's parameters.
func paramObjects(pass *Pass, lit *ast.FuncLit) map[types.Object]bool {
	out := map[types.Object]bool{}
	if lit.Type == nil || lit.Type.Params == nil {
		return out
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.ObjectOf(name); obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}
