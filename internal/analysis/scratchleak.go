package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

const scratchLeakRule = "scratchleak"

// ScratchLeak flags pooled values that can escape their pool: a value
// obtained from sync.Pool.Get or from a pooled scratch constructor
// (functions named getScratch, as in internal/embed's solver scratch)
// must be released — via Put/putScratch — on every path to function
// exit, or the pool degrades to plain allocation and the GC churn the
// pool exists to remove comes back under load.
//
// The check is a conservative intraprocedural must-release walk rooted
// at the acquisition: a `defer put(x)` satisfies it immediately;
// otherwise every return reachable after the acquisition must follow a
// release, and falling off the end of the function (or of a loop body
// that re-acquires next iteration) unreleased is a leak. Loop bodies
// after the acquisition point are treated as possibly skipped. Function
// literals are analyzed as separate functions (a release inside a
// spawned goroutine does not release the parent's value).
var ScratchLeak = &Analyzer{
	Name: scratchLeakRule,
	Doc: "flags sync.Pool.Get / getScratch values not released (Put/putScratch) " +
		"on every path to function exit; prefer `defer put(x)` right after the Get",
	Run: runScratchLeak,
}

func runScratchLeak(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkScratchFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkScratchFunc(pass, fn.Body)
			}
			return true
		})
	}
}

// acquisition is one pooled value bound to a local variable.
type acquisition struct {
	obj         types.Object
	stmt        *ast.AssignStmt
	source      string
	releaseHint string
}

// checkScratchFunc runs the must-release analysis over one function
// body (excluding nested function literals, which are checked on their
// own).
func checkScratchFunc(pass *Pass, body *ast.BlockStmt) {
	for _, acq := range findAcquisitions(pass, body) {
		spine, inLoop := findSpine(body, acq.stmt)
		if spine == nil {
			continue // unreachable given findAcquisitions, defensive
		}
		w := &releaseWalk{pass: pass, acq: acq}
		released := false
		terminated := false
		// Walk the statement suffix at each nesting level from the
		// acquisition outward; every statement visited is dominated by
		// the acquisition, so the must-release state is meaningful.
		for level := len(spine) - 1; level >= 0; level-- {
			released, terminated = w.stmts(spine[level].rest, released)
			if terminated || w.deferred {
				return
			}
			if inLoop[level] {
				// Falling off a loop-body level: the next iteration
				// re-acquires into the same variable, so this
				// iteration's value must already be released.
				if !released {
					pass.Report(acq.stmt.Pos(), scratchLeakRule, fmt.Sprintf(
						"%s obtained from %s leaks across loop iterations; release it before the loop body ends or use `defer %s`",
						acq.obj.Name(), acq.source, acq.releaseHint))
				}
				return
			}
		}
		if !released {
			pass.Report(acq.stmt.Pos(), scratchLeakRule, fmt.Sprintf(
				"%s obtained from %s is not released on every path; add `defer %s` after the Get",
				acq.obj.Name(), acq.source, acq.releaseHint))
		}
	}
}

// spineLevel is one nesting level on the path from the function body to
// the acquisition: the statements following the acquisition (or the
// construct containing it) in that level's statement list.
type spineLevel struct {
	rest []ast.Stmt
}

// findSpine locates the acquisition statement and returns, outermost
// first, the statement suffixes after it at each nesting level, plus a
// parallel slice marking levels whose suffix belongs to a loop body.
// Function literals are not descended into.
func findSpine(body *ast.BlockStmt, target ast.Stmt) ([]spineLevel, []bool) {
	var spine []spineLevel
	var inLoop []bool
	var search func(list []ast.Stmt, loop bool) bool
	search = func(list []ast.Stmt, loop bool) bool {
		for i, s := range list {
			if s == target {
				spine = append(spine, spineLevel{rest: list[i+1:]})
				inLoop = append(inLoop, loop)
				return true
			}
			found := false
			switch st := s.(type) {
			case *ast.BlockStmt:
				found = search(st.List, false)
			case *ast.IfStmt:
				found = search(st.Body.List, false)
				if !found && st.Else != nil {
					found = search([]ast.Stmt{st.Else}, false)
				}
			case *ast.ForStmt:
				found = search(st.Body.List, true)
			case *ast.RangeStmt:
				found = search(st.Body.List, true)
			case *ast.SwitchStmt:
				found = searchClauses(st.Body, search)
			case *ast.TypeSwitchStmt:
				found = searchClauses(st.Body, search)
			case *ast.SelectStmt:
				found = searchClauses(st.Body, search)
			case *ast.LabeledStmt:
				found = search([]ast.Stmt{st.Stmt}, loop)
				if found {
					continue // suffix already recorded at this level
				}
			}
			if found {
				spine = append(spine, spineLevel{rest: list[i+1:]})
				inLoop = append(inLoop, false)
				return true
			}
		}
		return false
	}
	if !search(body.List, false) {
		return nil, nil
	}
	// search built the spine innermost-first; reverse to outermost-first.
	for i, j := 0, len(spine)-1; i < j; i, j = i+1, j-1 {
		spine[i], spine[j] = spine[j], spine[i]
		inLoop[i], inLoop[j] = inLoop[j], inLoop[i]
	}
	return spine, inLoop
}

func searchClauses(body *ast.BlockStmt, search func([]ast.Stmt, bool) bool) bool {
	for _, c := range body.List {
		switch cl := c.(type) {
		case *ast.CaseClause:
			if search(cl.Body, false) {
				return true
			}
		case *ast.CommClause:
			if search(cl.Body, false) {
				return true
			}
		}
	}
	return false
}

// findAcquisitions scans the body (skipping nested FuncLits) for
// `x := getScratch()` / `x := pool.Get().(*T)` bindings.
func findAcquisitions(pass *Pass, body *ast.BlockStmt) []*acquisition {
	var out []*acquisition
	inspectSkippingFuncLits(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		src, hint := acquisitionSource(pass, as.Rhs[0], id.Name)
		if src == "" {
			return
		}
		obj := pass.ObjectOf(id)
		if obj == nil {
			return
		}
		out = append(out, &acquisition{obj: obj, stmt: as, source: src, releaseHint: hint})
	})
	return out
}

// acquisitionSource classifies the right-hand side of a binding,
// unwrapping a type assertion around a sync.Pool Get.
func acquisitionSource(pass *Pass, rhs ast.Expr, varName string) (source, hint string) {
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ta.X
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "getScratch" {
			return "getScratch()", "putScratch(" + varName + ")"
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Get" && isSyncPool(pass, fun.X) {
			return exprString(fun.X) + ".Get()", exprString(fun.X) + ".Put(" + varName + ")"
		}
	}
	return "", ""
}

func isSyncPool(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isReleaseCall reports whether the call releases the acquired value:
// putScratch(x) or pool.Put(x).
func isReleaseCall(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	if len(call.Args) == 0 {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.ObjectOf(arg) != obj {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "putScratch"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Put" && isSyncPool(pass, fun.X)
	}
	return false
}

// releaseWalk carries the must-release analysis for one acquisition.
// Every statement it visits is dominated by the acquisition.
type releaseWalk struct {
	pass     *Pass
	acq      *acquisition
	deferred bool
}

func (w *releaseWalk) block(b *ast.BlockStmt, released bool) (bool, bool) {
	if b == nil {
		return released, false
	}
	return w.stmts(b.List, released)
}

// stmts walks a statement list with the entry must-release state. It
// returns the state at the end of the list and whether every path
// through it terminated (returned).
func (w *releaseWalk) stmts(list []ast.Stmt, released bool) (bool, bool) {
	for _, s := range list {
		var terminated bool
		released, terminated = w.stmt(s, released)
		if terminated || w.deferred {
			return released, terminated
		}
	}
	return released, false
}

func (w *releaseWalk) stmt(s ast.Stmt, released bool) (endReleased, terminated bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && isReleaseCall(w.pass, call, w.acq.obj) {
			return true, false
		}
		return released, false
	case *ast.DeferStmt:
		if isReleaseCall(w.pass, st.Call, w.acq.obj) {
			w.deferred = true
			return true, false
		}
		return released, false
	case *ast.ReturnStmt:
		if !released {
			w.pass.Report(st.Pos(), scratchLeakRule, fmt.Sprintf(
				"return without releasing %s (from %s); release it or use `defer %s`",
				w.acq.obj.Name(), w.acq.source, w.acq.releaseHint))
		}
		return released, true
	case *ast.IfStmt:
		if st.Init != nil {
			released, _ = w.stmt(st.Init, released)
		}
		r1, t1 := w.block(st.Body, released)
		r2, t2 := released, false
		if st.Else != nil {
			r2, t2 = w.stmt(st.Else, released)
		}
		if t1 && t2 {
			return released, true
		}
		// A terminated branch imposes no constraint on the join.
		return (t1 || r1) && (t2 || r2), false
	case *ast.BlockStmt:
		return w.stmts(st.List, released)
	case *ast.ForStmt:
		// The body may run zero times: effects inside do not count
		// toward the exit state, but returns inside are still checked.
		w.block(st.Body, released)
		return released, false
	case *ast.RangeStmt:
		w.block(st.Body, released)
		return released, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var bodies []*ast.BlockStmt
		var hasDefault bool
		collectClauses(st, &bodies, &hasDefault)
		all := true
		for _, b := range bodies {
			r, t := w.stmts(b.List, released)
			if !t {
				all = all && r
			}
		}
		if !hasDefault {
			all = all && released
		}
		return all, false
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, released)
	default:
		return released, false
	}
}

// collectClauses flattens switch/select clauses into pseudo-blocks.
func collectClauses(s ast.Stmt, bodies *[]*ast.BlockStmt, hasDefault *bool) {
	var body *ast.BlockStmt
	switch st := s.(type) {
	case *ast.SwitchStmt:
		body = st.Body
	case *ast.TypeSwitchStmt:
		body = st.Body
	case *ast.SelectStmt:
		body = st.Body
	default:
		return
	}
	for _, c := range body.List {
		switch cl := c.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				*hasDefault = true
			}
			*bodies = append(*bodies, &ast.BlockStmt{List: cl.Body})
		case *ast.CommClause:
			if cl.Comm == nil {
				*hasDefault = true
			}
			*bodies = append(*bodies, &ast.BlockStmt{List: cl.Body})
		}
	}
}

// inspectSkippingFuncLits visits nodes of the body without descending
// into nested function literals.
func inspectSkippingFuncLits(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
