package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ShardWrite is the interprocedural sibling of sharedwrite: it
// reasons about *multi-instance* worker goroutines (launched inside a
// loop, or several literals in one function) and accepts a broader —
// but still structural — disjointness vocabulary of shard keys:
//
//   - the worker literal's own parameters (the partitioned-write
//     idiom sharedwrite already blesses);
//   - the launching loop's iteration variables (each instance closes
//     over a distinct value since go1.22 per-iteration scoping);
//   - atomic claim indices: locals defined from an Add on a
//     sync/atomic counter (`ci := int(next.Add(1)) - 1`), the
//     claimed-slot idiom of the parallel join.
//
// A direct captured write with no shard-key index on its path is
// flagged. So is passing a captured reference to a module function
// that writes through that parameter (the writeParam summary) without
// a shard-key index in the argument — the interprocedural case a
// lexical rule cannot see: the write happens in the callee, the
// capture in the caller.
const shardWriteRule = "shardwrite"

var ShardWrite = &Analyzer{
	Name: shardWriteRule,
	Doc: "flags writes to variables captured by multi-instance worker-shard " +
		"goroutines without a per-shard index (worker parameter, launching " +
		"loop variable, or atomic claim index), including writes that happen " +
		"inside callees the captured reference is passed to",
	// ModWide: write-through-parameter summaries ride the taint
	// layer, whose field facts are module-global.
	ModWide: true,
	Run:     runShardWrite,
}

func runShardWrite(pass *Pass) {
	mod := pass.Mod
	if mod == nil {
		return
	}
	for _, f := range mod.funcsInPackage(pass.Pkg) {
		checkShardFunc(pass, f)
	}
}

// shardWorker is one multi-instance worker literal with its shard-key
// objects.
type shardWorker struct {
	lit  *ast.FuncLit
	keys map[types.Object]bool
}

func checkShardFunc(pass *Pass, f *ModFunc) {
	for _, w := range collectShardWorkers(pass, f) {
		checkShardWorker(pass, w)
	}
}

// collectShardWorkers finds multi-instance worker literals in f: the
// literal is a worker (go statement / runX callee / bound-then-used,
// as in sharedwrite) AND either its launch site sits inside a loop or
// the function launches two or more workers.
func collectShardWorkers(pass *Pass, f *ModFunc) []*shardWorker {
	// Loop ranges and their iteration variables.
	type loopInfo struct {
		from, to token.Pos
		vars     map[types.Object]bool
	}
	var loops []loopInfo
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ForStmt:
			vars := map[types.Object]bool{}
			if init, ok := st.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.Pkg.Info.Defs[id]; obj != nil {
							vars[obj] = true
						}
					}
				}
			}
			loops = append(loops, loopInfo{st.Pos(), st.End(), vars})
		case *ast.RangeStmt:
			vars := map[types.Object]bool{}
			for _, bind := range []ast.Expr{st.Key, st.Value} {
				if id, ok := bind.(*ast.Ident); ok {
					if obj := pass.Pkg.Info.Defs[id]; obj != nil {
						vars[obj] = true
					}
				}
			}
			loops = append(loops, loopInfo{st.Pos(), st.End(), vars})
		}
		return true
	})
	// Worker literals with their launch sites. fanout marks launches
	// through a runX callee, which spawns one instance per shard
	// internally even when the call itself is not in a loop.
	type launch struct {
		lit    *ast.FuncLit
		pos    token.Pos
		fanout bool
	}
	var launches []launch
	addLaunch := func(arg ast.Expr, at token.Pos, fanout bool) {
		switch a := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			launches = append(launches, launch{a, at, fanout})
		case *ast.Ident:
			// Bound literal: launch position is the use site.
			if lit := launchedLiteral(pass.Pkg, f.Decl, &ast.CallExpr{Fun: a}); lit != nil {
				launches = append(launches, launch{lit, at, fanout})
			}
		}
	}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			addLaunch(st.Call.Fun, st.Pos(), false)
		case *ast.CallExpr:
			name := ""
			switch fun := st.Fun.(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if workerCalleeRE.MatchString(name) {
				for _, arg := range st.Args {
					addLaunch(arg, st.Pos(), true)
				}
			}
		}
		return true
	})
	if len(launches) == 0 {
		return nil
	}
	inLoop := func(pos token.Pos) (map[types.Object]bool, bool) {
		keys := map[types.Object]bool{}
		hit := false
		for _, l := range loops {
			if l.from <= pos && pos <= l.to {
				hit = true
				for o := range l.vars {
					keys[o] = true
				}
			}
		}
		return keys, hit
	}
	var out []*shardWorker
	seen := map[*ast.FuncLit]bool{}
	for _, l := range launches {
		if seen[l.lit] {
			continue
		}
		loopVars, launchedInLoop := inLoop(l.pos)
		if !launchedInLoop && !l.fanout && len(launches) < 2 {
			continue // single-instance goroutine: sharedwrite's turf
		}
		seen[l.lit] = true
		keys := map[types.Object]bool{}
		for o := range paramObjects(pass, l.lit) {
			keys[o] = true
		}
		for o := range loopVars {
			keys[o] = true
		}
		addAtomicClaimKeys(pass, l.lit, keys)
		out = append(out, &shardWorker{lit: l.lit, keys: keys})
	}
	return out
}

// addAtomicClaimKeys adds locals defined inside the literal from an
// atomic Add (`ci := int(next.Add(1)) - 1`) to the shard keys.
func addAtomicClaimKeys(pass *Pass, lit *ast.FuncLit, keys map[types.Object]bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if !containsAtomicAdd(pass, as.Rhs[i]) {
				continue
			}
			if obj := pass.Pkg.Info.Defs[id]; obj != nil {
				keys[obj] = true
			}
		}
		return true
	})
}

func containsAtomicAdd(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if callee := calleeFunc(pass.Pkg, call); callee != nil && callee.Pkg() != nil &&
			callee.Pkg().Path() == "sync/atomic" {
			found = true
		}
		return !found
	})
	return found
}

func checkShardWorker(pass *Pass, w *shardWorker) {
	mod := pass.Mod
	captured := func(obj types.Object) bool {
		if obj == nil || obj.Name() == "_" {
			return false
		}
		return obj.Pos() < w.lit.Pos() || obj.Pos() >= w.lit.End()
	}
	ast.Inspect(w.lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				root := rootObject(pass, lhs)
				if !captured(root) {
					continue
				}
				if shardIndexed(pass, lhs, w.keys) {
					continue
				}
				pass.Report(lhs.Pos(), shardWriteRule, fmt.Sprintf(
					"multi-instance worker shard writes captured %s via %s without a per-shard index; "+
						"index by the worker parameter, loop variable, or an atomic claim, or document disjointness with //replint:ignore",
					root.Name(), exprString(lhs)))
			}
		case *ast.IncDecStmt:
			root := rootObject(pass, st.X)
			if captured(root) && !shardIndexed(pass, st.X, w.keys) {
				pass.Report(st.X.Pos(), shardWriteRule, fmt.Sprintf(
					"multi-instance worker shard mutates captured %s without a per-shard index", root.Name()))
			}
		case *ast.CallExpr:
			callee := calleeFunc(pass.Pkg, st)
			if callee == nil || mod.byObj[callee] == nil {
				return true
			}
			slots := mod.taint.writeParam[callee]
			if len(slots) == 0 {
				return true
			}
			if slots[-1] {
				if sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr); ok {
					checkShardArg(pass, w, sel.X, callee, captured)
				}
			}
			for i, arg := range st.Args {
				if slots[i] {
					checkShardArg(pass, w, arg, callee, captured)
				}
			}
		}
		return true
	})
}

// checkShardArg flags a captured reference handed to a callee that
// writes through it, unless the argument expression itself is
// shard-indexed (`&outs[ci]` is fine — the callee writes only this
// worker's slot).
func checkShardArg(pass *Pass, w *shardWorker, arg ast.Expr, callee *types.Func, captured func(types.Object) bool) {
	root := rootObject(pass, deref(arg))
	if !captured(root) {
		return
	}
	if shardIndexed(pass, deref(arg), w.keys) {
		return
	}
	pass.Report(arg.Pos(), shardWriteRule, fmt.Sprintf(
		"worker shard passes captured %s to %s, which writes through it, without a per-shard index; "+
			"pass a per-shard slot or document disjointness with //replint:ignore",
		root.Name(), callee.Name()))
}

// shardIndexed reports whether some index step on the expression path
// mentions a shard key. Unlike sharedwrite's partitionedWrite (all
// steps, parameters only), one shard-keyed step suffices here — the
// key already makes sibling instances' paths distinct.
func shardIndexed(pass *Pass, e ast.Expr, keys map[types.Object]bool) bool {
	for {
		switch ex := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			if exprMentionsAny(pass, ex.Index, keys) {
				return true
			}
			e = ex.X
		case *ast.SelectorExpr:
			e = ex.X
		case *ast.StarExpr:
			e = ex.X
		case *ast.SliceExpr:
			e = ex.X
		default:
			return false
		}
	}
}

func exprMentionsAny(pass *Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
