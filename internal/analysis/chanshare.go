package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// ChanShare flags the handoff-that-wasn't: a value sent on a channel
// while the sender keeps writing through a retained alias. Sending a
// pointer is Go's ownership-transfer idiom — the receiver assumes the
// payload is quiescent. A sender that mutates the pointee after the
// send races the receiver without ever sharing a variable name, so the
// capture-based rules cannot see it; the points-to layer can.
//
// For every send statement, the rule takes the *singleton* abstract
// objects of the sent value (summary objects — allocated per loop
// iteration — are exactly the "fresh value each send" pattern and are
// excluded) and reports:
//
//   - direct writes in the same flow context — or in a non-launched
//     nested literal of it, e.g. a defer — textually after the send,
//     that reach one of the sent objects with no lock held and no
//     atomic — the sender mutating what it just handed off;
//   - calls after the send that pass an alias of a sent object to a
//     module function whose transitive heap summary writes it.
//
// Textual "after the send" is the flow-insensitive approximation: a
// write before the send in the same loop body is re-ordered with the
// send across iterations, but that pattern re-allocates per iteration
// in practice (a summary object) and is excluded by the singleton
// filter.
const chanShareRule = "chanshare"

var ChanShare = &Analyzer{
	Name: chanShareRule,
	Doc: "flags values sent on a channel while the sender retains a written " +
		"alias (send-then-mutate races the receiver without any shared " +
		"variable name); hand off ownership or send a copy",
	// ModWide: points-to sets fold in caller bindings and
	// interface impls from anywhere in the module.
	ModWide: true,
	Run:     runChanShare,
}

func runChanShare(pass *Pass) {
	mod := pass.Mod
	if mod == nil || mod.pts == nil || mod.heap == nil {
		return
	}
	for _, f := range mod.funcsInPackage(pass.Pkg) {
		for _, fc := range flowContexts(f.Decl) {
			checkChanShareCtx(pass, f, fc)
		}
	}
}

func checkChanShareCtx(pass *Pass, f *ModFunc, fc flowCtx) {
	mod := pass.Mod
	pa := mod.pts

	var sends []*ast.SendStmt
	inspectOwnedBody(fc.body, func(n ast.Node) {
		if st, ok := n.(*ast.SendStmt); ok {
			sends = append(sends, st)
		}
	})
	if len(sends) == 0 {
		return
	}

	reported := map[string]bool{}
	for _, send := range sends {
		sent := map[int]bool{}
		for _, o := range pa.objectsOf(ast.Unparen(send.Value)) {
			obj := pa.objs[o]
			if obj.summary {
				continue // fresh per iteration: the healthy pattern
			}
			if obj.typ != nil && selfSyncHeapType(obj.typ) {
				continue
			}
			sent[o] = true
		}
		if len(sent) == 0 {
			continue
		}

		// Direct writes after the send in this context — including its
		// non-launched nested literals (a deferred func(){ p.x = 1 }()
		// after the send still mutates on the sender's goroutine).
		for _, acc := range mod.heap.ownAccesses(fc.body) {
			if !acc.write || acc.atomic || len(acc.held) > 0 {
				continue
			}
			if acc.pos <= send.End() {
				continue
			}
			for _, o := range acc.objs {
				if !sent[o] {
					continue
				}
				reportChanShare(pass, send, acc.pos, pa.objs[o],
					"the sender writes it afterwards", reported)
			}
		}

		// Calls after the send handing an alias to a writing callee.
		inspectOwnedBody(fc.body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() <= send.End() {
				return
			}
			callee := calleeFunc(pass.Pkg, call)
			if callee == nil {
				return
			}
			mf := mod.byObj[callee]
			if mf == nil {
				return
			}
			// Does any argument (or the receiver) alias a sent object?
			aliased := map[int]bool{}
			checkArg := func(arg ast.Expr) {
				for _, o := range pa.objectsOf(ast.Unparen(arg)) {
					if sent[o] {
						aliased[o] = true
					}
				}
			}
			for _, arg := range call.Args {
				checkArg(arg)
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				checkArg(sel.X)
			}
			if len(aliased) == 0 {
				return
			}
			for _, acc := range mod.heap.transAccesses(mf.Decl.Body) {
				if !acc.write || acc.atomic {
					continue
				}
				for _, o := range acc.objs {
					if aliased[o] {
						reportChanShare(pass, send, call.Pos(), pa.objs[o],
							fmt.Sprintf("%s writes through a retained alias", callee.Name()), reported)
					}
				}
			}
		})
	}
}

// inspectOwnedBody visits the context body without descending into
// nested function literals (those are their own flow contexts).
func inspectOwnedBody(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n != body {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
		}
		f(n)
		return true
	})
}

func reportChanShare(pass *Pass, send *ast.SendStmt, at token.Pos, obj *ptObj, how string, reported map[string]bool) {
	key := fmt.Sprintf("%d|%d|%d", send.Pos(), at, obj.id)
	if reported[key] {
		return
	}
	reported[key] = true
	line := pass.Pkg.Fset.Position(send.Pos()).Line
	pass.Report(at, chanShareRule, fmt.Sprintf(
		"%s was sent on a channel at line %d but %s: the receiver races the "+
			"mutation; send a copy or stop writing after the handoff",
		obj.label, line, how))
}
