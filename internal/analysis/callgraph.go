package analysis

import (
	"go/ast"
	"go/types"
)

// callGraph is the module-wide static call graph. Edges cover direct
// calls to declared functions/methods and interface method calls
// resolved against the method sets of the module's named types (a
// call through interface I.M gets an edge to T.M for every module
// type T that implements I). Calls through function *values*,
// method-value captures, and reflection produce no edges — a
// documented soundness limit; the rules that consume the graph are
// written so a missing edge degrades to a less precise (but still
// reviewable) answer, not a silent pass on code the graph does see.
type callGraph struct {
	// callees maps each declared function to the declared functions it
	// may invoke (module-local targets only; external callees are
	// dropped — summaries for the standard library are hardwired where
	// a rule needs them).
	callees map[*types.Func]map[*types.Func]bool
	// callers is the transpose, for reverse fixpoints.
	callers map[*types.Func]map[*types.Func]bool
}

func buildCallGraph(m *Module) *callGraph {
	g := &callGraph{
		callees: map[*types.Func]map[*types.Func]bool{},
		callers: map[*types.Func]map[*types.Func]bool{},
	}
	impls := m.impls
	for _, f := range m.Funcs {
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(f.Pkg, call)
			if callee == nil {
				return true
			}
			if mf := m.byObj[callee]; mf != nil {
				g.addEdge(f.Obj, callee)
				return true
			}
			// Interface method call: add edges to every module
			// implementation of the interface.
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				if types.IsInterface(sig.Recv().Type()) {
					for _, impl := range impls.resolve(sig.Recv().Type(), callee.Name()) {
						if m.byObj[impl] != nil {
							g.addEdge(f.Obj, impl)
						}
					}
				}
			}
			return true
		})
	}
	return g
}

func (g *callGraph) addEdge(from, to *types.Func) {
	if g.callees[from] == nil {
		g.callees[from] = map[*types.Func]bool{}
	}
	g.callees[from][to] = true
	if g.callers[to] == nil {
		g.callers[to] = map[*types.Func]bool{}
	}
	g.callers[to][from] = true
}

// reachable returns the set of functions reachable from the roots
// (roots included) following callee edges.
func (g *callGraph) reachable(roots []*types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	work := append([]*types.Func(nil), roots...)
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[f] {
			continue
		}
		seen[f] = true
		for callee := range g.callees[f] {
			if !seen[callee] {
				work = append(work, callee)
			}
		}
	}
	return seen
}

// implIndex lists the module's named (non-interface) types once, so
// interface-call resolution is a scan over them rather than over the
// whole type universe.
type implIndex struct {
	named []*types.Named
}

func collectImplementations(m *Module) *implIndex {
	idx := &implIndex{}
	for _, pkg := range m.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			idx.named = append(idx.named, named)
		}
	}
	return idx
}

// resolve returns the concrete methods named name on module types
// implementing iface (value or pointer method sets).
func (idx *implIndex) resolve(iface types.Type, name string) []*types.Func {
	i, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range idx.named {
		var recv types.Type
		switch {
		case types.Implements(named, i):
			recv = named
		case types.Implements(types.NewPointer(named), i):
			recv = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), name)
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	return out
}
