package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc guards the allocation-lean DP hot path. PR 1 moved every
// per-solution allocation in the embedding engine into pooled
// solverScratch arenas; an innocent-looking make/append/closure
// re-introduced inside the wavefront loops silently costs the ~8x
// allocation win back. The rule flags, inside any loop of any
// function reachable from an embed-package Solve/SolveContext root
// (same package as the root — callees in other packages run once per
// call, not per DP pop):
//
//   - make / new calls;
//   - &T{...} and slice/map composite literals (plain struct *values*
//     are stack-friendly and exempt);
//   - function literals (closure allocation + captures escape);
//   - append whose destination is a fresh local — one whose
//     definitions are not derived from scratch storage, a parameter,
//     or the receiver. Appends into scratch-backed or caller-owned
//     slices amortize to zero and are exempt.
//
// The hot set comes from the module call graph, so an allocation in a
// helper two calls below SolveContext is still caught
// (interprocedural reachability, not lexical nesting).
const hotAllocRule = "hotalloc"

var HotAlloc = &Analyzer{
	Name: hotAllocRule,
	Doc: "flags per-iteration allocations (make/new/&T{}/slice+map literals/" +
		"closures/appends to fresh locals) inside loops of functions reachable " +
		"from embed Solve/SolveContext; hoist into solverScratch arenas or " +
		"pre-size outside the loop",
	// ModWide: hotness is reachability from Solve roots anywhere
	// in the module, through interface edges resolved module-wide.
	ModWide: true,
	Run:     runHotAlloc,
}

// buildHotSet computes the functions reachable from the DP roots,
// restricted to the root's own package.
func buildHotSet(m *Module) map[*types.Func]bool {
	var roots []*types.Func
	rootPkgs := map[*types.Package]bool{}
	for _, f := range m.Funcs {
		if !strings.Contains(relPath(f.Pkg.Path), "embed") {
			continue
		}
		name := f.Obj.Name()
		if name == "Solve" || name == "SolveContext" {
			roots = append(roots, f.Obj)
			rootPkgs[f.Obj.Pkg()] = true
		}
	}
	hot := map[*types.Func]bool{}
	for fn := range m.cg.reachable(roots) {
		if rootPkgs[fn.Pkg()] {
			hot[fn] = true
		}
	}
	return hot
}

func runHotAlloc(pass *Pass) {
	mod := pass.Mod
	if mod == nil {
		return
	}
	for _, f := range mod.funcsInPackage(pass.Pkg) {
		if !mod.hot[f.Obj] {
			continue
		}
		du := mod.defuse[f.Obj]
		checkHotFunc(pass, f, du)
	}
}

func checkHotFunc(pass *Pass, f *ModFunc, du *defUse) {
	var walk func(n ast.Node, depth int, loop ast.Node)
	report := func(pos ast.Node, what string) {
		pass.Report(pos.Pos(), hotAllocRule, fmt.Sprintf(
			"%s inside a loop of %s, on the DP hot path reachable from Solve; "+
				"hoist it into solverScratch or pre-size outside the loop",
			what, f.Obj.Name()))
	}
	walk = func(n ast.Node, depth int, loop ast.Node) {
		if n == nil {
			return
		}
		switch st := n.(type) {
		case *ast.ForStmt:
			walkChildren(st, func(c ast.Node) {
				if c == st.Body || c == st.Post {
					walk(c, depth+1, st)
				} else {
					walk(c, depth, loop)
				}
			})
			return
		case *ast.RangeStmt:
			walkChildren(st, func(c ast.Node) {
				if c == st.Body {
					walk(c, depth+1, st)
				} else {
					walk(c, depth, loop)
				}
			})
			return
		case *ast.FuncLit:
			if depth > 0 {
				report(st, "function literal (closure allocation)")
			}
			// Allocations inside the literal run on the same hot path.
			walk(st.Body, depth, loop)
			return
		case *ast.CallExpr:
			if depth > 0 {
				switch {
				case isBuiltin(pass, st.Fun, "make"):
					report(st, "make")
				case isBuiltin(pass, st.Fun, "new"):
					report(st, "new")
				case isBuiltin(pass, st.Fun, "append") && len(st.Args) > 0:
					if dst := freshLocalDest(pass, f, du, st.Args[0], loop); dst != "" {
						report(st, fmt.Sprintf("append to fresh local %s", dst))
					}
				}
			}
		case *ast.UnaryExpr:
			if depth > 0 && st.Op == token.AND {
				if _, ok := ast.Unparen(st.X).(*ast.CompositeLit); ok {
					report(st, "&composite literal (heap allocation)")
					walkChildren(st.X, func(c ast.Node) { walk(c, depth, loop) })
					return
				}
			}
		case *ast.CompositeLit:
			if depth > 0 {
				t := pass.TypeOf(st)
				if t != nil {
					switch t.Underlying().(type) {
					case *types.Slice, *types.Map:
						report(st, "slice/map composite literal")
					}
				}
			}
		}
		walkChildren(n, func(c ast.Node) { walk(c, depth, loop) })
	}
	walk(f.Decl.Body, 0, nil)
}

// freshLocalDest reports the name of the append destination when it
// is a fresh per-iteration local, or "" when the append target is
// exempt: scratch-typed storage, a parameter/receiver, a field, a
// local whose every definition derives from one of those (e.g.
// `out := in[:0]`, `branches := sc.stairBranch[:0]`), or a local
// pre-sized with a capacity make hoisted outside the enclosing loop
// (`all := make([]T, 0, n)` before the loop — appends amortize to
// zero there, which is exactly the fix this rule asks for).
func freshLocalDest(pass *Pass, f *ModFunc, du *defUse, dst ast.Expr, loop ast.Node) string {
	return freshDest(pass, f, du, dst, loop, 0)
}

func freshDest(pass *Pass, f *ModFunc, du *defUse, dst ast.Expr, loop ast.Node, depth int) string {
	if depth > 4 || scratchTyped(pass.Pkg, dst) {
		return ""
	}
	switch ex := ast.Unparen(dst).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		// Field / element / pointee storage: owned by a live structure,
		// not a per-iteration fresh slice.
		return ""
	case *ast.SliceExpr:
		return freshDest(pass, f, du, ex.X, loop, depth+1)
	case *ast.Ident:
		obj := pass.ObjectOf(ex)
		if obj == nil {
			return ""
		}
		if du == nil {
			return ex.Name
		}
		if du.params[obj] {
			return "" // caller-owned
		}
		recs := du.defs[obj]
		if len(recs) == 0 {
			// Captured outer local or package var: not per-iteration.
			return ""
		}
		for _, rec := range recs {
			if rec.opaque || rec.rng != nil {
				return ""
			}
			if rec.rhs == nil {
				continue
			}
			if selfAppend(pass, rec.rhs, obj) {
				continue
			}
			if hoistedPresizedMake(pass, rec.rhs, loop) {
				return ""
			}
			if freshDest(pass, f, du, rec.rhs, loop, depth+1) == "" {
				return ""
			}
		}
		return ex.Name
	case *ast.CallExpr:
		// append chains inherit their base's origin; conversions pass
		// through; other call results (make included) are fresh.
		if isBuiltin(pass, ex.Fun, "append") && len(ex.Args) > 0 {
			return freshDest(pass, f, du, ex.Args[0], loop, depth+1)
		}
		if tv, ok := pass.Pkg.Info.Types[ex.Fun]; ok && tv.IsType() && len(ex.Args) == 1 {
			return freshDest(pass, f, du, ex.Args[0], loop, depth+1)
		}
		return "fresh"
	}
	return "fresh"
}

// hoistedPresizedMake recognizes the pre-size idiom: a three-argument
// make (explicit capacity) lexically outside the innermost loop the
// append sits in. Appends into such a buffer amortize to zero — it is
// the very fix the rule's message recommends, so it must not itself
// be flagged. A make *inside* the loop still reports through the
// direct make check regardless of its argument count.
func hoistedPresizedMake(pass *Pass, rhs ast.Expr, loop ast.Node) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call.Fun, "make") || len(call.Args) != 3 {
		return false
	}
	if loop == nil {
		return true
	}
	return call.Pos() < loop.Pos() || call.Pos() >= loop.End()
}

// selfAppend recognizes `x = append(x, ...)` definitions, which say
// nothing about x's origin.
func selfAppend(pass *Pass, rhs ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && pass.ObjectOf(id) == obj
}

// walkChildren visits the immediate children of n.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}
