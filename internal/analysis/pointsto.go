package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// pointsto.go is the alias layer: a flow-insensitive, field-sensitive
// Andersen-style points-to analysis over the whole module. It assigns
// every pointer-carrying expression a node, every allocation site an
// abstract object, and solves the subset-constraint system with a
// worklist plus union-find cycle collapsing. The three shared-heap
// rules (aliasrace, arenaescape, chanshare) and the heap-effect
// summaries consume the solution.
//
// Model, in brief:
//
//   - Abstract objects are allocation sites: make/new, composite
//     literals, the storage of address-taken or struct/array variables,
//     package-level variable storage, one object per external call
//     result, and synthetic objects for append results and variadic
//     packing. An object whose site sits inside a loop is a *summary*
//     (it conflates one object per iteration); everything else is a
//     singleton, which is what lets aliasrace report must-alias races.
//
//   - Field sensitivity is by field name; the "" cell of an object
//     holds its element/pointee content (slice and array elements, map
//     values, channel payloads, pointer targets). &x.f and &a[i]
//     conflate to the base object — the pointer is "into o", which
//     preserves exactly the object identity the race and escape rules
//     need.
//
//   - Calls to module functions (direct, methods, interface calls
//     resolved through the implementation index, and the bound-literal
//     launch idiom) bind arguments to parameters and results to the
//     callee's return nodes, context-insensitively. External calls
//     yield a fresh extern object per pointer-carrying result and do
//     not retain their arguments. Calls through arbitrary function
//     values produce extern results too — the documented soundness
//     limit shared with the call graph.
// ptObjKind classifies abstract objects.
type ptObjKind uint8

const (
	objMake   ptObjKind = iota // make(...)
	objNew                     // new(T)
	objLit                     // composite literal
	objVar                     // storage of a local/param variable
	objGlobal                  // storage of a package-level variable
	objExtern                  // result of an unresolved (external) call
	objSyn                     // synthetic: append result, variadic slice
)

// ptObj is one abstract object (allocation site).
type ptObj struct {
	id      int
	kind    ptObjKind
	pos     token.Pos
	pkg     *Package
	typ     types.Type   // static type of the allocated value, best effort
	varObj  types.Object // for objVar/objGlobal: the variable
	label   string       // human form for queries and reports
	summary bool         // site inside a loop: conflates many runtime objects
}

// ptDeref is one complex constraint endpoint: a load target or store
// source, applied per object that flows into the constrained node.
type ptDeref struct {
	node  int
	field string
}

// ptNode is one points-to variable of the constraint graph.
type ptNode struct {
	pts    map[int]bool
	delta  map[int]bool
	copyTo map[int]bool
	loads  []ptDeref // dst ⊇ pts(o.field) for each o flowing here
	stores []ptDeref // pts(o.field) ⊇ src for each o flowing here
}

type ptCellKey struct {
	obj   int
	field string
}

// ptsFacts is the module-wide points-to solution.
type ptsFacts struct {
	mod   *Module
	objs  []*ptObj
	nodes []*ptNode

	parent   []int // union-find over nodes
	varNode  map[types.Object]int
	cellNode map[ptCellKey]int
	exprNode map[ast.Expr]int
	retNodes map[*ast.BlockStmt][]int
	varObjID map[types.Object]int

	work []int

	// Escape closures, computed once after solving (read-only after).
	escapedGlobal map[int]bool
	escapedChan   map[int]bool
}

func (pa *ptsFacts) newNode() int {
	id := len(pa.nodes)
	pa.nodes = append(pa.nodes, &ptNode{
		pts:    map[int]bool{},
		delta:  map[int]bool{},
		copyTo: map[int]bool{},
	})
	pa.parent = append(pa.parent, id)
	return id
}

func (pa *ptsFacts) find(n int) int {
	for pa.parent[n] != n {
		pa.parent[n] = pa.parent[pa.parent[n]]
		n = pa.parent[n]
	}
	return n
}

// union merges node b into a (both resolved), returning the
// representative.
func (pa *ptsFacts) union(a, b int) int {
	a, b = pa.find(a), pa.find(b)
	if a == b {
		return a
	}
	na, nb := pa.nodes[a], pa.nodes[b]
	pa.parent[b] = a
	for o := range nb.pts {
		if !na.pts[o] {
			na.pts[o] = true
			na.delta[o] = true
		}
	}
	for t := range nb.copyTo {
		na.copyTo[t] = true
	}
	na.loads = append(na.loads, nb.loads...)
	na.stores = append(na.stores, nb.stores...)
	pa.nodes[b] = nil
	if len(na.delta) > 0 {
		pa.work = append(pa.work, a)
	}
	return a
}

// addObj seeds an object into a node's points-to set.
func (pa *ptsFacts) addObj(n, obj int) {
	n = pa.find(n)
	nd := pa.nodes[n]
	if !nd.pts[obj] {
		nd.pts[obj] = true
		nd.delta[obj] = true
		pa.work = append(pa.work, n)
	}
}

// addCopy installs the subset edge src ⊆ dst and flows src's current
// set across it.
func (pa *ptsFacts) addCopy(src, dst int) {
	src, dst = pa.find(src), pa.find(dst)
	if src == dst {
		return
	}
	ns := pa.nodes[src]
	if ns.copyTo[dst] {
		return
	}
	ns.copyTo[dst] = true
	nd := pa.nodes[dst]
	grew := false
	for o := range ns.pts {
		if !nd.pts[o] {
			nd.pts[o] = true
			nd.delta[o] = true
			grew = true
		}
	}
	if grew {
		pa.work = append(pa.work, dst)
	}
}

// cellOf returns (lazily creating) the node of one object's field cell.
func (pa *ptsFacts) cellOf(obj int, field string) int {
	if n, ok := pa.cellNode[ptCellKey{obj, field}]; ok {
		return pa.find(n)
	}
	n := pa.newNode()
	pa.cellNode[ptCellKey{obj, field}] = n
	return n
}

// newObj registers an abstract object.
func (pa *ptsFacts) newObj(kind ptObjKind, pos token.Pos, pkg *Package, typ types.Type, varObj types.Object, label string, summary bool) int {
	o := &ptObj{
		id: len(pa.objs), kind: kind, pos: pos, pkg: pkg,
		typ: typ, varObj: varObj, label: label, summary: summary,
	}
	pa.objs = append(pa.objs, o)
	return o.id
}

// solve runs the worklist to fixpoint, collapsing copy cycles before
// starting and again periodically while the list drains.
func (pa *ptsFacts) solve() {
	pa.collapseCycles()
	processed := 0
	for len(pa.work) > 0 {
		n := pa.find(pa.work[len(pa.work)-1])
		pa.work = pa.work[:len(pa.work)-1]
		nd := pa.nodes[n]
		if nd == nil || len(nd.delta) == 0 {
			continue
		}
		delta := nd.delta
		nd.delta = map[int]bool{}
		for _, ld := range nd.loads {
			for o := range delta {
				pa.addCopy(pa.cellOf(o, ld.field), ld.node)
			}
		}
		for _, st := range nd.stores {
			for o := range delta {
				pa.addCopy(st.node, pa.cellOf(o, st.field))
			}
		}
		for t := range nd.copyTo {
			t = pa.find(t)
			if t == n {
				continue
			}
			td := pa.nodes[t]
			grew := false
			for o := range delta {
				if !td.pts[o] {
					td.pts[o] = true
					td.delta[o] = true
					grew = true
				}
			}
			if grew {
				pa.work = append(pa.work, t)
			}
		}
		processed++
		if processed%8192 == 0 {
			pa.collapseCycles()
		}
	}
}

// collapseCycles finds strongly connected components of the copy graph
// (Tarjan, iterative) and unifies each component into one node — nodes
// on a copy cycle provably share one points-to set.
func (pa *ptsFacts) collapseCycles() {
	n := len(pa.nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 1

	type frame struct {
		v     int
		succs []int
		i     int
	}
	succsOf := func(v int) []int {
		nd := pa.nodes[v]
		if nd == nil {
			return nil
		}
		out := make([]int, 0, len(nd.copyTo))
		for t := range nd.copyTo {
			out = append(out, pa.find(t))
		}
		sort.Ints(out)
		return out
	}
	var sccs [][]int
	for root := 0; root < n; root++ {
		if pa.find(root) != root || index[root] != -1 || pa.nodes[root] == nil {
			continue
		}
		frames := []frame{{v: root, succs: succsOf(root)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if w == f.v {
					continue
				}
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, succs: succsOf(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				if len(comp) > 1 {
					sccs = append(sccs, comp)
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}
	for _, comp := range sccs {
		rep := comp[0]
		for _, w := range comp[1:] {
			rep = pa.union(rep, w)
		}
	}
}

// pointsToSet returns the resolved object set of a node.
func (pa *ptsFacts) pointsToSet(n int) map[int]bool {
	if n < 0 {
		return nil
	}
	return pa.nodes[pa.find(n)].pts
}

// nodeOfExpr returns the memoized node of an evaluated expression, or
// -1. It never creates constraints — safe to call after solving.
func (pa *ptsFacts) nodeOfExpr(e ast.Expr) int {
	if n, ok := pa.exprNode[e]; ok && n >= 0 {
		return pa.find(n)
	}
	return -1
}

// ---------------------------------------------------------------------
// Constraint generation.

// posRange is a loop-body span used for the summary classification.
type posRange struct{ from, to token.Pos }

type ptGen struct {
	pa    *ptsFacts
	pkg   *Package
	fn    *ModFunc
	loops []posRange
}

// buildPointsTo generates constraints for every module function and
// solves. Called from BuildModule after the call graph exists.
func buildPointsTo(m *Module) *ptsFacts {
	pa := &ptsFacts{
		mod:      m,
		varNode:  map[types.Object]int{},
		cellNode: map[ptCellKey]int{},
		exprNode: map[ast.Expr]int{},
		retNodes: map[*ast.BlockStmt][]int{},
		varObjID: map[types.Object]int{},
	}
	// Package-level variable initializers (`var results = make(...)`)
	// seed the globals' nodes; without them a channel or map created at
	// package scope would have no abstract object.
	for _, pkg := range m.Pkgs {
		g := &ptGen{pa: pa, pkg: pkg}
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					g.genValueSpec(spec)
				}
			}
		}
	}
	for _, f := range m.Funcs {
		g := &ptGen{pa: pa, pkg: f.Pkg, fn: f}
		g.collectLoops()
		g.genFunc()
	}
	pa.solve()
	pa.buildEscapes()
	return pa
}

func (g *ptGen) collectLoops() {
	ast.Inspect(g.fn.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ForStmt:
			g.loops = append(g.loops, posRange{st.Body.Pos(), st.Body.End()})
		case *ast.RangeStmt:
			g.loops = append(g.loops, posRange{st.Body.Pos(), st.Body.End()})
		}
		return true
	})
}

func (g *ptGen) inLoop(pos token.Pos) bool {
	for _, r := range g.loops {
		if r.from <= pos && pos <= r.to {
			return true
		}
	}
	return false
}

// pointerCarrying reports whether values of t can reference heap
// objects the analysis tracks.
func pointerCarrying(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Interface, *types.Struct, *types.Array, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// directObjType reports whether a variable of type t is its own
// storage object (selection applies to the variable, not a pointee).
func directObjType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Struct, *types.Array:
		return true
	}
	return false
}

func (g *ptGen) posLabel(pos token.Pos) string {
	p := g.pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func (g *ptGen) typeLabel(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// varNodeOf returns the node of a variable, creating it on first use.
// Struct- and array-typed variables are direct-object variables: their
// node is seeded with their own storage object so field and index
// constraints treat them uniformly with pointers.
func (g *ptGen) varNodeOf(obj types.Object) int {
	if obj == nil {
		return -1
	}
	if n, ok := g.pa.varNode[obj]; ok {
		if n < 0 {
			return -1
		}
		return g.pa.find(n)
	}
	if _, isVar := obj.(*types.Var); !isVar || !pointerCarrying(obj.Type()) {
		g.pa.varNode[obj] = -1
		return -1
	}
	n := g.pa.newNode()
	g.pa.varNode[obj] = n
	if directObjType(obj.Type()) {
		g.pa.addObj(n, g.varObjOf(obj))
	}
	return n
}

// varObjOf returns the storage object of a variable (created lazily:
// direct-object vars get one at first node use, others when their
// address is taken).
func (g *ptGen) varObjOf(obj types.Object) int {
	if id, ok := g.pa.varObjID[obj]; ok {
		return id
	}
	kind := objVar
	label := "&" + obj.Name()
	if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		kind = objGlobal
		label = "&" + v.Pkg().Name() + "." + obj.Name()
	}
	summary := kind == objVar && g.inLoop(obj.Pos())
	id := g.pa.newObj(kind, obj.Pos(), g.pkg, obj.Type(), obj, label, summary)
	g.pa.varObjID[obj] = id
	if !directObjType(obj.Type()) {
		// The "" cell of a non-struct variable's storage IS the
		// variable: *(&v) and v are the same l-value.
		if vn := g.varNodeOf(obj); vn >= 0 {
			g.pa.cellNode[ptCellKey{id, ""}] = vn
		}
	}
	return id
}

// retNodesOf returns (creating) the result nodes of one function or
// literal body. Named results share the result variables' nodes, which
// makes naked returns sound for free.
func (g *ptGen) retNodesOf(body *ast.BlockStmt, ftype *ast.FuncType) []int {
	if rets, ok := g.pa.retNodes[body]; ok {
		return rets
	}
	var rets []int
	if ftype != nil && ftype.Results != nil {
		for _, fl := range ftype.Results.List {
			if len(fl.Names) == 0 {
				rets = append(rets, g.pa.newNode())
				continue
			}
			for _, name := range fl.Names {
				if obj := g.pkg.Info.Defs[name]; obj != nil {
					rets = append(rets, g.varNodeOf(obj))
				} else {
					rets = append(rets, g.pa.newNode())
				}
			}
		}
	}
	g.pa.retNodes[body] = rets
	return rets
}

// genFunc walks one declared function, generating constraints for every
// statement including function-literal interiors (flow-insensitive
// constraints hold regardless of when a literal runs; returns inside a
// literal target the literal's own result nodes).
func (g *ptGen) genFunc() {
	decl := g.fn.Decl
	declRets := g.retNodesOf(decl.Body, decl.Type)

	// Innermost-literal resolution for return statements.
	var lits []*ast.FuncLit
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, fl)
			g.retNodesOf(fl.Body, fl.Type)
		}
		return true
	})
	retCtx := func(pos token.Pos) []int {
		var best *ast.FuncLit
		for _, fl := range lits {
			if fl.Body.Pos() <= pos && pos <= fl.Body.End() {
				if best == nil || fl.Body.Pos() > best.Body.Pos() {
					best = fl
				}
			}
		}
		if best != nil {
			return g.pa.retNodes[best.Body]
		}
		return declRets
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			g.genAssign(st)
		case *ast.DeclStmt:
			g.genVarDecl(st)
		case *ast.SendStmt:
			if ch, v := g.expr(st.Chan), g.expr(st.Value); ch >= 0 && v >= 0 {
				g.store(ch, "", v)
			}
		case *ast.RangeStmt:
			g.genRange(st)
		case *ast.ReturnStmt:
			g.genReturn(st, retCtx(st.Pos()))
		case *ast.TypeSwitchStmt:
			g.genTypeSwitch(st)
		case *ast.CallExpr:
			g.expr(st)
		case *ast.UnaryExpr:
			g.expr(st)
		case *ast.CompositeLit:
			g.expr(st)
		case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr, *ast.SliceExpr:
			// Access paths in plain read positions — binary operands, send
			// values, conditions — reach no other case; evaluate them for
			// the memo so the heap-effect walk can resolve their bases
			// post-solve (evaluation is idempotent, parents won).
			g.expr(n.(ast.Expr))
		}
		return true
	})
}

func (g *ptGen) genAssign(st *ast.AssignStmt) {
	// Multi-value RHS: x, y := f() / m[k] / <-ch / v.(T).
	if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			rets := g.callRets(call)
			for i, lhs := range st.Lhs {
				if i < len(rets) && rets[i] >= 0 {
					g.assignTo(lhs, rets[i])
				}
			}
			return
		}
		// v, ok forms: only the first target carries a value.
		if v := g.expr(st.Rhs[0]); v >= 0 {
			g.assignTo(st.Lhs[0], v)
		}
		return
	}
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		if v := g.expr(st.Rhs[i]); v >= 0 {
			g.assignTo(lhs, v)
		} else {
			g.expr(st.Lhs[i]) // still evaluate for the memo (write bases)
		}
	}
}

func (g *ptGen) genVarDecl(st *ast.DeclStmt) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		g.genValueSpec(spec)
	}
}

func (g *ptGen) genValueSpec(spec ast.Spec) {
	vs, ok := spec.(*ast.ValueSpec)
	if !ok {
		return
	}
	for i, name := range vs.Names {
		obj := g.pkg.Info.Defs[name]
		if obj == nil || i >= len(vs.Values) {
			continue
		}
		if v := g.expr(vs.Values[i]); v >= 0 {
			if t := g.varNodeOf(obj); t >= 0 {
				g.pa.addCopy(v, t)
			}
		}
	}
}

func (g *ptGen) genRange(st *ast.RangeStmt) {
	base := g.expr(st.X)
	if base < 0 {
		return
	}
	bind := func(e ast.Expr) {
		if e == nil {
			return
		}
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := g.pkg.Info.Defs[id]
		if obj == nil {
			obj = g.pkg.Info.Uses[id]
		}
		t := g.varNodeOf(obj)
		if t < 0 {
			return
		}
		g.load(t, base, "")
	}
	// Keys of maps and channels are not modeled; the value binding gets
	// the element cell. Ranging a channel binds the key slot.
	if tt := g.pkg.typeOf(st.X); tt != nil {
		if _, isChan := tt.Underlying().(*types.Chan); isChan {
			bind(st.Key)
			return
		}
	}
	bind(st.Value)
}

func (g *ptGen) genReturn(st *ast.ReturnStmt, rets []int) {
	if len(st.Results) == 0 {
		return
	}
	if len(st.Results) == 1 && len(rets) > 1 {
		if call, ok := ast.Unparen(st.Results[0]).(*ast.CallExpr); ok {
			crets := g.callRets(call)
			for i := range rets {
				if i < len(crets) && crets[i] >= 0 && rets[i] >= 0 {
					g.pa.addCopy(crets[i], rets[i])
				}
			}
			return
		}
	}
	for i, r := range st.Results {
		if i >= len(rets) || rets[i] < 0 {
			continue
		}
		if v := g.expr(r); v >= 0 {
			g.pa.addCopy(v, rets[i])
		}
	}
}

func (g *ptGen) genTypeSwitch(st *ast.TypeSwitchStmt) {
	// x := y.(type): each clause's implicit object copies from y.
	var src ast.Expr
	if as, ok := st.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
		if ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr); ok {
			src = ta.X
		}
	} else if es, ok := st.Assign.(*ast.ExprStmt); ok {
		if ta, ok := ast.Unparen(es.X).(*ast.TypeAssertExpr); ok {
			src = ta.X
		}
	}
	if src == nil {
		return
	}
	v := g.expr(src)
	if v < 0 {
		return
	}
	for _, cl := range st.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if obj := g.pkg.Info.Implicits[cc]; obj != nil {
			if t := g.varNodeOf(obj); t >= 0 {
				g.pa.addCopy(v, t)
			}
		}
	}
}

// assignTo routes a value node into an l-value.
func (g *ptGen) assignTo(lhs ast.Expr, v int) {
	lhs = ast.Unparen(lhs)
	switch lv := lhs.(type) {
	case *ast.Ident:
		if lv.Name == "_" {
			return
		}
		obj := g.pkg.Info.Defs[lv]
		if obj == nil {
			obj = g.pkg.Info.Uses[lv]
		}
		if t := g.varNodeOf(obj); t >= 0 {
			g.pa.addCopy(v, t)
		}
	case *ast.SelectorExpr:
		// Qualified package var?
		if obj, ok := g.pkg.Info.Uses[lv.Sel].(*types.Var); ok {
			if sel, isSel := g.pkg.Info.Selections[lv]; !isSel || sel == nil {
				if t := g.varNodeOf(obj); t >= 0 {
					g.pa.addCopy(v, t)
				}
				return
			}
		}
		if base := g.expr(lv.X); base >= 0 {
			g.store(base, lv.Sel.Name, v)
		}
	case *ast.IndexExpr:
		if base := g.expr(lv.X); base >= 0 {
			g.store(base, "", v)
		}
	case *ast.StarExpr:
		base := g.expr(lv.X)
		if base < 0 {
			return
		}
		if tt := g.pkg.typeOf(lhs); directObjType(tt) {
			// *p for struct pointee: p's objects are the struct storage;
			// whole-struct assignment conflates into the elem cell.
			g.store(base, "", v)
			return
		}
		g.store(base, "", v)
	}
}

// load installs dst ⊇ (o.field) for each o in pts(src).
func (g *ptGen) load(dst, src int, field string) {
	src = g.pa.find(src)
	nd := g.pa.nodes[src]
	nd.loads = append(nd.loads, ptDeref{node: dst, field: field})
	for o := range nd.pts {
		g.pa.addCopy(g.pa.cellOf(o, field), dst)
	}
}

// store installs (o.field) ⊇ src for each o in pts(dst).
func (g *ptGen) store(dst int, field string, src int) {
	dst = g.pa.find(dst)
	nd := g.pa.nodes[dst]
	nd.stores = append(nd.stores, ptDeref{node: src, field: field})
	for o := range nd.pts {
		g.pa.addCopy(src, g.pa.cellOf(o, field))
	}
}

// expr evaluates one expression to its node, generating constraints and
// memoizing the result (also consulted post-solve by the heap rules).
func (g *ptGen) expr(e ast.Expr) int {
	if e == nil {
		return -1
	}
	if n, ok := g.pa.exprNode[e]; ok {
		return n
	}
	n := g.exprUncached(e)
	g.pa.exprNode[e] = n
	return n
}

func (g *ptGen) exprUncached(e ast.Expr) int {
	switch ex := e.(type) {
	case *ast.ParenExpr:
		return g.expr(ex.X)
	case *ast.Ident:
		obj := g.pkg.Info.Uses[ex]
		if obj == nil {
			obj = g.pkg.Info.Defs[ex]
		}
		return g.varNodeOf(obj)
	case *ast.SelectorExpr:
		if sel, ok := g.pkg.Info.Selections[ex]; ok && sel.Kind() == types.FieldVal {
			base := g.expr(ex.X)
			if base < 0 {
				return -1
			}
			if !pointerCarrying(sel.Obj().Type()) {
				return -1
			}
			n := g.pa.newNode()
			g.load(n, base, ex.Sel.Name)
			return n
		}
		// Qualified identifier (pkg.Var) or method value.
		if obj, ok := g.pkg.Info.Uses[ex.Sel].(*types.Var); ok {
			return g.varNodeOf(obj)
		}
		return -1
	case *ast.StarExpr:
		base := g.expr(ex.X)
		if base < 0 {
			return -1
		}
		if directObjType(g.pkg.typeOf(e)) {
			// Dereferencing a struct/array pointer yields the storage
			// itself: selections on *p and on p hit the same objects.
			return base
		}
		n := g.pa.newNode()
		g.load(n, base, "")
		return n
	case *ast.UnaryExpr:
		switch ex.Op {
		case token.AND:
			return g.addrOf(ex.X)
		case token.ARROW:
			base := g.expr(ex.X)
			if base < 0 {
				return -1
			}
			n := g.pa.newNode()
			g.load(n, base, "")
			return n
		}
		return -1
	case *ast.IndexExpr:
		// Generic instantiation shows up as IndexExpr on a function.
		if tv, ok := g.pkg.Info.Types[ex.X]; ok {
			if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
				return -1
			}
		}
		base := g.expr(ex.X)
		if base < 0 {
			return -1
		}
		if !pointerCarrying(g.pkg.typeOf(e)) {
			return -1
		}
		n := g.pa.newNode()
		g.load(n, base, "")
		return n
	case *ast.SliceExpr:
		return g.expr(ex.X) // same backing store
	case *ast.TypeAssertExpr:
		return g.expr(ex.X)
	case *ast.CompositeLit:
		return g.compositeLit(ex)
	case *ast.CallExpr:
		rets := g.callRets(ex)
		if len(rets) > 0 {
			return rets[0]
		}
		return -1
	case *ast.BinaryExpr, *ast.BasicLit, *ast.FuncLit, *ast.KeyValueExpr:
		return -1
	}
	return -1
}

// addrOf evaluates &x. For variables it materializes the variable's
// storage object; for field/index paths it conflates to the base object
// (a pointer "into o" keeps o's identity, which is what the heap rules
// need; the field distinction is dropped — documented imprecision).
func (g *ptGen) addrOf(x ast.Expr) int {
	x = ast.Unparen(x)
	switch xv := x.(type) {
	case *ast.Ident:
		obj := g.pkg.Info.Uses[xv]
		if obj == nil {
			obj = g.pkg.Info.Defs[xv]
		}
		if obj == nil {
			return -1
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return -1
		}
		g.varNodeOf(obj) // ensure the node (and cell unification) exists
		n := g.pa.newNode()
		g.pa.addObj(n, g.varObjOf(obj))
		return n
	case *ast.CompositeLit:
		return g.compositeLit(xv)
	case *ast.SelectorExpr:
		if sel, ok := g.pkg.Info.Selections[xv]; ok && sel.Kind() == types.FieldVal {
			return g.expr(xv.X)
		}
		return g.expr(x)
	case *ast.IndexExpr:
		return g.expr(xv.X)
	case *ast.StarExpr:
		return g.expr(xv.X)
	}
	return g.expr(x)
}

func (g *ptGen) compositeLit(lit *ast.CompositeLit) int {
	t := g.pkg.typeOf(lit)
	summary := g.inLoop(lit.Pos())
	obj := g.pa.newObj(objLit, lit.Pos(), g.pkg, t,
		nil, g.typeLabel(t)+"{}", summary)
	n := g.pa.newNode()
	g.pa.addObj(n, obj)
	// Element/field stores.
	var structT *types.Struct
	if t != nil {
		if st, ok := t.Underlying().(*types.Struct); ok {
			structT = st
		}
	}
	for i, el := range lit.Elts {
		switch ev := el.(type) {
		case *ast.KeyValueExpr:
			field := ""
			if id, ok := ev.Key.(*ast.Ident); ok && structT != nil {
				field = id.Name
			}
			if v := g.expr(ev.Value); v >= 0 {
				g.pa.addCopy(v, g.pa.cellOf(obj, field))
			}
		default:
			field := ""
			if structT != nil && i < structT.NumFields() {
				field = structT.Field(i).Name()
			}
			if v := g.expr(el); v >= 0 {
				g.pa.addCopy(v, g.pa.cellOf(obj, field))
			}
		}
	}
	return n
}

// callRets evaluates a call, binds module callees, and returns the
// per-result nodes (empty when nothing pointer-carrying comes back).
func (g *ptGen) callRets(call *ast.CallExpr) []int {
	// Conversions pass the value through.
	if tv, ok := g.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []int{g.expr(call.Args[0])}
		}
		return nil
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := g.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			return g.builtinCall(id.Name, call)
		}
	}
	// Evaluate arguments once, for the memo and for binding.
	argNodes := make([]int, len(call.Args))
	for i, a := range call.Args {
		argNodes[i] = g.expr(a)
	}

	callee := calleeFunc(g.pkg, call)
	if callee != nil {
		if mf := g.pa.mod.byObj[callee]; mf != nil {
			var recv ast.Expr
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
					recv = sel.X
				}
			}
			return g.bindModCall(call, argNodes, mf, recv)
		}
		// Interface dispatch: bind every module implementation.
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil &&
			types.IsInterface(sig.Recv().Type()) {
			var rets []int
			for _, impl := range g.pa.mod.impls.resolve(sig.Recv().Type(), callee.Name()) {
				if mf := g.pa.mod.byObj[impl]; mf != nil {
					var recv ast.Expr
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						recv = sel.X
					}
					r := g.bindModCall(call, argNodes, mf, recv)
					rets = mergeRets(g.pa, rets, r)
				}
			}
			if len(rets) > 0 {
				return rets
			}
		}
		return g.externCall(call, callee.Name())
	}
	// Direct or bound function literal (only meaningful inside a
	// declared function; package-level initializers have no fn).
	if g.fn != nil {
		if lit := launchedLiteral(g.pkg, g.fn.Decl, call); lit != nil {
			return g.bindLitCall(call, argNodes, lit)
		}
	}
	name := "func"
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		name = id.Name
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name = sel.Sel.Name
	}
	return g.externCall(call, name)
}

func mergeRets(pa *ptsFacts, dst, src []int) []int {
	for i, s := range src {
		if s < 0 {
			continue
		}
		if i >= len(dst) {
			for len(dst) <= i {
				dst = append(dst, pa.newNode())
			}
		}
		pa.addCopy(s, dst[i])
	}
	return dst
}

func (g *ptGen) builtinCall(name string, call *ast.CallExpr) []int {
	switch name {
	case "new":
		t := g.pkg.typeOf(call)
		var elem types.Type
		if p, ok := t.(*types.Pointer); ok {
			elem = p.Elem()
		}
		obj := g.pa.newObj(objNew, call.Pos(), g.pkg, elem,
			nil, "new("+g.typeLabel(elem)+")", g.inLoop(call.Pos()))
		n := g.pa.newNode()
		g.pa.addObj(n, obj)
		return []int{n}
	case "make":
		t := g.pkg.typeOf(call)
		obj := g.pa.newObj(objMake, call.Pos(), g.pkg, t,
			nil, "make("+g.typeLabel(t)+")", g.inLoop(call.Pos()))
		n := g.pa.newNode()
		g.pa.addObj(n, obj)
		return []int{n}
	case "append":
		if len(call.Args) == 0 {
			return nil
		}
		n := g.pa.newNode()
		if s := g.expr(call.Args[0]); s >= 0 {
			g.pa.addCopy(s, n) // result may alias the old backing array
		}
		obj := g.pa.newObj(objSyn, call.Pos(), g.pkg, g.pkg.typeOf(call),
			nil, "append@"+g.posLabel(call.Pos()), g.inLoop(call.Pos()))
		g.pa.addObj(n, obj)
		for _, a := range call.Args[1:] {
			if v := g.expr(a); v >= 0 {
				g.store(n, "", v)
			}
		}
		return []int{n}
	case "copy":
		if len(call.Args) == 2 {
			dst, src := g.expr(call.Args[0]), g.expr(call.Args[1])
			if dst >= 0 && src >= 0 {
				tmp := g.pa.newNode()
				g.load(tmp, src, "")
				g.store(dst, "", tmp)
			}
		}
		return nil
	case "min", "max":
		var rets []int
		for _, a := range call.Args {
			rets = mergeRets(g.pa, rets, []int{g.expr(a)})
		}
		return rets
	}
	// len/cap/close/delete/clear/panic/print...: evaluate args for the
	// memo, no result flow.
	for _, a := range call.Args {
		g.expr(a)
	}
	return nil
}

// bindModCall binds one resolved module call: receiver, parameters
// (variadic packing included), and result nodes.
func (g *ptGen) bindModCall(call *ast.CallExpr, argNodes []int, mf *ModFunc, recvExpr ast.Expr) []int {
	cg := &ptGen{pa: g.pa, pkg: mf.Pkg, fn: mf}
	recvObj, params := signatureObjects(mf)
	if recvExpr != nil && recvObj != nil {
		if rn := g.expr(recvExpr); rn >= 0 {
			if t := cg.varNodeOf(recvObj); t >= 0 {
				g.pa.addCopy(rn, t)
			}
		}
	}
	sig, _ := mf.Obj.Type().(*types.Signature)
	variadic := sig != nil && sig.Variadic()
	for i, p := range params {
		if p == nil {
			continue
		}
		t := cg.varNodeOf(p)
		if t < 0 {
			continue
		}
		if variadic && i == len(params)-1 && !call.Ellipsis.IsValid() {
			// Pack the extra args into a synthetic slice object.
			obj := g.pa.newObj(objSyn, call.Pos(), g.pkg, p.Type(),
				nil, "variadic@"+g.posLabel(call.Pos()), g.inLoop(call.Pos()))
			for j := i; j < len(argNodes); j++ {
				if argNodes[j] >= 0 {
					g.pa.addCopy(argNodes[j], g.pa.cellOf(obj, ""))
				}
			}
			pn := g.pa.newNode()
			g.pa.addObj(pn, obj)
			g.pa.addCopy(pn, t)
			continue
		}
		if i < len(argNodes) && argNodes[i] >= 0 {
			g.pa.addCopy(argNodes[i], t)
		}
	}
	return append([]int(nil), cg.retNodesOf(mf.Decl.Body, mf.Decl.Type)...)
}

// bindLitCall binds a call of a function literal written in place or
// bound to a local (the launch idiom wgleak resolves).
func (g *ptGen) bindLitCall(call *ast.CallExpr, argNodes []int, lit *ast.FuncLit) []int {
	i := 0
	if lit.Type.Params != nil {
		for _, fl := range lit.Type.Params.List {
			for _, name := range fl.Names {
				if obj := g.pkg.Info.Defs[name]; obj != nil {
					if t := g.varNodeOf(obj); t >= 0 && i < len(argNodes) && argNodes[i] >= 0 {
						g.pa.addCopy(argNodes[i], t)
					}
				}
				i++
			}
		}
	}
	return append([]int(nil), g.retNodesOf(lit.Body, lit.Type)...)
}

// externCall models an unresolved callee: one extern object per
// pointer-carrying result, arguments not retained.
func (g *ptGen) externCall(call *ast.CallExpr, name string) []int {
	var results []types.Type
	if tv, ok := g.pkg.Info.Types[call]; ok && tv.Type != nil {
		if tup, ok := tv.Type.(*types.Tuple); ok {
			for i := 0; i < tup.Len(); i++ {
				results = append(results, tup.At(i).Type())
			}
		} else {
			results = append(results, tv.Type)
		}
	}
	rets := make([]int, len(results))
	for i, rt := range results {
		rets[i] = -1
		if !pointerCarrying(rt) {
			continue
		}
		obj := g.pa.newObj(objExtern, call.Pos(), g.pkg, rt,
			nil, "extern:"+name, g.inLoop(call.Pos()))
		n := g.pa.newNode()
		g.pa.addObj(n, obj)
		rets[i] = n
	}
	return rets
}

// ---------------------------------------------------------------------
// Escape closures and queries.

// reachFrom closes a seed object set over field cells: everything a
// holder of those objects can reach by selection/indexing.
func (pa *ptsFacts) reachFrom(seed map[int]bool) map[int]bool {
	out := map[int]bool{}
	var stack []int
	for o := range seed {
		out[o] = true
		stack = append(stack, o)
	}
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for key, n := range pa.cellNode {
			if key.obj != o {
				continue
			}
			for t := range pa.pointsToSet(n) {
				if !out[t] {
					out[t] = true
					stack = append(stack, t)
				}
			}
		}
	}
	return out
}

// buildEscapes computes the module-wide escape sets: objects reachable
// from package-level variables, and objects reachable through channel
// payload cells. Built once after solving; read-only afterwards.
func (pa *ptsFacts) buildEscapes() {
	globals := map[int]bool{}
	for obj, id := range pa.varObjID {
		if pa.objs[id].kind == objGlobal {
			globals[id] = true
		}
		_ = obj
	}
	for obj, n := range pa.varNode {
		if n < 0 {
			continue
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			for o := range pa.pointsToSet(n) {
				globals[o] = true
			}
		}
	}
	pa.escapedGlobal = pa.reachFrom(globals)

	chans := map[int]bool{}
	for _, o := range pa.objs {
		if o.typ == nil {
			continue
		}
		if _, isChan := o.typ.Underlying().(*types.Chan); !isChan {
			continue
		}
		for t := range pa.pointsToSet(pa.cellOf(o.id, "")) {
			chans[t] = true
		}
	}
	pa.escapedChan = pa.reachFrom(chans)
}

// objectsOf returns the sorted object ids an expression may point to.
func (pa *ptsFacts) objectsOf(e ast.Expr) []int {
	n := pa.nodeOfExpr(e)
	if n < 0 {
		return nil
	}
	var out []int
	for o := range pa.pointsToSet(n) {
		out = append(out, o)
	}
	sort.Ints(out)
	return out
}

// PointsTo is the debug query hook: it returns the sorted labels
// ("kind@file:line") of the abstract objects the named variable of the
// named function may point to. funcName matches the declared name
// (methods by bare name); varName matches a parameter or local. Used by
// the points-to fixture tests and handy under a debugger.
func (m *Module) PointsTo(pkgPath, funcName, varName string) []string {
	pa := m.pts
	if pa == nil {
		return nil
	}
	pkg := m.byPath[pkgPath]
	if pkg == nil {
		return nil
	}
	for _, f := range m.funcsInPackage(pkg) {
		if f.Decl.Name.Name != funcName {
			continue
		}
		var found types.Object
		ast.Inspect(f.Decl, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok || id.Name != varName {
				return true
			}
			if obj := pkg.Info.Defs[id]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					found = obj
				}
			}
			return true
		})
		if found == nil {
			continue
		}
		n, ok := pa.varNode[found]
		if !ok || n < 0 {
			return nil
		}
		seen := map[string]bool{}
		var out []string
		for o := range pa.pointsToSet(pa.find(n)) {
			obj := pa.objs[o]
			label := obj.label
			if obj.kind != objGlobal && obj.kind != objVar && obj.kind != objExtern {
				p := pkg.Fset.Position(obj.pos)
				label = fmt.Sprintf("%s@%s:%d", obj.label, filepath.Base(p.Filename), p.Line)
			}
			if !seen[label] {
				seen[label] = true
				out = append(out, label)
			}
		}
		sort.Strings(out)
		return out
	}
	return nil
}
