package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetFlow reports nondeterminism-tainted values reaching a
// determinism sink. Sinks are the places where a scheduling- or
// clock-dependent value silently breaks the bit-exactness contract:
//
//   - construction of a result frontier (stores/appends into a field
//     named Frontier) and the canonical ordering/dominance helpers
//     (totalLess, dominates) — the oracle compares these bitwise;
//   - JSON job output in the serve packages (json.Marshal /
//     Encoder.Encode) — clients replay and diff these;
//   - golden-file writers (os.WriteFile, functions named *Golden*) —
//     a tainted byte there makes the golden suite flap;
//   - transitively, any module function that forwards a parameter to
//     one of the above (the sinkParam summary).
//
// Taint sources, propagation, and the //replint:metadata escape hatch
// are described in taint.go.
const detFlowRule = "detflow"

var DetFlow = &Analyzer{
	Name: detFlowRule,
	Doc: "flags nondeterministic values (wall clock, global math/rand, map " +
		"iteration order, goroutine completion order, pointer formatting) " +
		"flowing into determinism sinks: frontier construction, totalLess/" +
		"dominates, serve JSON output, golden-file writers; annotate " +
		"deliberately nondeterministic diagnostic fields //replint:metadata",
	// ModWide: taint field facts are module-global: a store in any
	// package can taint a field this package reads.
	ModWide: true,
	Run:     runDetFlow,
}

func runDetFlow(pass *Pass) {
	mod := pass.Mod
	if mod == nil {
		return
	}
	t := mod.taint
	inServe := strings.Contains(relPath(pass.Pkg.Path), "serve")
	for _, f := range mod.funcsInPackage(pass.Pkg) {
		f := f
		reported := map[token.Pos]bool{}
		check := func(arg ast.Expr, sinkDesc string) {
			if reported[arg.Pos()] {
				return
			}
			// A sink fed straight from one of f's own sink-summarized
			// parameters reports at the tainted call sites instead —
			// that relocation is what the sinkParam summary is for.
			if slots := t.sinkParam[f.Obj]; len(slots) > 0 {
				base := syntacticBase(pass.Pkg, deref(arg))
				recvObj, params := signatureObjects(f)
				if base != nil && base == recvObj && slots[-1] {
					return
				}
				for i, p := range params {
					if base != nil && base == p && slots[i] {
						return
					}
				}
			}
			set := t.exprTaint(f, arg)
			set.mergeFrom(t.typeFieldTaint(pass.Pkg.typeOf(arg), nil))
			if len(set) == 0 {
				return
			}
			reported[arg.Pos()] = true
			pass.Report(arg.Pos(), detFlowRule, fmt.Sprintf(
				"%s value %s reaches %s; derive it deterministically or mark the carrying field //replint:metadata",
				set.describe(), exprString(arg), sinkDesc))
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.CallExpr:
				checkCallSinks(pass, f, st, inServe, check)
			case *ast.AssignStmt:
				// Frontier field stores: r.Frontier = expr and
				// r.Frontier = append(r.Frontier, expr...).
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, lhs := range st.Lhs {
					if !isFrontierField(pass.Pkg, lhs) {
						continue
					}
					rhs := st.Rhs[i]
					if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") {
						for _, a := range call.Args[1:] {
							check(a, "the result frontier")
						}
						continue
					}
					if isFrontierField(pass.Pkg, rhs) {
						continue // self-move
					}
					check(rhs, "the result frontier")
				}
			}
			return true
		})
	}
}

func checkCallSinks(pass *Pass, f *ModFunc, call *ast.CallExpr, inServe bool, check func(ast.Expr, string)) {
	pkg := pass.Pkg
	callee := calleeFunc(pkg, call)
	if callee == nil {
		return
	}
	mod := pass.Mod
	if mod.byObj[callee] != nil {
		name := callee.Name()
		switch {
		case name == "totalLess" || name == "dominates":
			for _, arg := range call.Args {
				check(arg, fmt.Sprintf("the canonical solution order (%s)", name))
			}
		case strings.Contains(name, "Golden"):
			for _, arg := range call.Args {
				check(arg, fmt.Sprintf("golden-file output (%s)", name))
			}
		}
		// Transitive sinks through the summary.
		if slots := mod.taint.sinkParam[callee]; len(slots) > 0 {
			if slots[-1] {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					check(sel.X, fmt.Sprintf("a determinism sink via %s", name))
				}
			}
			for i, arg := range call.Args {
				if slots[i] {
					check(arg, fmt.Sprintf("a determinism sink via %s", name))
				}
			}
		}
		return
	}
	// External sinks.
	if callee.Pkg() == nil {
		return
	}
	switch callee.Pkg().Path() {
	case "encoding/json":
		if !inServe {
			return
		}
		sig, _ := callee.Type().(*types.Signature)
		isMethod := sig != nil && sig.Recv() != nil
		switch {
		case !isMethod && (callee.Name() == "Marshal" || callee.Name() == "MarshalIndent"):
			if len(call.Args) > 0 {
				check(call.Args[0], "JSON job output (json.Marshal)")
			}
		case isMethod && callee.Name() == "Encode":
			if len(call.Args) > 0 {
				check(call.Args[0], "JSON job output (Encoder.Encode)")
			}
		}
	case "os":
		if callee.Name() == "WriteFile" && len(call.Args) >= 2 {
			check(call.Args[1], "golden-file output (os.WriteFile)")
		}
	}
}

// isFrontierField reports whether the expression is a selector of a
// field named Frontier.
func isFrontierField(pkg *Package, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Frontier" {
		return false
	}
	s, ok := pkg.Info.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

// registerSinkParams seeds the sinkParam summary from the primary
// sinks, so the taint fixpoint can propagate "forwards to a sink" up
// the call graph. Called from buildTaint's walk via transferCall is
// not enough — the seed has to come from the sink sites themselves.
func (t *taintFacts) seedSinkParams() {
	for _, f := range t.mod.Funcs {
		f := f
		pkg := f.Pkg
		inServe := strings.Contains(relPath(pkg.Path), "serve")
		recvObj, params := signatureObjects(f)
		classify := func(arg ast.Expr) (int, bool) {
			root := storageRoot(pkg, deref(arg))
			if root == nil {
				return 0, false
			}
			if root == recvObj {
				return -1, true
			}
			for i, p := range params {
				if root == p {
					return i, true
				}
			}
			return 0, false
		}
		seed := func(arg ast.Expr) {
			if slot, ok := classify(arg); ok {
				t.setSummary(t.sinkParam, f.Obj, slot)
			}
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pkg, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if t.mod.byObj[callee] != nil {
				name := callee.Name()
				if name == "totalLess" || name == "dominates" || strings.Contains(name, "Golden") {
					for _, arg := range call.Args {
						seed(arg)
					}
				}
				return true
			}
			switch callee.Pkg().Path() {
			case "encoding/json":
				if !inServe {
					return true
				}
				sig, _ := callee.Type().(*types.Signature)
				isMethod := sig != nil && sig.Recv() != nil
				if (!isMethod && (callee.Name() == "Marshal" || callee.Name() == "MarshalIndent") || isMethod && callee.Name() == "Encode") && len(call.Args) > 0 {
					seed(call.Args[0])
				}
			case "os":
				if callee.Name() == "WriteFile" && len(call.Args) >= 2 {
					seed(call.Args[1])
				}
			}
			return true
		})
	}
}
