package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeTree materializes a map of relative path → contents under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, src := range files {
		full := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// cacheModule builds a three-package module (root → mid → leaf) in a
// temp dir so edits can be applied without touching real fixtures.
func cacheModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module cachefix\n\ngo 1.22\n",
		"root.go": "package root\n\nimport \"cachefix/mid\"\n\n" +
			"// Sum is the root entry point.\nfunc Sum(n int) int { return mid.Twice(n) }\n",
		"mid/mid.go": "package mid\n\nimport \"cachefix/leaf\"\n\n" +
			"// Twice doubles via the leaf.\nfunc Twice(n int) int { return leaf.Add(n, n) }\n",
		"leaf/leaf.go": "package leaf\n\n// Add adds.\nfunc Add(a, b int) int { return a + b }\n",
	})
	return dir
}

func moduleKeys(t *testing.T, dir string) map[string]string {
	t.Helper()
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := PackageKeys(loader, All(), []string{"cachefix", "cachefix/mid", "cachefix/leaf"})
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

// TestFactKeyStability: recomputing keys over an unchanged tree yields
// identical keys — the warm-run precondition for zero rebuilds.
func TestFactKeyStability(t *testing.T) {
	dir := cacheModule(t)
	first := moduleKeys(t, dir)
	second := moduleKeys(t, dir)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("keys unstable over unchanged tree:\nfirst  %v\nsecond %v", first, second)
	}
	for p, k := range first {
		if len(k) != 64 {
			t.Errorf("key for %s has length %d, want 64 hex chars", p, len(k))
		}
	}
}

// TestFactKeyInvalidation: editing a file changes the key of its
// package and of every reverse dependency, and of nothing else.
func TestFactKeyInvalidation(t *testing.T) {
	dir := cacheModule(t)
	before := moduleKeys(t, dir)

	// Editing the leaf invalidates the whole chain above it.
	leaf := filepath.Join(dir, "leaf", "leaf.go")
	src, err := os.ReadFile(leaf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(leaf, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	after := moduleKeys(t, dir)
	for _, p := range []string{"cachefix", "cachefix/mid", "cachefix/leaf"} {
		if before[p] == after[p] {
			t.Errorf("leaf edit: key of %s did not change", p)
		}
	}

	// Editing the root invalidates only the root.
	base := after
	root := filepath.Join(dir, "root.go")
	src, err = os.ReadFile(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(root, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	final := moduleKeys(t, dir)
	if base["cachefix"] == final["cachefix"] {
		t.Error("root edit: root key did not change")
	}
	for _, p := range []string{"cachefix/mid", "cachefix/leaf"} {
		if base[p] != final[p] {
			t.Errorf("root edit: key of %s changed but %s does not depend on the root", p, p)
		}
	}
}

// TestFactCacheRoundTrip: Put then Get replays both finding tiers
// byte-identically under matching keys, degrades to a partial hit when
// only the module key went stale, misses under a changed closure key or
// unknown path, and the hit/partial/miss counters track each outcome.
func TestFactCacheRoundTrip(t *testing.T) {
	cache, err := NewFactCache(filepath.Join(t.TempDir(), "facts"))
	if err != nil {
		t.Fatal(err)
	}
	local := []CachedFinding{
		{File: "a/a.go", Line: 3, Col: 2, Rule: "maprange", Msg: "m"},
	}
	modWide := []CachedFinding{
		{File: "a/a.go", Line: 9, Col: 1, Rule: "aliasrace", Msg: "f", Suppressed: true, Reason: "r"},
	}
	if err := cache.Put("mod/a", "key1", "mk1", local, modWide); err != nil {
		t.Fatal(err)
	}
	gl, gm, lok, mok := cache.Get("mod/a", "key1", "mk1")
	if !lok || !mok || !reflect.DeepEqual(gl, local) || !reflect.DeepEqual(gm, modWide) {
		t.Errorf("full Get = %v, %v, %v, %v; want both tiers replayed", gl, gm, lok, mok)
	}

	// Stale module key: local findings replay, module-wide ones do not.
	gl, gm, lok, mok = cache.Get("mod/a", "key1", "mk2")
	if !lok || mok || !reflect.DeepEqual(gl, local) || gm != nil {
		t.Errorf("partial Get = %v, %v, %v, %v; want local tier only", gl, gm, lok, mok)
	}

	if _, _, lok, _ := cache.Get("mod/a", "key2", "mk1"); lok {
		t.Error("Get with changed closure key hit; want miss")
	}
	if _, _, lok, _ := cache.Get("mod/b", "key1", "mk1"); lok {
		t.Error("Get of unknown path hit; want miss")
	}
	if cache.Hits() != 1 || cache.Partials() != 1 || cache.Misses() != 2 {
		t.Errorf("counters = %d hits / %d partials / %d misses, want 1 / 1 / 2",
			cache.Hits(), cache.Partials(), cache.Misses())
	}

	// Empty finding sets are cached too: a clean package on a warm run
	// must count as a hit, not be recomputed forever.
	if err := cache.Put("mod/clean", "k", "mk", nil, nil); err != nil {
		t.Fatal(err)
	}
	gl, gm, lok, mok = cache.Get("mod/clean", "k", "mk")
	if !lok || !mok || gl == nil || gm == nil || len(gl)+len(gm) != 0 {
		t.Errorf("empty-set entry = %v, %v, %v, %v; want [], [], true, true", gl, gm, lok, mok)
	}
}

// TestFactCacheEndToEnd drives the full warm-run contract at the API
// level: run the analyzers, Put per package, recompute keys without
// rebuilding, and require every lookup to fully hit with identical
// findings in both tiers.
func TestFactCacheEndToEnd(t *testing.T) {
	dir := cacheModule(t)
	paths := []string{"cachefix", "cachefix/mid", "cachefix/leaf"}

	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, modKey, err := CacheKeys(loader, All(), paths)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := BuildModule(loader)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewFactCache(filepath.Join(t.TempDir(), "facts"))
	if err != nil {
		t.Fatal(err)
	}
	storedLocal := map[string][]CachedFinding{}
	storedMod := map[string][]CachedFinding{}
	for _, p := range paths {
		local, modWide := []CachedFinding{}, []CachedFinding{}
		for _, f := range mod.RunPackage(mod.Package(p), All()) {
			rel, err := filepath.Rel(dir, f.Pos.Filename)
			if err != nil {
				rel = f.Pos.Filename
			}
			cf := CachedFinding{
				File: filepath.ToSlash(rel), Line: f.Pos.Line, Col: f.Pos.Column,
				Rule: f.Rule, Msg: f.Msg, Suppressed: f.Suppressed, Reason: f.Reason,
			}
			if IsModWide(f.Rule) {
				modWide = append(modWide, cf)
			} else {
				local = append(local, cf)
			}
		}
		if err := cache.Put(p, keys[p], modKey, local, modWide); err != nil {
			t.Fatal(err)
		}
		storedLocal[p], storedMod[p] = local, modWide
	}

	// Warm run: fresh loader, fresh keyer, no module build.
	loader2, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys2, modKey2, err := CacheKeys(loader2, All(), paths)
	if err != nil {
		t.Fatal(err)
	}
	if modKey2 != modKey {
		t.Errorf("module key unstable over unchanged tree: %s vs %s", modKey, modKey2)
	}
	for _, p := range paths {
		local, modWide, lok, mok := cache.Get(p, keys2[p], modKey2)
		if !lok || !mok {
			t.Errorf("warm run: %s missed the cache (local %v, mod %v)", p, lok, mok)
			continue
		}
		if !reflect.DeepEqual(local, storedLocal[p]) || !reflect.DeepEqual(modWide, storedMod[p]) {
			t.Errorf("warm run: %s replayed %v + %v, want %v + %v",
				p, local, modWide, storedLocal[p], storedMod[p])
		}
	}
	if cache.Misses() != 0 || cache.Partials() != 0 {
		t.Errorf("warm run recorded %d misses / %d partials, want 0 / 0",
			cache.Misses(), cache.Partials())
	}
}

// TestModuleKeyOutOfClosureEdit pins the regression the module key
// exists for: module-wide rule findings of a package can change when a
// package OUTSIDE its import closure is edited (interface impls,
// reverse call edges, global field facts, caller-bound points-to sets
// are all module-global). Editing the root — which the leaf does not
// import — must leave the leaf's closure key intact but rotate the
// module key, so a lookup degrades to a partial hit and the module-wide
// rules re-run instead of replaying potentially wrong findings.
func TestModuleKeyOutOfClosureEdit(t *testing.T) {
	dir := cacheModule(t)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, modKey, err := CacheKeys(loader, All(), []string{"cachefix/leaf"})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewFactCache(filepath.Join(t.TempDir(), "facts"))
	if err != nil {
		t.Fatal(err)
	}
	local := []CachedFinding{{File: "leaf/leaf.go", Line: 3, Col: 1, Rule: "maprange", Msg: "m"}}
	modWide := []CachedFinding{{File: "leaf/leaf.go", Line: 3, Col: 1, Rule: "aliasrace", Msg: "r"}}
	if err := cache.Put("cachefix/leaf", keys["cachefix/leaf"], modKey, local, modWide); err != nil {
		t.Fatal(err)
	}

	root := filepath.Join(dir, "root.go")
	src, err := os.ReadFile(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(root, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}

	loader2, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys2, modKey2, err := CacheKeys(loader2, All(), []string{"cachefix/leaf"})
	if err != nil {
		t.Fatal(err)
	}
	if keys2["cachefix/leaf"] != keys["cachefix/leaf"] {
		t.Error("root edit changed the leaf's closure key; leaf does not import the root")
	}
	if modKey2 == modKey {
		t.Error("root edit did not change the module key")
	}
	gl, gm, lok, mok := cache.Get("cachefix/leaf", keys2["cachefix/leaf"], modKey2)
	if !lok || mok {
		t.Errorf("out-of-closure edit: lookup = local %v, mod %v; want partial hit (true, false)", lok, mok)
	}
	if !reflect.DeepEqual(gl, local) || gm != nil {
		t.Errorf("partial hit replayed %v + %v; want local tier only (%v, nil)", gl, gm, local)
	}
}
