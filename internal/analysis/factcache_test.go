package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeTree materializes a map of relative path → contents under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, src := range files {
		full := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// cacheModule builds a three-package module (root → mid → leaf) in a
// temp dir so edits can be applied without touching real fixtures.
func cacheModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module cachefix\n\ngo 1.22\n",
		"root.go": "package root\n\nimport \"cachefix/mid\"\n\n" +
			"// Sum is the root entry point.\nfunc Sum(n int) int { return mid.Twice(n) }\n",
		"mid/mid.go": "package mid\n\nimport \"cachefix/leaf\"\n\n" +
			"// Twice doubles via the leaf.\nfunc Twice(n int) int { return leaf.Add(n, n) }\n",
		"leaf/leaf.go": "package leaf\n\n// Add adds.\nfunc Add(a, b int) int { return a + b }\n",
	})
	return dir
}

func moduleKeys(t *testing.T, dir string) map[string]string {
	t.Helper()
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := PackageKeys(loader, All(), []string{"cachefix", "cachefix/mid", "cachefix/leaf"})
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

// TestFactKeyStability: recomputing keys over an unchanged tree yields
// identical keys — the warm-run precondition for zero rebuilds.
func TestFactKeyStability(t *testing.T) {
	dir := cacheModule(t)
	first := moduleKeys(t, dir)
	second := moduleKeys(t, dir)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("keys unstable over unchanged tree:\nfirst  %v\nsecond %v", first, second)
	}
	for p, k := range first {
		if len(k) != 64 {
			t.Errorf("key for %s has length %d, want 64 hex chars", p, len(k))
		}
	}
}

// TestFactKeyInvalidation: editing a file changes the key of its
// package and of every reverse dependency, and of nothing else.
func TestFactKeyInvalidation(t *testing.T) {
	dir := cacheModule(t)
	before := moduleKeys(t, dir)

	// Editing the leaf invalidates the whole chain above it.
	leaf := filepath.Join(dir, "leaf", "leaf.go")
	src, err := os.ReadFile(leaf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(leaf, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	after := moduleKeys(t, dir)
	for _, p := range []string{"cachefix", "cachefix/mid", "cachefix/leaf"} {
		if before[p] == after[p] {
			t.Errorf("leaf edit: key of %s did not change", p)
		}
	}

	// Editing the root invalidates only the root.
	base := after
	root := filepath.Join(dir, "root.go")
	src, err = os.ReadFile(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(root, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	final := moduleKeys(t, dir)
	if base["cachefix"] == final["cachefix"] {
		t.Error("root edit: root key did not change")
	}
	for _, p := range []string{"cachefix/mid", "cachefix/leaf"} {
		if base[p] != final[p] {
			t.Errorf("root edit: key of %s changed but %s does not depend on the root", p, p)
		}
	}
}

// TestFactCacheRoundTrip: Put then Get replays findings byte-identically
// under the same key, misses under a different key or unknown path, and
// the hit/miss counters track each outcome.
func TestFactCacheRoundTrip(t *testing.T) {
	cache, err := NewFactCache(filepath.Join(t.TempDir(), "facts"))
	if err != nil {
		t.Fatal(err)
	}
	want := []CachedFinding{
		{File: "a/a.go", Line: 3, Col: 2, Rule: "maprange", Msg: "m"},
		{File: "a/a.go", Line: 9, Col: 1, Rule: "floatcmp", Msg: "f", Suppressed: true, Reason: "r"},
	}
	if err := cache.Put("mod/a", "key1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Get("mod/a", "key1")
	if !ok || !reflect.DeepEqual(got, want) {
		t.Errorf("Get after Put = %v, %v; want %v, true", got, ok, want)
	}
	if _, ok := cache.Get("mod/a", "key2"); ok {
		t.Error("Get with changed key hit; want miss")
	}
	if _, ok := cache.Get("mod/b", "key1"); ok {
		t.Error("Get of unknown path hit; want miss")
	}
	if cache.Hits() != 1 || cache.Misses() != 2 {
		t.Errorf("counters = %d hits / %d misses, want 1 / 2", cache.Hits(), cache.Misses())
	}

	// Empty finding sets are cached too: a clean package on a warm run
	// must count as a hit, not be recomputed forever.
	if err := cache.Put("mod/clean", "k", nil); err != nil {
		t.Fatal(err)
	}
	got, ok = cache.Get("mod/clean", "k")
	if !ok || len(got) != 0 || got == nil {
		t.Errorf("empty-set entry = %v, %v; want [], true", got, ok)
	}
}

// TestFactCacheEndToEnd drives the full warm-run contract at the API
// level: run the analyzers, Put per package, recompute keys without
// rebuilding, and require every lookup to hit with identical findings.
func TestFactCacheEndToEnd(t *testing.T) {
	dir := cacheModule(t)
	paths := []string{"cachefix", "cachefix/mid", "cachefix/leaf"}

	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := PackageKeys(loader, All(), paths)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := BuildModule(loader)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewFactCache(filepath.Join(t.TempDir(), "facts"))
	if err != nil {
		t.Fatal(err)
	}
	stored := map[string][]CachedFinding{}
	for _, p := range paths {
		var cfs []CachedFinding
		for _, f := range mod.RunPackage(mod.Package(p), All()) {
			rel, err := filepath.Rel(dir, f.Pos.Filename)
			if err != nil {
				rel = f.Pos.Filename
			}
			cfs = append(cfs, CachedFinding{
				File: filepath.ToSlash(rel), Line: f.Pos.Line, Col: f.Pos.Column,
				Rule: f.Rule, Msg: f.Msg, Suppressed: f.Suppressed, Reason: f.Reason,
			})
		}
		if err := cache.Put(p, keys[p], cfs); err != nil {
			t.Fatal(err)
		}
		if cfs == nil {
			cfs = []CachedFinding{}
		}
		stored[p] = cfs
	}

	// Warm run: fresh loader, fresh keyer, no module build.
	loader2, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys2, err := PackageKeys(loader2, All(), paths)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		got, ok := cache.Get(p, keys2[p])
		if !ok {
			t.Errorf("warm run: %s missed the cache", p)
			continue
		}
		if !reflect.DeepEqual(got, stored[p]) {
			t.Errorf("warm run: %s replayed %v, want %v", p, got, stored[p])
		}
	}
	if cache.Misses() != 0 {
		t.Errorf("warm run recorded %d misses, want 0", cache.Misses())
	}
}
