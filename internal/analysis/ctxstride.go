package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CtxStride enforces the cancellation-stride contract on
// context-aware code (SolveContext / AnalyzeWorkersCtx / PlaceContext
// style): a loop whose trip count is not bounded by its own header —
// `for { ... }` and `for cond { ... }` — must poll cancellation
// somewhere in its body, directly (ctx.Err(), <-ctx.Done(), a select
// with a Done case) or through a callee that transitively polls (the
// cancelled() latch, a strided check helper). Counted and range loops
// are exempt: their trip count is fixed by data the caller already
// bounded, and the stride checks live at the level above them.
//
// A function is in scope when it can reach a context at all — a
// context.Context parameter, or a receiver whose struct carries a
// context field. Code without a context has no way to poll and is not
// blamed for it.
const ctxStrideRule = "ctxstride"

var CtxStride = &Analyzer{
	Name: ctxStrideRule,
	Doc: "flags condition-only and infinite loops in context-carrying code " +
		"that never poll cancellation (ctx.Err / ctx.Done / a polling " +
		"callee); add a strided check or bound the loop",
	// ModWide: poll classification follows reverse call edges,
	// which reach callers in any module package.
	ModWide: true,
	Run:     runCtxStride,
}

func runCtxStride(pass *Pass) {
	mod := pass.Mod
	if mod == nil {
		return
	}
	for _, f := range mod.funcsInPackage(pass.Pkg) {
		if !hasCtxAccess(f) {
			continue
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			// Counted loops (init+post headers) manage their own
			// bound; only header-unbounded shapes are in scope.
			if loop.Init != nil || loop.Post != nil {
				return true
			}
			if pollsInBody(mod, pass.Pkg, loop.Body) {
				return true
			}
			shape := "infinite"
			if loop.Cond != nil {
				shape = "condition-only"
			}
			pass.Report(loop.For, ctxStrideRule, fmt.Sprintf(
				"%s loop in context-carrying %s never polls cancellation; "+
					"check ctx every N iterations (see ctxCheckStride) or bound the loop",
				shape, f.Obj.Name()))
			return true
		})
	}
}

// hasCtxAccess reports whether the function can observe a context: a
// context.Context parameter or a receiver struct with a context
// field.
func hasCtxAccess(f *ModFunc) bool {
	sig, ok := f.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if isContextType(st.Field(i).Type()) {
					return true
				}
			}
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// pollsInBody reports whether the loop body polls cancellation:
// lexically (Err/Done on a context value) or through a module callee
// that transitively polls.
func pollsInBody(mod *Module, pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isContextType(pkg.typeOf(sel.X)) {
				found = true
				return false
			}
		}
		if callee := calleeFunc(pkg, call); callee != nil && mod.polls[callee] {
			found = true
			return false
		}
		return true
	})
	return found
}

// buildPollsSummary computes which module functions transitively poll
// cancellation: seeded by lexical Err/Done calls on a context value,
// propagated backwards over the call graph (a caller of a polling
// function polls).
func buildPollsSummary(m *Module) map[*types.Func]bool {
	polls := map[*types.Func]bool{}
	var work []*types.Func
	for _, f := range m.Funcs {
		seeded := false
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			if seeded {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isContextType(f.Pkg.typeOf(sel.X)) {
				seeded = true
				return false
			}
			return true
		})
		if seeded {
			polls[f.Obj] = true
			work = append(work, f.Obj)
		}
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		for caller := range m.cg.callers[fn] {
			if !polls[caller] {
				polls[caller] = true
				work = append(work, caller)
			}
		}
	}
	return polls
}
