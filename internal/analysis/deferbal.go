package analysis

import (
	"go/ast"
	"go/types"
)

// DeferBal checks resource balance along every path to return:
//
//   - a mutex Lock/RLock must be matched by the corresponding
//     Unlock/RUnlock (same storage, same R-ness) on every path from the
//     acquisition to function exit — a deferred unlock satisfies this
//     everywhere, a manual unlock must cover each early return;
//   - a file obtained from os.Open/os.Create/os.OpenFile and kept in a
//     local must be closed on every path from its first use, unless it
//     escapes (returned, stored away, passed on, or captured), in which
//     case ownership moved and the obligation with it.
//
// The stride-cancel loops this repo favors (checking ctx.Err() every
// 512/1024/4096 iterations and returning early) are the motivating
// shape: the early return inside the stride check is exactly where a
// manual unlock or close gets missed, and only a path-sensitive check
// sees it.
var DeferBal = &Analyzer{
	Name: "deferbal",
	Doc: "locks and files must be released on every path to return: Lock/RLock " +
		"needs a matching Unlock/RUnlock post-dominating it, os.Open/Create " +
		"results need Close or an ownership escape; defer satisfies both",
	Run: runDeferBal,
}

func runDeferBal(pass *Pass) {
	mod := pass.Mod
	if mod == nil {
		return
	}
	for _, f := range mod.funcsInPackage(pass.Pkg) {
		for _, fc := range flowContexts(f.Decl) {
			c := mod.cfgOf(pass.Pkg, fc.body)
			checkLockBalance(pass, c)
			checkFileBalance(pass, c, fc)
		}
	}
}

// unlockFor maps an acquisition method to the release that balances it.
var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// checkLockBalance demands every Lock/RLock be post-dominated by its
// matching release. Deferred releases count: defer statements are owned
// CFG nodes and the satisfaction predicate inspects them in full.
func checkLockBalance(pass *Pass, c *cfg) {
	pkg := c.pkg
	for _, b := range c.blocks {
		for ord, n := range b.nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				continue // a deferred Lock (rare, and paired inside the defer) is not an acquisition here
			}
			inspectOwned(n, func(inner ast.Node) bool {
				call, ok := inner.(*ast.CallExpr)
				if !ok {
					return true
				}
				typ, method, recv := syncCall(pkg, call)
				release, acquires := unlockFor[method]
				if !acquires || (typ != "Mutex" && typ != "RWMutex") {
					return true
				}
				mu := storageRoot(pkg, recv)
				if mu == nil {
					return true
				}
				sat := func(sn ast.Node) bool { return releasesLock(pkg, sn, mu, release) }
				if !c.mustPassToExit(b, ord, sat) && !releaseAfter(pkg, n, call, mu, release) {
					pass.Report(call.Pos(), "deferbal",
						method+" is not balanced by "+release+" on every path to return")
				}
				return true
			})
		}
	}
}

// releasesLock reports whether the node calls the given release method
// on the same mutex storage. Defer statements are inspected in full —
// a deferred unlock runs at return, which is the obligation.
func releasesLock(pkg *Package, n ast.Node, mu types.Object, release string) bool {
	inspect := inspectOwned
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		inspect = func(n ast.Node, f func(ast.Node) bool) { ast.Inspect(n, f) }
	}
	found := false
	inspect(n, func(inner ast.Node) bool {
		if found {
			return false
		}
		call, ok := inner.(*ast.CallExpr)
		if !ok {
			return true
		}
		typ, method, recv := syncCall(pkg, call)
		if (typ == "Mutex" || typ == "RWMutex") && method == release && storageRoot(pkg, recv) == mu {
			found = true
		}
		return true
	})
	return found
}

// releaseAfter reports whether the node containing the acquisition
// also releases the lock at a later position (the Lock and Unlock
// sharing one owned statement).
func releaseAfter(pkg *Package, n ast.Node, lock *ast.CallExpr, mu types.Object, release string) bool {
	found := false
	inspectOwned(n, func(inner ast.Node) bool {
		if found {
			return false
		}
		call, ok := inner.(*ast.CallExpr)
		if !ok || call.Pos() <= lock.Pos() {
			return true
		}
		typ, method, recv := syncCall(pkg, call)
		if (typ == "Mutex" || typ == "RWMutex") && method == release && storageRoot(pkg, recv) == mu {
			found = true
		}
		return true
	})
	return found
}

// checkFileBalance tracks locals bound to os.Open/os.Create/os.OpenFile
// results. Ownership either escapes or the file must be closed on every
// path from its first use (the error-check branch between the open and
// the first use returns before the file is valid, so it carries no
// obligation).
func checkFileBalance(pass *Pass, c *cfg, fc flowCtx) {
	pkg := c.pkg
	for _, b := range c.blocks {
		for _, n := range b.nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok || !osOpenCall(pkg, call) {
				continue
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pkg.Info.ObjectOf(id)
			if obj == nil {
				continue
			}
			checkFileObligation(pass, c, fc, as, obj)
		}
	}
}

// osOpenCall matches calls to os.Open, os.Create, and os.OpenFile.
func osOpenCall(pkg *Package, call *ast.CallExpr) bool {
	f := calleeFunc(pkg, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "os" {
		return false
	}
	switch f.Name() {
	case "Open", "Create", "OpenFile":
		return true
	}
	return false
}

func checkFileObligation(pass *Pass, c *cfg, fc flowCtx, open *ast.AssignStmt, obj types.Object) {
	pkg := c.pkg
	if fileEscapes(pkg, fc.body, open, obj) {
		return
	}
	ub, uord, unode := firstUse(c, open, obj)
	if unode == nil {
		pass.Report(open.Pos(), "deferbal", obj.Name()+" is opened but never closed")
		return
	}
	sat := func(sn ast.Node) bool { return releasesFile(pkg, sn, obj) }
	if !c.mustPassToExit(ub, uord, sat) && !sat(unode) {
		pass.Report(open.Pos(), "deferbal",
			obj.Name()+" is not closed on every path to return after its first use")
	}
}

// fileEscapes reports whether ownership of the file leaves the
// function: returned, sent, stored into non-local storage or another
// variable, passed as a call argument, or captured by a function
// literal. Receiver position of Close does not count.
func fileEscapes(pkg *Package, body *ast.BlockStmt, open *ast.AssignStmt, obj types.Object) bool {
	isObj := func(e ast.Expr) bool { return storageRoot(pkg, e) == obj }
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if isObj(r) {
					escapes = true
				}
			}
		case *ast.SendStmt:
			if isObj(st.Value) {
				escapes = true
			}
		case *ast.CallExpr:
			for _, a := range st.Args {
				if isObj(a) {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			if st == open {
				return true
			}
			for _, r := range st.Rhs {
				if isObj(r) {
					escapes = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range st.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if isObj(e) {
					escapes = true
				}
			}
		case *ast.FuncLit:
			ast.Inspect(st.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
					escapes = true
				}
				return !escapes
			})
			return false
		}
		return true
	})
	return escapes
}

// firstUse locates the CFG position of the earliest use of obj after
// the opening assignment (defer statements included — `defer f.Close()`
// is often the first and only use).
func firstUse(c *cfg, open *ast.AssignStmt, obj types.Object) (*cfgBlock, int, ast.Node) {
	var (
		bestB   *cfgBlock
		bestOrd int
		bestN   ast.Node
	)
	for _, b := range c.blocks {
		for ord, n := range b.nodes {
			if n == open {
				continue
			}
			uses := false
			walk := inspectOwned
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				walk = func(n ast.Node, f func(ast.Node) bool) { ast.Inspect(n, f) }
			}
			walk(n, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok && c.pkg.Info.Uses[id] == obj {
					uses = true
				}
				return !uses
			})
			if uses && (bestN == nil || n.Pos() < bestN.Pos()) {
				bestB, bestOrd, bestN = b, ord, n
			}
		}
	}
	return bestB, bestOrd, bestN
}

// releasesFile reports whether the node calls Close on the file
// storage; defer statements count in full.
func releasesFile(pkg *Package, n ast.Node, obj types.Object) bool {
	inspect := inspectOwned
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		inspect = func(n ast.Node, f func(ast.Node) bool) { ast.Inspect(n, f) }
	}
	found := false
	inspect(n, func(inner ast.Node) bool {
		if found {
			return false
		}
		call, ok := inner.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		if storageRoot(pkg, sel.X) == obj {
			found = true
		}
		return true
	})
	return found
}
