module ptsfixture

go 1.22
