// Package pts is the points-to fixture: small functions whose solved
// points-to sets the pointsto_test asserts through the Module.PointsTo
// debug query. Line positions matter — the expected labels in the test
// name them — so keep edits append-only where possible.
package pts

import "errors"

type node struct {
	next *node
	tag  string
}

type shape interface{ area() float64 }

type circle struct{ r float64 }

func (c *circle) area() float64 { return c.r * c.r }

type square struct{ s float64 }

func (sq *square) area() float64 { return sq.s * sq.s }

// chain: a plain assignment chain preserves the allocation site.
func chain() *node {
	a := &node{tag: "origin"}
	b := a
	c := b
	return c
}

// fresh: new(T) is its own object kind.
func fresh() *node {
	p := new(node)
	return p
}

// dispatch: interface values ranged out of a slice literal carry every
// implementation stored into it (slice element flow + dispatch).
func dispatch() float64 {
	shapes := []shape{&circle{r: 1}, &square{s: 2}}
	total := 0.0
	for _, s := range shapes {
		total += s.area()
	}
	return total
}

// channels: a send threads the payload to the receive.
func channels() *node {
	ch := make(chan *node, 1)
	ch <- &node{tag: "sent"}
	got := <-ch
	return got
}

// capture: a closure stores through a captured variable; the binding
// survives the call of the bound literal.
func capture() *node {
	var kept *node
	save := func(n *node) { kept = n }
	save(&node{tag: "kept"})
	return kept
}

// buildMap / readMap: map element flow across a function boundary.
func buildMap() map[string]*node {
	m := make(map[string]*node)
	m["a"] = &node{tag: "a"}
	return m
}

func readMap() *node {
	m := buildMap()
	v := m["a"]
	return v
}

// external: unresolved callees yield per-site extern objects.
func external() error {
	err := errors.New("boom")
	return err
}

// fields: field-sensitive stores keep next and tag flows apart.
func fields() *node {
	head := &node{tag: "head"}
	tail := &node{tag: "tail"}
	head.next = tail
	n := head.next
	return n
}
