// Fixture for the aliasrace rule, the points-to-based sibling of
// sharedwrite/shardwrite. The headline case is the one the syntactic
// rules provably miss: each worker writes through a parameter that
// LOOKS like a private slice, but every entry of the shard table
// aliases the same backing array through a second name — no captured
// identifier is ever written, and the one visible index step is keyed
// by the worker id, so shardwrite blesses it. Only the object identity
// knows better.
package flow

// aliasedShards builds a shard table whose entries all alias one
// backing array: a and b are second names for base. The worker write
// p[0] is through its own parameter (sharedwrite quiet) and the launch
// is loop-keyed (shardwrite quiet), yet both instances hit base[0].
func aliasedShards() int {
	base := make([]int, 8)
	a := base
	b := base
	parts := [][]int{a, b}
	done := make(chan struct{})
	for w := 0; w < 2; w++ {
		go func(p []int, w int) {
			p[0] = w // want aliasrace
			done <- struct{}{}
		}(parts[w], w)
	}
	for i := 0; i < 2; i++ {
		<-done
	}
	return base[0]
}

// privateBuffers allocates inside each goroutine body: the objects are
// per-instance by position and the rule stays quiet.
func privateBuffers() int {
	done := make(chan int)
	for w := 0; w < 2; w++ {
		go func(w int) {
			buf := make([]int, 8)
			buf[0] = w
			done <- buf[0]
		}(w)
	}
	return <-done + <-done
}

// keyedShards writes distinct elements of one shared object: the
// outermost index step is the worker id, which is exactly the
// disjointness argument the rule accepts for a singleton object.
func keyedShards() int {
	shared := make([]int, 2)
	done := make(chan struct{})
	for w := 0; w < 2; w++ {
		go func(w int) {
			shared[w] = w
			done <- struct{}{}
		}(w)
	}
	for i := 0; i < 2; i++ {
		<-done
	}
	return shared[0] + shared[1]
}

// fill writes the first slot of whatever slice it is handed; callers
// decide whether that slot is shared.
func fill(p []int, v int) {
	p[0] = v // want aliasrace
}

// indirectAlias is the interprocedural fire: the racing write lives in
// fill, two calls deep from the launch, and reaches the shared backing
// array through argument binding — there is no captured name and no
// write in the goroutine body at all.
func indirectAlias() int {
	backing := make([]int, 4)
	x := backing
	y := backing
	done := make(chan struct{})
	go func(p []int) {
		fill(p, 1)
		done <- struct{}{}
	}(x)
	go func(p []int) {
		fill(p, 2)
		done <- struct{}{}
	}(y)
	<-done
	<-done
	return backing[0]
}

// mergeStats aliases one accumulator across two goroutines on purpose
// and documents why it is safe; the suppression carries the reasoning.
func mergeStats() int {
	acc := make([]int, 2)
	left := acc
	right := acc
	done := make(chan struct{})
	go func(p []int) {
		//replint:ignore aliasrace -- fixture: left goroutine only touches index 0, right only index 1; disjoint by construction
		p[0] = 1 // wantsuppressed aliasrace
		done <- struct{}{}
	}(left)
	go func(p []int) {
		//replint:ignore aliasrace -- fixture: left goroutine only touches index 0, right only index 1; disjoint by construction
		p[1] = 2 // wantsuppressed aliasrace
		done <- struct{}{}
	}(right)
	<-done
	<-done
	return acc[0] + acc[1]
}
