// Fixture for the aliasrace rule, the points-to-based sibling of
// sharedwrite/shardwrite. The headline case is the one the syntactic
// rules provably miss: each worker writes through a parameter that
// LOOKS like a private slice, but every entry of the shard table
// aliases the same backing array through a second name — no captured
// identifier is ever written, and the one visible index step is keyed
// by the worker id, so shardwrite blesses it. Only the object identity
// knows better.
package flow

import "sync/atomic"

// aliasedShards builds a shard table whose entries all alias one
// backing array: a and b are second names for base. The worker write
// p[0] is through its own parameter (sharedwrite quiet) and the launch
// is loop-keyed (shardwrite quiet), yet both instances hit base[0].
func aliasedShards() int {
	base := make([]int, 8)
	a := base
	b := base
	parts := [][]int{a, b}
	done := make(chan struct{})
	for w := 0; w < 2; w++ {
		go func(p []int, w int) {
			p[0] = w // want aliasrace
			done <- struct{}{}
		}(parts[w], w)
	}
	for i := 0; i < 2; i++ {
		<-done
	}
	return base[0]
}

// privateBuffers allocates inside each goroutine body: the objects are
// per-instance by position and the rule stays quiet.
func privateBuffers() int {
	done := make(chan int)
	for w := 0; w < 2; w++ {
		go func(w int) {
			buf := make([]int, 8)
			buf[0] = w
			done <- buf[0]
		}(w)
	}
	return <-done + <-done
}

// keyedShards writes distinct elements of one shared object: the
// outermost index step is the worker id, which is exactly the
// disjointness argument the rule accepts for a singleton object.
func keyedShards() int {
	shared := make([]int, 2)
	done := make(chan struct{})
	for w := 0; w < 2; w++ {
		go func(w int) {
			shared[w] = w
			done <- struct{}{}
		}(w)
	}
	for i := 0; i < 2; i++ {
		<-done
	}
	return shared[0] + shared[1]
}

// fill writes the first slot of whatever slice it is handed; callers
// decide whether that slot is shared.
func fill(p []int, v int) {
	p[0] = v // want aliasrace
}

// indirectAlias is the interprocedural fire: the racing write lives in
// fill, two calls deep from the launch, and reaches the shared backing
// array through argument binding — there is no captured name and no
// write in the goroutine body at all.
func indirectAlias() int {
	backing := make([]int, 4)
	x := backing
	y := backing
	done := make(chan struct{})
	go func(p []int) {
		fill(p, 1)
		done <- struct{}{}
	}(x)
	go func(p []int) {
		fill(p, 2)
		done <- struct{}{}
	}(y)
	<-done
	<-done
	return backing[0]
}

// readThenWrite races in the direction the pair walk used to skip: the
// EARLIER launch only reads the shared backing array and only the LATER
// launch writes it. Pairing writes of launch i against accesses of
// launch j with j >= i never sees this write, so the symmetric check
// must.
func readThenWrite() int {
	shared := make([]int, 4)
	r := shared
	w := shared
	done := make(chan int)
	go func(p []int) {
		done <- p[0] // reader instance: no write on this side
	}(r)
	go func(p []int) {
		p[0] = 1 // want aliasrace
		done <- 0
	}(w)
	return <-done + <-done
}

// keyedWriterPlainReader is the case ONLY the swapped direction can
// catch: the later launch's write is keyed by its own parameter, so the
// writer discharges against itself (instances hit distinct elements),
// but the earlier launch reads the same storage unkeyed. Writes of the
// reader against the writer find nothing; only pairing the writer's
// write against the reader's access reports.
func keyedWriterPlainReader() int {
	shared := make([]int, 2)
	r := shared
	w := shared
	done := make(chan int)
	go func(p []int) {
		done <- p[0] + p[1] // unkeyed reads, no writes
	}(r)
	go func(p []int, k int) {
		p[k] = k // want aliasrace
		done <- 0
	}(w, 1)
	return <-done + <-done
}

// atomicValueArg pins the atomic-span precision: the AddInt64 call
// updates total atomically, but its VALUE argument reads the shared
// backing array — that read is an ordinary racy access. Marking the
// whole call span atomic used to silently discharge it against the
// writer (whose own keyed write discharges against itself, so this
// pair is the only one that can report).
func atomicValueArg() int64 {
	var total int64
	shared := make([]int, 1)
	a := shared
	b := shared
	done := make(chan struct{})
	go func(p []int, k int) {
		p[k] = k + 1 // want aliasrace
		done <- struct{}{}
	}(a, 0)
	go func(p []int) {
		atomic.AddInt64(&total, int64(p[0]))
		done <- struct{}{}
	}(b)
	<-done
	<-done
	return total
}

// mergeStats aliases one accumulator across two goroutines on purpose
// and documents why it is safe; the suppression carries the reasoning.
func mergeStats() int {
	acc := make([]int, 2)
	left := acc
	right := acc
	done := make(chan struct{})
	go func(p []int) {
		//replint:ignore aliasrace -- fixture: left goroutine only touches index 0, right only index 1; disjoint by construction
		p[0] = 1 // wantsuppressed aliasrace
		done <- struct{}{}
	}(left)
	go func(p []int) {
		//replint:ignore aliasrace -- fixture: left goroutine only touches index 0, right only index 1; disjoint by construction
		p[1] = 2 // wantsuppressed aliasrace
		done <- struct{}{}
	}(right)
	<-done
	<-done
	return acc[0] + acc[1]
}
