// Fixture for the shardwrite rule, sharedwrite's interprocedural
// sibling for multi-instance workers. The headline case is the one a
// lexical rule cannot see: the worker passes a captured reference to
// a callee that writes through it (the writeParam summary carries the
// write back to the launch site). The atomic-claim case shows the
// precision win the other way — the dataflow rule recognizes the
// claimed index as a shard key, while the lexical rule needs an
// escape hatch.
package flow

import "sync/atomic"

// bump adds into the slot its pointer argument addresses: callers
// that hand it shared storage write through it.
func bump(dst *float64, x float64) {
	*dst += x
}

// fanSum hands the same captured accumulator to every worker through
// bump: the write happens in the callee, invisible lexically — the
// interprocedural fire. sharedwrite stays quiet here.
func fanSum(xs []float64) float64 {
	total := 0.0
	runLevels(len(xs), func(i int) {
		bump(&total, xs[i]) // want shardwrite
	})
	return total
}

// fanSlots gives each worker its own slot through the same callee:
// the argument is indexed by the worker parameter, clean.
func fanSlots(xs []float64) float64 {
	slots := make([]float64, len(xs))
	runLevels(len(xs), func(i int) {
		bump(&slots[i], xs[i]*xs[i])
	})
	total := 0.0
	for _, s := range slots {
		total += s
	}
	return total
}

// dualWrite writes the captured maximum directly from loop-launched
// workers: the lexical rule and the interprocedural one both see it.
func dualWrite(xs []float64) float64 {
	done := make(chan struct{})
	peak := 0.0
	for _, x := range xs {
		go func(x float64) {
			if x > peak {
				peak = x // want shardwrite,sharedwrite
			}
			done <- struct{}{}
		}(x)
	}
	for range xs {
		<-done
	}
	return peak
}

// claimSlots is the atomic-claim idiom: each worker takes unique slot
// indices from a shared counter, so writes are disjoint. shardwrite
// recognizes the claim as a shard key; the lexical sharedwrite rule
// cannot and needs the documented escape hatch.
func claimSlots(n int) []int {
	var next atomic.Int64
	out := make([]int, n)
	done := make(chan struct{})
	for w := 0; w < 3; w++ {
		go func() {
			for {
				ci := int(next.Add(1)) - 1
				if ci >= n {
					break
				}
				//replint:ignore sharedwrite -- fixture: ci is an atomically claimed unique index; shardwrite proves the same disjointness without this directive
				out[ci] = ci * ci // wantsuppressed sharedwrite
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < 3; w++ {
		<-done
	}
	return out
}

// lastWins documents an accepted last-writer-wins race on an advisory
// gauge; both rules honor the shared directive.
func lastWins(xs []float64) float64 {
	seen := 0.0
	done := make(chan struct{})
	for _, x := range xs {
		go func(x float64) {
			//replint:ignore shardwrite,sharedwrite -- fixture: last-writer-wins is acceptable for this advisory gauge
			seen = x // wantsuppressed shardwrite,sharedwrite
			done <- struct{}{}
		}(x)
	}
	for range xs {
		<-done
	}
	return seen
}
