// Package flow is a replint fixture for the sharedwrite rule: workers —
// function literals launched with `go` or handed to a runLevel-style
// fan-out — may only write captured state through indices that are
// their own parameters.
package flow

// runLevels is a worker-spawning callee by naming convention: anything
// passed to it runs concurrently.
func runLevels(n int, fn func(i int)) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			fn(i)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// badSum accumulates into a captured scalar from a goroutine: the
// textbook shared write.
func badSum(xs []float64) float64 {
	total := 0.0
	done := make(chan struct{})
	go func() {
		for _, x := range xs {
			total += x // want sharedwrite
		}
		close(done)
	}()
	<-done
	return total
}

// boundWorker writes captured state from a literal bound to a variable
// that is later launched: still a worker, still flagged.
func boundWorker() int {
	hits := 0
	done := make(chan struct{})
	w := func() {
		hits++ // want sharedwrite
		close(done)
	}
	go w()
	<-done
	return hits
}

// squares writes only through its own parameter index: sibling workers
// touch disjoint elements, the partitioned-write idiom, not flagged.
func squares(xs []float64) []float64 {
	out := make([]float64, len(xs))
	runLevels(len(xs), func(i int) {
		out[i] = xs[i] * xs[i]
	})
	return out
}

// localOnly writes a variable declared inside the worker: not captured,
// not flagged.
func localOnly(xs []int) {
	runLevels(len(xs), func(i int) {
		acc := 0
		for _, x := range xs {
			acc += x
		}
		_ = acc
	})
}

// singleWriter has exactly one goroutine touching the captured slot and
// documents why that cannot race.
func singleWriter(xs []int) int {
	best := -1
	done := make(chan struct{})
	go func() {
		//replint:ignore sharedwrite -- fixture: the lone worker is the only writer; the read is gated on done
		best = xs[0] // wantsuppressed sharedwrite
		close(done)
	}()
	<-done
	return best
}
