// Fixture for the wgleak rule: every goroutine needs a termination
// story — a WaitGroup joined by the launcher (with Add before the
// launch, Done deferred inside, and Wait post-dominating the launch
// for launcher-local groups), a done channel the launcher consumes,
// a channel the goroutine drains with range, or cancellation polling.
package serve

import (
	"context"
	"sync"
)

// fanOut is the clean local-WaitGroup shape: Add before go, deferred
// Done inside, Wait on every path after the launches.
func fanOut(n int) int {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
	return n
}

// fanOutAbort leaks on the abort path: the early return between the
// launches and Wait exits while goroutines still run — exactly the
// flow-sensitive miss an AST check cannot see.
func fanOutAbort(n int, abort bool) int {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want wgleak
			defer wg.Done()
		}()
	}
	if abort {
		return 0
	}
	wg.Wait()
	return n
}

// addInside moves Add into the goroutine, racing the launcher's Wait:
// Wait can observe the zero count and return before Add runs.
func addInside() {
	var wg sync.WaitGroup
	go func() { // want wgleak
		wg.Add(1)
		defer wg.Done()
	}()
	wg.Wait()
}

// lateDone pairs correctly but does not defer the Done: anything that
// panics before the trailing Done wedges the Wait forever.
func lateDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want wgleak
		wg.Done()
	}()
	wg.Wait()
}

// runner passes its WaitGroup explicitly; the launch-site argument is
// mapped back to the launcher's local so the Wait obligation still
// resolves.
func runner(wg *sync.WaitGroup, out chan<- int, v int) {
	defer wg.Done()
	out <- v
}

// dispatch is clean through the declared callee: Add before go,
// deferred Done inside runner, Wait post-dominating.
func dispatch(vs []int) int {
	var wg sync.WaitGroup
	out := make(chan int, len(vs))
	for _, v := range vs {
		wg.Add(1)
		go runner(&wg, out, v)
	}
	wg.Wait()
	return len(out)
}

// orphan has no WaitGroup, no channel anyone consumes, and never polls
// cancellation: it can outlive every caller.
func orphan(name string) {
	go func() { // want wgleak
		_ = len(name)
	}()
}

// doneChannel joins through the done-channel idiom: the goroutine
// sends on the channel the launcher receives from.
func doneChannel(vs []int) int {
	done := make(chan int, 1)
	go func() {
		total := 0
		for _, v := range vs {
			total += v
		}
		done <- total
	}()
	return <-done
}

// drainer terminates when the producer closes the channel it ranges
// over: the worker-pool contract.
func drainer(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// poller owns no join at all but observes cancellation every
// iteration, so its lifetime is bounded by the context.
func poller(ctx context.Context, tick chan struct{}) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			<-tick
		}
	}()
}

// fireAndForget documents why its unjoined goroutine is acceptable.
func fireAndForget(msgs chan string, m string) {
	//replint:ignore wgleak -- fixture: best-effort notification; process exit is the only consumer contract
	go func() { // wantsuppressed wgleak
		msgs <- m
	}()
}
