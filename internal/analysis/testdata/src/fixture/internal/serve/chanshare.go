// Fixture for the chanshare rule: sending a pointer on a channel is an
// ownership handoff, and a sender that keeps writing through a
// retained alias races the receiver without ever sharing a variable
// name — no capture, no `go` statement on the sender side, nothing the
// syntactic rules can anchor on.
package serve

type payload struct {
	n    int
	data []int
}

// sendThenWrite mutates the payload it just handed off.
func sendThenWrite(ch chan *payload) {
	p := &payload{}
	ch <- p
	p.n = 1 // want chanshare
}

// scribble writes through whatever payload it is given.
func scribble(p *payload) {
	p.n = 2
}

// sendThenCall is the interprocedural fire: the post-send write lives
// in scribble, reached through the retained alias in the argument.
func sendThenCall(ch chan *payload) {
	p := &payload{}
	ch <- p
	scribble(p) // want chanshare
}

// produce allocates a fresh payload per iteration — the healthy
// pattern. The object is a per-iteration summary, so the cross-
// iteration "write before send" reordering is not reported.
func produce(ch chan *payload, n int) {
	for i := 0; i < n; i++ {
		p := &payload{n: i}
		p.data = append(p.data, i)
		ch <- p
	}
}

// handoff sends and then drops every alias: nothing to report.
func handoff(ch chan *payload) {
	p := &payload{n: 7}
	ch <- p
}

// sendThenDefer hides the post-send write inside a deferred function
// literal: the defer runs on the sender's own goroutine after the send,
// but its body is a separate flow context, so a scan of the sender's
// context alone misses it.
func sendThenDefer(ch chan *payload) {
	p := &payload{}
	ch <- p
	defer func() {
		p.n = 9 // want chanshare
	}()
}

// sendThenFinalize documents a protocol where the write is sequenced
// before the receive; the suppression carries the reasoning.
func sendThenFinalize(ch chan *payload, ack chan struct{}) {
	p := &payload{}
	ch <- p
	<-ack
	//replint:ignore chanshare -- fixture: receiver sends on ack before reading p.n, so the write happens-before the read
	p.n = 3 // wantsuppressed chanshare
}
