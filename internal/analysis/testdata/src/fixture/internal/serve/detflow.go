// Fixture for the detflow rule, serve side: JSON output is a
// determinism sink in serve packages, and emit's parameter becomes a
// transitive sink through the sinkParam summary — tainted call sites
// report at the caller even though the encoder is one call away.
package serve

import (
	"encoding/json"
	"io"
	"time"
)

// Report is the wire record. Seconds deliberately carries latency
// telemetry; the directive absorbs stores into it.
type Report struct {
	Name string
	//replint:metadata -- fixture: latency telemetry, never replayed or diffed
	Seconds float64
}

// emit forwards v to the JSON encoder: its second parameter becomes a
// transitive sink (sinkParam), so tainted arguments report at the
// call site, not here.
func emit(w io.Writer, v any) error {
	return json.NewEncoder(w).Encode(v)
}

// publishClock sends a wallclock string through emit: the sink is one
// call away — the interprocedural fire.
func publishClock(w io.Writer) {
	stamp := time.Now().String()
	_ = emit(w, stamp) // want detflow
}

// publishOrder marshals names collected in map-iteration order: the
// order nondeterminism rides the slice into the direct JSON sink.
func publishOrder(w io.Writer, set map[string]int) error {
	var names []string
	for k := range set {
		names = append(names, k)
	}
	data, err := json.Marshal(names) // want detflow
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// publishReport carries the clock only inside the annotated metadata
// field: absorbed, clean.
func publishReport(w io.Writer, name string, took time.Duration) {
	_ = emit(w, Report{Name: name, Seconds: took.Seconds()})
}

// publishDebug knowingly emits a nondeterministic debug dump and
// documents why that is acceptable.
func publishDebug(w io.Writer) {
	//replint:ignore detflow -- fixture: debug endpoint is documented as non-reproducible
	_ = emit(w, time.Now().UnixNano()) // wantsuppressed detflow
}
