// Fixture for the lockorder rule: consistent mutex acquisition order,
// no exclusive re-acquisition while held, lock-guarded fields must be
// accessed under their struct's mutex, and atomic-touched fields must
// never be accessed plainly. Every lock here is balanced with a defer
// so the deferbal rule stays out of the frame.
package serve

import (
	"sync"
	"sync/atomic"
)

// registry owns exactly one mutex, so fields written under it become
// lock-guarded for the whole module.
type registry struct {
	mu    sync.Mutex
	slots map[string]int
	next  int
}

// register writes both fields under the lock: this is what makes them
// guarded.
func (r *registry) register(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.next
	r.next++
	r.slots[name] = id
	return id
}

// peek reads a guarded field without the lock: the classic racy read.
func (r *registry) peek(name string) int {
	return r.slots[name] // want lockorder
}

// reset writes a guarded field without the lock.
func (r *registry) reset() {
	r.next = 0 // want lockorder
}

// snapshotLocked declares the held-by-caller contract through its
// name: accesses inside are trusted to be under the caller's lock.
func (r *registry) snapshotLocked() map[string]int {
	out := make(map[string]int, len(r.slots))
	for k, v := range r.slots {
		out[k] = v
	}
	return out
}

// snapshot takes the lock and delegates to the Locked helper: clean on
// both sides.
func (r *registry) snapshot() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

// newRegistry initializes a fresh value: construction writes are not
// guarded accesses.
func newRegistry() *registry {
	r := &registry{slots: map[string]int{}}
	r.next = 1
	return r
}

// reacquire takes the exclusive lock it already holds: an immediate
// self-deadlock.
func (r *registry) reacquire() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mu.Lock() // want lockorder
	defer r.mu.Unlock()
}

// pair holds two mutexes so acquisition order between them matters.
type pair struct {
	muA sync.Mutex
	muB sync.Mutex
}

// lockAB acquires A then B; lockBA acquires B then A. Either order
// alone is fine — together they can deadlock, and both witnesses are
// reported.
func (p *pair) lockAB() {
	p.muA.Lock()
	defer p.muA.Unlock()
	p.muB.Lock() // want lockorder
	defer p.muB.Unlock()
}

func (p *pair) lockBA() {
	p.muB.Lock()
	defer p.muB.Unlock()
	p.muA.Lock() // want lockorder
	defer p.muA.Unlock()
}

// stats mixes old-style atomics with plain access.
type stats struct {
	hits uint64
	name string
}

// bump touches hits through sync/atomic: the sanctioned form.
func (s *stats) bump() {
	atomic.AddUint64(&s.hits, 1)
}

// read accesses the same field plainly, tearing against bump.
func (s *stats) read() uint64 {
	return s.hits // want lockorder
}

// label is untouched by atomics and stays free.
func (s *stats) label() string { return s.name }

// drainAll documents a sanctioned unlocked read during single-threaded
// teardown.
func (r *registry) drainAll() int {
	//replint:ignore lockorder -- fixture: teardown runs after all workers joined; no concurrent access remains
	return r.next // wantsuppressed lockorder
}
