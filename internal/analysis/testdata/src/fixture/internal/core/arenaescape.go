// Fixture for the arenaescape rule: a pooled value that is released
// AND remains reachable from outside the Get/Put extent — a global, a
// channel payload, a return value — will be recycled under a live
// alias. scratchleak (same package, scratchleak.go) owns the
// missing-release cases; every function here releases properly, which
// is exactly why the syntactic rule is blind to them.
package core

import "sync"

type arena struct{ buf []float64 }

var arenaPool sync.Pool

// leaked is the global the escape cases store into.
var leaked *arena

// arenaCh carries arena snapshots to a consumer.
var arenaCh = make(chan *arena, 1)

// globalEscape stores the pooled value into a package-level variable
// and then releases it: the next Get hands the same storage to another
// caller while `leaked` still points at it.
func globalEscape() {
	a := arenaPool.Get().(*arena) // want arenaescape
	leaked = a
	arenaPool.Put(a)
}

// chanEscape sends the pooled value away and then recycles it: the
// receiver reads storage the pool has already handed out again.
func chanEscape() {
	a := arenaPool.Get().(*arena) // want arenaescape
	arenaCh <- a
	arenaPool.Put(a)
}

// returnEscape recycles the value and returns it anyway.
func returnEscape() *arena {
	a := arenaPool.Get().(*arena) // want arenaescape
	arenaPool.Put(a)
	return a
}

// publish is the helper the interprocedural case escapes through: the
// store into the global happens one call away from the acquisition,
// carried back by Andersen's argument-to-parameter binding.
func publish(a *arena) {
	leaked = a
}

// indirectEscape never mentions a global and never returns the value —
// the escape lives entirely inside publish.
func indirectEscape() {
	a := arenaPool.Get().(*arena) // want arenaescape
	publish(a)
	arenaPool.Put(a)
}

// localUse is the healthy extent: acquire, work, release, nothing
// reachable afterwards.
func localUse(xs []float64) float64 {
	a := arenaPool.Get().(*arena)
	defer arenaPool.Put(a)
	a.buf = a.buf[:0]
	a.buf = append(a.buf, xs...)
	total := 0.0
	for _, v := range a.buf {
		total += v
	}
	return total
}

// snapshotOut hands the pooled value to the caller under a documented
// protocol; the suppression carries the reasoning.
func snapshotOut() *arena {
	//replint:ignore arenaescape -- fixture: caller owns the snapshot until it calls releaseSnapshot, which is the pool's Put
	s := arenaPool.Get().(*arena) // wantsuppressed arenaescape
	defer arenaPool.Put(s)
	return s
}
