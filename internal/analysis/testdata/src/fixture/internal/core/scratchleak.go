// Package core is a replint fixture for the scratchleak rule: values
// obtained from getScratch or a sync.Pool must be released on every
// path that the acquisition dominates.
package core

import "sync"

type scratch struct{ buf []int }

var bufs sync.Pool

func getScratch() *scratch  { return &scratch{} }
func putScratch(s *scratch) { _ = s }

// earlyReturnLeak releases on the fallthrough path only; the early
// return leaks and is reported where the leak happens.
func earlyReturnLeak(flag bool) int {
	s := getScratch()
	if flag {
		return 0 // want scratchleak
	}
	putScratch(s)
	return 1
}

// endLeak never releases at all; the report anchors at the acquisition.
func endLeak() {
	s := getScratch() // want scratchleak
	s.buf = append(s.buf, 1)
}

// poolEndLeak leaks a sync.Pool value the same way.
func poolEndLeak() {
	b := bufs.Get().(*scratch) // want scratchleak
	b.buf = b.buf[:0]
}

// loopLeak releases only on one branch of the loop body, so the value
// of every other iteration is lost before the next Get overwrites s.
func loopLeak(n int) {
	for i := 0; i < n; i++ {
		s := getScratch() // want scratchleak
		if i == 0 {
			putScratch(s)
		}
	}
}

// deferOK releases via defer, which covers every exit.
func deferOK() {
	s := getScratch()
	defer putScratch(s)
	s.buf = s.buf[:0]
}

// branchesOK releases on both sides of the split.
func branchesOK(flag bool) {
	s := getScratch()
	if flag {
		putScratch(s)
		return
	}
	putScratch(s)
}

// poolRoundTrip returns a sync.Pool value properly.
func poolRoundTrip() {
	b := bufs.Get().(*scratch)
	b.buf = b.buf[:0]
	bufs.Put(b)
}

// escapes hands ownership to the caller; the suppression documents the
// transfer.
func escapes() *scratch {
	s := getScratch()
	//replint:ignore scratchleak -- fixture: ownership transfers to the caller, which must release
	return s // wantsuppressed scratchleak
}
