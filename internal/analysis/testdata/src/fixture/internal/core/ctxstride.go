// Fixture for the ctxstride rule: header-unbounded loops in
// context-carrying code must poll cancellation, directly or through a
// callee the module-wide polls summary knows about. Counted and range
// loops are exempt, and code with no context in reach is never
// blamed.
package core

import "context"

// drain loops unboundedly while holding a context and never polls:
// the canonical miss.
func drain(ctx context.Context, ch chan int) int {
	total := 0
	for { // want ctxstride
		v, ok := <-ch
		if !ok {
			return total
		}
		total += v
	}
}

// pump polls the context directly every iteration: clean.
func pump(ctx context.Context, ch chan int) int {
	total := 0
	for {
		if ctx.Err() != nil {
			return total
		}
		v, ok := <-ch
		if !ok {
			return total
		}
		total += v
	}
}

// step advances one unit and never observes cancellation.
func step(x int) int { return x + 1 }

// pollStep checks the context at stride boundaries; callers inherit
// its polling through the summary.
func pollStep(ctx context.Context, x int) (int, bool) {
	if x%512 == 0 && ctx.Err() != nil {
		return x, false
	}
	return x + 1, true
}

// runBlind drives a condition-only loop through a callee that never
// polls: the loop body looks busy, but nothing in the transitive call
// tree can stop it — the interprocedural fire.
func runBlind(ctx context.Context, n int) int {
	x := 0
	for x < n { // want ctxstride
		x = step(x)
	}
	return x
}

// runStrided drives the same loop shape through pollStep: the polls
// summary clears it without any lexical ctx use in the body.
func runStrided(ctx context.Context, n int) int {
	x := 0
	ok := true
	for ok && x < n {
		x, ok = pollStep(ctx, x)
	}
	return x
}

// runCounted is exempt by shape: the header bounds the trip count.
func runCounted(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// ticker holds its context in a struct field: methods are in scope
// even without a context parameter.
type ticker struct {
	ctx context.Context
	n   int
}

func (t *ticker) spin() {
	for t.n > 0 { // want ctxstride
		t.n--
	}
}

// drainFast documents why its unbounded loop is acceptable.
func drainFast(ctx context.Context, ch chan int) int {
	total := 0
	//replint:ignore ctxstride -- fixture: the producer closes ch promptly after cancel; the loop is bounded by channel close
	for { // wantsuppressed ctxstride
		v, ok := <-ch
		if !ok {
			return total
		}
		total += v
	}
}
