// Fixture for the deferbal rule: a Lock/RLock must be balanced by its
// matching release on every path to return, and a file opened from os
// must be closed on every path from its first use unless ownership
// escapes. The stride-cancel early return — checking ctx.Err() every
// N iterations and bailing out mid-sweep — is the shape that loses
// manual releases.
package core

import (
	"context"
	"os"
	"sync"
)

// tally owns one mutex guarding its accumulator.
type tally struct {
	mu sync.Mutex
	n  int
}

// addAll is the clean deferred shape: the unlock runs on every path,
// including ones that do not exist yet.
func (t *tally) addAll(vs []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, v := range vs {
		t.n += v
	}
}

// tryAdd releases manually but covers both returns: clean.
func (t *tally) tryAdd(v int) bool {
	t.mu.Lock()
	if v < 0 {
		t.mu.Unlock()
		return false
	}
	t.n += v
	t.mu.Unlock()
	return true
}

// drain cancels at stride boundaries but returns out of the sweep
// still holding the lock: the early return the defer would have
// covered.
func (t *tally) drain(ctx context.Context, vs []int) error {
	t.mu.Lock() // want deferbal
	for i, v := range vs {
		if i%512 == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		t.n += v
	}
	t.mu.Unlock()
	return nil
}

// rw pairs the read form: RLock needs RUnlock, and the shared/exclusive
// forms do not satisfy each other.
type rw struct {
	mu  sync.RWMutex
	val int
}

// get is the clean read-side shape.
func (r *rw) get() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.val
}

// getIf leaks the read lock on the miss path.
func (r *rw) getIf(want int) (int, bool) {
	r.mu.RLock() // want deferbal
	if r.val != want {
		return 0, false
	}
	v := r.val
	r.mu.RUnlock()
	return v, true
}

// readHeader closes on the happy path only: the mid-function error
// return leaks the descriptor.
func readHeader(path string) ([]byte, error) {
	f, err := os.Open(path) // want deferbal
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 16)
	if _, err := f.Read(buf); err != nil {
		return nil, err
	}
	f.Close()
	return buf, nil
}

// readAll defers the close at first use: every path is covered, and
// the error-check return before the defer carries no obligation
// because the file was never valid there.
func readAll(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	buf := make([]byte, 64)
	n, err := f.Read(buf)
	return n, err
}

// openLog hands the descriptor to the caller: ownership escapes and
// the obligation goes with it.
func openLog(dir string) (*os.File, error) {
	f, err := os.Create(dir + "/log")
	if err != nil {
		return nil, err
	}
	return f, nil
}

// probe documents why its leaked descriptor is acceptable.
func probe(path string) bool {
	//replint:ignore deferbal -- fixture: probe processes exit immediately; the kernel reclaims the descriptor
	f, err := os.Open(path) // wantsuppressed deferbal
	if err != nil {
		return false
	}
	buf := make([]byte, 1)
	_, rerr := f.Read(buf)
	return rerr == nil
}
