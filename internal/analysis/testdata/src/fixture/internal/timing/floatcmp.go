// Package timing is a replint fixture for the floatcmp rule: exact
// ==/!=/switch on floats fires unless the comparison sits in a
// designated helper, a sort comparator, an Inf-sentinel check, or a
// constant fold.
package timing

import (
	"math"
	"sort"
)

// sameCost compares accumulated costs exactly: the parallel and serial
// schedules sum in different orders, so this is the canonical bug.
func sameCost(a, b float64) bool {
	return a == b // want floatcmp
}

// classify switches on a float tag, which compares cases exactly.
func classify(x float64) int {
	switch x { // want floatcmp
	case 0:
		return 0
	}
	return 1
}

// lexBefore is a designated deterministic tie-break: both sides derive
// from identical operation sequences, so bitwise compare is the
// intended semantics and the rule stays quiet.
//
//replint:floatcmp-helper
func lexBefore(a, b float64) bool {
	if a != b {
		return a < b
	}
	return false
}

// unreached checks against an infinity sentinel, exact by construction.
func unreached(d float64) bool {
	return d == math.Inf(1)
}

// constFold compares two compile-time constants: exempt.
func constFold() bool {
	return 1.0 == 2.0
}

// sortByCost compares exactly inside a comparator handed to sort: a
// strict weak ordering forbids epsilon ties, so exact compare is the
// only correct choice there and the rule stays quiet.
func sortByCost(xs []float64) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i] != xs[j] {
			return xs[i] < xs[j]
		}
		return i < j
	})
}

// zeroSentinel compares against the documented unset sentinel; the
// suppression records the argument.
func zeroSentinel(cost float64) bool {
	//replint:ignore floatcmp -- fixture: zero is the explicit unset sentinel, never accumulated
	return cost == 0 // wantsuppressed floatcmp
}

// malformedDirective carries an ignore without the mandatory reason;
// replint reports the directive itself and refuses to honor it.
func malformedDirective(a, b float64) bool {
	//replint:ignore floatcmp // want directive
	return a != b // want floatcmp
}

// staleDirective names a rule that does not exist (a typo, or a rule
// renamed after the suppression was written): the directive can never
// match a finding, so it is reported rather than rotting silently.
func staleDirective(a, b float64) bool {
	//replint:ignore floatcompare -- fixture: suppression left behind by a rule rename // want directive
	return a == b // want floatcmp
}
