// Fixture for the stalegen rule: writes to //replint:guarded fields
// must be post-dominated by a bump of their gen= counter before the
// mutating function returns. The flow-sensitive cases are the point —
// a bump on only one branch, or an early return threaded between the
// write and the bump, is invisible to any per-statement check.
package timing

// levelCache mirrors the incremental engine's derived state: the
// levelization and sink set are only trusted while gen matches the
// engine's generation, so every mutation must advance gen.
type levelCache struct {
	levels []int        //replint:guarded gen=gen
	sinks  map[int]bool //replint:guarded gen=gen
	gen    uint64
	limit  int
}

// newLevelCache initializes a fresh value: construction writes touch
// state no reader has seen and carry no bump obligation.
func newLevelCache(n int) *levelCache {
	c := &levelCache{sinks: map[int]bool{}}
	c.levels = make([]int, n)
	return c
}

// rebuild is the clean full-recompute shape: every write path funnels
// into the trailing bump.
func (c *levelCache) rebuild(order []int) {
	c.levels = c.levels[:0]
	for _, v := range order {
		c.levels = append(c.levels, v)
	}
	c.gen++
}

// poison mutates guarded state and returns without any bump: the
// straight-line fire.
func (c *levelCache) poison(i, v int) {
	c.levels[i] = v // want stalegen
}

// mark bumps on one branch only — the write escapes unbumped whenever
// flush is false. Only a path-sensitive check can see this.
func (c *levelCache) mark(i int, flush bool) {
	c.sinks[i] = true // want stalegen
	if flush {
		c.gen++
	}
}

// set is clean: the early return happens before the write, so every
// path that mutates also bumps.
func (c *levelCache) set(i, v int) {
	if i < 0 || i >= len(c.levels) {
		return
	}
	c.levels[i] = v
	c.gen++
}

// sweep bumps in a defer registered ahead of the writes: the bump runs
// at return on every path, which discharges the obligation even though
// no forward path from a write reaches the defer statement.
func (c *levelCache) sweep() {
	defer func() { c.gen++ }()
	for i := range c.levels {
		c.levels[i] = 0
	}
}

// aliasPoison writes through a local alias of guarded storage: the
// alias chase attributes the mutation to sinks and still demands the
// bump.
func (c *levelCache) aliasPoison(i int) {
	s := c.sinks
	s[i] = true // want stalegen
}

// aliasSet is the same alias shape with the bump in place.
func (c *levelCache) aliasSet(i int) {
	s := c.sinks
	s[i] = true
	c.gen++
}

// evict mutates through the delete builtin; removal invalidates
// readers exactly like assignment does.
func (c *levelCache) evict(i int) {
	delete(c.sinks, i) // want stalegen
}

// patch is the stride-abort shape this rule exists for: the cap check
// at stride boundaries returns out of the sweep after earlier
// iterations already wrote, skipping the trailing bump.
func (c *levelCache) patch(updates []int) bool {
	for i, u := range updates {
		if i%1024 == 0 && i > c.limit {
			return false // earlier writes escape without a bump
		}
		if u >= 0 && u < len(c.levels) {
			c.levels[u] = u // want stalegen
		}
	}
	c.gen++
	return true
}

// patchChecked is the fixed shape: the abort path bumps before
// returning, so every path out of the sweep invalidates readers.
func (c *levelCache) patchChecked(updates []int) bool {
	for i, u := range updates {
		if i%1024 == 0 && i > c.limit {
			c.gen++
			return false
		}
		if u >= 0 && u < len(c.levels) {
			c.levels[u] = u
		}
	}
	c.gen++
	return true
}

// stamp documents why its unbumped write is acceptable.
func (c *levelCache) stamp(i, v int) {
	//replint:ignore stalegen -- fixture: callers batch one gen bump after the whole stamp pass
	c.levels[i] = v // wantsuppressed stalegen
}

// badGuard exercises directive validation: the named counter is not a
// sibling field, which is reported under the directive pseudo-rule.
type badGuard struct {
	total []int //replint:guarded gen=missing // want directive
	gen   uint64
}

//replint:guarded gen=gen // want directive
func misplacedGuard() {}
