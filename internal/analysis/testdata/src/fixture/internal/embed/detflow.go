// Fixture for the detflow rule, embed side: the result frontier and
// the canonical order helper (totalLess) are determinism sinks, and
// taint crosses call boundaries — nowStamp below is the source, its
// callers carry the finding. Each tainted path uses its own point
// type: field facts are module-global, so sharing one type would
// conflate the clean and tainted cases.
package embed

import (
	"math/rand"
	"time"
)

// StampedPoint rides the tainted path.
type StampedPoint struct {
	Cost  int
	Stamp int
}

// StampedCurve collects StampedPoints; its Frontier is a sink.
type StampedCurve struct {
	Frontier []StampedPoint
}

// totalLess is the canonical order helper: its arguments are sinks.
func totalLess(a, b StampedPoint) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	return a.Stamp < b.Stamp
}

// nowStamp derives a key from the wall clock: the taint source sits
// one call below the sinks.
func nowStamp() int {
	return int(time.Now().UnixNano())
}

// buildStamped lets the clock-derived key reach both sink kinds: the
// order helper and the frontier store. The source is inside nowStamp;
// only the return-edge propagation connects it to these lines.
func buildStamped(c *StampedCurve, p StampedPoint) {
	q := StampedPoint{Cost: 1, Stamp: nowStamp()}
	if totalLess(p, q) { // want detflow
		c.Frontier = append(c.Frontier, q) // want detflow
	}
}

// Point rides the clean path.
type Point struct {
	Cost int
}

// Curve is the clean result surface. BuiltAt deliberately records
// wall-clock metadata; the directive absorbs stores into it.
type Curve struct {
	Frontier []Point
	//replint:metadata -- fixture: assembly timestamp is diagnostics, not solver output
	BuiltAt time.Time
}

// buildClean stores the clock only into the annotated metadata field:
// absorbed, no finding on either store.
func buildClean(c *Curve, p Point) {
	c.BuiltAt = time.Now()
	c.Frontier = append(c.Frontier, p)
}

// SeededPoint rides the suppressed path.
type SeededPoint struct {
	Score int
}

// SeededCurve collects SeededPoints.
type SeededCurve struct {
	Frontier []SeededPoint
}

// buildSeeded feeds a global-rand score to the frontier under an
// ignore that records why the nondeterminism is accepted.
func buildSeeded(c *SeededCurve) {
	p := SeededPoint{Score: rand.Int()}
	//replint:ignore detflow -- fixture: exploratory mode is documented as non-reproducible
	c.Frontier = append(c.Frontier, p) // wantsuppressed detflow
}
