// Fixture for the hotalloc rule: allocations inside loops of
// functions reachable from this package's SolveContext are hot-path
// findings; allocations in unreachable functions, pre-sized appends,
// and scratch-backed appends stay quiet. The rule is interprocedural:
// expand below is hot only because the call graph reaches it from
// SolveContext.
package embed

// solverScratch mimics the real pooled arena; appends into its
// storage amortize to zero and are exempt by type name.
type solverScratch struct {
	items []int
}

// SolveContext is the DP root: every function reachable from it in
// this package is on the hot path.
func SolveContext(n int, sc *solverScratch) []int {
	out := make([]int, 0, n) // pre-sized outside the loop: the fix idiom
	for i := 0; i < n; i++ {
		buf := make([]int, 8) // want hotalloc
		buf[0] = i
		out = append(out, expand(i)...) // append into the pre-sized buffer: exempt
		items := sc.items[:0]
		items = append(items, buf...) // scratch-backed destination: exempt
		sc.items = items
		//replint:ignore hotalloc -- fixture: one-time warmup amortized across the whole solve
		warm := make([]int, 4) // wantsuppressed hotalloc
		_ = warm
	}
	return out
}

// expand allocates per iteration two calls below the root: the
// interprocedural fire — nothing in this function's own signature
// says "hot".
func expand(i int) []int {
	var acc []int
	for j := 0; j < i; j++ {
		acc = append(acc, j) // want hotalloc
	}
	return acc
}

// coldGrow is not reachable from SolveContext: the same shape stays
// unflagged off the hot path.
func coldGrow(n int) []int {
	var acc []int
	for i := 0; i < n; i++ {
		acc = append(acc, i)
	}
	return acc
}
