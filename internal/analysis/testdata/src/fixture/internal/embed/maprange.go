// Package embed is a replint fixture: its import path sits inside the
// determinism-critical subtree, so the maprange rule applies. Lines
// carrying a `// want maprange` marker must produce an unsuppressed
// finding; `// wantsuppressed maprange` lines must produce a finding
// covered by the adjacent //replint:ignore directive.
package embed

import "sort"

// keysUnsorted feeds map iteration order straight into a slice: the
// classic nondeterminism bug the rule exists for.
func keysUnsorted(m map[int]string) []int {
	var out []int
	for k := range m { // want maprange
		out = append(out, k)
	}
	return out
}

// keysSorted collects then sorts before any ordered use: recognized as
// the collect-then-sort idiom, not flagged.
func keysSorted(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// countKinds only bumps integer counters keyed by the value: a
// commutative effect, order-insensitive, not flagged.
func countKinds(m map[int]string) map[string]int {
	counts := map[string]int{}
	for _, v := range m {
		counts[v]++
	}
	return counts
}

// invert writes a fresh map without reading it back: order-insensitive,
// not flagged.
func invert(m map[int]string) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// maxKeySuppressed picks a max with no tie-break — genuinely
// order-sensitive when values collide — but the author has documented
// why it is acceptable here, so the finding is suppressed.
func maxKeySuppressed(m map[int]string) int {
	best := -1
	//replint:ignore maprange -- fixture: keys are unique by construction, max has no ties
	for k := range m { // wantsuppressed maprange
		if k > best {
			best = k
		}
	}
	return best
}
