package analysis

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildScratchModule materializes files (path → source, relative to the
// module root) as a throwaway module and builds it. A go.mod naming the
// module "scratch" is added automatically.
func buildScratchModule(t *testing.T, files map[string]string) *Module {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.22\n"
	for rel, src := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := BuildModule(loader)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// funcNamed finds a declared function by qualified name: "name" for
// package functions, "Recv.name" for methods (receiver type name with
// any pointer stripped).
func funcNamed(t *testing.T, m *Module, qualified string) *ModFunc {
	t.Helper()
	var recv, name string
	if i := strings.IndexByte(qualified, '.'); i >= 0 {
		recv, name = qualified[:i], qualified[i+1:]
	} else {
		name = qualified
	}
	for _, f := range m.Funcs {
		if f.Obj.Name() != name {
			continue
		}
		fr := ""
		if f.Decl.Recv != nil && len(f.Decl.Recv.List) > 0 {
			fr = recvTypeName(f.Decl.Recv.List[0].Type)
		}
		if fr == recv {
			return f
		}
	}
	t.Fatalf("no declared function %q in scratch module", qualified)
	return nil
}

// recvTypeName names a method receiver's type: Ident or *Ident.
func recvTypeName(e ast.Expr) string {
	if st, ok := e.(*ast.StarExpr); ok {
		e = st.X
	}
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// calls reports whether the module call graph has a callee edge
// from→to.
func calls(m *Module, from, to *ModFunc) bool {
	return m.cg.callees[from.Obj][to.Obj]
}

// TestCallGraphInterfaceResolution covers the interface method-set
// corner cases: embedded interfaces, pointer-receiver-only method
// sets, promotion through embedded structs, and non-implementing
// types staying out of the edge set.
func TestCallGraphInterfaceResolution(t *testing.T) {
	mod := buildScratchModule(t, map[string]string{
		"iface/iface.go": `package iface

// Closer is the base interface.
type Closer interface{ Close() }

// ReadCloser embeds Closer: Close is reachable through the embedded
// method set, not declared on ReadCloser itself.
type ReadCloser interface {
	Closer
	Read() int
}

// Val implements Closer with value receivers: both Val and *Val are in
// the method set.
type Val struct{ n int }

func (v Val) Close()    {}
func (v Val) Read() int { return v.n }

// Ptr implements Closer with pointer receivers only: the value type
// Ptr does NOT implement, *Ptr does.
type Ptr struct{ n int }

func (p *Ptr) Close()    { p.n = 0 }
func (p *Ptr) Read() int { return p.n }

// Base provides Close; Wrap picks it up by struct embedding, so the
// resolved callee is Base's declared method.
type Base struct{}

func (b *Base) Close() {}

type Wrap struct {
	Base
	tag string
}

// Loner has a Close with the wrong signature and must never appear as
// an implementation.
type Loner struct{}

func (l Loner) Close() error { return nil }

// CallClose invokes through the base interface.
func CallClose(c Closer) { c.Close() }

// CallViaEmbedded invokes Close through the embedding interface: the
// method comes from the embedded Closer.
func CallViaEmbedded(rc ReadCloser) { rc.Close() }

// CallRead invokes the non-embedded method of the wide interface.
func CallRead(rc ReadCloser) int { return rc.Read() }
`,
	})

	callClose := funcNamed(t, mod, "CallClose")
	callViaEmbedded := funcNamed(t, mod, "CallViaEmbedded")
	callRead := funcNamed(t, mod, "CallRead")
	valClose := funcNamed(t, mod, "Val.Close")
	valRead := funcNamed(t, mod, "Val.Read")
	ptrClose := funcNamed(t, mod, "Ptr.Close")
	ptrRead := funcNamed(t, mod, "Ptr.Read")
	baseClose := funcNamed(t, mod, "Base.Close")
	lonerClose := funcNamed(t, mod, "Loner.Close")

	cases := []struct {
		name     string
		from, to *ModFunc
		want     bool
	}{
		{"value-receiver impl resolves", callClose, valClose, true},
		{"pointer-receiver-only impl resolves", callClose, ptrClose, true},
		{"promoted method resolves to the embedded decl", callClose, baseClose, true},
		{"wrong signature is not an impl", callClose, lonerClose, false},
		{"embedded-interface method resolves value impl", callViaEmbedded, valClose, true},
		{"embedded-interface method resolves pointer impl", callViaEmbedded, ptrClose, true},
		{"embedded-interface call does not edge to Read", callViaEmbedded, valRead, false},
		{"wide-interface Read resolves value impl", callRead, valRead, true},
		{"wide-interface Read resolves pointer impl", callRead, ptrRead, true},
		{"wide-interface Read does not edge to Close", callRead, valClose, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := calls(mod, tc.from, tc.to); got != tc.want {
				t.Errorf("edge %s -> %s = %v, want %v",
					tc.from.Obj.Name(), tc.to.Obj.FullName(), got, tc.want)
			}
		})
	}

	// Wrap must NOT contribute its own Close func object: promotion
	// reuses Base's. Nothing named Wrap.Close may exist.
	for _, f := range mod.Funcs {
		if f.Obj.Name() == "Close" && f.Decl.Recv != nil && recvTypeName(f.Decl.Recv.List[0].Type) == "Wrap" {
			t.Errorf("unexpected declared Wrap.Close: promotion should reuse Base.Close")
		}
	}
}

// TestCallGraphReverseEdges checks the transpose stays consistent with
// the forward edges for interface-resolved calls.
func TestCallGraphReverseEdges(t *testing.T) {
	mod := buildScratchModule(t, map[string]string{
		"rev/rev.go": `package rev

type Runner interface{ Run() }

type Job struct{}

func (j *Job) Run() {}

func Drive(r Runner) { r.Run() }
`,
	})
	drive := funcNamed(t, mod, "Drive")
	run := funcNamed(t, mod, "Job.Run")
	if !mod.cg.callees[drive.Obj][run.Obj] {
		t.Fatal("forward edge Drive -> Job.Run missing")
	}
	if !mod.cg.callers[run.Obj][drive.Obj] {
		t.Error("reverse edge Job.Run <- Drive missing: transpose out of sync")
	}
	if !mod.cg.reachable([]*types.Func{drive.Obj})[run.Obj] {
		t.Error("Job.Run not reachable from Drive")
	}
}
