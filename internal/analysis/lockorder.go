package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder enforces two mutex disciplines, both computed from a
// held-lock dataflow over the flow-sensitive CFG layer:
//
//  1. Consistent acquisition order: if one function acquires mutex B
//     while holding A and another acquires A while holding B, the pair
//     can deadlock. Re-acquiring a mutex already held is reported
//     outright. The order graph is module-wide; edges are keyed by the
//     mutexes' declaration objects (all instances of a field conflated,
//     which is the conservative direction for ordering).
//
//  2. Lock-guarded fields: within a struct that owns exactly one
//     mutex, any field written at least once while that mutex is held
//     is lock-guarded — every other plain read or write of it must
//     also hold the mutex. Channel, sync, atomic, and context-typed
//     fields synchronize themselves and are exempt; functions whose
//     name ends in "Locked" declare a held-by-caller contract;
//     accesses to freshly allocated structs are construction.
//     Fields touched with sync/atomic address-style calls
//     (atomic.AddUint64(&s.n, 1)) must never be accessed plainly.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "consistent mutex acquisition order, no re-acquisition while held, and " +
		"no plain access to fields elsewhere written under a lock or via atomics",
	Run: runLockOrder,
}

func runLockOrder(pass *Pass) {
	mod := pass.Mod
	if mod == nil {
		return
	}
	lf := mod.lockFacts()
	for _, v := range lf.violations {
		if v.pkg == pass.Pkg {
			pass.Report(v.pos, "lockorder", v.msg)
		}
	}
}

// lockFactsData is the module-wide lock analysis result.
type lockFactsData struct {
	violations []lockViolation
}

type lockViolation struct {
	pkg *Package
	pos token.Pos
	msg string
}

// lockEdge is one observed acquisition ordering: second acquired while
// first was held, witnessed at pos.
type lockEdge struct {
	pkg *Package
	pos token.Pos
}

// fieldAccess is one plain access to a field of a single-mutex struct.
type fieldAccess struct {
	pkg       *Package
	pos       token.Pos
	field     types.Object
	mutex     types.Object // the struct's mutex field
	write     bool
	underLock bool
}

func buildLockFacts(m *Module) *lockFactsData {
	edges := map[[2]types.Object]lockEdge{}
	var accesses []fieldAccess
	atomicFields := map[types.Object]bool{}
	atomicWitness := map[types.Object]token.Pos{}

	for _, f := range m.Funcs {
		lockedContract := strings.HasSuffix(f.Obj.Name(), "Locked")
		for _, fc := range flowContexts(f.Decl) {
			scanLockContext(m, f.Pkg, fc, lockedContract && fc.lit == nil,
				edges, &accesses, atomicFields, atomicWitness)
		}
	}

	lf := &lockFactsData{}

	// Acquisition-order cycles. Self-edges are immediate re-acquisition
	// bugs; a reversed pair is a deadlock-capable inconsistency.
	type edgeKey struct{ a, b types.Object }
	reported := map[edgeKey]bool{}
	var keys [][2]types.Object
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return edges[keys[i]].pos < edges[keys[j]].pos })
	for _, k := range keys {
		e := edges[k]
		if k[0] == k[1] {
			lf.violations = append(lf.violations, lockViolation{pkg: e.pkg, pos: e.pos,
				msg: "mutex " + k[0].Name() + " acquired while already held"})
			continue
		}
		rev, ok := edges[[2]types.Object{k[1], k[0]}]
		if !ok || reported[edgeKey{k[0], k[1]}] {
			continue
		}
		reported[edgeKey{k[0], k[1]}] = true
		reported[edgeKey{k[1], k[0]}] = true
		for _, w := range []lockEdge{e, rev} {
			lf.violations = append(lf.violations, lockViolation{pkg: w.pkg, pos: w.pos,
				msg: "inconsistent lock order: " + k[0].Name() + " and " + k[1].Name() +
					" are acquired in both orders; pick one"})
		}
	}

	// Lock-guarded field discipline: guarded = written under lock at
	// least once, then every plain access must be under lock.
	lockGuarded := map[types.Object]bool{}
	for _, a := range accesses {
		if a.write && a.underLock {
			lockGuarded[a.field] = true
		}
	}
	for _, a := range accesses {
		if lockGuarded[a.field] && !a.underLock {
			verb := "read"
			if a.write {
				verb = "written"
			}
			lf.violations = append(lf.violations, lockViolation{pkg: a.pkg, pos: a.pos,
				msg: "field " + a.field.Name() + " is " + verb + " without holding " +
					a.mutex.Name() + ", which guards its other writes"})
		}
	}

	// Atomic/plain mixing: any plain selector access to a field that is
	// elsewhere touched through old-style sync/atomic calls.
	if len(atomicFields) > 0 {
		for _, f := range m.Funcs {
			collectPlainAtomicAccesses(f.Pkg, f.Decl.Body, atomicFields, func(pos token.Pos, field types.Object) {
				lf.violations = append(lf.violations, lockViolation{pkg: f.Pkg, pos: pos,
					msg: "field " + field.Name() + " is accessed plainly but elsewhere via sync/atomic"})
			})
		}
	}
	_ = atomicWitness

	sort.Slice(lf.violations, func(i, j int) bool { return lf.violations[i].pos < lf.violations[j].pos })
	return lf
}

// collectPlainAtomicAccesses finds selector accesses to atomic-set
// fields outside sync/atomic call arguments.
func collectPlainAtomicAccesses(pkg *Package, body *ast.BlockStmt, atomicFields map[types.Object]bool,
	report func(token.Pos, types.Object)) {
	// Selectors appearing inside a sync/atomic call are the sanctioned
	// form; collect their positions first.
	sanctioned := map[*ast.SelectorExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pkg, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if sel, ok := an.(*ast.SelectorExpr); ok {
					sanctioned[sel] = true
				}
				return true
			})
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sanctioned[sel] {
			return true
		}
		selection, ok := pkg.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		if atomicFields[selection.Obj()] {
			report(sel.Sel.Pos(), selection.Obj())
		}
		return true
	})
}

// scanLockContext runs the held-set dataflow over one context and
// collects order edges and field accesses.
func scanLockContext(m *Module, pkg *Package, fc flowCtx, lockedContract bool,
	edges map[[2]types.Object]lockEdge, accesses *[]fieldAccess,
	atomicFields map[types.Object]bool, atomicWitness map[types.Object]token.Pos) {

	c := m.cfgOf(pkg, fc.body)
	in := solveHeldSets(c)

	for _, b := range c.blocks {
		held := copySet(in[b])
		for ord, n := range b.nodes {
			// Record accesses with the held set at node entry, then
			// apply the node's lock transfers.
			collectFieldAccesses(m, c, pkg, b, ord, n, held, lockedContract, accesses)
			collectAtomicUses(pkg, n, atomicFields, atomicWitness)
			applyLockTransfers(pkg, n, held, func(first, second types.Object, pos token.Pos) {
				key := [2]types.Object{first, second}
				if _, ok := edges[key]; !ok {
					edges[key] = lockEdge{pkg: pkg, pos: pos}
				}
			})
		}
	}
}

// solveHeldSets computes the set of mutexes held at each block's entry
// — a forward must-analysis (intersection at joins), with the empty
// set at function entry.
func solveHeldSets(c *cfg) map[*cfgBlock]map[types.Object]bool {
	in := map[*cfgBlock]map[types.Object]bool{}
	out := map[*cfgBlock]map[types.Object]bool{}
	transfer := func(b *cfgBlock) map[types.Object]bool {
		held := copySet(in[b])
		for _, n := range b.nodes {
			applyLockTransfers(c.pkg, n, held, nil)
		}
		return held
	}
	in[c.entry] = map[types.Object]bool{}
	out[c.entry] = transfer(c.entry)
	for changed := true; changed; {
		changed = false
		for _, b := range c.blocks {
			if b == c.entry {
				continue
			}
			var merged map[types.Object]bool
			for _, p := range b.preds {
				po, ok := out[p]
				if !ok {
					continue // unvisited pred: top, ignore in the meet
				}
				if merged == nil {
					merged = copySet(po)
					continue
				}
				for o := range merged {
					if !po[o] {
						delete(merged, o)
					}
				}
			}
			if merged == nil {
				merged = map[types.Object]bool{}
			}
			if !sameSet(merged, in[b]) || out[b] == nil {
				in[b] = merged
				o := transfer(b)
				if !sameSet(o, out[b]) {
					out[b] = o
					changed = true
				}
			}
		}
	}
	return in
}

func copySet(s map[types.Object]bool) map[types.Object]bool {
	c := make(map[types.Object]bool, len(s))
	for k, v := range s {
		if v {
			c[k] = true
		}
	}
	return c
}

func sameSet(a, b map[types.Object]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// applyLockTransfers updates held with the Lock/Unlock calls of one
// owned node, in syntactic order. Deferred unlocks run at return, not
// here, so defer statements leave the set alone. onAcquire (may be
// nil) fires for each acquisition with the set held just before it.
func applyLockTransfers(pkg *Package, n ast.Node, held map[types.Object]bool,
	onAcquire func(first, second types.Object, pos token.Pos)) {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return
	}
	inspectOwned(n, func(inner ast.Node) bool {
		call, ok := inner.(*ast.CallExpr)
		if !ok {
			return true
		}
		typ, method, recv := syncCall(pkg, call)
		if typ != "Mutex" && typ != "RWMutex" {
			return true
		}
		mu := storageRoot(pkg, recv)
		if mu == nil {
			return true
		}
		switch method {
		case "Lock", "RLock":
			if onAcquire != nil {
				// Re-acquisition is reported for the exclusive form only:
				// nested RLocks are common and merely inadvisable.
				if held[mu] && method == "Lock" {
					onAcquire(mu, mu, call.Pos())
				}
				for h := range held {
					if h != mu {
						onAcquire(h, mu, call.Pos())
					}
				}
			}
			held[mu] = true
		case "Unlock", "RUnlock":
			delete(held, mu)
		}
		return true
	})
}

// syncCall identifies a method call on a type from package sync,
// returning the receiver type name, the method name, and the receiver
// expression; empty strings otherwise.
func syncCall(pkg *Package, call *ast.CallExpr) (typ, method string, recv ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", nil
	}
	f, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", "", nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", nil
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return "", "", nil
	}
	return named.Obj().Name(), f.Name(), sel.X
}

// collectFieldAccesses records every plain access to a field of a
// single-mutex struct within one owned node.
func collectFieldAccesses(m *Module, c *cfg, pkg *Package, b *cfgBlock, ord int, n ast.Node,
	held map[types.Object]bool, lockedContract bool, accesses *[]fieldAccess) {

	// Write targets of this node, so reads and writes are told apart.
	writeTargets := map[ast.Expr]bool{}
	inspectOwned(n, func(inner ast.Node) bool {
		switch st := inner.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				writeTargets[lhs] = true
			}
		case *ast.IncDecStmt:
			writeTargets[st.X] = true
		}
		return true
	})

	inspectOwned(n, func(inner ast.Node) bool {
		sel, ok := inner.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pkg.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field := selection.Obj()
		mutex := m.soleMutexOf(ownerStruct(selection))
		if mutex == nil || field == mutex || selfSyncField(field) {
			return true
		}
		write := false
		for t := range writeTargets {
			if writeRoot(t) == sel {
				write = true
			}
		}
		under := lockedContract || held[mutex]
		if base := syntacticBase(pkg, sel.X); base != nil && freshlyAllocated(c, b, ord, base) {
			return true
		}
		*accesses = append(*accesses, fieldAccess{
			pkg: pkg, pos: sel.Sel.Pos(), field: field, mutex: mutex,
			write: write, underLock: under,
		})
		return true
	})
}

// writeRoot unwraps an assignment target down to the selector being
// written through (x.f, x.f[i], *x.f → x.f).
func writeRoot(e ast.Expr) ast.Expr {
	for {
		switch ex := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = ex.X
		case *ast.StarExpr:
			e = ex.X
		default:
			return ast.Unparen(e)
		}
	}
}

// ownerStruct returns the struct type a field selection reads from.
func ownerStruct(sel *types.Selection) *types.Struct {
	t := sel.Recv()
	for {
		switch tt := t.Underlying().(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Struct:
			return tt
		default:
			return nil
		}
	}
}

// soleMutexOf returns the struct's unique sync.Mutex/RWMutex field, or
// nil when it has zero or several (ordering between several mutexes of
// one struct is the order graph's job, not the guarded-field check's).
func (m *Module) soleMutexOf(st *types.Struct) types.Object {
	if st == nil {
		return nil
	}
	var found types.Object
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isSyncType(f.Type(), "Mutex") || isSyncType(f.Type(), "RWMutex") {
			if found != nil {
				return nil
			}
			found = f
		}
	}
	return found
}

func isSyncType(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// selfSyncField reports whether a field's type synchronizes itself:
// channels, sync package types, sync/atomic types, and contexts need
// no lock to touch.
func selfSyncField(field types.Object) bool {
	t := field.Type()
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		return true
	}
	if isContextType(t) {
		return true
	}
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
			continue
		case *types.Named:
			if p := tt.Obj().Pkg(); p != nil {
				switch p.Path() {
				case "sync", "sync/atomic":
					return true
				}
			}
		}
		return false
	}
}

// collectAtomicUses records fields passed by address to old-style
// sync/atomic functions.
func collectAtomicUses(pkg *Package, n ast.Node, atomicFields map[types.Object]bool, witness map[types.Object]token.Pos) {
	inspectOwned(n, func(inner ast.Node) bool {
		call, ok := inner.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pkg, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
			return true
		}
		if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // method-style atomics are typed; no mixing possible
		}
		if len(call.Args) == 0 {
			return true
		}
		ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || ue.Op != token.AND {
			return true
		}
		if sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok {
			if selection, ok := pkg.Info.Selections[sel]; ok && selection.Kind() == types.FieldVal {
				obj := selection.Obj()
				atomicFields[obj] = true
				if _, seen := witness[obj]; !seen {
					witness[obj] = call.Pos()
				}
			}
		}
		return true
	})
}
