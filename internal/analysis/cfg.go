package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// cfg.go is the flow-sensitive layer: an intraprocedural control-flow
// graph of basic blocks built directly over the AST (no SSA, no
// go/packages), plus the two dataflow queries the flow-sensitive rules
// share — reaching definitions over the existing defRecord
// classification, and a "must pass before exit" (post-dominance style)
// query used to prove that an obligation (a generation bump, an
// unlock, a WaitGroup join) is discharged on every path from a program
// point to function return.
//
// Granularity: a block owns a sequence of ast.Node entries — leaf
// statements plus the *header parts* of control statements (an if's
// init and condition, a range's binding, a switch tag). Bodies of
// control statements live in their own blocks; bodies of function
// literals are NOT traversed (a literal executes at call time, not at
// its lexical position — rules build a separate CFG per literal via
// Module.cfgOf). Panic, os.Exit, log.Fatal*, and runtime.Goexit
// terminate their block without an edge to the exit block, so the
// must-pass query quantifies over paths that actually return.
//
// Soundness limits, shared with the rest of the suite and documented
// in DESIGN.md: within one owned node, evaluation order is not
// modeled; a goto into a loop body produces a conservative
// (edge-complete but order-approximate) graph; and code inside an
// immediately-invoked function literal is invisible to the enclosing
// function's graph.

// cfgBlock is one basic block.
type cfgBlock struct {
	idx   int
	nodes []ast.Node
	succs []*cfgBlock
	preds []*cfgBlock
}

// cfg is the control-flow graph of one function body (a declared
// function or a function literal).
type cfg struct {
	body   *ast.BlockStmt
	entry  *cfgBlock
	exit   *cfgBlock // synthetic; empty; target of every return
	blocks []*cfgBlock

	// defs are the definition sites found in owned nodes, used by the
	// reaching-definitions solver. Built lazily on first query.
	defsBuilt bool
	defsIn    map[*cfgBlock]map[types.Object][]*cfgDef
	defsAll   map[types.Object][]*cfgDef
	pkg       *Package
	nr        map[*types.Func]bool
}

// cfgDef is one definition site inside the graph.
type cfgDef struct {
	block *cfgBlock
	ord   int // index into block.nodes
	rec   defRecord
}

// buildCFG constructs the graph for one body. nr is the module's
// noreturn summary (calls to these functions terminate their block);
// nil is fine for contexts without module-wide information.
func buildCFG(pkg *Package, body *ast.BlockStmt, nr map[*types.Func]bool) *cfg {
	c := &cfg{body: body, pkg: pkg, nr: nr}
	b := &cfgBuilder{c: c, labels: map[string]*cfgBlock{}}
	c.entry = c.newBlock()
	c.exit = c.newBlock()
	b.cur = c.entry
	b.stmtList(body.List)
	// Falling off the end of the body returns.
	b.edge(b.cur, c.exit)
	b.resolveGotos()
	for _, blk := range c.blocks {
		for _, s := range blk.succs {
			s.preds = append(s.preds, blk)
		}
	}
	return c
}

func (c *cfg) newBlock() *cfgBlock {
	b := &cfgBlock{idx: len(c.blocks)}
	c.blocks = append(c.blocks, b)
	return b
}

// cfgBuilder threads the construction state: the current block (nil
// while in dead code after a terminator), the break/continue frame
// stack, and pending forward gotos.
type cfgBuilder struct {
	c      *cfg
	cur    *cfgBlock
	frames []cfgFrame
	labels map[string]*cfgBlock
	gotos  []pendingGoto
	// nextLabel is a label immediately preceding a for/range/switch/
	// select statement; continue/break with that label target it.
	nextLabel string
}

// cfgFrame is one enclosing breakable/continuable construct.
type cfgFrame struct {
	label    string
	brk      *cfgBlock
	cont     *cfgBlock // nil for switch/select
	fallthru *cfgBlock // next case block, for fallthrough
}

type pendingGoto struct {
	from  *cfgBlock
	label string
	pos   token.Pos
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// own appends a node to the current block, materializing a fresh
// (unreachable) block when the builder is in dead code so later
// queries still see the node.
func (b *cfgBuilder) own(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.c.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)
	case *ast.LabeledStmt:
		// The labeled statement starts its own block so gotos can land
		// on it; loop labels additionally name the next frame.
		lb := b.c.newBlock()
		b.edge(b.cur, lb)
		b.cur = lb
		b.labels[st.Label.Name] = lb
		b.nextLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.nextLabel = ""
	case *ast.ReturnStmt:
		b.own(st)
		b.edge(b.cur, b.c.exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(st)
	case *ast.IfStmt:
		b.ifStmt(st)
	case *ast.ForStmt:
		b.forStmt(st)
	case *ast.RangeStmt:
		b.rangeStmt(st)
	case *ast.SwitchStmt:
		if st.Init != nil {
			b.own(st.Init)
		}
		if st.Tag != nil {
			b.own(st.Tag)
		}
		b.switchBody(st.Body, nil)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.own(st.Init)
		}
		b.own(st.Assign)
		b.switchBody(st.Body, nil)
	case *ast.SelectStmt:
		b.selectStmt(st)
	default:
		// Leaf statements: assignments, declarations, expression
		// statements, sends, go, defer, incdec, empty.
		b.own(s)
		if terminatingStmt(b.c.pkg, s, b.c.nr) {
			b.cur = nil // no edge: this path never returns
		}
	}
}

func (b *cfgBuilder) branch(st *ast.BranchStmt) {
	label := ""
	if st.Label != nil {
		label = st.Label.Name
	}
	switch st.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := &b.frames[i]
			if label == "" || f.label == label {
				b.edge(b.cur, f.brk)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := &b.frames[i]
			if f.cont != nil && (label == "" || f.label == label) {
				b.edge(b.cur, f.cont)
				break
			}
		}
	case token.GOTO:
		if t, ok := b.labels[label]; ok {
			b.edge(b.cur, t)
		} else {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label, pos: st.Pos()})
		}
	case token.FALLTHROUGH:
		for i := len(b.frames) - 1; i >= 0; i-- {
			if f := &b.frames[i]; f.fallthru != nil {
				b.edge(b.cur, f.fallthru)
				break
			}
		}
	}
	b.cur = nil
}

func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok {
			b.edge(g.from, t)
		}
	}
}

func (b *cfgBuilder) ifStmt(st *ast.IfStmt) {
	if st.Init != nil {
		b.own(st.Init)
	}
	b.own(st.Cond)
	header := b.cur
	after := b.c.newBlock()

	then := b.c.newBlock()
	b.edge(header, then)
	b.cur = then
	b.stmtList(st.Body.List)
	b.edge(b.cur, after)

	if st.Else != nil {
		els := b.c.newBlock()
		b.edge(header, els)
		b.cur = els
		b.stmt(st.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(header, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(st *ast.ForStmt) {
	label := b.nextLabel
	b.nextLabel = ""
	if st.Init != nil {
		b.own(st.Init)
	}
	header := b.c.newBlock()
	b.edge(b.cur, header)
	b.cur = header
	if st.Cond != nil {
		b.own(st.Cond)
	}
	after := b.c.newBlock()
	if st.Cond != nil {
		b.edge(header, after)
	}
	var post *cfgBlock
	cont := header
	if st.Post != nil {
		post = b.c.newBlock()
		b.own2(post, st.Post)
		b.edge(post, header)
		cont = post
	}
	body := b.c.newBlock()
	b.edge(header, body)
	b.frames = append(b.frames, cfgFrame{label: label, brk: after, cont: cont})
	b.cur = body
	b.stmtList(st.Body.List)
	b.edge(b.cur, cont)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// own2 appends a node to a specific block (used for loop post
// statements, which are built out of line).
func (b *cfgBuilder) own2(blk *cfgBlock, n ast.Node) {
	blk.nodes = append(blk.nodes, n)
}

func (b *cfgBuilder) rangeStmt(st *ast.RangeStmt) {
	label := b.nextLabel
	b.nextLabel = ""
	header := b.c.newBlock()
	b.edge(b.cur, header)
	// The RangeStmt node itself is the header: it owns the container
	// evaluation and the per-iteration key/value bindings.
	b.own2(header, st)
	after := b.c.newBlock()
	b.edge(header, after)
	body := b.c.newBlock()
	b.edge(header, body)
	b.frames = append(b.frames, cfgFrame{label: label, brk: after, cont: header})
	b.cur = body
	b.stmtList(st.Body.List)
	b.edge(b.cur, header)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// switchBody builds the case blocks of a switch or type switch. Each
// clause gets its own block fed from the header; fallthrough edges to
// the next clause; a missing default adds a header→after edge.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, _ *cfgBlock) {
	label := b.nextLabel
	b.nextLabel = ""
	header := b.cur
	after := b.c.newBlock()

	// Pre-create clause blocks so fallthrough can target the next one.
	var clauses []*ast.CaseClause
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.c.newBlock()
		if len(cc.List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(header, after)
	}
	for i, cc := range clauses {
		b.edge(header, blocks[i])
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.own(e)
		}
		var ft *cfgBlock
		if i+1 < len(blocks) {
			ft = blocks[i+1]
		}
		b.frames = append(b.frames, cfgFrame{label: label, brk: after, fallthru: ft})
		b.stmtList(cc.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, after)
	}
	b.cur = after
}

func (b *cfgBuilder) selectStmt(st *ast.SelectStmt) {
	label := b.nextLabel
	b.nextLabel = ""
	header := b.cur
	if header == nil {
		header = b.c.newBlock()
		b.cur = header
	}
	after := b.c.newBlock()
	any := false
	for _, s := range st.Body.List {
		cc, ok := s.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		blk := b.c.newBlock()
		b.edge(header, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.own(cc.Comm)
		}
		b.frames = append(b.frames, cfgFrame{label: label, brk: after})
		b.stmtList(cc.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, after)
	}
	if !any {
		// select{} blocks forever: no successors.
		b.cur = nil
		return
	}
	b.cur = after
}

// terminatingStmt reports whether a leaf statement never transfers
// control to the following statement: a call to panic, os.Exit,
// log.Fatal*, runtime.Goexit, or a module function summarized as
// noreturn (its body always ends in one of those).
func terminatingStmt(pkg *Package, s ast.Stmt, nr map[*types.Func]bool) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	return terminatingCall(pkg, call, nr)
}

func terminatingCall(pkg *Package, call *ast.CallExpr, nr map[*types.Func]bool) bool {
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fun.Name == "panic" {
		if _, isBuiltin := pkg.Info.Uses[fun].(*types.Builtin); isBuiltin || pkg.Info.Uses[fun] == nil {
			return true
		}
	}
	callee := calleeFunc(pkg, call)
	if callee == nil {
		return false
	}
	if nr[callee] {
		return true
	}
	if callee.Pkg() == nil {
		return false
	}
	switch callee.Pkg().Path() {
	case "os":
		return callee.Name() == "Exit"
	case "log":
		switch callee.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	case "runtime":
		return callee.Name() == "Goexit"
	}
	return false
}

// buildNoReturn summarizes which module functions never return: the
// body's last statement is a terminating call (directly, or to a
// function already in the set). One level of syntactic depth per
// fixpoint round is enough for the fatalf-style wrappers this catches.
func buildNoReturn(m *Module) map[*types.Func]bool {
	nr := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			if nr[f.Obj] || len(f.Decl.Body.List) == 0 {
				continue
			}
			last := f.Decl.Body.List[len(f.Decl.Body.List)-1]
			if terminatingStmt(f.Pkg, last, nr) {
				nr[f.Obj] = true
				changed = true
			}
		}
	}
	return nr
}

// flowCtx is one flow-analysis context of a declared function: its own
// body, or the body of one function literal inside it. Literal bodies
// execute at call time, so each gets its own graph rather than edges
// in the enclosing one.
type flowCtx struct {
	body *ast.BlockStmt
	lit  *ast.FuncLit // nil for the declaration body
}

// flowContexts enumerates the declaration body and every function
// literal body inside it (nested literals included), in source order.
func flowContexts(decl *ast.FuncDecl) []flowCtx {
	out := []flowCtx{{body: decl.Body}}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			out = append(out, flowCtx{body: fl.Body, lit: fl})
		}
		return true
	})
	return out
}

// ---------------------------------------------------------------------
// Must-pass-to-exit (post-dominance style) query.

// mustPassToExit reports whether every path from just after node ord of
// block b to the function's exit passes a node satisfying sat. Paths
// that never return (infinite loops, panics, os.Exit) are vacuously
// satisfied: the obligation is "discharge before returning".
//
// sat is evaluated on owned nodes only — it sees defer statements as
// *ast.DeferStmt (a deferred discharge runs at return, so treating the
// defer site as the discharge point is conservative: it demands every
// path pass the defer statement itself).
func (c *cfg) mustPassToExit(b *cfgBlock, ord int, sat func(ast.Node) bool) bool {
	ok := c.solveMustPass(sat)
	for i := ord + 1; i < len(b.nodes); i++ {
		if sat(b.nodes[i]) {
			return true
		}
	}
	return c.succsOK(b, ok)
}

// succsOK evaluates the all-successors conjunction for the tail of a
// block: true when the block is terminating (no successors, not the
// exit) or every successor is satisfied from its entry.
func (c *cfg) succsOK(b *cfgBlock, ok []bool) bool {
	if b == c.exit {
		return false
	}
	if len(b.succs) == 0 {
		return true // terminating: never reaches return
	}
	for _, s := range b.succs {
		if !ok[s.idx] {
			return false
		}
	}
	return true
}

// solveMustPass computes, per block, whether every path from the
// block's entry to exit passes a satisfying node — the greatest
// fixpoint of ok[b] = contains(b) || AND over succ ok, with
// ok[exit] = false.
func (c *cfg) solveMustPass(sat func(ast.Node) bool) []bool {
	contains := make([]bool, len(c.blocks))
	for _, b := range c.blocks {
		for _, n := range b.nodes {
			if sat(n) {
				contains[b.idx] = true
				break
			}
		}
	}
	ok := make([]bool, len(c.blocks))
	for i := range ok {
		ok[i] = true
	}
	ok[c.exit.idx] = false
	for changed := true; changed; {
		changed = false
		for _, b := range c.blocks {
			if !ok[b.idx] || contains[b.idx] || b == c.exit {
				continue
			}
			if !c.succsOK(b, ok) {
				ok[b.idx] = false
				changed = true
			}
		}
	}
	return ok
}

// ---------------------------------------------------------------------
// Reaching definitions.

// buildDefs scans every block's owned nodes for definition sites,
// classifying them exactly as the flow-insensitive def-use layer does
// (defRecord), then solves the forward reaching-definitions equations:
// OUT[b] = lastDef(b) over IN[b], IN[b] = union over preds OUT.
func (c *cfg) buildDefs() {
	if c.defsBuilt {
		return
	}
	c.defsBuilt = true
	c.defsAll = map[types.Object][]*cfgDef{}

	gen := map[*cfgBlock]map[types.Object]*cfgDef{} // last def per object per block
	record := func(b *cfgBlock, ord int, obj types.Object, rec defRecord) {
		if obj == nil {
			return
		}
		d := &cfgDef{block: b, ord: ord, rec: rec}
		c.defsAll[obj] = append(c.defsAll[obj], d)
		if gen[b] == nil {
			gen[b] = map[types.Object]*cfgDef{}
		}
		gen[b][obj] = d
	}
	for _, b := range c.blocks {
		for ord, n := range b.nodes {
			c.scanDefs(b, ord, n, record)
		}
	}

	// Solve to fixpoint. Reaching sets are per-object def-site lists;
	// a block with a def of obj kills upstream defs of obj (strong
	// update: owned-node defs are whole-variable assignments).
	in := map[*cfgBlock]map[types.Object][]*cfgDef{}
	out := map[*cfgBlock]map[types.Object][]*cfgDef{}
	computeOut := func(b *cfgBlock) map[types.Object][]*cfgDef {
		o := map[types.Object][]*cfgDef{}
		for obj, defs := range in[b] {
			if gen[b] != nil && gen[b][obj] != nil {
				continue // killed
			}
			o[obj] = defs
		}
		for obj, d := range gen[b] {
			o[obj] = []*cfgDef{d}
		}
		return o
	}
	sameDefs := func(a, b map[types.Object][]*cfgDef) bool {
		if len(a) != len(b) {
			return false
		}
		for obj, ad := range a {
			bd, ok := b[obj]
			if !ok || len(ad) != len(bd) {
				return false
			}
			for i := range ad {
				if ad[i] != bd[i] {
					return false
				}
			}
		}
		return true
	}
	for _, b := range c.blocks {
		in[b] = map[types.Object][]*cfgDef{}
		out[b] = computeOut(b)
	}
	for changed := true; changed; {
		changed = false
		for _, b := range c.blocks {
			merged := map[types.Object][]*cfgDef{}
			for _, p := range b.preds {
				for obj, defs := range out[p] {
					merged[obj] = mergeDefs(merged[obj], defs)
				}
			}
			if !sameDefs(merged, in[b]) {
				in[b] = merged
				o := computeOut(b)
				if !sameDefs(o, out[b]) {
					out[b] = o
					changed = true
				}
			}
		}
	}
	c.defsIn = in
}

func mergeDefs(dst, src []*cfgDef) []*cfgDef {
	for _, d := range src {
		found := false
		for _, e := range dst {
			if e == d {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, d)
		}
	}
	return dst
}

// scanDefs extracts definition sites from one owned node.
func (c *cfg) scanDefs(b *cfgBlock, ord int, n ast.Node, record func(*cfgBlock, int, types.Object, defRecord)) {
	objOf := func(lhs ast.Expr) types.Object {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		return c.pkg.Info.ObjectOf(id)
	}
	switch st := n.(type) {
	case *ast.AssignStmt:
		if st.Tok == token.ASSIGN || st.Tok == token.DEFINE {
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					record(b, ord, objOf(lhs), defRecord{rhs: st.Rhs[i]})
				}
			} else {
				for _, lhs := range st.Lhs {
					record(b, ord, objOf(lhs), defRecord{rhs: st.Rhs[0]})
				}
			}
		} else {
			record(b, ord, objOf(st.Lhs[0]), defRecord{rhs: st.Rhs[0], arith: true})
		}
	case *ast.IncDecStmt:
		record(b, ord, objOf(st.X), defRecord{arith: true})
	case *ast.RangeStmt:
		if st.Key != nil {
			record(b, ord, objOf(st.Key), defRecord{rng: st})
		}
		if st.Value != nil {
			record(b, ord, objOf(st.Value), defRecord{rng: st})
		}
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var rhs ast.Expr
				if i < len(vs.Values) {
					rhs = vs.Values[i]
				}
				record(b, ord, c.pkg.Info.Defs[name], defRecord{rhs: rhs})
			}
		}
	}
	// Address-taken objects become opaque at the site of the &.
	ast.Inspect(n, func(inner ast.Node) bool {
		if _, ok := inner.(*ast.FuncLit); ok {
			return false
		}
		ue, ok := inner.(*ast.UnaryExpr)
		if !ok || ue.Op != token.AND {
			return true
		}
		if id, ok := ast.Unparen(ue.X).(*ast.Ident); ok {
			if obj := c.pkg.Info.ObjectOf(id); obj != nil {
				record(b, ord, obj, defRecord{opaque: true})
			}
		}
		return true
	})
}

// defsReaching returns the definition sites of obj that reach the
// point just before node ord of block b: the closest preceding def in
// the block if one exists, otherwise the union over incoming edges.
// An empty result means obj is defined outside this graph (a
// parameter, a captured variable, or a package-level object).
func (c *cfg) defsReaching(b *cfgBlock, ord int, obj types.Object) []*cfgDef {
	c.buildDefs()
	var last *cfgDef
	for _, d := range c.defsAll[obj] {
		if d.block == b && d.ord < ord && (last == nil || d.ord > last.ord) {
			last = d
		}
	}
	if last != nil {
		return []*cfgDef{last}
	}
	return c.defsIn[b][obj]
}

// inspectOwned walks one owned node, skipping function literal
// interiors (their statements execute at call time, not here).
func inspectOwned(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(inner ast.Node) bool {
		if _, ok := inner.(*ast.FuncLit); ok {
			return false
		}
		return f(inner)
	})
}
