package analysis

import (
	"go/ast"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Module is the whole-module analysis context: every package of the
// module loaded through one Loader, plus the interprocedural summaries
// the dataflow rules consume — the call graph, per-function def-use
// tables, the module-wide storage (arithmetic-write) facts, and the
// determinism-taint solution.
//
// Per-file syntactic rules work from a Pass alone; the interprocedural
// rules (detflow, ctxstride, hotalloc, shardwrite) and the floatcmp
// zero-sentinel exemption consult Pass.Mod, and degrade to no-ops when
// it is nil (the legacy per-package entry point).
type Module struct {
	Loader *Loader
	// Pkgs are all packages of the module in import-path order.
	Pkgs []*Package

	// Funcs are all declared functions and methods with bodies, in
	// package/file/position order (the deterministic traversal order
	// every summary builder uses).
	Funcs []*ModFunc

	byObj  map[*types.Func]*ModFunc
	byPath map[string]*Package

	cg     *callGraph
	defuse map[*types.Func]*defUse
	facts  *storageFacts
	taint  *taintFacts
	meta   map[types.Object]bool // //replint:metadata-designated fields
	polls  map[*types.Func]bool  // transitively polls cancellation
	hot    map[*types.Func]bool  // reachable from an embed Solve root

	// Flow-sensitive layer: //replint:guarded field→counter pairs (and
	// their placement issues), noreturn summaries threaded into CFG
	// construction, the per-body CFG cache, and the lazily built lock
	// discipline facts.
	guard    map[types.Object]types.Object
	guardBad map[*Package][]guardIssue
	noreturn map[*types.Func]bool
	cfgs     map[*ast.BlockStmt]*cfg
	cfgMu    sync.Mutex
	locks    *lockFactsData

	// Alias layer: the named-type index shared between call-graph and
	// points-to interface resolution, the module-wide Andersen solution,
	// and the per-context heap-effect summaries the shared-heap rules
	// (aliasrace, arenaescape, chanshare) consume.
	impls *implIndex
	pts   *ptsFacts
	heap  *heapFacts
}

// ModFunc is one declared function or method with a body. Function
// literals are not separate nodes: their statements are attributed to
// the enclosing declaration, which is the right granularity for
// flow-insensitive summaries (a literal's locals are distinct objects
// anyway).
type ModFunc struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func
}

// BuildModule loads every package of the loader's module and computes
// the interprocedural summaries. The load is cached in the loader, so
// a driver that afterwards asks for individual packages pays nothing
// extra.
func BuildModule(loader *Loader) (*Module, error) {
	paths, err := loader.Expand([]string{"./..."})
	if err != nil {
		return nil, err
	}
	m := &Module{
		Loader: loader,
		byObj:  map[*types.Func]*ModFunc{},
		byPath: map[string]*Package{},
		defuse: map[*types.Func]*defUse{},
	}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		m.Pkgs = append(m.Pkgs, pkg)
		m.byPath[path] = pkg
	}
	m.collectFuncs()
	m.meta = collectMetadataFields(m)
	for _, f := range m.Funcs {
		m.defuse[f.Obj] = buildDefUse(f.Pkg, f.Decl)
	}
	m.impls = collectImplementations(m)
	m.cg = buildCallGraph(m)
	m.facts = buildStorageFacts(m)
	m.taint = buildTaint(m)
	m.polls = buildPollsSummary(m)
	m.hot = buildHotSet(m)
	m.noreturn = buildNoReturn(m)
	m.cfgs = map[*ast.BlockStmt]*cfg{}
	m.guard, m.guardBad = collectGuardedFields(m)
	// The alias layer builds eagerly (and last): points-to needs the
	// call graph and implementation index, the heap-effect summaries
	// need points-to plus the lock facts. Building here keeps every
	// module-wide structure read-only by the time RunPackages fans out.
	m.locks = buildLockFacts(m)
	m.pts = buildPointsTo(m)
	m.heap = buildHeapEffects(m)
	return m, nil
}

// cfgOf returns the (cached) control-flow graph of one function or
// function-literal body, built with the module's noreturn summaries so
// fatalf-style wrappers terminate their paths.
func (m *Module) cfgOf(pkg *Package, body *ast.BlockStmt) *cfg {
	m.cfgMu.Lock()
	defer m.cfgMu.Unlock()
	if c, ok := m.cfgs[body]; ok {
		return c
	}
	c := buildCFG(pkg, body, m.noreturn)
	m.cfgs[body] = c
	return c
}

// lockFacts returns the module's lock-discipline facts, built on first
// demand (they need the CFG layer, which needs noreturn summaries).
func (m *Module) lockFacts() *lockFactsData {
	if m.locks == nil {
		m.locks = buildLockFacts(m)
	}
	return m.locks
}

// Package returns the loaded package with the given import path, or
// nil when the path is not part of the module.
func (m *Module) Package(path string) *Package { return m.byPath[path] }

// FuncOf returns the ModFunc for a declared function object, or nil
// for externals and function values.
func (m *Module) FuncOf(obj *types.Func) *ModFunc { return m.byObj[obj] }

func (m *Module) collectFuncs() {
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
				if obj == nil {
					continue
				}
				mf := &ModFunc{Pkg: pkg, Decl: fn, Obj: obj}
				m.Funcs = append(m.Funcs, mf)
				m.byObj[obj] = mf
			}
		}
	}
}

// RunPackage applies the analyzers to one module package with the
// interprocedural context attached, returning findings exactly as
// RunAnalyzers does.
func (m *Module) RunPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	return runAnalyzers(m, pkg, analyzers)
}

// RunPackages analyzes the named packages in parallel, returning the
// findings keyed by import path. All module-wide summaries are built
// and frozen by BuildModule, so per-package runs only share read-only
// state plus the mutex-guarded CFG cache. workers <= 0 means
// GOMAXPROCS. Unknown paths are silently skipped (the driver validates
// paths before fact lookup).
func (m *Module) RunPackages(paths []string, analyzers []*Analyzer, workers int) map[string][]Finding {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	if workers < 1 {
		workers = 1
	}
	// Workers hand results back over a buffered channel and the caller
	// owns the map: no shared writes anywhere. The buffer holds every
	// result, so workers never block on the send and wg.Wait directly
	// post-dominates the launches.
	type result struct {
		path string
		fs   []Finding
	}
	jobs := make(chan string)
	results := make(chan result, len(paths))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range jobs {
				pkg := m.byPath[path]
				if pkg == nil {
					continue
				}
				results <- result{path, runAnalyzers(m, pkg, analyzers)}
			}
		}()
	}
	for _, p := range paths {
		jobs <- p
	}
	close(jobs)
	wg.Wait()
	close(results)
	out := make(map[string][]Finding, len(paths))
	for r := range results {
		out[r.path] = r.fs
	}
	return out
}

// relPath strips the module-path prefix off an import path; the
// package-subtree filters (maprange, hotalloc, the serve JSON sink)
// match on this module-relative form so they apply identically to the
// real tree and the fixture module.
func relPath(path string) string {
	if i := strings.Index(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return ""
}

// funcsInPackage returns the module functions declared in pkg, in
// declaration order.
func (m *Module) funcsInPackage(pkg *Package) []*ModFunc {
	var out []*ModFunc
	for _, f := range m.Funcs {
		if f.Pkg == pkg {
			out = append(out, f)
		}
	}
	return out
}

// calleeFunc resolves a call expression to the *types.Func it
// statically invokes: a declared function, a method, or an external.
// Function values, method expressions used as values, and type
// conversions yield nil.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// enclosingFuncDecl finds the FuncDecl whose body spans pos in the
// file, or nil for package-level positions.
func enclosingFuncDecl(file *ast.File, pos int) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			if int(fn.Pos()) <= pos && pos <= int(fn.End()) {
				return fn
			}
		}
	}
	return nil
}

// sortedFuncs returns the keys of a func-keyed set in source order,
// for deterministic reporting out of fixpoint results.
func sortedFuncs(set map[*types.Func]bool) []*types.Func {
	out := make([]*types.Func, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
